package bins

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"sapphire/internal/similarity"
)

func TestNewBucketsByRuneLength(t *testing.T) {
	b := New([]string{"ab", "cd", "abc", "ü", "x", "dup", "dup", ""})
	if b.Len() != 6 {
		t.Errorf("Len = %d, want 6", b.Len())
	}
	sizes := b.BinSizes()
	if sizes[2] != 2 || sizes[3] != 2 || sizes[1] != 2 {
		t.Errorf("BinSizes = %v", sizes)
	}
	if b.BinCount() != 3 {
		t.Errorf("BinCount = %d, want 3", b.BinCount())
	}
}

func TestSelectRange(t *testing.T) {
	b := New([]string{"a", "bb", "ccc", "dddd", "eeeee"})
	sel := b.Select(2, 4)
	total := 0
	for _, bin := range sel {
		total += len(bin)
	}
	if total != 3 {
		t.Errorf("Select(2,4) covers %d literals, want 3", total)
	}
	if b.SelectedCount(2, 4) != 3 {
		t.Errorf("SelectedCount = %d", b.SelectedCount(2, 4))
	}
	if b.SelectedCount(-5, 0) != 0 {
		t.Errorf("negative range should select nothing")
	}
}

func TestAssignTasksBalance(t *testing.T) {
	// Three bins of sizes 10, 7, 3 over 4 workers: 20 literals, d=5.
	bins := [][]string{make([]string, 10), make([]string, 7), make([]string, 3)}
	for bi := range bins {
		for i := range bins[bi] {
			bins[bi][i] = fmt.Sprintf("%d-%d", bi, i)
		}
	}
	tasks := AssignTasks(bins, 4)
	if len(tasks) != 4 {
		t.Fatalf("workers = %d", len(tasks))
	}
	counts := make([]int, 4)
	covered := make(map[string]int)
	for wi, ts := range tasks {
		for _, task := range ts {
			if task.From >= task.To {
				t.Errorf("worker %d empty task %+v", wi, task)
			}
			for i := task.From; i < task.To; i++ {
				counts[wi]++
				covered[bins[task.Bin][i]]++
			}
		}
	}
	// Every literal covered exactly once.
	if len(covered) != 20 {
		t.Errorf("covered %d literals, want 20", len(covered))
	}
	for l, n := range covered {
		if n != 1 {
			t.Errorf("literal %s assigned %d times", l, n)
		}
	}
	// Balanced: max-min <= d.
	sort.Ints(counts)
	if counts[3]-counts[0] > 5 {
		t.Errorf("imbalanced counts %v", counts)
	}
}

func TestAssignTasksProperties(t *testing.T) {
	f := func(sizes []uint8, p8 uint8) bool {
		p := int(p8%8) + 1
		var bins [][]string
		total := 0
		for bi, s := range sizes {
			n := int(s % 50)
			bin := make([]string, n)
			for i := range bin {
				bin[i] = fmt.Sprintf("%d-%d", bi, i)
			}
			total += n
			bins = append(bins, bin)
		}
		tasks := AssignTasks(bins, p)
		if len(tasks) != p {
			return false
		}
		covered := make(map[string]int)
		for _, ts := range tasks {
			for _, task := range ts {
				if task.From < 0 || task.To > len(bins[task.Bin]) || task.From >= task.To {
					return false
				}
				for i := task.From; i < task.To; i++ {
					covered[bins[task.Bin][i]]++
				}
			}
		}
		if len(covered) != total {
			return false
		}
		for _, n := range covered {
			if n != 1 {
				return false
			}
		}
		// Max load is at most ceil(total/p) per Algorithm 1.
		d := 0
		if p > 0 {
			d = (total + p - 1) / p
		}
		for _, ts := range tasks {
			load := 0
			for _, task := range ts {
				load += task.To - task.From
			}
			if load > d {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAssignTasksEdgeCases(t *testing.T) {
	if tasks := AssignTasks(nil, 4); len(tasks) != 4 {
		t.Errorf("nil bins → %d workers", len(tasks))
	}
	if tasks := AssignTasks([][]string{{"a"}}, 0); len(tasks) != 1 {
		t.Errorf("p=0 should clamp to 1, got %d", len(tasks))
	}
	// More workers than literals.
	tasks := AssignTasks([][]string{{"a", "b"}}, 8)
	n := 0
	for _, ts := range tasks {
		for _, task := range ts {
			n += task.To - task.From
		}
	}
	if n != 2 {
		t.Errorf("covered %d, want 2", n)
	}
}

func TestSearchSubstring(t *testing.T) {
	lits := []string{"Kennedy", "Kennedys", "John Kennedy", "Lincoln", "Kent"}
	b := New(lits)
	got := b.SearchSubstring("Kenned", 0, 100, 4, 0)
	if len(got) != 3 {
		t.Errorf("matches = %v, want 3", got)
	}
	// Shortest first.
	if got[0] != "Kennedy" {
		t.Errorf("first = %q, want Kennedy (shortest)", got[0])
	}
}

func TestSearchSubstringRangeFilter(t *testing.T) {
	b := New([]string{"abc", "abcdefgh", "ab"})
	// Range [3,4] excludes "ab" (len 2) and "abcdefgh" (len 8).
	got := b.SearchSubstring("ab", 3, 4, 2, 0)
	if len(got) != 1 || got[0] != "abc" {
		t.Errorf("got %v, want [abc]", got)
	}
}

func TestSearchSubstringLimit(t *testing.T) {
	var lits []string
	for i := 0; i < 100; i++ {
		lits = append(lits, fmt.Sprintf("item-%03d", i))
	}
	b := New(lits)
	got := b.SearchSubstring("item", 0, 100, 8, 7)
	if len(got) != 7 {
		t.Errorf("limit 7 returned %d", len(got))
	}
}

func TestSearchSubstringEmptyPattern(t *testing.T) {
	b := New([]string{"a"})
	if got := b.SearchSubstring("", 0, 10, 2, 0); got != nil {
		t.Errorf("empty pattern = %v", got)
	}
}

func TestSearchSimilarThreshold(t *testing.T) {
	b := New([]string{"Kennedy", "Kenneth", "Lincoln", "Kennedys"})
	got := b.SearchSimilar("Kennedys", 0, 100, 4, 0.7, nil)
	// Lincoln must be filtered; Kennedy and Kenneth pass JW >= 0.7.
	for _, m := range got {
		if m.Literal == "Lincoln" {
			t.Error("Lincoln passed the 0.7 threshold")
		}
		if m.Score < 0.7 {
			t.Errorf("match %v below threshold", m)
		}
	}
	if len(got) < 2 {
		t.Errorf("matches = %v, want at least Kennedy and Kennedys", got)
	}
	// Sorted by descending score; exact self-match first.
	if got[0].Literal != "Kennedys" {
		t.Errorf("top match = %v, want Kennedys", got[0])
	}
}

func TestSearchSimilarCustomMeasure(t *testing.T) {
	b := New([]string{"viking press", "the viking press", "penguin"})
	got := b.SearchSimilar("viking press", 0, 100, 2, 0.5, similarity.JaccardTokens)
	if len(got) != 2 {
		t.Errorf("jaccard matches = %v", got)
	}
}

// TestParallelScanMatchesSequential verifies worker count does not change
// results — the invariant behind the QCM's "more cores, same answers,
// lower latency" claim.
func TestParallelScanMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var lits []string
	for i := 0; i < 500; i++ {
		lits = append(lits, fmt.Sprintf("literal %d %s", i, strings.Repeat("x", rng.Intn(20))))
	}
	b := New(lits)
	base := b.SearchSubstring("literal 4", 0, 100, 1, 0)
	for _, p := range []int{2, 4, 8} {
		got := b.SearchSubstring("literal 4", 0, 100, p, 0)
		if len(got) != len(base) {
			t.Fatalf("p=%d returned %d, want %d", p, len(got), len(base))
		}
		for i := range got {
			if got[i] != base[i] {
				t.Fatalf("p=%d result %d = %q, want %q", p, i, got[i], base[i])
			}
		}
	}
}
