package datagen

import (
	"sapphire/internal/rdf"
	"sapphire/internal/store"
)

// Split partitions the dataset into interlinked stores the way the LOD
// cloud hosts data: agents (people, organisations) on one endpoint,
// places on another, works and everything else on a third. Object IRIs
// still point across partitions — exactly the cross-endpoint links the
// federated query processor exists to join. Schema triples (the class
// hierarchy and class labels) are replicated to every partition, as
// ontologies are in practice.
func (d *Dataset) Split() (agents, places, works *store.Store) {
	agents, places, works = store.New(), store.New(), store.New()
	// Each partition loads through the staged bulk path: triples are
	// routed into per-store loaders during the scan and committed once.
	agentsL := store.NewBulkLoader(agents)
	placesL := store.NewBulkLoader(places)
	worksL := store.NewBulkLoader(works)
	all := []*store.BulkLoader{agentsL, placesL, worksL}

	typ := rdf.NewIRI(rdf.RDFType)
	owlClass := rdf.NewIRI(rdf.OWLClass)

	// Determine each subject's home partition from its types.
	home := make(map[rdf.Term]*store.BulkLoader)
	agentClasses := map[string]bool{}
	placeClasses := map[string]bool{}
	for c := range classHierarchy {
		for s := c; s != ""; s = classHierarchy[s] {
			if s == "Agent" {
				agentClasses[rdf.NSDBO+c] = true
			}
			if s == "Place" {
				placeClasses[rdf.NSDBO+c] = true
			}
		}
	}
	d.Store.Match(rdf.Term{}, typ, rdf.Term{}, func(tr rdf.Triple) bool {
		if _, done := home[tr.S]; done {
			return true
		}
		switch {
		case agentClasses[tr.O.Value]:
			home[tr.S] = agentsL
		case placeClasses[tr.O.Value]:
			home[tr.S] = placesL
		}
		return true
	})

	// Precompute the class-entity subjects. isSchema used to probe
	// d.Store.Contains from inside the full scan's callback, which
	// re-enters the shard read lock the scan holds and deadlocks once a
	// writer queues (internal/store/doc.go "ID-level API contract") —
	// a set lookup keeps the callback lock-free.
	classSubj := make(map[rdf.Term]bool)
	d.Store.Match(rdf.Term{}, typ, owlClass, func(tr rdf.Triple) bool {
		classSubj[tr.S] = true
		return true
	})
	isSchema := func(tr rdf.Triple) bool {
		if tr.P.Value == rdf.RDFSSubClassOf {
			return true
		}
		if tr.P == typ && tr.O == owlClass {
			return true
		}
		// Class entities' own triples (labels, owl:Thing typing).
		return classSubj[tr.S]
	}

	d.Store.Match(rdf.Term{}, rdf.Term{}, rdf.Term{}, func(tr rdf.Triple) bool {
		if isSchema(tr) {
			for _, l := range all {
				//sapphire:allow pinlock the loaders feed agents/places/works, not the scanned d.Store, so their dict locks are a disjoint domain and cannot form a cycle with the scan's shard read lock (internal/store/doc.go "ID-level API contract")
				l.MustAdd(tr)
			}
			return true
		}
		dst := home[tr.S]
		if dst == nil {
			dst = worksL
		}
		//sapphire:allow pinlock dst loads one of the three fresh partition stores, never the scanned d.Store — disjoint lock domain (internal/store/doc.go "ID-level API contract")
		dst.MustAdd(tr)
		return true
	})
	for _, l := range all {
		l.Commit()
	}
	return agents, places, works
}
