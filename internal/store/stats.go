package store

import (
	"sort"

	"sapphire/internal/rdf"
)

// PredicateFrequency is one row of the Q1/Q4 aggregates: a predicate and
// how many triples (or literal-valued triples) use it.
type PredicateFrequency struct {
	Predicate rdf.Term
	Count     int
}

// PredicateFrequencies returns all predicates ordered by descending triple
// count (ties broken by term order), mirroring initialization query Q1.
// Per-predicate totals are maintained on Add, so this is O(#predicates).
func (s *Store) PredicateFrequencies() []PredicateFrequency {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]PredicateFrequency, 0, len(s.pos.m))
	for p, e := range s.pos.m {
		out = append(out, PredicateFrequency{Predicate: s.dict.term(p), Count: e.total})
	}
	sortFreq(out)
	return out
}

// LiteralPredicateFrequencies returns predicates that have at least one
// literal object, ordered by descending count of literal objects. This is
// initialization query Q4 (FILTER isliteral(?o)).
func (s *Store) LiteralPredicateFrequencies() []PredicateFrequency {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]PredicateFrequency, 0, len(s.pos.m))
	for p, e := range s.pos.m {
		n := 0
		for o, subs := range e.m {
			if s.dict.term(o).IsLiteral() {
				n += len(subs)
			}
		}
		if n > 0 {
			out = append(out, PredicateFrequency{Predicate: s.dict.term(p), Count: n})
		}
	}
	sortFreq(out)
	return out
}

// TypeFrequencies returns the rdf:type objects ordered by how many
// subjects carry them — initialization query Q3 for datasets without an
// RDFS hierarchy.
func (s *Store) TypeFrequencies() []PredicateFrequency {
	s.mu.RLock()
	defer s.mu.RUnlock()
	typ, ok := s.dict.lookup(rdf.NewIRI(rdf.RDFType))
	if !ok {
		return nil
	}
	e := s.pos.m[typ]
	if e == nil {
		return nil
	}
	out := make([]PredicateFrequency, 0, len(e.m))
	for o, subs := range e.m {
		out = append(out, PredicateFrequency{Predicate: s.dict.term(o), Count: len(subs)})
	}
	sortFreq(out)
	return out
}

func sortFreq(fs []PredicateFrequency) {
	sort.Slice(fs, func(i, j int) bool {
		if fs[i].Count != fs[j].Count {
			return fs[i].Count > fs[j].Count
		}
		return fs[i].Predicate.Compare(fs[j].Predicate) < 0
	})
}

// DistinctLiterals returns the number of distinct literal terms, one of
// the dataset-scale statistics the paper reports (DBpedia: ~70M literals
// vs ~3K predicates).
func (s *Store) DistinctLiterals() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, o := range s.osp.keys {
		if s.dict.term(o).IsLiteral() {
			n++
		}
	}
	return n
}

// IncomingEdgeCount returns the number of triples whose object is the
// given term — the inner quantity of Definition 1 (literal significance).
// The per-object total is maintained on Add, so this is O(1).
func (s *Store) IncomingEdgeCount(o rdf.Term) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	oi, ok := s.dict.lookup(o)
	if !ok {
		return 0
	}
	if e := s.osp.m[oi]; e != nil {
		return e.total
	}
	return 0
}

// LiteralSignificance computes S(l) from Definition 1 for every literal:
// the number of triples (s, p1, o) such that (o, p2, l) is in the store.
// That is, a literal inherits the incoming-edge count of the entities it
// describes. The result maps literal terms to their significance score.
func (s *Store) LiteralSignificance() map[rdf.Term]int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sig := make(map[rdf.Term]int)
	// For each entity o with incoming edges, add its in-degree to every
	// literal l attached to o. The SPO and OSP indexes share one
	// dictionary, so the object ID doubles as the subject probe.
	for o, in := range s.osp.m {
		if s.dict.term(o).IsLiteral() {
			continue
		}
		if in.total == 0 {
			continue
		}
		out := s.spo.m[o]
		if out == nil {
			continue
		}
		for _, objs := range out.m {
			for _, l := range objs {
				if lt := s.dict.term(l); lt.IsLiteral() {
					sig[lt] += in.total
				}
			}
		}
	}
	return sig
}
