package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// PhaseResult is the measured outcome of one phase.
type PhaseResult struct {
	Name        string         `json:"name"`
	Kind        string         `json:"kind"`
	Ops         int            `json:"ops"`
	Clients     int            `json:"clients"`
	WallSeconds float64        `json:"wall_seconds"`
	Throughput  float64        `json:"throughput_ops_per_sec"`
	P50Ns       int64          `json:"p50_ns"`
	P90Ns       int64          `json:"p90_ns"`
	P99Ns       int64          `json:"p99_ns"`
	P999Ns      int64          `json:"p999_ns"`
	MaxNs       int64          `json:"max_ns"`
	Outcomes    map[string]int `json:"outcomes"` // ok | timeout | rejected | parse | error
}

// Report is the full scenario outcome.
type Report struct {
	Scenario string        `json:"scenario"`
	Seed     int64         `json:"seed"`
	Dataset  string        `json:"dataset"`
	Phases   []PhaseResult `json:"phases"`
}

// percentile returns the nearest-rank percentile (q in (0,1]) of sorted
// latencies; sorted must be non-empty and ascending.
func percentile(sorted []int64, q float64) int64 {
	rank := int(q*float64(len(sorted)) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// newPhaseResult computes the percentile summary from raw per-op
// latencies (any order; it sorts a copy).
func newPhaseResult(p Phase, clients int, wallSeconds float64, latencies []int64, outcomes map[string]int) PhaseResult {
	sorted := append([]int64(nil), latencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	res := PhaseResult{
		Name: p.Name, Kind: p.Kind, Ops: len(sorted), Clients: clients,
		WallSeconds: wallSeconds, Outcomes: outcomes,
	}
	if wallSeconds > 0 {
		res.Throughput = float64(len(sorted)) / wallSeconds
	}
	if len(sorted) > 0 {
		res.P50Ns = percentile(sorted, 0.50)
		res.P90Ns = percentile(sorted, 0.90)
		res.P99Ns = percentile(sorted, 0.99)
		res.P999Ns = percentile(sorted, 0.999)
		res.MaxNs = sorted[len(sorted)-1]
	}
	return res
}

// MergeBest folds repeated runs of the same scenario into one report,
// keeping per phase the minimum of each latency percentile and the
// maximum throughput — the least-noisy statistic for a regression gate,
// mirroring benchgate's best-of-N ns/op parse. All reports must have
// the same phase list (they come from the same spec).
func MergeBest(reports ...*Report) *Report {
	if len(reports) == 0 {
		return nil
	}
	out := *reports[0]
	out.Phases = append([]PhaseResult(nil), reports[0].Phases...)
	minNZ := func(a, b int64) int64 {
		if b > 0 && (a == 0 || b < a) {
			return b
		}
		return a
	}
	for _, r := range reports[1:] {
		for i := range out.Phases {
			p := &out.Phases[i]
			q := r.Phases[i]
			p.P50Ns = minNZ(p.P50Ns, q.P50Ns)
			p.P90Ns = minNZ(p.P90Ns, q.P90Ns)
			p.P99Ns = minNZ(p.P99Ns, q.P99Ns)
			p.P999Ns = minNZ(p.P999Ns, q.P999Ns)
			p.MaxNs = minNZ(p.MaxNs, q.MaxNs)
			if q.Throughput > p.Throughput {
				p.Throughput = q.Throughput
				p.WallSeconds = q.WallSeconds
			}
		}
	}
	return &out
}

// benchResult mirrors sapphire-benchgate's per-benchmark entry.
type benchResult struct {
	NsPerOp float64 `json:"ns_per_op"`
	Runs    int     `json:"runs"`
}

// benchFile mirrors sapphire-benchgate's file format.
type benchFile struct {
	Note       string                 `json:"note,omitempty"`
	Benchmarks map[string]benchResult `json:"benchmarks"`
}

// BenchRows flattens the report into benchgate rows. Latency rows
// (`Serving/<phase>/p50|p99|p999`) carry nanoseconds — higher is worse,
// benchgate's normal direction. Throughput rows
// (`Serving/<phase>/throughput`) carry ops/sec — higher is BETTER;
// benchgate's -slo mode inverts the comparison for rows with this
// suffix.
func (r *Report) BenchRows() map[string]benchResult {
	rows := make(map[string]benchResult, len(r.Phases)*4)
	for _, p := range r.Phases {
		prefix := "Serving/" + p.Name + "/"
		rows[prefix+"p50"] = benchResult{NsPerOp: float64(p.P50Ns), Runs: p.Ops}
		rows[prefix+"p99"] = benchResult{NsPerOp: float64(p.P99Ns), Runs: p.Ops}
		rows[prefix+"p999"] = benchResult{NsPerOp: float64(p.P999Ns), Runs: p.Ops}
		rows[prefix+"throughput"] = benchResult{NsPerOp: p.Throughput, Runs: p.Ops}
	}
	return rows
}

// WriteBenchJSON writes the report in the benchgate file format, plus
// the full per-phase detail under the note for humans reading the
// artifact.
func (r *Report) WriteBenchJSON(path string) error {
	f := benchFile{
		Note:       fmt.Sprintf("scenario %s seed %d dataset %s", r.Scenario, r.Seed, r.Dataset),
		Benchmarks: r.BenchRows(),
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Summary renders a human-readable per-phase table.
func (r *Report) Summary() string {
	out := fmt.Sprintf("scenario %s (seed %d, dataset %s)\n", r.Scenario, r.Seed, r.Dataset)
	out += fmt.Sprintf("%-18s %6s %8s %10s %10s %10s %10s  %s\n",
		"phase", "ops", "ops/s", "p50", "p99", "p99.9", "max", "outcomes")
	for _, p := range r.Phases {
		out += fmt.Sprintf("%-18s %6d %8.1f %10s %10s %10s %10s  %s\n",
			p.Name, p.Ops, p.Throughput,
			fmtNs(p.P50Ns), fmtNs(p.P99Ns), fmtNs(p.P999Ns), fmtNs(p.MaxNs),
			fmtOutcomes(p.Outcomes))
	}
	return out
}

func fmtNs(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.1fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.0fµs", float64(ns)/1e3)
	}
	return fmt.Sprintf("%dns", ns)
}

func fmtOutcomes(m map[string]int) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%d", k, m[k]))
	}
	if len(parts) == 0 {
		return "-"
	}
	out := parts[0]
	for _, p := range parts[1:] {
		out += " " + p
	}
	return out
}
