package sparql

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"sapphire/internal/rdf"
	"sapphire/internal/store"
)

// naiveEval is a brute-force reference for basic graph pattern matching:
// enumerate the full cartesian product of per-pattern matches and keep
// consistent assignments. Exponential, tiny inputs only — but obviously
// correct, which is the point.
func naiveEval(triples []rdf.Triple, patterns []Pattern) []Binding {
	rows := []Binding{{}}
	for _, pat := range patterns {
		var next []Binding
		for _, row := range rows {
			for _, tr := range triples {
				nb := extend(row, pat, tr)
				if nb != nil {
					next = append(next, nb)
				}
			}
		}
		rows = next
	}
	return rows
}

func extend(row Binding, pat Pattern, tr rdf.Triple) Binding {
	nb := make(Binding, len(row)+3)
	for k, v := range row {
		nb[k] = v
	}
	bind := func(n Node, t rdf.Term) bool {
		if !n.IsVar() {
			return n.Term == t
		}
		if cur, ok := nb[n.Var]; ok {
			return cur == t
		}
		nb[n.Var] = t
		return true
	}
	if !bind(pat.S, tr.S) || !bind(pat.P, tr.P) || !bind(pat.O, tr.O) {
		return nil
	}
	return nb
}

// canonical renders a solution multiset deterministically for equality
// comparison over the pattern's variables.
func canonical(rows []Binding, vars []string) []string {
	out := make([]string, len(rows))
	for i, row := range rows {
		key := ""
		for _, v := range vars {
			key += row[v].String() + "|"
		}
		out[i] = key
	}
	sort.Strings(out)
	return out
}

// TestEvalAgainstReference cross-checks the optimized evaluator's join
// results against the brute-force reference on randomized small graphs
// and patterns — the core correctness property of the SPARQL engine.
func TestEvalAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	iris := make([]rdf.Term, 8)
	for i := range iris {
		iris[i] = rdf.NewIRI(fmt.Sprintf("http://x/e%d", i))
	}
	preds := make([]rdf.Term, 3)
	for i := range preds {
		preds[i] = rdf.NewIRI(fmt.Sprintf("http://x/p%d", i))
	}
	varNames := []string{"a", "b", "c", "d"}

	randNode := func(varProb float64) Node {
		if rng.Float64() < varProb {
			return NewVar(varNames[rng.Intn(len(varNames))])
		}
		return NewTermNode(iris[rng.Intn(len(iris))])
	}
	randPredNode := func(varProb float64) Node {
		if rng.Float64() < varProb {
			return NewVar(varNames[rng.Intn(len(varNames))])
		}
		return NewTermNode(preds[rng.Intn(len(preds))])
	}

	for trial := 0; trial < 60; trial++ {
		st := store.New()
		var triples []rdf.Triple
		n := 5 + rng.Intn(25)
		for i := 0; i < n; i++ {
			tr := rdf.NewTriple(
				iris[rng.Intn(len(iris))],
				preds[rng.Intn(len(preds))],
				iris[rng.Intn(len(iris))])
			if added, err := st.Add(tr); err != nil {
				t.Fatal(err)
			} else if added {
				triples = append(triples, tr)
			}
		}
		np := 1 + rng.Intn(3)
		patterns := make([]Pattern, np)
		for i := range patterns {
			patterns[i] = Pattern{
				S: randNode(0.7),
				P: randPredNode(0.3),
				O: randNode(0.7),
			}
		}
		q := &Query{SelectAll: true, Where: patterns, Limit: -1,
			Prefixes: map[string]string{}}
		res, err := Eval(st, q, Options{})
		if err != nil {
			t.Fatalf("trial %d: eval: %v", trial, err)
		}
		want := naiveEval(triples, patterns)
		vars := q.Vars()
		got := canonical(res.Rows, vars)
		ref := canonical(projectReference(want, vars), vars)
		if len(got) != len(ref) {
			t.Fatalf("trial %d: %d rows, reference %d\npatterns: %v",
				trial, len(got), len(ref), patterns)
		}
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("trial %d row %d:\n got %q\nwant %q\npatterns %v",
					trial, i, got[i], ref[i], patterns)
			}
		}
	}
}

// projectReference narrows reference rows to the projected variables (the
// engine's SELECT * drops nothing, but the reference may carry more).
func projectReference(rows []Binding, vars []string) []Binding {
	out := make([]Binding, len(rows))
	for i, row := range rows {
		nb := make(Binding, len(vars))
		for _, v := range vars {
			if t, ok := row[v]; ok {
				nb[v] = t
			}
		}
		out[i] = nb
	}
	return out
}

// TestEvalDistinctAgainstReference adds DISTINCT to the cross-check.
func TestEvalDistinctAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	st := store.New()
	p := rdf.NewIRI("http://x/p")
	var triples []rdf.Triple
	for i := 0; i < 30; i++ {
		tr := rdf.NewTriple(
			rdf.NewIRI(fmt.Sprintf("http://x/s%d", rng.Intn(5))),
			p,
			rdf.NewIRI(fmt.Sprintf("http://x/o%d", rng.Intn(4))))
		if added, _ := st.Add(tr); added {
			triples = append(triples, tr)
		}
	}
	q := MustParse(`SELECT DISTINCT ?o WHERE { ?s <http://x/p> ?o . }`)
	res, err := Eval(st, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[rdf.Term]bool)
	for _, tr := range triples {
		seen[tr.O] = true
	}
	if len(res.Rows) != len(seen) {
		t.Errorf("distinct rows = %d, want %d", len(res.Rows), len(seen))
	}
}
