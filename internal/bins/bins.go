// Package bins implements the residual literal bins of Section 5.2: the
// cached literals that do not fit in the suffix tree, organized into bins
// keyed by literal length so that the QCM's sequential scan only touches
// bins in [|t|, |t|+γ] and the QSM's similarity search only touches bins
// in [|l|−α, |l|+β]. Scans are parallelized over P workers using the
// load-balancing task assignment of Algorithm 1.
package bins

import (
	"sort"
	"strings"
	"sync"

	"sapphire/internal/similarity"
)

// Bins holds residual literals bucketed by rune length. The zero value is
// not usable; call New.
type Bins struct {
	byLen map[int][]string
	total int
}

// New builds bins from the given literals. Duplicates are kept only once
// per bin. Bin key is the rune length of the literal, mirroring
// bin(literal) = |literal| from the paper.
func New(literals []string) *Bins {
	b := &Bins{byLen: make(map[int][]string)}
	seen := make(map[string]bool, len(literals))
	for _, l := range literals {
		if l == "" || seen[l] {
			continue
		}
		seen[l] = true
		n := len([]rune(l))
		b.byLen[n] = append(b.byLen[n], l)
		b.total++
	}
	for n := range b.byLen {
		sort.Strings(b.byLen[n])
	}
	return b
}

// Len returns the total number of binned literals.
func (b *Bins) Len() int { return b.total }

// BinCount returns the number of non-empty bins (the paper reports ~80
// bins for DBpedia under the 80-char cap).
func (b *Bins) BinCount() int { return len(b.byLen) }

// BinSizes returns a map from length to bin size.
func (b *Bins) BinSizes() map[int]int {
	out := make(map[int]int, len(b.byLen))
	for n, ls := range b.byLen {
		out[n] = len(ls)
	}
	return out
}

// Select returns the literals of all bins with length in [lo, hi],
// concatenated in deterministic order. This is the bins′ input of
// Algorithms 1 and 2.
func (b *Bins) Select(lo, hi int) [][]string {
	if lo < 0 {
		lo = 0
	}
	var out [][]string
	for n := lo; n <= hi; n++ {
		if ls, ok := b.byLen[n]; ok {
			out = append(out, ls)
		}
	}
	return out
}

// SelectedCount returns the number of literals in bins [lo, hi]. The
// paper reports that length filtering eliminates ~46% of literals from
// a QCM scan on average.
func (b *Bins) SelectedCount(lo, hi int) int {
	n := 0
	for _, bin := range b.Select(lo, hi) {
		n += len(bin)
	}
	return n
}

// Task is one worker assignment produced by Algorithm 1: a contiguous
// range [From, To) within bin Bin.
type Task struct {
	Bin      int // index into the bins′ slice
	From, To int // literal index range within the bin
}

// AssignTasks implements Algorithm 1 ("Assign Tasks to Processes"): it
// distributes the literals of the selected bins over p workers so that
// each worker scans an (almost) equal number of literals, splitting bins
// across workers when needed. The result has exactly p entries (some may
// be empty when there are fewer literals than workers).
func AssignTasks(bins [][]string, p int) [][]Task {
	if p <= 0 {
		p = 1
	}
	total := 0
	for _, bin := range bins {
		total += len(bin)
	}
	out := make([][]Task, p)
	if total == 0 {
		return out
	}
	// Process capacity d = ceil(n/P) so that capacities cover all
	// literals (the paper's integer division is interpreted as an even
	// split; ceiling keeps the final worker from overflowing).
	d := (total + p - 1) / p
	cap := make([]int, p)
	for i := range cap {
		cap[i] = d
	}
	pid := 0
	for bi, bin := range bins {
		j := len(bin) // literals remaining in bin bi
		for j > 0 {
			if pid >= p {
				pid = p - 1
			}
			if cap[pid] == 0 {
				pid++
				continue
			}
			if j <= cap[pid] {
				// Worker pid takes the rest of the bin.
				out[pid] = append(out[pid], Task{Bin: bi, From: len(bin) - j, To: len(bin)})
				cap[pid] -= j
				j = 0
			} else {
				out[pid] = append(out[pid], Task{Bin: bi, From: len(bin) - j, To: len(bin) - j + cap[pid]})
				j -= cap[pid]
				cap[pid] = 0
				pid++
			}
		}
	}
	return out
}

// SearchSubstring scans bins [lo, hi] with p parallel workers and returns
// up to limit literals containing pattern, shortest first (the QCM
// returns the shortest residual matches; Section 6.1). limit <= 0 means
// all.
func (b *Bins) SearchSubstring(pattern string, lo, hi, p, limit int) []string {
	if pattern == "" {
		return nil
	}
	sel := b.Select(lo, hi)
	matches := b.parallelScan(sel, p, func(l string) bool {
		return strings.Contains(l, pattern)
	})
	sortShortestFirst(matches)
	if limit > 0 && len(matches) > limit {
		matches = matches[:limit]
	}
	return matches
}

// SimilarityMatch is a literal with its similarity score.
type SimilarityMatch struct {
	Literal string
	Score   float64
}

// SearchSimilar scans bins [lo, hi] with p workers and returns all
// literals whose similarity to target (under measure m, Jaro-Winkler when
// nil) is at least theta, sorted by descending score. This is the literal
// alternative search of Algorithm 2 (line 9).
func (b *Bins) SearchSimilar(target string, lo, hi, p int, theta float64, m similarity.Measure) []SimilarityMatch {
	if m == nil {
		m = similarity.JaroWinkler
	}
	sel := b.Select(lo, hi)
	type scored struct {
		lit   string
		score float64
	}
	tasks := AssignTasks(sel, p)
	results := make([][]scored, len(tasks))
	var wg sync.WaitGroup
	for wi, ts := range tasks {
		wg.Add(1)
		go func(wi int, ts []Task) {
			defer wg.Done()
			var local []scored
			for _, task := range ts {
				for _, l := range sel[task.Bin][task.From:task.To] {
					if s := m(target, l); s >= theta {
						local = append(local, scored{l, s})
					}
				}
			}
			results[wi] = local
		}(wi, ts)
	}
	wg.Wait()
	var out []SimilarityMatch
	for _, rs := range results {
		for _, r := range rs {
			out = append(out, SimilarityMatch{Literal: r.lit, Score: r.score})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Literal < out[j].Literal
	})
	return out
}

// parallelScan runs pred over the selected bins using Algorithm 1 task
// assignment and returns matching literals.
func (b *Bins) parallelScan(sel [][]string, p int, pred func(string) bool) []string {
	tasks := AssignTasks(sel, p)
	results := make([][]string, len(tasks))
	var wg sync.WaitGroup
	for wi, ts := range tasks {
		wg.Add(1)
		go func(wi int, ts []Task) {
			defer wg.Done()
			var local []string
			for _, task := range ts {
				for _, l := range sel[task.Bin][task.From:task.To] {
					if pred(l) {
						local = append(local, l)
					}
				}
			}
			results[wi] = local
		}(wi, ts)
	}
	wg.Wait()
	var out []string
	for _, rs := range results {
		out = append(out, rs...)
	}
	return out
}

func sortShortestFirst(ls []string) {
	sort.Slice(ls, func(i, j int) bool {
		if len(ls[i]) != len(ls[j]) {
			return len(ls[i]) < len(ls[j])
		}
		return ls[i] < ls[j]
	})
}
