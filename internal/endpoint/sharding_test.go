package endpoint

import (
	"fmt"
	"math/rand"
	"testing"

	"sapphire/internal/rdf"
	"sapphire/internal/store"
)

// shardingWorkload replays the seeded random workload TestCacheEquivalence
// uses — queries drawn from cacheWorkloadQueries interleaved with online
// Adds, staged bulk commits, and duplicate Adds — against a store with
// the given (storeShards, dictShards) configuration. It returns every
// query's byte-exact dump and, per mutation step, whether the store's
// epoch moved.
func shardingWorkload(t *testing.T, storeShards, dictShards int) (dumps []string, epochMoved []bool) {
	t.Helper()
	const seed = 77
	rng := rand.New(rand.NewSource(seed))
	const base = 30
	s := store.NewShardedDict(storeShards, dictShards)
	typ := rdf.NewIRI(rdf.RDFType)
	person := rdf.NewIRI("http://x/Person")
	name := rdf.NewIRI("http://x/name")
	for i := 0; i < base; i++ {
		subj := rdf.NewIRI(fmt.Sprintf("http://x/p%d", i))
		s.MustAdd(rdf.NewTriple(subj, typ, person))
		s.MustAdd(rdf.NewTriple(subj, name,
			rdf.NewLangLiteral(fmt.Sprintf("Person %d", i), "en")))
	}
	ep := NewLocal(fmt.Sprintf("store%d-dict%d", storeShards, dictShards), s,
		Limits{CacheBytes: 1 << 20})
	loader := store.NewBulkLoader(s)
	next := base

	mutate := func() {
		switch rng.Intn(3) {
		case 0: // online single Add
			subj := rdf.NewIRI(fmt.Sprintf("http://x/p%d", next))
			s.MustAdd(rdf.NewTriple(subj, typ, person))
			next++
		case 1: // staged bulk batch, committed at once
			batch := 1 + rng.Intn(5)
			for j := 0; j < batch; j++ {
				subj := rdf.NewIRI(fmt.Sprintf("http://x/p%d", next))
				loader.MustAdd(rdf.NewTriple(subj, typ, person))
				loader.MustAdd(rdf.NewTriple(subj, name,
					rdf.NewLangLiteral(fmt.Sprintf("Person %d", next), "en")))
				next++
			}
			loader.Commit()
		default: // duplicate Add: must not move any epoch
			s.MustAdd(rdf.NewTriple(rdf.NewIRI("http://x/p0"), typ, person))
		}
	}

	last := s.Epoch()
	for round := 0; round < 40; round++ {
		for k := 0; k < 6; k++ {
			q := cacheWorkloadQueries(rng, next)
			dumps = append(dumps, q+"\n"+dump(mustQuery(t, ep, q)))
		}
		mutate()
		e := s.Epoch()
		epochMoved = append(epochMoved, e != last)
		last = e
	}
	return dumps, epochMoved
}

// TestShardingDifferentialEquivalence sweeps every (dictShards ×
// storeShards) combination in {1,2,8}² through the seeded random query
// workload and pins observational equivalence against the (1,1)
// configuration: every answer byte-identical (same rows, same order,
// through the caching endpoint), and the epoch moving at exactly the
// same workload steps. Epoch *values* are allowed to differ across
// store-shard counts — a multi-shard bulk commit bumps one epoch per
// touched shard — but whether a step moved the epoch is part of the
// cache-invalidation contract and must not depend on either shard
// count.
func TestShardingDifferentialEquivalence(t *testing.T) {
	baseDumps, baseMoves := shardingWorkload(t, 1, 1)
	if len(baseDumps) == 0 {
		t.Fatal("workload produced no queries")
	}
	for _, storeShards := range []int{1, 2, 8} {
		for _, dictShards := range []int{1, 2, 8} {
			if storeShards == 1 && dictShards == 1 {
				continue
			}
			t.Run(fmt.Sprintf("store%d-dict%d", storeShards, dictShards), func(t *testing.T) {
				dumps, moves := shardingWorkload(t, storeShards, dictShards)
				if len(dumps) != len(baseDumps) {
					t.Fatalf("ran %d queries, baseline ran %d", len(dumps), len(baseDumps))
				}
				for i := range dumps {
					if dumps[i] != baseDumps[i] {
						t.Fatalf("query %d differs from (1,1) baseline:\n%s\n--- baseline ---\n%s",
							i, dumps[i], baseDumps[i])
					}
				}
				for i := range moves {
					if moves[i] != baseMoves[i] {
						t.Fatalf("epoch movement at step %d = %v, baseline %v", i, moves[i], baseMoves[i])
					}
				}
			})
		}
	}
}
