package sparql

import (
	"strings"
	"testing"

	"sapphire/internal/rdf"
)

// evalExpr parses a filter expression embedded in a query and evaluates
// it under the given binding, returning the effective boolean value.
func evalExpr(t *testing.T, expr string, b Binding) (bool, error) {
	t.Helper()
	q, err := Parse(`SELECT ?x WHERE { ?x ?p ?o . FILTER (` + expr + `) }`)
	if err != nil {
		t.Fatalf("parse FILTER(%s): %v", expr, err)
	}
	v, err := q.Filters[0].Eval(b)
	if err != nil {
		return false, err
	}
	return v.EffectiveBool()
}

func mustTrue(t *testing.T, expr string, b Binding) {
	t.Helper()
	got, err := evalExpr(t, expr, b)
	if err != nil || !got {
		t.Errorf("FILTER(%s) = %v, %v; want true", expr, got, err)
	}
}

func mustFalse(t *testing.T, expr string, b Binding) {
	t.Helper()
	got, err := evalExpr(t, expr, b)
	if err != nil || got {
		t.Errorf("FILTER(%s) = %v, %v; want false", expr, got, err)
	}
}

func mustErr(t *testing.T, expr string, b Binding) {
	t.Helper()
	if _, err := evalExpr(t, expr, b); err == nil {
		t.Errorf("FILTER(%s) succeeded, want evaluation error", expr)
	}
}

func bnd() Binding {
	return Binding{
		"iri":  rdf.NewIRI("http://x/thing"),
		"lit":  rdf.NewLangLiteral("Hello World", "en"),
		"de":   rdf.NewLangLiteral("Hallo", "de"),
		"num":  rdf.NewTypedLiteral("42", rdf.XSDInteger),
		"dbl":  rdf.NewTypedLiteral("2.5", rdf.XSDDouble),
		"bool": rdf.NewTypedLiteral("true", rdf.XSDBoolean),
		"bn":   rdf.NewBlank("b0"),
		"str":  rdf.NewLiteral("plain"),
	}
}

func TestTypeCheckFunctions(t *testing.T) {
	b := bnd()
	mustTrue(t, "isliteral(?lit)", b)
	mustFalse(t, "isliteral(?iri)", b)
	mustTrue(t, "isiri(?iri)", b)
	mustTrue(t, "isuri(?iri)", b)
	mustFalse(t, "isiri(?lit)", b)
	mustTrue(t, "isblank(?bn)", b)
	mustFalse(t, "isblank(?iri)", b)
	mustTrue(t, "bound(?lit)", b)
	mustFalse(t, "bound(?missing)", b)
}

func TestStringFunctions(t *testing.T) {
	b := bnd()
	mustTrue(t, `lang(?lit) = "en"`, b)
	mustTrue(t, `lang(?str) = ""`, b)
	mustTrue(t, `langmatches(lang(?lit), "EN")`, b)
	mustTrue(t, `langmatches(lang(?lit), "*")`, b)
	mustFalse(t, `langmatches(lang(?str), "*")`, b)
	mustTrue(t, `strlen(str(?lit)) = 11`, b)
	mustTrue(t, `contains(str(?lit), "World")`, b)
	mustFalse(t, `contains(str(?lit), "world")`, b)
	mustTrue(t, `contains(lcase(str(?lit)), "world")`, b)
	mustTrue(t, `ucase(str(?str)) = "PLAIN"`, b)
	mustTrue(t, `strstarts(str(?lit), "Hello")`, b)
	mustTrue(t, `strends(str(?lit), "World")`, b)
	mustFalse(t, `strstarts(str(?lit), "World")`, b)
}

func TestDatatypeFunction(t *testing.T) {
	b := bnd()
	mustTrue(t, `datatype(?num) = <http://www.w3.org/2001/XMLSchema#integer>`, b)
	mustTrue(t, `datatype(?str) = <http://www.w3.org/2001/XMLSchema#string>`, b)
	mustErr(t, `datatype(?iri)`, b)
	mustErr(t, `lang(?iri)`, b)
}

func TestRegexFunction(t *testing.T) {
	b := bnd()
	mustTrue(t, `regex(str(?lit), "^Hello")`, b)
	mustTrue(t, `regex(str(?lit), "hello", "i")`, b)
	mustFalse(t, `regex(str(?lit), "^World")`, b)
	mustErr(t, `regex(str(?lit), "(unclosed")`, b)
}

func TestNumericComparisons(t *testing.T) {
	b := bnd()
	mustTrue(t, "?num > 40", b)
	mustTrue(t, "?num >= 42", b)
	mustTrue(t, "?num <= 42", b)
	mustFalse(t, "?num < 42", b)
	mustTrue(t, "?dbl < ?num", b)
	mustTrue(t, "?num = 42", b)
	mustTrue(t, "?num != 41", b)
}

func TestArithmetic(t *testing.T) {
	b := bnd()
	mustTrue(t, "?num + 8 = 50", b)
	mustTrue(t, "?num - 2 = 40", b)
	mustTrue(t, "?num * 2 = 84", b)
	mustTrue(t, "?num / 2 = 21", b)
	mustTrue(t, "-?num = 0 - 42", b)
	mustErr(t, "?num / 0 = 1", b)
	mustErr(t, "?iri + 1 = 2", b)
}

func TestLogicalOperators(t *testing.T) {
	b := bnd()
	mustTrue(t, "?num = 42 && ?dbl = 2.5", b)
	mustFalse(t, "?num = 42 && ?dbl = 9", b)
	mustTrue(t, "?num = 0 || ?dbl = 2.5", b)
	mustFalse(t, "?num = 0 || ?dbl = 9", b)
	mustTrue(t, "!(?num = 0)", b)
	// SPARQL error tolerance: OR succeeds when one side errors but the
	// other is true; AND fails fast when one side is false.
	mustTrue(t, "?missing = 1 || ?num = 42", b)
	mustFalse(t, "?missing = 1 && ?num = 0", b)
	mustErr(t, "?missing = 1 || ?num = 0", b)
	mustErr(t, "?missing = 1 && ?num = 42", b)
}

func TestEqualitySemantics(t *testing.T) {
	b := bnd()
	// Language tags compare case-insensitively; differing tags differ.
	b["litEN"] = rdf.NewLangLiteral("Hallo", "EN")
	mustFalse(t, "?de = ?litEN", b)
	// Plain literal vs xsd:string-typed literal are value-equal.
	b["typed"] = rdf.NewTypedLiteral("plain", rdf.XSDString)
	mustTrue(t, "?str = ?typed", b)
	// IRIs equal only to themselves.
	mustTrue(t, "?iri = <http://x/thing>", b)
	mustFalse(t, "?iri = <http://x/other>", b)
	// Numeric promotion: integer 42 equals double 42.0.
	b["d42"] = rdf.NewTypedLiteral("42.0", rdf.XSDDouble)
	mustTrue(t, "?num = ?d42", b)
	// But two plain strings that happen to parse numerically compare
	// as strings.
	b["s1"] = rdf.NewLiteral("01")
	b["s2"] = rdf.NewLiteral("1")
	mustFalse(t, "?s1 = ?s2", b)
}

func TestEffectiveBooleanValue(t *testing.T) {
	b := bnd()
	mustTrue(t, "?bool", b)
	b["boolF"] = rdf.NewTypedLiteral("false", rdf.XSDBoolean)
	mustFalse(t, "?boolF", b)
	mustTrue(t, "?num", b) // non-zero number
	b["zero"] = rdf.NewTypedLiteral("0", rdf.XSDInteger)
	mustFalse(t, "?zero", b)
	mustTrue(t, "?str", b) // non-empty string
	b["empty"] = rdf.NewLiteral("")
	mustFalse(t, "?empty", b)
	mustErr(t, "?iri", b) // no EBV for IRIs
	b["nan"] = rdf.NewTypedLiteral("abc", rdf.XSDInteger)
	mustErr(t, "?nan", b)
}

func TestFunctionArityErrors(t *testing.T) {
	b := bnd()
	mustErr(t, "strlen()", b)
	mustErr(t, `contains(str(?lit))`, b)
	mustErr(t, "unknownfn(?lit)", b)
	mustErr(t, "bound(str(?lit))", b) // bound requires a variable
	mustErr(t, `regex(str(?lit), "a", "i", "extra")`, b)
}

func TestLiteralConstantsInExpressions(t *testing.T) {
	b := bnd()
	mustTrue(t, `?lit = "Hello World"@en`, b)
	mustFalse(t, `?lit = "Hello World"@de`, b)
	mustTrue(t, `?num = "42"^^<http://www.w3.org/2001/XMLSchema#integer>`, b)
}

func TestExprStringRendering(t *testing.T) {
	q := MustParse(`SELECT ?x WHERE { ?x ?p ?o .
		FILTER (isliteral(?o) && strlen(str(?o)) < 80 || !(?x = <http://a>)) }`)
	s := q.Filters[0].String()
	for _, want := range []string{"isliteral(?o)", "strlen", "&&", "||", "!("} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered expr %q missing %q", s, want)
		}
	}
	// Rendered expressions re-parse.
	if _, err := Parse(`SELECT ?x WHERE { ?x ?p ?o . FILTER (` + s + `) }`); err != nil {
		t.Errorf("rendered expr does not re-parse: %v", err)
	}
}

func TestExprVars(t *testing.T) {
	q := MustParse(`SELECT ?x WHERE { ?x ?p ?o .
		FILTER (contains(str(?o), "a") && ?x != <http://b> || bound(?p)) }`)
	set := make(map[string]bool)
	q.Filters[0].ExprVars(set)
	for _, v := range []string{"o", "x", "p"} {
		if !set[v] {
			t.Errorf("ExprVars missing %q: %v", v, set)
		}
	}
}

func TestValueCoercions(t *testing.T) {
	// asStr via comparisons against different value kinds.
	b := bnd()
	mustTrue(t, `str(?num) = "42"`, b)
	mustTrue(t, `str(?iri) = "http://x/thing"`, b)
	mustTrue(t, `str(?bool) = "true"`, b)
	// xsd:boolean literals do not participate in arithmetic.
	mustErr(t, "?bool + 1 = 2", b)
}
