package operator

import (
	"context"
	"strings"
	"testing"

	"sapphire/internal/bootstrap"
	"sapphire/internal/datagen"
	"sapphire/internal/endpoint"
	"sapphire/internal/federation"
	"sapphire/internal/pum"
	"sapphire/internal/qald"
)

var shared struct {
	op    *Operator
	store interface{}
	d     *datagen.Dataset
}

func testOperator(t testing.TB) (*Operator, *datagen.Dataset) {
	t.Helper()
	if shared.op != nil {
		return shared.op, shared.d
	}
	d := datagen.Generate(datagen.SmallConfig())
	ep := endpoint.NewLocal("synthetic-dbpedia", d.Store, endpoint.Limits{})
	cache, err := bootstrap.Initialize(context.Background(), ep, bootstrap.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	fed := federation.New(ep)
	p := pum.New(cache, fed, nil, pum.DefaultConfig())
	shared.op = New(p)
	shared.d = d
	return shared.op, shared.d
}

func TestBuildQueryResolvesExactPredicates(t *testing.T) {
	op, _ := testOperator(t)
	q, err := op.BuildQuery(qald.Plan{
		Triples: []qald.PlanTriple{
			{S: qald.V("c"), P: qald.P("name"), O: qald.L("Australia")},
			{S: qald.V("c"), P: qald.P("capital"), O: qald.V("cap")},
		},
		Project: "cap",
	})
	if err != nil {
		t.Fatal(err)
	}
	s := q.String()
	if !strings.Contains(s, "dbpedia.org/ontology/capital") {
		t.Errorf("capital not resolved:\n%s", s)
	}
	if !strings.Contains(s, `"Australia"@en`) {
		t.Errorf("literal not resolved with language tag:\n%s", s)
	}
}

func TestBuildQueryUnknownPredicateStaysTyped(t *testing.T) {
	op, _ := testOperator(t)
	q, err := op.BuildQuery(qald.Plan{
		Triples: []qald.PlanTriple{
			{S: qald.V("p"), P: qald.P("completely unknown relation"), O: qald.V("x")},
		},
		Project: "x",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(q.String(), "completelyUnknownRelation") {
		t.Errorf("unknown keyword not kept as typed:\n%s", q)
	}
}

func TestAnswerEasyFactoid(t *testing.T) {
	op, d := testOperator(t)
	var e2 qald.Question
	for _, q := range qald.Questions() {
		if q.ID == "E2" {
			e2 = q
		}
	}
	answers, processed := op.Answer(context.Background(), e2)
	if !processed {
		t.Fatal("E2 not processed")
	}
	gold, err := qald.GoldAnswers(d.Store, e2)
	if err != nil {
		t.Fatal(err)
	}
	if qald.Judge(answers, gold) != qald.Right {
		t.Errorf("E2 answers = %v, gold %v", answers.Values(), gold.Values())
	}
}

func TestAnswerNeedsLexiconBridge(t *testing.T) {
	op, d := testOperator(t)
	// E4 uses "wife", data says spouse — requires a QSM round.
	var e4 qald.Question
	for _, q := range qald.Questions() {
		if q.ID == "E4" {
			e4 = q
		}
	}
	out := op.Attempt(context.Background(), e4)
	if out == nil || len(out.Answers) == 0 {
		t.Fatal("E4 unanswered")
	}
	gold, _ := qald.GoldAnswers(d.Store, e4)
	if qald.Judge(out.Answers, gold) != qald.Right {
		t.Errorf("E4 = %v, gold %v", out.Answers.Values(), gold.Values())
	}
	if !out.UsedAltPredicate {
		t.Error("expected the 'wife' keyword to need a predicate alternative")
	}
}

// TestAnswerFullSuite is the core Table 1 Sapphire row: the simulated
// operator should answer the vast majority of the 50 questions exactly,
// and every answered question must be exactly right (precision 1.0).
func TestAnswerFullSuite(t *testing.T) {
	op, d := testOperator(t)
	row, err := qald.Evaluate(context.Background(), op, qald.Questions(), d.Store)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("Sapphire row: pro=%d ri=%d par=%d R=%.2f P=%.2f F1=%.2f",
		row.Processed, row.Right, row.Partial, row.Recall(), row.Precision(), row.F1())
	if row.Recall() < 0.8 {
		t.Errorf("recall = %.2f, want >= 0.8 (paper: 0.86)", row.Recall())
	}
	if row.Precision() < 0.95 {
		t.Errorf("precision = %.2f, want ~1.0", row.Precision())
	}
}

func TestCorruptionStillRecovers(t *testing.T) {
	op, d := testOperator(t)
	defer func() { op.Corrupt = nil }()
	// Misspell literals with a trailing 's' (the Kennedys scenario).
	op.Corrupt = func(kw string) string {
		if strings.Contains(kw, "Kennedy") {
			return kw + "s"
		}
		return kw
	}
	var e2 qald.Question
	for _, q := range qald.Questions() {
		if q.ID == "E2" {
			e2 = q
		}
	}
	out := op.Attempt(context.Background(), e2)
	if out == nil || len(out.Answers) == 0 {
		t.Fatal("corrupted E2 unanswered")
	}
	gold, _ := qald.GoldAnswers(d.Store, e2)
	if qald.Judge(out.Answers, gold) != qald.Right {
		t.Errorf("corrupted E2 = %v", out.Answers.Values())
	}
}

func TestCamel(t *testing.T) {
	cases := map[string]string{
		"vice president":  "vicePresident",
		"name":            "name",
		"number of pages": "numberOfPages",
	}
	for in, want := range cases {
		if got := camel(in); got != want {
			t.Errorf("camel(%q) = %q, want %q", in, got, want)
		}
	}
}
