module sapphire

go 1.24
