package pum

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"sapphire/internal/bins"
	"sapphire/internal/bootstrap"
	"sapphire/internal/rdf"
	"sapphire/internal/sparql"
)

// SuggestionKind classifies a QSM suggestion.
type SuggestionKind uint8

const (
	// AltPredicate replaces one predicate with a similar one.
	AltPredicate SuggestionKind = iota
	// AltLiteral replaces one literal with a similar one.
	AltLiteral
	// Relaxation rewrites the query structure via the Steiner tree.
	Relaxation
)

func (k SuggestionKind) String() string {
	switch k {
	case AltPredicate:
		return "alternative-predicate"
	case AltLiteral:
		return "alternative-literal"
	default:
		return "relaxed-structure"
	}
}

// Suggestion is one QSM proposal: a complete, executable query plus the
// single change it makes, its similarity score, and the prefetched
// answer count (the UI shows "did you mean X instead of Y? There are N
// answers available").
type Suggestion struct {
	Kind SuggestionKind
	// Query is the full alternative query.
	Query *sparql.Query
	// TripleIndex is the index of the changed pattern (−1 for
	// relaxation, which rewrites the whole structure).
	TripleIndex int
	// Old and New are the replaced and replacement terms (display form
	// for predicates, lexical form for literals).
	Old, New string
	// Score is the similarity score that ranked this alternative.
	Score float64
	// Answers is the prefetched result count.
	Answers int
	// Prefetched holds the results so accepting the suggestion needs no
	// re-execution.
	Prefetched *sparql.Results
}

// Message renders the one-change-at-a-time UI text of Section 4.
func (s Suggestion) Message() string {
	if s.Kind == Relaxation {
		return fmt.Sprintf("Consider a relaxed query structure connecting your literals. There are %d answers available.", s.Answers)
	}
	return fmt.Sprintf("Did you mean %q instead of %q? There are %d answers available.", s.New, s.Old, s.Answers)
}

// Suggest implements the QSM: Algorithm 2 (alternative terms) followed by
// structure relaxation (Section 6.2.2) when the query has literals. The
// returned suggestions all have at least one answer, top K/2 per
// direction, sorted by answers desc then score desc.
func (p *PUM) Suggest(ctx context.Context, q *sparql.Query) ([]Suggestion, error) {
	predAlts := p.predicateAlternatives(q)
	litAlts := p.literalAlternatives(q)

	// Build candidate queries: one change each (Algorithm 2 lines 15–22).
	var candidates []Suggestion
	candidates = append(candidates, predAlts...)
	candidates = append(candidates, litAlts...)

	// Execute candidates and keep those with answers (TopQueriesWithAnswer).
	kept := p.prefetch(ctx, candidates)

	half := p.cfg.K / 2
	var out []Suggestion
	out = append(out, topByKind(kept, AltPredicate, half)...)
	out = append(out, topByKind(kept, AltLiteral, half)...)

	// Structure relaxation for queries with literals.
	if relax, err := p.Relax(ctx, q, litAlts); err == nil && relax != nil {
		out = append(out, *relax)
	}
	return out, nil
}

// PredAlt is a ranked alternative predicate.
type PredAlt struct {
	Pred  rdf.Term
	Score float64
}

// AlternativePredicates finds cached predicates similar (≥ θ) to the
// given display name or any of its lexicon verbalizations — Algorithm 2
// lines 3–7 without query construction. Results are ranked by score;
// ties keep the cache's most-frequent-first order, mirroring Sapphire's
// frequency prioritization.
func (p *PUM) AlternativePredicates(display string) []PredAlt {
	lexica := p.lex.Lexica(display)
	best := make(map[rdf.Term]float64)
	for _, verb := range lexica {
		for _, cand := range p.cache.Predicates {
			d := displayOf(cand)
			if d == display {
				continue
			}
			if s := p.cfg.Measure(verb, d); s >= p.cfg.Theta && s > best[cand] {
				best[cand] = s
			}
		}
	}
	ranked := make([]PredAlt, 0, len(best))
	for _, cand := range p.cache.Predicates { // preserves frequency order
		if s, ok := best[cand]; ok {
			ranked = append(ranked, PredAlt{Pred: cand, Score: s})
		}
	}
	sort.SliceStable(ranked, func(i, j int) bool { return ranked[i].Score > ranked[j].Score })
	return ranked
}

// predicateAlternatives finds replacement predicates for every bound
// predicate in the query (Algorithm 2 lines 3–7).
func (p *PUM) predicateAlternatives(q *sparql.Query) []Suggestion {
	var out []Suggestion
	for ti, pat := range q.Where {
		if pat.P.IsVar() {
			continue
		}
		cur := pat.P.Term
		curDisplay := displayOf(cur)
		for _, r := range p.AlternativePredicates(curDisplay) {
			if r.Pred == cur {
				continue
			}
			nq := q.Clone()
			nq.Where[ti].P = sparql.NewTermNode(r.Pred)
			out = append(out, Suggestion{
				Kind:        AltPredicate,
				Query:       nq,
				TripleIndex: ti,
				Old:         curDisplay,
				New:         displayOf(r.Pred),
				Score:       r.Score,
			})
		}
	}
	return out
}

// literalAlternatives finds replacement literals for every literal object
// in the query by similarity search over the residual bins of length
// [|l|−α, |l|+β] plus the significant literals in the suffix tree
// (Algorithm 2 line 9).
func (p *PUM) literalAlternatives(q *sparql.Query) []Suggestion {
	var out []Suggestion
	for ti, pat := range q.Where {
		if pat.O.IsVar() || !pat.O.Term.IsLiteral() {
			continue
		}
		cur := pat.O.Term
		lo := len([]rune(cur.Value)) - p.cfg.Alpha
		hi := len([]rune(cur.Value)) + p.cfg.Beta
		matches := p.cache.Bins.SearchSimilar(cur.Value, lo, hi, p.cfg.Workers, p.cfg.Theta, p.cfg.Measure)
		// The significant literals live in the suffix tree, not the
		// bins; include them in the alternative search so the most
		// important literals are never invisible to the QSM.
		for _, lex := range p.cache.Literals() {
			if !p.cache.InSuffixTree(lex) {
				continue
			}
			n := len([]rune(lex))
			if n < lo || n > hi {
				continue
			}
			if s := p.cfg.Measure(cur.Value, lex); s >= p.cfg.Theta {
				matches = append(matches, bins.SimilarityMatch{Literal: lex, Score: s})
			}
		}
		sort.Slice(matches, func(i, j int) bool {
			if matches[i].Score != matches[j].Score {
				return matches[i].Score > matches[j].Score
			}
			return matches[i].Literal < matches[j].Literal
		})
		for _, m := range matches {
			if m.Literal == cur.Value {
				continue
			}
			term, ok := p.cache.LiteralTerm(m.Literal)
			if !ok {
				term = rdf.NewLangLiteral(m.Literal, "en")
			}
			nq := q.Clone()
			nq.Where[ti].O = sparql.NewTermNode(term)
			out = append(out, Suggestion{
				Kind:        AltLiteral,
				Query:       nq,
				TripleIndex: ti,
				Old:         cur.Value,
				New:         m.Literal,
				Score:       m.Score,
			})
		}
	}
	return out
}

// prefetch executes candidate queries (capped at MaxCandidates per kind,
// best score first) and keeps the ones that return answers, storing the
// results for instantaneous acceptance. Execution is concurrent — the
// paper runs suggested queries "in the background using the Federated
// Query Processor" so accepting one displays answers immediately — but
// the returned order is deterministic (candidate order).
func (p *PUM) prefetch(ctx context.Context, candidates []Suggestion) []Suggestion {
	sort.SliceStable(candidates, func(i, j int) bool {
		return candidates[i].Score > candidates[j].Score
	})
	counts := make(map[SuggestionKind]int)
	var selected []Suggestion
	for _, c := range candidates {
		if counts[c.Kind] >= p.cfg.MaxCandidates {
			continue
		}
		counts[c.Kind]++
		selected = append(selected, c)
	}
	workers := p.cfg.Workers
	if workers < 1 {
		workers = 1
	}
	results := make([]*sparql.Results, len(selected))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := range selected {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			res, err := p.fed.Eval(ctx, selected[i].Query)
			if err == nil && !EmptyResults(res) {
				results[i] = res
			}
		}(i)
	}
	wg.Wait()
	var kept []Suggestion
	for i, c := range selected {
		if results[i] == nil {
			continue
		}
		c.Answers = len(results[i].Rows)
		c.Prefetched = results[i]
		kept = append(kept, c)
	}
	return kept
}

// displayOf is the UI rendering of a predicate IRI.
func displayOf(p rdf.Term) string { return bootstrap.DisplayName(p) }

// EmptyResults reports whether a result set carries no information: no
// rows, or a lone aggregate row whose value is zero (COUNT over an empty
// pattern), which the UI treats the same as "no answers found".
func EmptyResults(res *sparql.Results) bool {
	if res == nil || len(res.Rows) == 0 {
		return true
	}
	if len(res.Rows) == 1 && len(res.Vars) == 1 {
		if t, ok := res.Rows[0][res.Vars[0]]; ok && t.Value == "0" && t.Datatype != "" {
			return true
		}
	}
	return false
}

func topByKind(ss []Suggestion, kind SuggestionKind, n int) []Suggestion {
	var of []Suggestion
	for _, s := range ss {
		if s.Kind == kind {
			of = append(of, s)
		}
	}
	sort.SliceStable(of, func(i, j int) bool {
		if of[i].Answers != of[j].Answers {
			return of[i].Answers > of[j].Answers
		}
		return of[i].Score > of[j].Score
	})
	if len(of) > n {
		of = of[:n]
	}
	return of
}
