package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicField enforces the publication discipline behind the store's
// epoch counters and the dictionary's spine/rank pointers (PRs 3–5,
// docs/ARCHITECTURE.md "Epoch-versioned result cache" and "Dictionary
// sharding"): once any code path touches a struct field through
// sync/atomic, every access to that field must go through sync/atomic.
// A lone plain read races with the atomic writers no matter how
// innocent it looks, and the race detector only catches it when a test
// happens to interleave.
//
// The check is per package (the fields in question are unexported): it
// collects every field whose address is passed to a sync/atomic
// function, then flags any other access to those fields that is not
// itself an atomic-call operand. Fields of the typed atomic.Uint64 /
// atomic.Pointer[T] family cannot be accessed non-atomically and need
// no checking — preferring them over the function forms makes this
// analyzer's job vacuous, which is the desired end state.
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc:  "a struct field touched via sync/atomic anywhere must be touched via sync/atomic everywhere",
	Run:  runAtomicField,
}

// atomicFnPrefixes are the sync/atomic function families that take an
// address operand.
var atomicFnPrefixes = []string{"Load", "Store", "Add", "Swap", "CompareAndSwap", "And", "Or"}

func isAtomicFn(info *types.Info, call *ast.CallExpr) bool {
	f := calleeFunc(info, call)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != "sync/atomic" {
		return false
	}
	for _, p := range atomicFnPrefixes {
		if strings.HasPrefix(f.Name(), p) {
			return true
		}
	}
	return false
}

// fieldOf resolves a selector expression to the struct field it
// selects, or nil.
func fieldOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok && v.IsField() {
			return v
		}
	}
	return nil
}

func runAtomicField(pass *Pass) error {
	info := pass.TypesInfo

	// Pass 1: fields whose address flows into a sync/atomic call, and
	// the selector nodes already accounted for by those calls.
	atomicFields := map[*types.Var]token.Pos{} // field -> one atomic-use position
	blessed := map[*ast.SelectorExpr]bool{}    // selectors inside atomic operands
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicFn(info, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if f := fieldOf(info, sel); f != nil {
					if _, seen := atomicFields[f]; !seen {
						atomicFields[f] = call.Pos()
					}
					blessed[sel] = true
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}

	// Pass 2: any other access to those fields is a race.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || blessed[sel] {
				return true
			}
			f := fieldOf(info, sel)
			if f == nil {
				return true
			}
			if atomicPos, atomic := atomicFields[f]; atomic {
				pass.Reportf(sel.Sel.Pos(),
					"field %s is accessed via sync/atomic at %s; this plain access races with the atomic ones — use sync/atomic everywhere (or a typed atomic.%s)",
					f.Name(), pass.Fset.Position(atomicPos), suggestTyped(f.Type()))
			}
			return true
		})
	}
	return nil
}

// suggestTyped names the typed atomic wrapper for a field's underlying
// type, for the diagnostic's fix hint.
func suggestTyped(t types.Type) string {
	if b, ok := t.Underlying().(*types.Basic); ok {
		switch b.Kind() {
		case types.Uint32:
			return "Uint32"
		case types.Uint64:
			return "Uint64"
		case types.Int32:
			return "Int32"
		case types.Int64:
			return "Int64"
		case types.Bool:
			return "Bool"
		case types.Uintptr:
			return "Uintptr"
		}
	}
	if _, ok := t.Underlying().(*types.Pointer); ok {
		return "Pointer[T]"
	}
	return "Value"
}
