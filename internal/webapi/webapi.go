// Package webapi exposes a sapphire.Client as the JSON HTTP API served
// by cmd/sapphire-server — the interface the paper's web UI talks to
// (Figure 1's client ↔ Sapphire server arrows):
//
//	GET  /complete?term=...        QCM auto-completions
//	POST /query    (SPARQL body)   federated execution
//	POST /suggest  (SPARQL body)   QSM suggestions
//	POST /run      (SPARQL body)   answers + suggestions
//	GET  /stats                    initialization statistics
package webapi

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"

	"sapphire"
	"sapphire/internal/rdf"
)

// Handler returns the API mux over a client.
func Handler(client *sapphire.Client) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/complete", func(w http.ResponseWriter, r *http.Request) {
		term := r.URL.Query().Get("term")
		writeJSON(w, completionsJSON(client.Complete(term)))
	})
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		query, ok := readBody(w, r)
		if !ok {
			return
		}
		res, err := client.Query(r.Context(), query)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, ResultsJSON(res))
	})
	mux.HandleFunc("/suggest", func(w http.ResponseWriter, r *http.Request) {
		query, ok := readBody(w, r)
		if !ok {
			return
		}
		sugs, err := client.Suggest(r.Context(), query)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, SuggestionsJSON(sugs))
	})
	mux.HandleFunc("/run", func(w http.ResponseWriter, r *http.Request) {
		query, ok := readBody(w, r)
		if !ok {
			return
		}
		res, sugs, err := client.Run(r.Context(), query)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, map[string]any{
			"results":     ResultsJSON(res),
			"suggestions": SuggestionsJSON(sugs),
		})
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, statsResponse{
			InitStats: client.Stats(),
			Serving:   client.ServingStats(r.Context()),
		})
	})
	return mux
}

func readBody(w http.ResponseWriter, r *http.Request) (string, bool) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST the SPARQL query as the request body", http.StatusMethodNotAllowed)
		return "", false
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil || len(strings.TrimSpace(string(body))) == 0 {
		http.Error(w, "empty query", http.StatusBadRequest)
		return "", false
	}
	return string(body), true
}

// statsResponse is the /stats payload: the initialization statistics
// inlined at the top level (unchanged wire shape for existing clients)
// plus the live serving counters — federation request count, member
// epochs, and result-cache hit/miss/evict/coalesced numbers — under
// "serving".
type statsResponse struct {
	sapphire.InitStats
	Serving sapphire.ServingStats `json:"serving"`
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// ResultsJSON renders a result set for the UI: vars plus rows of
// variable → rendered term.
func ResultsJSON(res *sapphire.Results) map[string]any {
	rows := make([]map[string]string, 0, len(res.Rows))
	for _, row := range res.Rows {
		m := make(map[string]string, len(row))
		for v, t := range row {
			m[v] = renderTerm(t)
		}
		rows = append(rows, m)
	}
	return map[string]any{"vars": res.Vars, "rows": rows}
}

func renderTerm(t rdf.Term) string {
	if t.IsIRI() {
		return t.Value
	}
	return t.String()
}

// SuggestionsJSON renders QSM suggestions with the one-change-at-a-time
// message of Section 4.
func SuggestionsJSON(sugs []sapphire.Suggestion) []map[string]any {
	out := make([]map[string]any, 0, len(sugs))
	for _, s := range sugs {
		out = append(out, map[string]any{
			"kind":    s.Kind.String(),
			"message": s.Message(),
			"query":   s.Query.String(),
			"answers": s.Answers,
		})
	}
	return out
}

func completionsJSON(comps []sapphire.Completion) []map[string]any {
	out := make([]map[string]any, 0, len(comps))
	for _, c := range comps {
		out = append(out, map[string]any{
			"text":        c.Text,
			"isPredicate": c.IsPredicate,
			"fromTree":    c.FromTree,
		})
	}
	return out
}
