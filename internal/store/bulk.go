package store

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"sapphire/internal/rdf"
)

// BulkLoader is the staged bulk-load path into a Store. The incremental
// Add keeps every index key slice term-sorted with a binary-search
// insertion, which costs an O(n) memmove per new key — fine for the
// online path, quadratic-ish for loading millions of triples at once
// (datagen, bootstrap, N-Triples ingestion). The loader splits loading
// into two stages instead:
//
//  1. Add/AddAll intern terms into the store's shared dictionary and
//     buffer the triples as packed 12-byte ID tuples. No shard lock is
//     taken and no index is touched, so staging never stalls a reader
//     or writer of any shard.
//  2. Commit partitions the batch by subject shard and commits one
//     shard at a time: under that shard's write lock it deduplicates
//     the shard's slice of the batch, builds the three index
//     permutations with grouped appends, and re-sorts each key slice
//     that grew exactly once. Readers of a shard never observe a
//     partially built index, and readers of every other shard are
//     never blocked at all — the longest stall any reader can see is
//     one shard's build, roughly 1/shards of the whole batch.
//
// On a multi-shard store a commit is therefore atomic per shard, not
// per batch: a concurrent reader running a wildcard-subject query may
// observe a prefix of the batch (the shards committed so far). Callers
// that need strict all-at-once batch visibility must use a 1-shard
// store (NewSharded(1)), which commits everything under its single
// write lock exactly like the pre-sharding implementation.
//
// Interleaving online Add calls with a staged load is safe; whichever
// inserts a triple first wins the dedup.
//
// A loader is safe for concurrent use by multiple goroutines and can be
// reused: Commit drains the buffer, so alternating Add/Commit phases
// load in stages while keeping peak buffer memory bounded.
//
// The staging buffer is capped: once it reaches the auto-commit
// threshold (DefaultAutoCommit triples unless overridden with
// SetAutoCommitThreshold), the loader commits inline, so a caller that
// streams an arbitrarily large dump through Add/AddAll without ever
// calling Commit still sees bounded loader memory. Callers that need
// strict all-at-once visibility of a batch must keep the batch under
// the threshold (or raise it).
type BulkLoader struct {
	s *Store

	// mu guards buf and autoCommit; the loader deliberately has its own
	// lock so staging contends with nothing but other stagers.
	mu sync.Mutex

	// buf holds the staged triples as packed ID tuples, in arrival
	// order. Commit preserves this order per shard when building the
	// SPO/OSP innermost slices, so a bulk load into a 1-shard store is
	// observationally identical to sequential Add.
	buf [][3]ID

	// autoCommit is the staged-triple count at which Add/AddAll commit
	// inline; <= 0 disables the cap.
	autoCommit int

	// Reusable scratch for the batched intern path: the flattened terms
	// of one AddAll chunk, their assigned IDs, and the per-dict-shard
	// position buckets internAll groups by. Guarded by mu.
	terms   []rdf.Term
	ids     []ID
	buckets [][]int32
}

// internChunk is how many triples AddAll interns per internAll call:
// large enough that each dictionary shard's lock is taken once per
// thousands of terms, small enough to keep the scratch buffers modest.
const internChunk = 4096

// DefaultAutoCommit is the staged-buffer cap a new BulkLoader starts
// with: 1M staged triples ≈ 12 MB of packed IDs, while each commit
// still amortizes its key-slice sorts over a large batch.
const DefaultAutoCommit = 1 << 20

// NewBulkLoader returns a bulk loader staging into s with the
// DefaultAutoCommit buffer cap.
func NewBulkLoader(s *Store) *BulkLoader {
	return &BulkLoader{s: s, autoCommit: DefaultAutoCommit}
}

// SetAutoCommitThreshold changes the staged-triple count at which the
// loader commits inline. n <= 0 disables auto-commit entirely, restoring
// the unbounded stage-until-Commit behavior (the caller then owns the
// buffer growth).
func (l *BulkLoader) SetAutoCommitThreshold(n int) {
	l.mu.Lock()
	l.autoCommit = n
	l.mu.Unlock()
}

// Add stages one triple. It returns an error if the triple violates RDF
// positional rules; valid triples are interned and buffered but not yet
// visible to readers.
func (l *BulkLoader) Add(tr rdf.Triple) error {
	if !tr.Valid() {
		return fmt.Errorf("store: invalid triple %s", tr)
	}
	si, pi, oi := l.s.dict.internTriple(tr)
	l.mu.Lock()
	l.buf = append(l.buf, [3]ID{si, pi, oi})
	l.maybeAutoCommitLocked()
	l.mu.Unlock()
	return nil
}

// MustAdd stages a triple and panics on invalid input, mirroring
// Store.MustAdd for dataset construction over static inputs.
func (l *BulkLoader) MustAdd(tr rdf.Triple) {
	if err := l.Add(tr); err != nil {
		panic(err)
	}
}

// AddAll stages all triples, stopping at the first invalid one (triples
// before it remain staged). Interning is batched: each chunk of triples
// is bucketed by dictionary shard and every touched shard's lock is
// acquired once per chunk instead of once per triple, so a bulk load
// costs each dictionary shard a handful of lock acquisitions per
// thousands of staged terms.
func (l *BulkLoader) AddAll(triples []rdf.Triple) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	d := l.s.dict
	for len(triples) > 0 {
		n := min(len(triples), internChunk)
		chunk := triples[:n]
		// Only the valid prefix of the chunk is interned and staged.
		var err error
		for i, tr := range chunk {
			if !tr.Valid() {
				chunk, err = chunk[:i], fmt.Errorf("store: invalid triple %s", tr)
				break
			}
		}
		l.terms = l.terms[:0]
		for _, tr := range chunk {
			l.terms = append(l.terms, tr.S, tr.P, tr.O)
		}
		l.ids = grow(l.ids, len(l.terms))
		l.buckets = d.internAll(l.terms, l.ids, l.buckets)
		for i := range chunk {
			l.buf = append(l.buf, [3]ID{l.ids[3*i], l.ids[3*i+1], l.ids[3*i+2]})
			l.maybeAutoCommitLocked()
		}
		if err != nil {
			return err
		}
		triples = triples[n:]
	}
	return nil
}

// maybeAutoCommitLocked commits inline when the staged buffer has
// reached the auto-commit threshold. Caller must hold l.mu; the commit
// takes shard write locks one at a time, so concurrent readers observe
// each shard's slice of the flushed batch all-or-nothing exactly as
// with an explicit Commit.
func (l *BulkLoader) maybeAutoCommitLocked() {
	if l.autoCommit > 0 && len(l.buf) >= l.autoCommit {
		l.commitLocked()
	}
}

// Pending returns the number of staged (not yet committed) triples,
// counting duplicates — dedup happens at Commit.
func (l *BulkLoader) Pending() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buf)
}

// Commit publishes every staged triple into the store and drains the
// buffer, returning how many were new (staged duplicates and triples
// already present don't count). The batch is partitioned by subject
// shard and committed shard by shard; see the type comment for the
// visibility contract.
func (l *BulkLoader) Commit() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.commitLocked()
}

// commitLocked is Commit's body; caller must hold l.mu.
func (l *BulkLoader) commitLocked() int {
	s := l.s
	if len(l.buf) == 0 {
		return 0
	}
	// The view is taken after every staged term was interned, so it
	// covers every ID in the batch.
	tv := s.dict.view()
	fresh := 0
	if len(s.shards) == 1 {
		fresh = s.shards[0].commitBatch(tv, l.buf)
	} else {
		// Partition by shard, preserving arrival order within each.
		parts := make([][][3]ID, len(s.shards))
		for _, k := range l.buf {
			i := s.shardIndex(k[0])
			parts[i] = append(parts[i], k)
		}
		for i, part := range parts {
			if len(part) == 0 {
				continue
			}
			fresh += s.shards[i].commitBatch(tv, part)
		}
	}
	l.buf = l.buf[:0]
	return fresh
}

// commitBatch publishes one shard's slice of a staged batch under that
// shard's write lock and returns how many triples were new.
func (sh *shard) commitBatch(tv termView, batch [][3]ID) int {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	fresh := make([][3]ID, 0, len(batch))
	for _, k := range batch {
		if _, dup := sh.present[k]; dup {
			continue
		}
		sh.present[k] = struct{}{}
		fresh = append(fresh, k)
	}
	sh.size += len(fresh)
	sh.spo.bulkBuild(tv, fresh, 0, 1, 2)
	sh.pos.bulkBuild(tv, fresh, 1, 2, 0)
	sh.osp.bulkBuild(tv, fresh, 2, 0, 1)
	if len(fresh) > 0 {
		sh.epoch.Add(1)
	}
	return len(fresh)
}

// LoadNTriples streams an N-Triples document into s through a
// BulkLoader without materializing the document as a []rdf.Triple:
// triples are staged in chunks as they parse (12 bytes each once
// interned), and the loader's auto-commit cap (DefaultAutoCommit)
// flushes the staging buffer periodically, so peak loader memory stays
// bounded no matter the dump size. This is the ingestion path for large
// dumps; both the public facade and the bootstrap warehouse builders
// route through it.
func LoadNTriples(s *Store, r io.Reader) error {
	const chunk = 8192
	l := NewBulkLoader(s)
	rd := rdf.NewReader(r)
	buf := make([]rdf.Triple, 0, chunk)
	for {
		tr, err := rd.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		buf = append(buf, tr)
		if len(buf) == chunk {
			if err := l.AddAll(buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	if err := l.AddAll(buf); err != nil {
		return err
	}
	l.Commit()
	return nil
}

// bulkBuild merges a deduplicated batch into one index permutation. ai,
// bi, ci select the triple positions forming the permutation's levels.
// The batch is first sorted by (level-1 ID, level-2 ID, arrival order),
// which groups every map key into one consecutive run: each entry is
// probed once per run instead of once per triple, new innermost slices
// are allocated at exact size, and the arrival-order tiebreaker keeps
// the innermost insertion order identical to sequential Add. Each key
// slice that grew is re-sorted exactly once, as is (for sortedInner
// indexes) each innermost list that grew. Runs under the owning shard's
// write lock, so the transient unsorted tails are never observable.
func (x *index) bulkBuild(tv termView, fresh [][3]ID, ai, bi, ci int) {
	rows := make([][4]ID, len(fresh))
	for i, k := range fresh {
		rows[i] = [4]ID{k[ai], k[bi], k[ci], ID(i)}
	}
	sort.Slice(rows, func(i, j int) bool {
		p, q := &rows[i], &rows[j]
		if p[0] != q[0] {
			return p[0] < q[0]
		}
		if p[1] != q[1] {
			return p[1] < q[1]
		}
		return p[3] < q[3]
	})
	l1orig := len(x.keys)
	for i := 0; i < len(rows); {
		a := rows[i][0]
		j := i + 1
		for j < len(rows) && rows[j][0] == a {
			j++
		}
		e := x.m[a]
		if e == nil {
			e = &entry{m: make(map[ID]*[]ID)}
			x.m[a] = e
			x.keys = append(x.keys, a)
		}
		l2orig := len(e.keys)
		for k := i; k < j; {
			b := rows[k][1]
			m := k + 1
			for m < j && rows[m][1] == b {
				m++
			}
			lst := e.m[b]
			if lst == nil {
				nl := make([]ID, 0, m-k)
				lst = &nl
				e.m[b] = lst
				e.keys = append(e.keys, b)
				e.lists = append(e.lists, lst)
			}
			innerOrig := len(*lst)
			for t := k; t < m; t++ {
				*lst = append(*lst, rows[t][2])
			}
			if x.sortedInner {
				mergeTail(tv, *lst, innerOrig)
			}
			e.total += m - k
			k = m
		}
		mergeTailPaired(tv, e.keys, e.lists, l2orig)
		i = j
	}
	mergeTail(tv, x.keys, l1orig)
}

// smallTail is the appended-key count below which the tail-merge
// helpers insert into the sorted prefix instead of re-sorting the whole
// slice, so a small AddAll batch against a large store costs what the
// incremental Add path would, not a full re-sort of every key.
const smallTail = 16

// mergeTail restores term order on a key slice whose first orig
// elements are sorted and whose tail was appended unsorted during a
// bulk build. Large tails (a real bulk load) sort the whole slice once;
// small tails binary-search-insert each appended key in place.
func mergeTail(tv termView, keys []ID, orig int) {
	tail := len(keys) - orig
	if tail == 0 {
		return
	}
	if tail > smallTail || orig == 0 {
		sort.Slice(keys, func(i, j int) bool {
			return tv.atPtr(keys[i]).CompareTo(tv.atPtr(keys[j])) < 0
		})
		return
	}
	for i := orig; i < len(keys); i++ {
		id := keys[i]
		t := tv.atPtr(id)
		j := sort.Search(i, func(k int) bool {
			return tv.atPtr(keys[k]).CompareTo(t) >= 0
		})
		copy(keys[j+1:i+1], keys[j:i])
		keys[j] = id
	}
}

// mergeTailPaired is mergeTail for a key slice with a parallel value
// slice (level-one entries or level-two list boxes): keys and vals move
// together so vals[i] keeps backing keys[i].
func mergeTailPaired[T any](tv termView, keys []ID, vals []T, orig int) {
	tail := len(keys) - orig
	if tail == 0 {
		return
	}
	if tail > smallTail || orig == 0 {
		sort.Sort(pairedByTerm[T]{tv: tv, keys: keys, vals: vals})
		return
	}
	for i := orig; i < len(keys); i++ {
		id, v := keys[i], vals[i]
		t := tv.atPtr(id)
		j := sort.Search(i, func(k int) bool {
			return tv.atPtr(keys[k]).CompareTo(t) >= 0
		})
		copy(keys[j+1:i+1], keys[j:i])
		keys[j] = id
		copy(vals[j+1:i+1], vals[j:i])
		vals[j] = v
	}
}

// pairedByTerm sorts a key slice by term order, carrying the parallel
// value slice through every swap.
type pairedByTerm[T any] struct {
	tv   termView
	keys []ID
	vals []T
}

func (p pairedByTerm[T]) Len() int { return len(p.keys) }
func (p pairedByTerm[T]) Less(i, j int) bool {
	return p.tv.atPtr(p.keys[i]).CompareTo(p.tv.atPtr(p.keys[j])) < 0
}
func (p pairedByTerm[T]) Swap(i, j int) {
	p.keys[i], p.keys[j] = p.keys[j], p.keys[i]
	p.vals[i], p.vals[j] = p.vals[j], p.vals[i]
}
