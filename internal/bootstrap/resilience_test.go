package bootstrap

import (
	"context"
	"testing"

	"sapphire/internal/datagen"
	"sapphire/internal/endpoint"
)

// TestInitializeSurvivesFlakyEndpoint injects failures into every 5th
// query: initialization must degrade (fewer literals) but never fail
// outright — the resilience Section 5's design exists for.
func TestInitializeSurvivesFlakyEndpoint(t *testing.T) {
	d := datagen.Generate(datagen.SmallConfig())
	inner := endpoint.NewLocal("synthetic-dbpedia", d.Store, endpoint.Limits{})
	flaky := endpoint.NewFlaky(inner, 5, 0, 1)
	c, err := Initialize(context.Background(), flaky, DefaultConfig())
	if err != nil {
		t.Fatalf("initialization died on a flaky endpoint: %v", err)
	}
	if flaky.Failures() == 0 {
		t.Fatal("injection did not fire")
	}
	if c.Stats.Timeouts == 0 {
		t.Error("injected failures not recorded as timeouts")
	}
	if c.Stats.LiteralCount == 0 {
		t.Error("no literals recovered despite retrying through the hierarchy")
	}
	// A healthy run caches at least as much.
	healthy, err := Initialize(context.Background(),
		endpoint.NewLocal("clean", d.Store, endpoint.Limits{}), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if c.Stats.LiteralCount > healthy.Stats.LiteralCount {
		t.Errorf("flaky run cached more (%d) than healthy (%d)?",
			c.Stats.LiteralCount, healthy.Stats.LiteralCount)
	}
}

// TestInitializeSurvivesRandomFailures uses probabilistic injection.
func TestInitializeSurvivesRandomFailures(t *testing.T) {
	d := datagen.Generate(datagen.SmallConfig())
	inner := endpoint.NewLocal("synthetic-dbpedia", d.Store, endpoint.Limits{})
	flaky := endpoint.NewFlaky(inner, 0, 0.15, 7)
	c, err := Initialize(context.Background(), flaky, DefaultConfig())
	if err != nil {
		t.Fatalf("initialization died: %v", err)
	}
	if c.Stats.LiteralCount == 0 {
		t.Error("nothing cached under 15% failure rate")
	}
	// The cache stays usable.
	if got := c.Tree.Search("a", 5); len(got) == 0 {
		t.Error("tree unusable after flaky init")
	}
}

// TestInitializeFirstQueryFails covers the worst case: the very first
// statistics query is failed by injection. Initialization returns an
// empty-but-valid cache rather than crashing.
func TestInitializeFirstQueryFails(t *testing.T) {
	d := datagen.Generate(datagen.SmallConfig())
	inner := endpoint.NewLocal("synthetic-dbpedia", d.Store, endpoint.Limits{})
	flaky := endpoint.NewFlaky(inner, 1, 0, 1) // every query fails
	c, err := Initialize(context.Background(), flaky, DefaultConfig())
	if err != nil {
		t.Fatalf("unexpected hard failure: %v", err)
	}
	if c.Stats.PredicateCount != 0 || c.Stats.LiteralCount != 0 {
		t.Errorf("cache should be empty: %+v", c.Stats)
	}
	if c.Tree == nil || c.Bins == nil {
		t.Error("indexes must exist even when empty")
	}
}
