package rdf

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ParseError describes a syntax error in an N-Triples document.
type ParseError struct {
	Line int    // 1-based line number
	Msg  string // description of the problem
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("ntriples: line %d: %s", e.Line, e.Msg)
}

// Reader parses N-Triples documents line by line. It accepts the common
// subset of the W3C N-Triples grammar: IRIs in angle brackets, quoted
// literals with \-escapes, language tags, datatype IRIs, blank node
// labels, comments, and blank lines.
type Reader struct {
	sc   *bufio.Scanner
	line int
}

// NewReader returns a Reader consuming r.
func NewReader(r io.Reader) *Reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 4*1024*1024)
	return &Reader{sc: sc}
}

// Read returns the next triple. It returns io.EOF after the last triple.
func (r *Reader) Read() (Triple, error) {
	for r.sc.Scan() {
		r.line++
		line := strings.TrimSpace(r.sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		tr, err := parseTripleLine(line, r.line)
		if err != nil {
			return Triple{}, err
		}
		return tr, nil
	}
	if err := r.sc.Err(); err != nil {
		return Triple{}, err
	}
	return Triple{}, io.EOF
}

// ReadAll reads every remaining triple.
func (r *Reader) ReadAll() ([]Triple, error) {
	var out []Triple
	for {
		tr, err := r.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, tr)
	}
}

// ParseTriple parses a single N-Triples statement such as
// `<s> <p> "o"@en .`.
func ParseTriple(s string) (Triple, error) {
	return parseTripleLine(strings.TrimSpace(s), 1)
}

func parseTripleLine(line string, lineno int) (Triple, error) {
	p := &lineParser{s: line, line: lineno}
	s, err := p.term()
	if err != nil {
		return Triple{}, err
	}
	pr, err := p.term()
	if err != nil {
		return Triple{}, err
	}
	o, err := p.term()
	if err != nil {
		return Triple{}, err
	}
	p.skipSpace()
	if !p.eat('.') {
		return Triple{}, p.errf("expected '.' terminator")
	}
	p.skipSpace()
	if !p.done() {
		return Triple{}, p.errf("trailing garbage after '.'")
	}
	tr := Triple{S: s, P: pr, O: o}
	if !tr.Valid() {
		return Triple{}, p.errf("invalid triple positions: %s", tr)
	}
	return tr, nil
}

// lineParser is a minimal recursive-descent scanner over one statement.
type lineParser struct {
	s    string
	i    int
	line int
}

func (p *lineParser) errf(format string, args ...any) error {
	return &ParseError{Line: p.line, Msg: fmt.Sprintf(format, args...)}
}

func (p *lineParser) done() bool { return p.i >= len(p.s) }

func (p *lineParser) peek() byte {
	if p.done() {
		return 0
	}
	return p.s[p.i]
}

func (p *lineParser) eat(c byte) bool {
	if !p.done() && p.s[p.i] == c {
		p.i++
		return true
	}
	return false
}

func (p *lineParser) skipSpace() {
	for !p.done() && (p.s[p.i] == ' ' || p.s[p.i] == '\t') {
		p.i++
	}
}

func (p *lineParser) term() (Term, error) {
	p.skipSpace()
	switch p.peek() {
	case '<':
		return p.iri()
	case '"':
		return p.literal()
	case '_':
		return p.blank()
	case 0:
		return Term{}, p.errf("unexpected end of statement")
	default:
		return Term{}, p.errf("unexpected character %q", p.s[p.i])
	}
}

func (p *lineParser) iri() (Term, error) {
	p.i++ // '<'
	start := p.i
	for !p.done() && p.s[p.i] != '>' {
		p.i++
	}
	if p.done() {
		return Term{}, p.errf("unterminated IRI")
	}
	iri := p.s[start:p.i]
	p.i++ // '>'
	if iri == "" {
		return Term{}, p.errf("empty IRI")
	}
	return NewIRI(iri), nil
}

func (p *lineParser) blank() (Term, error) {
	if p.i+1 >= len(p.s) || p.s[p.i+1] != ':' {
		return Term{}, p.errf("malformed blank node label")
	}
	p.i += 2
	start := p.i
	for !p.done() && !isSpaceByte(p.s[p.i]) && p.s[p.i] != '.' {
		p.i++
	}
	label := p.s[start:p.i]
	if label == "" {
		return Term{}, p.errf("empty blank node label")
	}
	return NewBlank(label), nil
}

func (p *lineParser) literal() (Term, error) {
	p.i++ // opening quote
	var b strings.Builder
	for {
		if p.done() {
			return Term{}, p.errf("unterminated literal")
		}
		c := p.s[p.i]
		if c == '"' {
			p.i++
			break
		}
		if c == '\\' {
			p.i++
			if p.done() {
				return Term{}, p.errf("dangling escape")
			}
			switch p.s[p.i] {
			case 't':
				b.WriteByte('\t')
			case 'n':
				b.WriteByte('\n')
			case 'r':
				b.WriteByte('\r')
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			default:
				return Term{}, p.errf("unsupported escape \\%c", p.s[p.i])
			}
			p.i++
			continue
		}
		b.WriteByte(c)
		p.i++
	}
	lex := b.String()
	// Optional language tag or datatype.
	if p.eat('@') {
		start := p.i
		for !p.done() && (isAlnumByte(p.s[p.i]) || p.s[p.i] == '-') {
			p.i++
		}
		lang := p.s[start:p.i]
		if lang == "" {
			return Term{}, p.errf("empty language tag")
		}
		return NewLangLiteral(lex, lang), nil
	}
	if strings.HasPrefix(p.s[p.i:], "^^") {
		p.i += 2
		if p.peek() != '<' {
			return Term{}, p.errf("datatype must be an IRI")
		}
		dt, err := p.iri()
		if err != nil {
			return Term{}, err
		}
		return NewTypedLiteral(lex, dt.Value), nil
	}
	return NewLiteral(lex), nil
}

func isSpaceByte(c byte) bool { return c == ' ' || c == '\t' }

func isAlnumByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

// Writer serializes triples in N-Triples syntax.
type Writer struct {
	w   *bufio.Writer
	err error
}

// NewWriter returns a Writer emitting to w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: bufio.NewWriter(w)} }

// Write emits one triple. Errors are sticky.
func (w *Writer) Write(tr Triple) error {
	if w.err != nil {
		return w.err
	}
	_, w.err = w.w.WriteString(tr.String() + "\n")
	return w.err
}

// Flush flushes buffered output and returns the first error seen.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}
