// Package federation implements a FedX-style federated query processor
// over SPARQL endpoints (Schwarte et al., ISWC 2011), the substrate the
// Sapphire server uses to execute user queries and to prefetch suggested
// alternatives across all registered endpoints (Section 3).
//
// Like FedX it performs source selection — probing which endpoints can
// contribute to each triple pattern and caching the outcome — and then
// evaluates joins at the federator, shipping bound patterns to members.
// Batching via SPARQL 1.1 VALUES is simplified to memoized per-pattern
// requests, which preserves the architecture (endpoints see only
// single-pattern queries) at our simulation scale.
package federation

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"sapphire/internal/endpoint"
	"sapphire/internal/rdf"
	"sapphire/internal/sparql"
)

// Federation is a federated query processor over member endpoints.
//
// Cache invalidation is epoch-driven: members that implement
// endpoint.Epoched (local endpoints natively, HTTP clients via the
// `GET ?epoch` probe) report a mutation epoch, and the federation
// snapshots all member epochs into a fingerprint whenever it checks
// freshness. A fingerprint change means some member's data moved, and
// both the pattern memoization and the source-selection cache are
// dropped — so a member that just gained its first triple for a
// predicate is re-discovered, exactly what manual ResetCaches calls
// used to be for. Members that cannot report an epoch never trigger
// automatic invalidation; they still need ResetCaches.
type Federation struct {
	members []endpoint.Endpoint

	mu sync.Mutex
	// sourceCache maps predicate IRI → indexes of members that hold at
	// least one triple with that predicate (FedX source selection).
	sourceCache map[string][]int
	// patternCache memoizes pattern fetches within this federation's
	// lifetime so repeated Match calls during a join do not re-issue
	// identical endpoint queries.
	patternCache map[string][]rdf.Triple
	// queries counts endpoint requests issued, for experiment reporting
	// and for the Steiner expansion budget.
	queries int

	// epochPoll throttles freshness checks: 0 checks member epochs on
	// every Eval (free for local members, one tiny HTTP probe per
	// remote member), > 0 checks at most once per interval, < 0 never
	// checks (manual ResetCaches only).
	epochPoll time.Duration
	// lastEpochCheck is when the fingerprint was last verified.
	lastEpochCheck time.Time
	// epochChecking single-flights fingerprint probes: concurrent Evals
	// skip the check instead of racing, which both bounds probe traffic
	// and guarantees fingerprints install in the order they were
	// computed (a stale install would re-open the fetchPattern guard).
	epochChecking bool
	// epochFP is the member-epoch fingerprint the caches were built
	// against.
	epochFP string
	// lastEpochParts remembers each member's last successfully probed
	// epoch so one transient probe failure does not flap the
	// fingerprint (and drop the caches twice) for a member whose data
	// never changed.
	lastEpochParts []string
}

// New returns a federation over the given endpoints, checking member
// epochs on every query (SetEpochPoll throttles or disables that).
func New(members ...endpoint.Endpoint) *Federation {
	return &Federation{
		members:      members,
		sourceCache:  make(map[string][]int),
		patternCache: make(map[string][]rdf.Triple),
	}
}

// SetEpochPoll sets how often the federation re-checks member epochs:
// 0 on every query (the default), d > 0 at most once per d (bounds
// probe traffic to remote members at the price of a staleness window
// up to d), d < 0 never (invalidation is then manual via ResetCaches).
func (f *Federation) SetEpochPoll(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.epochPoll = d
}

// Members returns the registered endpoints.
func (f *Federation) Members() []endpoint.Endpoint { return f.members }

// QueriesIssued returns the number of endpoint requests sent so far.
func (f *Federation) QueriesIssued() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.queries
}

// ResetCaches clears the pattern memoization (source selection survives,
// as in FedX where the source cache is long-lived). With epoch-reporting
// members this is rarely needed — invalidation happens automatically
// when a member's epoch moves — but it remains the escape hatch for
// members that cannot report epochs.
func (f *Federation) ResetCaches() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.patternCache = make(map[string][]rdf.Triple)
}

// checkEpochs drops the caches when any member's mutation epoch moved
// since they were built, and returns the fingerprint the caches are
// valid for — callers hold on to it and refuse to file fetch results
// once it goes stale (see fetchPattern). Epoch reads happen outside
// the federation lock: for local members they are one atomic load, for
// HTTP members one `GET ?epoch` probe (throttled by SetEpochPoll).
func (f *Federation) checkEpochs(ctx context.Context) string {
	f.mu.Lock()
	poll, last, cur := f.epochPoll, f.lastEpochCheck, f.epochFP
	if f.epochChecking || poll < 0 || (poll > 0 && time.Since(last) < poll) {
		f.mu.Unlock()
		return cur
	}
	f.epochChecking = true
	f.mu.Unlock()

	fp := f.epochFingerprint(ctx)
	f.mu.Lock()
	defer f.mu.Unlock()
	f.epochChecking = false
	f.lastEpochCheck = time.Now()
	if fp == f.epochFP {
		return f.epochFP
	}
	f.epochFP = fp
	f.patternCache = make(map[string][]rdf.Triple)
	// Unlike a manual ResetCaches, an epoch change also invalidates
	// source selection: a member that had nothing for a predicate may
	// hold it after the mutation, and the long-lived FedX source cache
	// would keep routing around it forever.
	f.sourceCache = make(map[string][]int)
	return fp
}

// epochFingerprint concatenates the members' current epochs, probing
// them concurrently (a serial walk would pay sum-of-RTTs on every
// query for remote members; concurrent it is max-of-RTTs). A member
// without a known epoch contributes its last successfully probed value
// when it has one (a transient probe failure must not flap the
// fingerprint) and the constant "?" otherwise, so never-known members
// compare equal across checks and never trigger automatic
// invalidation. Callers single-flight this via epochChecking, so
// lastEpochParts sees no concurrent writers.
func (f *Federation) epochFingerprint(ctx context.Context) string {
	parts := make([]string, len(f.members))
	var wg sync.WaitGroup
	for i, m := range f.members {
		ep, ok := m.(endpoint.Epoched)
		if !ok {
			continue // parts[i] stays "", resolved to "?" below
		}
		wg.Add(1)
		go func(i int, ep endpoint.Epoched) {
			defer wg.Done()
			if e, known := ep.Epoch(ctx); known {
				parts[i] = strconv.FormatUint(e, 10)
			}
		}(i, ep)
	}
	wg.Wait()
	f.mu.Lock()
	if f.lastEpochParts == nil {
		f.lastEpochParts = make([]string, len(f.members))
	}
	for i, p := range parts {
		if p != "" {
			f.lastEpochParts[i] = p
			continue
		}
		if prev := f.lastEpochParts[i]; prev != "" {
			parts[i] = prev
		} else {
			parts[i] = "?"
		}
	}
	f.mu.Unlock()
	return strings.Join(parts, ";")
}

// Query parses and executes a SPARQL query across the federation.
func (f *Federation) Query(ctx context.Context, query string) (*sparql.Results, error) {
	q, err := sparql.Parse(query)
	if err != nil {
		return nil, err
	}
	return f.Eval(ctx, q)
}

// Eval executes a parsed query across the federation.
func (f *Federation) Eval(ctx context.Context, q *sparql.Query) (*sparql.Results, error) {
	g := &fedGraph{f: f, ctx: ctx, fp: f.checkEpochs(ctx)}
	res, err := sparql.Eval(g, q, sparql.Options{})
	if err != nil {
		return nil, err
	}
	if g.err != nil {
		return nil, g.err
	}
	return res, nil
}

// fedGraph adapts the federation to sparql.Graph. Errors from member
// endpoints are recorded and surface after evaluation (the Graph
// interface itself cannot fail).
type fedGraph struct {
	f   *Federation
	ctx context.Context
	// fp is the member-epoch fingerprint this evaluation started at;
	// fetches carry it so results computed against pre-mutation data
	// are never filed into caches that were invalidated mid-flight.
	fp  string
	err error
}

// Match implements sparql.Graph by fetching the pattern from all
// relevant members.
func (g *fedGraph) Match(s, p, o rdf.Term, fn func(rdf.Triple) bool) {
	if g.err != nil {
		return
	}
	triples, err := g.f.fetchPattern(g.ctx, g.fp, s, p, o)
	if err != nil {
		g.err = err
		return
	}
	for _, tr := range triples {
		if !fn(tr) {
			return
		}
	}
}

// CardinalityEstimate implements sparql.Graph. It uses the size of the
// memoized pattern result when available and a neutral constant
// otherwise, so join ordering prefers already-fetched selective patterns.
func (g *fedGraph) CardinalityEstimate(s, p, o rdf.Term) int {
	g.f.mu.Lock()
	defer g.f.mu.Unlock()
	if ts, ok := g.f.patternCache[patternKey(s, p, o)]; ok {
		return len(ts)
	}
	// Unfetched: guess by boundness — more constants, more selective.
	est := 1 << 20
	for _, t := range []rdf.Term{s, p, o} {
		if !t.IsZero() {
			est >>= 7
		}
	}
	return est
}

// fetchPattern returns all triples matching the pattern across relevant
// members, memoized. fp is the epoch fingerprint the caller's
// evaluation started at: the result is filed into the pattern cache
// only if the caches still belong to that fingerprint, so a fetch that
// raced a member mutation (and a concurrent checkEpochs that already
// cleared the caches) cannot re-plant pre-mutation data that epoch
// comparison would then never invalidate.
func (f *Federation) fetchPattern(ctx context.Context, fp string, s, p, o rdf.Term) ([]rdf.Triple, error) {
	key := patternKey(s, p, o)
	f.mu.Lock()
	if ts, ok := f.patternCache[key]; ok {
		f.mu.Unlock()
		return ts, nil
	}
	f.mu.Unlock()

	members, err := f.selectSources(ctx, fp, p)
	if err != nil {
		return nil, err
	}
	var all []rdf.Triple
	seen := make(map[rdf.Triple]bool)
	for _, mi := range members {
		triples, err := f.fetchFromMember(ctx, mi, s, p, o)
		if err != nil {
			return nil, err
		}
		for _, tr := range triples {
			if !seen[tr] {
				seen[tr] = true
				all = append(all, tr)
			}
		}
	}
	f.mu.Lock()
	if f.epochFP == fp {
		f.patternCache[key] = all
	}
	f.mu.Unlock()
	return all, nil
}

// selectSources returns the member indexes relevant for a pattern with
// predicate p. Bound predicates use the cached ASK-style probe; variable
// predicates go to every member. Probe outcomes are filed under the
// same stale-fingerprint guard as pattern fetches.
func (f *Federation) selectSources(ctx context.Context, fp string, p rdf.Term) ([]int, error) {
	if p.IsZero() || !p.IsIRI() {
		all := make([]int, len(f.members))
		for i := range all {
			all[i] = i
		}
		return all, nil
	}
	f.mu.Lock()
	if cached, ok := f.sourceCache[p.Value]; ok {
		f.mu.Unlock()
		return cached, nil
	}
	f.mu.Unlock()

	var relevant []int
	probe := fmt.Sprintf("SELECT ?s WHERE { ?s %s ?o . } LIMIT 1", p)
	for i, m := range f.members {
		f.countQuery()
		res, err := m.Query(ctx, probe)
		if err != nil {
			return nil, fmt.Errorf("federation: source probe on %s: %w", m.Name(), err)
		}
		if len(res.Rows) > 0 {
			relevant = append(relevant, i)
		}
	}
	f.mu.Lock()
	if f.epochFP == fp {
		f.sourceCache[p.Value] = relevant
	}
	f.mu.Unlock()
	return relevant, nil
}

func (f *Federation) countQuery() {
	f.mu.Lock()
	f.queries++
	f.mu.Unlock()
}

// fetchFromMember ships a single-pattern query to one member and converts
// the rows back to triples.
func (f *Federation) fetchFromMember(ctx context.Context, mi int, s, p, o rdf.Term) ([]rdf.Triple, error) {
	m := f.members[mi]
	var sb strings.Builder
	sb.WriteString("SELECT")
	writeNode := func(t rdf.Term, v string) string {
		if t.IsZero() {
			return "?" + v
		}
		return t.String()
	}
	sn, pn, on := writeNode(s, "s"), writeNode(p, "p"), writeNode(o, "o")
	anyVar := false
	for _, part := range []struct {
		t rdf.Term
		v string
	}{{s, "s"}, {p, "p"}, {o, "o"}} {
		if part.t.IsZero() {
			sb.WriteString(" ?" + part.v)
			anyVar = true
		}
	}
	if !anyVar {
		// Fully bound: ask for the subject to detect existence.
		q := fmt.Sprintf("SELECT ?x WHERE { ?x %s %s . FILTER (?x = %s) } LIMIT 1", pn, on, sn)
		f.countQuery()
		res, err := m.Query(ctx, q)
		if err != nil {
			return nil, fmt.Errorf("federation: %s: %w", m.Name(), err)
		}
		if len(res.Rows) > 0 {
			return []rdf.Triple{{S: s, P: p, O: o}}, nil
		}
		return nil, nil
	}
	fmt.Fprintf(&sb, " WHERE { %s %s %s . }", sn, pn, on)
	f.countQuery()
	res, err := m.Query(ctx, sb.String())
	if err != nil {
		return nil, fmt.Errorf("federation: %s: %w", m.Name(), err)
	}
	out := make([]rdf.Triple, 0, len(res.Rows))
	for _, row := range res.Rows {
		tr := rdf.Triple{S: s, P: p, O: o}
		if s.IsZero() {
			tr.S = row["s"]
		}
		if p.IsZero() {
			tr.P = row["p"]
		}
		if o.IsZero() {
			tr.O = row["o"]
		}
		out = append(out, tr)
	}
	return out, nil
}

func patternKey(s, p, o rdf.Term) string {
	return s.String() + "\x00" + p.String() + "\x00" + o.String()
}
