package endpoint

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"

	"sapphire/internal/rdf"
	"sapphire/internal/store"
)

func testStore(t testing.TB, n int) *store.Store {
	t.Helper()
	s := store.New()
	typ := rdf.NewIRI(rdf.RDFType)
	person := rdf.NewIRI("http://x/Person")
	for i := 0; i < n; i++ {
		subj := rdf.NewIRI(fmt.Sprintf("http://x/p%d", i))
		s.MustAdd(rdf.NewTriple(subj, typ, person))
		s.MustAdd(rdf.NewTriple(subj, rdf.NewIRI("http://x/name"),
			rdf.NewLangLiteral(fmt.Sprintf("Person %d", i), "en")))
	}
	return s
}

func TestLocalQueryBasic(t *testing.T) {
	ep := NewLocal("test", testStore(t, 10), Limits{})
	res, err := ep.Query(context.Background(), `SELECT ?s WHERE { ?s a <http://x/Person> . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Errorf("rows = %d, want 10", len(res.Rows))
	}
	st := ep.Stats()
	if st.Queries != 1 || st.Rows != 10 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLocalParseError(t *testing.T) {
	ep := NewLocal("test", testStore(t, 1), Limits{})
	if _, err := ep.Query(context.Background(), "garbage"); err == nil {
		t.Error("expected parse error")
	}
}

func TestLocalTimeoutBudget(t *testing.T) {
	ep := NewLocal("test", testStore(t, 100), Limits{MaxIntermediateRows: 20})
	// A join query pays full price per intermediate row and exceeds the
	// budget on this store (100 + 100 rows).
	_, err := ep.Query(context.Background(),
		`SELECT ?s ?n WHERE { ?s a <http://x/Person> . ?s <http://x/name> ?n . }`)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if ep.Stats().Timeouts != 1 {
		t.Errorf("timeouts = %d", ep.Stats().Timeouts)
	}
	// A narrow query stays under the budget.
	if _, err := ep.Query(context.Background(),
		`SELECT ?n WHERE { <http://x/p5> <http://x/name> ?n . }`); err != nil {
		t.Errorf("narrow query failed: %v", err)
	}
}

func TestLocalPaginationAvoidsTimeout(t *testing.T) {
	// The Section 5 scenario: the full scan times out, but OFFSET/LIMIT
	// pages fit the budget. Pagination applies after evaluation in our
	// engine, so the budget must be on final rows for this test; the
	// narrow per-class queries below model the hierarchy descent instead.
	ep := NewLocal("test", testStore(t, 50), Limits{MaxIntermediateRows: 2})
	// Even discounted, the full sweep (100 triples → 4 effective rows)
	// exceeds a budget of 2.
	_, err := ep.Query(context.Background(), `SELECT ?s ?p ?o WHERE { ?s ?p ?o . }`)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("full scan should time out, got %v", err)
	}
	res, err := ep.Query(context.Background(),
		`SELECT ?n WHERE { ?s <http://x/name> ?n . } LIMIT 10`)
	if err != nil {
		t.Fatalf("typed page query failed: %v", err)
	}
	if len(res.Rows) != 10 {
		t.Errorf("page rows = %d", len(res.Rows))
	}
}

func TestLocalRejection(t *testing.T) {
	ep := NewLocal("test", testStore(t, 100), Limits{RejectEstimateAbove: 50})
	_, err := ep.Query(context.Background(), `SELECT ?s ?p ?o WHERE { ?s ?p ?o . }`)
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v, want ErrRejected", err)
	}
	if ep.Stats().Rejected != 1 {
		t.Errorf("rejected = %d", ep.Stats().Rejected)
	}
}

func TestLocalContextCancel(t *testing.T) {
	ep := NewLocal("test", testStore(t, 5), Limits{Latency: 50 * time.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ep.Query(ctx, `SELECT ?s WHERE { ?s a <http://x/Person> . }`)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestLocalLatency(t *testing.T) {
	ep := NewLocal("test", testStore(t, 1), Limits{Latency: 30 * time.Millisecond})
	start := time.Now()
	if _, err := ep.Query(context.Background(), `SELECT ?s WHERE { ?s a <http://x/Person> . }`); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Errorf("latency not applied: %v", d)
	}
}

func TestResetStats(t *testing.T) {
	ep := NewLocal("test", testStore(t, 1), Limits{})
	_, _ = ep.Query(context.Background(), `SELECT ?s WHERE { ?s a <http://x/Person> . }`)
	ep.ResetStats()
	if st := ep.Stats(); st.Queries != 0 || st.Rows != 0 {
		t.Errorf("stats after reset = %+v", st)
	}
}

func TestHTTPRoundTrip(t *testing.T) {
	local := NewLocal("local", testStore(t, 7), Limits{})
	srv := httptest.NewServer(Handler(local))
	defer srv.Close()

	client := NewClient(srv.URL)
	if client.Name() != srv.URL {
		t.Errorf("Name = %q", client.Name())
	}
	res, err := client.Query(context.Background(),
		`SELECT ?s ?n WHERE { ?s <http://x/name> ?n . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(res.Rows))
	}
	// Terms must survive the JSON round trip with kind and lang intact.
	for _, row := range res.Rows {
		if !row["s"].IsIRI() {
			t.Errorf("s = %+v, want IRI", row["s"])
		}
		if row["n"].Lang != "en" {
			t.Errorf("n = %+v, want lang en", row["n"])
		}
	}
}

func TestHTTPErrorMapping(t *testing.T) {
	local := NewLocal("local", testStore(t, 100), Limits{MaxIntermediateRows: 10})
	srv := httptest.NewServer(Handler(local))
	defer srv.Close()
	client := NewClient(srv.URL)

	_, err := client.Query(context.Background(),
		`SELECT ?s ?n WHERE { ?s a <http://x/Person> . ?s <http://x/name> ?n . }`)
	if !errors.Is(err, ErrTimeout) {
		t.Errorf("timeout not propagated over HTTP: %v", err)
	}
	_, err = client.Query(context.Background(), `not sparql`)
	if err == nil || errors.Is(err, ErrTimeout) {
		t.Errorf("parse error mapping wrong: %v", err)
	}
}

func TestHTTPRejectionMapping(t *testing.T) {
	local := NewLocal("local", testStore(t, 100), Limits{RejectEstimateAbove: 5})
	srv := httptest.NewServer(Handler(local))
	defer srv.Close()
	client := NewClient(srv.URL)
	_, err := client.Query(context.Background(), `SELECT ?s ?p ?o WHERE { ?s ?p ?o . }`)
	if !errors.Is(err, ErrRejected) {
		t.Errorf("rejection not propagated: %v", err)
	}
}

func TestHTTPGetAndMissingQuery(t *testing.T) {
	local := NewLocal("local", testStore(t, 3), Limits{})
	srv := httptest.NewServer(Handler(local))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "?query=" + "SELECT%20%3Fs%20WHERE%20%7B%20%3Fs%20a%20%3Chttp%3A%2F%2Fx%2FPerson%3E%20.%20%7D")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("GET status = %d", resp.StatusCode)
	}
	resp, err = srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("missing query status = %d", resp.StatusCode)
	}
}

func TestHTTPTypedLiteralRoundTrip(t *testing.T) {
	s := store.New()
	s.MustAdd(rdf.NewTriple(rdf.NewIRI("http://x/a"), rdf.NewIRI("http://x/age"),
		rdf.NewTypedLiteral("42", rdf.XSDInteger)))
	srv := httptest.NewServer(Handler(NewLocal("l", s, Limits{})))
	defer srv.Close()
	res, err := NewClient(srv.URL).Query(context.Background(),
		`SELECT ?v WHERE { <http://x/a> <http://x/age> ?v . }`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0]["v"]; got.Datatype != rdf.XSDInteger || got.Value != "42" {
		t.Errorf("typed literal = %+v", got)
	}
}

// TestHTTPEpochProtocol pins the wire form of the epoch extension:
// `GET ?epoch` returns the decimal epoch, query responses carry the
// EpochHeader, the probe tracks store mutations, and Client.Epoch reads
// it all back through the Epoched interface.
func TestHTTPEpochProtocol(t *testing.T) {
	st := testStore(t, 3)
	local := NewLocal("local", st, Limits{})
	srv := httptest.NewServer(Handler(local))
	defer srv.Close()

	client := NewClient(srv.URL)
	e1, ok := client.Epoch(context.Background())
	if !ok {
		t.Fatal("Client.Epoch failed against an Epoched server")
	}
	localEpoch, _ := local.Epoch(context.Background())
	if e1 != localEpoch {
		t.Fatalf("probe epoch = %d, local = %d", e1, localEpoch)
	}

	// Query responses carry the header.
	resp, err := srv.Client().Get(srv.URL + "?query=" + url.QueryEscape(`SELECT ?s WHERE { ?s a <http://x/Person> . }`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(EpochHeader); got != fmt.Sprint(e1) {
		t.Errorf("%s = %q, want %d", EpochHeader, got, e1)
	}

	// A mutation moves the probed epoch.
	st.MustAdd(rdf.NewTriple(rdf.NewIRI("http://x/z"), rdf.NewIRI("http://x/p"), rdf.NewLiteral("v")))
	e2, ok := client.Epoch(context.Background())
	if !ok || e2 <= e1 {
		t.Fatalf("epoch after mutation = (%d, %v), want > %d", e2, ok, e1)
	}
}

// TestHTTPEpochUnknown pins the fallback: a server over a non-Epoched
// endpoint answers the probe 404 and Client.Epoch reports unknown.
func TestHTTPEpochUnknown(t *testing.T) {
	inner := NewLocal("inner", testStore(t, 1), Limits{})
	flaky := NewFlaky(inner, 0, 0, 1) // Flaky does not implement Epoched
	srv := httptest.NewServer(Handler(flaky))
	defer srv.Close()
	if _, ok := NewClient(srv.URL).Epoch(context.Background()); ok {
		t.Fatal("Epoch reported known for a non-Epoched endpoint")
	}
	// And against a server that isn't there at all.
	srv.Close()
	if _, ok := NewClient(srv.URL).Epoch(context.Background()); ok {
		t.Fatal("Epoch reported known for a dead server")
	}
}

// TestExactEstimateAdmission pins the admission boundary now that the
// estimate is the planner's driving-scan cost: a query whose cheapest
// first scan touches exactly the threshold is admitted, one row more is
// rejected. The estimate for `?s a Person` is precisely the number of
// Person instances, so the boundary is sharp — no inflation margin on
// either side.
func TestExactEstimateAdmission(t *testing.T) {
	const n = 40
	ep := NewLocal("edge", testStore(t, n), Limits{RejectEstimateAbove: n})
	q := `SELECT ?s WHERE { ?s a <http://x/Person> . }`
	if _, err := ep.Query(context.Background(), q); err != nil {
		t.Fatalf("estimate == threshold must be admitted: %v", err)
	}
	// Two patterns of n rows each: only the first drives a scan (the
	// second becomes a per-row probe), so the cost is n, not 2n.
	q2 := `SELECT ?s WHERE { ?s a <http://x/Person> . ?s <http://x/name> ?o . }`
	if _, err := ep.Query(context.Background(), q2); err != nil {
		t.Fatalf("join driven by an at-threshold scan must be admitted: %v", err)
	}
	tight := NewLocal("tight", testStore(t, n), Limits{RejectEstimateAbove: n - 1})
	if _, err := tight.Query(context.Background(), q); !errors.Is(err, ErrRejected) {
		t.Fatalf("estimate one above threshold must be rejected, got %v", err)
	}
	if _, err := tight.Query(context.Background(), q2); !errors.Is(err, ErrRejected) {
		t.Fatalf("join whose cheapest driving scan exceeds the threshold must be rejected, got %v", err)
	}
}

// TestAdmissionUsesPlannedOrder pins that admission control costs the
// planner's post-reorder driving scan, not the query as written: a cheap
// query whose textual first pattern is a full sweep is admitted, because
// the planner runs the selective pattern first and the sweep becomes a
// per-row probe. The old textual-sum estimate rejected exactly this
// query shape.
func TestAdmissionUsesPlannedOrder(t *testing.T) {
	const n = 40
	// Threshold 5: far below the 2n-triple sweep and the n name rows,
	// but above the single row matched by the constant-object pattern.
	ep := NewLocal("planned", testStore(t, n), Limits{RejectEstimateAbove: 5})
	q := `SELECT ?p WHERE { ?s ?p ?o . ?s <http://x/name> "Person 5"@en . }`
	res, err := ep.Query(context.Background(), q)
	if err != nil {
		t.Fatalf("cheap query written sweep-first must be admitted: %v", err)
	}
	if len(res.Rows) != 2 { // p5 has a type triple and a name triple
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	// The same sweep without the selective companion is still rejected:
	// there is no cheaper scan for the planner to drive with.
	if _, err := ep.Query(context.Background(), `SELECT ?s WHERE { ?s ?p ?o . }`); !errors.Is(err, ErrRejected) {
		t.Fatalf("bare sweep must still be rejected, got %v", err)
	}
}

// TestDefaultLimitsAdmission pins the DefaultLimits contract: the
// calibrated threshold value, and that ordinary workloads pass while a
// store larger than the threshold is refused a full sweep.
func TestDefaultLimitsAdmission(t *testing.T) {
	if DefaultRejectEstimate != 100_000 {
		t.Fatalf("DefaultRejectEstimate = %d, want 100000", DefaultRejectEstimate)
	}
	if got := DefaultLimits().RejectEstimateAbove; got != DefaultRejectEstimate {
		t.Fatalf("DefaultLimits().RejectEstimateAbove = %d, want %d", got, DefaultRejectEstimate)
	}
	if DefaultLimits().MaxIntermediateRows != 0 || DefaultLimits().Latency != 0 {
		t.Fatal("DefaultLimits must only set admission control")
	}
	ep := NewLocal("default", testStore(t, 100), DefaultLimits())
	if _, err := ep.Query(context.Background(), `SELECT ?s WHERE { ?s ?p ?o . }`); err != nil {
		t.Fatalf("small sweep must be admitted under DefaultLimits: %v", err)
	}

	// 60k subjects x 2 triples > 100k: build via the bulk loader and
	// check the full sweep is rejected with its exact cost.
	big := store.New()
	l := store.NewBulkLoader(big)
	typ := rdf.NewIRI(rdf.RDFType)
	person := rdf.NewIRI("http://x/Person")
	for i := 0; i < 60_000; i++ {
		subj := rdf.NewIRI(fmt.Sprintf("http://x/p%d", i))
		l.MustAdd(rdf.NewTriple(subj, typ, person))
		l.MustAdd(rdf.NewTriple(subj, rdf.NewIRI("http://x/name"),
			rdf.NewLangLiteral(fmt.Sprintf("Person %d", i), "en")))
	}
	l.Commit()
	bigEP := NewLocal("big", big, DefaultLimits())
	if _, err := bigEP.Query(context.Background(), `SELECT ?s WHERE { ?s ?p ?o . }`); !errors.Is(err, ErrRejected) {
		t.Fatalf("120k-row sweep must be rejected under DefaultLimits, got %v", err)
	}
	// A selective query over the same large store is still admitted.
	q := fmt.Sprintf(`SELECT ?o WHERE { <http://x/p%d> <http://x/name> ?o . }`, 31_337)
	if _, err := bigEP.Query(context.Background(), q); err != nil {
		t.Fatalf("selective query must be admitted under DefaultLimits: %v", err)
	}
}
