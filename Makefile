# Sapphire build/test/bench entry points.
#
#   make test           - vet gate + full test suite
#   make race           - race-detector pass over the concurrency-sensitive packages
#   make fuzz           - short parser fuzz smoke (same job CI runs)
#   make bench          - full benchmark sweep (3 runs, alloc stats) saved to
#                         BENCH_<yyyy-mm-dd>.txt for before/after comparisons
#   make bench-endpoint - cached-vs-uncached endpoint serving benchmarks saved
#                         to BENCH_ENDPOINT_<yyyy-mm-dd>.txt
#   make vet            - static analysis only

GO ?= go
BENCH_OUT := BENCH_$(shell date +%Y-%m-%d).txt
BENCH_ENDPOINT_OUT := BENCH_ENDPOINT_$(shell date +%Y-%m-%d).txt

.PHONY: all test vet race fuzz bench bench-endpoint build

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test ./...

race:
	$(GO) test -race ./internal/store/ ./internal/sparql/ ./internal/endpoint/ ./internal/federation/

fuzz:
	$(GO) test ./internal/sparql/ -run '^$$' -fuzz 'FuzzParse' -fuzztime=30s

bench:
	$(GO) test -run '^$$' -bench=. -benchmem -count=3 ./... | tee $(BENCH_OUT)

bench-endpoint:
	$(GO) test -run '^$$' -bench 'Query|Churn' -benchmem -count=3 ./internal/endpoint/ | tee $(BENCH_ENDPOINT_OUT)
