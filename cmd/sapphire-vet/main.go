// Command sapphire-vet is the repo's multichecker: it runs stock
// `go vet` plus the sapphire-specific analyzers of internal/analysis
// over package patterns, and exits nonzero on any diagnostic. This is
// what `make lint` and the CI lint job run; the invariants it enforces
// are catalogued in docs/STATIC_ANALYSIS.md.
//
// Usage:
//
//	sapphire-vet [flags] [package patterns]
//
// With no patterns it checks ./... . Flags:
//
//	-novet            skip the stock `go vet` passes (the custom
//	                  analyzers only; used by tests and for quick
//	                  iteration on a single analyzer's output)
//	-unchecked-pkgs   comma-separated import-path suffixes on which the
//	                  errcheck-style unchecked Close/Sync analyzer runs
//	                  (default: the durability path). The other four
//	                  analyzers run on every matched package.
//	-list             print the analyzer roster and exit
//
// Suppress a finding in place with
//
//	//sapphire:allow <analyzer> <reason>
//
// on (or directly above) the flagged line; the reason is mandatory and
// should cite the doc section that justifies the exception.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"

	"sapphire/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// uncheckedDefault scopes the unchecked analyzer to the durability
// path: ignored Close/Sync errors there swallow fsync failures.
// Repo-wide it would flood on idiomatic deferred body.Close() calls.
const uncheckedDefault = "internal/store/persist"

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sapphire-vet", flag.ExitOnError)
	var (
		novet        = fs.Bool("novet", false, "skip the stock `go vet` passes")
		uncheckedPkg = fs.String("unchecked-pkgs", uncheckedDefault,
			"comma-separated import-path suffixes the unchecked analyzer applies to")
		list = fs.Bool("list", false, "list analyzers and exit")
	)
	fs.Parse(args)

	if *list {
		for _, a := range append(analysis.All(), analysis.Unchecked) {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	failed := false

	// Stock go vet first: the standard passes (printf, copylocks,
	// atomic misuse, ...) stay part of the gate, and unlike the custom
	// analyzers they also cover test files.
	if !*novet {
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		cmd.Stdout = stdout
		cmd.Stderr = stderr
		if err := cmd.Run(); err != nil {
			if _, ok := err.(*exec.ExitError); !ok {
				fmt.Fprintf(stderr, "sapphire-vet: go vet: %v\n", err)
			}
			failed = true
		}
	}

	pkgs, err := analysis.LoadPatterns(".", patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "sapphire-vet: %v\n", err)
		return 2
	}

	var uncheckedSuffixes []string
	for _, s := range strings.Split(*uncheckedPkg, ",") {
		if s = strings.TrimSpace(s); s != "" {
			uncheckedSuffixes = append(uncheckedSuffixes, s)
		}
	}

	count := 0
	for _, pkg := range pkgs {
		analyzers := analysis.All()
		for _, suf := range uncheckedSuffixes {
			if pkg.PkgPath == suf || strings.HasSuffix(pkg.PkgPath, "/"+suf) || strings.HasSuffix(pkg.PkgPath, suf) {
				analyzers = append(analyzers, analysis.Unchecked)
				break
			}
		}
		diags, err := analysis.Run(pkg, analyzers)
		if err != nil {
			fmt.Fprintf(stderr, "sapphire-vet: %v\n", err)
			return 2
		}
		for _, d := range diags {
			fmt.Fprintf(stdout, "%s: %s: %s\n", pkg.Fset.Position(d.Pos), d.Analyzer, d.Message)
			count++
		}
	}
	if count > 0 {
		fmt.Fprintf(stderr, "sapphire-vet: %d diagnostic(s)\n", count)
		failed = true
	}
	if failed {
		return 1
	}
	return 0
}
