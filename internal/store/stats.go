package store

import (
	"sort"

	"sapphire/internal/rdf"
)

// PredicateFrequency is one row of the Q1/Q4 aggregates: a predicate and
// how many triples (or literal-valued triples) use it.
type PredicateFrequency struct {
	Predicate rdf.Term
	Count     int
}

// PredicateFrequencies returns all predicates ordered by descending triple
// count (ties broken by term order), mirroring initialization query Q1.
// Per-predicate totals are maintained per shard on insert, so this is
// O(#predicates × #shards).
func (s *Store) PredicateFrequencies() []PredicateFrequency {
	s.rlockAll()
	defer s.runlockAll()
	tv := s.dict.view()
	totals := make(map[ID]int)
	for _, sh := range s.shards {
		for p, e := range sh.pos.m {
			totals[p] += e.total
		}
	}
	out := make([]PredicateFrequency, 0, len(totals))
	for p, n := range totals {
		out = append(out, PredicateFrequency{Predicate: tv.at(p), Count: n})
	}
	sortFreq(out)
	return out
}

// LiteralPredicateFrequencies returns predicates that have at least one
// literal object, ordered by descending count of literal objects. This is
// initialization query Q4 (FILTER isliteral(?o)).
func (s *Store) LiteralPredicateFrequencies() []PredicateFrequency {
	s.rlockAll()
	defer s.runlockAll()
	tv := s.dict.view()
	counts := make(map[ID]int)
	for _, sh := range s.shards {
		for p, e := range sh.pos.m {
			for o, subs := range e.m {
				if tv.at(o).IsLiteral() {
					counts[p] += len(*subs)
				}
			}
		}
	}
	out := make([]PredicateFrequency, 0, len(counts))
	for p, n := range counts {
		if n > 0 {
			out = append(out, PredicateFrequency{Predicate: tv.at(p), Count: n})
		}
	}
	sortFreq(out)
	return out
}

// TypeFrequencies returns the rdf:type objects ordered by how many
// subjects carry them — initialization query Q3 for datasets without an
// RDFS hierarchy.
func (s *Store) TypeFrequencies() []PredicateFrequency {
	typ, ok := s.dict.lookup(rdf.NewIRI(rdf.RDFType))
	if !ok {
		return nil
	}
	s.rlockAll()
	defer s.runlockAll()
	tv := s.dict.view()
	counts := make(map[ID]int)
	for _, sh := range s.shards {
		e := sh.pos.m[typ]
		if e == nil {
			continue
		}
		for o, subs := range e.m {
			counts[o] += len(*subs)
		}
	}
	if len(counts) == 0 {
		return nil
	}
	out := make([]PredicateFrequency, 0, len(counts))
	for o, n := range counts {
		out = append(out, PredicateFrequency{Predicate: tv.at(o), Count: n})
	}
	sortFreq(out)
	return out
}

func sortFreq(fs []PredicateFrequency) {
	sort.Slice(fs, func(i, j int) bool {
		if fs[i].Count != fs[j].Count {
			return fs[i].Count > fs[j].Count
		}
		return fs[i].Predicate.Compare(fs[j].Predicate) < 0
	})
}

// DistinctLiterals returns the number of distinct literal terms, one of
// the dataset-scale statistics the paper reports (DBpedia: ~70M literals
// vs ~3K predicates). The same literal can be an object in several
// shards, so the per-shard OSP key sets are deduplicated by ID.
func (s *Store) DistinctLiterals() int {
	s.rlockAll()
	defer s.runlockAll()
	tv := s.dict.view()
	seen := make(map[ID]struct{})
	for _, sh := range s.shards {
		for _, o := range sh.osp.keys {
			if tv.at(o).IsLiteral() {
				seen[o] = struct{}{}
			}
		}
	}
	return len(seen)
}

// IncomingEdgeCount returns the number of triples whose object is the
// given term — the inner quantity of Definition 1 (literal significance).
// The per-object total is maintained on insert, so this is O(shards).
func (s *Store) IncomingEdgeCount(o rdf.Term) int {
	oi, ok := s.dict.lookup(o)
	if !ok {
		return 0
	}
	s.rlockAll()
	defer s.runlockAll()
	n := 0
	for _, sh := range s.shards {
		if e := sh.osp.m[oi]; e != nil {
			n += e.total
		}
	}
	return n
}

// LiteralSignificance computes S(l) from Definition 1 for every literal:
// the number of triples (s, p1, o) such that (o, p2, l) is in the store.
// That is, a literal inherits the incoming-edge count of the entities it
// describes. The result maps literal terms to their significance score.
func (s *Store) LiteralSignificance() map[rdf.Term]int {
	s.rlockAll()
	defer s.runlockAll()
	tv := s.dict.view()
	// Pass 1: total in-degree per entity, summed across shards (an
	// entity can be an object in any shard).
	in := make(map[ID]int)
	for _, sh := range s.shards {
		for o, e := range sh.osp.m {
			if e.total == 0 || tv.at(o).IsLiteral() {
				continue
			}
			in[o] += e.total
		}
	}
	// Pass 2: every entity's out-edges live wholly in its subject shard;
	// add its in-degree to each literal it points at.
	sig := make(map[rdf.Term]int)
	for o, deg := range in {
		out := s.shardFor(o).spo.m[o]
		if out == nil {
			continue
		}
		for _, objs := range out.m {
			for _, l := range *objs {
				if lt := tv.at(l); lt.IsLiteral() {
					sig[lt] += deg
				}
			}
		}
	}
	return sig
}
