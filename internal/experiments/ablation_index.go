package experiments

import (
	"sort"
	"strings"
	"time"
)

// prefixIndex is the ablation alternative to the suffix tree: a sorted
// string slice with binary search. It can only answer *prefix* queries —
// which is exactly why the paper chose a suffix tree: users type
// mid-string fragments ("Kennedy" for "John F. Kennedy") that a prefix
// index cannot see.
type prefixIndex struct {
	sorted []string
}

func newPrefixIndex(strs []string) *prefixIndex {
	out := append([]string(nil), strs...)
	sort.Strings(out)
	return &prefixIndex{sorted: out}
}

// search returns up to limit indexed strings with the given prefix.
func (p *prefixIndex) search(prefix string, limit int) []string {
	i := sort.SearchStrings(p.sorted, prefix)
	var out []string
	for ; i < len(p.sorted) && strings.HasPrefix(p.sorted[i], prefix); i++ {
		out = append(out, p.sorted[i])
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}

// IndexAblation compares the suffix tree against a binary-search prefix
// index on the QCM workload: recall (fraction of lookup terms with at
// least one match) and mean lookup latency. The suffix tree must win on
// recall because completion terms are substrings, not prefixes.
func IndexAblation(env *Env) []AblationRow {
	terms := qcmTerms()
	// Rebuild the same string set the tree indexes.
	var strs []string
	for _, lex := range env.Cache.Literals() {
		if env.Cache.InSuffixTree(lex) {
			strs = append(strs, lex)
		}
	}
	pi := newPrefixIndex(strs)

	treeHits, prefixHits := 0, 0
	start := time.Now()
	for _, t := range terms {
		if len(env.Cache.Tree.Search(t, 1)) > 0 {
			treeHits++
		}
	}
	treeNs := float64(time.Since(start).Nanoseconds()) / float64(len(terms))
	start = time.Now()
	for _, t := range terms {
		if len(pi.search(t, 1)) > 0 {
			prefixHits++
		}
	}
	prefixNs := float64(time.Since(start).Nanoseconds()) / float64(len(terms))

	n := float64(len(terms))
	return []AblationRow{
		{
			Name:  "suffix tree (paper)",
			Value: 100 * float64(treeHits) / n,
			Extra: treeNs / 1e6,
			Note:  "hit-%, ms/lookup; finds substrings anywhere",
		},
		{
			Name:  "binary-search prefix index",
			Value: 100 * float64(prefixHits) / n,
			Extra: prefixNs / 1e6,
			Note:  "hit-%, ms/lookup; prefix-only, misses mid-string terms",
		},
	}
}

// BinFilterAblation measures the γ length-window's effect on the
// residual scan: literals scanned and latency with the paper's window
// versus a full scan of every bin.
func BinFilterAblation(env *Env) []AblationRow {
	terms := qcmTerms()
	gamma := env.PUM.Config().Gamma
	total := env.Cache.Bins.Len()

	scan := func(windowed bool) (float64, float64) {
		scanned := 0
		start := time.Now()
		for _, t := range terms {
			lo, hi := 0, 1<<20
			if windowed {
				lo = len([]rune(t))
				hi = lo + gamma
			}
			scanned += env.Cache.Bins.SelectedCount(lo, hi)
			env.Cache.Bins.SearchSubstring(t, lo, hi, env.PUM.Config().Workers, 10)
		}
		ns := float64(time.Since(start).Nanoseconds()) / float64(len(terms))
		return float64(scanned) / float64(len(terms)), ns
	}
	winScanned, winNs := scan(true)
	fullScanned, fullNs := scan(false)
	_ = total
	return []AblationRow{
		{
			Name:  "γ length window (paper)",
			Value: winScanned,
			Extra: winNs / 1e6,
			Note:  "literals scanned/lookup, ms/lookup",
		},
		{
			Name:  "no length filter",
			Value: fullScanned,
			Extra: fullNs / 1e6,
			Note:  "literals scanned/lookup, ms/lookup",
		},
	}
}
