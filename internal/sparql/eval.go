package sparql

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"sapphire/internal/rdf"
)

// Graph is the triple source the evaluator runs against. The in-memory
// store satisfies it directly; endpoints and federations adapt to it.
type Graph interface {
	// Match streams triples matching the pattern (zero terms are
	// wildcards) until fn returns false.
	Match(s, p, o rdf.Term, fn func(rdf.Triple) bool)
	// CardinalityEstimate returns an upper bound on matching triples,
	// used for greedy join ordering.
	CardinalityEstimate(s, p, o rdf.Term) int
}

// IDGraph is an optional Graph extension for dictionary-encoded stores.
// When the graph implements it, the evaluator joins over dense uint32
// term IDs — integer map probes instead of 4-field struct hashing — and
// resolves IDs back to terms only once the basic graph pattern is fully
// joined. The zero ID is the wildcard, mirroring the zero-Term convention
// of Match. The in-memory store implements this; remote and federated
// graphs fall back to the Term-level path.
type IDGraph interface {
	Graph
	// Lookup returns the dictionary ID of a term, or false if the term
	// does not occur in the graph.
	Lookup(t rdf.Term) (uint32, bool)
	// ResolveID returns the term for an ID (zero Term for unknown IDs).
	ResolveID(id uint32) rdf.Term
	// MatchIDs streams matching triples as ID tuples; zero IDs are
	// wildcards. Iteration stops early if fn returns false.
	MatchIDs(s, p, o uint32, fn func(s, p, o uint32) bool)
}

// Binding maps variable names to terms for one solution row.
type Binding map[string]rdf.Term

// clone copies a binding.
func (b Binding) clone() Binding {
	c := make(Binding, len(b)+1)
	for k, v := range b {
		c[k] = v
	}
	return c
}

// Results is the outcome of query evaluation.
type Results struct {
	// Vars is the projection list in order.
	Vars []string
	// Rows are the solutions; each maps every projected var (missing
	// entries mean unbound, which cannot happen in this subset).
	Rows []Binding
}

// Sorted returns the rows serialized deterministically, for tests.
func (r *Results) Sorted() []string {
	out := make([]string, len(r.Rows))
	for i, row := range r.Rows {
		parts := make([]string, len(r.Vars))
		for j, v := range r.Vars {
			parts[j] = row[v].String()
		}
		out[i] = strings.Join(parts, " | ")
	}
	sort.Strings(out)
	return out
}

// Budget is invoked for every intermediate row the evaluator produces.
// Simulated endpoints use it to enforce timeouts and result limits the
// way public SPARQL endpoints do; returning an error aborts evaluation.
type Budget func() error

// Options configures evaluation.
type Options struct {
	// Budget, if non-nil, is called once per intermediate row.
	Budget Budget
}

// Eval evaluates a query against a graph.
func Eval(g Graph, q *Query, opts Options) (*Results, error) {
	e := &evaluator{g: g, q: q, budget: opts.Budget}
	return e.run()
}

type evaluator struct {
	g      Graph
	q      *Query
	budget Budget

	// maxRows caps how many final join rows the BGP executors produce
	// when LIMIT/OFFSET can be pushed into the join (see pushdownCap);
	// -1 means no cap. emitted counts final rows produced so far across
	// all union branches.
	maxRows int
	emitted int
}

// joinOrderPreserved reports whether the query's result rows are
// exactly the join's output rows, in join emission order: no modifier
// between the join and page() reorders, drops, multiplies, or merges
// rows (ORDER BY reorders, aggregates and DISTINCT collapse, FILTER
// drops, OPTIONAL multiplies). For this class the evaluator serves join
// order directly — it is fully deterministic (the store's iteration
// order is pinned by TestShardEquivalence and the greedy plan is a pure
// function of the store state) — instead of the defensive row-key sort
// the modifier paths use, and that is what makes the LIMIT/OFFSET
// pushdown an exact row-for-row match of the materialize-then-page slow
// path.
func (e *evaluator) joinOrderPreserved() bool {
	q := e.q
	return !q.HasAggregates() && !q.Distinct &&
		len(q.OrderBy) == 0 && len(q.Filters) == 0 && len(q.Optionals) == 0
}

// pushdownCap returns Offset+Limit when paging can be pushed into the
// join's early-stop path, or -1 when the full solution set is needed
// first: with join order preserved, result rows correspond 1:1 (in
// order) to join rows, so the join can stop after producing the first
// Offset+Limit of them — LIMIT k over a huge pattern does work
// proportional to k, not to the match count.
func (e *evaluator) pushdownCap() int {
	if e.q.Limit < 0 || !e.joinOrderPreserved() {
		return -1
	}
	return e.q.Offset + e.q.Limit
}

func (e *evaluator) tick() error {
	if e.budget == nil {
		return nil
	}
	return e.budget()
}

func (e *evaluator) run() (*Results, error) {
	if len(e.q.Where) == 0 && len(e.q.UnionGroups) == 0 {
		return nil, fmt.Errorf("sparql: empty WHERE clause")
	}
	e.maxRows = e.pushdownCap()
	var rows []Binding
	var err error
	if len(e.q.UnionGroups) > 0 {
		// Union: each branch evaluates independently; solutions concat.
		// With a pushdown cap the shared emitted counter stops later
		// branches once earlier ones have produced enough rows.
		for _, g := range e.q.UnionGroups {
			if e.maxRows >= 0 && e.emitted >= e.maxRows {
				break
			}
			branch, berr := e.joinGroup(g)
			if berr != nil {
				return nil, berr
			}
			rows = append(rows, branch...)
		}
		// Any trailing plain patterns join against the union result.
		if len(e.q.Where) > 0 {
			return nil, fmt.Errorf("sparql: mixing UNION with top-level patterns is not supported")
		}
	} else {
		rows, err = e.joinGroup(e.q.Where)
		if err != nil {
			return nil, err
		}
	}
	// OPTIONAL blocks left-join against the solutions so far.
	for _, opt := range e.q.Optionals {
		rows, err = e.leftJoin(rows, opt)
		if err != nil {
			return nil, err
		}
	}
	rows, err = e.applyFilters(rows)
	if err != nil {
		return nil, err
	}
	// SPARQL orders the solution sequence before projection, so ORDER BY
	// may reference variables that are not projected. Aggregate queries
	// order after grouping instead, since their keys name output columns.
	if !e.q.HasAggregates() {
		e.orderRows(rows)
	}
	res, err := e.project(rows)
	if err != nil {
		return nil, err
	}
	// Queries whose rows are the join's rows keep join order (see
	// joinOrderPreserved); the modifier paths fall back to the
	// deterministic row-key sort when no explicit order was given.
	if (e.q.HasAggregates() || len(e.q.OrderBy) == 0) && !e.joinOrderPreserved() {
		e.order(res)
	}
	e.page(res)
	return res, nil
}

// orderRows sorts full solution rows by the ORDER BY keys before
// projection.
func (e *evaluator) orderRows(rows []Binding) {
	if len(e.q.OrderBy) == 0 {
		return
	}
	keys := e.q.OrderBy
	sort.SliceStable(rows, func(i, j int) bool {
		for _, k := range keys {
			c := compareTermsForOrder(rows[i][k.Var], rows[j][k.Var])
			if c != 0 {
				if k.Desc {
					return c > 0
				}
				return c < 0
			}
		}
		return false
	})
}

// joinGroup executes one basic graph pattern with a greedy left-deep
// join: at each step pick the unexecuted pattern with the lowest
// cardinality estimate given already-bound variables.
func (e *evaluator) joinGroup(group []Pattern) ([]Binding, error) {
	return e.joinFrom([]Binding{{}}, group)
}

// leftJoin extends each row with the optional block's solutions, keeping
// the row unextended when the block has no match (SPARQL OPTIONAL).
func (e *evaluator) leftJoin(rows []Binding, block []Pattern) ([]Binding, error) {
	var out []Binding
	for _, row := range rows {
		matches, err := e.joinFrom([]Binding{row}, block)
		if err != nil {
			return nil, err
		}
		if len(matches) == 0 {
			out = append(out, row)
		} else {
			out = append(out, matches...)
		}
	}
	return out, nil
}

// joinFrom joins the patterns starting from the given seed rows. Graphs
// exposing the ID-level API get the dictionary-encoded join; others the
// Term-level one.
func (e *evaluator) joinFrom(seed []Binding, group []Pattern) ([]Binding, error) {
	if len(group) == 0 {
		return seed, nil
	}
	// The ID join pays one extra map per emitted row (the ID row plus the
	// resolved Term row), which a multi-pattern join amortizes across its
	// intermediate results. A single pattern has no join to speed up, so
	// the Term path is both simpler and cheaper there. (The ID join
	// tracks executed patterns in a uint64 mask, hence the size cap; BGPs
	// beyond it are unheard of.)
	if ig, ok := e.g.(IDGraph); ok && len(group) > 1 && len(group) <= 64 {
		return e.joinFromIDs(ig, seed, group)
	}
	return e.joinFromTerms(seed, group)
}

// joinFromTerms is the Term-level join used for graphs without an ID API
// (remote endpoints, federations).
func (e *evaluator) joinFromTerms(seed []Binding, group []Pattern) ([]Binding, error) {
	remaining := append([]Pattern(nil), group...)
	rows := seed
	bound := make(map[string]bool)
	if len(seed) > 0 {
		for v := range seed[0] {
			bound[v] = true
		}
	}
	for len(remaining) > 0 {
		idx := e.pickNext(remaining, bound)
		pat := remaining[idx]
		remaining = append(remaining[:idx], remaining[idx+1:]...)
		// Rows produced by the last pattern are final solutions: when a
		// LIMIT pushdown cap is active they count against it, and the
		// join stops the moment it is reached.
		final := len(remaining) == 0
		stop := false
		var next []Binding
		for _, row := range rows {
			s, sv := resolve(pat.S, row)
			p, pv := resolve(pat.P, row)
			o, ov := resolve(pat.O, row)
			var innerErr error
			e.g.Match(s, p, o, func(tr rdf.Triple) bool {
				if innerErr = e.tick(); innerErr != nil {
					return false
				}
				nb := row
				cloned := false
				bind := func(v string, t rdf.Term) bool {
					if v == "" {
						return true
					}
					if cur, ok := nb[v]; ok {
						return cur == t
					}
					if !cloned {
						nb = nb.clone()
						cloned = true
					}
					nb[v] = t
					return true
				}
				if !bind(sv, tr.S) || !bind(pv, tr.P) || !bind(ov, tr.O) {
					return true
				}
				// A fully bound pattern binds nothing new; the row passes
				// through unchanged and uncloned. Sharing is safe: every
				// mutation above is preceded by a clone.
				next = append(next, nb)
				if final && e.maxRows >= 0 {
					e.emitted++
					if e.emitted >= e.maxRows {
						stop = true
						return false
					}
				}
				return true
			})
			if innerErr != nil {
				return nil, innerErr
			}
			if stop {
				break
			}
		}
		rows = next
		for _, v := range pat.Vars() {
			bound[v] = true
		}
		if len(rows) == 0 || stop {
			return rows, nil
		}
	}
	return rows, nil
}

// idBinding is a solution row over dictionary IDs.
type idBinding map[string]uint32

// emptyIDRow is the shared zero-variable seed row. It is never mutated:
// the ID join clones a row before binding into it.
var emptyIDRow = idBinding{}

func (b idBinding) clone() idBinding {
	c := make(idBinding, len(b)+1)
	for k, v := range b {
		c[k] = v
	}
	return c
}

// idNode is a pattern position prepared for ID-level matching: either a
// constant already looked up in the dictionary, or a variable name.
type idNode struct {
	id uint32 // constant ID; 0 for variables
	v  string // variable name; "" for constants
}

// joinFromIDs joins over dictionary IDs: per-pattern constants are looked
// up once, rows hold uint32 IDs, and terms materialize only after the
// whole group is joined.
func (e *evaluator) joinFromIDs(ig IDGraph, seed []Binding, group []Pattern) ([]Binding, error) {
	rows := make([]idBinding, 0, len(seed))
	for _, b := range seed {
		if len(b) == 0 {
			// The canonical empty seed: share one immutable row — the
			// join always clones before binding into a row.
			rows = append(rows, emptyIDRow)
			continue
		}
		ib := make(idBinding, len(b))
		for v, t := range b {
			id, ok := ig.Lookup(t)
			if !ok {
				// A seed term unknown to this graph (possible when a seed
				// row came from elsewhere) has no ID; the Term-level join
				// handles that case correctly.
				return e.joinFromTerms(seed, group)
			}
			ib[v] = id
		}
		rows = append(rows, ib)
	}
	bound := make(map[string]bool)
	if len(seed) > 0 {
		for v := range seed[0] {
			bound[v] = true
		}
	}
	var used uint64 // bit i set once group[i] has executed
	var out []Binding
	for done := 0; done < len(group); done++ {
		idx := e.pickNextMask(group, used, bound)
		pat := group[idx]
		used |= 1 << idx
		final := done == len(group)-1
		sN, sOK := idNodeOf(ig, pat.S)
		pN, pOK := idNodeOf(ig, pat.P)
		oN, oOK := idNodeOf(ig, pat.O)
		if !sOK || !pOK || !oOK {
			// A constant term absent from the dictionary matches nothing.
			return nil, nil
		}
		stop := false
		var next []idBinding
		for _, row := range rows {
			s, sv := resolveID(sN, row)
			p, pv := resolveID(pN, row)
			o, ov := resolveID(oN, row)
			var innerErr error
			ig.MatchIDs(s, p, o, func(ms, mp, mo uint32) bool {
				if innerErr = e.tick(); innerErr != nil {
					return false
				}
				// Repeated unbound variables must match the same term.
				if sv != "" && ((sv == pv && ms != mp) || (sv == ov && ms != mo)) {
					return true
				}
				if pv != "" && pv == ov && mp != mo {
					return true
				}
				if final {
					// Last pattern: materialize the Term row directly,
					// skipping the intermediate ID row and the separate
					// resolve pass.
					nb := make(Binding, len(row)+3)
					for v, id := range row {
						nb[v] = ig.ResolveID(id)
					}
					if sv != "" {
						nb[sv] = ig.ResolveID(ms)
					}
					if pv != "" {
						nb[pv] = ig.ResolveID(mp)
					}
					if ov != "" {
						nb[ov] = ig.ResolveID(mo)
					}
					out = append(out, nb)
					if e.maxRows >= 0 {
						e.emitted++
						if e.emitted >= e.maxRows {
							stop = true
							return false
						}
					}
					return true
				}
				nb := row
				if sv != "" || pv != "" || ov != "" {
					nb = nb.clone()
					if sv != "" {
						nb[sv] = ms
					}
					if pv != "" {
						nb[pv] = mp
					}
					if ov != "" {
						nb[ov] = mo
					}
				}
				next = append(next, nb)
				return true
			})
			if innerErr != nil {
				return nil, innerErr
			}
			if stop {
				break
			}
		}
		if final {
			return out, nil
		}
		rows = next
		for _, v := range pat.Vars() {
			bound[v] = true
		}
		if len(rows) == 0 {
			return nil, nil
		}
	}
	return out, nil
}

// idNodeOf prepares one pattern position. ok is false when the position
// is a constant that does not occur in the graph's dictionary.
func idNodeOf(ig IDGraph, n Node) (idNode, bool) {
	if n.IsVar() {
		return idNode{v: n.Var}, true
	}
	id, ok := ig.Lookup(n.Term)
	return idNode{id: id}, ok
}

// resolveID turns a prepared position into a concrete ID (constant or
// bound) plus the variable name still to bind.
func resolveID(n idNode, row idBinding) (uint32, string) {
	if n.v == "" {
		return n.id, ""
	}
	if id, ok := row[n.v]; ok {
		return id, ""
	}
	return 0, n.v
}

// resolve turns a pattern node into a concrete term (when constant or
// already bound) plus the variable name still to bind.
func resolve(n Node, row Binding) (rdf.Term, string) {
	if !n.IsVar() {
		return n.Term, ""
	}
	if t, ok := row[n.Var]; ok {
		return t, ""
	}
	return rdf.Term{}, n.Var
}

// pickNext chooses the most selective remaining pattern. Patterns sharing
// a bound variable are preferred over cartesian products.
func (e *evaluator) pickNext(remaining []Pattern, bound map[string]bool) int {
	return e.pickNextMask(remaining, 0, bound)
}

// pickNextMask is pickNext over a group with a bitmask of already
// executed patterns, letting the ID join avoid the remaining-slice copy.
func (e *evaluator) pickNextMask(group []Pattern, used uint64, bound map[string]bool) int {
	best, bestCost := -1, 0
	for i, pat := range group {
		if used&(1<<i) != 0 {
			continue
		}
		cost := e.patternCost(pat, bound)
		// Penalize patterns with no join variable: cartesian product.
		if len(bound) > 0 && !sharesVar(pat, bound) {
			cost = cost*16 + 1<<20
		}
		if best < 0 || cost < bestCost {
			best, bestCost = i, cost
		}
	}
	return best
}

func sharesVar(pat Pattern, bound map[string]bool) bool {
	for _, v := range pat.Vars() {
		if bound[v] {
			return true
		}
	}
	return false
}

func (e *evaluator) patternCost(pat Pattern, bound map[string]bool) int {
	term := func(n Node) rdf.Term {
		if !n.IsVar() {
			return n.Term
		}
		if bound[n.Var] {
			// Bound at runtime; approximate selectivity by treating the
			// position as fixed with an unknown value: use zero term but
			// discount the estimate below.
			return rdf.Term{}
		}
		return rdf.Term{}
	}
	est := e.g.CardinalityEstimate(term(pat.S), term(pat.P), term(pat.O))
	// Discount patterns whose variables are already bound: each bound
	// variable roughly divides the work.
	for _, v := range pat.Vars() {
		if bound[v] {
			est /= 4
		}
	}
	return est
}

func (e *evaluator) applyFilters(rows []Binding) ([]Binding, error) {
	if len(e.q.Filters) == 0 {
		return rows, nil
	}
	out := rows[:0]
	for _, row := range rows {
		if err := e.tick(); err != nil {
			return nil, err
		}
		keep := true
		for _, f := range e.q.Filters {
			v, err := f.Eval(row)
			if err != nil {
				// SPARQL: evaluation errors make the filter fail for
				// this row, not the whole query.
				keep = false
				break
			}
			b, err := v.EffectiveBool()
			if err != nil || !b {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, row)
		}
	}
	return out, nil
}

func (e *evaluator) project(rows []Binding) (*Results, error) {
	q := e.q
	if q.SelectAll {
		vars := q.Vars()
		res := &Results{Vars: vars}
		res.Rows = e.distinct(projectVars(rows, vars))
		return res, nil
	}
	if !q.HasAggregates() {
		vars := make([]string, len(q.Projections))
		for i, p := range q.Projections {
			vars[i] = p.Var
		}
		res := &Results{Vars: vars}
		res.Rows = e.distinct(projectVars(rows, vars))
		return res, nil
	}
	return e.aggregate(rows)
}

func projectVars(rows []Binding, vars []string) []Binding {
	out := make([]Binding, len(rows))
	for i, row := range rows {
		nb := make(Binding, len(vars))
		for _, v := range vars {
			if t, ok := row[v]; ok {
				nb[v] = t
			}
		}
		out[i] = nb
	}
	return out
}

func (e *evaluator) distinct(rows []Binding) []Binding {
	if !e.q.Distinct {
		return rows
	}
	seen := make(map[string]bool, len(rows))
	out := rows[:0]
	vars := e.projVars()
	for _, row := range rows {
		key := rowKey(row, vars)
		if !seen[key] {
			seen[key] = true
			out = append(out, row)
		}
	}
	return out
}

func (e *evaluator) projVars() []string {
	if e.q.SelectAll {
		return e.q.Vars()
	}
	vars := make([]string, 0, len(e.q.Projections))
	for _, p := range e.q.Projections {
		vars = append(vars, p.Name())
	}
	return vars
}

// rowKey builds the composite dedup/grouping key for a row in a single
// preallocated builder pass — no per-term String allocations. The bytes
// are identical to joining the terms' N-Triples forms with NUL, keeping
// the deterministic tie-break order stable.
func rowKey(row Binding, vars []string) string {
	var b strings.Builder
	b.Grow(24 * len(vars))
	for i, v := range vars {
		if i > 0 {
			b.WriteByte(0)
		}
		row[v].StringTo(&b)
	}
	return b.String()
}

// aggregate computes grouped aggregates. With no GROUP BY all rows form
// one group.
func (e *evaluator) aggregate(rows []Binding) (*Results, error) {
	q := e.q
	groups := make(map[string][]Binding)
	var order []string
	for _, row := range rows {
		key := rowKey(row, q.GroupBy)
		if _, ok := groups[key]; !ok {
			order = append(order, key)
		}
		groups[key] = append(groups[key], row)
	}
	if len(rows) == 0 && len(q.GroupBy) == 0 {
		// Aggregates over the empty solution set yield one row (COUNT=0).
		order = append(order, "")
		groups[""] = nil
	}
	sort.Strings(order)

	vars := make([]string, len(q.Projections))
	for i, p := range q.Projections {
		vars[i] = p.Name()
	}
	res := &Results{Vars: vars}
	for _, key := range order {
		grows := groups[key]
		out := make(Binding, len(q.Projections))
		for _, p := range q.Projections {
			switch p.Agg {
			case AggNone:
				if len(grows) > 0 {
					out[p.Name()] = grows[0][p.Var]
				}
			case AggCount:
				out[p.Name()] = countAgg(grows, p)
			case AggMax, AggMin, AggSum, AggAvg:
				t, err := numericAgg(grows, p)
				if err != nil {
					return nil, err
				}
				out[p.Name()] = t
			}
		}
		res.Rows = append(res.Rows, out)
	}
	res.Rows = e.distinct(res.Rows)
	return res, nil
}

func countAgg(rows []Binding, p Projection) rdf.Term {
	if p.Var == "" {
		return intLit(len(rows))
	}
	if !p.AggDistinct {
		n := 0
		for _, r := range rows {
			if _, ok := r[p.Var]; ok {
				n++
			}
		}
		return intLit(n)
	}
	seen := make(map[rdf.Term]bool)
	for _, r := range rows {
		if t, ok := r[p.Var]; ok {
			seen[t] = true
		}
	}
	return intLit(len(seen))
}

func numericAgg(rows []Binding, p Projection) (rdf.Term, error) {
	var vals []float64
	for _, r := range rows {
		t, ok := r[p.Var]
		if !ok {
			continue
		}
		f, err := strconv.ParseFloat(t.Value, 64)
		if err != nil {
			return rdf.Term{}, fmt.Errorf("sparql: %s over non-numeric value %s", p.Agg, t)
		}
		vals = append(vals, f)
	}
	if len(vals) == 0 {
		return intLit(0), nil
	}
	switch p.Agg {
	case AggMax:
		m := vals[0]
		for _, v := range vals[1:] {
			if v > m {
				m = v
			}
		}
		return floatLit(m), nil
	case AggMin:
		m := vals[0]
		for _, v := range vals[1:] {
			if v < m {
				m = v
			}
		}
		return floatLit(m), nil
	case AggSum:
		s := 0.0
		for _, v := range vals {
			s += v
		}
		return floatLit(s), nil
	default: // AggAvg
		s := 0.0
		for _, v := range vals {
			s += v
		}
		return floatLit(s / float64(len(vals))), nil
	}
}

func intLit(n int) rdf.Term {
	return rdf.NewTypedLiteral(strconv.Itoa(n), rdf.XSDInteger)
}

func floatLit(f float64) rdf.Term {
	if f == float64(int64(f)) {
		return rdf.NewTypedLiteral(strconv.FormatInt(int64(f), 10), rdf.XSDInteger)
	}
	return rdf.NewTypedLiteral(strconv.FormatFloat(f, 'g', -1, 64), rdf.XSDDouble)
}

// order sorts the result rows by the ORDER BY keys, falling back to a
// total deterministic order when keys tie.
func (e *evaluator) order(res *Results) {
	keys := e.q.OrderBy
	sort.SliceStable(res.Rows, func(i, j int) bool {
		a, b := res.Rows[i], res.Rows[j]
		for _, k := range keys {
			c := compareTermsForOrder(a[k.Var], b[k.Var])
			if c != 0 {
				if k.Desc {
					return c > 0
				}
				return c < 0
			}
		}
		if len(keys) > 0 {
			return false
		}
		// No explicit order: keep deterministic by full row key.
		return rowKey(a, res.Vars) < rowKey(b, res.Vars)
	})
}

// compareTermsForOrder compares numerically when both terms parse as
// numbers, else by term order.
func compareTermsForOrder(a, b rdf.Term) int {
	if a.IsLiteral() && b.IsLiteral() {
		af, aerr := strconv.ParseFloat(a.Value, 64)
		bf, berr := strconv.ParseFloat(b.Value, 64)
		if aerr == nil && berr == nil {
			switch {
			case af < bf:
				return -1
			case af > bf:
				return 1
			default:
				return 0
			}
		}
	}
	return a.Compare(b)
}

func (e *evaluator) page(res *Results) {
	if e.q.Offset > 0 {
		if e.q.Offset >= len(res.Rows) {
			res.Rows = nil
		} else {
			res.Rows = res.Rows[e.q.Offset:]
		}
	}
	if e.q.Limit >= 0 && e.q.Limit < len(res.Rows) {
		res.Rows = res.Rows[:e.q.Limit]
	}
}
