package endpoint

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"sapphire/internal/rdf"
	"sapphire/internal/sparql"
)

// jsonResults is the SPARQL 1.1 Query Results JSON format, the wire
// representation between the HTTP endpoint and client.
type jsonResults struct {
	Head struct {
		Vars []string `json:"vars"`
	} `json:"head"`
	Results struct {
		Bindings []map[string]jsonTerm `json:"bindings"`
	} `json:"results"`
}

type jsonTerm struct {
	Type     string `json:"type"` // "uri", "literal", "bnode"
	Value    string `json:"value"`
	Lang     string `json:"xml:lang,omitempty"`
	Datatype string `json:"datatype,omitempty"`
}

func toJSONResults(res *sparql.Results) *jsonResults {
	out := &jsonResults{}
	out.Head.Vars = res.Vars
	out.Results.Bindings = make([]map[string]jsonTerm, 0, len(res.Rows))
	for _, row := range res.Rows {
		b := make(map[string]jsonTerm, len(row))
		for v, t := range row {
			b[v] = toJSONTerm(t)
		}
		out.Results.Bindings = append(out.Results.Bindings, b)
	}
	return out
}

func toJSONTerm(t rdf.Term) jsonTerm {
	switch t.Kind {
	case rdf.KindIRI:
		return jsonTerm{Type: "uri", Value: t.Value}
	case rdf.KindBlank:
		return jsonTerm{Type: "bnode", Value: t.Value}
	default:
		return jsonTerm{Type: "literal", Value: t.Value, Lang: t.Lang, Datatype: t.Datatype}
	}
}

func fromJSONTerm(jt jsonTerm) (rdf.Term, error) {
	switch jt.Type {
	case "uri":
		return rdf.NewIRI(jt.Value), nil
	case "bnode":
		return rdf.NewBlank(jt.Value), nil
	case "literal", "typed-literal":
		switch {
		case jt.Lang != "":
			return rdf.NewLangLiteral(jt.Value, jt.Lang), nil
		case jt.Datatype != "":
			return rdf.NewTypedLiteral(jt.Value, jt.Datatype), nil
		default:
			return rdf.NewLiteral(jt.Value), nil
		}
	default:
		return rdf.Term{}, fmt.Errorf("endpoint: unknown term type %q", jt.Type)
	}
}

// Handler exposes an Endpoint over HTTP at the conventional /sparql
// path semantics: GET with ?query= or POST with form/raw body. Errors
// map to HTTP statuses: parse errors 400, timeouts 503, rejections 429.
func Handler(ep Endpoint) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var query string
		switch r.Method {
		case http.MethodGet:
			query = r.URL.Query().Get("query")
		case http.MethodPost:
			ct := r.Header.Get("Content-Type")
			if strings.HasPrefix(ct, "application/x-www-form-urlencoded") {
				if err := r.ParseForm(); err != nil {
					http.Error(w, err.Error(), http.StatusBadRequest)
					return
				}
				query = r.PostForm.Get("query")
			} else {
				body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
				if err != nil {
					http.Error(w, err.Error(), http.StatusBadRequest)
					return
				}
				query = string(body)
			}
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		if strings.TrimSpace(query) == "" {
			http.Error(w, "missing query", http.StatusBadRequest)
			return
		}
		res, err := ep.Query(r.Context(), query)
		if err != nil {
			switch {
			case errors.Is(err, ErrTimeout):
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
			case errors.Is(err, ErrRejected):
				http.Error(w, err.Error(), http.StatusTooManyRequests)
			default:
				http.Error(w, err.Error(), http.StatusBadRequest)
			}
			return
		}
		w.Header().Set("Content-Type", "application/sparql-results+json")
		_ = json.NewEncoder(w).Encode(toJSONResults(res))
	})
}

// Client is an Endpoint talking to a remote SPARQL HTTP endpoint.
type Client struct {
	url    string
	client *http.Client
}

// NewClient returns a client for the endpoint at rawURL.
func NewClient(rawURL string) *Client {
	return &Client{url: rawURL, client: &http.Client{Timeout: 30 * time.Second}}
}

// Name implements Endpoint.
func (c *Client) Name() string { return c.url }

// Query implements Endpoint by POSTing the query as a form and decoding
// the SPARQL JSON results. HTTP 503 maps back to ErrTimeout and 429 to
// ErrRejected so callers can react uniformly to local and remote
// endpoints.
func (c *Client) Query(ctx context.Context, query string) (*sparql.Results, error) {
	form := url.Values{"query": {query}}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.url, strings.NewReader(form.Encode()))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	req.Header.Set("Accept", "application/sparql-results+json")
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		switch resp.StatusCode {
		case http.StatusServiceUnavailable:
			return nil, fmt.Errorf("%s: %w", strings.TrimSpace(string(msg)), ErrTimeout)
		case http.StatusTooManyRequests:
			return nil, fmt.Errorf("%s: %w", strings.TrimSpace(string(msg)), ErrRejected)
		default:
			return nil, fmt.Errorf("endpoint %s: HTTP %d: %s", c.url, resp.StatusCode, strings.TrimSpace(string(msg)))
		}
	}
	var jr jsonResults
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		return nil, fmt.Errorf("endpoint %s: bad JSON: %w", c.url, err)
	}
	res := &sparql.Results{Vars: jr.Head.Vars}
	for _, b := range jr.Results.Bindings {
		row := make(sparql.Binding, len(b))
		for v, jt := range b {
			t, err := fromJSONTerm(jt)
			if err != nil {
				return nil, err
			}
			row[v] = t
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
