package bootstrap

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"sapphire/internal/datagen"
	"sapphire/internal/endpoint"
	"sapphire/internal/rdf"
)

func TestWarehouseInitialization(t *testing.T) {
	d := datagen.Generate(datagen.SmallConfig())
	ep := endpoint.NewLocal("warehouse", d.Store, endpoint.Limits{})
	c, err := InitializeWarehouse(context.Background(), ep, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if c.Stats.LiteralCount == 0 || c.Stats.PredicateCount == 0 {
		t.Fatalf("warehouse cache empty: %+v", c.Stats)
	}
	// The warehouse path must cache the same famous literals as the
	// federated path.
	for _, want := range []string{"Jack Kerouac", "Viking Press", "Sydney"} {
		if _, ok := c.LiteralTerm(want); !ok {
			t.Errorf("warehouse cache missing %q", want)
		}
	}
	// No class-hierarchy walking: far fewer queries than the federated
	// path.
	fedCache, err := Initialize(context.Background(),
		endpoint.NewLocal("fed", d.Store, endpoint.Limits{}), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if c.Stats.QueriesIssued >= fedCache.Stats.QueriesIssued {
		t.Errorf("warehouse issued %d queries, federated %d — warehouse should be cheaper",
			c.Stats.QueriesIssued, fedCache.Stats.QueriesIssued)
	}
}

func TestWarehouseMatchesFederatedLiterals(t *testing.T) {
	d := datagen.Generate(datagen.SmallConfig())
	wh, err := InitializeWarehouse(context.Background(),
		endpoint.NewLocal("wh", d.Store, endpoint.Limits{}), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	fed, err := Initialize(context.Background(),
		endpoint.NewLocal("fed", d.Store, endpoint.Limits{}), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The warehouse sees at least everything the hierarchy walk saw
	// (Q9 has no type restriction, so it is a superset).
	for _, lex := range fed.Literals() {
		if _, ok := wh.LiteralTerm(lex); !ok {
			t.Errorf("warehouse missing federated literal %q", lex)
		}
	}
}

func TestWarehouseBudget(t *testing.T) {
	d := datagen.Generate(datagen.SmallConfig())
	cfg := DefaultConfig()
	cfg.QueryBudget = 3
	c, err := InitializeWarehouse(context.Background(),
		endpoint.NewLocal("wh", d.Store, endpoint.Limits{}), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Stats.QueriesIssued > 3 {
		t.Errorf("issued %d queries over budget", c.Stats.QueriesIssued)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	d := datagen.Generate(datagen.SmallConfig())
	ep := endpoint.NewLocal("synthetic-dbpedia", d.Store, endpoint.Limits{})
	orig, err := Initialize(context.Background(), ep, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Endpoint != orig.Endpoint {
		t.Errorf("endpoint = %q", loaded.Endpoint)
	}
	if len(loaded.Predicates) != len(orig.Predicates) {
		t.Fatalf("predicates = %d, want %d", len(loaded.Predicates), len(orig.Predicates))
	}
	if loaded.Stats.LiteralCount != orig.Stats.LiteralCount {
		t.Errorf("literal count = %d, want %d", loaded.Stats.LiteralCount, orig.Stats.LiteralCount)
	}
	// Lookup behaviour must be identical.
	for _, term := range []string{"Kerouac", "alma", "Austral"} {
		a := orig.Tree.Search(term, 10)
		b := loaded.Tree.Search(term, 10)
		if len(a) != len(b) {
			t.Errorf("tree search %q: %d vs %d results", term, len(a), len(b))
		}
	}
	lt, ok := loaded.LiteralTerm("Jack Kerouac")
	if !ok || lt.Lang != "en" {
		t.Errorf("loaded literal term = %+v, %v", lt, ok)
	}
	if !loaded.IsPredicateDisplay("alma mater") {
		t.Error("loaded cache lost predicate displays")
	}
	// Residual partition preserved.
	if loaded.Bins.Len() != orig.Bins.Len() {
		t.Errorf("bins = %d, want %d", loaded.Bins.Len(), orig.Bins.Len())
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Load(strings.NewReader(`{"version": 99}`)); err == nil {
		t.Error("future version accepted")
	}
}

func TestNewWarehouseFromNTriples(t *testing.T) {
	doc := `# bulk-load smoke document
<http://x/alice> <http://x/knows> <http://x/bob> .
<http://x/alice> <http://x/name> "Alice"@en .
<http://x/alice> <http://x/knows> <http://x/bob> .
<http://x/bob> <http://x/name> "Bob"@en .
`
	ep, err := NewWarehouseFromNTriples("dump", strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if got := ep.Store().Len(); got != 3 {
		t.Fatalf("Len = %d, want 3 (duplicate line deduplicated)", got)
	}
	res, err := ep.Query(context.Background(),
		`SELECT ?o WHERE { <http://x/alice> <http://x/knows> ?o . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(res.Rows))
	}
	if _, err := NewWarehouseFromNTriples("bad", strings.NewReader("<oops\n")); err == nil {
		t.Fatal("malformed document accepted")
	}
}

func TestNewWarehouse(t *testing.T) {
	d := datagen.Generate(datagen.SmallConfig())
	var triples []rdf.Triple
	d.Store.Match(rdf.Term{}, rdf.Term{}, rdf.Term{}, func(tr rdf.Triple) bool {
		triples = append(triples, tr)
		return true
	})
	ep, err := NewWarehouse("wh", triples)
	if err != nil {
		t.Fatal(err)
	}
	if ep.Store().Len() != d.Store.Len() {
		t.Fatalf("warehouse Len = %d, want %d", ep.Store().Len(), d.Store.Len())
	}
	if _, err := InitializeWarehouse(context.Background(), ep, DefaultConfig()); err != nil {
		t.Fatal(err)
	}
}
