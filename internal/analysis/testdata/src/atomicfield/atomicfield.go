// Package atomicfield is the golden fixture for the atomicfield
// analyzer: fields mixing sync/atomic and plain access.
package atomicfield

import "sync/atomic"

type counters struct {
	epoch uint64 // accessed atomically → must be atomic everywhere
	plain uint64 // never accessed atomically → free to use plainly
}

func (c *counters) bump() {
	atomic.AddUint64(&c.epoch, 1)
}

func (c *counters) loadOK() uint64 {
	return atomic.LoadUint64(&c.epoch)
}

func (c *counters) casOK() bool {
	return atomic.CompareAndSwapUint64(&c.epoch, 0, 1)
}

func (c *counters) readRace() uint64 {
	return c.epoch // want `field epoch is accessed via sync/atomic`
}

func (c *counters) writeRace() {
	c.epoch = 0 // want `field epoch is accessed via sync/atomic`
}

func (c *counters) aliasRace() *uint64 {
	return &c.epoch // want `field epoch is accessed via sync/atomic`
}

func (c *counters) plainIsFine() uint64 {
	c.plain++
	return c.plain
}

// Typed atomics need no analysis: the type system already forbids
// plain access.
type published struct {
	spine atomic.Pointer[[]int]
}

func (p *published) swap(v *[]int) { p.spine.Store(v) }
func (p *published) get() *[]int   { return p.spine.Load() }
