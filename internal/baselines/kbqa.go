package baselines

import (
	"context"
	"strings"

	"sapphire/internal/qald"
	"sapphire/internal/rdf"
	"sapphire/internal/store"
)

// KBQA answers factoid questions only, using templates learned from a
// large Q&A corpus. Its template base covers the frequent factoid
// relations people actually ask about; anything outside it is not
// processed. When a template fires, the mapping is precise, which is why
// the paper reports KBQA at precision 1.0 with low recall.
type KBQA struct {
	Store *store.Store
}

// kbqaTemplates is the learned template → predicate map. Narrow on
// purpose: QA corpora teach the head of the distribution.
var kbqaTemplates = map[string]string{
	"wife":       "spouse",
	"capital":    "capital",
	"currency":   "currency",
	"time zone":  "timeZone",
	"creator":    "creator",
	"designer":   "designer",
	"population": "populationTotal",
	"author":     "author",
}

// NewKBQA returns the baseline.
func NewKBQA(st *store.Store) *KBQA { return &KBQA{Store: st} }

// Name implements qald.System.
func (k *KBQA) Name() string { return "KBQA" }

// Answer implements qald.System: factoid questions whose relation has a
// learned template, answered by a single forward or backward lookup.
func (k *KBQA) Answer(_ context.Context, q qald.Question) (qald.AnswerSet, bool) {
	if !q.Factoid || q.EntityLiteral == "" {
		return nil, false
	}
	local, ok := kbqaTemplates[strings.ToLower(q.Relation)]
	if !ok {
		return nil, false
	}
	pred := rdf.NewIRI(rdf.NSDBO + local)
	entities := entitiesNamed(k.Store, q.EntityLiteral)
	if len(entities) == 0 {
		return nil, false
	}
	answers := make(qald.AnswerSet)
	for _, e := range entities {
		k.Store.Match(e, pred, rdf.Term{}, func(tr rdf.Triple) bool {
			answers[tr.O.Value] = true
			return true
		})
	}
	if len(answers) == 0 {
		// Backward direction for "author of X"-style templates.
		for _, e := range entities {
			k.Store.Match(rdf.Term{}, pred, e, func(tr rdf.Triple) bool {
				answers[tr.S.Value] = true
				return true
			})
		}
	}
	if len(answers) == 0 {
		return nil, false
	}
	return answers, true
}
