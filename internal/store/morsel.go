package store

// DefaultMorselSize is the batch size ScanMorselsPinned defaults to when
// size < 1: large enough that per-morsel dispatch overhead (one channel
// handoff, one slice allocation) amortizes over the join work a morsel
// seeds, small enough that a typical driving scan still splits into many
// more morsels than workers, which is what keeps the workers load-
// balanced when fan-out is skewed.
const DefaultMorselSize = 1024

// ScanMorselsPinned streams the matches of an ID pattern in exactly
// MatchIDs emission order, batched into morsels of up to size triples.
// It is the enumeration half of morsel-driven intra-query parallelism:
// the evaluator's coordinator calls it once per driving scan and hands
// each morsel to a join worker, and because the concatenation of the
// morsels is the serial scan order, per-morsel results reassembled in
// morsel order are byte-identical to a serial evaluation.
//
// Each callback receives a freshly allocated batch the callee may retain
// (morsels outlive the callback: they sit in worker queues). Returning
// false stops enumeration. Must be called under PinRead — it takes no
// locks of its own, exactly like MatchIDsPinned, so it is safe to run
// while worker goroutines scan through the same pin.
func (s *Store) ScanMorselsPinned(sub, pred, obj ID, size int, fn func(batch [][3]ID) bool) {
	if size < 1 {
		size = DefaultMorselSize
	}
	batch := make([][3]ID, 0, size)
	stopped := false
	s.matchIDsLocked(sub, pred, obj, func(a, b, c ID) bool {
		batch = append(batch, [3]ID{a, b, c})
		if len(batch) == size {
			if !fn(batch) {
				stopped = true
				return false
			}
			batch = make([][3]ID, 0, size)
		}
		return true
	})
	if !stopped && len(batch) > 0 {
		fn(batch)
	}
}
