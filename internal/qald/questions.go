package qald

// The question suite. Questions E1–E10, M1–M8, D1–D9 mirror the paper's
// Appendix B user-study set; X1–X23 extend the suite to the QALD-5 size
// of 50 questions. Gold queries are written against the synthetic
// dataset of internal/datagen; every gold query projects exactly one
// variable, which defines the answer set.
//
// Plans express each question the way a user would in Sapphire's
// triple-pattern UI, using only terms from the question text — including
// terms that do not match the dataset vocabulary ("wife", "born",
// "starts in"), which is precisely what the QSM has to repair.

// Questions returns the full 50-question suite.
func Questions() []Question {
	return append(append(append([]Question{}, easyQuestions()...),
		mediumQuestions()...), difficultQuestions()...)
}

// ByDifficulty filters the suite.
func ByDifficulty(qs []Question, d Difficulty) []Question {
	var out []Question
	for _, q := range qs {
		if q.Difficulty == d {
			out = append(out, q)
		}
	}
	return out
}

// UserStudyQuestions returns the 27-question subset used in the paper's
// user study (Appendix B).
func UserStudyQuestions() []Question {
	var out []Question
	for _, q := range Questions() {
		if q.ID[0] != 'X' {
			out = append(out, q)
		}
	}
	return out
}

func easyQuestions() []Question {
	return []Question{
		{
			ID: "E1", Text: "Country in which the Ganges starts", Difficulty: Easy,
			Gold: `SELECT ?c WHERE { ?r dbo:name "Ganges"@en . ?r dbo:sourceCountry ?c . }`,
			Plan: Plan{Triples: []PlanTriple{
				{V("r"), P("name"), L("Ganges")},
				{V("r"), P("starts in"), V("c")},
			}, Project: "c"},
			Factoid: true, Relation: "starts in", EntityLiteral: "Ganges",
		},
		{
			ID: "E2", Text: "John F. Kennedy's vice president", Difficulty: Easy,
			Gold: `SELECT ?vp WHERE { ?p dbo:name "John F. Kennedy"@en . ?p dbo:vicePresident ?vp . }`,
			Plan: Plan{Triples: []PlanTriple{
				{V("p"), P("name"), L("John F. Kennedy")},
				{V("p"), P("vice president"), V("vp")},
			}, Project: "vp"},
			Factoid: true, Relation: "vice president", EntityLiteral: "John F. Kennedy",
		},
		{
			ID: "E3", Text: "Time zone of Salt Lake City", Difficulty: Easy,
			Gold: `SELECT ?tz WHERE { ?c dbo:name "Salt Lake City"@en . ?c dbo:timeZone ?tz . }`,
			Plan: Plan{Triples: []PlanTriple{
				{V("c"), P("name"), L("Salt Lake City")},
				{V("c"), P("time zone"), V("tz")},
			}, Project: "tz"},
			Factoid: true, Relation: "time zone", EntityLiteral: "Salt Lake City",
		},
		{
			ID: "E4", Text: "Tom Hanks's wife", Difficulty: Easy,
			Gold: `SELECT ?w WHERE { ?p dbo:name "Tom Hanks"@en . ?p dbo:spouse ?w . }`,
			Plan: Plan{Triples: []PlanTriple{
				{V("p"), P("name"), L("Tom Hanks")},
				{V("p"), P("wife"), V("w")},
			}, Project: "w"},
			Factoid: true, Relation: "wife", EntityLiteral: "Tom Hanks",
		},
		{
			ID: "E5", Text: "Children of Margaret Thatcher", Difficulty: Easy,
			Gold: `SELECT ?c WHERE { ?p dbo:name "Margaret Thatcher"@en . ?p dbo:child ?c . }`,
			Plan: Plan{Triples: []PlanTriple{
				{V("p"), P("name"), L("Margaret Thatcher")},
				{V("p"), P("children"), V("c")},
			}, Project: "c"},
			Factoid: true, Relation: "children", EntityLiteral: "Margaret Thatcher",
		},
		{
			ID: "E6", Text: "Currency of the Czech Republic", Difficulty: Easy,
			Gold: `SELECT ?cur WHERE { ?c dbo:name "Czech Republic"@en . ?c dbo:currency ?cur . }`,
			Plan: Plan{Triples: []PlanTriple{
				{V("c"), P("name"), L("Czech Republic")},
				{V("c"), P("currency"), V("cur")},
			}, Project: "cur"},
			Factoid: true, Relation: "currency", EntityLiteral: "Czech Republic",
		},
		{
			ID: "E7", Text: "Designer of the Brooklyn Bridge", Difficulty: Easy,
			Gold: `SELECT ?d WHERE { ?b dbo:name "Brooklyn Bridge"@en . ?b dbo:designer ?d . }`,
			Plan: Plan{Triples: []PlanTriple{
				{V("b"), P("name"), L("Brooklyn Bridge")},
				{V("b"), P("designer"), V("d")},
			}, Project: "d"},
			Factoid: true, Relation: "designer", EntityLiteral: "Brooklyn Bridge",
		},
		{
			ID: "E8", Text: "Wife of U.S. president Abraham Lincoln", Difficulty: Easy,
			Gold: `SELECT ?w WHERE { ?p dbo:name "Abraham Lincoln"@en . ?p dbo:spouse ?w . }`,
			Plan: Plan{Triples: []PlanTriple{
				{V("p"), P("name"), L("Abraham Lincoln")},
				{V("p"), P("wife"), V("w")},
			}, Project: "w"},
			Factoid: true, Relation: "wife", EntityLiteral: "Abraham Lincoln",
		},
		{
			ID: "E9", Text: "Creator of Wikipedia", Difficulty: Easy,
			Gold: `SELECT ?c WHERE { ?w dbo:name "Wikipedia"@en . ?w dbo:creator ?c . }`,
			Plan: Plan{Triples: []PlanTriple{
				{V("w"), P("name"), L("Wikipedia")},
				{V("w"), P("creator"), V("c")},
			}, Project: "c"},
			Factoid: true, Relation: "creator", EntityLiteral: "Wikipedia",
		},
		{
			ID: "E10", Text: "Depth of Lake Placid", Difficulty: Easy,
			Gold: `SELECT ?d WHERE { ?l dbo:name "Lake Placid"@en . ?l dbo:maximumDepth ?d . }`,
			Plan: Plan{Triples: []PlanTriple{
				{V("l"), P("name"), L("Lake Placid")},
				{V("l"), P("depth"), V("d")},
			}, Project: "d"},
			Factoid: true, Relation: "depth", EntityLiteral: "Lake Placid",
		},
		{
			ID: "X1", Text: "Capital of Australia", Difficulty: Easy,
			Gold: `SELECT ?c WHERE { ?a dbo:name "Australia"@en . ?a dbo:capital ?c . }`,
			Plan: Plan{Triples: []PlanTriple{
				{V("a"), P("name"), L("Australia")},
				{V("a"), P("capital"), V("c")},
			}, Project: "c"},
			Factoid: true, Relation: "capital", EntityLiteral: "Australia",
		},
		{
			ID: "X2", Text: "Population of Sydney", Difficulty: Easy,
			Gold: `SELECT ?p WHERE { ?c dbo:name "Sydney"@en . ?c dbo:populationTotal ?p . }`,
			Plan: Plan{Triples: []PlanTriple{
				{V("c"), P("name"), L("Sydney")},
				{V("c"), P("population"), V("p")},
			}, Project: "p"},
			Factoid: true, Relation: "population", EntityLiteral: "Sydney",
		},
		{
			ID: "X3", Text: "Country of Salt Lake City", Difficulty: Easy,
			Gold: `SELECT ?co WHERE { ?c dbo:name "Salt Lake City"@en . ?c dbo:country ?co . }`,
			Plan: Plan{Triples: []PlanTriple{
				{V("c"), P("name"), L("Salt Lake City")},
				{V("c"), P("country"), V("co")},
			}, Project: "co"},
			Factoid: true, Relation: "country", EntityLiteral: "Salt Lake City",
		},
		{
			ID: "X4", Text: "Nickname of Frank Ricard", Difficulty: Easy,
			Gold: `SELECT ?n WHERE { ?p dbo:name "Frank Ricard"@en . ?p dbo:nickname ?n . }`,
			Plan: Plan{Triples: []PlanTriple{
				{V("p"), P("name"), L("Frank Ricard")},
				{V("p"), P("nickname"), V("n")},
			}, Project: "n"},
			Factoid: true, Relation: "nickname", EntityLiteral: "Frank Ricard",
		},
		{
			ID: "X5", Text: "Birth year of Abraham Lincoln", Difficulty: Easy,
			Gold: `SELECT ?y WHERE { ?p dbo:name "Abraham Lincoln"@en . ?p dbo:birthYear ?y . }`,
			Plan: Plan{Triples: []PlanTriple{
				{V("p"), P("name"), L("Abraham Lincoln")},
				{V("p"), P("birth year"), V("y")},
			}, Project: "y"},
			Factoid: true, Relation: "birth year", EntityLiteral: "Abraham Lincoln",
		},
		{
			ID: "X6", Text: "Parents of Queen Sofia", Difficulty: Easy,
			Gold: `SELECT ?pa WHERE { ?p dbo:name "Queen Sofia"@en . ?p dbo:parent ?pa . }`,
			Plan: Plan{Triples: []PlanTriple{
				{V("p"), P("name"), L("Queen Sofia")},
				{V("p"), P("parents"), V("pa")},
			}, Project: "pa"},
			Factoid: true, Relation: "parents", EntityLiteral: "Queen Sofia",
		},
		{
			ID: "X9", Text: "Publisher of On the Road", Difficulty: Easy,
			Gold: `SELECT ?p WHERE { ?b dbo:name "On the Road"@en . ?b dbo:publisher ?p . }`,
			Plan: Plan{Triples: []PlanTriple{
				{V("b"), P("name"), L("On the Road")},
				{V("b"), P("published by"), V("p")},
			}, Project: "p"},
			Factoid: true, Relation: "published by", EntityLiteral: "On the Road",
		},
		{
			ID: "X10", Text: "Author of Doctor Sax", Difficulty: Easy,
			Gold: `SELECT ?a WHERE { ?b dbo:name "Doctor Sax"@en . ?b dbo:author ?a . }`,
			Plan: Plan{Triples: []PlanTriple{
				{V("b"), P("name"), L("Doctor Sax")},
				{V("b"), P("author"), V("a")},
			}, Project: "a"},
			Factoid: true, Relation: "author", EntityLiteral: "Doctor Sax",
		},
		{
			ID: "X22", Text: "Wife of Juan Carlos I", Difficulty: Easy,
			Gold: `SELECT ?w WHERE { ?p dbo:name "Juan Carlos I"@en . ?p dbo:spouse ?w . }`,
			Plan: Plan{Triples: []PlanTriple{
				{V("p"), P("name"), L("Juan Carlos I")},
				{V("p"), P("wife"), V("w")},
			}, Project: "w"},
			Factoid: true, Relation: "wife", EntityLiteral: "Juan Carlos I",
		},
	}
}

func mediumQuestions() []Question {
	return []Question{
		{
			ID: "M1", Text: "Instruments played by Cat Stevens", Difficulty: Medium,
			Gold: `SELECT ?i WHERE { ?p dbo:name "Cat Stevens"@en . ?p dbo:instrument ?i . }`,
			Plan: Plan{Triples: []PlanTriple{
				{V("p"), P("name"), L("Cat Stevens")},
				{V("p"), P("instruments"), V("i")},
			}, Project: "i"},
			Factoid: true, Relation: "instruments", EntityLiteral: "Cat Stevens",
		},
		{
			ID: "M2", Text: "Parents of the wife of Juan Carlos I", Difficulty: Medium,
			Gold: `SELECT ?pa WHERE { ?j dbo:name "Juan Carlos I"@en . ?j dbo:spouse ?w . ?w dbo:parent ?pa . }`,
			Plan: Plan{Triples: []PlanTriple{
				{V("j"), P("name"), L("Juan Carlos I")},
				{V("j"), P("wife"), V("w")},
				{V("w"), P("parents"), V("pa")},
			}, Project: "pa"},
			Relation: "wife", EntityLiteral: "Juan Carlos I",
		},
		{
			ID: "M3", Text: "U.S. state in which Fort Knox is located", Difficulty: Medium,
			Gold: `SELECT ?s WHERE { ?f dbo:name "Fort Knox"@en . ?f dbo:state ?s . }`,
			Plan: Plan{Triples: []PlanTriple{
				{V("f"), P("name"), L("Fort Knox")},
				{V("f"), P("state"), V("s")},
			}, Project: "s"},
			Factoid: true, Relation: "state", EntityLiteral: "Fort Knox",
		},
		{
			ID: "M4", Text: "Person who is called Frank The Tank", Difficulty: Medium,
			Gold: `SELECT ?p WHERE { ?p dbo:nickname "Frank The Tank"@en . }`,
			Plan: Plan{Triples: []PlanTriple{
				{V("p"), P("called"), L("Frank The Tank")},
			}, Project: "p"},
			Factoid: true, Relation: "called", EntityLiteral: "Frank The Tank",
		},
		{
			ID: "M5", Text: "Birthdays of all actors of the television show Charmed", Difficulty: Medium,
			Gold: `SELECT ?b WHERE { ?show dbo:name "Charmed"@en . ?show dbo:starring ?a . ?a dbo:birthDate ?b . }`,
			Plan: Plan{Triples: []PlanTriple{
				{V("show"), P("name"), L("Charmed")},
				{V("show"), P("actors"), V("a")},
				{V("a"), P("birthdays"), V("b")},
			}, Project: "b"},
			Relation: "actors", EntityLiteral: "Charmed",
		},
		{
			ID: "M6", Text: "Country in which the Limerick Lake is located", Difficulty: Medium,
			Gold: `SELECT ?c WHERE { ?l dbo:name "Limerick Lake"@en . ?l dbo:country ?c . }`,
			Plan: Plan{Triples: []PlanTriple{
				{V("l"), P("name"), L("Limerick Lake")},
				{V("l"), P("country"), V("c")},
			}, Project: "c"},
			Factoid: true, Relation: "country", EntityLiteral: "Limerick Lake",
		},
		{
			ID: "M7", Text: "Person to which Robert F. Kennedy's daughter is married", Difficulty: Medium,
			Gold: `SELECT ?m WHERE { ?r dbo:name "Robert F. Kennedy"@en . ?r dbo:child ?d . ?d dbo:spouse ?m . }`,
			Plan: Plan{Triples: []PlanTriple{
				{V("r"), P("name"), L("Robert F. Kennedy")},
				{V("r"), P("daughter"), V("d")},
				{V("d"), P("married"), V("m")},
			}, Project: "m"},
			Relation: "daughter", EntityLiteral: "Robert F. Kennedy",
		},
		{
			ID: "M8", Text: "Number of people living in the capital of Australia", Difficulty: Medium,
			Gold: `SELECT ?pop WHERE { ?a dbo:name "Australia"@en . ?a dbo:capital ?c . ?c dbo:populationTotal ?pop . }`,
			Plan: Plan{Triples: []PlanTriple{
				{V("a"), P("name"), L("Australia")},
				{V("a"), P("capital"), V("c")},
				{V("c"), P("number of people"), V("pop")},
			}, Project: "pop"},
			Relation: "capital", EntityLiteral: "Australia",
		},
		{
			ID: "X7", Text: "Books by Jack Kerouac", Difficulty: Medium,
			Gold: `SELECT ?b WHERE { ?b dbo:author ?a . ?a dbo:name "Jack Kerouac"@en . }`,
			Plan: Plan{Triples: []PlanTriple{
				{V("b"), P("written by"), V("a")},
				{V("a"), P("name"), L("Jack Kerouac")},
			}, Project: "b"},
			Factoid: true, Relation: "written by", EntityLiteral: "Jack Kerouac",
		},
		{
			ID: "X8", Text: "Films directed by Steven Spielberg", Difficulty: Medium,
			Gold: `SELECT ?f WHERE { ?f dbo:director ?d . ?d dbo:name "Steven Spielberg"@en . }`,
			Plan: Plan{Triples: []PlanTriple{
				{V("f"), P("directed by"), V("d")},
				{V("d"), P("name"), L("Steven Spielberg")},
			}, Project: "f"},
			Factoid: true, Relation: "directed by", EntityLiteral: "Steven Spielberg",
		},
		{
			ID: "X11", Text: "Films starring Clint Eastwood", Difficulty: Medium,
			Gold: `SELECT ?f WHERE { ?f dbo:starring ?a . ?a dbo:name "Clint Eastwood"@en . }`,
			Plan: Plan{Triples: []PlanTriple{
				{V("f"), P("starring"), V("a")},
				{V("a"), P("name"), L("Clint Eastwood")},
			}, Project: "f"},
			Factoid: true, Relation: "starring", EntityLiteral: "Clint Eastwood",
		},
		{
			ID: "X12", Text: "Cities in Canada", Difficulty: Medium,
			Gold: `SELECT ?c WHERE { ?c a dbo:City . ?c dbo:country ?ca . ?ca dbo:name "Canada"@en . }`,
			Plan: Plan{Triples: []PlanTriple{
				{V("c"), P("type"), V("t")},
				{V("t"), P("label"), L("City")},
				{V("c"), P("country"), V("ca")},
				{V("ca"), P("name"), L("Canada")},
			}, Project: "c"},
			Relation: "country", EntityLiteral: "Canada",
		},
		{
			ID: "X13", Text: "Universities affiliated with the Ivy League", Difficulty: Medium,
			Gold: `SELECT ?u WHERE { ?u dbo:affiliation ?i . ?i dbo:name "Ivy League"@en . }`,
			Plan: Plan{Triples: []PlanTriple{
				{V("u"), P("member of"), V("i")},
				{V("i"), P("name"), L("Ivy League")},
			}, Project: "u"},
			Factoid: true, Relation: "member of", EntityLiteral: "Ivy League",
		},
		{
			ID: "X14", Text: "Scientists who studied at Princeton University", Difficulty: Medium,
			Gold: `SELECT ?s WHERE { ?s dbo:almaMater ?u . ?u dbo:name "Princeton University"@en . }`,
			Plan: Plan{Triples: []PlanTriple{
				{V("s"), P("studied at"), V("u")},
				{V("u"), P("name"), L("Princeton University")},
			}, Project: "s"},
			Factoid: true, Relation: "studied at", EntityLiteral: "Princeton University",
		},
		{
			ID: "X15", Text: "Books with more than 700 pages", Difficulty: Medium,
			Gold: `SELECT ?b WHERE { ?b dbo:numberOfPages ?n . FILTER (?n > 700) }`,
			Plan: Plan{Triples: []PlanTriple{
				{V("b"), P("pages"), V("n")},
			}, Filter: "?n > 700", Project: "b"},
			Relation: "pages",
		},
		{
			ID: "X19", Text: "Chess players born in Moscow", Difficulty: Medium,
			Gold: `SELECT ?p WHERE { ?p a dbo:ChessPlayer . ?p dbo:birthPlace ?m . ?m dbo:name "Moscow"@en . }`,
			Plan: Plan{Triples: []PlanTriple{
				{V("p"), P("type"), V("t")},
				{V("t"), P("label"), L("Chess Player")},
				{V("p"), P("born in"), V("m")},
				{V("m"), P("name"), L("Moscow")},
			}, Project: "p"},
			Relation: "born in", EntityLiteral: "Moscow",
		},
		{
			ID: "X20", Text: "Companies that work in the Aerospace industry", Difficulty: Medium,
			Gold: `SELECT ?c WHERE { ?c dbo:industry ?i . ?i dbo:name "Aerospace"@en . }`,
			Plan: Plan{Triples: []PlanTriple{
				{V("c"), P("works in"), V("i")},
				{V("i"), P("name"), L("Aerospace")},
			}, Project: "c"},
			Factoid: true, Relation: "works in", EntityLiteral: "Aerospace",
		},
		{
			ID: "X21", Text: "Lakes in the United States", Difficulty: Medium,
			Gold: `SELECT ?l WHERE { ?l a dbo:Lake . ?l dbo:country ?c . ?c dbo:name "United States"@en . }`,
			Plan: Plan{Triples: []PlanTriple{
				{V("l"), P("type"), V("t")},
				{V("t"), P("label"), L("Lake")},
				{V("l"), P("country"), V("c")},
				{V("c"), P("name"), L("United States")},
			}, Project: "l"},
			Relation: "country", EntityLiteral: "United States",
		},
	}
}

func difficultQuestions() []Question {
	return []Question{
		{
			ID: "D1", Text: "Chess players who died in the same place they were born in", Difficulty: Difficult,
			Gold: `SELECT ?p WHERE { ?p a dbo:ChessPlayer . ?p dbo:birthPlace ?x . ?p dbo:deathPlace ?x . }`,
			Plan: Plan{Triples: []PlanTriple{
				{V("p"), P("type"), V("t")},
				{V("t"), P("label"), L("Chess Player")},
				{V("p"), P("born in"), V("x")},
				{V("p"), P("died in"), V("x")},
			}, Project: "p"},
			Relation: "born in",
		},
		{
			ID: "D2", Text: "Books by William Goldman with more than 300 pages", Difficulty: Difficult,
			Gold: `SELECT ?b WHERE { ?b dbo:author ?a . ?a dbo:name "William Goldman"@en . ?b dbo:numberOfPages ?n . FILTER (?n > 300) }`,
			Plan: Plan{Triples: []PlanTriple{
				{V("b"), P("written by"), V("a")},
				{V("a"), P("name"), L("William Goldman")},
				{V("b"), P("pages"), V("n")},
			}, Filter: "?n > 300", Project: "b"},
			Relation: "written by", EntityLiteral: "William Goldman",
		},
		{
			ID: "D3", Text: "Books by Jack Kerouac which were published by Viking Press", Difficulty: Difficult,
			Gold: `SELECT ?b WHERE { ?b dbo:author ?a . ?a dbo:name "Jack Kerouac"@en . ?b dbo:publisher ?p . ?p dbo:name "Viking Press"@en . }`,
			Plan: Plan{Triples: []PlanTriple{
				{V("b"), P("written by"), V("a")},
				{V("a"), P("name"), L("Jack Kerouac")},
				{V("b"), P("published by"), V("p")},
				{V("p"), P("name"), L("Viking Press")},
			}, Project: "b"},
			Relation: "written by", EntityLiteral: "Jack Kerouac",
		},
		{
			ID: "D4", Text: "Films directed by Steven Spielberg with a budget of at least $80 million", Difficulty: Difficult,
			Gold: `SELECT ?f WHERE { ?f dbo:director ?d . ?d dbo:name "Steven Spielberg"@en . ?f dbo:budget ?b . FILTER (?b >= 80000000) }`,
			Plan: Plan{Triples: []PlanTriple{
				{V("f"), P("directed by"), V("d")},
				{V("d"), P("name"), L("Steven Spielberg")},
				{V("f"), P("budget"), V("b")},
			}, Filter: "?b >= 80000000", Project: "f"},
			Relation: "directed by", EntityLiteral: "Steven Spielberg",
		},
		{
			ID: "D5", Text: "Most populous city in Australia", Difficulty: Difficult,
			Gold: `SELECT ?c WHERE { ?c a dbo:City . ?c dbo:country ?a . ?a dbo:name "Australia"@en . ?c dbo:populationTotal ?p . } ORDER BY DESC(?p) LIMIT 1`,
			Plan: Plan{Triples: []PlanTriple{
				{V("c"), P("type"), V("t")},
				{V("t"), P("label"), L("City")},
				{V("c"), P("country"), V("a")},
				{V("a"), P("name"), L("Australia")},
				{V("c"), P("number of people"), V("p")},
			}, OrderDesc: "p", Limit: 1, Project: "c"},
			Relation: "number of people", EntityLiteral: "Australia",
		},
		{
			ID: "D6", Text: "Films starring Clint Eastwood directed by himself", Difficulty: Difficult,
			Gold: `SELECT ?f WHERE { ?f dbo:director ?d . ?d dbo:name "Clint Eastwood"@en . ?f dbo:starring ?d . }`,
			Plan: Plan{Triples: []PlanTriple{
				{V("f"), P("directed by"), V("d")},
				{V("d"), P("name"), L("Clint Eastwood")},
				{V("f"), P("starring"), V("d")},
			}, Project: "f"},
			Relation: "starring", EntityLiteral: "Clint Eastwood",
		},
		{
			ID: "D7", Text: "Presidents born in 1945", Difficulty: Difficult,
			Gold: `SELECT ?p WHERE { ?p a dbo:President . ?p dbo:birthYear ?y . FILTER (?y = 1945) }`,
			Plan: Plan{Triples: []PlanTriple{
				{V("p"), P("type"), V("t")},
				{V("t"), P("label"), L("President")},
				{V("p"), P("born"), V("y")},
			}, Filter: "?y = 1945", Project: "p"},
			Relation: "born",
		},
		{
			ID: "D8", Text: "Find each company that works in both the aerospace and medicine industries", Difficulty: Difficult,
			Gold: `SELECT ?c WHERE { ?c dbo:industry ?i1 . ?i1 dbo:name "Aerospace"@en . ?c dbo:industry ?i2 . ?i2 dbo:name "Medicine"@en . }`,
			Plan: Plan{Triples: []PlanTriple{
				{V("c"), P("works in"), V("i1")},
				{V("i1"), P("name"), L("Aerospace")},
				{V("c"), P("works in"), V("i2")},
				{V("i2"), P("name"), L("Medicine")},
			}, Project: "c"},
			Relation: "works in", EntityLiteral: "Aerospace",
		},
		{
			ID: "D9", Text: "Number of inhabitants of the most populous city in Canada", Difficulty: Difficult,
			Gold: `SELECT ?p WHERE { ?c a dbo:City . ?c dbo:country ?ca . ?ca dbo:name "Canada"@en . ?c dbo:populationTotal ?p . } ORDER BY DESC(?p) LIMIT 1`,
			Plan: Plan{Triples: []PlanTriple{
				{V("c"), P("type"), V("t")},
				{V("t"), P("label"), L("City")},
				{V("c"), P("country"), V("ca")},
				{V("ca"), P("name"), L("Canada")},
				{V("c"), P("inhabitants"), V("p")},
			}, OrderDesc: "p", Limit: 1, Project: "p"},
			Relation: "inhabitants", EntityLiteral: "Canada",
		},
		{
			ID: "X16", Text: "Most populous city in Canada", Difficulty: Difficult,
			Gold: `SELECT ?c WHERE { ?c a dbo:City . ?c dbo:country ?ca . ?ca dbo:name "Canada"@en . ?c dbo:populationTotal ?p . } ORDER BY DESC(?p) LIMIT 1`,
			Plan: Plan{Triples: []PlanTriple{
				{V("c"), P("type"), V("t")},
				{V("t"), P("label"), L("City")},
				{V("c"), P("country"), V("ca")},
				{V("ca"), P("name"), L("Canada")},
				{V("c"), P("population"), V("p")},
			}, OrderDesc: "p", Limit: 1, Project: "c"},
			Relation: "population", EntityLiteral: "Canada",
		},
		{
			ID: "X17", Text: "Number of books by Jack Kerouac", Difficulty: Difficult,
			Gold: `SELECT (COUNT(DISTINCT ?b) AS ?n) WHERE { ?b dbo:author ?a . ?a dbo:name "Jack Kerouac"@en . }`,
			Plan: Plan{Triples: []PlanTriple{
				{V("b"), P("written by"), V("a")},
				{V("a"), P("name"), L("Jack Kerouac")},
			}, Count: true, Project: "b"},
			Relation: "written by", EntityLiteral: "Jack Kerouac",
		},
		{
			ID: "X18", Text: "Number of films directed by Clint Eastwood", Difficulty: Difficult,
			Gold: `SELECT (COUNT(DISTINCT ?f) AS ?n) WHERE { ?f dbo:director ?d . ?d dbo:name "Clint Eastwood"@en . }`,
			Plan: Plan{Triples: []PlanTriple{
				{V("f"), P("directed by"), V("d")},
				{V("d"), P("name"), L("Clint Eastwood")},
			}, Count: true, Project: "f"},
			Relation: "directed by", EntityLiteral: "Clint Eastwood",
		},
		{
			ID: "X23", Text: "Films with a budget of at least 100 million dollars", Difficulty: Difficult,
			Gold: `SELECT ?f WHERE { ?f dbo:budget ?b . FILTER (?b >= 100000000) }`,
			Plan: Plan{Triples: []PlanTriple{
				{V("f"), P("budget"), V("b")},
			}, Filter: "?b >= 100000000", Project: "f"},
			Relation: "budget",
		},
	}
}
