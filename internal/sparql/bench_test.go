package sparql

import (
	"fmt"
	"testing"

	"sapphire/internal/rdf"
	"sapphire/internal/store"
)

func benchGraph(people int) *store.Store {
	s := store.New()
	typ := rdf.NewIRI(rdf.RDFType)
	person := rdf.NewIRI("http://x/Person")
	name := rdf.NewIRI("http://x/name")
	knows := rdf.NewIRI("http://x/knows")
	for i := 0; i < people; i++ {
		subj := rdf.NewIRI(fmt.Sprintf("http://x/p%d", i))
		s.MustAdd(rdf.NewTriple(subj, typ, person))
		s.MustAdd(rdf.NewTriple(subj, name, rdf.NewLangLiteral(fmt.Sprintf("Person %d", i), "en")))
		s.MustAdd(rdf.NewTriple(subj, knows, rdf.NewIRI(fmt.Sprintf("http://x/p%d", (i+1)%people))))
	}
	return s
}

// BenchmarkEvalTwoHopJoin measures the engine on the workload shape the
// benchmark questions use: entity anchor plus a join.
func BenchmarkEvalTwoHopJoin(b *testing.B) {
	s := benchGraph(2000)
	q := MustParse(`SELECT ?n2 WHERE {
		?p <http://x/name> "Person 42"@en .
		?p <http://x/knows> ?q .
		?q <http://x/name> ?n2 .
	}`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Eval(s, q, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvalAggregate measures grouped aggregation (Q1's shape).
func BenchmarkEvalAggregate(b *testing.B) {
	s := benchGraph(2000)
	q := MustParse(`SELECT ?p (COUNT(*) AS ?n) WHERE { ?s ?p ?o . } GROUP BY ?p ORDER BY DESC(?n)`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Eval(s, q, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParse measures query parsing alone.
func BenchmarkParse(b *testing.B) {
	src := `PREFIX dbo: <http://dbpedia.org/ontology/>
SELECT DISTINCT ?b WHERE {
	?b dbo:author ?a . ?a dbo:name "Jack Kerouac"@en .
	?b dbo:numberOfPages ?n . FILTER (?n > 300 && isliteral(?n))
} ORDER BY DESC(?n) LIMIT 10`
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvalOrderByLimit measures the bounded ORDER BY path on 10k
// rows paged to 10: the top-k heap over uint64 rank labels (labels),
// the same heap falling back to memoized term compares when no rank
// table exists (termheap), and the old evaluator's strategy of
// materializing and stable-sorting every row (materialize). The labels
// row is the headline: microseconds against the old ~tens of
// milliseconds.
func BenchmarkEvalOrderByLimit(b *testing.B) {
	s := benchGraph(10_000)
	s.BuildOrderLabels()
	q := MustParse(`SELECT ?s ?n WHERE { ?s <http://x/name> ?n . } ORDER BY ?n LIMIT 10`)
	run := func(b *testing.B, eval func() (*Results, error)) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := eval()
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Rows) != 10 {
				b.Fatalf("rows = %d", len(res.Rows))
			}
		}
	}
	b.Run("labels", func(b *testing.B) {
		run(b, func() (*Results, error) { return Eval(s, q, Options{}) })
	})
	b.Run("termheap", func(b *testing.B) {
		g := &countingGraph{Store: s, noLabels: true}
		run(b, func() (*Results, error) { return Eval(g, q, Options{}) })
	})
	b.Run("materialize", func(b *testing.B) {
		run(b, func() (*Results, error) { return refEval(s, q) })
	})
}

// BenchmarkEvalFilterPushdown measures FILTER under LIMIT: the
// streaming pipeline stops scanning the moment enough rows pass the
// filter; the materializing reference filters the full solution set
// first — the gap is what in-pipeline filters buy.
func BenchmarkEvalFilterPushdown(b *testing.B) {
	s := benchGraph(10_000)
	q := MustParse(`SELECT ?s ?n WHERE { ?s <http://x/name> ?n . FILTER (contains(str(?n), "7")) } LIMIT 10`)
	b.Run("streaming", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := Eval(s, q, Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reference", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := refEval(s, q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEvalJoinOrder measures what stats-driven greedy join
// ordering buys on a query written worst-first (hub pattern, then a
// mid-size scan, then a one-row needle): greedy runs the needle first
// and probes, naive executes the textual order.
func BenchmarkEvalJoinOrder(b *testing.B) {
	s := benchGraph(2000)
	q := MustParse(`SELECT ?s ?o WHERE {
		?s a <http://x/Person> .
		?s <http://x/knows> ?o .
		?s <http://x/name> "Person 42"@en .
	}`)
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"greedy", Options{}},
		{"naive", Options{noReorder: true}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := Eval(s, q, tc.opts)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Rows) != 1 {
					b.Fatalf("rows = %d", len(res.Rows))
				}
			}
		})
	}
}

// BenchmarkEvalParallel measures morsel-parallel evaluation on
// wildcard-heavy work: a full two-hop join over every person (the scan
// fans out to 10k driving rows, each probing two deeper levels), an
// ORDER BY LIMIT over the full name sweep (per-worker top-k pruning),
// and a grouped aggregate. Run with -cpu=1,8: at -cpu=1 the workers>1
// rows measure pure coordination overhead (they cannot be faster than
// serial on one core); the speedup claim lives in the -cpu=8 rows.
func BenchmarkEvalParallel(b *testing.B) {
	s := store.NewSharded(8)
	typ := rdf.NewIRI(rdf.RDFType)
	person := rdf.NewIRI("http://x/Person")
	name := rdf.NewIRI("http://x/name")
	knows := rdf.NewIRI("http://x/knows")
	l := store.NewBulkLoader(s)
	const people = 10_000
	for i := 0; i < people; i++ {
		subj := rdf.NewIRI(fmt.Sprintf("http://x/p%d", i))
		l.MustAdd(rdf.NewTriple(subj, typ, person))
		l.MustAdd(rdf.NewTriple(subj, name, rdf.NewLangLiteral(fmt.Sprintf("Person %d", i), "en")))
		l.MustAdd(rdf.NewTriple(subj, knows, rdf.NewIRI(fmt.Sprintf("http://x/p%d", (i+1)%people))))
	}
	l.Commit()
	s.BuildOrderLabels()
	shapes := []struct{ name, query string }{
		{"twohop", `SELECT ?n2 WHERE { ?p <http://x/knows> ?q . ?q <http://x/name> ?n2 . }`},
		{"topk", `SELECT ?s ?n WHERE { ?s <http://x/name> ?n . } ORDER BY ?n LIMIT 10`},
		{"aggregate", `SELECT (COUNT(?s) AS ?c) WHERE { ?s a <http://x/Person> . ?s <http://x/name> ?n . }`},
	}
	for _, shape := range shapes {
		q := MustParse(shape.query)
		for _, w := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/workers%d", shape.name, w), func(b *testing.B) {
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := Eval(s, q, Options{Workers: w}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkEvalLimit measures the LIMIT/OFFSET pushdown: a single
// pattern with 10k solutions paged to 10 rows. The pushdown variant
// stops the join after offset+limit rows; the orderby variant cannot
// (ORDER BY needs every row first) and serves as the full-materialize
// reference.
func BenchmarkEvalLimit(b *testing.B) {
	s := benchGraph(10_000)
	cases := []struct{ name, query string }{
		{"pushdown", `SELECT ?s ?n WHERE { ?s <http://x/name> ?n . } LIMIT 10 OFFSET 20`},
		{"orderby", `SELECT ?s ?n WHERE { ?s <http://x/name> ?n . } ORDER BY ?n LIMIT 10 OFFSET 20`},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			q := MustParse(tc.query)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := Eval(s, q, Options{})
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Rows) != 10 {
					b.Fatalf("rows = %d", len(res.Rows))
				}
			}
		})
	}
}
