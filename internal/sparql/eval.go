package sparql

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"sapphire/internal/rdf"
)

// Graph is the triple source the evaluator runs against. The in-memory
// store satisfies it directly; endpoints and federations adapt to it.
type Graph interface {
	// Match streams triples matching the pattern (zero terms are
	// wildcards) until fn returns false.
	Match(s, p, o rdf.Term, fn func(rdf.Triple) bool)
	// CardinalityEstimate returns an upper bound on matching triples,
	// used for greedy join ordering.
	CardinalityEstimate(s, p, o rdf.Term) int
}

// IDGraph is an optional Graph extension for dictionary-encoded stores.
// When the graph implements it, the evaluator joins over dense uint32
// term IDs — integer map probes instead of 4-field struct hashing — and
// resolves IDs back to terms only when rows leave the pipeline. The zero
// ID is the wildcard, mirroring the zero-Term convention of Match. The
// in-memory store implements this; remote and federated graphs take the
// Term-level path through a query-local dictionary instead.
type IDGraph interface {
	Graph
	// Lookup returns the dictionary ID of a term, or false if the term
	// does not occur in the graph.
	Lookup(t rdf.Term) (uint32, bool)
	// ResolveID returns the term for an ID (zero Term for unknown IDs).
	ResolveID(id uint32) rdf.Term
	// MatchIDs streams matching triples as ID tuples; zero IDs are
	// wildcards. Iteration stops early if fn returns false.
	MatchIDs(s, p, o uint32, fn func(s, p, o uint32) bool)
}

// Binding maps variable names to terms for one solution row.
type Binding map[string]rdf.Term

// Results is the outcome of query evaluation.
type Results struct {
	// Vars is the projection list in order.
	Vars []string
	// Rows are the solutions; each maps every projected var (missing
	// entries mean unbound, which cannot happen in this subset).
	Rows []Binding
}

// Sorted returns the rows serialized deterministically, for tests.
func (r *Results) Sorted() []string {
	out := make([]string, len(r.Rows))
	for i, row := range r.Rows {
		parts := make([]string, len(r.Vars))
		for j, v := range r.Vars {
			parts[j] = row[v].String()
		}
		out[i] = strings.Join(parts, " | ")
	}
	sort.Strings(out)
	return out
}

// Budget is invoked for every intermediate row the evaluator produces.
// Simulated endpoints use it to enforce timeouts and result limits the
// way public SPARQL endpoints do; returning an error aborts evaluation.
type Budget func() error

// Options configures evaluation.
type Options struct {
	// Budget, if non-nil, is called once per intermediate row. With
	// Workers > 1 it may be called from several goroutines; the
	// evaluator serializes the calls, so the callback itself needs no
	// locking, but it must not assume any particular interleaving of
	// rows.
	Budget Budget

	// Workers is the intra-query parallelism degree: the number of
	// goroutines that execute the join chain over morsels of the
	// driving scan (see parallel.go). 0 selects the process default
	// (SetDefaultWorkers, itself 1 unless a -parallel flag raised it);
	// values <= 1 evaluate serially. Parallel evaluation requires a
	// ReentrantGraph (the in-memory store) and produces byte-identical
	// results to serial evaluation, row order included.
	Workers int

	// noReorder keeps the textual pattern order instead of the greedy
	// plan — only reachable in-package, to measure what greedy join
	// ordering buys (BenchmarkEvalJoinOrder).
	noReorder bool
}

// budgetFor returns the budget the evaluator should charge: the raw
// callback when evaluation is serial, the mutex-serialized wrapper when
// it is parallel. This accessor is the only sanctioned way to read the
// Budget field at evaluation time — handing the raw callback to
// concurrent workers would race (the pinnedbudget analyzer in
// internal/analysis enforces exactly that).
func (o *Options) budgetFor(parallel bool) Budget {
	if parallel && o.Budget != nil {
		return serializedBudget(o.Budget)
	}
	return o.Budget
}

// defaultWorkers is the process-wide intra-query parallelism default
// used when Options.Workers is 0, settable once at startup via
// SetDefaultWorkers (the serving commands wire their -parallel flag to
// it before taking traffic). It starts at 1: parallelism is opt-in.
var defaultWorkers atomic.Int32

func init() { defaultWorkers.Store(1) }

// DefaultWorkers returns the worker count Options.Workers == 0 selects.
func DefaultWorkers() int { return int(defaultWorkers.Load()) }

// SetDefaultWorkers overrides the process default worker count. n < 1
// is clamped to 1 (serial). Intended for startup flag wiring.
func SetDefaultWorkers(n int) {
	if n < 1 {
		n = 1
	}
	defaultWorkers.Store(int32(n))
}

// resolveWorkers maps an Options.Workers value to the effective degree.
func resolveWorkers(w int) int {
	if w == 0 {
		w = DefaultWorkers()
	}
	if w < 1 {
		return 1
	}
	return w
}

// Eval evaluates a query against a graph: it compiles a plan (slot
// layout, greedy join order, filter placement — see plan.go) and streams
// it through the operator pipeline (see iter.go). Rows arrive in plan
// emission order; ORDER BY is the only modifier that reorders them.
func Eval(g Graph, q *Query, opts Options) (*Results, error) {
	pl, err := newPlan(g, q, !opts.noReorder)
	if err != nil {
		return nil, err
	}
	return runPlan(g, pl, opts)
}

// rowKey builds the composite dedup/grouping key for a row in a single
// preallocated builder pass — no per-term String allocations. The bytes
// are identical to joining the terms' N-Triples forms with NUL, keeping
// the deterministic tie-break order stable.
func rowKey(row Binding, vars []string) string {
	var b strings.Builder
	b.Grow(24 * len(vars))
	for i, v := range vars {
		if i > 0 {
			b.WriteByte(0)
		}
		row[v].StringTo(&b)
	}
	return b.String()
}

// projectionNames returns the output column names (aggregate aliases
// included).
func projectionNames(q *Query) []string {
	if q.SelectAll {
		return q.Vars()
	}
	vars := make([]string, 0, len(q.Projections))
	for _, p := range q.Projections {
		vars = append(vars, p.Name())
	}
	return vars
}

// aggregateResults computes grouped aggregates over the full solution
// rows. With no GROUP BY all rows form one group.
func aggregateResults(q *Query, rows []Binding) (*Results, error) {
	groups := make(map[string][]Binding)
	var order []string
	for _, row := range rows {
		key := rowKey(row, q.GroupBy)
		if _, ok := groups[key]; !ok {
			order = append(order, key)
		}
		groups[key] = append(groups[key], row)
	}
	if len(rows) == 0 && len(q.GroupBy) == 0 {
		// Aggregates over the empty solution set yield one row (COUNT=0).
		order = append(order, "")
		groups[""] = nil
	}
	sort.Strings(order)

	vars := make([]string, len(q.Projections))
	for i, p := range q.Projections {
		vars[i] = p.Name()
	}
	res := &Results{Vars: vars}
	for _, key := range order {
		grows := groups[key]
		out := make(Binding, len(q.Projections))
		for _, p := range q.Projections {
			switch p.Agg {
			case AggNone:
				if len(grows) > 0 {
					out[p.Name()] = grows[0][p.Var]
				}
			case AggCount:
				out[p.Name()] = countAgg(grows, p)
			case AggMax, AggMin, AggSum, AggAvg:
				t, err := numericAgg(grows, p)
				if err != nil {
					return nil, err
				}
				out[p.Name()] = t
			}
		}
		res.Rows = append(res.Rows, out)
	}
	if q.Distinct {
		seen := make(map[string]bool, len(res.Rows))
		out := res.Rows[:0]
		names := projectionNames(q)
		for _, row := range res.Rows {
			key := rowKey(row, names)
			if !seen[key] {
				seen[key] = true
				out = append(out, row)
			}
		}
		res.Rows = out
	}
	return res, nil
}

func countAgg(rows []Binding, p Projection) rdf.Term {
	if p.Var == "" {
		return intLit(len(rows))
	}
	if !p.AggDistinct {
		n := 0
		for _, r := range rows {
			if _, ok := r[p.Var]; ok {
				n++
			}
		}
		return intLit(n)
	}
	seen := make(map[rdf.Term]bool)
	for _, r := range rows {
		if t, ok := r[p.Var]; ok {
			seen[t] = true
		}
	}
	return intLit(len(seen))
}

func numericAgg(rows []Binding, p Projection) (rdf.Term, error) {
	var vals []float64
	for _, r := range rows {
		t, ok := r[p.Var]
		if !ok {
			continue
		}
		f, err := strconv.ParseFloat(t.Value, 64)
		if err != nil {
			return rdf.Term{}, fmt.Errorf("sparql: %s over non-numeric value %s", p.Agg, t)
		}
		vals = append(vals, f)
	}
	if len(vals) == 0 {
		return intLit(0), nil
	}
	switch p.Agg {
	case AggMax:
		m := vals[0]
		for _, v := range vals[1:] {
			if v > m {
				m = v
			}
		}
		return floatLit(m), nil
	case AggMin:
		m := vals[0]
		for _, v := range vals[1:] {
			if v < m {
				m = v
			}
		}
		return floatLit(m), nil
	case AggSum:
		s := 0.0
		for _, v := range vals {
			s += v
		}
		return floatLit(s), nil
	default: // AggAvg
		s := 0.0
		for _, v := range vals {
			s += v
		}
		return floatLit(s / float64(len(vals))), nil
	}
}

func intLit(n int) rdf.Term {
	return rdf.NewTypedLiteral(strconv.Itoa(n), rdf.XSDInteger)
}

func floatLit(f float64) rdf.Term {
	if f == float64(int64(f)) {
		return rdf.NewTypedLiteral(strconv.FormatInt(int64(f), 10), rdf.XSDInteger)
	}
	return rdf.NewTypedLiteral(strconv.FormatFloat(f, 'g', -1, 64), rdf.XSDDouble)
}

// orderResults sorts aggregate output rows by the ORDER BY keys (whose
// variables name output columns, unlike the pre-projection ordering of
// plain queries), falling back to a total deterministic row-key order
// when no keys were given — grouped rows come out of a map, so they need
// a canonical order of their own.
func orderResults(q *Query, res *Results) {
	keys := q.OrderBy
	sort.SliceStable(res.Rows, func(i, j int) bool {
		a, b := res.Rows[i], res.Rows[j]
		for _, k := range keys {
			c := compareTermsForOrder(a[k.Var], b[k.Var])
			if c != 0 {
				if k.Desc {
					return c > 0
				}
				return c < 0
			}
		}
		if len(keys) > 0 {
			return false
		}
		return rowKey(a, res.Vars) < rowKey(b, res.Vars)
	})
}

// compareTermsForOrder compares numerically when both terms parse as
// numbers, else by term order.
func compareTermsForOrder(a, b rdf.Term) int {
	if a.IsLiteral() && b.IsLiteral() {
		af, aerr := strconv.ParseFloat(a.Value, 64)
		bf, berr := strconv.ParseFloat(b.Value, 64)
		if aerr == nil && berr == nil {
			switch {
			case af < bf:
				return -1
			case af > bf:
				return 1
			default:
				return 0
			}
		}
	}
	return a.Compare(b)
}

func pageResults(q *Query, res *Results) {
	if q.Offset > 0 {
		if q.Offset >= len(res.Rows) {
			res.Rows = nil
		} else {
			res.Rows = res.Rows[q.Offset:]
		}
	}
	if q.Limit >= 0 && q.Limit < len(res.Rows) {
		res.Rows = res.Rows[:q.Limit]
	}
}
