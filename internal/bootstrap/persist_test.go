package bootstrap

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sapphire/internal/datagen"
	"sapphire/internal/endpoint"
)

func initTestCache(t *testing.T) *Cache {
	t.Helper()
	d := datagen.Generate(datagen.SmallConfig())
	ep := endpoint.NewLocal("synthetic", d.Store, endpoint.Limits{})
	c, err := Initialize(context.Background(), ep, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCacheFileChecksummed(t *testing.T) {
	c := initTestCache(t)
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if !bytes.HasPrefix(data, []byte("#sapphire-cache v2 ")) {
		t.Fatalf("saved cache lacks the v2 header: %q", data[:40])
	}

	// The intact file loads.
	if _, err := Load(bytes.NewReader(data)); err != nil {
		t.Fatalf("intact cache rejected: %v", err)
	}

	// Any truncation is rejected — a crashed save must never load as a
	// silently smaller lexicon.
	for _, cut := range []int{1, len(data) / 2, len(data) - 1} {
		if _, err := Load(bytes.NewReader(data[:len(data)-cut])); err == nil {
			t.Fatalf("cache truncated by %d bytes loaded without error", cut)
		}
	}

	// A flipped bit in the body is rejected.
	headerEnd := bytes.IndexByte(data, '\n') + 1
	for _, off := range []int{headerEnd, headerEnd + (len(data)-headerEnd)/2, len(data) - 1} {
		bad := append([]byte(nil), data...)
		bad[off] ^= 0x10
		if _, err := Load(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "checksum") {
			t.Fatalf("corrupt byte at %d: want checksum error, got %v", off, err)
		}
	}

	// Garbage after a '#' is not mistaken for a v2 header.
	if _, err := Load(strings.NewReader("#not a cache\n{}")); err == nil {
		t.Fatal("bogus header accepted")
	}
}

func TestCacheLoadsLegacyV1(t *testing.T) {
	c := initTestCache(t)
	// A v1 file is the bare JSON body earlier builds wrote.
	var v1 bytes.Buffer
	if err := c.saveJSON(&v1); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&v1)
	if err != nil {
		t.Fatalf("legacy v1 cache rejected: %v", err)
	}
	if len(loaded.Predicates) != len(c.Predicates) {
		t.Fatalf("legacy load: %d predicates, want %d", len(loaded.Predicates), len(c.Predicates))
	}
}

func TestSaveFileAtomic(t *testing.T) {
	c := initTestCache(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "ep.cache")
	if err := c.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := Load(f); err != nil {
		t.Fatalf("SaveFile output rejected: %v", err)
	}
	// Overwriting leaves exactly one file — no stray temp files.
	if err := c.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "ep.cache" {
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("directory after two saves: %v", names)
	}
}
