package endpoint

import (
	"context"
	"errors"
	"testing"
)

func TestFlakyTimeoutEvery(t *testing.T) {
	inner := NewLocal("inner", testStore(t, 5), Limits{})
	f := NewFlaky(inner, 3, 0, 1)
	if f.Name() != "inner (flaky)" {
		t.Errorf("Name = %q", f.Name())
	}
	ctx := context.Background()
	q := `SELECT ?s WHERE { ?s a <http://x/Person> . }`
	var timeouts int
	for i := 0; i < 9; i++ {
		if _, err := f.Query(ctx, q); errors.Is(err, ErrTimeout) {
			timeouts++
		} else if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if timeouts != 3 {
		t.Errorf("timeouts = %d, want 3 (every 3rd)", timeouts)
	}
	if f.Failures() != 3 {
		t.Errorf("Failures = %d", f.Failures())
	}
}

func TestFlakyRejectEvery(t *testing.T) {
	inner := NewLocal("inner", testStore(t, 5), Limits{})
	f := &Flaky{Inner: inner, RejectEvery: 2}
	ctx := context.Background()
	q := `SELECT ?s WHERE { ?s a <http://x/Person> . }`
	if _, err := f.Query(ctx, q); err != nil {
		t.Fatalf("first query should pass: %v", err)
	}
	if _, err := f.Query(ctx, q); !errors.Is(err, ErrRejected) {
		t.Fatalf("second query should reject: %v", err)
	}
}

func TestFlakyProbabilisticDeterministic(t *testing.T) {
	run := func() int {
		inner := NewLocal("inner", testStore(t, 5), Limits{})
		f := NewFlaky(inner, 0, 0.5, 42)
		fails := 0
		for i := 0; i < 40; i++ {
			if _, err := f.Query(context.Background(),
				`SELECT ?s WHERE { ?s a <http://x/Person> . }`); err != nil {
				fails++
			}
		}
		return fails
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("probabilistic injection nondeterministic: %d vs %d", a, b)
	}
	if a == 0 || a == 40 {
		t.Errorf("fails = %d, want a proper mix", a)
	}
}
