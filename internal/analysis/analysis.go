// Package analysis is sapphire's in-repo static-analysis framework: a
// small, dependency-free sibling of golang.org/x/tools/go/analysis
// (which this module deliberately does not vendor) plus the
// repo-specific analyzers that machine-enforce the store's lock,
// atomic, and protocol contracts. The invariants themselves are prose
// in internal/store/doc.go, internal/sparql/doc.go, and
// docs/ARCHITECTURE.md; each analyzer turns one of them into a build
// failure:
//
//   - pinlock: inside a Match/MatchIDs callback, or anywhere between
//     PinRead and its release, calls that acquire store or dictionary
//     locks deadlock once a writer queues on the RWMutex
//     (internal/store/doc.go, "ID-level API contract").
//   - atomicfield: a struct field accessed through sync/atomic
//     anywhere must be accessed through sync/atomic everywhere; one
//     plain load or store next to an atomic one is a data race.
//   - errcode: the HTTP error-envelope code set is closed — string
//     literals flowing into a `code` position must belong to the
//     declared Code* constants, and every declared code must appear in
//     a status/client mapping switch (internal/endpoint/errors.go).
//   - pinnedbudget: sparql.Options.Budget may be called from several
//     goroutines when Workers > 1; only the Options accessor that
//     serializes it may touch the raw field (internal/sparql/parallel.go).
//   - unchecked: an ignored Close or Sync error on the durability path
//     is a silent durability hole (internal/store/persist).
//
// cmd/sapphire-vet is the multichecker binary that runs all of them
// (plus stock `go vet`) over package patterns; `make lint` and the CI
// lint job fail the build on any diagnostic. A violation the code has
// a documented reason to commit is suppressed in place with
//
//	//sapphire:allow <analyzer> <reason citing the doc section>
//
// on, or on the line above, the flagged line. The reason is mandatory:
// an empty one is itself a diagnostic. See docs/STATIC_ANALYSIS.md for
// the full catalogue with example diagnostics.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one static check. It mirrors the shape of
// x/tools' analysis.Analyzer so the analyzers port over mechanically if
// the module ever takes on the real dependency.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //sapphire:allow suppression comments.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run performs the check over one package, reporting findings
	// through pass.Reportf.
	Run func(pass *Pass) error
}

// A Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// A Diagnostic is one finding, positioned precisely at the offending
// expression.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run executes the analyzers over one loaded package and returns the
// surviving diagnostics: suppressed findings are dropped, malformed
// suppressions (no reason) are added, and the result is sorted by
// position. Analyzer Run errors are returned as-is — they mean the
// analyzer could not do its job, not that the code is clean.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
		}
	}
	diags = applySuppressions(pkg.Fset, pkg.Files, diags)
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos != diags[j].Pos {
			return diags[i].Pos < diags[j].Pos
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	// A call can sit in two overlapping regions (a callback literal
	// under a pin, say); one diagnostic per (position, analyzer) is
	// enough to fail the build and name the rule.
	dedup := diags[:0]
	for i, d := range diags {
		if i > 0 && d.Pos == diags[i-1].Pos && d.Analyzer == diags[i-1].Analyzer {
			continue
		}
		dedup = append(dedup, d)
	}
	return dedup, nil
}

// All returns the full analyzer suite in the order sapphire-vet runs
// it. The unchecked analyzer is scoped by the caller (it only makes
// sense on durability-critical packages); the other four run
// everywhere.
func All() []*Analyzer {
	return []*Analyzer{PinLock, AtomicField, ErrCode, PinnedBudget}
}
