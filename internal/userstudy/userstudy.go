// Package userstudy simulates the paper's user study (Section 7.1):
// 16 participants with a computer-science background but no RDF
// experience answer questions from the Appendix B suite using both
// Sapphire and QAKiS. Participants are modelled as stochastic keyword
// users: they misspell literals, pick plural forms, choose vaguer
// synonyms for predicates, and sometimes get the query structure wrong —
// the very behaviours the QCM and QSM exist to repair. The driver
// regenerates Figures 8–11 and the QSM usage statistics of Section
// 7.3.2.
package userstudy

import (
	"context"
	"math"
	"math/rand"
	"strings"

	"sapphire/internal/baselines"
	"sapphire/internal/operator"
	"sapphire/internal/pum"
	"sapphire/internal/qald"
	"sapphire/internal/store"
)

// Config controls the simulation.
type Config struct {
	// Participants is the cohort size (paper: 16).
	Participants int
	// Seed makes the simulation deterministic.
	Seed int64
	// PerCategory is the number of scored questions per difficulty per
	// participant (paper: 3, after dropping the warm-up question).
	PerCategory int
}

// DefaultConfig mirrors the paper's setup.
func DefaultConfig() Config {
	return Config{Participants: 16, Seed: 7, PerCategory: 3}
}

// CategoryStats aggregates one (system, difficulty) cell of the figures.
type CategoryStats struct {
	// Given counts scored question assignments.
	Given int
	// Answered counts correct answers (Figure 8 numerator).
	Answered int
	// AnsweredByAny counts distinct questions answered by ≥1
	// participant (Figure 9 numerator) over QuestionCount questions.
	AnsweredByAny int
	QuestionCount int
	// AttemptSum and TimeSum accumulate over *answered* questions only,
	// as in Figures 10 and 11.
	AttemptSum int
	TimeSum    float64
	// successByParticipant records per-participant success rates for
	// the 95% confidence intervals shown in the figures.
	successByParticipant []float64
}

// SuccessRate is the Figure 8 bar value (percent).
func (c CategoryStats) SuccessRate() float64 {
	if c.Given == 0 {
		return 0
	}
	return 100 * float64(c.Answered) / float64(c.Given)
}

// ConfidenceInterval95 returns the half-width of the 95% CI over
// participant success rates, in percentage points.
func (c CategoryStats) ConfidenceInterval95() float64 {
	n := len(c.successByParticipant)
	if n < 2 {
		return 0
	}
	mean := 0.0
	for _, v := range c.successByParticipant {
		mean += v
	}
	mean /= float64(n)
	varsum := 0.0
	for _, v := range c.successByParticipant {
		varsum += (v - mean) * (v - mean)
	}
	sd := math.Sqrt(varsum / float64(n-1))
	return 100 * 1.96 * sd / math.Sqrt(float64(n))
}

// CoveragePct is the Figure 9 bar value (percent of questions answered
// by at least one participant).
func (c CategoryStats) CoveragePct() float64 {
	if c.QuestionCount == 0 {
		return 0
	}
	return 100 * float64(c.AnsweredByAny) / float64(c.QuestionCount)
}

// AvgAttempts is the Figure 10 bar value.
func (c CategoryStats) AvgAttempts() float64 {
	if c.Answered == 0 {
		return 0
	}
	return float64(c.AttemptSum) / float64(c.Answered)
}

// AvgMinutes is the Figure 11 bar value.
func (c CategoryStats) AvgMinutes() float64 {
	if c.Answered == 0 {
		return 0
	}
	return c.TimeSum / float64(c.Answered)
}

// Usage aggregates the Section 7.3.2 QSM statistics across all Sapphire
// sessions.
type Usage struct {
	Questions      int
	UsedSuggestion int
	AltPredicate   int
	AltLiteral     int
	Relaxation     int
}

// Pct is a percentage helper.
func Pct(part, whole int) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}

// Result is the full study outcome: stats[system][difficulty].
type Result struct {
	Stats map[string]map[qald.Difficulty]*CategoryStats
	Usage Usage
}

// Run executes the simulated study. The Sapphire side drives the real
// PUM through the operator; the QAKiS side drives the baseline
// reimplementation.
func Run(ctx context.Context, p *pum.PUM, st *store.Store, cfg Config) (*Result, error) {
	if cfg.Participants == 0 {
		cfg = DefaultConfig()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	questions := qald.UserStudyQuestions()
	byDiff := map[qald.Difficulty][]qald.Question{
		qald.Easy:      qald.ByDifficulty(questions, qald.Easy),
		qald.Medium:    qald.ByDifficulty(questions, qald.Medium),
		qald.Difficult: qald.ByDifficulty(questions, qald.Difficult),
	}
	res := &Result{Stats: map[string]map[qald.Difficulty]*CategoryStats{
		"Sapphire": newStats(byDiff),
		"QAKiS":    newStats(byDiff),
	}}
	answeredAny := map[string]map[string]bool{"Sapphire": {}, "QAKiS": {}}
	qakis := baselines.NewQAKiS(st)

	for pi := 0; pi < cfg.Participants; pi++ {
		skill := 0.6 + 0.4*float64(pi)/float64(max(1, cfg.Participants-1))
		prng := rand.New(rand.NewSource(cfg.Seed + int64(pi)*101))
		part := &participant{skill: skill, rng: prng}
		for _, diff := range []qald.Difficulty{qald.Easy, qald.Medium, qald.Difficult} {
			pool := byDiff[diff]
			perm := rng.Perm(len(pool))
			nq := min(cfg.PerCategory, len(pool))
			sSucc, qSucc := 0, 0
			for k := 0; k < nq; k++ {
				q := pool[perm[k]]
				gold, err := qald.GoldAnswers(st, q)
				if err != nil {
					return nil, err
				}

				// --- Sapphire session ---
				// A participant who ends up with no answers re-expresses
				// the question from scratch (fresh wording, possibly
				// fixing their earlier structure mistake), as the study
				// participants did across their 3–5 attempts.
				sStats := res.Stats["Sapphire"][diff]
				sStats.Given++
				op := operator.New(p)
				op.Corrupt = part.corrupt
				res.Usage.Questions++
				attempts := 0
				var out *operator.Outcome
				usedPred, usedLit, usedRelax := false, false, false
				for expr := 0; expr < 3; expr++ {
					plan := part.distortPlan(q.Plan)
					out = op.Attempt(ctx, qald.Question{Plan: plan})
					if out == nil {
						continue
					}
					attempts += out.Attempts
					usedPred = usedPred || out.UsedAltPredicate
					usedLit = usedLit || out.UsedAltLiteral
					usedRelax = usedRelax || out.UsedRelaxation
					if len(out.Answers) > 0 {
						break // the participant found (what looks like) an answer
					}
				}
				if usedPred || usedLit || usedRelax {
					res.Usage.UsedSuggestion++
				}
				if usedPred {
					res.Usage.AltPredicate++
				}
				if usedLit {
					res.Usage.AltLiteral++
				}
				if usedRelax {
					res.Usage.Relaxation++
				}
				if out != nil && qald.Judge(out.Answers, gold) == qald.Right {
					sStats.Answered++
					sSucc++
					sStats.AttemptSum += attempts
					sStats.TimeSum += part.sapphireMinutes(attempts, diff)
					answeredAny["Sapphire"][q.ID] = true
				}

				// --- QAKiS session ---
				qStats := res.Stats["QAKiS"][diff]
				qStats.Given++
				attempts, ok := part.tryQAKiS(ctx, qakis, q, gold)
				if ok {
					qStats.Answered++
					qSucc++
					qStats.AttemptSum += attempts
					qStats.TimeSum += part.qakisMinutes(attempts, diff)
					answeredAny["QAKiS"][q.ID] = true
				}
			}
			res.Stats["Sapphire"][diff].successByParticipant =
				append(res.Stats["Sapphire"][diff].successByParticipant, float64(sSucc)/float64(nq))
			res.Stats["QAKiS"][diff].successByParticipant =
				append(res.Stats["QAKiS"][diff].successByParticipant, float64(qSucc)/float64(nq))
		}
	}
	for sys, m := range res.Stats {
		for diff, stats := range m {
			stats.QuestionCount = len(byDiff[diff])
			for _, q := range byDiff[diff] {
				if answeredAny[sys][q.ID] {
					stats.AnsweredByAny++
				}
			}
		}
	}
	return res, nil
}

func newStats(byDiff map[qald.Difficulty][]qald.Question) map[qald.Difficulty]*CategoryStats {
	return map[qald.Difficulty]*CategoryStats{
		qald.Easy:      {},
		qald.Medium:    {},
		qald.Difficult: {},
	}
}

// participant is one simulated user.
type participant struct {
	skill float64
	rng   *rand.Rand
}

// corrupt distorts a keyword the way study participants did: plural
// forms, adjacent-letter typos, or a vaguer phrasing. Higher skill means
// fewer distortions.
func (p *participant) corrupt(kw string) string {
	if p.rng.Float64() < p.skill {
		return kw
	}
	switch p.rng.Intn(3) {
	case 0:
		return kw + "s" // the "Kennedys" mistake
	case 1:
		r := []rune(kw)
		if len(r) >= 4 {
			i := 1 + p.rng.Intn(len(r)-2)
			r[i], r[i+1] = r[i+1], r[i]
			return string(r)
		}
		return kw
	default:
		if !strings.Contains(kw, " ") {
			return "the " + kw
		}
		return strings.Fields(kw)[0] // drops a word
	}
}

// distortPlan merges two chained triples into one — the wrong-structure
// mistake that only relaxation can repair. The paper's participants,
// lacking RDF experience, got the structure wrong often (relaxation was
// their most-used suggestion), so the error rate is substantial and
// shrinks with skill.
func (p *participant) distortPlan(plan qald.Plan) qald.Plan {
	if p.rng.Float64() < p.skill-0.05 || len(plan.Triples) < 3 {
		return plan
	}
	out := plan
	out.Triples = append([]qald.PlanTriple(nil), plan.Triples...)
	// Merge: find a pair (a, P1, ?x), (?x, P2, b) and shortcut it to
	// (a, P2, b), dropping the intermediate variable.
	for i := 0; i+1 < len(out.Triples); i++ {
		a, b := out.Triples[i], out.Triples[i+1]
		if a.O.Var != "" && a.O.Var == b.S.Var && a.O.Var != plan.Project {
			merged := qald.PlanTriple{S: a.S, P: b.P, O: b.O}
			out.Triples = append(out.Triples[:i], append([]qald.PlanTriple{merged}, out.Triples[i+2:]...)...)
			break
		}
	}
	return out
}

// tryQAKiS paraphrases the question up to 3 times (the paper's protocol)
// and reports attempts and success.
func (p *participant) tryQAKiS(ctx context.Context, sys *baselines.QAKiS, q qald.Question, gold qald.AnswerSet) (int, bool) {
	paraphrases := []string{q.Relation}
	// Second and third attempts rephrase the relation without changing
	// meaning (the paper allowed e.g. "What is the revenue of IBM?" →
	// "IBM's revenue" but not synonym swaps).
	if strings.HasSuffix(q.Relation, "s") {
		paraphrases = append(paraphrases, strings.TrimSuffix(q.Relation, "s"))
	} else {
		paraphrases = append(paraphrases, q.Relation+"s")
	}
	paraphrases = append(paraphrases, strings.ToLower(q.Relation))
	for i, rel := range paraphrases {
		qq := q
		qq.Relation = rel
		answers, ok := sys.Answer(ctx, qq)
		if ok && qald.Judge(answers, gold) == qald.Right {
			return i + 1, true
		}
	}
	return len(paraphrases), false
}

// sapphireMinutes models time spent: composing triple patterns and
// reviewing suggestions takes longer than typing a question, growing
// with attempts and difficulty (Figure 11's shape).
func (p *participant) sapphireMinutes(attempts int, d qald.Difficulty) float64 {
	base := 2.0 + 0.8*float64(d)
	perAttempt := 0.9
	noise := p.rng.Float64() * 0.8
	return base + perAttempt*float64(attempts-1) + noise
}

// qakisMinutes models typing a natural-language question and skimming
// its answers.
func (p *participant) qakisMinutes(attempts int, d qald.Difficulty) float64 {
	base := 0.8 + 0.3*float64(d)
	perAttempt := 0.5
	noise := p.rng.Float64() * 0.5
	return base + perAttempt*float64(attempts-1) + noise
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
