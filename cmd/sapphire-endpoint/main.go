// Command sapphire-endpoint serves the synthetic DBpedia-like dataset as
// a SPARQL HTTP endpoint, the stand-in for http://dbpedia.org/sparql in
// all experiments. Query it with:
//
//	curl -s 'http://localhost:8890/sparql' \
//	  --data-urlencode 'query=SELECT ?s WHERE { ?s a <http://dbpedia.org/ontology/Writer> . } LIMIT 5'
//
// With -data-dir the store is durable: the first start generates the
// dataset and snapshots it; later starts recover from the snapshot +
// WAL instead of regenerating, triples POSTed to /add are write-ahead
// logged under the -fsync policy, and SIGTERM/SIGINT triggers a
// graceful shutdown snapshot:
//
//	sapphire-endpoint -data-dir ./endpoint-data -fsync interval
//	curl -s http://localhost:8890/add --data-binary \
//	  '<http://x/s> <http://x/p> "new fact" .'
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"sapphire/internal/datagen"
	"sapphire/internal/endpoint"
	"sapphire/internal/sparql"
	"sapphire/internal/store"
	"sapphire/internal/store/persist"
)

func main() {
	var (
		addr    = flag.String("addr", ":8890", "listen address")
		scale   = flag.String("scale", "default", "dataset scale: small | default")
		seed    = flag.Int64("seed", 1, "dataset generator seed")
		maxRows = flag.Int("max-rows", 0, "intermediate-row budget per query (0 = unlimited); models public endpoint timeouts")
		latency = flag.Duration("latency", 0, "simulated per-query latency, e.g. 20ms")
		reject  = flag.Int("reject-above", endpoint.DefaultRejectEstimate,
			"reject queries whose exact pattern cardinality exceeds this (0 = admit everything)")
		cacheBytes = flag.Int64("cache-bytes", endpoint.DefaultCacheBytes,
			"byte budget for the query result cache, keyed by (query, store epoch) (0 = no caching)")
		shards = flag.Int("shards", store.DefaultShards(),
			"store shard count: subject-hash partitions with per-shard locks/epochs (1 = unsharded, whole-batch commit atomicity)")
		dataDir = flag.String("data-dir", "",
			"durable store directory: recover on start, WAL /add writes, snapshot on shutdown (empty = in-memory only)")
		snapshotEvery = flag.Int("snapshot-every", 0,
			"take an automatic snapshot after this many WAL-logged triples (0 = only on shutdown)")
		fsync    = flag.String("fsync", "always", "WAL fsync policy: always | interval | off")
		parallel = flag.Int("parallel", 1,
			"intra-query parallelism: join workers per query over morsels of the driving scan (1 = serial; results are identical either way)")
	)
	flag.Parse()

	// Must run before any store is built; datagen and every other
	// store.New caller picks up the process default.
	store.SetDefaultShards(*shards)
	sparql.SetDefaultWorkers(*parallel)

	cfg := datagen.DefaultConfig()
	if *scale == "small" {
		cfg = datagen.SmallConfig()
	}
	cfg.Seed = *seed

	var (
		st *store.Store
		db *persist.DB
	)
	if *dataDir != "" {
		policy, err := persist.ParseFsyncPolicy(*fsync)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		var info persist.RecoveryInfo
		db, info, err = persist.Open(*dataDir, persist.Options{
			Fsync:         policy,
			SnapshotEvery: *snapshotEvery,
			Shards:        *shards,
		})
		if err != nil {
			log.Fatalf("open %s: %v", *dataDir, err)
		}
		st = db.Store()
		if st.Len() == 0 {
			log.Printf("empty data dir, generating dataset ...")
			err := db.Ingest(func(s *store.Store) error {
				datagen.GenerateInto(cfg, s)
				return nil
			})
			if err != nil {
				log.Fatalf("ingest: %v", err)
			}
			log.Printf("generated and snapshotted %d triples in %v",
				st.Len(), time.Since(start).Round(time.Millisecond))
		} else {
			log.Printf("recovered %d triples from %s (generation %d, %d WAL records) in %v",
				st.Len(), *dataDir, info.Generation, info.WALRecords,
				time.Since(start).Round(time.Millisecond))
		}
	} else {
		start := time.Now()
		st = datagen.Generate(cfg).Store
		log.Printf("generated %d triples in %v", st.Len(), time.Since(start).Round(time.Millisecond))
	}

	ep := endpoint.NewLocal("synthetic-dbpedia", st, endpoint.Limits{
		MaxIntermediateRows: *maxRows,
		Latency:             *latency,
		RejectEstimateAbove: *reject,
		CacheBytes:          *cacheBytes,
		Workers:             *parallel,
	})
	// NewMux mounts the routed serving surface — /sparql, /epoch,
	// /healthz — and returns a plain ServeMux for the extra routes.
	mux := endpoint.NewMux(ep)
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		s := ep.Stats()
		epoch, _ := ep.Epoch(r.Context())
		fmt.Fprintf(w, "queries=%d timeouts=%d rejected=%d rows=%d epoch=%d\n",
			s.Queries, s.Timeouts, s.Rejected, s.Rows, epoch)
		fmt.Fprintf(w, "cache: hits=%d rawhits=%d misses=%d coalesced=%d evicted=%d bytes=%d entries=%d\n",
			s.CacheHits, s.CacheRawHits, s.CacheMisses, s.CacheCoalesced, s.CacheEvicted,
			s.CacheBytes, s.CacheEntries)
	})
	if db != nil {
		mux.Handle("/add", endpoint.AddHandler(db))
	}

	srv := &http.Server{Addr: *addr, Handler: mux}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(sctx)
	}()

	log.Printf("SPARQL endpoint on %s/sparql", *addr)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	if db != nil {
		log.Printf("shutting down: snapshotting %d triples ...", st.Len())
		if info, err := db.Snapshot(); err != nil {
			log.Printf("shutdown snapshot failed (WAL still covers the data): %v", err)
		} else {
			log.Printf("snapshot: epoch %d, %d triples, %d terms, %d bytes",
				info.Epoch, info.Triples, info.Terms, info.Bytes)
		}
		if err := db.Close(); err != nil {
			log.Printf("close: %v", err)
		}
	}
}
