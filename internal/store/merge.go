package store

import "sapphire/internal/rdf"

// merger iterates the union of term-sorted ID slices in global term
// order through a loser tree over cached head terms. It replaces the
// flat cursor scan the sharded store first merged with, which paid
// O(k) cursor probes and up to k-1 term comparisons — each comparison
// re-resolving both IDs against the dictionary — per output key. The
// tree plays each new head against O(log k) cached opponents instead,
// and resolves every element's term exactly once, when it becomes its
// list's head.
//
// A merger is reusable: merge resets all internal state, so nested
// fan-outs (the per-object subject merges inside a (?s P ?o) sweep) can
// run thousands of merges without reallocating the tree. It is not safe
// for concurrent use.
type merger struct {
	tv termView
	// rt is the rank-table snapshot captured when the merger was built:
	// labeled IDs compare with one integer compare, everything else
	// falls back to a term compare against lazily resolved heads.
	rt    *rankTable
	lists [][]ID
	cur   []mcur
	// node[1..k-1] hold the loser (list index) of the match played at
	// that tree position; node[0] is the overall winner. Leaves sit at
	// positions k..2k-1 (leaf j = list j), parent of position n is n/2.
	node  []int
	which []int
}

// mcur is one list's merge cursor: the head's order label (0 when
// unlabeled), the head term resolved lazily on the first comparison
// that needs it, the head ID, the cursor position, and liveness.
type mcur struct {
	lbl  uint64
	head *rdf.Term
	id   ID
	pos  int32
	live bool
}

// mergeScratch bundles every allocation a cross-shard fan-out needs —
// the collected entries, their key and list slices, the outer and inner
// mergers — so the wildcard read paths can recycle them through the
// store's pool instead of allocating per call.
type mergeScratch struct {
	entries  []*entry
	keyLists [][]ID
	lists    [][]*[]ID
	inner    [][]ID
	outer    merger
	innerM   merger
}

// reset prepares the scratch for a fan-out under the given dictionary
// view and rank table, emptying the collection slices.
func (sc *mergeScratch) reset(tv termView, rt *rankTable) {
	sc.entries = sc.entries[:0]
	sc.keyLists = sc.keyLists[:0]
	sc.lists = sc.lists[:0]
	sc.inner = sc.inner[:0]
	sc.outer.tv, sc.outer.rt = tv, rt
	sc.innerM.tv, sc.innerM.rt = tv, rt
}

// grow returns s resized to n, reusing capacity.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// merge streams the union of the term-sorted lists in term order,
// invoking visit once per distinct ID together with the indexes (in
// ascending order) of the lists whose cursor currently holds it — a
// term interns to exactly one ID, so equal IDs are the only possible
// ties. It returns false if visit stopped the iteration early.
func (m *merger) merge(lists [][]ID, visit func(id ID, which []int) bool) bool {
	switch len(lists) {
	case 0:
		return true
	case 1:
		one := [1]int{0}
		m.cur = grow(m.cur, 1)
		for i, id := range lists[0] {
			m.cur[0].pos = int32(i) + 1
			if !visit(id, one[:]) {
				return false
			}
		}
		return true
	}
	k := len(lists)
	m.lists = lists
	m.cur = grow(m.cur, k)
	m.node = grow(m.node, k)
	m.which = grow(m.which, k)[:0]
	for i, l := range lists {
		if len(l) > 0 {
			m.cur[i] = mcur{lbl: m.rt.label(l[0]), id: l[0], live: true}
		} else {
			m.cur[i] = mcur{}
		}
	}
	m.node[0] = m.initNode(1)
	for {
		w := m.node[0]
		if !m.cur[w].live {
			return true // winner exhausted: all lists drained
		}
		id := m.cur[w].id
		m.which = append(m.which[:0], w)
		m.advance(w)
		// Ties are equal IDs; the index tiebreak pops them in ascending
		// list order, so which stays sorted. Comparing cursor IDs alone
		// (no term compare) is enough to detect them.
		for {
			w = m.node[0]
			if c := &m.cur[w]; !c.live || c.id != id {
				break
			}
			m.which = append(m.which, w)
			m.advance(w)
		}
		if !visit(id, m.which) {
			return false
		}
	}
}

// posAt returns the index within lists[w] of the element most recently
// delivered to visit for list w. Only valid inside the visit callback,
// and only for values of w present in its which argument — callers use
// it to address data kept parallel to the merged key slices (an index's
// entries/lists) without re-probing a map per output key.
func (m *merger) posAt(w int) int { return int(m.cur[w].pos) - 1 }

// less reports whether list i's head beats list j's. Exhausted lists
// lose to everything and equal heads (necessarily the same ID) fall
// back to list order. When both heads carry distinct order labels from
// the merger's rank-table snapshot the comparison is one inlined
// integer compare; everything else (unlabeled heads, equal IDs,
// exhaustion) takes the out-of-line slow path, where heads resolve once
// per element (cached) and compare as terms, with a list-order tiebreak
// for determinism.
func (m *merger) less(i, j int) bool {
	ci, cj := &m.cur[i], &m.cur[j]
	if ci.live && cj.live {
		if ci.lbl != 0 && cj.lbl != 0 && ci.lbl != cj.lbl {
			return ci.lbl < cj.lbl
		}
		return m.lessSlow(ci, cj, i, j)
	}
	return ci.live
}

func (m *merger) lessSlow(ci, cj *mcur, i, j int) bool {
	if ci.id == cj.id {
		return i < j
	}
	hi, hj := ci.head, cj.head
	if hi == nil {
		hi = m.tv.atPtr(ci.id)
		ci.head = hi
	}
	if hj == nil {
		hj = m.tv.atPtr(cj.id)
		cj.head = hj
	}
	if c := hi.CompareTo(hj); c != 0 {
		return c < 0
	}
	return i < j
}

// initNode plays the initial tournament for the subtree rooted at tree
// position n, storing losers on the way up and returning the subtree's
// winning list index.
func (m *merger) initNode(n int) int {
	if n >= len(m.lists) {
		return n - len(m.lists)
	}
	w1 := m.initNode(2 * n)
	w2 := m.initNode(2*n + 1)
	if m.less(w1, w2) {
		m.node[n] = w2
		return w1
	}
	m.node[n] = w1
	return w2
}

// advance moves list i's cursor forward, refreshes its cached head, and
// replays i's path to the root: at each node the incoming contender
// plays the stored loser, the winner moves up.
func (m *merger) advance(i int) {
	c := &m.cur[i]
	c.pos++
	if l := m.lists[i]; int(c.pos) < len(l) {
		id := l[c.pos]
		c.id = id
		c.lbl = m.rt.label(id)
		c.head = nil
	} else {
		c.live = false
	}
	w := i
	node := m.node
	for n := (len(m.lists) + i) / 2; n >= 1; n /= 2 {
		ln := node[n]
		// The label fast path is duplicated from less because less is
		// beyond the inlining budget and the replay runs log k times
		// per output key — the call overhead is measurable there.
		cl, cw := &m.cur[ln], &m.cur[w]
		var lnWins bool
		if cl.live && cw.live && cl.lbl != 0 && cw.lbl != 0 && cl.lbl != cw.lbl {
			lnWins = cl.lbl < cw.lbl
		} else {
			lnWins = m.less(ln, w)
		}
		if lnWins {
			node[n], w = w, ln
		}
	}
	node[0] = w
}

// mergeSorted is the one-shot convenience form of merger.merge for
// non-nested fan-outs.
func mergeSorted(tv termView, rt *rankTable, lists [][]ID, visit func(id ID, which []int) bool) bool {
	m := merger{tv: tv, rt: rt}
	return m.merge(lists, visit)
}
