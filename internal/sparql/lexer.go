package sparql

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// tokenKind enumerates lexical token classes.
type tokenKind uint8

const (
	tokEOF       tokenKind = iota
	tokIdent               // bare identifier or keyword: SELECT, FILTER, a, count
	tokVar                 // ?name or $name
	tokIRI                 // <...>
	tokPName               // prefixed name: dbo:Scientist or dbo:
	tokString              // "..." or '...'
	tokNumber              // 42, 3.14, -1
	tokLangTag             // @en
	tokDTSep               // ^^
	tokLBrace              // {
	tokRBrace              // }
	tokLParen              // (
	tokRParen              // )
	tokDot                 // .
	tokComma               // ,
	tokSemicolon           // ;
	tokStar                // *
	tokOp                  // operators: = != < > <= >= && || ! + - /
)

type token struct {
	kind tokenKind
	text string
	pos  int // byte offset for error reporting
}

// lexer tokenizes a SPARQL query string.
type lexer struct {
	src string
	i   int
}

// lexAll tokenizes the whole input.
func lexAll(src string) ([]token, error) {
	lx := &lexer{src: src}
	var out []token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}

func (lx *lexer) errf(format string, args ...any) error {
	line := 1 + strings.Count(lx.src[:lx.i], "\n")
	return fmt.Errorf("sparql: lex error at line %d: %s", line, fmt.Sprintf(format, args...))
}

func (lx *lexer) next() (token, error) {
	lx.skipWS()
	if lx.i >= len(lx.src) {
		return token{kind: tokEOF, pos: lx.i}, nil
	}
	start := lx.i
	c := lx.src[lx.i]
	switch {
	case c == '?' || c == '$':
		lx.i++
		name := lx.ident()
		if name == "" {
			return token{}, lx.errf("empty variable name")
		}
		return token{kind: tokVar, text: name, pos: start}, nil
	case c == '<':
		// '<' is ambiguous: IRI open bracket or less-than operator.
		// Treat it as an operator when followed by '=', whitespace, a
		// digit, or a variable — i.e. anything that cannot start an IRI
		// body that closes with '>'.
		if lx.i+1 < len(lx.src) {
			nc := lx.src[lx.i+1]
			if nc == '=' {
				lx.i += 2
				return token{kind: tokOp, text: "<=", pos: start}, nil
			}
			if nc == ' ' || nc == '\t' || nc == '\n' || nc == '\r' || isDigit(nc) || nc == '?' || nc == '$' || nc == '-' {
				lx.i++
				return token{kind: tokOp, text: "<", pos: start}, nil
			}
		}
		lx.i++
		j := strings.IndexByte(lx.src[lx.i:], '>')
		if j < 0 {
			return token{}, lx.errf("unterminated IRI")
		}
		iri := lx.src[lx.i : lx.i+j]
		lx.i += j + 1
		return token{kind: tokIRI, text: iri, pos: start}, nil
	case c == '"' || c == '\'':
		s, err := lx.stringLit(c)
		if err != nil {
			return token{}, err
		}
		return token{kind: tokString, text: s, pos: start}, nil
	case c == '@':
		lx.i++
		tag := lx.ident()
		if tag == "" {
			return token{}, lx.errf("empty language tag")
		}
		for lx.i < len(lx.src) && lx.src[lx.i] == '-' {
			lx.i++
			tag += "-" + lx.ident()
		}
		return token{kind: tokLangTag, text: tag, pos: start}, nil
	case c == '^':
		if strings.HasPrefix(lx.src[lx.i:], "^^") {
			lx.i += 2
			return token{kind: tokDTSep, pos: start}, nil
		}
		return token{}, lx.errf("unexpected '^'")
	case c == '{':
		lx.i++
		return token{kind: tokLBrace, pos: start}, nil
	case c == '}':
		lx.i++
		return token{kind: tokRBrace, pos: start}, nil
	case c == '(':
		lx.i++
		return token{kind: tokLParen, pos: start}, nil
	case c == ')':
		lx.i++
		return token{kind: tokRParen, pos: start}, nil
	case c == ',':
		lx.i++
		return token{kind: tokComma, pos: start}, nil
	case c == ';':
		lx.i++
		return token{kind: tokSemicolon, pos: start}, nil
	case c == '*':
		lx.i++
		return token{kind: tokStar, pos: start}, nil
	case c == '.':
		// Distinguish the triple terminator from a decimal number.
		if lx.i+1 < len(lx.src) && isDigit(lx.src[lx.i+1]) {
			return lx.number()
		}
		lx.i++
		return token{kind: tokDot, pos: start}, nil
	case c == '=':
		lx.i++
		return token{kind: tokOp, text: "=", pos: start}, nil
	case c == '!':
		if strings.HasPrefix(lx.src[lx.i:], "!=") {
			lx.i += 2
			return token{kind: tokOp, text: "!=", pos: start}, nil
		}
		lx.i++
		return token{kind: tokOp, text: "!", pos: start}, nil
	case c == '>':
		lx.i++
		op := ">"
		if lx.i < len(lx.src) && lx.src[lx.i] == '=' {
			op += "="
			lx.i++
		}
		return token{kind: tokOp, text: op, pos: start}, nil
	case c == '&':
		if strings.HasPrefix(lx.src[lx.i:], "&&") {
			lx.i += 2
			return token{kind: tokOp, text: "&&", pos: start}, nil
		}
		return token{}, lx.errf("unexpected '&'")
	case c == '|':
		if strings.HasPrefix(lx.src[lx.i:], "||") {
			lx.i += 2
			return token{kind: tokOp, text: "||", pos: start}, nil
		}
		return token{}, lx.errf("unexpected '|'")
	case c == '+':
		lx.i++
		return token{kind: tokOp, text: "+", pos: start}, nil
	case c == '-':
		if lx.i+1 < len(lx.src) && isDigit(lx.src[lx.i+1]) {
			return lx.number()
		}
		lx.i++
		return token{kind: tokOp, text: "-", pos: start}, nil
	case c == '/':
		lx.i++
		return token{kind: tokOp, text: "/", pos: start}, nil
	case isDigit(c):
		return lx.number()
	case isIdentStartAt(lx.src[lx.i:]):
		name := lx.ident()
		// Prefixed name: label ':' local. The label may be empty only
		// via the ':' branch below.
		if lx.i < len(lx.src) && lx.src[lx.i] == ':' {
			lx.i++
			local := lx.pnameLocal()
			return token{kind: tokPName, text: name + ":" + local, pos: start}, nil
		}
		return token{kind: tokIdent, text: name, pos: start}, nil
	case c == ':':
		lx.i++
		local := lx.pnameLocal()
		return token{kind: tokPName, text: ":" + local, pos: start}, nil
	default:
		return token{}, lx.errf("unexpected character %q", c)
	}
}

func (lx *lexer) skipWS() {
	for lx.i < len(lx.src) {
		c := lx.src[lx.i]
		if c == '#' {
			j := strings.IndexByte(lx.src[lx.i:], '\n')
			if j < 0 {
				lx.i = len(lx.src)
				return
			}
			lx.i += j + 1
			continue
		}
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			lx.i++
			continue
		}
		return
	}
}

// ident scans an identifier rune by rune. Decoding real UTF-8 (rather
// than casting bytes) matters: a stray non-UTF-8 byte must not lex as a
// Latin-1 letter, because downstream canonicalization (strings.ToLower
// on function names) would replace it with U+FFFD and the canonical
// form would no longer re-lex — found by FuzzParse.
func (lx *lexer) ident() string {
	start := lx.i
	for lx.i < len(lx.src) {
		r, size := utf8.DecodeRuneInString(lx.src[lx.i:])
		if (r == utf8.RuneError && size == 1) || !isIdentPart(r) {
			break
		}
		lx.i += size
	}
	return lx.src[start:lx.i]
}

// pnameLocal scans the local part of a prefixed name, which may contain
// dots as long as they are not terminal.
func (lx *lexer) pnameLocal() string {
	start := lx.i
	for lx.i < len(lx.src) {
		c, size := utf8.DecodeRuneInString(lx.src[lx.i:])
		if c == utf8.RuneError && size <= 1 {
			break
		}
		if isIdentPart(c) || c == '-' {
			lx.i += size
			continue
		}
		if c == '.' && lx.i+1 < len(lx.src) && isIdentPartAt(lx.src[lx.i+1:]) {
			lx.i++
			continue
		}
		break
	}
	return lx.src[start:lx.i]
}

func (lx *lexer) stringLit(quote byte) (string, error) {
	lx.i++ // opening quote
	var b strings.Builder
	for lx.i < len(lx.src) {
		c := lx.src[lx.i]
		if c == quote {
			lx.i++
			return b.String(), nil
		}
		if c == '\\' {
			lx.i++
			if lx.i >= len(lx.src) {
				return "", lx.errf("dangling escape")
			}
			switch lx.src[lx.i] {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case '"':
				b.WriteByte('"')
			case '\'':
				b.WriteByte('\'')
			case '\\':
				b.WriteByte('\\')
			default:
				return "", lx.errf("unsupported escape \\%c", lx.src[lx.i])
			}
			lx.i++
			continue
		}
		if c == '\n' {
			return "", lx.errf("newline in string literal")
		}
		b.WriteByte(c)
		lx.i++
	}
	return "", lx.errf("unterminated string literal")
}

func (lx *lexer) number() (token, error) {
	start := lx.i
	if lx.src[lx.i] == '-' || lx.src[lx.i] == '+' {
		lx.i++
	}
	seenDot := false
	for lx.i < len(lx.src) {
		c := lx.src[lx.i]
		if isDigit(c) {
			lx.i++
			continue
		}
		if c == '.' && !seenDot && lx.i+1 < len(lx.src) && isDigit(lx.src[lx.i+1]) {
			seenDot = true
			lx.i++
			continue
		}
		break
	}
	return token{kind: tokNumber, text: lx.src[start:lx.i], pos: start}, nil
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

// isIdentStartAt reports whether s opens with a valid identifier rune,
// decoding UTF-8 properly (an invalid byte is never an ident start).
func isIdentStartAt(s string) bool {
	r, size := utf8.DecodeRuneInString(s)
	if r == utf8.RuneError && size <= 1 {
		return false
	}
	return isIdentStart(r)
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}

// isIdentPartAt is isIdentPart over the first properly decoded rune of s.
func isIdentPartAt(s string) bool {
	r, size := utf8.DecodeRuneInString(s)
	if r == utf8.RuneError && size <= 1 {
		return false
	}
	return isIdentPart(r)
}
