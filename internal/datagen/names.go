package datagen

// Name pools for filler entities. Combined deterministically, they give
// the generator a large space of distinct, realistic English literals so
// the cached-literal statistics (bin sizes, suffix-tree hit ratios)
// behave like a real dataset rather than like random bytes.

var firstNames = []string{
	"James", "Mary", "John", "Patricia", "Robert", "Jennifer", "Michael",
	"Linda", "William", "Elizabeth", "David", "Barbara", "Richard", "Susan",
	"Joseph", "Jessica", "Thomas", "Sarah", "Charles", "Karen", "Christopher",
	"Nancy", "Daniel", "Lisa", "Matthew", "Margaret", "Anthony", "Betty",
	"Mark", "Sandra", "Donald", "Ashley", "Steven", "Dorothy", "Paul",
	"Kimberly", "Andrew", "Emily", "Joshua", "Donna", "Kenneth", "Michelle",
	"Kevin", "Carol", "Brian", "Amanda", "George", "Melissa", "Edward",
	"Deborah", "Ronald", "Stephanie", "Timothy", "Rebecca", "Jason", "Laura",
	"Jeffrey", "Sharon", "Ryan", "Cynthia", "Jacob", "Kathleen", "Gary",
	"Amy", "Nicholas", "Shirley", "Eric", "Angela", "Jonathan", "Helen",
	"Stephen", "Anna", "Larry", "Brenda", "Justin", "Pamela", "Scott",
	"Nicole", "Brandon", "Emma", "Benjamin", "Samantha", "Samuel",
	"Katherine", "Gregory", "Christine", "Frank", "Debra", "Alexander",
	"Rachel", "Raymond", "Catherine", "Patrick", "Carolyn", "Jack", "Janet",
	"Dennis", "Ruth", "Jerry", "Maria",
}

var surnames = []string{
	"Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller",
	"Davis", "Rodriguez", "Martinez", "Hernandez", "Lopez", "Gonzalez",
	"Wilson", "Anderson", "Thomas", "Taylor", "Moore", "Jackson", "Martin",
	"Lee", "Perez", "Thompson", "White", "Harris", "Sanchez", "Clark",
	"Ramirez", "Lewis", "Robinson", "Walker", "Young", "Allen", "King",
	"Wright", "Scott", "Torres", "Nguyen", "Hill", "Flores", "Green",
	"Adams", "Nelson", "Baker", "Hall", "Rivera", "Campbell", "Mitchell",
	"Carter", "Roberts", "Gomez", "Phillips", "Evans", "Turner", "Diaz",
	"Parker", "Cruz", "Edwards", "Collins", "Reyes", "Stewart", "Morris",
	"Morales", "Murphy", "Cook", "Rogers", "Gutierrez", "Ortiz", "Morgan",
	"Cooper", "Peterson", "Bailey", "Reed", "Kelly", "Howard", "Ramos",
	"Kim", "Cox", "Ward", "Richardson", "Watson", "Brooks", "Chavez",
	"Wood", "James", "Bennett", "Gray", "Mendoza", "Ruiz", "Hughes",
	"Price", "Alvarez", "Castillo", "Sanders", "Patel", "Myers", "Long",
	"Ross", "Foster", "Jimenez",
}

var cityStems = []string{
	"Spring", "River", "Lake", "Oak", "Maple", "Cedar", "Pine", "Elm",
	"Birch", "Willow", "Stone", "Iron", "Silver", "Gold", "Copper", "Clay",
	"Sand", "Hill", "Valley", "Ridge", "Brook", "Glen", "Fair", "Clear",
	"Green", "White", "Black", "Red", "Blue", "Grand", "High", "Low",
	"North", "South", "East", "West", "New", "Old", "Fort", "Port",
}

var citySuffixes = []string{
	"field", "ton", "ville", "burg", "ford", "haven", "port", "mouth",
	"wood", "land", "dale", "view", "side", "bridge", "crest", "gate",
}

var bookAdjectives = []string{
	"Silent", "Hidden", "Lost", "Forgotten", "Burning", "Distant", "Broken",
	"Golden", "Crimson", "Endless", "Quiet", "Savage", "Gentle", "Hollow",
	"Restless", "Shattered", "Winding", "Frozen", "Wandering", "Secret",
}

var bookNouns = []string{
	"Road", "River", "Garden", "Mountain", "Mirror", "Shadow", "Harbor",
	"Letter", "Journey", "Kingdom", "Orchard", "Winter", "Summer", "Voice",
	"Tower", "Island", "Forest", "Promise", "Horizon", "Storm",
}

var companyStems = []string{
	"Apex", "Vertex", "Nova", "Orion", "Atlas", "Titan", "Zenith", "Delta",
	"Vector", "Quantum", "Stellar", "Fusion", "Catalyst", "Summit", "Pioneer",
	"Meridian", "Beacon", "Anchor", "Crescent", "Horizon",
}

var companySuffixes = []string{
	"Industries", "Systems", "Dynamics", "Technologies", "Group",
	"Corporation", "Labs", "Works", "Holdings", "Partners",
}

var instrumentNames = []string{
	"Guitar", "Piano", "Violin", "Cello", "Flute", "Trumpet", "Drums",
	"Saxophone", "Harp", "Clarinet", "Oboe", "Banjo", "Mandolin", "Organ",
}

var industryNames = []string{
	"Aerospace", "Medicine", "Software", "Automotive", "Energy",
	"Agriculture", "Finance", "Telecommunications", "Construction",
	"Entertainment", "Retail", "Shipping",
}
