// Package bootstrap implements Sapphire's initialization for a new
// endpoint (Section 5 and Appendix A of the paper): retrieving all
// predicates, a filtered subset of literals, and the most significant
// literals, while respecting endpoint timeouts by descending the RDFS
// class hierarchy and paginating with LIMIT/OFFSET. The retrieved data is
// indexed into a suffix tree (significant literals + all predicates) and
// residual length bins for the Predictive User Model.
package bootstrap

import "fmt"

// The queries below are the Appendix A templates Q1–Q10 verbatim modulo
// whitespace; placeholders are filled by the driver.

// QueryPredicatesByFrequency is Q1.
const QueryPredicatesByFrequency = `SELECT DISTINCT ?p (COUNT(*) AS ?frequency)
WHERE { ?s ?p ?o }
GROUP BY ?p
ORDER BY DESC(?frequency)`

// QueryClassHierarchy is Q2.
const QueryClassHierarchy = `PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
PREFIX owl: <http://www.w3.org/2002/07/owl#>
SELECT DISTINCT ?class ?subclass
WHERE {
  ?class a owl:Class .
  ?class rdfs:subClassOf ?subclass
}`

// QueryTypesByFrequency is Q3, the fallback for datasets without an RDFS
// hierarchy.
const QueryTypesByFrequency = `SELECT DISTINCT ?o (COUNT(?s) AS ?frequency)
WHERE { ?s a ?o . }
GROUP BY ?o
ORDER BY DESC(?frequency)`

// QueryLiteralPredicates is Q4.
const QueryLiteralPredicates = `SELECT DISTINCT ?p (COUNT(?o) AS ?frequency)
WHERE {
  ?s ?p ?o .
  FILTER (isliteral(?o))
}
GROUP BY ?p
ORDER BY DESC(?frequency)`

// QueryPredicateProbe is Q5: does this predicate have any literal in the
// target language under the length cap?
func QueryPredicateProbe(pred string, lang string, maxLen int) string {
	return fmt.Sprintf(`SELECT DISTINCT ?o
WHERE {
  ?s <%s> ?o .
  FILTER (isliteral(?o) && lang(?o) = '%s' && strlen(str(?o)) < %d)
}
LIMIT 1`, pred, lang, maxLen)
}

// QueryLiteralsByClass is Q6: literals of a predicate restricted to one
// class of the hierarchy, paginated (the paper's Q6 plus the LIMIT/OFFSET
// of Q7, which it applies "to increase the likelihood that this query
// will succeed").
func QueryLiteralsByClass(class, pred, lang string, maxLen, limit, offset int) string {
	return fmt.Sprintf(`SELECT DISTINCT ?o
WHERE {
  ?s a <%s> .
  ?s <%s> ?o .
  FILTER (isliteral(?o) && lang(?o) = '%s' && strlen(str(?o)) < %d)
}
LIMIT %d
OFFSET %d`, class, pred, lang, maxLen, limit, offset)
}

// QuerySignificantLiterals is Q8: literals ranked by the incoming-edge
// count of the entity they describe (Definition 1), per class and
// predicate, paginated.
func QuerySignificantLiterals(class, pred, lang string, maxLen, limit, offset int) string {
	return fmt.Sprintf(`SELECT DISTINCT ?o (COUNT(?subject) AS ?frequency)
WHERE {
  ?s a <%s> .
  ?subject ?p ?s .
  ?s <%s> ?o .
  FILTER (lang(?o) = '%s' && strlen(str(?o)) < %d)
}
GROUP BY ?o
ORDER BY DESC(?frequency)
LIMIT %d
OFFSET %d`, class, pred, lang, maxLen, limit, offset)
}

// QueryWarehouseLiterals is Q9: the unrestricted literal scan usable in
// the warehousing architecture where no timeout applies.
func QueryWarehouseLiterals(lang string, maxLen, limit, offset int) string {
	return fmt.Sprintf(`SELECT DISTINCT ?o
WHERE {
  ?s ?p ?o .
  FILTER (isliteral(?o) && lang(?o) = '%s' && strlen(str(?o)) < %d)
}
LIMIT %d
OFFSET %d`, lang, maxLen, limit, offset)
}

// QueryWarehouseSignificant is Q10: unrestricted significance scan for
// the warehousing architecture.
func QueryWarehouseSignificant(lang string, maxLen, limit, offset int) string {
	return fmt.Sprintf(`SELECT DISTINCT ?o (COUNT(?s1) AS ?frequency)
WHERE {
  ?s1 ?p ?s2 .
  ?s2 ?p2 ?o .
  FILTER (isliteral(?o) && lang(?o) = '%s' && strlen(str(?o)) < %d)
}
GROUP BY ?o
ORDER BY DESC(?frequency)
LIMIT %d
OFFSET %d`, lang, maxLen, limit, offset)
}
