package rdf

import (
	"encoding/binary"
	"fmt"
)

// Binary term codec shared by the durable-storage layer: snapshot
// dictionary sections and WAL records both serialize terms with it. The
// encoding is one kind byte followed by the three lexical components as
// uvarint-length-prefixed byte strings:
//
//	kind(u8) | len(value) value | len(lang) lang | len(datatype) datatype
//
// It is not self-delimiting beyond its own fields and carries no
// checksum; framing and integrity are the container format's job.

// AppendTerm appends the binary encoding of t to b and returns the
// extended slice.
func AppendTerm(b []byte, t Term) []byte {
	b = append(b, byte(t.Kind))
	b = binary.AppendUvarint(b, uint64(len(t.Value)))
	b = append(b, t.Value...)
	b = binary.AppendUvarint(b, uint64(len(t.Lang)))
	b = append(b, t.Lang...)
	b = binary.AppendUvarint(b, uint64(len(t.Datatype)))
	b = append(b, t.Datatype...)
	return b
}

// AppendTriple appends the binary encodings of the triple's three terms.
func AppendTriple(b []byte, tr Triple) []byte {
	b = AppendTerm(b, tr.S)
	b = AppendTerm(b, tr.P)
	b = AppendTerm(b, tr.O)
	return b
}

// DecodeTerm decodes one term from the front of b, returning the term
// and the number of bytes consumed. Malformed input (unknown kind,
// lengths running past the buffer) returns an error, never a panic —
// the durable layer decodes data that may have been corrupted on disk.
func DecodeTerm(b []byte) (Term, int, error) {
	if len(b) == 0 {
		return Term{}, 0, fmt.Errorf("rdf: decoding term: empty input")
	}
	k := TermKind(b[0])
	if k != KindIRI && k != KindLiteral && k != KindBlank {
		return Term{}, 0, fmt.Errorf("rdf: decoding term: invalid kind %d", b[0])
	}
	n := 1
	value, sz, err := decodeString(b[n:])
	if err != nil {
		return Term{}, 0, err
	}
	n += sz
	lang, sz, err := decodeString(b[n:])
	if err != nil {
		return Term{}, 0, err
	}
	n += sz
	datatype, sz, err := decodeString(b[n:])
	if err != nil {
		return Term{}, 0, err
	}
	n += sz
	return Term{Kind: k, Value: value, Lang: lang, Datatype: datatype}, n, nil
}

// DecodeTriple decodes three consecutive terms from the front of b.
func DecodeTriple(b []byte) (Triple, int, error) {
	var tr Triple
	n := 0
	for _, dst := range []*Term{&tr.S, &tr.P, &tr.O} {
		t, sz, err := DecodeTerm(b[n:])
		if err != nil {
			return Triple{}, 0, err
		}
		*dst = t
		n += sz
	}
	return tr, n, nil
}

func decodeString(b []byte) (string, int, error) {
	l, sz := binary.Uvarint(b)
	if sz <= 0 {
		return "", 0, fmt.Errorf("rdf: decoding term: bad length prefix")
	}
	if l > uint64(len(b)-sz) {
		return "", 0, fmt.Errorf("rdf: decoding term: length %d exceeds remaining %d bytes", l, len(b)-sz)
	}
	return string(b[sz : sz+int(l)]), sz + int(l), nil
}
