package bootstrap

import (
	"context"
	"errors"
	"sort"
	"strings"
	"time"

	"sapphire/internal/bins"
	"sapphire/internal/endpoint"
	"sapphire/internal/rdf"
	"sapphire/internal/sparql"
	"sapphire/internal/store"
	"sapphire/internal/suffixtree"
)

// Config mirrors the paper's initialization parameters.
type Config struct {
	// MaxLiteralLength caps cached literals (paper: 80 characters).
	MaxLiteralLength int
	// Language restricts cached literals (paper: "en").
	Language string
	// PageSize is the LIMIT used for paginated retrieval queries.
	PageSize int
	// QueryBudget caps the number of SPARQL queries issued to the
	// endpoint; 0 means unlimited. The paper lets the user set this.
	QueryBudget int
	// SuffixTreeCapacity caps the literals indexed in the suffix tree
	// (paper: 40K significant literals for DBpedia).
	SuffixTreeCapacity int
	// TopPredicates limits literal retrieval to the most frequent
	// literal predicates; 0 means all.
	TopPredicates int
}

// DefaultConfig returns the paper's parameters scaled to simulation size.
func DefaultConfig() Config {
	return Config{
		MaxLiteralLength:   80,
		Language:           "en",
		PageSize:           500,
		QueryBudget:        0,
		SuffixTreeCapacity: 2000,
		TopPredicates:      0,
	}
}

// Stats records what initialization did, matching the numbers reported at
// the end of Section 5 (queries issued, timeouts, tree size, bins).
type Stats struct {
	QueriesIssued       int
	LiteralQueries      int
	SignificanceQueries int
	Timeouts            int
	PredicateCount      int
	LiteralCount        int
	SignificantCount    int
	ResidualCount       int
	BinCount            int
	TreeNodes           int
	TreeBytes           int
	UsedHierarchy       bool
	BudgetExhausted     bool
	Duration            time.Duration
}

// Cache is the initialized per-endpoint data the Predictive User Model
// operates on.
type Cache struct {
	// Endpoint is the name of the endpoint this cache describes.
	Endpoint string
	// Predicates are all predicate IRIs, most frequent first.
	Predicates []rdf.Term
	// Tree indexes predicate display names and the most significant
	// literals for O(|t|+z) completion lookups.
	Tree *suffixtree.Tree
	// Bins holds the residual literals bucketed by length.
	Bins *bins.Bins
	// Stats describes the initialization run.
	Stats Stats

	// displayToPred maps a display string back to the predicates it
	// names (several IRIs can share a local name).
	displayToPred map[string][]rdf.Term
	// literalTerm maps a cached literal's lexical form to its full term
	// (restoring language tags when the PUM builds queries).
	literalTerm map[string]rdf.Term
	// inTree marks strings indexed in the suffix tree.
	inTree map[string]bool
}

// PredicatesFor returns the predicate IRIs displayed as s (the local name
// shown in completion suggestions).
func (c *Cache) PredicatesFor(s string) []rdf.Term { return c.displayToPred[s] }

// LiteralTerm returns the full cached term for a literal lexical form,
// and whether it is cached.
func (c *Cache) LiteralTerm(lex string) (rdf.Term, bool) {
	t, ok := c.literalTerm[lex]
	return t, ok
}

// Literals returns the lexical forms of all cached literals, sorted.
func (c *Cache) Literals() []string {
	out := make([]string, 0, len(c.literalTerm))
	for lex := range c.literalTerm {
		out = append(out, lex)
	}
	sort.Strings(out)
	return out
}

// IsPredicateDisplay reports whether s is a predicate display name.
func (c *Cache) IsPredicateDisplay(s string) bool {
	return len(c.displayToPred[s]) > 0
}

// InSuffixTree reports whether the string was indexed in the suffix tree
// (used by the hit-ratio experiment).
func (c *Cache) InSuffixTree(s string) bool { return c.inTree[s] }

// DisplayName renders a predicate IRI the way the UI shows it: the local
// name with camel-case split into spaces ("almaMater" → "alma mater").
func DisplayName(p rdf.Term) string {
	s := p.Value
	if i := strings.LastIndexAny(s, "/#"); i >= 0 {
		s = s[i+1:]
	}
	var b strings.Builder
	for i, r := range s {
		if i > 0 && r >= 'A' && r <= 'Z' {
			b.WriteByte(' ')
		}
		if r >= 'A' && r <= 'Z' {
			r += 'a' - 'A'
		}
		b.WriteRune(r)
	}
	return b.String()
}

// initializer carries one initialization run.
type initializer struct {
	ctx   context.Context
	ep    endpoint.Endpoint
	cfg   Config
	stats Stats

	literals map[string]rdf.Term // lexical form → term
	sig      map[string]int      // lexical form → significance score
}

// Initialize runs the Section 5 procedure against an endpoint and builds
// the cache. Endpoint timeouts are survived by descending the class
// hierarchy; the query budget, when set, bounds total endpoint load.
func Initialize(ctx context.Context, ep endpoint.Endpoint, cfg Config) (*Cache, error) {
	start := time.Now()
	init := &initializer{
		ctx:      ctx,
		ep:       ep,
		cfg:      cfg,
		literals: make(map[string]rdf.Term),
		sig:      make(map[string]int),
	}
	preds, err := init.fetchPredicates()
	if err != nil {
		return nil, err
	}
	litPreds, err := init.fetchLiteralPredicates()
	if err != nil {
		return nil, err
	}
	hier, err := init.fetchHierarchy()
	if err != nil {
		return nil, err
	}
	init.stats.UsedHierarchy = hier != nil
	classes := init.classOrder(hier)
	init.collectLiterals(litPreds, hier, classes)
	init.collectSignificance(litPreds, hier, classes)
	c := init.buildCache(ep.Name(), preds)
	c.Stats.Duration = time.Since(start)
	return c, nil
}

// query issues one SPARQL query, counting it against the budget and
// recording timeouts. A nil result with nil error means the budget is
// exhausted.
func (in *initializer) query(q string) (*sparql.Results, error) {
	if in.cfg.QueryBudget > 0 && in.stats.QueriesIssued >= in.cfg.QueryBudget {
		in.stats.BudgetExhausted = true
		return nil, nil
	}
	in.stats.QueriesIssued++
	res, err := in.ep.Query(in.ctx, q)
	if err != nil {
		if errors.Is(err, endpoint.ErrTimeout) || errors.Is(err, endpoint.ErrRejected) {
			in.stats.Timeouts++
			return nil, nil // survivable: caller descends or skips
		}
		return nil, err
	}
	return res, nil
}

func (in *initializer) fetchPredicates() ([]rdf.Term, error) {
	res, err := in.query(QueryPredicatesByFrequency)
	if err != nil || res == nil {
		return nil, err
	}
	out := make([]rdf.Term, 0, len(res.Rows))
	for _, row := range res.Rows {
		out = append(out, row["p"])
	}
	in.stats.PredicateCount = len(out)
	return out, nil
}

func (in *initializer) fetchLiteralPredicates() ([]rdf.Term, error) {
	res, err := in.query(QueryLiteralPredicates)
	if err != nil || res == nil {
		return nil, err
	}
	var out []rdf.Term
	for _, row := range res.Rows {
		p := row["p"]
		// Q5 probe: keep only predicates with usable literals.
		probe, err := in.query(QueryPredicateProbe(p.Value, in.cfg.Language, in.cfg.MaxLiteralLength))
		if err != nil {
			return nil, err
		}
		if probe != nil && len(probe.Rows) > 0 {
			out = append(out, p)
		}
		if in.cfg.TopPredicates > 0 && len(out) >= in.cfg.TopPredicates {
			break
		}
	}
	return out, nil
}

// fetchHierarchy retrieves the class hierarchy (Q2) or nil when the
// dataset has none, in which case the caller falls back to Q3 types.
func (in *initializer) fetchHierarchy() (*store.ClassHierarchy, error) {
	res, err := in.query(QueryClassHierarchy)
	if err != nil || res == nil {
		return nil, err
	}
	if len(res.Rows) == 0 {
		return nil, nil
	}
	h := &store.ClassHierarchy{
		Children: make(map[rdf.Term][]rdf.Term),
		Parents:  make(map[rdf.Term][]rdf.Term),
	}
	nodes := make(map[rdf.Term]bool)
	for _, row := range res.Rows {
		sub, super := row["class"], row["subclass"]
		h.Children[super] = append(h.Children[super], sub)
		h.Parents[sub] = append(h.Parents[sub], super)
		nodes[sub], nodes[super] = true, true
	}
	for n := range nodes {
		if len(h.Parents[n]) == 0 {
			h.Roots = append(h.Roots, n)
		}
	}
	sort.Slice(h.Roots, func(i, j int) bool { return h.Roots[i].Compare(h.Roots[j]) < 0 })
	for k := range h.Children {
		cs := h.Children[k]
		sort.Slice(cs, func(i, j int) bool { return cs[i].Compare(cs[j]) < 0 })
	}
	return h, nil
}

// classOrder returns the flat class list for the no-hierarchy fallback:
// rdf:type objects by frequency (Q3).
func (in *initializer) classOrder(hier *store.ClassHierarchy) []rdf.Term {
	if hier != nil {
		return nil
	}
	res, err := in.query(QueryTypesByFrequency)
	if err != nil || res == nil {
		return nil
	}
	out := make([]rdf.Term, 0, len(res.Rows))
	for _, row := range res.Rows {
		out = append(out, row["o"])
	}
	return out
}

// collectLiterals implements the literal retrieval walk: per predicate,
// descend the hierarchy from the roots; a timeout descends to the
// subclasses, success prunes the subtree.
func (in *initializer) collectLiterals(litPreds []rdf.Term, hier *store.ClassHierarchy, classes []rdf.Term) {
	for _, pred := range litPreds {
		if in.stats.BudgetExhausted {
			return
		}
		if hier != nil {
			hier.Walk(func(class rdf.Term, _ int) bool {
				if in.stats.BudgetExhausted {
					return false
				}
				ok := in.pagedLiterals(class, pred)
				// Success prunes (returning false stops descent); a
				// timeout descends into subclasses.
				return !ok
			})
			continue
		}
		for _, class := range classes {
			if in.stats.BudgetExhausted {
				return
			}
			in.pagedLiterals(class, pred)
		}
	}
}

// pagedLiterals pulls all pages of Q6/Q7 for one (class, predicate) pair.
// It reports whether retrieval succeeded (no timeout).
func (in *initializer) pagedLiterals(class, pred rdf.Term) bool {
	for offset := 0; ; offset += in.cfg.PageSize {
		q := QueryLiteralsByClass(class.Value, pred.Value, in.cfg.Language, in.cfg.MaxLiteralLength, in.cfg.PageSize, offset)
		in.stats.LiteralQueries++
		res, err := in.query(q)
		if err != nil {
			return false
		}
		if res == nil {
			// Timeout or budget: caller descends the hierarchy.
			return false
		}
		for _, row := range res.Rows {
			o := row["o"]
			if o.IsLiteral() {
				in.literals[o.Value] = o
			}
		}
		if len(res.Rows) < in.cfg.PageSize {
			return true
		}
	}
}

// collectSignificance runs the Q8 walk accumulating Definition 1 scores.
func (in *initializer) collectSignificance(litPreds []rdf.Term, hier *store.ClassHierarchy, classes []rdf.Term) {
	walk := func(class rdf.Term) bool {
		if in.stats.BudgetExhausted {
			return false
		}
		return in.pagedSignificance(class, litPreds)
	}
	if hier != nil {
		hier.Walk(func(class rdf.Term, _ int) bool {
			ok := walk(class)
			return !ok
		})
		return
	}
	for _, class := range classes {
		walk(class)
	}
}

// pagedSignificance pulls Q8 pages for one class across the literal
// predicates, reporting success.
func (in *initializer) pagedSignificance(class rdf.Term, litPreds []rdf.Term) bool {
	allOK := true
	for _, pred := range litPreds {
		for offset := 0; ; offset += in.cfg.PageSize {
			q := QuerySignificantLiterals(class.Value, pred.Value, in.cfg.Language, in.cfg.MaxLiteralLength, in.cfg.PageSize, offset)
			in.stats.SignificanceQueries++
			res, err := in.query(q)
			if err != nil || res == nil {
				allOK = false
				break
			}
			for _, row := range res.Rows {
				o := row["o"]
				n := 0
				if f, ok := row["frequency"]; ok {
					n = atoiSafe(f.Value)
				}
				if o.IsLiteral() && n > in.sig[o.Value] {
					in.sig[o.Value] = n
				}
			}
			if len(res.Rows) < in.cfg.PageSize {
				break
			}
		}
		if in.stats.BudgetExhausted {
			return false
		}
	}
	return allOK
}

func atoiSafe(s string) int {
	n := 0
	for _, r := range s {
		if r < '0' || r > '9' {
			return 0
		}
		n = n*10 + int(r-'0')
	}
	return n
}

// buildCache assembles the suffix tree and residual bins from the
// collected data.
func (in *initializer) buildCache(name string, preds []rdf.Term) *Cache {
	c := &Cache{
		Endpoint:      name,
		Predicates:    preds,
		displayToPred: make(map[string][]rdf.Term),
		literalTerm:   in.literals,
		inTree:        make(map[string]bool),
	}
	var treeStrings []string
	for _, p := range preds {
		d := DisplayName(p)
		if len(c.displayToPred[d]) == 0 {
			treeStrings = append(treeStrings, d)
		}
		c.displayToPred[d] = append(c.displayToPred[d], p)
		c.inTree[d] = true
	}
	// Rank literals by significance, most significant first; cap at
	// SuffixTreeCapacity.
	type scored struct {
		lex   string
		score int
	}
	ranked := make([]scored, 0, len(in.sig))
	for lex, s := range in.sig {
		if _, cached := in.literals[lex]; cached {
			ranked = append(ranked, scored{lex, s})
		}
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].score != ranked[j].score {
			return ranked[i].score > ranked[j].score
		}
		return ranked[i].lex < ranked[j].lex
	})
	capacity := in.cfg.SuffixTreeCapacity
	if capacity <= 0 {
		capacity = len(ranked)
	}
	for i, r := range ranked {
		if i >= capacity {
			break
		}
		treeStrings = append(treeStrings, r.lex)
		c.inTree[r.lex] = true
	}
	c.Tree = suffixtree.New(treeStrings)
	// Residual literals: everything cached but not in the tree.
	var residual []string
	for lex := range in.literals {
		if !c.inTree[lex] {
			residual = append(residual, lex)
		}
	}
	sort.Strings(residual)
	c.Bins = bins.New(residual)

	in.stats.LiteralCount = len(in.literals)
	in.stats.SignificantCount = min(capacity, len(ranked))
	in.stats.ResidualCount = c.Bins.Len()
	in.stats.BinCount = c.Bins.BinCount()
	in.stats.TreeNodes = c.Tree.NodeCount()
	in.stats.TreeBytes = c.Tree.ApproxBytes()
	c.Stats = in.stats
	return c
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
