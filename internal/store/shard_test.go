package store

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"sapphire/internal/rdf"
)

// shardedSubjects adds one triple per subject until the store has seen
// subjects in at least two distinct shards, returning one subject from
// shard A and one from a different shard B.
func shardedSubjects(t *testing.T, s *Store) (a, b rdf.Term) {
	t.Helper()
	if s.Shards() < 2 {
		t.Fatal("store is not sharded")
	}
	byShard := make(map[int]rdf.Term)
	for i := 0; i < 256; i++ {
		subj := iri(fmt.Sprintf("subj-%d", i))
		s.MustAdd(tri(subj, iri("p"), lit(fmt.Sprint(i))))
		id, ok := s.Lookup(subj)
		if !ok {
			t.Fatalf("subject %v not interned", subj)
		}
		byShard[s.shardIndex(id)] = subj
		if len(byShard) >= 2 {
			var out []rdf.Term
			for _, v := range byShard {
				out = append(out, v)
			}
			return out[0], out[1]
		}
	}
	t.Fatal("could not find subjects in two distinct shards")
	return rdf.Term{}, rdf.Term{}
}

// TestShardIsolationUnderWriteLock is the deterministic half of the
// "commit on shard A never blocks shard B" claim: with shard A's write
// lock held (exactly what a long bulk commit of A's slice does),
// subject-bound reads on shard B must complete. No timing heuristics on
// the success path — the read either returns or the test times out.
func TestShardIsolationUnderWriteLock(t *testing.T) {
	s := NewSharded(4)
	subjA, subjB := shardedSubjects(t, s)
	idA, _ := s.Lookup(subjA)

	shA := s.shardFor(idA)
	shA.mu.Lock() // a bulk commit of shard A holds exactly this lock
	done := make(chan int)
	go func() {
		n := s.Count(subjB, rdf.Term{}, rdf.Term{})
		n += len(s.MatchSlice(subjB, rdf.Term{}, rdf.Term{}))
		done <- n
	}()
	select {
	case n := <-done:
		if n != 2 {
			t.Errorf("shard-B read under shard-A write lock = %d results, want 2", n)
		}
	case <-time.After(5 * time.Second):
		t.Error("subject-bound read on shard B blocked behind shard A's write lock")
	}
	shA.mu.Unlock()
}

// TestShardCommitConcurrentReaders is the -race half: bulk commits land
// continuously while readers hammer subject-bound patterns on other
// shards. Per-shard commit atomicity means a subject-bound read must
// never observe a torn batch — every batch carries fanout triples for
// the probe subject, so its count must stay a multiple of fanout even
// though whole-batch (cross-shard) atomicity no longer holds.
func TestShardCommitConcurrentReaders(t *testing.T) {
	const (
		batches = 30
		fanout  = 8
	)
	s := NewSharded(4)
	probeA, probeB := shardedSubjects(t, s)
	base := s.Count(probeA, rdf.Term{}, rdf.Term{}) // one seed triple each
	grows := iri("grows")

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, probe := range []rdf.Term{probeA, probeB} {
		wg.Add(1)
		go func(probe rdf.Term) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if n := s.Count(probe, grows, rdf.Term{}); n%fanout != 0 {
					t.Errorf("torn batch visible: Count(%v, grows, ?) = %d, not a multiple of %d", probe, n, fanout)
					return
				}
				got := 0
				s.Match(probe, grows, rdf.Term{}, func(rdf.Triple) bool { got++; return true })
				if got%fanout != 0 {
					t.Errorf("torn batch visible: Match(%v, grows, ?) streamed %d rows", probe, got)
					return
				}
			}
		}(probe)
	}

	l := NewBulkLoader(s)
	for bn := 0; bn < batches; bn++ {
		for i := 0; i < fanout; i++ {
			l.MustAdd(tri(probeA, grows, lit(fmt.Sprintf("a%d-%d", bn, i))))
			l.MustAdd(tri(probeB, grows, lit(fmt.Sprintf("b%d-%d", bn, i))))
		}
		if n := l.Commit(); n != 2*fanout {
			t.Fatalf("batch %d committed %d, want %d", bn, n, 2*fanout)
		}
	}
	close(stop)
	wg.Wait()
	if got := s.Count(probeA, grows, rdf.Term{}); got != batches*fanout {
		t.Fatalf("probeA rows = %d, want %d (base %d)", got, batches*fanout, base)
	}
}

// TestAggregateEpoch pins the sharded epoch contract: the aggregate
// moves iff some shard's triple set changed — adds to any shard move
// it, duplicates / staging / no-op commits do not, and a multi-shard
// commit moves it by at least one (per touched shard, not per triple).
func TestAggregateEpoch(t *testing.T) {
	s := NewSharded(4)
	if s.Epoch() != 0 {
		t.Fatalf("fresh store epoch = %d", s.Epoch())
	}
	subjA, subjB := shardedSubjects(t, s)
	e := s.Epoch()
	if e == 0 {
		t.Fatal("epoch did not advance on seeding adds")
	}

	// Duplicate adds on both shards: no change anywhere, no movement.
	for _, subj := range []rdf.Term{subjA, subjB} {
		if added, _ := s.Add(tri(subj, iri("p"), lit("dup"))); !added {
			t.Fatalf("setup: triple unexpectedly present")
		}
	}
	e = s.Epoch()
	for _, subj := range []rdf.Term{subjA, subjB} {
		if added, _ := s.Add(tri(subj, iri("p"), lit("dup"))); added {
			t.Fatal("duplicate reported as added")
		}
	}
	if s.Epoch() != e {
		t.Errorf("epoch moved on duplicate adds: %d -> %d", e, s.Epoch())
	}

	// Staging alone must not move the aggregate; the commit must.
	l := NewBulkLoader(s)
	l.MustAdd(tri(subjA, iri("q"), lit("staged-a")))
	l.MustAdd(tri(subjB, iri("q"), lit("staged-b")))
	if s.Epoch() != e {
		t.Errorf("epoch moved on staging: %d -> %d", e, s.Epoch())
	}
	if n := l.Commit(); n != 2 {
		t.Fatalf("Commit = %d, want 2", n)
	}
	e2 := s.Epoch()
	if e2 <= e {
		t.Errorf("epoch did not advance on commit: %d -> %d", e, e2)
	}

	// No-op commits (empty, duplicate-only) leave every shard alone.
	if n := l.Commit(); n != 0 {
		t.Fatalf("empty Commit = %d", n)
	}
	l.MustAdd(tri(subjA, iri("q"), lit("staged-a")))
	l.MustAdd(tri(subjB, iri("q"), lit("staged-b")))
	if n := l.Commit(); n != 0 {
		t.Fatalf("duplicate-only Commit = %d", n)
	}
	if s.Epoch() != e2 {
		t.Errorf("epoch moved on no-op commits: %d -> %d", e2, s.Epoch())
	}

	// A change confined to one shard moves the aggregate exactly once.
	s.MustAdd(tri(subjA, iri("q"), lit("only-a")))
	if got := s.Epoch(); got != e2+1 {
		t.Errorf("single-shard add moved aggregate by %d, want 1", got-e2)
	}
}

// shardWorkload replays one deterministic mixed workload (bulk batches,
// online adds, duplicates, multi-commit staging) into st.
func shardWorkload(t *testing.T, st *Store) {
	t.Helper()
	triples := bulkTestTriples(3000, 23)
	third := len(triples) / 3
	l := NewBulkLoader(st)
	if err := l.AddAll(triples[:third]); err != nil {
		t.Fatal(err)
	}
	l.Commit()
	// Online interleaving: a duplicate plus fresh triples via Add.
	st.MustAdd(triples[0])
	st.MustAdd(tri(iri("online"), iri("knows"), iri("o1")))
	for _, tr := range triples[third : 2*third] {
		if err := l.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	l.Commit()
	if err := st.AddAll(triples[2*third:]); err != nil {
		t.Fatal(err)
	}
}

// TestShardEquivalence pins the iteration contract across shard counts:
// for every pattern shape — including the wildcard-subject shapes that
// fan out and merge across shards — a multi-shard store must stream
// exactly the same triples in exactly the same order as a 1-shard store
// (which is the pre-sharding implementation), and every count, subject,
// and predicate view must agree.
func TestShardEquivalence(t *testing.T) {
	single := NewShardedDict(1, 1)
	shardWorkload(t, single)
	for _, cfg := range []struct{ shards, dictShards int }{
		{2, 1}, {3, 8}, {8, 1}, {8, 8},
	} {
		shards := cfg.shards
		t.Run(fmt.Sprintf("shards=%d,dict=%d", shards, cfg.dictShards), func(t *testing.T) {
			multi := NewShardedDict(shards, cfg.dictShards)
			shardWorkload(t, multi)

			if single.Len() != multi.Len() {
				t.Fatalf("Len: single %d, multi %d", single.Len(), multi.Len())
			}
			if got, want := dumpAll(multi), dumpAll(single); !reflect.DeepEqual(got, want) {
				t.Fatal("full-scan iteration differs from 1-shard store")
			}
			if got, want := multi.Subjects(), single.Subjects(); !reflect.DeepEqual(got, want) {
				t.Fatal("Subjects differ")
			}
			if got, want := multi.Predicates(), single.Predicates(); !reflect.DeepEqual(got, want) {
				t.Fatal("Predicates differ")
			}

			var z rdf.Term
			probes := bulkTestTriples(3000, 23)[:60]
			for _, tr := range probes {
				shapes := [][3]rdf.Term{
					{tr.S, tr.P, tr.O}, {tr.S, tr.P, z}, {tr.S, z, tr.O}, {z, tr.P, tr.O},
					{tr.S, z, z}, {z, tr.P, z}, {z, z, tr.O}, {z, z, z},
				}
				for _, sh := range shapes {
					want := single.MatchSlice(sh[0], sh[1], sh[2])
					got := multi.MatchSlice(sh[0], sh[1], sh[2])
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("Match(%v): order or content differs from 1-shard store\n got %d rows, want %d",
							sh, len(got), len(want))
					}
					if gc, wc := multi.Count(sh[0], sh[1], sh[2]), single.Count(sh[0], sh[1], sh[2]); gc != wc {
						t.Fatalf("Count(%v) = %d, want %d", sh, gc, wc)
					}
				}
			}

			// Early termination must behave identically mid-merge.
			for _, sh := range [][3]rdf.Term{{z, iri("knows"), z}, {z, z, z}} {
				for _, limit := range []int{1, 7, 100} {
					var got, want []rdf.Triple
					collect := func(dst *[]rdf.Triple) func(rdf.Triple) bool {
						return func(tr rdf.Triple) bool {
							*dst = append(*dst, tr)
							return len(*dst) < limit
						}
					}
					single.Match(sh[0], sh[1], sh[2], collect(&want))
					multi.Match(sh[0], sh[1], sh[2], collect(&got))
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("early-stop Match(%v, limit %d) differs", sh, limit)
					}
				}
			}

			// Aggregate views must agree too.
			if got, want := multi.PredicateFrequencies(), single.PredicateFrequencies(); !reflect.DeepEqual(got, want) {
				t.Fatal("PredicateFrequencies differ")
			}
			if got, want := multi.LiteralPredicateFrequencies(), single.LiteralPredicateFrequencies(); !reflect.DeepEqual(got, want) {
				t.Fatal("LiteralPredicateFrequencies differ")
			}
			if got, want := multi.DistinctLiterals(), single.DistinctLiterals(); got != want {
				t.Fatalf("DistinctLiterals = %d, want %d", got, want)
			}
			if got, want := multi.LiteralSignificance(), single.LiteralSignificance(); !reflect.DeepEqual(got, want) {
				t.Fatal("LiteralSignificance differs")
			}
		})
	}
}

// TestDefaultShards pins the default wiring: New() uses the process
// default (GOMAXPROCS at init), SetDefaultShards redirects subsequent
// News, and clamping holds at the floor.
func TestDefaultShards(t *testing.T) {
	orig := DefaultShards()
	defer SetDefaultShards(orig)
	if orig < 1 {
		t.Fatalf("DefaultShards = %d", orig)
	}
	if got := New().Shards(); got != orig {
		t.Fatalf("New().Shards() = %d, want %d", got, orig)
	}
	SetDefaultShards(3)
	if got := New().Shards(); got != 3 {
		t.Fatalf("after SetDefaultShards(3): %d", got)
	}
	SetDefaultShards(0)
	if got := New().Shards(); got != 1 {
		t.Fatalf("SetDefaultShards(0) should clamp to 1, got %d", got)
	}
	if got := NewSharded(-5).Shards(); got != 1 {
		t.Fatalf("NewSharded(-5).Shards() = %d, want 1", got)
	}
}

// TestShardEquivalenceWithRanks pins the rank-table compare path: the
// smaller equivalence workloads stay under the rank build floor, so
// this one loads enough distinct terms to cross it, forces a build on
// the sharded store, and asserts the label-driven merge still streams
// byte-identically to the 1-shard store — then interns more terms (now
// unlabeled, exercising the mixed label/string fallback) and checks
// again, before and after a second build.
func TestShardEquivalenceWithRanks(t *testing.T) {
	const n = 3000 // 2 triples/subject, distinct literal objects: > 4096 terms
	p := iri("p")
	typ := iri("type")
	build := func(shards int) *Store {
		s := NewShardedDict(shards, 4)
		l := NewBulkLoader(s)
		for i := 0; i < n; i++ {
			subj := iri(fmt.Sprintf("rs%d", i))
			l.MustAdd(tri(subj, typ, iri("C")))
			l.MustAdd(tri(subj, p, lit(fmt.Sprintf("rank value %d", i))))
		}
		l.Commit()
		return s
	}
	single := build(1)
	multi := build(8)
	if multi.dict.terms.Load() < rankMinTerms {
		t.Fatalf("workload too small to cross the rank floor: %d terms", multi.dict.terms.Load())
	}
	multi.dict.buildRanks()
	if multi.dict.ranks.Load() == nil {
		t.Fatal("rank build published no table")
	}

	check := func(stage string) {
		t.Helper()
		var z rdf.Term
		for _, sh := range [][3]rdf.Term{
			{z, p, z}, {z, typ, z}, {z, z, lit("rank value 7")}, {z, z, z},
		} {
			want := single.MatchSlice(sh[0], sh[1], sh[2])
			got := multi.MatchSlice(sh[0], sh[1], sh[2])
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: Match(%v) differs from 1-shard store (%d vs %d rows)",
					stage, sh, len(got), len(want))
			}
		}
		if got, want := multi.Subjects(), single.Subjects(); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: Subjects differ", stage)
		}
		if got, want := multi.Predicates(), single.Predicates(); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: Predicates differ", stage)
		}
	}
	check("labeled")

	// Fresh terms after the build are unlabeled: merges now mix label
	// compares with the string fallback. Interleave new literals between
	// the old ones ("rank valuf ..." sorts after every "rank value ...",
	// "rank valud ..." before) to make the mixing real.
	for _, st := range []*Store{single, multi} {
		for i := 0; i < 64; i++ {
			subj := iri(fmt.Sprintf("fresh%d", i))
			st.MustAdd(tri(subj, p, lit(fmt.Sprintf("rank valud %d", i))))
			st.MustAdd(tri(subj, typ, iri("C")))
		}
	}
	check("mixed")

	multi.dict.buildRanks()
	check("relabeled")
}
