package userstudy

import (
	"context"
	"testing"

	"sapphire/internal/bootstrap"
	"sapphire/internal/datagen"
	"sapphire/internal/endpoint"
	"sapphire/internal/federation"
	"sapphire/internal/pum"
	"sapphire/internal/qald"
)

var cached struct {
	res *Result
	d   *datagen.Dataset
}

func runStudy(t testing.TB) (*Result, *datagen.Dataset) {
	t.Helper()
	if cached.res != nil {
		return cached.res, cached.d
	}
	d := datagen.Generate(datagen.SmallConfig())
	ep := endpoint.NewLocal("synthetic-dbpedia", d.Store, endpoint.Limits{})
	cache, err := bootstrap.Initialize(context.Background(), ep, bootstrap.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p := pum.New(cache, federation.New(ep), nil, pum.DefaultConfig())
	res, err := Run(context.Background(), p, d.Store, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cached.res = res
	cached.d = d
	return res, d
}

func TestStudyShape(t *testing.T) {
	res, _ := runStudy(t)
	for _, sys := range []string{"Sapphire", "QAKiS"} {
		for _, diff := range []qald.Difficulty{qald.Easy, qald.Medium, qald.Difficult} {
			s := res.Stats[sys][diff]
			t.Logf("%-8s %-9s success=%5.1f%%±%4.1f coverage=%5.1f%% attempts=%.1f minutes=%.1f",
				sys, diff, s.SuccessRate(), s.ConfidenceInterval95(), s.CoveragePct(),
				s.AvgAttempts(), s.AvgMinutes())
			if s.Given != 16*3 {
				t.Errorf("%s/%s: given = %d, want 48", sys, diff, s.Given)
			}
		}
	}
	t.Logf("QSM usage: any=%.0f%% altPred=%.0f%% altLit=%.0f%% relax=%.0f%%",
		Pct(res.Usage.UsedSuggestion, res.Usage.Questions),
		Pct(res.Usage.AltPredicate, res.Usage.Questions),
		Pct(res.Usage.AltLiteral, res.Usage.Questions),
		Pct(res.Usage.Relaxation, res.Usage.Questions))
}

// TestFigure8Shape: Sapphire ≥ QAKiS everywhere, with a widening gap on
// medium and difficult questions.
func TestFigure8Shape(t *testing.T) {
	res, _ := runStudy(t)
	s, q := res.Stats["Sapphire"], res.Stats["QAKiS"]
	for _, diff := range []qald.Difficulty{qald.Medium, qald.Difficult} {
		if s[diff].SuccessRate() <= q[diff].SuccessRate() {
			t.Errorf("%s: Sapphire %.1f%% should beat QAKiS %.1f%%",
				diff, s[diff].SuccessRate(), q[diff].SuccessRate())
		}
	}
	gapMedium := s[qald.Medium].SuccessRate() - q[qald.Medium].SuccessRate()
	gapEasy := s[qald.Easy].SuccessRate() - q[qald.Easy].SuccessRate()
	if gapMedium <= gapEasy {
		t.Errorf("gap should widen with difficulty: easy %.1f, medium %.1f", gapEasy, gapMedium)
	}
	if s[qald.Medium].SuccessRate() < 60 {
		t.Errorf("Sapphire medium success %.1f%%, paper reports >80%%", s[qald.Medium].SuccessRate())
	}
}

// TestFigure9Shape: every question answered by at least one participant
// with Sapphire; QAKiS leaves medium/difficult gaps.
func TestFigure9Shape(t *testing.T) {
	res, _ := runStudy(t)
	s, q := res.Stats["Sapphire"], res.Stats["QAKiS"]
	for _, diff := range []qald.Difficulty{qald.Easy, qald.Medium} {
		if s[diff].CoveragePct() < 99 {
			t.Errorf("Sapphire coverage on %s = %.0f%%, paper reports 100%%", diff, s[diff].CoveragePct())
		}
	}
	// Difficult coverage: the paper reports 100% with human participants;
	// the simulated cohort reaches ≥85% (one question can miss when its
	// few assignees all fumble) — the shape, Sapphire ≫ QAKiS, must hold.
	if s[qald.Difficult].CoveragePct() < 85 {
		t.Errorf("Sapphire difficult coverage = %.0f%%, want ≥85%%", s[qald.Difficult].CoveragePct())
	}
	if q[qald.Difficult].CoveragePct() >= s[qald.Difficult].CoveragePct() {
		t.Error("QAKiS should not match Sapphire's difficult coverage")
	}
}

// TestFigure10Shape: attempt counts are comparable (within ~2x), both
// small.
func TestFigure10Shape(t *testing.T) {
	res, _ := runStudy(t)
	for _, diff := range []qald.Difficulty{qald.Easy, qald.Medium, qald.Difficult} {
		sa := res.Stats["Sapphire"][diff].AvgAttempts()
		if sa < 1 || sa > 5 {
			t.Errorf("Sapphire attempts on %s = %.1f, out of plausible range", diff, sa)
		}
	}
}

// TestFigure11Shape: Sapphire costs more time than QAKiS in every
// category (the paper's trade-off).
func TestFigure11Shape(t *testing.T) {
	res, _ := runStudy(t)
	for _, diff := range []qald.Difficulty{qald.Easy, qald.Medium, qald.Difficult} {
		s := res.Stats["Sapphire"][diff].AvgMinutes()
		q := res.Stats["QAKiS"][diff].AvgMinutes()
		if q == 0 {
			continue // QAKiS answered nothing in this category
		}
		if s <= q {
			t.Errorf("%s: Sapphire %.1f min should exceed QAKiS %.1f min", diff, s, q)
		}
	}
}

// TestQSMUsageShape: the suggestions are actually used (paper: >90% of
// questions used at least one suggestion; relaxation was the most used).
func TestQSMUsageShape(t *testing.T) {
	res, _ := runStudy(t)
	if res.Usage.Questions == 0 {
		t.Fatal("no questions recorded")
	}
	if Pct(res.Usage.UsedSuggestion, res.Usage.Questions) < 30 {
		t.Errorf("suggestion usage = %.0f%%, implausibly low",
			Pct(res.Usage.UsedSuggestion, res.Usage.Questions))
	}
}

func TestStudyDeterministic(t *testing.T) {
	res1, d := runStudy(t)
	ep := endpoint.NewLocal("synthetic-dbpedia", d.Store, endpoint.Limits{})
	cache, err := bootstrap.Initialize(context.Background(), ep, bootstrap.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p := pum.New(cache, federation.New(ep), nil, pum.DefaultConfig())
	res2, err := Run(context.Background(), p, d.Store, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, sys := range []string{"Sapphire", "QAKiS"} {
		for _, diff := range []qald.Difficulty{qald.Easy, qald.Medium, qald.Difficult} {
			if res1.Stats[sys][diff].Answered != res2.Stats[sys][diff].Answered {
				t.Errorf("%s/%s nondeterministic: %d vs %d", sys, diff,
					res1.Stats[sys][diff].Answered, res2.Stats[sys][diff].Answered)
			}
		}
	}
}

func TestCategoryStatsMath(t *testing.T) {
	c := CategoryStats{Given: 10, Answered: 8, AttemptSum: 16, TimeSum: 24,
		AnsweredByAny: 3, QuestionCount: 4,
		successByParticipant: []float64{0.8, 0.8, 0.8, 0.8}}
	if c.SuccessRate() != 80 {
		t.Errorf("SuccessRate = %v", c.SuccessRate())
	}
	if c.AvgAttempts() != 2 {
		t.Errorf("AvgAttempts = %v", c.AvgAttempts())
	}
	if c.AvgMinutes() != 3 {
		t.Errorf("AvgMinutes = %v", c.AvgMinutes())
	}
	if c.CoveragePct() != 75 {
		t.Errorf("CoveragePct = %v", c.CoveragePct())
	}
	if c.ConfidenceInterval95() != 0 {
		t.Errorf("CI of constant values = %v, want 0", c.ConfidenceInterval95())
	}
	var zero CategoryStats
	if zero.SuccessRate() != 0 || zero.AvgAttempts() != 0 || zero.AvgMinutes() != 0 || zero.CoveragePct() != 0 {
		t.Error("zero stats should be 0")
	}
}
