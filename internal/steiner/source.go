// Package steiner implements the query-structure relaxation of Section
// 6.2.2: connecting the literals of a query (and their alternatives)
// through the remote RDF graph by growing an approximate Steiner tree
// with a budgeted, memoized, bidirectional Dijkstra expansion
// (Algorithm 3). Edges whose predicate matches a query predicate (or an
// alternative of one) get weight w_q; all other edges get
// w_default > w_q, so the expansion prefers paths that reuse the user's
// own predicates.
package steiner

import (
	"context"
	"fmt"

	"sapphire/internal/endpoint"
	"sapphire/internal/rdf"
	"sapphire/internal/store"
)

// Source exposes the two expansion queries of the paper: all triples with
// v as object (the only expansion possible for literals) and all triples
// with v as subject. Implementations are expected to be remote; the
// algorithm memoizes and budgets calls.
type Source interface {
	// TriplesWithObject returns triples (?s, ?p, v).
	TriplesWithObject(ctx context.Context, v rdf.Term) ([]rdf.Triple, error)
	// TriplesWithSubject returns triples (v, ?p, ?o). Never called for
	// literals.
	TriplesWithSubject(ctx context.Context, v rdf.Term) ([]rdf.Triple, error)
}

// StoreSource adapts an in-memory store as a Source (warehouse mode).
type StoreSource struct{ Store *store.Store }

// TriplesWithObject implements Source.
func (s StoreSource) TriplesWithObject(_ context.Context, v rdf.Term) ([]rdf.Triple, error) {
	return s.Store.MatchSlice(rdf.Term{}, rdf.Term{}, v), nil
}

// TriplesWithSubject implements Source.
func (s StoreSource) TriplesWithSubject(_ context.Context, v rdf.Term) ([]rdf.Triple, error) {
	return s.Store.MatchSlice(v, rdf.Term{}, rdf.Term{}), nil
}

// EndpointSource adapts a SPARQL endpoint as a Source; each call issues
// one query, which is what the expansion budget counts.
type EndpointSource struct{ Endpoint endpoint.Endpoint }

// TriplesWithObject implements Source.
func (s EndpointSource) TriplesWithObject(ctx context.Context, v rdf.Term) ([]rdf.Triple, error) {
	q := fmt.Sprintf("SELECT ?s ?p WHERE { ?s ?p %s . }", v)
	res, err := s.Endpoint.Query(ctx, q)
	if err != nil {
		return nil, err
	}
	out := make([]rdf.Triple, 0, len(res.Rows))
	for _, row := range res.Rows {
		out = append(out, rdf.Triple{S: row["s"], P: row["p"], O: v})
	}
	return out, nil
}

// TriplesWithSubject implements Source.
func (s EndpointSource) TriplesWithSubject(ctx context.Context, v rdf.Term) ([]rdf.Triple, error) {
	q := fmt.Sprintf("SELECT ?p ?o WHERE { %s ?p ?o . }", v)
	res, err := s.Endpoint.Query(ctx, q)
	if err != nil {
		return nil, err
	}
	out := make([]rdf.Triple, 0, len(res.Rows))
	for _, row := range res.Rows {
		out = append(out, rdf.Triple{S: v, P: row["p"], O: row["o"]})
	}
	return out, nil
}
