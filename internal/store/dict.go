package store

import (
	"sort"
	"sync/atomic"

	"sapphire/internal/rdf"
)

// ID is a dense dictionary identifier for an interned rdf.Term. IDs are
// assigned in first-seen order starting at 1; the zero ID is reserved as
// the Wildcard sentinel so that ID-level pattern matching mirrors the
// zero-Term wildcard convention of the Term-level API.
//
// ID is an alias (not a defined type) so callers outside this package can
// use plain uint32 values without conversions — the sparql evaluator's
// IDGraph fast path relies on that.
type ID = uint32

// Wildcard is the ID-level wildcard: MatchIDs and CountIDs treat it the
// way Match treats a zero rdf.Term.
const Wildcard ID = 0

// dict is the two-way term dictionary: a term→ID hash for interning and
// an ID→term slice for O(1) resolution. The Store's mutex guards the
// term→ID map and all mutation; the ID→term direction is additionally
// published through an atomic snapshot so resolution never needs a lock
// (see termSnapshot), which lets evaluator callbacks running inside a
// MatchIDs read-lock resolve IDs without re-acquiring the mutex.
type dict struct {
	ids   map[rdf.Term]ID
	terms []rdf.Term // terms[0] is the zero Term, backing Wildcard

	// snap is the last published terms slice header. The slice is
	// append-only: an element is fully written before the header that
	// makes it visible is stored, and a published header's elements are
	// never rewritten, so readers of any snapshot see immutable data.
	snap atomic.Pointer[[]rdf.Term]
}

func newDict() *dict {
	d := &dict{
		ids:   make(map[rdf.Term]ID),
		terms: make([]rdf.Term, 1),
	}
	d.publish()
	return d
}

func (d *dict) publish() {
	terms := d.terms
	d.snap.Store(&terms)
}

// intern returns the ID for t, assigning the next dense ID on first
// sight. Caller must hold the store write lock.
func (d *dict) intern(t rdf.Term) ID {
	if id, ok := d.ids[t]; ok {
		return id
	}
	id := ID(len(d.terms))
	d.ids[t] = id
	d.terms = append(d.terms, t)
	d.publish()
	return id
}

// lookup returns the ID for t without interning.
func (d *dict) lookup(t rdf.Term) (ID, bool) {
	id, ok := d.ids[t]
	return id, ok
}

// term resolves an ID back to its term. Unknown IDs (including Wildcard)
// resolve to the zero Term. Caller must hold the store lock; lock-free
// callers use termSnapshot.
func (d *dict) term(id ID) rdf.Term {
	if int(id) < len(d.terms) {
		return d.terms[id]
	}
	return rdf.Term{}
}

// termSnapshot resolves an ID against the last published snapshot
// without locking. Safe to call concurrently with interning and from
// within Match/MatchIDs callbacks.
func (d *dict) termSnapshot(id ID) rdf.Term {
	terms := *d.snap.Load()
	if int(id) < len(terms) {
		return terms[id]
	}
	return rdf.Term{}
}

// index is one permutation of the triple indexes (SPO, POS, or OSP): a
// level-one key → entry map plus the level-one keys maintained in term
// order so wildcard iteration never sorts.
type index struct {
	m    map[ID]*entry
	keys []ID // level-one keys, term-sorted
}

// entry is one level-one slot of an index: level-two key → level-three ID
// list, the level-two keys in term order, and the total number of triples
// underneath (giving O(1) per-key cardinalities).
type entry struct {
	m     map[ID][]ID
	keys  []ID // level-two keys, term-sorted
	total int
}

func newIndex() index {
	return index{m: make(map[ID]*entry)}
}

// add records the (a, b, c) path in the index. The caller guarantees the
// triple is new (the store dedups via the present set), so c is appended
// unconditionally. Key slices are maintained sorted by term order with a
// binary-search insertion: Add is the cold path, Match the hot one.
func (x *index) add(d *dict, a, b, c ID) {
	e := x.m[a]
	if e == nil {
		e = &entry{m: make(map[ID][]ID)}
		x.m[a] = e
		x.keys = insertSorted(d, x.keys, a)
	}
	if _, ok := e.m[b]; !ok {
		e.keys = insertSorted(d, e.keys, b)
	}
	e.m[b] = append(e.m[b], c)
	e.total++
}

// insertSorted inserts id into keys keeping term order.
func insertSorted(d *dict, keys []ID, id ID) []ID {
	t := d.terms[id]
	i := sort.Search(len(keys), func(i int) bool {
		return d.terms[keys[i]].Compare(t) >= 0
	})
	keys = append(keys, 0)
	copy(keys[i+1:], keys[i:])
	keys[i] = id
	return keys
}
