package sparql

import (
	"fmt"
	"testing"

	"sapphire/internal/rdf"
	"sapphire/internal/store"
)

// skewStore builds the canonical planner scenario: a hub predicate
// (`a Person`, n rows — touching it first is the classic bad plan), a
// mid-size predicate (`knows`, n rows but selective once the subject is
// bound), and a needle (`name "Person 7"`, exactly one row).
func skewStore(t testing.TB, n int) *store.Store {
	t.Helper()
	s := store.New()
	l := store.NewBulkLoader(s)
	typ := rdf.NewIRI(rdf.RDFType)
	person := rdf.NewIRI("http://x/Person")
	name := rdf.NewIRI("http://x/name")
	knows := rdf.NewIRI("http://x/knows")
	for i := 0; i < n; i++ {
		subj := rdf.NewIRI(fmt.Sprintf("http://x/p%d", i))
		l.MustAdd(rdf.NewTriple(subj, typ, person))
		l.MustAdd(rdf.NewTriple(subj, name, rdf.NewLangLiteral(fmt.Sprintf("Person %d", i), "en")))
		l.MustAdd(rdf.NewTriple(subj, knows, rdf.NewIRI(fmt.Sprintf("http://x/p%d", (i+1)%n))))
	}
	l.Commit()
	return s
}

// patOrder renders a pattern group as its predicate IRIs in order — a
// compact golden form for join-order assertions.
func patOrder(pats []Pattern) []string {
	out := make([]string, len(pats))
	for i, p := range pats {
		if p.P.IsVar() {
			out[i] = "?" + p.P.Var
		} else {
			out[i] = p.P.Term.Value
		}
	}
	return out
}

func assertOrder(t *testing.T, got []Pattern, want ...string) {
	t.Helper()
	g := patOrder(got)
	if len(g) != len(want) {
		t.Fatalf("plan has %d patterns, want %d: %v", len(g), len(want), g)
	}
	for i := range want {
		if g[i] != want[i] {
			t.Fatalf("plan order %v, want %v", g, want)
		}
	}
}

// TestGreedyPlanSkewedStore is the planner's golden test: on the skewed
// store, a query written worst-first (hub pattern, then the mid-size
// scan, then the needle) must be reordered needle-first, with the
// remaining patterns joined through the now-bound subject. With
// reordering off, the textual order must survive untouched — that
// contrast is exactly what BenchmarkEvalJoinOrder measures.
func TestGreedyPlanSkewedStore(t *testing.T) {
	s := skewStore(t, 1000)
	q := MustParse(`SELECT ?s ?o WHERE {
		?s a <http://x/Person> .
		?s <http://x/knows> ?o .
		?s <http://x/name> "Person 7"@en .
	}`)

	pl, err := newPlan(s, q, true)
	if err != nil {
		t.Fatal(err)
	}
	// Needle (1 row) first; then hub vs knows both cost n/4 with ?s
	// bound — the tie keeps textual order, so the hub precedes knows.
	assertOrder(t, pl.groups[0],
		"http://x/name", rdf.RDFType, "http://x/knows")

	raw, err := newPlan(s, q, false)
	if err != nil {
		t.Fatal(err)
	}
	assertOrder(t, raw.groups[0],
		rdf.RDFType, "http://x/knows", "http://x/name")
}

// TestGreedyPlanAvoidsCartesian pins the cartesian-product penalty: a
// pattern sharing a bound variable is preferred over a cheaper but
// disconnected one, which only runs once no connected pattern is left.
func TestGreedyPlanAvoidsCartesian(t *testing.T) {
	s := skewStore(t, 1000)
	// Needle binds ?a. The `?b a Person` hub is disconnected from ?a;
	// `?a knows ?b` is connected but costs n. Greedy must still take the
	// connected pattern before the cartesian hub.
	q := MustParse(`SELECT ?a ?b WHERE {
		?b a <http://x/Person> .
		?a <http://x/name> "Person 3"@en .
		?a <http://x/knows> ?b .
	}`)
	pl, err := newPlan(s, q, true)
	if err != nil {
		t.Fatal(err)
	}
	assertOrder(t, pl.groups[0],
		"http://x/name", "http://x/knows", rdf.RDFType)
}

// TestGreedyPlanOrdersUnionBranchesAndOptionals pins that reordering is
// applied per pattern group: each UNION branch is ordered on its own,
// and an OPTIONAL block is ordered given everything bound upstream of
// it (its patterns may probe upstream variables).
func TestGreedyPlanOrdersUnionBranchesAndOptionals(t *testing.T) {
	s := skewStore(t, 1000)
	q := MustParse(`SELECT ?x WHERE {
		{ ?x a <http://x/Person> . ?x <http://x/name> "Person 5"@en . }
		UNION
		{ ?x a <http://x/Person> . ?x <http://x/name> "Person 6"@en . }
	}`)
	pl, err := newPlan(s, q, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(pl.groups))
	}
	for _, grp := range pl.groups {
		assertOrder(t, grp, "http://x/name", rdf.RDFType)
	}

	q2 := MustParse(`SELECT ?x ?o WHERE {
		?x <http://x/name> "Person 5"@en .
		OPTIONAL { ?y <http://x/knows> ?o . ?x <http://x/knows> ?y . }
	}`)
	pl2, err := newPlan(s, q2, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(pl2.optionals) != 1 {
		t.Fatalf("optionals = %d, want 1", len(pl2.optionals))
	}
	// Inside the block, `?x knows ?y` shares the upstream-bound ?x; the
	// textually earlier `?y knows ?o` would be a cartesian sweep.
	want := []string{"http://x/knows", "http://x/knows"}
	got := pl2.optionals[0]
	if len(got) != 2 {
		t.Fatalf("optional block has %d patterns: %v", len(got), patOrder(got))
	}
	assertOrder(t, got, want...)
	if !got[0].S.IsVar() || got[0].S.Var != "x" {
		t.Fatalf("optional block starts with subject %v, want ?x (the upstream-bound probe)", got[0].S)
	}
}
