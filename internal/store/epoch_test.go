package store

import (
	"fmt"
	"sync"
	"testing"

	"sapphire/internal/rdf"
)

// TestEpochAdvancesOnMutation pins the epoch contract: every change to
// the triple set moves the counter, and operations that change nothing
// (duplicate Add, empty Commit, staging without commit) leave it alone.
func TestEpochAdvancesOnMutation(t *testing.T) {
	s := New()
	if s.Epoch() != 0 {
		t.Fatalf("fresh store epoch = %d, want 0", s.Epoch())
	}
	s.MustAdd(tri(iri("a"), iri("p"), lit("1")))
	e1 := s.Epoch()
	if e1 == 0 {
		t.Fatal("epoch did not advance on Add")
	}
	// A duplicate changes nothing and must not advance the epoch: the
	// cache layers above would otherwise discard entries for no reason.
	if added, err := s.Add(tri(iri("a"), iri("p"), lit("1"))); err != nil || added {
		t.Fatalf("duplicate Add = (%v, %v)", added, err)
	}
	if s.Epoch() != e1 {
		t.Errorf("epoch moved on duplicate Add: %d -> %d", e1, s.Epoch())
	}

	l := NewBulkLoader(s)
	l.MustAdd(tri(iri("b"), iri("p"), lit("2")))
	if s.Epoch() != e1 {
		t.Errorf("epoch moved on staging (before commit): %d -> %d", e1, s.Epoch())
	}
	if n := l.Commit(); n != 1 {
		t.Fatalf("Commit = %d, want 1", n)
	}
	e2 := s.Epoch()
	if e2 <= e1 {
		t.Errorf("epoch did not advance on Commit: %d -> %d", e1, e2)
	}
	// Committing an empty buffer, or a buffer of duplicates, publishes
	// nothing and must not advance the epoch.
	if n := l.Commit(); n != 0 {
		t.Fatalf("empty Commit = %d, want 0", n)
	}
	l.MustAdd(tri(iri("b"), iri("p"), lit("2")))
	if n := l.Commit(); n != 0 {
		t.Fatalf("duplicate-only Commit = %d, want 0", n)
	}
	if s.Epoch() != e2 {
		t.Errorf("epoch moved on no-op commits: %d -> %d", e2, s.Epoch())
	}

	// AddAll routes through the bulk path; a batch with fresh triples
	// advances the epoch (by at least one, not necessarily per triple).
	if err := s.AddAll([]rdf.Triple{
		tri(iri("c"), iri("p"), lit("3")),
		tri(iri("d"), iri("p"), lit("4")),
	}); err != nil {
		t.Fatal(err)
	}
	if s.Epoch() <= e2 {
		t.Errorf("epoch did not advance on AddAll: %d -> %d", e2, s.Epoch())
	}
}

// TestEpochReadableDuringWrites drives Epoch reads concurrently with
// writers under -race: the read path must never acquire the store lock
// (it is called on every cached query), and must be monotonic from any
// single reader's point of view.
func TestEpochReadableDuringWrites(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		last := uint64(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			e := s.Epoch()
			if e < last {
				t.Errorf("epoch went backwards: %d -> %d", last, e)
				return
			}
			last = e
		}
	}()
	l := NewBulkLoader(s)
	for i := 0; i < 500; i++ {
		s.MustAdd(tri(iri(fmt.Sprintf("s%d", i)), iri("p"), lit(fmt.Sprint(i))))
		l.MustAdd(tri(iri(fmt.Sprintf("b%d", i)), iri("p"), lit(fmt.Sprint(i))))
		if i%100 == 0 {
			l.Commit()
		}
	}
	l.Commit()
	close(stop)
	wg.Wait()
	if s.Len() != 1000 {
		t.Fatalf("Len = %d, want 1000", s.Len())
	}
}

// TestBulkAutoCommitCapsBuffer drives a loader past its auto-commit
// threshold without ever calling Commit and checks the ROADMAP
// contract: the staging buffer never exceeds the cap, and the
// auto-committed triples are already visible to readers.
func TestBulkAutoCommitCapsBuffer(t *testing.T) {
	s := New()
	l := NewBulkLoader(s)
	const cap = 64
	l.SetAutoCommitThreshold(cap)

	for i := 0; i < 10*cap; i++ {
		l.MustAdd(tri(iri(fmt.Sprintf("s%d", i)), iri("p"), lit(fmt.Sprint(i))))
		if p := l.Pending(); p > cap {
			t.Fatalf("pending = %d exceeds auto-commit threshold %d", p, cap)
		}
	}
	// 10*cap staged, every full cap-sized buffer flushed inline: at most
	// one partial buffer may still be pending.
	if got := s.Len() + l.Pending(); got != 10*cap {
		t.Fatalf("Len+Pending = %d, want %d", got, 10*cap)
	}
	if s.Len() < 9*cap {
		t.Fatalf("auto-commit did not publish: Len = %d", s.Len())
	}

	// The AddAll path must respect the cap too, even mid-batch.
	batch := make([]rdf.Triple, 3*cap)
	for i := range batch {
		batch[i] = tri(iri(fmt.Sprintf("t%d", i)), iri("p"), lit(fmt.Sprint(i)))
	}
	if err := l.AddAll(batch); err != nil {
		t.Fatal(err)
	}
	if p := l.Pending(); p > cap {
		t.Fatalf("pending after AddAll = %d exceeds threshold %d", p, cap)
	}
	l.Commit()
	if s.Len() != 13*cap {
		t.Fatalf("Len = %d, want %d", s.Len(), 13*cap)
	}

	// Disabling the cap restores stage-until-Commit.
	l.SetAutoCommitThreshold(0)
	for i := 0; i < 2*cap; i++ {
		l.MustAdd(tri(iri(fmt.Sprintf("u%d", i)), iri("p"), lit(fmt.Sprint(i))))
	}
	if p := l.Pending(); p != 2*cap {
		t.Fatalf("pending with cap disabled = %d, want %d", p, 2*cap)
	}
	l.Commit()
}

// TestBulkAutoCommitDefault pins the default threshold so callers can
// rely on ~12 MB peak staging without configuring anything.
func TestBulkAutoCommitDefault(t *testing.T) {
	if DefaultAutoCommit != 1<<20 {
		t.Fatalf("DefaultAutoCommit = %d, want %d", DefaultAutoCommit, 1<<20)
	}
	l := NewBulkLoader(New())
	if l.autoCommit != DefaultAutoCommit {
		t.Fatalf("new loader threshold = %d, want DefaultAutoCommit", l.autoCommit)
	}
}
