// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each benchmark maps to one row of the experiment index in
// DESIGN.md; `go test -bench=. -benchmem` reproduces the full suite and
// reports the measured quantities via b.ReportMetric.
package sapphire

import (
	"context"
	"sync"
	"testing"

	"sapphire/internal/experiments"
	"sapphire/internal/qald"
	"sapphire/internal/similarity"
	"sapphire/internal/sparql"
	"sapphire/internal/steiner"
	"sapphire/internal/userstudy"

	"sapphire/internal/rdf"
)

var (
	benchOnce sync.Once
	benchEnv  *experiments.Env
	benchErr  error
)

func env(b *testing.B) *experiments.Env {
	b.Helper()
	benchOnce.Do(func() {
		benchEnv, benchErr = experiments.Setup(context.Background(), experiments.Full)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchEnv
}

// --- Table 1 ------------------------------------------------------------

// BenchmarkTable1QALD regenerates the full system comparison. Reported
// metrics: Sapphire's recall and precision (paper: 0.86 / 1.0 at DBpedia
// scale; 1.0 / 1.0 on the synthetic substrate).
func BenchmarkTable1QALD(b *testing.B) {
	e := env(b)
	ctx := context.Background()
	var rows []qald.Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Table1(ctx, e)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.System == "Sapphire" {
			b.ReportMetric(r.Recall(), "sapphire-R")
			b.ReportMetric(r.Precision(), "sapphire-P")
		}
		if r.System == "S4" {
			b.ReportMetric(r.F1(), "s4-F1")
		}
	}
}

// --- Figures 8–11 -------------------------------------------------------

func studyFigure(b *testing.B, metric func(*userstudy.Result) (float64, string)) {
	e := env(b)
	ctx := context.Background()
	var res *userstudy.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Study(ctx, e)
		if err != nil {
			b.Fatal(err)
		}
	}
	v, name := metric(res)
	b.ReportMetric(v, name)
}

// BenchmarkFigure8SuccessRate reports Sapphire's medium-difficulty
// success rate (paper: >80% vs ~50% for QAKiS).
func BenchmarkFigure8SuccessRate(b *testing.B) {
	studyFigure(b, func(r *userstudy.Result) (float64, string) {
		return r.Stats["Sapphire"][qald.Medium].SuccessRate(), "sapphire-medium-%"
	})
}

// BenchmarkFigure9Coverage reports Sapphire's difficult-question
// coverage (paper: 100%).
func BenchmarkFigure9Coverage(b *testing.B) {
	studyFigure(b, func(r *userstudy.Result) (float64, string) {
		return r.Stats["Sapphire"][qald.Difficult].CoveragePct(), "sapphire-difficult-%"
	})
}

// BenchmarkFigure10Attempts reports Sapphire's average attempts on
// difficult questions (paper: 3–5 before giving up, ~2 when answered).
func BenchmarkFigure10Attempts(b *testing.B) {
	studyFigure(b, func(r *userstudy.Result) (float64, string) {
		return r.Stats["Sapphire"][qald.Difficult].AvgAttempts(), "attempts"
	})
}

// BenchmarkFigure11Time reports the Sapphire-vs-QAKiS time ratio on
// medium questions (paper: Sapphire costs 2–4× more minutes).
func BenchmarkFigure11Time(b *testing.B) {
	studyFigure(b, func(r *userstudy.Result) (float64, string) {
		s := r.Stats["Sapphire"][qald.Medium].AvgMinutes()
		q := r.Stats["QAKiS"][qald.Medium].AvgMinutes()
		if q == 0 {
			return 0, "time-ratio"
		}
		return s / q, "time-ratio"
	})
}

// --- Section 5: initialization ------------------------------------------

// BenchmarkInitialization measures a full Section 5 run against a
// constrained endpoint, reporting queries issued and timeouts survived
// (paper: ~3800 queries, ~200 timeouts for DBpedia).
func BenchmarkInitialization(b *testing.B) {
	ctx := context.Background()
	var rep *experiments.InitReport
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = experiments.InitWithTimeouts(ctx, experiments.Full)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rep.Stats.QueriesIssued), "queries")
	b.ReportMetric(float64(rep.Stats.Timeouts), "timeouts")
	b.ReportMetric(float64(rep.Stats.LiteralCount), "literals")
}

// --- Section 7.3.1: QCM -------------------------------------------------

// BenchmarkQCMSuffixTree measures the suffix-tree lookup path alone
// (paper: ~0.25 ms per lookup, independent of indexed size).
func BenchmarkQCMSuffixTree(b *testing.B) {
	e := env(b)
	terms := []string{"Kenn", "Kerouac", "alma", "Austral", "press", "Spring"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.PUM.CompleteTreeOnly(terms[i%len(terms)])
	}
}

func benchResidualScan(b *testing.B, workers int) {
	e := env(b)
	terms := []string{"Kenn", "Kerouac", "alma", "Austral", "press", "Spring"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.PUM.CompleteBinsOnly(terms[i%len(terms)], workers)
	}
}

// BenchmarkQCMResidualScan1–8 measure the parallel residual-bin scan at
// increasing worker counts (paper: 0.6 s at 1 core → 0.16 s at 8 cores;
// the shape to verify is monotone speedup).
func BenchmarkQCMResidualScan1(b *testing.B) { benchResidualScan(b, 1) }
func BenchmarkQCMResidualScan2(b *testing.B) { benchResidualScan(b, 2) }
func BenchmarkQCMResidualScan4(b *testing.B) { benchResidualScan(b, 4) }
func BenchmarkQCMResidualScan8(b *testing.B) { benchResidualScan(b, 8) }

// BenchmarkQCMComplete measures the full Figure 5 path (tree + bins).
func BenchmarkQCMComplete(b *testing.B) {
	e := env(b)
	terms := []string{"Kenn", "Kerouac", "alma", "Austral", "press", "Spring"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.PUM.Complete(terms[i%len(terms)])
	}
}

// BenchmarkQCMHitRatio reports the suffix-tree hit ratio and the length
// filter's elimination fraction (paper: 50% hits at 40K literals, ~46%
// of literals eliminated).
func BenchmarkQCMHitRatio(b *testing.B) {
	e := env(b)
	var rep *experiments.QCMReport
	for i := 0; i < b.N; i++ {
		rep = experiments.QCM(e, []int{8})
	}
	b.ReportMetric(100*rep.HitRatio, "hit-%")
	b.ReportMetric(100*rep.FilterEliminated, "filtered-%")
}

// --- Section 7.3.2: QSM --------------------------------------------------

// BenchmarkQSMSuggest measures end-to-end suggestion latency on a
// zero-answer query (paper: ~10 s at DBpedia scale over the network; the
// shape to verify is QSM ≫ QCM).
func BenchmarkQSMSuggest(b *testing.B) {
	e := env(b)
	ctx := context.Background()
	q := sparql.MustParse(`SELECT ?p WHERE {
		?p <http://dbpedia.org/ontology/name> "Ted Kennedys"@en .
	}`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.PUM.Suggest(ctx, q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQSMRelax measures the Steiner-tree relaxation alone on the
// Figure 6 query.
func BenchmarkQSMRelax(b *testing.B) {
	e := env(b)
	ctx := context.Background()
	groups := [][]rdf.Term{
		{rdf.NewLangLiteral("Jack Kerouac", "en")},
		{rdf.NewLangLiteral("Viking Press", "en")},
	}
	preferred := map[string]bool{
		rdf.NSDBO + "author":    true,
		rdf.NSDBO + "publisher": true,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := steiner.Connect(ctx, steiner.StoreSource{Store: e.Dataset.Store},
			groups, preferred, steiner.DefaultConfig())
		if err != nil || !res.Connected {
			b.Fatalf("relaxation failed: %v (%+v)", err, res)
		}
	}
}

// --- Ablations ------------------------------------------------------------

func benchSimilarityAblation(b *testing.B, name string) {
	e := env(b)
	m := similarity.ByName(name)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Cache.Bins.SearchSimilar("Kennedys", 6, 11, 8, 0.7, m)
	}
}

// BenchmarkAblationJaroWinkler/Levenshtein/Jaccard measure the literal
// similarity search under each measure; the quality comparison (repair
// rate, where Jaro-Winkler wins) prints via cmd/sapphire-bench -exp
// ablation.
func BenchmarkAblationJaroWinkler(b *testing.B) { benchSimilarityAblation(b, "jarowinkler") }
func BenchmarkAblationLevenshtein(b *testing.B) { benchSimilarityAblation(b, "levenshtein") }
func BenchmarkAblationJaccard(b *testing.B)     { benchSimilarityAblation(b, "jaccard") }

// BenchmarkAblationSteinerWeights reports the query-predicate reuse of
// weighted vs unweighted Steiner expansion.
func BenchmarkAblationSteinerWeights(b *testing.B) {
	e := env(b)
	ctx := context.Background()
	var rows []experiments.AblationRow
	for i := 0; i < b.N; i++ {
		rows = experiments.SteinerWeightAblation(ctx, e)
	}
	b.ReportMetric(100*rows[0].Extra, "weighted-reuse-%")
	b.ReportMetric(100*rows[1].Extra, "unweighted-reuse-%")
}

// BenchmarkEndToEndOperator measures one full interactive session: build
// from keywords, execute, take suggestions until answered.
func BenchmarkEndToEndOperator(b *testing.B) {
	e := env(b)
	ctx := context.Background()
	questions := qald.Questions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := questions[i%len(questions)]
		e.Operator.Attempt(ctx, q)
	}
}
