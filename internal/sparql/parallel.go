package sparql

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Morsel-parallel evaluation.
//
// The driving scan of each pattern group — the level-0 scan the serial
// DFS would seed every join from — is enumerated once, in serial
// emission order, and cut into fixed-size morsels. N workers execute
// the join chain (deeper scan levels, level filters, OPTIONAL blocks,
// stage filters) over whole morsels, all scanning through the one
// PinRead session the evaluation already holds: the pin keeps every
// shard read-locked for the duration, so workers never touch a lock and
// can never deadlock against queued writers. The coordinator then feeds
// per-morsel results into the modifier tail in morsel order.
//
// Determinism argument: the concatenation of the morsels is exactly the
// serial driving-scan order, each worker preserves its morsel's
// internal order (it replays the same DFS the serial path runs), and
// the coordinator consumes results in morsel order — so the row stream
// entering the modifier tail is byte-identical to serial evaluation,
// for every tail shape:
//
//   - plain / DISTINCT / aggregate tails see the same rows in the same
//     order, so slicing, dedup and grouping behave identically;
//   - the bounded ORDER BY tail additionally lets workers pre-prune
//     each morsel to its local top k: a row beaten by k rows of its own
//     morsel is beaten by those k rows globally (the heap's
//     (key, arrival) order is a strict total order, and same-morsel
//     rows keep their serial relative arrival order), so it can never
//     be in the global top k. Survivors are emitted in arrival order,
//     which keeps the final heap's tie-break identical to serial.
//
// Early exit (LIMIT satisfied) closes abortCh: the enumerator stops
// scanning, workers drop to draining no-ops, and the already-pushed
// prefix of rows is exactly the prefix serial evaluation would have
// produced.

// MorselGraph is an optional ReentrantGraph extension for stores that
// enumerate a pattern's matches pre-batched (the sharded store
// implements it as ScanMorselsPinned). Like MatchIDsPinned it must be
// called under PinRead and takes no locks; each batch must be safe for
// the callee to retain. ReentrantGraphs without it get the same
// batching generically, one MatchIDsPinned pass per driving scan.
type MorselGraph interface {
	ReentrantGraph
	ScanMorselsPinned(s, p, o uint32, size int, fn func(batch [][3]uint32) bool)
}

// parallelMorselSize is the driving-scan batch size. A variable, not a
// const, so tests can shrink it to force many-morsel schedules on small
// fixtures; set only from single-threaded test setup.
var parallelMorselSize = 1024

// scanMorsels enumerates a driving scan in morsels, preferring the
// graph's native batched scan.
func scanMorsels(rg ReentrantGraph, s, p, o uint32, size int, fn func(batch [][3]uint32) bool) {
	if mg, ok := rg.(MorselGraph); ok {
		mg.ScanMorselsPinned(s, p, o, size, fn)
		return
	}
	batch := make([][3]uint32, 0, size)
	stopped := false
	rg.MatchIDsPinned(s, p, o, func(a, b, c uint32) bool {
		batch = append(batch, [3]uint32{a, b, c})
		if len(batch) == size {
			if !fn(batch) {
				stopped = true
				return false
			}
			batch = make([][3]uint32, 0, size)
		}
		return true
	})
	if !stopped && len(batch) > 0 {
		fn(batch)
	}
}

// serializedBudget wraps a Budget so concurrent workers can charge it;
// the callback itself then needs no internal locking.
func serializedBudget(b Budget) Budget {
	var mu sync.Mutex
	return func() error {
		mu.Lock()
		defer mu.Unlock()
		return b()
	}
}

// morselJob is one batch of driving-scan triples bound for a worker.
// res has capacity 1, so the worker's single send never blocks even
// when the coordinator aborted and will read the result late (or, for
// a job that never reached the order channel, not at all).
type morselJob struct {
	grp   int // index into parallelRun.groups
	batch [][3]uint32
	res   chan morselResult
}

type morselResult struct {
	rows [][]uint32 // owned copies, in serial-equivalent order
	err  error
}

// workerSink collects one morsel's surviving rows inside a worker.
type workerSink interface {
	sink
	reset()
	take() [][]uint32
}

// morselBuf buffers row copies; rowCap >= 0 stops the morsel's DFS once
// that many rows survived (valid only when the tail's slice receives
// every produced row unconditionally, so rows past Offset+Limit can
// never be emitted).
type morselBuf struct {
	rows   [][]uint32
	rowCap int // -1 = unbounded
}

func (b *morselBuf) push(row []uint32) bool {
	b.rows = append(b.rows, append([]uint32(nil), row...))
	return b.rowCap < 0 || len(b.rows) < b.rowCap
}

func (b *morselBuf) flush() bool      { return true }
func (b *morselBuf) reset()           { b.rows = nil }
func (b *morselBuf) take() [][]uint32 { return b.rows }

// morselTopK pre-prunes a morsel to its local top k using the same heap
// operator the tail runs, then hands the survivors back in arrival
// order — the order the global heap needs to reproduce serial
// tie-breaking. The heap items own row copies, so taking them is safe.
type morselTopK struct {
	op *topKOp
}

func (m *morselTopK) push(row []uint32) bool { return m.op.push(row) }
func (m *morselTopK) flush() bool            { return true }

func (m *morselTopK) reset() {
	m.op.heap = m.op.heap[:0]
	m.op.seq = 0
}

func (m *morselTopK) take() [][]uint32 {
	h := m.op.heap
	sort.Slice(h, func(i, j int) bool { return h[i].seq < h[j].seq })
	rows := make([][]uint32, len(h))
	for i := range h {
		rows[i] = h[i].row
	}
	return rows
}

// parGroup is one pattern group prepared for parallel execution: the
// compiled patterns plus the level-0 binding spec every worker replays
// per morsel triple.
type parGroup struct {
	cps []compiledPattern
	lb0 levelBind
}

type parallelRun struct {
	x       *exec
	workers int
	spec    tailSpec
	groups  []parGroup
	lf      []*filterStage // shared, read-only once built

	abort     atomic.Bool
	abortCh   chan struct{}
	abortOnce sync.Once
}

// newParallelRun prepares a morsel-parallel execution of the plan's
// groups. Returns nil when the shape cannot run parallel (no ID path,
// or a degenerate empty group) — the caller falls back to serial.
func newParallelRun(x *exec, workers int, spec tailSpec) *parallelRun {
	if x.ig == nil {
		return nil
	}
	r := &parallelRun{x: x, workers: workers, spec: spec, abortCh: make(chan struct{})}
	zero := make([]uint32, x.pl.width())
	for _, grp := range x.pl.groups {
		if len(grp) == 0 {
			return nil
		}
		cps := x.compile(grp)
		r.groups = append(r.groups, parGroup{cps: cps, lb0: bindSpec(cps[0], zero)})
	}
	r.lf = x.levelFilterStages()
	return r
}

func (r *parallelRun) doAbort() {
	r.abortOnce.Do(func() {
		r.abort.Store(true)
		close(r.abortCh)
	})
}

// run drives the parallel execution and pushes the merged row stream
// into tail. On return all goroutines have exited (the caller releases
// the pin right after), and any worker error is in r.x.err.
func (r *parallelRun) run(tail sink) {
	rg := r.x.g.(ReentrantGraph)
	jobs := make(chan *morselJob)
	// order carries every job a second time, in morsel order, to the
	// merging loop below; its capacity bounds the morsels in flight.
	order := make(chan *morselJob, r.workers*4)

	var wg sync.WaitGroup
	for i := 0; i < r.workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.workerLoop(jobs)
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		r.enumerate(rg, jobs, order)
	}()

	// Merge: consume results in morsel order. After an abort keep
	// draining — every job in order was sent to jobs first, so a worker
	// owes it a result — but stop feeding the tail.
	var firstErr error
	aborted := false
	for job := range order {
		res := <-job.res
		if aborted {
			continue
		}
		if res.err != nil {
			firstErr = res.err
			aborted = true
			r.doAbort()
			continue
		}
		for _, row := range res.rows {
			if !tail.push(row) {
				aborted = true
				r.doAbort()
				break
			}
		}
	}
	wg.Wait()
	if firstErr != nil && r.x.err == nil {
		r.x.err = firstErr
	}
}

// enumerate cuts each group's driving scan into morsels. Jobs go to the
// worker channel first and the order channel second: the merge loop
// only ever waits on jobs a worker is guaranteed to see, so an abort
// between the two sends can orphan a job's result but never deadlock.
func (r *parallelRun) enumerate(rg ReentrantGraph, jobs chan<- *morselJob, order chan<- *morselJob) {
	defer close(order)
	defer close(jobs)
	zero := make([]uint32, r.x.pl.width())
	for gi := range r.groups {
		g := &r.groups[gi]
		if !g.cps[0].ok {
			continue // a constant missing from the dictionary: no matches
		}
		s, p, o := g.cps[0].s.value(zero), g.cps[0].p.value(zero), g.cps[0].o.value(zero)
		scanMorsels(rg, s, p, o, parallelMorselSize, func(batch [][3]uint32) bool {
			job := &morselJob{grp: gi, batch: batch, res: make(chan morselResult, 1)}
			select {
			case jobs <- job:
			case <-r.abortCh:
				return false
			}
			select {
			case order <- job:
			case <-r.abortCh:
				return false
			}
			return true
		})
		if r.abort.Load() {
			return
		}
	}
}

// workerLoop executes whole morsels: for each driving-scan triple it
// replays the serial level-0 step — budget tick, binding (with
// repeated-variable checks), level-0 filters — then runs the remaining
// join levels and row stages through this worker's private chain.
// Everything the workers share (compiled patterns, filter stages, the
// serialized budget, the pinned scan function) is read-only or
// internally synchronized; per-row state (the row buffer, filter
// scratch, OPTIONAL match flags, the morsel sink) is per-worker.
func (r *parallelRun) workerLoop(jobs <-chan *morselJob) {
	x := r.x
	wx := &exec{pl: x.pl, g: x.g, ig: x.ig, matchIDs: x.matchIDs, budget: x.budget}
	var ws workerSink
	if r.spec.topK {
		ws = &morselTopK{op: &topKOp{
			x: wx, k: r.spec.k, desc: r.spec.desc, keySlot: r.spec.keySlot, label: r.spec.label,
		}}
	} else {
		ws = &morselBuf{rowCap: r.spec.rowCap}
	}
	chain := wx.buildRowStages(ws)
	row := make([]uint32, x.pl.width())

	for job := range jobs {
		if r.abort.Load() {
			job.res <- morselResult{}
			continue
		}
		wx.err = nil
		ws.reset()
		g := &r.groups[job.grp]
		for _, t := range job.batch {
			if r.abort.Load() {
				break
			}
			if !wx.tick() {
				break
			}
			if !g.lb0.apply(row, t[0], t[1], t[2]) {
				continue
			}
			keep := true
			if r.lf != nil && r.lf[0] != nil {
				keep = wx.applyFilterStage(r.lf[0], row)
			}
			ok := true
			if keep && wx.err == nil {
				ok = wx.runSeq(g.cps, r.lf, 1, row, chain)
			}
			g.lb0.clear(row)
			if !ok || wx.err != nil {
				break // sink satisfied (row cap) or budget error
			}
		}
		job.res <- morselResult{rows: ws.take(), err: wx.err}
	}
}
