# Sapphire build/test/bench entry points.
#
#   make test   - vet gate + full test suite
#   make race   - race-detector pass over the concurrency-sensitive packages
#   make bench  - full benchmark sweep (3 runs, alloc stats) saved to
#                 BENCH_<yyyy-mm-dd>.txt for before/after comparisons
#   make vet    - static analysis only

GO ?= go
BENCH_OUT := BENCH_$(shell date +%Y-%m-%d).txt

.PHONY: all test vet race bench build

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test ./...

race:
	$(GO) test -race ./internal/store/ ./internal/sparql/ ./internal/endpoint/ ./internal/federation/

bench:
	$(GO) test -run '^$$' -bench=. -benchmem -count=3 ./... | tee $(BENCH_OUT)
