// Package store is a miniature stand-in for sapphire/internal/store
// used by the analyzer golden tests: same method names, same locking
// contract shape, no real locks. The pinlock analyzer recognizes it the
// same way it recognizes the real store — by the package's last path
// segment and the PinRead method — so fixtures can violate the
// contract without the module's own packages ever containing a
// violation.
package store

// Triple mirrors rdf.Triple just enough for signatures.
type Triple struct{ S, P, O string }

// Store mirrors the locking surface of the real store.Store.
type Store struct{}

// Lock-acquiring accessors (the banned set under a pin/callback).

func (s *Store) Lookup(t string) (uint32, bool) { return 0, false }

func (s *Store) Match(sub, pred, obj string, fn func(Triple) bool) {}

func (s *Store) MatchIDs(sub, pred, obj uint32, fn func(s, p, o uint32) bool) {}

func (s *Store) Add(tr Triple) (bool, error) { return false, nil }

func (s *Store) AddAll(trs []Triple) error { return nil }

func (s *Store) Count(sub, pred, obj string) int { return 0 }

func (s *Store) CountIDs(sub, pred, obj uint32) int { return 0 }

func (s *Store) Subjects() []string { return nil }

// Lock-free by construction — the designed callback exception.

func (s *Store) ResolveID(id uint32) string { return "" }

// The pin surface.

func (s *Store) PinRead() (release func()) { return func() {} }

func (s *Store) MatchIDsPinned(sub, pred, obj uint32, fn func(s, p, o uint32) bool) {}

func (s *Store) ScanMorselsPinned(sub, pred, obj uint32, size int, fn func(batch [][3]uint32) bool) {
}
