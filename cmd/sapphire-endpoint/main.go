// Command sapphire-endpoint serves the synthetic DBpedia-like dataset as
// a SPARQL HTTP endpoint, the stand-in for http://dbpedia.org/sparql in
// all experiments. Query it with:
//
//	curl -s 'http://localhost:8890/sparql' \
//	  --data-urlencode 'query=SELECT ?s WHERE { ?s a <http://dbpedia.org/ontology/Writer> . } LIMIT 5'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"sapphire/internal/datagen"
	"sapphire/internal/endpoint"
	"sapphire/internal/store"
)

func main() {
	var (
		addr    = flag.String("addr", ":8890", "listen address")
		scale   = flag.String("scale", "default", "dataset scale: small | default")
		seed    = flag.Int64("seed", 1, "dataset generator seed")
		maxRows = flag.Int("max-rows", 0, "intermediate-row budget per query (0 = unlimited); models public endpoint timeouts")
		latency = flag.Duration("latency", 0, "simulated per-query latency, e.g. 20ms")
		reject  = flag.Int("reject-above", endpoint.DefaultRejectEstimate,
			"reject queries whose exact pattern cardinality exceeds this (0 = admit everything)")
		cacheBytes = flag.Int64("cache-bytes", endpoint.DefaultCacheBytes,
			"byte budget for the query result cache, keyed by (query, store epoch) (0 = no caching)")
		shards = flag.Int("shards", store.DefaultShards(),
			"store shard count: subject-hash partitions with per-shard locks/epochs (1 = unsharded, whole-batch commit atomicity)")
	)
	flag.Parse()

	// Must run before any store is built; datagen and every other
	// store.New caller picks up the process default.
	store.SetDefaultShards(*shards)

	cfg := datagen.DefaultConfig()
	if *scale == "small" {
		cfg = datagen.SmallConfig()
	}
	cfg.Seed = *seed
	start := time.Now()
	d := datagen.Generate(cfg)
	log.Printf("generated %d triples in %v", d.Store.Len(), time.Since(start).Round(time.Millisecond))

	ep := endpoint.NewLocal("synthetic-dbpedia", d.Store, endpoint.Limits{
		MaxIntermediateRows: *maxRows,
		Latency:             *latency,
		RejectEstimateAbove: *reject,
		CacheBytes:          *cacheBytes,
	})
	mux := http.NewServeMux()
	mux.Handle("/sparql", endpoint.Handler(ep))
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		s := ep.Stats()
		epoch, _ := ep.Epoch(r.Context())
		fmt.Fprintf(w, "queries=%d timeouts=%d rejected=%d rows=%d epoch=%d\n",
			s.Queries, s.Timeouts, s.Rejected, s.Rows, epoch)
		fmt.Fprintf(w, "cache: hits=%d rawhits=%d misses=%d coalesced=%d evicted=%d bytes=%d entries=%d\n",
			s.CacheHits, s.CacheRawHits, s.CacheMisses, s.CacheCoalesced, s.CacheEvicted,
			s.CacheBytes, s.CacheEntries)
	})
	log.Printf("SPARQL endpoint on %s/sparql", *addr)
	log.Fatal(http.ListenAndServe(*addr, mux))
}
