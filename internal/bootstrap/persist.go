package bootstrap

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"

	"sapphire/internal/bins"
	"sapphire/internal/rdf"
	"sapphire/internal/suffixtree"
)

// The paper's initialization "happens only once for each endpoint" (17
// hours for DBpedia), which only makes sense if the cache outlives the
// server process. Save/Load serialize the cached data — predicates,
// literals, and which strings are tree-resident — as JSON; the suffix
// tree and bins are rebuilt on load (construction is linear and fast
// compared to re-crawling the endpoint).
//
// A cache file that spent 17 hours being earned deserves better than
// "json: unexpected end of input" after a crashed save or a disk
// hiccup: Save frames the JSON with a header carrying its length and
// CRC32C, Load verifies both before trusting a byte (and still accepts
// the headerless v1 files earlier builds wrote), and SaveFile writes
// through a temp file with fsync and an atomic rename so an interrupted
// save can never destroy the previous good cache.

// cacheFile is the on-disk representation.
type cacheFile struct {
	Version    int         `json:"version"`
	Endpoint   string      `json:"endpoint"`
	Predicates []savedTerm `json:"predicates"`
	Literals   []savedLit  `json:"literals"`
	Stats      Stats       `json:"stats"`
}

type savedTerm struct {
	IRI string `json:"iri"`
}

type savedLit struct {
	Value  string `json:"value"`
	Lang   string `json:"lang,omitempty"`
	Dtype  string `json:"datatype,omitempty"`
	InTree bool   `json:"inTree,omitempty"`
}

const cacheFileVersion = 1

// cacheHeaderFmt is the v2 envelope: a comment-style first line naming
// the format and carrying the body's CRC32C and byte length. Legacy v1
// files start directly with '{'.
const cacheHeaderFmt = "#sapphire-cache v2 crc32c=%08x bytes=%d\n"

var cacheCastagnoli = crc32.MakeTable(crc32.Castagnoli)

// Save writes the cache to w in the checksummed v2 format.
func (c *Cache) Save(w io.Writer) error {
	var body bytes.Buffer
	if err := c.saveJSON(&body); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, cacheHeaderFmt,
		crc32.Checksum(body.Bytes(), cacheCastagnoli), body.Len()); err != nil {
		return err
	}
	_, err := w.Write(body.Bytes())
	return err
}

// SaveFile writes the cache to path atomically: temp file in the same
// directory, fsync, rename over the target, fsync the directory. A
// crash mid-save leaves either the old complete file or the new one,
// never a torn hybrid — and a torn temp file left behind never shadows
// the real cache.
func (c *Cache) SaveFile(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := c.Save(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// saveJSON writes the raw JSON body (the v1 payload).
func (c *Cache) saveJSON(w io.Writer) error {
	cf := cacheFile{
		Version:  cacheFileVersion,
		Endpoint: c.Endpoint,
		Stats:    c.Stats,
	}
	for _, p := range c.Predicates {
		cf.Predicates = append(cf.Predicates, savedTerm{IRI: p.Value})
	}
	lexes := make([]string, 0, len(c.literalTerm))
	for lex := range c.literalTerm {
		lexes = append(lexes, lex)
	}
	sort.Strings(lexes)
	for _, lex := range lexes {
		t := c.literalTerm[lex]
		cf.Literals = append(cf.Literals, savedLit{
			Value:  t.Value,
			Lang:   t.Lang,
			Dtype:  t.Datatype,
			InTree: c.inTree[lex],
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(cf)
}

// Load reads a cache previously written by Save and rebuilds the
// indexes. v2 files are accepted only if the body matches the header's
// length and CRC32C — a truncated or bit-flipped cache is an error, not
// a silently smaller lexicon. Headerless v1 files load unverified for
// compatibility.
func Load(r io.Reader) (*Cache, error) {
	br := bufio.NewReader(r)
	first, err := br.Peek(1)
	if err != nil {
		return nil, fmt.Errorf("bootstrap: loading cache: %w", err)
	}
	var body io.Reader = br
	if first[0] == '#' {
		header, err := br.ReadString('\n')
		if err != nil {
			return nil, fmt.Errorf("bootstrap: cache header: %w", err)
		}
		var wantCRC uint32
		var wantLen int
		if _, err := fmt.Sscanf(header, "#sapphire-cache v2 crc32c=%x bytes=%d", &wantCRC, &wantLen); err != nil {
			return nil, fmt.Errorf("bootstrap: unrecognized cache header %q", header)
		}
		data, err := io.ReadAll(br)
		if err != nil {
			return nil, fmt.Errorf("bootstrap: loading cache: %w", err)
		}
		if len(data) != wantLen {
			return nil, fmt.Errorf("bootstrap: cache body is %d bytes, header says %d (truncated?)", len(data), wantLen)
		}
		if got := crc32.Checksum(data, cacheCastagnoli); got != wantCRC {
			return nil, fmt.Errorf("bootstrap: cache checksum mismatch (got %08x, header says %08x)", got, wantCRC)
		}
		body = bytes.NewReader(data)
	}
	var cf cacheFile
	if err := json.NewDecoder(body).Decode(&cf); err != nil {
		return nil, fmt.Errorf("bootstrap: loading cache: %w", err)
	}
	if cf.Version != cacheFileVersion {
		return nil, fmt.Errorf("bootstrap: unsupported cache version %d", cf.Version)
	}
	c := &Cache{
		Endpoint:      cf.Endpoint,
		Stats:         cf.Stats,
		displayToPred: make(map[string][]rdf.Term),
		literalTerm:   make(map[string]rdf.Term),
		inTree:        make(map[string]bool),
	}
	var treeStrings []string
	for _, st := range cf.Predicates {
		p := rdf.NewIRI(st.IRI)
		c.Predicates = append(c.Predicates, p)
		d := DisplayName(p)
		if len(c.displayToPred[d]) == 0 {
			treeStrings = append(treeStrings, d)
		}
		c.displayToPred[d] = append(c.displayToPred[d], p)
		c.inTree[d] = true
	}
	var residual []string
	for _, sl := range cf.Literals {
		t := rdf.Term{Kind: rdf.KindLiteral, Value: sl.Value, Lang: sl.Lang, Datatype: sl.Dtype}
		c.literalTerm[sl.Value] = t
		if sl.InTree {
			c.inTree[sl.Value] = true
			treeStrings = append(treeStrings, sl.Value)
		} else {
			residual = append(residual, sl.Value)
		}
	}
	c.Tree = suffixtree.New(treeStrings)
	sort.Strings(residual)
	c.Bins = bins.New(residual)
	c.Stats.TreeNodes = c.Tree.NodeCount()
	c.Stats.TreeBytes = c.Tree.ApproxBytes()
	c.Stats.ResidualCount = c.Bins.Len()
	c.Stats.BinCount = c.Bins.BinCount()
	return c, nil
}
