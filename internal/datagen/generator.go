// Package datagen generates the deterministic synthetic DBpedia-like
// dataset that substitutes for the live DBpedia endpoint in all
// experiments (see DESIGN.md's substitution table). The dataset has an
// RDFS class hierarchy, materialized rdf:type edges, English-tagged name
// literals, numeric typed literals, long "abstract" literals that
// exercise the 80-character cache cap, and the specific entities the
// QALD-like question suite (Appendix B of the paper) needs so gold
// answers are known by construction.
package datagen

import (
	"fmt"
	"math/rand"
	"strings"

	"sapphire/internal/rdf"
	"sapphire/internal/store"
)

// Config controls dataset size. Counts are filler entities in addition to
// the fixed, known entities used by the question suite.
type Config struct {
	Seed      int64
	People    int
	Cities    int
	Books     int
	Films     int
	Companies int
	// Abstracts attaches a >80-char dbo:abstract to every known and
	// filler entity, exercising the literal length cap.
	Abstracts bool
}

// DefaultConfig is the benchmark-scale dataset (~25k triples).
func DefaultConfig() Config {
	return Config{Seed: 1, People: 2000, Cities: 300, Books: 500, Films: 400, Companies: 200, Abstracts: true}
}

// SmallConfig is a fast dataset for unit tests (~3k triples).
func SmallConfig() Config {
	return Config{Seed: 1, People: 40, Cities: 15, Books: 20, Films: 15, Companies: 12, Abstracts: true}
}

// Dataset is the generated graph plus handles to the known entities.
type Dataset struct {
	Store *store.Store
	Cfg   Config

	// loader stages triples during generation; Generate commits it once
	// at the end, so building the dataset never pays the incremental
	// path's per-key insertion sort.
	loader *store.BulkLoader
}

// IRI helpers mirroring the paper's DBpedia namespaces.

// Res returns a dbr: resource IRI.
func Res(local string) rdf.Term { return rdf.NewIRI(rdf.NSDBR + local) }

// Onto returns a dbo: ontology IRI (classes and predicates).
func Onto(local string) rdf.Term { return rdf.NewIRI(rdf.NSDBO + local) }

// Predicates used by the generated data.
var (
	PredName          = Onto("name")
	PredLabel         = rdf.NewIRI(rdf.RDFSLabel)
	PredBirthPlace    = Onto("birthPlace")
	PredDeathPlace    = Onto("deathPlace")
	PredBirthDate     = Onto("birthDate")
	PredBirthYear     = Onto("birthYear")
	PredSpouse        = Onto("spouse")
	PredChild         = Onto("child")
	PredParent        = Onto("parent")
	PredAlmaMater     = Onto("almaMater")
	PredAffiliation   = Onto("affiliation")
	PredInstrument    = Onto("instrument")
	PredStarring      = Onto("starring")
	PredDirector      = Onto("director")
	PredAuthor        = Onto("author")
	PredPublisher     = Onto("publisher")
	PredPages         = Onto("numberOfPages")
	PredBudget        = Onto("budget")
	PredPopulation    = Onto("populationTotal")
	PredCapital       = Onto("capital")
	PredCountry       = Onto("country")
	PredTimeZone      = Onto("timeZone")
	PredCurrency      = Onto("currency")
	PredDesigner      = Onto("designer")
	PredCreator       = Onto("creator")
	PredDepth         = Onto("maximumDepth")
	PredIndustry      = Onto("industry")
	PredVicePres      = Onto("vicePresident")
	PredNickname      = Onto("nickname")
	PredSourceCountry = Onto("sourceCountry")
	PredState         = Onto("state")
	PredAbstract      = Onto("abstract")
	PredLocatedIn     = Onto("locatedInArea")
)

// Classes, with their superclass. The hierarchy mirrors DBpedia's shape:
// a handful of roots, two to three levels deep.
var classHierarchy = map[string]string{
	"Agent":                "",
	"Person":               "Agent",
	"Scientist":            "Person",
	"Writer":               "Person",
	"Politician":           "Person",
	"President":            "Politician",
	"Senator":              "Politician",
	"Actor":                "Person",
	"MovieDirector":        "Person",
	"ChessPlayer":          "Person",
	"Musician":             "Person",
	"Royalty":              "Person",
	"Place":                "",
	"PopulatedPlace":       "Place",
	"City":                 "PopulatedPlace",
	"Country":              "PopulatedPlace",
	"AdministrativeRegion": "PopulatedPlace",
	"Lake":                 "Place",
	"River":                "Place",
	"Bridge":               "Place",
	"MilitaryStructure":    "Place",
	"Work":                 "",
	"Book":                 "Work",
	"Film":                 "Work",
	"TelevisionShow":       "Work",
	"Website":              "Work",
	"Organisation":         "Agent",
	"University":           "Organisation",
	"Company":              "Organisation",
	"PublishingHouse":      "Company",
	"TimeZone":             "",
	"Currency":             "",
	"Instrument":           "",
	"Industry":             "",
}

// Generate builds the dataset through the store's staged bulk-load
// path: every triple is buffered and the indexes are built in a single
// commit.
func Generate(cfg Config) *Dataset {
	return GenerateInto(cfg, store.New())
}

// GenerateInto is Generate targeting an existing (empty) store — the
// durable serving path generates straight into a recovered store so the
// dataset can be snapshotted without an intermediate copy.
func GenerateInto(cfg Config, st *store.Store) *Dataset {
	d := &Dataset{Store: st, Cfg: cfg, loader: store.NewBulkLoader(st)}
	rng := rand.New(rand.NewSource(cfg.Seed))
	d.addHierarchy()
	d.addKnownEntities()
	d.addFillers(rng)
	d.loader.Commit()
	// Drop the loader: frees the staging buffer and turns any
	// post-Generate add() into an immediate panic instead of silently
	// staging triples that never commit.
	d.loader = nil
	return d
}

func (d *Dataset) add(s, p, o rdf.Term) {
	d.loader.MustAdd(rdf.NewTriple(s, p, o))
}

// typeEntity materializes the entity's class and all its ancestors, the
// way DBpedia publishes transitive types.
func (d *Dataset) typeEntity(s rdf.Term, class string) {
	typ := rdf.NewIRI(rdf.RDFType)
	for c := class; c != ""; c = classHierarchy[c] {
		d.add(s, typ, Onto(c))
	}
}

func (d *Dataset) addHierarchy() {
	sub := rdf.NewIRI(rdf.RDFSSubClassOf)
	owlClass := rdf.NewIRI(rdf.OWLClass)
	owlThing := rdf.NewIRI(rdf.OWLThing)
	typ := rdf.NewIRI(rdf.RDFType)
	for c, super := range classHierarchy {
		d.add(Onto(c), typ, owlClass)
		d.add(Onto(c), PredLabel, rdf.NewLangLiteral(spaceCamel(c), "en"))
		if super != "" {
			d.add(Onto(c), sub, Onto(super))
		}
	}
	// owl:Class itself participates in the hierarchy (as in DBpedia), so
	// the initialization walk reaches the class entities and caches
	// their labels — the literals users type to anchor rdf:type
	// patterns ("Chess Player", "City", ...).
	d.add(owlClass, typ, owlClass)
	d.add(owlClass, sub, owlThing)
	d.add(owlThing, typ, owlClass)
	d.add(owlClass, PredLabel, rdf.NewLangLiteral("Class", "en"))
	d.add(owlThing, PredLabel, rdf.NewLangLiteral("Thing", "en"))
	// Keep type materialization consistent up to owl:Thing: class
	// entities are owl:Class instances, hence also owl:Thing instances.
	// Without this, the hierarchy walk sees an empty owl:Thing root,
	// treats it as fully retrieved, and never reaches the class labels.
	for c := range classHierarchy {
		d.add(Onto(c), typ, owlThing)
	}
	d.add(owlClass, typ, owlThing)
}

// spaceCamel converts "MovieDirector" to "Movie Director".
func spaceCamel(s string) string {
	var b strings.Builder
	for i, r := range s {
		if i > 0 && r >= 'A' && r <= 'Z' {
			b.WriteByte(' ')
		}
		b.WriteRune(r)
	}
	return b.String()
}

// en returns an English-tagged literal.
func en(s string) rdf.Term { return rdf.NewLangLiteral(s, "en") }

// num returns an xsd:integer literal.
func num(n int) rdf.Term {
	return rdf.NewTypedLiteral(fmt.Sprint(n), rdf.XSDInteger)
}

// date returns an xsd:date literal.
func date(s string) rdf.Term { return rdf.NewTypedLiteral(s, rdf.XSDDate) }

// person adds a typed person with a name and returns its IRI.
func (d *Dataset) person(local, name, class string) rdf.Term {
	s := Res(local)
	d.typeEntity(s, class)
	d.add(s, PredName, en(name))
	d.add(s, PredLabel, en(name))
	return s
}

// place adds a typed place with a name.
func (d *Dataset) place(local, name, class string) rdf.Term {
	s := Res(local)
	d.typeEntity(s, class)
	d.add(s, PredName, en(name))
	d.add(s, PredLabel, en(name))
	return s
}

func (d *Dataset) abstract(s rdf.Term, name string) {
	if !d.Cfg.Abstracts {
		return
	}
	text := name + " is an entity in the synthetic knowledge graph generated for the Sapphire reproduction; this abstract exists to exceed the eighty character literal cache cap."
	d.add(s, PredAbstract, en(text))
}

// addKnownEntities creates every entity the QALD-like question suite
// references, with gold answers fixed by construction. Each block below
// names the Appendix B question it serves.
func (d *Dataset) addKnownEntities() {
	// --- Countries, shared infrastructure ---
	india := d.place("India", "India", "Country")
	usa := d.place("United_States", "United States", "Country")
	canada := d.place("Canada", "Canada", "Country")
	australia := d.place("Australia", "Australia", "Country")
	czech := d.place("Czech_Republic", "Czech Republic", "Country")
	spain := d.place("Spain", "Spain", "Country")
	russia := d.place("Russia", "Russia", "Country")

	// --- Easy 1: country in which the Ganges starts ---
	ganges := d.place("Ganges", "Ganges", "River")
	d.add(ganges, PredSourceCountry, india)
	d.abstract(ganges, "Ganges")

	// --- Easy 2: JFK's vice president ---
	jfk := d.person("John_F._Kennedy", "John F. Kennedy", "President")
	lbj := d.person("Lyndon_B._Johnson", "Lyndon B. Johnson", "President")
	d.add(jfk, PredVicePres, lbj)
	d.add(jfk, PredBirthYear, num(1917))
	d.abstract(jfk, "John F. Kennedy")

	// --- Easy 3: time zone of Salt Lake City ---
	slc := d.place("Salt_Lake_City", "Salt Lake City", "City")
	mtz := d.place("Mountain_Time_Zone", "Mountain Time Zone", "TimeZone")
	d.add(slc, PredTimeZone, mtz)
	d.add(slc, PredCountry, usa)
	d.add(slc, PredPopulation, num(200591))

	// --- Easy 4: Tom Hanks's wife ---
	hanks := d.person("Tom_Hanks", "Tom Hanks", "Actor")
	rita := d.person("Rita_Wilson", "Rita Wilson", "Actor")
	d.add(hanks, PredSpouse, rita)
	d.add(rita, PredSpouse, hanks)

	// --- Easy 5: children of Margaret Thatcher ---
	thatcher := d.person("Margaret_Thatcher", "Margaret Thatcher", "Politician")
	mark := d.person("Mark_Thatcher", "Mark Thatcher", "Person")
	carolT := d.person("Carol_Thatcher", "Carol Thatcher", "Person")
	d.add(thatcher, PredChild, mark)
	d.add(thatcher, PredChild, carolT)

	// --- Easy 6: currency of the Czech Republic ---
	koruna := d.place("Czech_koruna", "Czech koruna", "Currency")
	d.add(czech, PredCurrency, koruna)

	// --- Easy 7: designer of the Brooklyn Bridge ---
	bridge := d.place("Brooklyn_Bridge", "Brooklyn Bridge", "Bridge")
	roebling := d.person("John_A._Roebling", "John A. Roebling", "Person")
	d.add(bridge, PredDesigner, roebling)

	// --- Easy 8: wife of Abraham Lincoln ---
	lincoln := d.person("Abraham_Lincoln", "Abraham Lincoln", "President")
	maryTodd := d.person("Mary_Todd_Lincoln", "Mary Todd Lincoln", "Person")
	d.add(lincoln, PredSpouse, maryTodd)

	// --- Easy 9: creator of Wikipedia ---
	wikipedia := d.place("Wikipedia", "Wikipedia", "Website")
	wales := d.person("Jimmy_Wales", "Jimmy Wales", "Person")
	d.add(wikipedia, PredCreator, wales)

	// --- Easy 10: depth of Lake Placid ---
	placid := d.place("Lake_Placid", "Lake Placid", "Lake")
	d.add(placid, PredDepth, num(15))
	d.add(placid, PredCountry, usa)

	// --- Medium 1: instruments played by Cat Stevens ---
	stevens := d.person("Cat_Stevens", "Cat Stevens", "Musician")
	guitar := d.place("Guitar", "Guitar", "Instrument")
	piano := d.place("Piano", "Piano", "Instrument")
	d.add(stevens, PredInstrument, guitar)
	d.add(stevens, PredInstrument, piano)

	// --- Medium 2: parents of the wife of Juan Carlos I ---
	juan := d.person("Juan_Carlos_I", "Juan Carlos I", "Royalty")
	sofia := d.person("Queen_Sofia", "Queen Sofia", "Royalty")
	paulG := d.person("Paul_of_Greece", "Paul of Greece", "Royalty")
	frederica := d.person("Frederica_of_Hanover", "Frederica of Hanover", "Royalty")
	d.add(juan, PredSpouse, sofia)
	d.add(sofia, PredParent, paulG)
	d.add(sofia, PredParent, frederica)
	d.add(juan, PredCountry, spain)

	// --- Medium 3: U.S. state in which Fort Knox is located ---
	knox := d.place("Fort_Knox", "Fort Knox", "MilitaryStructure")
	kentucky := d.place("Kentucky", "Kentucky", "AdministrativeRegion")
	d.add(knox, PredState, kentucky)
	d.add(kentucky, PredCountry, usa)

	// --- Medium 4: person who is called Frank The Tank ---
	ricard := d.person("Frank_Ricard", "Frank Ricard", "Person")
	d.add(ricard, PredNickname, en("Frank The Tank"))

	// --- Medium 5: birthdays of all actors of Charmed ---
	charmed := Res("Charmed")
	d.typeEntity(charmed, "TelevisionShow")
	d.add(charmed, PredName, en("Charmed"))
	milano := d.person("Alyssa_Milano", "Alyssa Milano", "Actor")
	combs := d.person("Holly_Marie_Combs", "Holly Marie Combs", "Actor")
	doherty := d.person("Shannen_Doherty", "Shannen Doherty", "Actor")
	d.add(milano, PredBirthDate, date("1972-12-19"))
	d.add(combs, PredBirthDate, date("1973-12-03"))
	d.add(doherty, PredBirthDate, date("1971-04-12"))
	for _, a := range []rdf.Term{milano, combs, doherty} {
		d.add(charmed, PredStarring, a)
	}

	// --- Medium 6: country of Limerick Lake ---
	limerick := d.place("Limerick_Lake", "Limerick Lake", "Lake")
	d.add(limerick, PredCountry, canada)

	// --- Medium 7: spouse of Robert F. Kennedy's daughter ---
	rfk := d.person("Robert_F._Kennedy", "Robert F. Kennedy", "Politician")
	kathleen := d.person("Kathleen_Kennedy_Townsend", "Kathleen Kennedy Townsend", "Politician")
	townsend := d.person("David_Townsend", "David Townsend", "Person")
	d.add(rfk, PredChild, kathleen)
	d.add(kathleen, PredSpouse, townsend)
	// More Kennedys so "Kennedy" substring searches return a family.
	ted := d.person("Ted_Kennedy", "Ted Kennedy", "Senator")
	d.add(rfk, PredSpouse, d.person("Ethel_Kennedy", "Ethel Kennedy", "Person"))
	_ = ted

	// --- Medium 8: population of the capital of Australia ---
	canberra := d.place("Canberra", "Canberra", "City")
	d.add(australia, PredCapital, canberra)
	d.add(canberra, PredPopulation, num(395790))
	d.add(canberra, PredCountry, australia)

	// --- Difficult 1: chess players who died where they were born ---
	moscow := d.place("Moscow", "Moscow", "City")
	d.add(moscow, PredCountry, russia)
	smyslov := d.person("Vasily_Smyslov", "Vasily Smyslov", "ChessPlayer")
	d.add(smyslov, PredBirthPlace, moscow)
	d.add(smyslov, PredDeathPlace, moscow)
	petrosian := d.person("Tigran_Petrosian", "Tigran Petrosian", "ChessPlayer")
	tbilisi := d.place("Tbilisi", "Tbilisi", "City")
	d.add(petrosian, PredBirthPlace, tbilisi)
	d.add(petrosian, PredDeathPlace, moscow)
	tal := d.person("Mikhail_Tal", "Mikhail Tal", "ChessPlayer")
	riga := d.place("Riga", "Riga", "City")
	d.add(tal, PredBirthPlace, riga)
	d.add(tal, PredDeathPlace, riga)

	// --- Difficult 2: books by William Goldman with more than 300 pages ---
	goldman := d.person("William_Goldman", "William Goldman", "Writer")
	d.book("Boys_and_Girls_Together", "Boys and Girls Together", goldman, nil, 751)
	d.book("The_Princess_Bride", "The Princess Bride", goldman, nil, 283)
	d.book("The_Temple_of_Gold", "The Temple of Gold", goldman, nil, 310)

	// --- Difficult 3: books by Jack Kerouac published by Viking Press ---
	kerouac := d.person("Jack_Kerouac", "Jack Kerouac", "Writer")
	viking := Res("Viking_Press")
	d.typeEntity(viking, "PublishingHouse")
	d.add(viking, PredLabel, en("Viking Press"))
	d.add(viking, PredName, en("Viking Press"))
	grove := Res("Grove_Press")
	d.typeEntity(grove, "PublishingHouse")
	d.add(grove, PredLabel, en("Grove Press"))
	d.add(grove, PredName, en("Grove Press"))
	d.book("On_the_Road", "On the Road", kerouac, &viking, 320)
	d.book("Door_Wide_Open", "Door Wide Open", kerouac, &viking, 208)
	d.book("Doctor_Sax", "Doctor Sax", kerouac, &grove, 250)
	// Big Sur the movie, as in Figure 6: same name space, different type.
	bigsur := Res("Big_Sur_film")
	d.typeEntity(bigsur, "Film")
	d.add(bigsur, PredName, en("Big Sur"))
	d.add(bigsur, Onto("writer"), kerouac)

	// --- Difficult 4: Spielberg films with budget >= $80M ---
	spielberg := d.person("Steven_Spielberg", "Steven Spielberg", "MovieDirector")
	d.film("Jaws", "Jaws", spielberg, nil, 7_000_000)
	d.film("Jurassic_Park", "Jurassic Park", spielberg, nil, 63_000_000)
	d.film("Minority_Report", "Minority Report", spielberg, nil, 102_000_000)
	d.film("War_of_the_Worlds", "War of the Worlds", spielberg, nil, 132_000_000)

	// --- Difficult 5: most populous city in Australia ---
	sydney := d.place("Sydney", "Sydney", "City")
	d.add(sydney, PredPopulation, num(4840628))
	d.add(sydney, PredCountry, australia)
	melbourne := d.place("Melbourne", "Melbourne", "City")
	d.add(melbourne, PredPopulation, num(4440328))
	d.add(melbourne, PredCountry, australia)

	// --- Difficult 6: films starring Clint Eastwood directed by himself ---
	eastwood := d.person("Clint_Eastwood", "Clint Eastwood", "MovieDirector")
	d.typeEntity(eastwood, "Actor")
	gran := d.film("Gran_Torino", "Gran Torino", eastwood, &eastwood, 33_000_000)
	mdb := d.film("Million_Dollar_Baby", "Million Dollar Baby", eastwood, &eastwood, 30_000_000)
	unforgiven := d.film("Unforgiven", "Unforgiven", eastwood, &eastwood, 14_400_000)
	petersen := d.person("Wolfgang_Petersen", "Wolfgang Petersen", "MovieDirector")
	lineOfFire := d.film("In_the_Line_of_Fire", "In the Line of Fire", petersen, &eastwood, 40_000_000)
	_, _, _, _ = gran, mdb, unforgiven, lineOfFire

	// --- Difficult 7: presidents born in 1945 ---
	p1945a := d.person("Aldo_Ferrar", "Aldo Ferrar", "President")
	d.add(p1945a, PredBirthYear, num(1945))
	p1945b := d.person("Nora_Vasquez", "Nora Vasquez", "President")
	d.add(p1945b, PredBirthYear, num(1945))
	d.add(lincoln, PredBirthYear, num(1809))

	// --- Difficult 8: companies in both aerospace and medicine ---
	aero := d.place("Aerospace", "Aerospace", "Industry")
	medicine := d.place("Medicine", "Medicine", "Industry")
	dual := Res("Helix_Dynamics")
	d.typeEntity(dual, "Company")
	d.add(dual, PredName, en("Helix Dynamics"))
	d.add(dual, PredIndustry, aero)
	d.add(dual, PredIndustry, medicine)
	aeroOnly := Res("Vector_Aerospace_Corp")
	d.typeEntity(aeroOnly, "Company")
	d.add(aeroOnly, PredName, en("Vector Aerospace Corp"))
	d.add(aeroOnly, PredIndustry, aero)
	medOnly := Res("Remedia_Labs")
	d.typeEntity(medOnly, "Company")
	d.add(medOnly, PredName, en("Remedia Labs"))
	d.add(medOnly, PredIndustry, medicine)

	// --- Difficult 9: inhabitants of the most populous Canadian city ---
	toronto := d.place("Toronto", "Toronto", "City")
	d.add(toronto, PredPopulation, num(2615060))
	d.add(toronto, PredCountry, canada)
	montreal := d.place("Montreal", "Montreal", "City")
	d.add(montreal, PredPopulation, num(1649519))
	d.add(montreal, PredCountry, canada)

	// --- Intro query: scientists from Ivy League universities ---
	ivy := Res("Ivy_League")
	d.add(ivy, PredName, en("Ivy League"))
	harvard := Res("Harvard_University")
	d.typeEntity(harvard, "University")
	d.add(harvard, PredName, en("Harvard University"))
	d.add(harvard, PredAffiliation, ivy)
	princeton := Res("Princeton_University")
	d.typeEntity(princeton, "University")
	d.add(princeton, PredName, en("Princeton University"))
	d.add(princeton, PredAffiliation, ivy)
	mit := Res("MIT")
	d.typeEntity(mit, "University")
	d.add(mit, PredName, en("Massachusetts Institute of Technology"))
	einstein := d.person("Albert_Einstein", "Albert Einstein", "Scientist")
	d.add(einstein, PredAlmaMater, princeton)
	feynman := d.person("Richard_Feynman", "Richard Feynman", "Scientist")
	d.add(feynman, PredAlmaMater, mit)
	nash := d.person("John_Nash", "John Nash", "Scientist")
	d.add(nash, PredAlmaMater, princeton)
	curie := d.person("Marie_Curie", "Marie Curie", "Scientist")
	d.add(curie, PredAlmaMater, harvard) // synthetic fact for the count
	d.abstract(einstein, "Albert Einstein")
}

// book adds a Book with author, optional publisher, and page count.
func (d *Dataset) book(local, name string, author rdf.Term, publisher *rdf.Term, pages int) rdf.Term {
	b := Res(local)
	d.typeEntity(b, "Book")
	d.add(b, PredName, en(name))
	d.add(b, PredLabel, en(name))
	d.add(b, PredAuthor, author)
	if publisher != nil {
		d.add(b, PredPublisher, *publisher)
	}
	d.add(b, PredPages, num(pages))
	return b
}

// film adds a Film with director, optional star, and budget.
func (d *Dataset) film(local, name string, director rdf.Term, star *rdf.Term, budget int) rdf.Term {
	f := Res(local)
	d.typeEntity(f, "Film")
	d.add(f, PredName, en(name))
	d.add(f, PredLabel, en(name))
	d.add(f, PredDirector, director)
	if star != nil {
		d.add(f, PredStarring, *star)
	}
	d.add(f, PredBudget, num(budget))
	return f
}

// addFillers adds the bulk entities that give the dataset realistic
// statistics: many distinct literals, skewed predicate frequencies, and
// entities with incoming edges so significance scoring has signal.
func (d *Dataset) addFillers(rng *rand.Rand) {
	classes := []string{"Person", "Scientist", "Writer", "Politician", "Actor", "Musician"}
	var cities []rdf.Term
	for i := 0; i < d.Cfg.Cities; i++ {
		stem := cityStems[rng.Intn(len(cityStems))]
		suf := citySuffixes[rng.Intn(len(citySuffixes))]
		name := fmt.Sprintf("%s%s", stem, suf)
		local := fmt.Sprintf("City_%s_%d", name, i)
		c := d.place(local, name, "City")
		d.add(c, PredPopulation, num(1000+rng.Intn(5_000_000)))
		cities = append(cities, c)
		if rng.Intn(4) == 0 {
			d.abstract(c, name)
		}
	}
	if len(cities) == 0 {
		cities = append(cities, Res("Moscow"))
	}
	var people []rdf.Term
	for i := 0; i < d.Cfg.People; i++ {
		first := firstNames[rng.Intn(len(firstNames))]
		last := surnames[rng.Intn(len(surnames))]
		name := first + " " + last
		local := fmt.Sprintf("Person_%s_%s_%d", first, last, i)
		p := d.person(local, name, classes[rng.Intn(len(classes))])
		d.add(p, PredBirthPlace, cities[rng.Intn(len(cities))])
		d.add(p, PredBirthYear, num(1900+rng.Intn(100)))
		if rng.Intn(3) == 0 {
			d.add(p, PredBirthDate, date(fmt.Sprintf("%04d-%02d-%02d",
				1900+rng.Intn(100), 1+rng.Intn(12), 1+rng.Intn(28))))
		}
		if len(people) > 0 && rng.Intn(5) == 0 {
			d.add(p, PredSpouse, people[rng.Intn(len(people))])
		}
		people = append(people, p)
		if rng.Intn(6) == 0 {
			d.abstract(p, name)
		}
	}
	for i := 0; i < d.Cfg.Books; i++ {
		adj := bookAdjectives[rng.Intn(len(bookAdjectives))]
		noun := bookNouns[rng.Intn(len(bookNouns))]
		name := fmt.Sprintf("The %s %s", adj, noun)
		author := people[rng.Intn(len(people))]
		d.book(fmt.Sprintf("Book_%s_%s_%d", adj, noun, i), name, author, nil, 80+rng.Intn(800))
	}
	for i := 0; i < d.Cfg.Films; i++ {
		adj := bookAdjectives[rng.Intn(len(bookAdjectives))]
		noun := bookNouns[rng.Intn(len(bookNouns))]
		name := fmt.Sprintf("%s %s", adj, noun)
		director := people[rng.Intn(len(people))]
		star := people[rng.Intn(len(people))]
		d.film(fmt.Sprintf("Film_%s_%s_%d", adj, noun, i), name, director, &star, 1_000_000+rng.Intn(200_000_000))
	}
	industries := make([]rdf.Term, len(industryNames))
	for i, n := range industryNames {
		ind := Res("Industry_" + n)
		d.typeEntity(ind, "Industry")
		d.add(ind, PredName, en(n))
		industries[i] = ind
	}
	for i := 0; i < d.Cfg.Companies; i++ {
		stem := companyStems[rng.Intn(len(companyStems))]
		suf := companySuffixes[rng.Intn(len(companySuffixes))]
		name := stem + " " + suf
		c := Res(fmt.Sprintf("Company_%s_%s_%d", stem, suf, i))
		d.typeEntity(c, "Company")
		d.add(c, PredName, en(name))
		d.add(c, PredIndustry, industries[rng.Intn(len(industries))])
		if rng.Intn(3) == 0 {
			d.add(c, PredIndustry, industries[rng.Intn(len(industries))])
		}
	}
	// A sprinkle of non-English literals so the language filter has work.
	for i := 0; i < d.Cfg.Cities/3+1; i++ {
		c := cities[rng.Intn(len(cities))]
		d.add(c, PredLabel, rdf.NewLangLiteral(fmt.Sprintf("Stadt %d", i), "de"))
	}
}
