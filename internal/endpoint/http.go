package endpoint

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"sapphire/internal/rdf"
	"sapphire/internal/sparql"
)

// jsonResults is the SPARQL 1.1 Query Results JSON format, the wire
// representation between the HTTP endpoint and client.
type jsonResults struct {
	Head struct {
		Vars []string `json:"vars"`
	} `json:"head"`
	Results struct {
		Bindings []map[string]jsonTerm `json:"bindings"`
	} `json:"results"`
}

type jsonTerm struct {
	Type     string `json:"type"` // "uri", "literal", "bnode"
	Value    string `json:"value"`
	Lang     string `json:"xml:lang,omitempty"`
	Datatype string `json:"datatype,omitempty"`
}

func toJSONResults(res *sparql.Results) *jsonResults {
	out := &jsonResults{}
	out.Head.Vars = res.Vars
	out.Results.Bindings = make([]map[string]jsonTerm, 0, len(res.Rows))
	for _, row := range res.Rows {
		b := make(map[string]jsonTerm, len(row))
		for v, t := range row {
			b[v] = toJSONTerm(t)
		}
		out.Results.Bindings = append(out.Results.Bindings, b)
	}
	return out
}

func toJSONTerm(t rdf.Term) jsonTerm {
	switch t.Kind {
	case rdf.KindIRI:
		return jsonTerm{Type: "uri", Value: t.Value}
	case rdf.KindBlank:
		return jsonTerm{Type: "bnode", Value: t.Value}
	default:
		return jsonTerm{Type: "literal", Value: t.Value, Lang: t.Lang, Datatype: t.Datatype}
	}
}

func fromJSONTerm(jt jsonTerm) (rdf.Term, error) {
	switch jt.Type {
	case "uri":
		return rdf.NewIRI(jt.Value), nil
	case "bnode":
		return rdf.NewBlank(jt.Value), nil
	case "literal", "typed-literal":
		switch {
		case jt.Lang != "":
			return rdf.NewLangLiteral(jt.Value, jt.Lang), nil
		case jt.Datatype != "":
			return rdf.NewTypedLiteral(jt.Value, jt.Datatype), nil
		default:
			return rdf.NewLiteral(jt.Value), nil
		}
	default:
		return rdf.Term{}, fmt.Errorf("endpoint: unknown term type %q", jt.Type)
	}
}

// EpochHeader carries the endpoint's mutation epoch on every query
// response from an Epoched endpoint, and GET ?epoch probes it without
// running a query. Federated callers use the epoch to invalidate their
// caches only when a member's data actually changed.
const EpochHeader = "X-Sapphire-Epoch"

// Handler exposes an Endpoint over HTTP at the conventional /sparql
// path semantics: GET with ?query= or POST with form/raw body. Errors
// map to HTTP statuses: parse errors 400, timeouts 503, rejections 429.
//
// Two extensions carry the mutation epoch of Epoched endpoints across
// the wire: every query response bears the EpochHeader (the epoch read
// before evaluation, so a cached downstream entry keyed by it can never
// claim data newer than it serves), and `GET ?epoch` with no query
// returns the current epoch as a decimal body — the cheap probe
// federation invalidation runs. Non-Epoched endpoints answer the probe
// with 404.
func Handler(ep Endpoint) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var query string
		switch r.Method {
		case http.MethodGet:
			query = r.URL.Query().Get("query")
			if query == "" && r.URL.Query().Has("epoch") {
				if e, ok := epochOf(r.Context(), ep); ok {
					w.Header().Set("Content-Type", "text/plain")
					fmt.Fprintf(w, "%d", e)
					return
				}
				http.Error(w, "endpoint does not report epochs", http.StatusNotFound)
				return
			}
		case http.MethodPost:
			ct := r.Header.Get("Content-Type")
			if strings.HasPrefix(ct, "application/x-www-form-urlencoded") {
				if err := r.ParseForm(); err != nil {
					http.Error(w, err.Error(), http.StatusBadRequest)
					return
				}
				query = r.PostForm.Get("query")
			} else {
				body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
				if err != nil {
					http.Error(w, err.Error(), http.StatusBadRequest)
					return
				}
				query = string(body)
			}
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		if strings.TrimSpace(query) == "" {
			http.Error(w, "missing query", http.StatusBadRequest)
			return
		}
		// The per-query header probe is skipped for endpoints whose
		// Epoch is itself a network round trip (a Handler proxying a
		// Client would otherwise double upstream traffic); the explicit
		// GET ?epoch probe above still forwards for them.
		var epoch uint64
		epochKnown := false
		if _, remote := ep.(remoteEpoched); !remote {
			epoch, epochKnown = epochOf(r.Context(), ep)
		}
		res, err := ep.Query(r.Context(), query)
		if err != nil {
			switch {
			case errors.Is(err, ErrTimeout):
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
			case errors.Is(err, ErrRejected):
				http.Error(w, err.Error(), http.StatusTooManyRequests)
			default:
				http.Error(w, err.Error(), http.StatusBadRequest)
			}
			return
		}
		w.Header().Set("Content-Type", "application/sparql-results+json")
		if epochKnown {
			w.Header().Set(EpochHeader, strconv.FormatUint(epoch, 10))
		}
		_ = json.NewEncoder(w).Encode(toJSONResults(res))
	})
}

// epochOf reads an endpoint's epoch when it reports one.
func epochOf(ctx context.Context, ep Endpoint) (uint64, bool) {
	if e, ok := ep.(Epoched); ok {
		return e.Epoch(ctx)
	}
	return 0, false
}

// remoteEpoched marks Epoched implementations whose Epoch call costs a
// network round trip rather than an atomic load.
type remoteEpoched interface{ epochViaNetwork() }

func (c *Client) epochViaNetwork() {}

// Client is an Endpoint talking to a remote SPARQL HTTP endpoint.
// Queries are retried per the client's RetryPolicy — see NewClient.
type Client struct {
	url     string
	client  *http.Client
	retrier *retrier
}

// NewClient returns a client for the endpoint at rawURL with the
// default RetryPolicy: transient failures (connection errors, 5xx)
// retry a bounded number of times with jittered exponential backoff,
// each attempt under its own timeout.
func NewClient(rawURL string) *Client {
	return NewClientWithPolicy(rawURL, RetryPolicy{})
}

// NewClientWithPolicy returns a client with an explicit RetryPolicy.
// Zero fields select defaults; MaxAttempts 1 disables retries.
func NewClientWithPolicy(rawURL string, p RetryPolicy) *Client {
	// No whole-query http.Client timeout: the per-attempt context bounds
	// each try, and the caller's context bounds the whole exchange.
	return &Client{url: rawURL, client: &http.Client{}, retrier: newRetrier(p)}
}

// Name implements Endpoint.
func (c *Client) Name() string { return c.url }

// Epoch implements Epoched by probing the server with `GET ?epoch`
// (see Handler). ok is false when the server is unreachable, predates
// the epoch protocol, or wraps a non-Epoched endpoint — callers then
// fall back to manual cache invalidation.
func (c *Client) Epoch(ctx context.Context) (uint64, bool) {
	u := c.url
	if strings.Contains(u, "?") {
		u += "&epoch"
	} else {
		u += "?epoch"
	}
	// One attempt under the per-attempt timeout: the probe's failure mode
	// (ok=false) already has a graceful fallback, so it never retries.
	ctx, cancel := context.WithTimeout(ctx, c.retrier.policy.perAttempt())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return 0, false
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return 0, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, false
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64))
	if err != nil {
		return 0, false
	}
	e, err := strconv.ParseUint(strings.TrimSpace(string(body)), 10, 64)
	if err != nil {
		return 0, false
	}
	return e, true
}

// Query implements Endpoint by POSTing the query as a form and decoding
// the SPARQL JSON results. HTTP 503 maps back to ErrTimeout and 429 to
// ErrRejected so callers can react uniformly to local and remote
// endpoints.
//
// Transient failures — connection errors and 5xx statuses, including
// the 503 a Handler emits for an evaluation timeout — are retried per
// the client's RetryPolicy with jittered exponential backoff, each
// attempt under its own timeout. 429/ErrRejected and other 4xx fail
// immediately: the server rejected the query itself, and re-sending it
// unchanged cannot succeed. A done parent context stops the loop
// mid-backoff or mid-attempt.
func (c *Client) Query(ctx context.Context, query string) (*sparql.Results, error) {
	attempts := c.retrier.policy.attempts()
	var lastErr error
	for attempt := 1; attempt <= attempts; attempt++ {
		if attempt > 1 {
			if err := sleep(ctx, c.retrier.backoff(attempt-1)); err != nil {
				return nil, fmt.Errorf("endpoint %s: %w (last attempt: %v)", c.url, err, lastErr)
			}
		}
		res, retryable, err := c.queryOnce(ctx, query)
		if err == nil {
			return res, nil
		}
		lastErr = err
		if !retryable {
			return nil, err
		}
	}
	return nil, fmt.Errorf("endpoint %s: after %d attempts: %w", c.url, attempts, lastErr)
}

// queryOnce runs one attempt under the per-attempt timeout. retryable
// classifies the failure: true for transport errors and 5xx (transient,
// worth another attempt), false for everything the server decided about
// the query itself.
func (c *Client) queryOnce(ctx context.Context, query string) (_ *sparql.Results, retryable bool, _ error) {
	actx, cancel := context.WithTimeout(ctx, c.retrier.policy.perAttempt())
	defer cancel()
	form := url.Values{"query": {query}}
	req, err := http.NewRequestWithContext(actx, http.MethodPost, c.url, strings.NewReader(form.Encode()))
	if err != nil {
		return nil, false, err
	}
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	req.Header.Set("Accept", "application/sparql-results+json")
	resp, err := c.client.Do(req)
	if err != nil {
		// Transport-level failure (or per-attempt timeout): retryable
		// unless the caller's own context is what ended it.
		return nil, ctx.Err() == nil, fmt.Errorf("endpoint %s: %w", c.url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		switch {
		case resp.StatusCode == http.StatusServiceUnavailable:
			return nil, true, fmt.Errorf("%s: %w", strings.TrimSpace(string(msg)), ErrTimeout)
		case resp.StatusCode == http.StatusTooManyRequests:
			return nil, false, fmt.Errorf("%s: %w", strings.TrimSpace(string(msg)), ErrRejected)
		case resp.StatusCode >= 500:
			return nil, true, fmt.Errorf("endpoint %s: HTTP %d: %s", c.url, resp.StatusCode, strings.TrimSpace(string(msg)))
		default:
			return nil, false, fmt.Errorf("endpoint %s: HTTP %d: %s", c.url, resp.StatusCode, strings.TrimSpace(string(msg)))
		}
	}
	var jr jsonResults
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		return nil, false, fmt.Errorf("endpoint %s: bad JSON: %w", c.url, err)
	}
	res := &sparql.Results{Vars: jr.Head.Vars}
	for _, b := range jr.Results.Bindings {
		row := make(sparql.Binding, len(b))
		for v, jt := range b {
			t, err := fromJSONTerm(jt)
			if err != nil {
				return nil, false, err
			}
			row[v] = t
		}
		res.Rows = append(res.Rows, row)
	}
	return res, false, nil
}
