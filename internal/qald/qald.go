// Package qald provides the QALD-5-like evaluation workload: a question
// suite over the synthetic dataset mirroring the paper's Appendix B user
// study questions (plus extras to reach the QALD-5 size of 50), gold
// SPARQL queries with known answers, and the performance measures of
// Section 7.2 (#pro, #ri, #par, R, R*, P, P*, F1, F1*).
package qald

import (
	"context"
	"fmt"
	"sort"

	"sapphire/internal/sparql"
)

// Difficulty follows the paper's three categories.
type Difficulty uint8

const (
	// Easy questions are one-triple factoid lookups.
	Easy Difficulty = iota
	// Medium questions need a join or two.
	Medium
	// Difficult questions need self-joins, filters, aggregates, or
	// superlatives.
	Difficult
)

func (d Difficulty) String() string {
	switch d {
	case Easy:
		return "easy"
	case Medium:
		return "medium"
	default:
		return "difficult"
	}
}

// Node is one position of a plan triple: either a variable or a keyword
// the user would type (to be resolved against the cached data).
type Node struct {
	// Var is the variable name when non-empty.
	Var string
	// Keyword is the user's term for a predicate or literal.
	Keyword string
	// IsLiteral marks keyword object positions that denote literals
	// rather than predicates.
	IsLiteral bool
}

// V returns a variable node.
func V(name string) Node { return Node{Var: name} }

// P returns a predicate-keyword node.
func P(kw string) Node { return Node{Keyword: kw} }

// L returns a literal-keyword node.
func L(kw string) Node { return Node{Keyword: kw, IsLiteral: true} }

// PlanTriple is one triple pattern of the user's plan.
type PlanTriple struct {
	S, P, O Node
}

// Plan describes how a user would express the question in Sapphire's
// triple-pattern UI, using only terms from the question text.
type Plan struct {
	Triples []PlanTriple
	// Filter is an optional raw filter expression over plan variables.
	Filter string
	// OrderDesc optionally sorts descending by this variable.
	OrderDesc string
	// Limit optionally truncates results (with OrderDesc: superlative).
	Limit int
	// Count aggregates the projected variable when true.
	Count bool
	// Project is the answer variable.
	Project string
}

// Question is one benchmark item.
type Question struct {
	ID         string
	Text       string
	Difficulty Difficulty
	// Gold is the correct SPARQL over the synthetic dataset; its single
	// projected column defines the gold answer set.
	Gold string
	// Plan is how a user would describe the question in Sapphire.
	Plan Plan
	// Factoid marks single-relation lookup questions (the subset KBQA
	// handles).
	Factoid bool
	// Relation is the main relation keyword, used by the NL baselines'
	// pattern matching.
	Relation string
	// EntityLiteral is the anchor entity name in the question, used by
	// the NL baselines.
	EntityLiteral string
}

// AnswerSet is a set of answer strings (term values).
type AnswerSet map[string]bool

// NewAnswerSet builds a set from values.
func NewAnswerSet(vals ...string) AnswerSet {
	s := make(AnswerSet, len(vals))
	for _, v := range vals {
		s[v] = true
	}
	return s
}

// Equal reports set equality.
func (a AnswerSet) Equal(b AnswerSet) bool {
	if len(a) != len(b) {
		return false
	}
	for v := range a {
		if !b[v] {
			return false
		}
	}
	return true
}

// Intersects reports whether the sets share an element.
func (a AnswerSet) Intersects(b AnswerSet) bool {
	for v := range a {
		if b[v] {
			return true
		}
	}
	return false
}

// Values returns the sorted elements.
func (a AnswerSet) Values() []string {
	out := make([]string, 0, len(a))
	for v := range a {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// FromResults extracts the answer set from a result's projected column.
// With multiple columns the first variable is used.
func FromResults(res *sparql.Results) AnswerSet {
	out := make(AnswerSet)
	if res == nil || len(res.Vars) == 0 {
		return out
	}
	col := res.Vars[0]
	for _, row := range res.Rows {
		if t, ok := row[col]; ok {
			out[t.Value] = true
		}
	}
	return out
}

// GoldAnswers executes the gold query against a graph and returns the
// answer set.
func GoldAnswers(g sparql.Graph, q Question) (AnswerSet, error) {
	parsed, err := sparql.Parse(q.Gold)
	if err != nil {
		return nil, fmt.Errorf("qald %s: gold parse: %w", q.ID, err)
	}
	res, err := sparql.Eval(g, parsed, sparql.Options{})
	if err != nil {
		return nil, fmt.Errorf("qald %s: gold eval: %w", q.ID, err)
	}
	return FromResults(res), nil
}

// System is anything that can attempt benchmark questions: Sapphire's
// simulated operator and the baseline reimplementations.
type System interface {
	// Name identifies the system in tables.
	Name() string
	// Answer attempts the question. processed reports whether the
	// system produced any answer at all (the #pro measure); an
	// unprocessed question contributes nothing to precision.
	Answer(ctx context.Context, q Question) (answers AnswerSet, processed bool)
}

// Verdict classifies one answered question.
type Verdict uint8

// Verdicts for a processed question.
const (
	// Wrong answers share nothing with gold.
	Wrong Verdict = iota
	// Partial answers intersect gold without matching it.
	Partial
	// Right answers equal gold exactly.
	Right
)

// Judge compares an answer set against gold.
func Judge(answers, gold AnswerSet) Verdict {
	if len(answers) == 0 {
		return Wrong
	}
	if answers.Equal(gold) {
		return Right
	}
	if answers.Intersects(gold) {
		return Partial
	}
	return Wrong
}

// Row is one line of Table 1.
type Row struct {
	System    string
	Processed int
	Right     int
	Partial   int
	Total     int
}

// ProcessedPct is the paper's "%" column.
func (r Row) ProcessedPct() float64 { return pct(r.Processed, r.Total) }

// Recall is R = #ri / #total.
func (r Row) Recall() float64 { return ratio(r.Right, r.Total) }

// PartialRecall is R* = (#ri + #par) / #total.
func (r Row) PartialRecall() float64 { return ratio(r.Right+r.Partial, r.Total) }

// Precision is P = #ri / #pro.
func (r Row) Precision() float64 { return ratio(r.Right, r.Processed) }

// PartialPrecision is P* = (#ri + #par) / #pro.
func (r Row) PartialPrecision() float64 { return ratio(r.Right+r.Partial, r.Processed) }

// F1 is the harmonic mean of P and R.
func (r Row) F1() float64 { return f1(r.Precision(), r.Recall()) }

// F1Star is the harmonic mean of P* and R*.
func (r Row) F1Star() float64 { return f1(r.PartialPrecision(), r.PartialRecall()) }

func pct(a, b int) float64 { return 100 * ratio(a, b) }

func ratio(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func f1(p, r float64) float64 {
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Evaluate runs a system over the questions and scores it against gold
// answers computed on the graph.
func Evaluate(ctx context.Context, sys System, questions []Question, g sparql.Graph) (Row, error) {
	row := Row{System: sys.Name(), Total: len(questions)}
	for _, q := range questions {
		gold, err := GoldAnswers(g, q)
		if err != nil {
			return row, err
		}
		answers, processed := sys.Answer(ctx, q)
		if !processed || len(answers) == 0 {
			continue
		}
		row.Processed++
		switch Judge(answers, gold) {
		case Right:
			row.Right++
		case Partial:
			row.Partial++
		}
	}
	return row, nil
}
