// Command sapphire-server runs the Sapphire assistant as a JSON HTTP
// service over one or more SPARQL endpoints — the "Sapphire Server" box
// of Figure 1. Endpoints are initialized at startup (or loaded from a
// saved cache); the API then serves the interactive loop:
//
//	GET  /complete?term=Kerou        → QCM auto-completions
//	POST /query    (body: SPARQL)    → federated execution
//	POST /suggest  (body: SPARQL)    → QSM suggestions with answer counts
//	POST /run      (body: SPARQL)    → answers + suggestions in one call
//	GET  /stats                      → initialization statistics
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"sapphire"
	"sapphire/internal/endpoint"
	"sapphire/internal/store"
	"sapphire/internal/webapi"
)

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	var endpoints, cachedEndpoints multiFlag
	addr := flag.String("addr", ":8080", "listen address")
	initTimeout := flag.Duration("init-timeout", 15*time.Minute, "per-endpoint initialization deadline")
	epochPoll := flag.Duration("fed-epoch-poll", 0,
		"how often to re-check member epochs for cache invalidation (0 = every query, negative = never)")
	shards := flag.Int("shards", store.DefaultShards(),
		"shard count for any in-process store built by this server (warehouses, local endpoints); 1 = unsharded")
	flag.Var(&endpoints, "endpoint", "SPARQL endpoint URL to register (repeatable)")
	flag.Var(&cachedEndpoints, "cached-endpoint", "URL=cachefile pair registering an endpoint from a saved cache (repeatable)")
	flag.Parse()
	store.SetDefaultShards(*shards)
	if len(endpoints)+len(cachedEndpoints) == 0 {
		log.Fatal("at least one -endpoint or -cached-endpoint is required")
	}

	cfg := sapphire.Defaults()
	cfg.FedEpochPoll = *epochPoll
	client := sapphire.New(cfg)
	for _, url := range endpoints {
		ctx, cancel := context.WithTimeout(context.Background(), *initTimeout)
		log.Printf("registering %s (full initialization) ...", url)
		if err := client.RegisterHTTP(ctx, url); err != nil {
			cancel()
			log.Fatalf("register %s: %v", url, err)
		}
		cancel()
		log.Printf("registered %s", url)
	}
	for _, pair := range cachedEndpoints {
		url, file, ok := strings.Cut(pair, "=")
		if !ok {
			log.Fatalf("-cached-endpoint wants URL=cachefile, got %q", pair)
		}
		f, err := os.Open(file)
		if err != nil {
			log.Fatalf("open cache %s: %v", file, err)
		}
		err = client.RegisterEndpointWithCache(endpoint.NewClient(url), f)
		f.Close()
		if err != nil {
			log.Fatalf("register cached %s: %v", url, err)
		}
		log.Printf("registered %s from cache %s", url, file)
	}
	st := client.Stats()
	log.Printf("cache ready: %d predicates, %d literals (%d significant)",
		st.PredicateCount, st.LiteralCount, st.SignificantCount)

	log.Printf("Sapphire server on %s", *addr)
	log.Fatal(http.ListenAndServe(*addr, webapi.Handler(client)))
}
