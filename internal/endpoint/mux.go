package endpoint

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"sapphire/internal/rdf"
)

// NewMux returns the routed serving surface over an endpoint — the mux
// the serving binaries mount:
//
//	/sparql   the SPARQL protocol route (Handler): GET ?query=, form
//	          POST, raw application/sparql-query POST
//	/epoch    the endpoint's mutation epoch as a decimal text body
//	          (404 for non-Epoched endpoints); supersedes the legacy
//	          `GET /sparql?epoch` probe, which Handler keeps answering
//	/healthz  liveness: {"status":"ok",...} as soon as the process
//	          serves, with the endpoint name and current epoch if known
//
// The result is a plain *http.ServeMux so callers can hang extra routes
// (such as /stats or /add) off the same listener.
func NewMux(ep Endpoint) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/sparql", Handler(ep))
	mux.HandleFunc("/epoch", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(w, r, CodeMethod, "GET /epoch")
			return
		}
		serveEpoch(w, r, ep)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		health := struct {
			Status   string  `json:"status"`
			Endpoint string  `json:"endpoint"`
			Epoch    *uint64 `json:"epoch,omitempty"`
		}{Status: "ok", Endpoint: ep.Name()}
		if e, ok := epochOf(r.Context(), ep); ok {
			health.Epoch = &e
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(health)
	})
	return mux
}

// TripleBatcher applies a batch of triples atomically; persist.DB is
// the durable implementation behind POST /add.
type TripleBatcher interface {
	AddAll(triples []rdf.Triple) error
}

// MaxAddBytes bounds the N-Triples body AddHandler accepts per POST.
const MaxAddBytes = 64 << 20

// AddHandler accepts N-Triples in the POST body and applies them as one
// batch through the TripleBatcher — with persist.DB behind it the batch
// is WAL-logged with a commit marker, so a crash mid-add keeps either
// all of the batch or none of it. Errors use the structured envelope
// when the request accepts JSON, like every other route.
func AddHandler(db TripleBatcher) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeError(w, r, CodeMethod, "POST N-Triples to /add")
			return
		}
		r.Body = http.MaxBytesReader(w, r.Body, MaxAddBytes)
		rd := rdf.NewReader(r.Body)
		var triples []rdf.Triple
		for {
			tr, err := rd.Read()
			if err == io.EOF {
				break
			}
			if err != nil {
				writeError(w, r, bodyErrCode(err), err.Error())
				return
			}
			triples = append(triples, tr)
		}
		if err := db.AddAll(triples); err != nil {
			writeError(w, r, CodeInternal, err.Error())
			return
		}
		fmt.Fprintf(w, "added %d triples\n", len(triples))
	}
}
