package endpoint

import (
	"context"
	"fmt"
	"testing"

	"sapphire/internal/rdf"
)

// benchQuery is the repeated two-hop join the ISSUE pins the cache's
// acceptance criterion on: a class sweep joined with literal retrieval,
// the paper's canonical "literal retrieval over a large class" shape.
const benchQuery = `SELECT ?s ?n WHERE { ?s a <http://x/Person> . ?s <http://x/name> ?n . }`

func benchEndpoint(b *testing.B, cacheBytes int64) {
	ep := NewLocal("bench", testStore(b, 2000), Limits{CacheBytes: cacheBytes})
	ctx := context.Background()
	if _, err := ep.Query(ctx, benchQuery); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ep.Query(ctx, benchQuery); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUncachedQuery evaluates the two-hop join from scratch every
// time — the endpoint's serving cost before this PR.
func BenchmarkUncachedQuery(b *testing.B) { benchEndpoint(b, 0) }

// BenchmarkCachedQuery serves the same join from the epoch-keyed result
// cache. The exact query string repeats, so after the first iteration
// every hit rides the raw-string pre-key: one epoch load, one map
// probe, no parsing. The ISSUE acceptance bar is ≥10× over
// BenchmarkUncachedQuery.
func BenchmarkCachedQuery(b *testing.B) { benchEndpoint(b, 64<<20) }

// BenchmarkCachedQueryCanonicalHit measures the hit path the raw
// pre-key bypasses: every iteration sends a previously unseen textual
// variant of the same query, so each call pays parse + canonicalization
// and then hits the shared canonical entry. The delta to
// BenchmarkCachedQuery is exactly the parse cost the raw pre-key saves.
func BenchmarkCachedQueryCanonicalHit(b *testing.B) {
	// Budget sized so the per-variant raw aliases filed during the run
	// never force an eviction of the single canonical entry (each alias
	// is charged ~entryOverhead/2 + len(raw) bytes).
	budget := int64(b.N)*512 + (1 << 20)
	ep := NewLocal("bench", testStore(b, 2000), Limits{CacheBytes: budget})
	ctx := context.Background()
	if _, err := ep.Query(ctx, benchQuery); err != nil {
		b.Fatal(err)
	}
	// Pre-build the unique variants: a numbered comment line keeps the
	// canonical form identical while making every raw string new, so no
	// iteration can ride the raw pre-key.
	variants := make([]string, b.N)
	for i := range variants {
		variants[i] = fmt.Sprintf("# v%d\n%s", i, benchQuery)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ep.Query(ctx, variants[i]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := ep.Stats()
	if st.CacheRawHits != 0 {
		b.Fatalf("%d raw hits leaked into the canonical-hit benchmark", st.CacheRawHits)
	}
	if st.CacheMisses != 1 {
		b.Fatalf("misses = %d, want 1 (eviction churn distorted the run)", st.CacheMisses)
	}
}

// BenchmarkCachedQueryParallel hammers the hit path from all cores —
// the "N users repeat the same query" serving shape the cache exists
// for. Contention on the LRU mutex is the number to watch here.
func BenchmarkCachedQueryParallel(b *testing.B) {
	ep := NewLocal("bench", testStore(b, 2000), Limits{CacheBytes: 64 << 20})
	ctx := context.Background()
	if _, err := ep.Query(ctx, benchQuery); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := ep.Query(ctx, benchQuery); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkCacheMissEpochChurn measures the worst case for the design:
// every query arrives at a fresh epoch (a write between every read), so
// the cache never hits and pure overhead — key construction, LRU
// bookkeeping, eviction of newly stale entries — is all that remains.
func BenchmarkCacheMissEpochChurn(b *testing.B) {
	st := testStore(b, 2000)
	ep := NewLocal("bench", st, Limits{CacheBytes: 64 << 20})
	ctx := context.Background()
	churnP := rdf.NewIRI("http://x/churn")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.MustAdd(rdf.NewTriple(rdf.NewIRI(fmt.Sprintf("http://x/c%d", i)), churnP, rdf.NewLiteral("v")))
		if _, err := ep.Query(ctx, benchQuery); err != nil {
			b.Fatal(err)
		}
	}
}
