package store

// OrderLabels exposes the dictionary's rank table (see rank.go) to the
// query evaluator: the returned function maps an interned ID to its
// uint64 order label, where nonzero labels compare exactly like the
// underlying terms and 0 means "unlabeled, fall back to a term compare".
// The label view is a point-in-time snapshot — terms interned after the
// call report 0 — and the call itself kicks the usual background rebuild
// when the labeled share has decayed, so steady ORDER BY traffic keeps
// the table fresh without ever blocking a query.
//
// exact reports whether label order equals the evaluator's ORDER BY
// comparator order for every pair of terms in the store: it is false as
// soon as any interned literal parses as a number, because SPARQL orders
// numeric literals by value ("9" < "10") while labels follow term order
// ("10" < "9"). Callers must not use labels for ordering when exact is
// false.
//
// label is nil when no table has been built yet (small stores below the
// rank floor, or a fresh store before its first background build).
func (s *Store) OrderLabels() (label func(id uint32) uint64, exact bool) {
	s.dict.maybeBuildRanks()
	exact = !s.dict.numericLits.Load()
	rt := s.dict.ranks.Load()
	if rt == nil {
		return nil, exact
	}
	return rt.label, exact
}

// BuildOrderLabels builds and publishes a rank table synchronously,
// regardless of the background trigger's size floor. Benchmarks and
// tests use it to measure the label-driven top-k path deterministically;
// production traffic relies on the background rebuild instead.
func (s *Store) BuildOrderLabels() { s.dict.buildRanks() }

// HasNumericLiterals reports whether any interned literal parses as a
// number (see OrderLabels for why ordering code cares).
func (s *Store) HasNumericLiterals() bool { return s.dict.numericLits.Load() }
