package endpoint

import (
	"context"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sapphire/internal/rdf"
	"sapphire/internal/store"
)

// fastRetry keeps test wall-clock negligible while exercising the real
// retry loop.
var fastRetry = RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond, Seed: 1}

const cannedJSON = `{"head":{"vars":["x"]},"results":{"bindings":[{"x":{"type":"uri","value":"http://a"}}]}}`

// flakyHTTP serves cannedJSON but fails the first failN requests with
// status failCode, counting every request it sees.
func flakyHTTP(failN int64, failCode int) (*httptest.Server, *atomic.Int64) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= failN {
			http.Error(w, "injected", failCode)
			return
		}
		w.Header().Set("Content-Type", "application/sparql-results+json")
		w.Write([]byte(cannedJSON))
	}))
	return srv, &calls
}

func TestClientRetriesTransient5xx(t *testing.T) {
	srv, calls := flakyHTTP(2, http.StatusInternalServerError)
	defer srv.Close()
	res, err := NewClientWithPolicy(srv.URL, fastRetry).Query(context.Background(), "SELECT * WHERE { ?x ?y ?z }")
	if err != nil {
		t.Fatalf("query failed despite retries: %v", err)
	}
	if len(res.Rows) != 1 || calls.Load() != 3 {
		t.Fatalf("rows=%d calls=%d, want 1 row after 3 calls", len(res.Rows), calls.Load())
	}
}

func TestClientRetries503(t *testing.T) {
	srv, calls := flakyHTTP(1, http.StatusServiceUnavailable)
	defer srv.Close()
	if _, err := NewClientWithPolicy(srv.URL, fastRetry).Query(context.Background(), "q"); err != nil {
		t.Fatalf("query failed despite retries: %v", err)
	}
	if calls.Load() != 2 {
		t.Fatalf("calls=%d, want 2", calls.Load())
	}
}

func TestClientExhaustsAttempts(t *testing.T) {
	srv, calls := flakyHTTP(1<<30, http.StatusServiceUnavailable)
	defer srv.Close()
	_, err := NewClientWithPolicy(srv.URL, fastRetry).Query(context.Background(), "q")
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout after exhausting attempts, got %v", err)
	}
	if got := calls.Load(); got != int64(fastRetry.MaxAttempts) {
		t.Fatalf("calls=%d, want exactly MaxAttempts=%d", got, fastRetry.MaxAttempts)
	}
}

func TestClientNeverRetriesRejection(t *testing.T) {
	srv, calls := flakyHTTP(1<<30, http.StatusTooManyRequests)
	defer srv.Close()
	_, err := NewClientWithPolicy(srv.URL, fastRetry).Query(context.Background(), "q")
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("want ErrRejected, got %v", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("calls=%d: a rejected query must not be re-sent", calls.Load())
	}
}

func TestClientNeverRetries4xx(t *testing.T) {
	srv, calls := flakyHTTP(1<<30, http.StatusBadRequest)
	defer srv.Close()
	if _, err := NewClientWithPolicy(srv.URL, fastRetry).Query(context.Background(), "q"); err == nil {
		t.Fatal("want error on 400")
	}
	if calls.Load() != 1 {
		t.Fatalf("calls=%d: a 400 must not be re-sent", calls.Load())
	}
}

func TestClientRetriesConnectionError(t *testing.T) {
	// A server that is immediately closed: every attempt fails at the
	// transport level, and the loop must still stop at MaxAttempts.
	srv := httptest.NewServer(http.NotFoundHandler())
	u := srv.URL
	srv.Close()
	start := time.Now()
	_, err := NewClientWithPolicy(u, fastRetry).Query(context.Background(), "q")
	if err == nil {
		t.Fatal("want transport error")
	}
	if !strings.Contains(err.Error(), "attempts") {
		t.Fatalf("error should mention exhausted attempts: %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("retry loop took implausibly long")
	}
}

func TestClientPerAttemptTimeout(t *testing.T) {
	var calls atomic.Int64
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			<-release // black-hole the first attempt
			return
		}
		w.Write([]byte(cannedJSON))
	}))
	defer srv.Close()
	defer close(release)
	p := fastRetry
	p.PerAttempt = 50 * time.Millisecond
	res, err := NewClientWithPolicy(srv.URL, p).Query(context.Background(), "q")
	if err != nil {
		t.Fatalf("second attempt should have rescued the query: %v", err)
	}
	if len(res.Rows) != 1 || calls.Load() != 2 {
		t.Fatalf("rows=%d calls=%d, want the hung attempt abandoned and retried", len(res.Rows), calls.Load())
	}
}

func TestClientParentContextStopsRetries(t *testing.T) {
	srv, calls := flakyHTTP(1<<30, http.StatusInternalServerError)
	defer srv.Close()
	p := fastRetry
	p.MaxAttempts = 100
	p.BaseDelay = 20 * time.Millisecond
	p.MaxDelay = 20 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := NewClientWithPolicy(srv.URL, p).Query(ctx, "q")
	if err == nil {
		t.Fatal("want error after context deadline")
	}
	if got := calls.Load(); got > 4 {
		t.Fatalf("calls=%d: retries kept going past the parent deadline", got)
	}
}

// TestClientAgainstFlakyEndpoint is the end-to-end pin: a real Handler
// over a Flaky-wrapped local endpoint injects a deterministic 503 every
// other query, and the retrying client must hide every one of them.
func TestClientAgainstFlakyEndpoint(t *testing.T) {
	s := store.New()
	s.MustAdd(rdf.NewTriple(rdf.NewIRI("http://x/s"), rdf.NewIRI("http://x/p"), rdf.NewLiteral("v")))
	flaky := NewFlaky(NewLocal("local", s, Limits{}), 2, 0, 1)
	srv := httptest.NewServer(Handler(flaky))
	defer srv.Close()
	client := NewClientWithPolicy(srv.URL, fastRetry)
	for i := 0; i < 10; i++ {
		res, err := client.Query(context.Background(), "SELECT ?o WHERE { <http://x/s> <http://x/p> ?o }")
		if err != nil {
			t.Fatalf("query %d failed despite retries: %v", i, err)
		}
		if len(res.Rows) != 1 {
			t.Fatalf("query %d: got %d rows", i, len(res.Rows))
		}
	}
	if flaky.Failures() == 0 {
		t.Fatal("flaky endpoint injected no failures — the test pinned nothing")
	}
}

func TestBackoffBounds(t *testing.T) {
	p := RetryPolicy{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second}
	rng := rand.New(rand.NewSource(3))
	for attempt := 1; attempt <= 20; attempt++ {
		want := p.BaseDelay << (attempt - 1)
		if want > p.MaxDelay || want <= 0 {
			want = p.MaxDelay
		}
		for i := 0; i < 50; i++ {
			d := p.backoff(attempt, rng)
			if d < want/2 || d > want {
				t.Fatalf("attempt %d: backoff %v outside [%v, %v]", attempt, d, want/2, want)
			}
		}
	}
}
