package similarity

import "testing"

// BenchmarkJaroWinkler measures the QSM's similarity primitive, applied
// once per candidate literal during alternative search.
func BenchmarkJaroWinkler(b *testing.B) {
	for i := 0; i < b.N; i++ {
		JaroWinkler("Jack Kerouac", "Jack Kerouacs")
	}
}

func BenchmarkLevenshtein(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Levenshtein("Jack Kerouac", "Jack Kerouacs")
	}
}

func BenchmarkJaccardTokens(b *testing.B) {
	for i := 0; i < b.N; i++ {
		JaccardTokens("the viking press", "viking press publishing")
	}
}
