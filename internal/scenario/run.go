package scenario

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"sapphire/internal/endpoint"
	"sapphire/internal/sparql"
)

// Queryer is the federation-shaped query surface (federation.Federation
// implements it; so does any Endpoint via a trivial adapter).
type Queryer interface {
	Query(ctx context.Context, query string) (*sparql.Results, error)
}

// Target is the serving surface a scenario runs against.
type Target struct {
	// Query answers OpQuery ops — an endpoint.Client against a live
	// /sparql route (or any Endpoint, for in-process runs).
	Query endpoint.Endpoint
	// AddURL receives OpWrite and OpReload bodies via POST; empty
	// disables write phases (Run fails if the spec needs them).
	AddURL string
	// HTTP is the client for AddURL posts; nil uses a default.
	HTTP *http.Client
	// Federation answers OpFedQuery ops; nil disables federation
	// phases.
	Federation Queryer
}

// RunOptions tune a Run without changing the traffic.
type RunOptions struct {
	// OpLog, when set, receives the phase's op sequence as LogLine rows
	// before the phase executes. The log is a pure function of the spec
	// — byte-identical across runs — which is what the determinism test
	// pins.
	OpLog io.Writer
}

// Run replays the scenario against the target and measures per-phase
// latency percentiles and throughput. The op sequence is pre-generated
// per phase (see GenOps) and recorded slot-indexed by sequence number,
// so worker concurrency affects timing but never which ops run or how
// the log reads.
func Run(ctx context.Context, spec *Spec, target Target, opts RunOptions) (*Report, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	for _, p := range spec.Phases {
		if p.Kind == KindMixed && target.AddURL == "" {
			return nil, fmt.Errorf("scenario %s: phase %q writes but target has no AddURL", spec.Name, p.Name)
		}
		if p.Kind == KindFederation && target.Federation == nil {
			return nil, fmt.Errorf("scenario %s: phase %q needs a federation target", spec.Name, p.Name)
		}
	}
	if target.HTTP == nil {
		target.HTTP = &http.Client{Timeout: 30 * time.Second}
	}

	report := &Report{Scenario: spec.Name, Seed: spec.Seed, Dataset: spec.Dataset}
	for _, p := range spec.Phases {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ops := GenOps(spec, p)
		if opts.OpLog != nil {
			var buf bytes.Buffer
			for _, op := range ops {
				buf.WriteString(op.LogLine())
				buf.WriteByte('\n')
			}
			if _, err := opts.OpLog.Write(buf.Bytes()); err != nil {
				return nil, err
			}
		}

		clients := spec.clients(p)
		latencies := make([]int64, len(ops))
		outcomes := make([]string, len(ops))
		var next atomic.Int64
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < clients; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(ops) || ctx.Err() != nil {
						return
					}
					opStart := time.Now()
					err := execOp(ctx, target, ops[i])
					latencies[i] = time.Since(opStart).Nanoseconds()
					outcomes[i] = classify(err)
				}
			}()
		}
		wg.Wait()
		wall := time.Since(start).Seconds()
		if err := ctx.Err(); err != nil {
			return nil, err
		}

		counts := map[string]int{}
		for _, o := range outcomes {
			counts[o]++
		}
		report.Phases = append(report.Phases, newPhaseResult(p, clients, wall, latencies, counts))
	}
	return report, nil
}

// execOp sends one op to its destination.
func execOp(ctx context.Context, target Target, op Op) error {
	switch op.Kind {
	case OpQuery:
		_, err := target.Query.Query(ctx, op.Query)
		return err
	case OpFedQuery:
		_, err := target.Federation.Query(ctx, op.Query)
		return err
	case OpWrite, OpReload:
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, target.AddURL,
			bytes.NewReader([]byte(op.Body)))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/n-triples")
		resp, err := target.HTTP.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			return fmt.Errorf("POST %s: HTTP %d: %s", target.AddURL, resp.StatusCode, msg)
		}
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return fmt.Errorf("unknown op kind %v", op.Kind)
}

// classify folds an op error into the outcome buckets the report
// counts. The typed sentinels survive the HTTP hop (the structured
// error envelope, endpoint/errors.go), so a remote timeout counts as a
// timeout, not a generic error.
func classify(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, endpoint.ErrTimeout):
		return "timeout"
	case errors.Is(err, endpoint.ErrRejected):
		return "rejected"
	case errors.Is(err, endpoint.ErrParse):
		return "parse"
	default:
		return "error"
	}
}
