// Package pinnedbudget is the golden fixture for the pinnedbudget
// analyzer: a miniature of sparql.Options and its serializing accessor.
package pinnedbudget

import "sync"

// Budget mirrors sparql.Budget.
type Budget func() error

// Options mirrors sparql.Options closely enough for the analyzer's
// shape test (named Options, func-typed Budget field, Workers field).
type Options struct {
	Budget  Budget
	Workers int
}

// budgetFor is the one sanctioned reader: an Options method may touch
// the raw field because it is the accessor that serializes it.
func (o Options) budgetFor(parallel bool) Budget {
	b := o.Budget
	if parallel && b != nil {
		b = serialized(b)
	}
	return b
}

func serialized(b Budget) Budget {
	var mu sync.Mutex
	return func() error {
		mu.Lock()
		defer mu.Unlock()
		return b()
	}
}

func evalGood(o Options) error {
	b := o.budgetFor(o.Workers > 1)
	if b != nil {
		return b()
	}
	return nil
}

func evalBad(o Options) error {
	b := o.Budget // want `direct Options.Budget read outside an Options method`
	if b != nil {
		return b()
	}
	return nil
}

func chargeDirect(o *Options) error {
	return o.Budget() // want `direct Options.Budget read outside an Options method`
}

// Constructing an Options value sets the field; only reads bypass the
// accessor.
func construct(b Budget) Options {
	return Options{Budget: b, Workers: 4}
}

// An unrelated Options type (no Workers knob) is someone else's
// business.
type otherOptions struct {
	Budget func() error
}

func otherIsFine(o otherOptions) error { return o.Budget() }
