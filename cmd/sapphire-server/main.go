// Command sapphire-server runs the Sapphire assistant as a JSON HTTP
// service over one or more SPARQL endpoints — the "Sapphire Server" box
// of Figure 1. Endpoints are initialized at startup (or loaded from a
// saved cache); the API then serves the interactive loop:
//
//	GET  /complete?term=Kerou        → QCM auto-completions
//	POST /query    (body: SPARQL)    → federated execution
//	POST /suggest  (body: SPARQL)    → QSM suggestions with answer counts
//	POST /run      (body: SPARQL)    → answers + suggestions in one call
//	GET  /stats                      → initialization statistics
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"sapphire"
	"sapphire/internal/endpoint"
	"sapphire/internal/sparql"
	"sapphire/internal/store"
	"sapphire/internal/store/persist"
	"sapphire/internal/webapi"
)

// fedEndpoint adapts the Sapphire client's federated execution to the
// endpoint.Endpoint shape NewMux serves.
type fedEndpoint struct{ client *sapphire.Client }

func (f fedEndpoint) Name() string { return "sapphire-federation" }
func (f fedEndpoint) Query(ctx context.Context, query string) (*sparql.Results, error) {
	return f.client.Query(ctx, query)
}

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	var endpoints, cachedEndpoints multiFlag
	addr := flag.String("addr", ":8080", "listen address")
	initTimeout := flag.Duration("init-timeout", 15*time.Minute, "per-endpoint initialization deadline")
	epochPoll := flag.Duration("fed-epoch-poll", 0,
		"how often to re-check member epochs for cache invalidation (0 = every query, negative = never)")
	shards := flag.Int("shards", store.DefaultShards(),
		"shard count for any in-process store built by this server (warehouses, local endpoints); 1 = unsharded")
	dataDir := flag.String("data-dir", "",
		"durable store directory to serve as an in-process federation member (populate it with sapphire-init -data-dir); snapshot on shutdown")
	snapshotEvery := flag.Int("snapshot-every", 0,
		"take an automatic snapshot of the -data-dir store after this many WAL-logged triples (0 = only on shutdown)")
	fsync := flag.String("fsync", "always", "WAL fsync policy for -data-dir: always | interval | off")
	parallel := flag.Int("parallel", 1,
		"intra-query parallelism for in-process stores: join workers per query (1 = serial; results are identical either way)")
	flag.Var(&endpoints, "endpoint", "SPARQL endpoint URL to register (repeatable)")
	flag.Var(&cachedEndpoints, "cached-endpoint", "URL=cachefile pair registering an endpoint from a saved cache (repeatable)")
	flag.Parse()
	store.SetDefaultShards(*shards)
	sparql.SetDefaultWorkers(*parallel)
	if len(endpoints)+len(cachedEndpoints) == 0 && *dataDir == "" {
		log.Fatal("at least one -endpoint, -cached-endpoint, or -data-dir is required")
	}

	cfg := sapphire.Defaults()
	cfg.FedEpochPoll = *epochPoll
	client := sapphire.New(cfg)

	var db *persist.DB
	if *dataDir != "" {
		policy, err := persist.ParseFsyncPolicy(*fsync)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		var info persist.RecoveryInfo
		db, info, err = persist.Open(*dataDir, persist.Options{
			Fsync:         policy,
			SnapshotEvery: *snapshotEvery,
		})
		if err != nil {
			log.Fatalf("open %s: %v", *dataDir, err)
		}
		if db.Store().Len() == 0 {
			log.Fatalf("data dir %s holds no triples; populate it first (sapphire-init -data dump.nt -data-dir %s)", *dataDir, *dataDir)
		}
		log.Printf("recovered %d triples from %s (generation %d) in %v",
			db.Store().Len(), *dataDir, info.Generation, time.Since(start).Round(time.Millisecond))
		ctx, cancel := context.WithTimeout(context.Background(), *initTimeout)
		err = client.RegisterEndpoint(ctx, endpoint.NewLocal(*dataDir, db.Store(), endpoint.Limits{}))
		cancel()
		if err != nil {
			log.Fatalf("register %s: %v", *dataDir, err)
		}
		log.Printf("registered durable store %s", *dataDir)
	}
	for _, url := range endpoints {
		ctx, cancel := context.WithTimeout(context.Background(), *initTimeout)
		log.Printf("registering %s (full initialization) ...", url)
		if err := client.RegisterHTTP(ctx, url); err != nil {
			cancel()
			log.Fatalf("register %s: %v", url, err)
		}
		cancel()
		log.Printf("registered %s", url)
	}
	for _, pair := range cachedEndpoints {
		url, file, ok := strings.Cut(pair, "=")
		if !ok {
			log.Fatalf("-cached-endpoint wants URL=cachefile, got %q", pair)
		}
		f, err := os.Open(file)
		if err != nil {
			log.Fatalf("open cache %s: %v", file, err)
		}
		err = client.RegisterEndpointWithCache(endpoint.NewClient(url), f)
		f.Close()
		if err != nil {
			log.Fatalf("register cached %s: %v", url, err)
		}
		log.Printf("registered %s from cache %s", url, file)
	}
	st := client.Stats()
	log.Printf("cache ready: %d predicates, %d literals (%d significant)",
		st.PredicateCount, st.LiteralCount, st.SignificantCount)

	// The SPARQL-protocol surface (/sparql, /epoch, /healthz) rides
	// alongside the JSON web API: queries POSTed to /sparql execute
	// through the same federation as /query, so protocol-speaking tools
	// (curl, sapphire-loadgen) can drive the server without the JSON
	// wrapper. The federation spans remote members, so /epoch answers
	// 404 (code "unsupported") — the fedEndpoint is not Epoched.
	mux := endpoint.NewMux(fedEndpoint{client})
	mux.Handle("/", webapi.Handler(client))
	srv := &http.Server{Addr: *addr, Handler: mux}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(sctx)
	}()
	log.Printf("Sapphire server on %s", *addr)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	if db != nil {
		if _, err := db.Snapshot(); err != nil {
			log.Printf("shutdown snapshot failed (WAL still covers the data): %v", err)
		}
		if err := db.Close(); err != nil {
			log.Printf("close: %v", err)
		}
	}
}
