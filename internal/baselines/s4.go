package baselines

import (
	"context"

	"sapphire/internal/qald"
	"sapphire/internal/sparql"
	"sapphire/internal/store"
)

// S4 rewrites approximate structured queries against a type-level
// summary graph. Per the paper's methodology, it is fed queries with the
// correct predicates and literals (the authors used Sapphire to find
// them) but is limited by its rewriting framework: no aggregates, no
// solution modifiers or filters (they fall outside the graph-similarity
// semantics and are dropped), and only compact structures
// (entity-anchored chains and stars of at most two triple patterns, the
// template classes its summary graph covers).
type S4 struct {
	Store *store.Store
	// MaxPatterns is the largest BGP its rewriting handles.
	MaxPatterns int
}

// NewS4 returns the baseline.
func NewS4(st *store.Store) *S4 { return &S4{Store: st, MaxPatterns: 2} }

// Name implements qald.System.
func (s *S4) Name() string { return "S4" }

// Answer implements qald.System.
func (s *S4) Answer(_ context.Context, q qald.Question) (qald.AnswerSet, bool) {
	parsed, err := sparql.Parse(q.Gold)
	if err != nil {
		return nil, false
	}
	if parsed.HasAggregates() {
		return nil, false // outside the rewriting framework
	}
	if len(parsed.Where) > s.MaxPatterns {
		return nil, false // structure class not covered by the summary graph
	}
	// Rewriting preserves the BGP (already correct here) but drops what
	// it cannot express.
	stripped := parsed.Clone()
	stripped.Filters = nil
	stripped.OrderBy = nil
	stripped.Limit = -1
	stripped.Offset = 0
	stripped.Distinct = true
	res, err := sparql.Eval(s.Store, stripped, sparql.Options{})
	if err != nil || len(res.Rows) == 0 {
		return nil, false
	}
	return qald.FromResults(res), true
}
