package store

import (
	"fmt"
	"testing"

	"sapphire/internal/rdf"
)

func morselFixture(t *testing.T, shards, n int) *Store {
	t.Helper()
	s := NewSharded(shards)
	for i := 0; i < n; i++ {
		subj := rdf.NewIRI(fmt.Sprintf("http://x/s%d", i))
		s.MustAdd(rdf.NewTriple(subj, rdf.NewIRI(rdf.RDFType), rdf.NewIRI("http://x/T")))
		s.MustAdd(rdf.NewTriple(subj, rdf.NewIRI("http://x/v"),
			rdf.NewLiteral(fmt.Sprintf("val %d", i))))
	}
	return s
}

// TestScanMorselsPinnedOrder pins the morsel enumeration contract: for
// every pattern shape and morsel size, the concatenation of the batches
// is exactly the MatchIDs emission order, every batch except the last
// is full, and batches are safe to retain after the callback returns.
func TestScanMorselsPinnedOrder(t *testing.T) {
	for _, shards := range []int{1, 8} {
		s := morselFixture(t, shards, 100)
		patterns := [][3]ID{
			{0, 0, 0}, // full sweep
			{0, mustID(t, s, rdf.NewIRI("http://x/v")), 0},   // predicate-bound
			{mustID(t, s, rdf.NewIRI("http://x/s7")), 0, 0},  // subject-bound
			{0, 0, mustID(t, s, rdf.NewIRI("http://x/T"))},   // object-bound
			{0, 0, mustID(t, s, rdf.NewIRI("http://x/s99"))}, // sparse
		}
		for _, pat := range patterns {
			var want [][3]ID
			s.MatchIDs(pat[0], pat[1], pat[2], func(a, b, c ID) bool {
				want = append(want, [3]ID{a, b, c})
				return true
			})
			for _, size := range []int{1, 3, 64, 1 << 20} {
				var batches [][][3]ID
				release := s.PinRead()
				s.ScanMorselsPinned(pat[0], pat[1], pat[2], size, func(batch [][3]ID) bool {
					batches = append(batches, batch)
					return true
				})
				release()
				var got [][3]ID
				for i, b := range batches {
					if i < len(batches)-1 && len(b) != size {
						t.Fatalf("shards=%d pat=%v size=%d: batch %d has %d triples, want %d (only the last may be short)",
							shards, pat, size, i, len(b), size)
					}
					got = append(got, b...)
				}
				if len(got) != len(want) {
					t.Fatalf("shards=%d pat=%v size=%d: %d triples, want %d", shards, pat, size, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("shards=%d pat=%v size=%d: triple %d = %v, want %v (MatchIDs order)",
							shards, pat, size, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestScanMorselsPinnedEarlyStop: returning false stops enumeration —
// no further batches arrive, including the final short batch.
func TestScanMorselsPinnedEarlyStop(t *testing.T) {
	s := morselFixture(t, 4, 100)
	calls := 0
	release := s.PinRead()
	s.ScanMorselsPinned(0, 0, 0, 7, func(batch [][3]ID) bool {
		calls++
		return calls < 3
	})
	release()
	if calls != 3 {
		t.Fatalf("callback ran %d times, want exactly 3 (stop after third)", calls)
	}
}

// TestOrderLabelsNeverZeroForRealTerms is the rank-label audit behind
// the evaluator's top-k fast path: topKOp treats label 0 as "unlabeled,
// compare terms", so a real term labeled 0 would silently change which
// comparison path runs. The label construction makes 0 impossible —
// labels are (k+1)*stride with stride >= 1 — and this test pins that
// for every ID occurring in any triple, across shardings and after
// incremental growth + rebuild.
func TestOrderLabelsNeverZeroForRealTerms(t *testing.T) {
	for _, shards := range []int{1, 8} {
		s := morselFixture(t, shards, 200)
		s.BuildOrderLabels()
		label, _ := s.OrderLabels()
		if label == nil {
			t.Fatal("no rank table after BuildOrderLabels")
		}
		check := func(stage string) {
			seen := map[ID]bool{}
			s.MatchIDs(0, 0, 0, func(a, b, c ID) bool {
				for _, id := range [3]ID{a, b, c} {
					if !seen[id] {
						seen[id] = true
						if label(id) == 0 {
							t.Fatalf("shards=%d %s: term %s (id %d) has rank label 0 — the evaluator would misread it as unlabeled",
								shards, stage, s.ResolveID(id), id)
						}
					}
				}
				return true
			})
			if len(seen) == 0 {
				t.Fatalf("shards=%d %s: no ids enumerated", shards, stage)
			}
		}
		check("initial build")

		// Terms interned after the snapshot legitimately report 0 through
		// the old view; after a rebuild every occurring term labels nonzero
		// again.
		for i := 0; i < 50; i++ {
			subj := rdf.NewIRI(fmt.Sprintf("http://x/extra%d", i))
			s.MustAdd(rdf.NewTriple(subj, rdf.NewIRI("http://x/v"), rdf.NewLiteral(fmt.Sprintf("zzz %d", i))))
		}
		s.BuildOrderLabels()
		label, _ = s.OrderLabels()
		check("after growth + rebuild")
	}
}

func mustID(t *testing.T, s *Store, term rdf.Term) ID {
	t.Helper()
	id, ok := s.Lookup(term)
	if !ok {
		t.Fatalf("term %s not in dictionary", term)
	}
	return id
}
