package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"sapphire/internal/qald"
)

var envCache *Env

func testEnv(t testing.TB) *Env {
	t.Helper()
	if envCache != nil {
		return envCache
	}
	env, err := Setup(context.Background(), Small)
	if err != nil {
		t.Fatal(err)
	}
	envCache = env
	return env
}

func TestTable1RunsAndSapphireWins(t *testing.T) {
	env := testEnv(t)
	rows, err := Table1(context.Background(), env)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5 systems", len(rows))
	}
	byName := map[string]qald.Row{}
	for _, r := range rows {
		byName[r.System] = r
	}
	sap := byName["Sapphire"]
	for name, r := range byName {
		if name == "Sapphire" {
			continue
		}
		if r.F1() >= sap.F1() {
			t.Errorf("%s F1 %.2f >= Sapphire %.2f — the headline result must hold", name, r.F1(), sap.F1())
		}
	}
	if sap.Precision() < 0.99 {
		t.Errorf("Sapphire precision %.2f, want 1.0", sap.Precision())
	}
	var buf bytes.Buffer
	PrintTable1(&buf, rows)
	if !strings.Contains(buf.String(), "Sapphire") || !strings.Contains(buf.String(), "Xser") {
		t.Error("PrintTable1 missing rows")
	}
}

func TestPaperTable1Reference(t *testing.T) {
	ref := PaperTable1()
	if len(ref) != 10 {
		t.Fatalf("paper table rows = %d, want 10", len(ref))
	}
	// Spot-check against the publication.
	for _, r := range ref {
		if r.System == "Sapphire" {
			if r.Pro != 43 || r.F1 != 0.92 {
				t.Errorf("Sapphire reference row wrong: %+v", r)
			}
			if !r.Reproduced {
				t.Error("Sapphire must be flagged reproduced")
			}
		}
		if r.System == "Xser" && r.Reproduced {
			t.Error("Xser is not publicly runnable; must be reference-only")
		}
	}
}

func TestStudyAndFigures(t *testing.T) {
	env := testEnv(t)
	res, err := Study(context.Background(), env)
	if err != nil {
		t.Fatal(err)
	}
	for _, fig := range []string{"fig8", "fig9", "fig10", "fig11"} {
		var buf bytes.Buffer
		PrintFigure(&buf, res, fig)
		out := buf.String()
		if !strings.Contains(out, "Sapphire") || !strings.Contains(out, "difficult") {
			t.Errorf("%s output malformed:\n%s", fig, out)
		}
	}
	var buf bytes.Buffer
	PrintUsage(&buf, res)
	if !strings.Contains(buf.String(), "relaxed structure") {
		t.Error("usage output malformed")
	}
}

func TestInitWithTimeouts(t *testing.T) {
	rep, err := InitWithTimeouts(context.Background(), Small)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.Timeouts == 0 {
		t.Error("constrained endpoint produced no timeouts")
	}
	if rep.Stats.LiteralCount == 0 {
		t.Error("no literals cached despite descent")
	}
	var buf bytes.Buffer
	PrintInit(&buf, rep)
	if !strings.Contains(buf.String(), "timeouts survived") {
		t.Error("init output malformed")
	}
}

func TestQCMReport(t *testing.T) {
	env := testEnv(t)
	rep := QCM(env, []int{1, 8})
	if rep.Terms == 0 {
		t.Fatal("no lookup terms")
	}
	if rep.HitRatio <= 0 || rep.HitRatio > 1 {
		t.Errorf("hit ratio = %v", rep.HitRatio)
	}
	if rep.FilterEliminated <= 0 || rep.FilterEliminated >= 1 {
		t.Errorf("filter eliminated = %v, want a real fraction", rep.FilterEliminated)
	}
	if rep.TreeLookupNs <= 0 || rep.TotalNs <= 0 {
		t.Error("latencies not measured")
	}
	var buf bytes.Buffer
	PrintQCM(&buf, rep)
	if !strings.Contains(buf.String(), "suffix-tree lookup") {
		t.Error("QCM output malformed")
	}
}

func TestHitRatioSweepMonotone(t *testing.T) {
	env := testEnv(t)
	pts, err := HitRatioSweep(context.Background(), env, []int{1, 50, 2000})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	// More capacity can only help (weakly monotone).
	for i := 1; i < len(pts); i++ {
		if pts[i].HitRatio+1e-9 < pts[i-1].HitRatio {
			t.Errorf("hit ratio decreased with capacity: %+v", pts)
		}
	}
	var buf bytes.Buffer
	PrintHitRatio(&buf, pts)
	if !strings.Contains(buf.String(), "hit ratio") {
		t.Error("output malformed")
	}
}

func TestQSMReport(t *testing.T) {
	env := testEnv(t)
	rep, err := QSM(context.Background(), env)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Queries == 0 {
		t.Fatal("no QSM queries measured")
	}
	var buf bytes.Buffer
	PrintQSM(&buf, rep)
	if !strings.Contains(buf.String(), "Suggest") {
		t.Error("QSM output malformed")
	}
}

func TestSimilarityAblation(t *testing.T) {
	env := testEnv(t)
	rows := SimilarityAblation(env)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]float64{}
	for _, r := range rows {
		byName[r.Name] = r.Value
	}
	// The paper's claim: Jaro-Winkler outperforms the alternatives in
	// this context.
	if byName["jarowinkler"] < byName["jaccard"] {
		t.Errorf("JW %.1f%% should beat Jaccard %.1f%%", byName["jarowinkler"], byName["jaccard"])
	}
	if byName["jarowinkler"] == 0 {
		t.Error("JW repaired nothing; ablation broken")
	}
	var buf bytes.Buffer
	PrintAblation(&buf, "similarity measures", rows)
	if !strings.Contains(buf.String(), "jarowinkler") {
		t.Error("ablation output malformed")
	}
}

func TestSteinerWeightAblation(t *testing.T) {
	env := testEnv(t)
	rows := SteinerWeightAblation(context.Background(), env)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Value == 0 {
			t.Errorf("%s failed to connect", r.Name)
		}
	}
	// The paper's motivation for w_q < w_default: the resulting tree
	// prefers the user's own predicates. The weighted tree must reuse
	// them at least as much as the unweighted one.
	if rows[0].Extra < rows[1].Extra {
		t.Errorf("weighted tree reuses %.0f%% query predicates, unweighted %.0f%%",
			100*rows[0].Extra, 100*rows[1].Extra)
	}
	if rows[0].Extra == 0 {
		t.Error("weighted tree uses no query predicates at all")
	}
}

func TestIndexAblation(t *testing.T) {
	env := testEnv(t)
	rows := IndexAblation(env)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	tree, prefix := rows[0], rows[1]
	if tree.Value < prefix.Value {
		t.Errorf("suffix tree hit rate %.0f%% below prefix index %.0f%% — substring search must win",
			tree.Value, prefix.Value)
	}
	if tree.Value == 0 {
		t.Error("tree found nothing")
	}
}

func TestBinFilterAblation(t *testing.T) {
	env := testEnv(t)
	rows := BinFilterAblation(env)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	windowed, full := rows[0], rows[1]
	if windowed.Value >= full.Value {
		t.Errorf("γ window scans %.0f literals, full scan %.0f — filter must reduce work",
			windowed.Value, full.Value)
	}
}
