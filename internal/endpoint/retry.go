package endpoint

import (
	"context"
	"math/rand"
	"sync"
	"time"
)

// RetryPolicy bounds how a Client re-issues a failed query. Public
// SPARQL endpoints drop connections and shed load routinely; one bare
// attempt per query turns every transient hiccup into a failed
// initialization or relaxation step. The policy is deliberately small:
// bounded attempts, exponential backoff with jitter (so a fleet of
// clients recovering from one outage does not reconverge in lockstep),
// and a per-attempt timeout so one black-holed connection cannot eat
// the whole query budget.
//
// What retries and what does not follows the error's meaning, not its
// transport: connection failures and 5xx responses (including the 503
// the Handler emits for ErrTimeout) are transient and retry; 429 /
// ErrRejected means the server judged the query itself too expensive —
// retrying it verbatim is exactly what the rejection asked us not to
// do — and other 4xx are caller bugs, so both fail immediately.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts including the first.
	// Values < 1 select the default (4).
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt; each further
	// attempt doubles it. Zero selects the default (250ms).
	BaseDelay time.Duration
	// MaxDelay caps the backoff growth. Zero selects the default (5s).
	MaxDelay time.Duration
	// PerAttempt bounds each individual attempt. Zero selects the
	// default (30s — the old whole-query client timeout, now applied
	// per attempt).
	PerAttempt time.Duration
	// Seed makes the jitter deterministic for tests; 0 seeds from the
	// global source.
	Seed int64
}

const (
	defaultMaxAttempts = 4
	defaultBaseDelay   = 250 * time.Millisecond
	defaultMaxDelay    = 5 * time.Second
	defaultPerAttempt  = 30 * time.Second
)

func (p RetryPolicy) attempts() int {
	if p.MaxAttempts < 1 {
		return defaultMaxAttempts
	}
	return p.MaxAttempts
}

func (p RetryPolicy) perAttempt() time.Duration {
	if p.PerAttempt <= 0 {
		return defaultPerAttempt
	}
	return p.PerAttempt
}

// backoff returns the jittered delay before attempt (1 = the first
// retry): the exponential step, halved and topped back up with a
// uniformly random half so concurrent clients spread out.
func (p RetryPolicy) backoff(attempt int, rng *rand.Rand) time.Duration {
	base, maxd := p.BaseDelay, p.MaxDelay
	if base <= 0 {
		base = defaultBaseDelay
	}
	if maxd <= 0 {
		maxd = defaultMaxDelay
	}
	d := base << (attempt - 1)
	if d > maxd || d <= 0 { // <= 0: shift overflow
		d = maxd
	}
	half := d / 2
	return half + time.Duration(rng.Int63n(int64(half)+1))
}

// retrier is the mutable retry state a Client owns: a locked RNG (a
// Client is used concurrently by federation fan-out).
type retrier struct {
	policy RetryPolicy
	mu     sync.Mutex
	rng    *rand.Rand
}

func newRetrier(p RetryPolicy) *retrier {
	seed := p.Seed
	if seed == 0 {
		seed = rand.Int63()
	}
	return &retrier{policy: p, rng: rand.New(rand.NewSource(seed))}
}

func (r *retrier) backoff(attempt int) time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.policy.backoff(attempt, r.rng)
}

// sleep waits d or until ctx is done, whichever comes first.
func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
