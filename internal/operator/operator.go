// Package operator simulates a person using Sapphire: it takes a
// question plan (triple patterns written with question keywords), builds
// a SPARQL query with the QCM's completions, executes it through the
// federated processor, and — when the query returns nothing — accepts
// QSM suggestions and retries, exactly like the participants in the
// paper's user study (Section 7.1) and the Sapphire operator of the
// Table 1 comparison (Section 7.2: "we only use terms from the question
// ... we then use Sapphire's suggestions to complete and modify the
// query until an answer is found").
package operator

import (
	"context"
	"fmt"
	"strings"

	"sapphire/internal/pum"
	"sapphire/internal/qald"
	"sapphire/internal/rdf"
	"sapphire/internal/similarity"
	"sapphire/internal/sparql"
)

// Operator drives one PUM instance.
type Operator struct {
	PUM *pum.PUM
	// MaxAttempts bounds query-run rounds; the paper's participants gave
	// up after 3–5 attempts.
	MaxAttempts int
	// Corrupt, when set, distorts keywords before resolution — the
	// user-study noise model (typos, plural forms, synonym choices).
	Corrupt func(keyword string) string
}

// New returns an operator with the paper's attempt bound.
func New(p *pum.PUM) *Operator {
	return &Operator{PUM: p, MaxAttempts: 5}
}

// Name implements qald.System.
func (o *Operator) Name() string { return "Sapphire" }

// Outcome captures one question attempt for the user-study metrics.
type Outcome struct {
	Answers  qald.AnswerSet
	Attempts int
	// UsedSuggestion records whether any QSM suggestion was accepted,
	// and of which kinds (for the Section 7.3.2 usage statistics).
	UsedAltPredicate bool
	UsedAltLiteral   bool
	UsedRelaxation   bool
}

// Answer implements qald.System.
func (o *Operator) Answer(ctx context.Context, q qald.Question) (qald.AnswerSet, bool) {
	out := o.Attempt(ctx, q)
	if out == nil || len(out.Answers) == 0 {
		return nil, false
	}
	return out.Answers, true
}

// Attempt runs the full interactive loop and reports details.
func (o *Operator) Attempt(ctx context.Context, q qald.Question) *Outcome {
	out := &Outcome{}
	query, err := o.buildQuery(q.Plan, out)
	if err != nil {
		return nil
	}
	maxAttempts := o.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = 5
	}
	for out.Attempts = 1; out.Attempts <= maxAttempts; out.Attempts++ {
		res, err := o.fed().Eval(ctx, query)
		if err == nil && !pum.EmptyResults(res) {
			out.Answers = o.extract(res, q.Plan)
			return out
		}
		// No answers: consult the QSM and accept the suggestion whose
		// replacement stays closest to the original term (the user
		// recognizes the intended entity among the alternatives).
		sugs, err := o.PUM.Suggest(ctx, query)
		if err != nil || len(sugs) == 0 {
			return out
		}
		best, ok := pickSuggestion(sugs, intendedLiterals(q.Plan))
		if !ok {
			return out // nothing the user would accept
		}
		switch best.Kind {
		case pum.AltPredicate:
			out.UsedAltPredicate = true
		case pum.AltLiteral:
			out.UsedAltLiteral = true
		case pum.Relaxation:
			out.UsedRelaxation = true
		}
		query = best.Query
		if best.Kind == pum.Relaxation && q.Plan.OrderDesc != "" {
			// The relaxed query has fresh variables and no modifiers;
			// the user re-adds ORDER BY/LIMIT in the modifier box
			// (Figure 2) before re-running.
			if amended := o.reapplyModifiers(query, q.Plan); amended != nil {
				query = amended
				continue
			}
		}
		if best.Prefetched != nil && len(best.Prefetched.Rows) > 0 {
			out.Attempts++
			out.Answers = o.extract(best.Prefetched, q.Plan)
			return out
		}
	}
	return out
}

// reapplyModifiers transfers the plan's ORDER BY DESC/LIMIT onto a
// relaxed query by locating the pattern that carries the ordered
// quantity's predicate and ordering on its object variable. Returns nil
// when the relaxed structure lost that predicate.
func (o *Operator) reapplyModifiers(q *sparql.Query, plan qald.Plan) *sparql.Query {
	var predIRI string
	for _, tr := range plan.Triples {
		if tr.O.Var == plan.OrderDesc && tr.P.Keyword != "" {
			resolved := o.resolvePredicate(tr.P.Keyword, &Outcome{})
			predIRI = strings.Trim(resolved, "<>")
		}
	}
	if predIRI == "" {
		return nil
	}
	nq := q.Clone()
	for _, pat := range nq.Where {
		if !pat.P.IsVar() && pat.P.Term.Value == predIRI && pat.O.IsVar() {
			nq.OrderBy = []sparql.OrderKey{{Var: pat.O.Var, Desc: true}}
			if plan.Limit > 0 {
				nq.Limit = plan.Limit
			}
			return nq
		}
	}
	// The quantity is missing from the relaxed tree: the user adds the
	// triple back before ordering.
	ordVar := "ord"
	subj := answerVariable(nq)
	if subj == "" {
		return nil
	}
	nq.Where = append(nq.Where, sparql.Pattern{
		S: sparql.NewVar(subj),
		P: sparql.NewTermNode(rdf.NewIRI(predIRI)),
		O: sparql.NewVar(ordVar),
	})
	nq.OrderBy = []sparql.OrderKey{{Var: ordVar, Desc: true}}
	if plan.Limit > 0 {
		nq.Limit = plan.Limit
	}
	return nq
}

// answerVariable guesses which variable of a relaxed query denotes the
// entities of interest: the variable appearing as a subject most often.
func answerVariable(q *sparql.Query) string {
	counts := map[string]int{}
	for _, pat := range q.Where {
		if pat.S.IsVar() {
			counts[pat.S.Var]++
		}
	}
	best, bestN := "", 0
	for v, n := range counts {
		if n > bestN || (n == bestN && v < best) {
			best, bestN = v, n
		}
	}
	return best
}

func (o *Operator) fed() federationEval { return federationEval{o.PUM} }

// federationEval gives the operator access to the PUM's federation via
// the exported Suggest path; queries run through the same processor the
// suggestions were prefetched on.
type federationEval struct{ p *pum.PUM }

func (f federationEval) Eval(ctx context.Context, q *sparql.Query) (*sparql.Results, error) {
	return f.p.Execute(ctx, q)
}

// intendedLiterals collects the literal keywords of the plan — the
// entity names the user actually has in mind (from the question text),
// against which they judge the QSM's literal suggestions.
func intendedLiterals(p qald.Plan) []string {
	var out []string
	for _, tr := range p.Triples {
		if tr.O.IsLiteral && tr.O.Keyword != "" {
			out = append(out, tr.O.Keyword)
		}
	}
	return out
}

// pickSuggestion chooses the QSM suggestion a user would accept:
//
//   - a literal alternative only when it clearly names the entity they
//     meant (a typo/plural fix of an intended literal) — "did you mean
//     Jack Torres instead of Jack Kerouac?" gets rejected;
//   - a predicate alternative freely (vocabulary is exactly what the
//     user does not know), preferring ones reading like the typed term
//     with many prefetched answers;
//   - structure relaxation when no term fix is acceptable.
//
// The boolean is false when no suggestion would be accepted.
func pickSuggestion(sugs []pum.Suggestion, intended []string) (pum.Suggestion, bool) {
	maxAnswers := 1
	for _, s := range sugs {
		if s.Kind != pum.Relaxation && s.Answers > maxAnswers {
			maxAnswers = s.Answers
		}
	}
	best := -1
	bestScore := -1.0
	for i, s := range sugs {
		switch s.Kind {
		case pum.Relaxation:
			continue
		case pum.AltLiteral:
			if !matchesIntent(s.New, intended) {
				continue
			}
		}
		sim := similarity.JaroWinkler(strings.ToLower(s.Old), strings.ToLower(s.New))
		score := 0.7*sim + 0.3*float64(s.Answers)/float64(maxAnswers)
		if score > bestScore {
			bestScore = score
			best = i
		}
	}
	if best >= 0 {
		return sugs[best], true
	}
	for _, s := range sugs {
		if s.Kind == pum.Relaxation {
			return s, true
		}
	}
	return pum.Suggestion{}, false
}

// matchesIntent reports whether a suggested literal is recognizably one
// of the user's intended entity names (equal up to case, or a near-exact
// spelling variant).
func matchesIntent(suggested string, intended []string) bool {
	for _, want := range intended {
		if strings.EqualFold(suggested, want) {
			return true
		}
		if similarity.JaroWinkler(strings.ToLower(suggested), strings.ToLower(want)) >= 0.93 {
			return true
		}
	}
	return false
}

// BuildQuery resolves a plan into a SPARQL query using the QCM: every
// keyword is typed into a text box and the matching completion chosen.
// Unresolvable predicate keywords fall back to the QSM's per-term
// alternatives (the UI validates and repairs triples one at a time);
// keywords that still resolve to nothing stay as typed.
func (o *Operator) BuildQuery(p qald.Plan) (*sparql.Query, error) {
	return o.buildQuery(p, &Outcome{})
}

func (o *Operator) buildQuery(p qald.Plan, out *Outcome) (*sparql.Query, error) {
	var b strings.Builder
	b.WriteString("SELECT ")
	proj := "?" + p.Project
	switch {
	case p.Count:
		fmt.Fprintf(&b, "(COUNT(DISTINCT %s) AS ?n)", proj)
	default:
		b.WriteString("DISTINCT " + proj)
	}
	b.WriteString(" WHERE {\n")
	for _, tr := range p.Triples {
		s, err := o.resolveNode(tr.S, posSubject, out)
		if err != nil {
			return nil, err
		}
		pr, err := o.resolveNode(tr.P, posPredicate, out)
		if err != nil {
			return nil, err
		}
		ob, err := o.resolveNode(tr.O, posObject, out)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(&b, "  %s %s %s .\n", s, pr, ob)
	}
	if p.Filter != "" {
		fmt.Fprintf(&b, "  FILTER (%s)\n", p.Filter)
	}
	b.WriteString("}")
	if p.OrderDesc != "" {
		fmt.Fprintf(&b, " ORDER BY DESC(?%s)", p.OrderDesc)
	}
	if p.Limit > 0 {
		fmt.Fprintf(&b, " LIMIT %d", p.Limit)
	}
	return sparql.Parse(b.String())
}

type position int

const (
	posSubject position = iota
	posPredicate
	posObject
)

// resolveNode turns one plan node into SPARQL text via the QCM.
func (o *Operator) resolveNode(n qald.Node, pos position, out *Outcome) (string, error) {
	if n.Var != "" {
		return "?" + n.Var, nil
	}
	kw := n.Keyword
	if o.Corrupt != nil {
		kw = o.Corrupt(kw)
	}
	if pos == posPredicate || !n.IsLiteral {
		return o.resolvePredicate(kw, out), nil
	}
	return o.resolveLiteral(kw), nil
}

// resolvePredicate maps a keyword to a predicate IRI: the user types it
// and picks the best predicate completion. With no completion, the UI's
// per-triple validation offers the QSM's term alternatives (lexicon
// verbalizations + similarity) and the user takes the best; only if that
// fails too does the term stay as typed (camel-cased under dbo:).
func (o *Operator) resolvePredicate(kw string, out *Outcome) string {
	cands := o.PUM.Complete(kw)
	bestScore := -1.0
	var best rdf.Term
	for _, c := range cands {
		if !c.IsPredicate {
			continue
		}
		if preds := o.PUM.Cache().PredicatesFor(c.Text); len(preds) > 0 {
			if s := similarity.JaroWinkler(kw, c.Text); s > bestScore {
				bestScore = s
				best = preds[0]
			}
		}
	}
	if bestScore >= 0 {
		return best.String()
	}
	if alts := o.PUM.AlternativePredicates(kw); len(alts) > 0 {
		out.UsedAltPredicate = true
		return alts[0].Pred.String()
	}
	// Typed verbatim: camel-case the keyword into a dbo: IRI, as a user
	// pasting a guessed predicate would.
	return rdf.NewIRI(rdf.NSDBO + camel(kw)).String()
}

// resolveLiteral picks the completion closest to the keyword, falling
// back to the keyword as an English literal.
func (o *Operator) resolveLiteral(kw string) string {
	cands := o.PUM.Complete(kw)
	bestScore := -1.0
	bestText := ""
	for _, c := range cands {
		if c.IsPredicate {
			continue
		}
		if s := similarity.JaroWinkler(kw, c.Text); s > bestScore {
			bestScore = s
			bestText = c.Text
		}
	}
	if bestText != "" {
		if t, ok := o.PUM.Cache().LiteralTerm(bestText); ok {
			return t.String()
		}
	}
	return rdf.NewLangLiteral(kw, "en").String()
}

// extract pulls the answer column from results. For the plan's own
// projection the single variable is used; relaxed SELECT * results use
// the column with the most distinct values (the user recognizes the
// answer column in the table).
func (o *Operator) extract(res *sparql.Results, p qald.Plan) qald.AnswerSet {
	out := make(qald.AnswerSet)
	if len(res.Vars) == 0 {
		return out
	}
	col := res.Vars[0]
	if len(res.Vars) > 1 {
		bestDistinct := -1
		for _, v := range res.Vars {
			seen := make(map[string]bool)
			for _, row := range res.Rows {
				seen[row[v].Value] = true
			}
			if len(seen) > bestDistinct {
				bestDistinct = len(seen)
				col = v
			}
		}
	}
	for _, row := range res.Rows {
		if t, ok := row[col]; ok {
			out[t.Value] = true
		}
	}
	return out
}

// camel converts "vice president" to "vicePresident".
func camel(s string) string {
	words := strings.Fields(s)
	if len(words) == 0 {
		return s
	}
	var b strings.Builder
	b.WriteString(strings.ToLower(words[0]))
	for _, w := range words[1:] {
		b.WriteString(strings.ToUpper(w[:1]) + strings.ToLower(w[1:]))
	}
	return b.String()
}
