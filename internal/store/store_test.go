package store

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"sapphire/internal/rdf"
)

func iri(s string) rdf.Term { return rdf.NewIRI("http://x/" + s) }
func lit(s string) rdf.Term { return rdf.NewLiteral(s) }
func tri(s, p, o rdf.Term) rdf.Triple {
	return rdf.NewTriple(s, p, o)
}

func TestAddAndContains(t *testing.T) {
	s := New()
	tr := tri(iri("s"), iri("p"), lit("o"))
	added, err := s.Add(tr)
	if err != nil || !added {
		t.Fatalf("Add = (%v, %v), want (true, nil)", added, err)
	}
	if !s.Contains(tr) {
		t.Error("Contains after Add = false")
	}
	added, err = s.Add(tr)
	if err != nil || added {
		t.Errorf("duplicate Add = (%v, %v), want (false, nil)", added, err)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
}

func TestAddInvalid(t *testing.T) {
	s := New()
	if _, err := s.Add(tri(lit("bad"), iri("p"), iri("o"))); err == nil {
		t.Error("literal subject accepted")
	}
	if _, err := s.Add(rdf.Triple{S: iri("s"), P: iri("p")}); err == nil {
		t.Error("zero object accepted")
	}
}

func TestMustAddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAdd did not panic on invalid triple")
		}
	}()
	New().MustAdd(tri(lit("bad"), iri("p"), iri("o")))
}

// buildSample creates a small fixed graph used across match tests.
func buildSample(t testing.TB) *Store {
	t.Helper()
	s := New()
	data := []rdf.Triple{
		tri(iri("alice"), iri("knows"), iri("bob")),
		tri(iri("alice"), iri("knows"), iri("carol")),
		tri(iri("alice"), iri("name"), lit("Alice")),
		tri(iri("bob"), iri("knows"), iri("carol")),
		tri(iri("bob"), iri("name"), lit("Bob")),
		tri(iri("carol"), iri("name"), lit("Carol")),
		tri(iri("carol"), iri("age"), rdf.NewTypedLiteral("30", rdf.XSDInteger)),
	}
	if err := s.AddAll(data); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestMatchShapes(t *testing.T) {
	s := buildSample(t)
	var z rdf.Term
	tests := []struct {
		name    string
		s, p, o rdf.Term
		want    int
	}{
		{"SPO exact", iri("alice"), iri("knows"), iri("bob"), 1},
		{"SP?", iri("alice"), iri("knows"), z, 2},
		{"S??", iri("alice"), z, z, 3},
		{"S?O", iri("alice"), z, iri("bob"), 1},
		{"?PO", z, iri("knows"), iri("carol"), 2},
		{"?P?", z, iri("name"), z, 3},
		{"??O", z, z, iri("carol"), 2},
		{"???", z, z, z, 7},
		{"miss subject", iri("nobody"), z, z, 0},
		{"miss predicate", z, iri("nothing"), z, 0},
		{"miss object", z, z, lit("nope"), 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := len(s.MatchSlice(tc.s, tc.p, tc.o))
			if got != tc.want {
				t.Errorf("match(%v,%v,%v) = %d results, want %d", tc.s, tc.p, tc.o, got, tc.want)
			}
			if c := s.Count(tc.s, tc.p, tc.o); c != tc.want {
				t.Errorf("Count = %d, want %d", c, tc.want)
			}
		})
	}
}

func TestMatchEarlyStop(t *testing.T) {
	s := buildSample(t)
	n := 0
	s.Match(rdf.Term{}, rdf.Term{}, rdf.Term{}, func(rdf.Triple) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("early stop visited %d, want 3", n)
	}
}

func TestMatchDeterministic(t *testing.T) {
	s := buildSample(t)
	a := s.MatchSlice(rdf.Term{}, rdf.Term{}, rdf.Term{})
	b := s.MatchSlice(rdf.Term{}, rdf.Term{}, rdf.Term{})
	if len(a) != len(b) {
		t.Fatal("nondeterministic lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic order at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestCardinalityEstimate(t *testing.T) {
	s := buildSample(t)
	var z rdf.Term
	cases := []struct {
		s, p, o rdf.Term
		want    int
	}{
		{iri("alice"), iri("knows"), z, 2},
		{iri("alice"), z, z, 3},
		{z, iri("knows"), iri("carol"), 2},
		{z, iri("name"), z, 3},
		{z, z, iri("carol"), 2},
		{z, z, z, 7},
	}
	for _, tc := range cases {
		if got := s.CardinalityEstimate(tc.s, tc.p, tc.o); got != tc.want {
			t.Errorf("estimate(%v,%v,%v) = %d, want %d", tc.s, tc.p, tc.o, got, tc.want)
		}
	}
}

func TestSubjectsPredicates(t *testing.T) {
	s := buildSample(t)
	if got := len(s.Subjects()); got != 3 {
		t.Errorf("Subjects = %d, want 3", got)
	}
	if got := len(s.Predicates()); got != 3 {
		t.Errorf("Predicates = %d, want 3", got)
	}
}

// TestMatchAgainstNaive cross-checks indexed matching against a brute
// force scan on a randomized graph — the core store invariant.
func TestMatchAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := New()
	var all []rdf.Triple
	subjects := make([]rdf.Term, 20)
	preds := make([]rdf.Term, 5)
	objs := make([]rdf.Term, 30)
	for i := range subjects {
		subjects[i] = iri(fmt.Sprintf("s%d", i))
	}
	for i := range preds {
		preds[i] = iri(fmt.Sprintf("p%d", i))
	}
	for i := range objs {
		if i%2 == 0 {
			objs[i] = lit(fmt.Sprintf("o%d", i))
		} else {
			objs[i] = iri(fmt.Sprintf("o%d", i))
		}
	}
	for i := 0; i < 400; i++ {
		tr := tri(subjects[rng.Intn(len(subjects))], preds[rng.Intn(len(preds))], objs[rng.Intn(len(objs))])
		if added, err := s.Add(tr); err != nil {
			t.Fatal(err)
		} else if added {
			all = append(all, tr)
		}
	}
	naive := func(sub, pred, obj rdf.Term) map[rdf.Triple]bool {
		got := make(map[rdf.Triple]bool)
		for _, tr := range all {
			if !sub.IsZero() && tr.S != sub {
				continue
			}
			if !pred.IsZero() && tr.P != pred {
				continue
			}
			if !obj.IsZero() && tr.O != obj {
				continue
			}
			got[tr] = true
		}
		return got
	}
	var z rdf.Term
	patterns := [][3]rdf.Term{
		{z, z, z},
		{subjects[0], z, z},
		{z, preds[0], z},
		{z, z, objs[0]},
		{subjects[1], preds[1], z},
		{subjects[2], z, objs[2]},
		{z, preds[2], objs[4]},
		{subjects[3], preds[3], objs[6]},
	}
	for _, pat := range patterns {
		want := naive(pat[0], pat[1], pat[2])
		got := s.MatchSlice(pat[0], pat[1], pat[2])
		if len(got) != len(want) {
			t.Errorf("pattern %v: got %d, want %d", pat, len(got), len(want))
		}
		for _, tr := range got {
			if !want[tr] {
				t.Errorf("pattern %v: unexpected result %v", pat, tr)
			}
		}
		if est := s.CardinalityEstimate(pat[0], pat[1], pat[2]); est < len(want) {
			t.Errorf("pattern %v: estimate %d below actual %d", pat, est, len(want))
		}
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	s := buildSample(t)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			s.MustAdd(tri(iri(fmt.Sprintf("w%d", i)), iri("knows"), iri("bob")))
		}
	}()
	for i := 0; i < 200; i++ {
		s.Count(rdf.Term{}, iri("knows"), rdf.Term{})
		s.CardinalityEstimate(rdf.Term{}, rdf.Term{}, iri("bob"))
	}
	<-done
	if got := s.Len(); got != 207 {
		t.Errorf("Len = %d, want 207", got)
	}
}

func TestAddPropertyNoDuplicates(t *testing.T) {
	f := func(names []string) bool {
		s := New()
		uniq := make(map[rdf.Triple]struct{})
		for _, n := range names {
			tr := tri(iri("s"), iri("p"), lit(n))
			uniq[tr] = struct{}{}
			if _, err := s.Add(tr); err != nil {
				return false
			}
			if _, err := s.Add(tr); err != nil {
				return false
			}
		}
		return s.Len() == len(uniq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
