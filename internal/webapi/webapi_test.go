package webapi

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"sapphire"
	"sapphire/internal/datagen"
	"sapphire/internal/endpoint"
)

var shared *httptest.Server

func apiServer(t testing.TB) *httptest.Server {
	t.Helper()
	if shared != nil {
		return shared
	}
	d := datagen.Generate(datagen.SmallConfig())
	ep := endpoint.NewLocal("synthetic-dbpedia", d.Store, endpoint.Limits{})
	client := sapphire.New(sapphire.Defaults())
	if err := client.RegisterEndpoint(context.Background(), ep); err != nil {
		t.Fatal(err)
	}
	shared = httptest.NewServer(Handler(client))
	return shared
}

func getJSON(t testing.TB, url string, into any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func postJSON(t testing.TB, url, body string, into any) int {
	t.Helper()
	resp, err := http.Post(url, "application/sparql-query", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func TestCompleteEndpoint(t *testing.T) {
	srv := apiServer(t)
	var comps []map[string]any
	if code := getJSON(t, srv.URL+"/complete?term=Kerouac", &comps); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(comps) == 0 {
		t.Fatal("no completions over HTTP")
	}
	found := false
	for _, c := range comps {
		if c["text"] == "Jack Kerouac" {
			found = true
		}
	}
	if !found {
		t.Errorf("completions = %v", comps)
	}
}

func TestQueryEndpoint(t *testing.T) {
	srv := apiServer(t)
	var out map[string]any
	code := postJSON(t, srv.URL+"/query",
		`SELECT ?w WHERE { <http://dbpedia.org/resource/Tom_Hanks> <http://dbpedia.org/ontology/spouse> ?w . }`, &out)
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	rows := out["rows"].([]any)
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	row := rows[0].(map[string]any)
	if row["w"] != "http://dbpedia.org/resource/Rita_Wilson" {
		t.Errorf("row = %v", row)
	}
}

func TestRunEndpointWithSuggestions(t *testing.T) {
	srv := apiServer(t)
	var out struct {
		Results     map[string]any   `json:"results"`
		Suggestions []map[string]any `json:"suggestions"`
	}
	code := postJSON(t, srv.URL+"/run",
		`SELECT ?p WHERE { ?p <http://dbpedia.org/ontology/name> "Ted Kennedys"@en . }`, &out)
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(out.Suggestions) == 0 {
		t.Fatal("no suggestions in /run response")
	}
	s := out.Suggestions[0]
	msg, _ := s["message"].(string)
	if !strings.Contains(msg, "instead of") && !strings.Contains(msg, "relaxed") {
		t.Errorf("message = %q", msg)
	}
	if _, ok := s["answers"].(float64); !ok {
		t.Errorf("answers missing: %v", s)
	}
}

func TestSuggestEndpoint(t *testing.T) {
	srv := apiServer(t)
	var sugs []map[string]any
	code := postJSON(t, srv.URL+"/suggest",
		`SELECT ?p WHERE { ?p <http://dbpedia.org/ontology/name> "Ted Kennedys"@en . }`, &sugs)
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(sugs) == 0 {
		t.Error("no suggestions")
	}
}

func TestStatsEndpoint(t *testing.T) {
	srv := apiServer(t)
	var stats map[string]any
	if code := getJSON(t, srv.URL+"/stats", &stats); code != 200 {
		t.Fatalf("status %d", code)
	}
	if stats["PredicateCount"].(float64) == 0 {
		t.Errorf("stats = %v", stats)
	}
}

func TestErrorPaths(t *testing.T) {
	srv := apiServer(t)
	// GET on a POST-only route.
	resp, err := http.Get(srv.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /query = %d", resp.StatusCode)
	}
	// Empty body.
	var out any
	if code := postJSON(t, srv.URL+"/query", "  ", &out); code != http.StatusBadRequest {
		t.Errorf("empty body = %d", code)
	}
	// Unparseable query.
	if code := postJSON(t, srv.URL+"/query", "garbage", &out); code != http.StatusBadRequest {
		t.Errorf("bad query = %d", code)
	}
	if code := postJSON(t, srv.URL+"/suggest", "garbage", &out); code != http.StatusBadRequest {
		t.Errorf("bad suggest = %d", code)
	}
	if code := postJSON(t, srv.URL+"/run", "garbage", &out); code != http.StatusBadRequest {
		t.Errorf("bad run = %d", code)
	}
}
