package store

import (
	"sort"
	"sync"
	"sync/atomic"

	"sapphire/internal/rdf"
)

// ID is a dense dictionary identifier for an interned rdf.Term. IDs are
// assigned in first-seen order starting at 1; the zero ID is reserved as
// the Wildcard sentinel so that ID-level pattern matching mirrors the
// zero-Term wildcard convention of the Term-level API.
//
// ID is an alias (not a defined type) so callers outside this package can
// use plain uint32 values without conversions — the sparql evaluator's
// IDGraph fast path relies on that.
type ID = uint32

// Wildcard is the ID-level wildcard: MatchIDs and CountIDs treat it the
// way Match treats a zero rdf.Term.
const Wildcard ID = 0

// dict is the two-way term dictionary: a term→ID hash for interning and
// an ID→term slice for O(1) resolution. The dictionary is shared by all
// of a store's shards and carries its own mutex: interning locks the
// dictionary only, never any shard, so staging terms for a bulk load on
// one shard cannot stall a reader or writer of another.
//
// The ID→term direction is additionally published through an atomic
// snapshot so resolution never needs a lock (see termSnapshot), which
// lets evaluator callbacks running inside a MatchIDs read-lock resolve
// IDs without re-acquiring any mutex, and lets per-shard index
// maintenance compare terms without racing concurrent interning.
type dict struct {
	mu    sync.RWMutex
	ids   map[rdf.Term]ID
	terms []rdf.Term // terms[0] is the zero Term, backing Wildcard

	// snap is the last published terms slice header. The slice is
	// append-only: an element is fully written before the header that
	// makes it visible is stored, and a published header's elements are
	// never rewritten, so readers of any snapshot see immutable data.
	snap atomic.Pointer[[]rdf.Term]
}

func newDict() *dict {
	d := &dict{
		ids:   make(map[rdf.Term]ID),
		terms: make([]rdf.Term, 1),
	}
	d.publish()
	return d
}

// publish must be called with d.mu held.
func (d *dict) publish() {
	terms := d.terms
	d.snap.Store(&terms)
}

// intern returns the ID for t, assigning the next dense ID on first
// sight.
func (d *dict) intern(t rdf.Term) ID {
	d.mu.Lock()
	id := d.internLocked(t)
	d.mu.Unlock()
	return id
}

// internTriple interns all three positions under one lock acquisition.
func (d *dict) internTriple(tr rdf.Triple) (si, pi, oi ID) {
	d.mu.Lock()
	si = d.internLocked(tr.S)
	pi = d.internLocked(tr.P)
	oi = d.internLocked(tr.O)
	d.mu.Unlock()
	return si, pi, oi
}

func (d *dict) internLocked(t rdf.Term) ID {
	if id, ok := d.ids[t]; ok {
		return id
	}
	id := ID(len(d.terms))
	d.ids[t] = id
	d.terms = append(d.terms, t)
	d.publish()
	return id
}

// lookup returns the ID for t without interning.
func (d *dict) lookup(t rdf.Term) (ID, bool) {
	d.mu.RLock()
	id, ok := d.ids[t]
	d.mu.RUnlock()
	return id, ok
}

// snapshot returns the last published ID→term slice. The slice is
// immutable; indexing it by any ID published before the snapshot was
// taken is race-free without locks.
func (d *dict) snapshot() []rdf.Term {
	return *d.snap.Load()
}

// termSnapshot resolves an ID against the last published snapshot
// without locking. Safe to call concurrently with interning and from
// within Match/MatchIDs callbacks.
func (d *dict) termSnapshot(id ID) rdf.Term {
	terms := d.snapshot()
	if int(id) < len(terms) {
		return terms[id]
	}
	return rdf.Term{}
}

// index is one permutation of a shard's triple indexes (SPO, POS, or
// OSP): a level-one key → entry map plus the level-one keys maintained
// in term order so wildcard iteration never sorts.
//
// sortedInner additionally keeps the innermost ID lists term-sorted
// (the POS permutation sets it). That is what makes the cross-shard
// wildcard-subject fan-out a pure k-way merge: subjects are partitioned
// across shards, so per-shard subject lists for a (predicate, object)
// pair are disjoint sorted runs that merge deterministically in term
// order — no global arrival clock required. SPO and OSP leave their
// innermost lists in insertion order; their inner levels never span
// shards (the level that varies is the subject, which picks the shard).
type index struct {
	m           map[ID]*entry
	keys        []ID // level-one keys, term-sorted
	sortedInner bool
}

// entry is one level-one slot of an index: level-two key → level-three ID
// list, the level-two keys in term order, and the total number of triples
// underneath (giving O(1) per-key cardinalities).
type entry struct {
	m     map[ID][]ID
	keys  []ID // level-two keys, term-sorted
	total int
}

func newIndex(sortedInner bool) index {
	return index{m: make(map[ID]*entry), sortedInner: sortedInner}
}

// add records the (a, b, c) path in the index. The caller guarantees the
// triple is new (the shard dedups via its present set), so c is appended
// (or, with sortedInner, insertion-sorted) unconditionally. Key slices
// are maintained sorted by term order with a binary-search insertion:
// Add is the cold path, Match the hot one. terms is a dictionary
// snapshot covering every ID involved.
func (x *index) add(terms []rdf.Term, a, b, c ID) {
	e := x.m[a]
	if e == nil {
		e = &entry{m: make(map[ID][]ID)}
		x.m[a] = e
		x.keys = insertSorted(terms, x.keys, a)
	}
	if _, ok := e.m[b]; !ok {
		e.keys = insertSorted(terms, e.keys, b)
	}
	if x.sortedInner {
		e.m[b] = insertSorted(terms, e.m[b], c)
	} else {
		e.m[b] = append(e.m[b], c)
	}
	e.total++
}

// insertSorted inserts id into keys keeping term order.
func insertSorted(terms []rdf.Term, keys []ID, id ID) []ID {
	t := terms[id]
	i := sort.Search(len(keys), func(i int) bool {
		return terms[keys[i]].Compare(t) >= 0
	})
	keys = append(keys, 0)
	copy(keys[i+1:], keys[i:])
	keys[i] = id
	return keys
}
