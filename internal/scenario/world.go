package scenario

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"time"

	"sapphire/internal/datagen"
	"sapphire/internal/endpoint"
	"sapphire/internal/federation"
	"sapphire/internal/store"
	"sapphire/internal/store/persist"
)

// World is an in-process serving deployment for a scenario run: a
// durable primary endpoint behind the full NewMux route surface (plus
// /add), a second member behind a Flaky wrapper injecting timeouts, and
// a federation over both — real HTTP servers on loopback, so the run
// exercises the same wire paths as a deployed sapphire-endpoint.
type World struct {
	// Target is ready to pass to Run.
	Target Target
	// PrimaryURL is the primary server's base URL (routes: /sparql,
	// /epoch, /healthz, /add).
	PrimaryURL string
	// FlakyURL is the flapping member's query URL.
	FlakyURL string

	dir     string
	db      *persist.DB
	primary *httptest.Server
	flaky   *httptest.Server
}

// FlakyTimeoutEvery is the injected failure cadence of the world's
// flapping federation member: every Nth member query times out, which
// the endpoint client's retry/backoff must ride out.
const FlakyTimeoutEvery = 4

// NewWorld builds the deployment for a dataset scale ("small" or
// "default") and seed. Callers must Close it.
func NewWorld(dataset string, seed int64) (*World, error) {
	cfg := datagen.DefaultConfig()
	if dataset == "small" {
		cfg = datagen.SmallConfig()
	}
	cfg.Seed = seed

	dir, err := os.MkdirTemp("", "sapphire-scenario-*")
	if err != nil {
		return nil, err
	}
	w := &World{dir: dir}
	// FsyncOff: the scenario measures serving latency, not disk flush
	// cost; the WAL write path (and its commit markers) still runs.
	db, _, err := persist.Open(dir, persist.Options{Fsync: persist.FsyncOff})
	if err != nil {
		w.Close()
		return nil, err
	}
	w.db = db
	err = db.Ingest(func(s *store.Store) error {
		datagen.GenerateInto(cfg, s)
		return nil
	})
	if err != nil {
		w.Close()
		return nil, fmt.Errorf("scenario world: ingest: %w", err)
	}

	primaryEP := endpoint.NewLocal("primary", db.Store(), endpoint.Limits{
		RejectEstimateAbove: endpoint.DefaultRejectEstimate,
		CacheBytes:          endpoint.DefaultCacheBytes,
	})
	mux := endpoint.NewMux(primaryEP)
	mux.Handle("/add", endpoint.AddHandler(db))
	w.primary = httptest.NewServer(mux)
	w.PrimaryURL = w.primary.URL

	// The flapping member: a small independent store behind Flaky, so
	// federation queries hit injected timeouts at a fixed cadence.
	memberCfg := datagen.SmallConfig()
	memberCfg.Seed = seed + 1
	memberEP := endpoint.NewLocal("flaky-member", datagen.Generate(memberCfg).Store, endpoint.DefaultLimits())
	w.flaky = httptest.NewServer(endpoint.Handler(endpoint.NewFlaky(memberEP, FlakyTimeoutEvery, 0, seed)))
	w.FlakyURL = w.flaky.URL

	// Fast backoff: loopback latencies, and the flaky member's injected
	// timeouts are the thing under test — waiting full production
	// backoffs would just stretch the phase wall-clock.
	retry := endpoint.RetryPolicy{
		MaxAttempts: 3,
		BaseDelay:   2 * time.Millisecond,
		MaxDelay:    20 * time.Millisecond,
		Seed:        seed,
	}
	primaryClient := endpoint.NewClient(w.primary.URL+"/sparql",
		endpoint.WithRetryPolicy(retry), endpoint.WithUserAgent("sapphire-loadgen/1"))
	flakyClient := endpoint.NewClient(w.flaky.URL,
		endpoint.WithRetryPolicy(retry), endpoint.WithUserAgent("sapphire-loadgen/1"))

	fed := federation.New(primaryClient, flakyClient)
	// Throttle epoch probes: the mixed phase churns the primary's epoch
	// constantly; probing every Eval would double federation traffic.
	fed.SetEpochPoll(100 * time.Millisecond)

	w.Target = Target{
		Query:      primaryClient,
		AddURL:     w.primary.URL + "/add",
		HTTP:       &http.Client{Timeout: 30 * time.Second},
		Federation: fed,
	}
	return w, nil
}

// Close tears the world down and removes its data directory.
func (w *World) Close() {
	if w.primary != nil {
		w.primary.Close()
	}
	if w.flaky != nil {
		w.flaky.Close()
	}
	if w.db != nil {
		w.db.Close()
	}
	if w.dir != "" {
		os.RemoveAll(w.dir)
	}
}
