package sparql

import (
	"fmt"
	"strconv"
	"strings"

	"sapphire/internal/rdf"
)

// Parse parses a SPARQL SELECT query. The grammar covers the subset used
// throughout the paper; see the package comment. Prefixed names resolve
// against explicit PREFIX declarations plus rdf.CommonPrefixes.
func Parse(src string) (*Query, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	q, err := p.query()
	if err != nil {
		return nil, err
	}
	return q, nil
}

// MustParse parses a query and panics on error. For static queries in
// tests and generators.
func MustParse(src string) *Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	toks []token
	i    int
	src  string
	q    *Query
}

func (p *parser) cur() token { return p.toks[p.i] }

// next consumes and returns the current token. The trailing EOF token
// is sticky: consuming it does not advance, so cur is always in range
// even when an error path consumes further than the grammar allows
// (found by FuzzParse: `SELECT(` walked one token past EOF).
func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) errf(format string, args ...any) error {
	pos := p.cur().pos
	line := 1 + strings.Count(p.src[:min(pos, len(p.src))], "\n")
	return fmt.Errorf("sparql: parse error at line %d: %s", line, fmt.Sprintf(format, args...))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// keyword reports whether the current token is the given case-insensitive
// identifier.
func (p *parser) keyword(kw string) bool {
	t := p.cur()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.keyword(kw) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, what string) (token, error) {
	if p.cur().kind != kind {
		return token{}, p.errf("expected %s, got %q", what, p.cur().text)
	}
	return p.next(), nil
}

func (p *parser) query() (*Query, error) {
	q := &Query{Limit: -1, Prefixes: map[string]string{}}
	for k, v := range rdf.CommonPrefixes {
		q.Prefixes[k] = v
	}
	p.q = q

	// PREFIX declarations.
	for p.acceptKeyword("prefix") {
		label, err := p.expect(tokPName, "prefix label")
		if err != nil {
			return nil, err
		}
		if !strings.HasSuffix(label.text, ":") && strings.Count(label.text, ":") != 1 {
			return nil, p.errf("malformed prefix label %q", label.text)
		}
		iri, err := p.expect(tokIRI, "prefix IRI")
		if err != nil {
			return nil, err
		}
		name := strings.TrimSuffix(label.text, ":")
		// tokPName is "label:local"; for a declaration local is empty.
		name = strings.SplitN(name, ":", 2)[0]
		q.Prefixes[name] = iri.text
	}

	if !p.acceptKeyword("select") {
		return nil, p.errf("expected SELECT")
	}
	if p.acceptKeyword("distinct") {
		q.Distinct = true
	}
	if err := p.selectItems(q); err != nil {
		return nil, err
	}
	if !p.acceptKeyword("where") {
		return nil, p.errf("expected WHERE")
	}
	if _, err := p.expect(tokLBrace, "'{'"); err != nil {
		return nil, err
	}
	if err := p.groupGraphPattern(q); err != nil {
		return nil, err
	}
	if err := p.solutionModifiers(q); err != nil {
		return nil, err
	}
	if p.cur().kind != tokEOF {
		return nil, p.errf("unexpected trailing input %q", p.cur().text)
	}
	if err := validate(q); err != nil {
		return nil, err
	}
	return q, nil
}

func (p *parser) selectItems(q *Query) error {
	if p.cur().kind == tokStar {
		p.next()
		q.SelectAll = true
		return nil
	}
	for {
		switch {
		case p.cur().kind == tokVar:
			q.Projections = append(q.Projections, Projection{Var: p.next().text})
		case p.cur().kind == tokLParen:
			p.next()
			proj, err := p.aggregate()
			if err != nil {
				return err
			}
			if p.acceptKeyword("as") {
				v, err := p.expect(tokVar, "alias variable")
				if err != nil {
					return err
				}
				proj.As = v.text
			}
			if _, err := p.expect(tokRParen, "')'"); err != nil {
				return err
			}
			q.Projections = append(q.Projections, proj)
		case p.cur().kind == tokIdent && isAggName(p.cur().text):
			// Bare aggregate without parens around the whole clause:
			// SELECT DISTINCT count (?uri) — as in the paper's intro.
			proj, err := p.aggregate()
			if err != nil {
				return err
			}
			if p.acceptKeyword("as") {
				v, err := p.expect(tokVar, "alias variable")
				if err != nil {
					return err
				}
				proj.As = v.text
			}
			q.Projections = append(q.Projections, proj)
		default:
			if len(q.Projections) == 0 {
				return p.errf("expected projection variable or aggregate")
			}
			return nil
		}
	}
}

func isAggName(s string) bool {
	switch strings.ToLower(s) {
	case "count", "max", "min", "sum", "avg":
		return true
	}
	return false
}

func aggKind(s string) AggregateKind {
	switch strings.ToLower(s) {
	case "count":
		return AggCount
	case "max":
		return AggMax
	case "min":
		return AggMin
	case "sum":
		return AggSum
	case "avg":
		return AggAvg
	}
	return AggNone
}

// aggregate parses COUNT(...)/MAX(...)/... with the leading keyword at
// the current position.
func (p *parser) aggregate() (Projection, error) {
	kw := p.next()
	kind := aggKind(kw.text)
	if kind == AggNone {
		return Projection{}, p.errf("expected aggregate function, got %q", kw.text)
	}
	if _, err := p.expect(tokLParen, "'('"); err != nil {
		return Projection{}, err
	}
	proj := Projection{Agg: kind}
	if p.acceptKeyword("distinct") {
		proj.AggDistinct = true
	}
	switch p.cur().kind {
	case tokStar:
		p.next()
		if kind != AggCount {
			return Projection{}, p.errf("only COUNT supports *")
		}
	case tokVar:
		proj.Var = p.next().text
	default:
		return Projection{}, p.errf("expected variable or * in aggregate")
	}
	if _, err := p.expect(tokRParen, "')'"); err != nil {
		return Projection{}, err
	}
	return proj, nil
}

func (p *parser) groupGraphPattern(q *Query) error {
	for {
		switch {
		case p.cur().kind == tokRBrace:
			p.next()
			return nil
		case p.keyword("filter"):
			p.next()
			if _, err := p.expect(tokLParen, "'(' after FILTER"); err != nil {
				return err
			}
			e, err := p.expr()
			if err != nil {
				return err
			}
			if _, err := p.expect(tokRParen, "')' closing FILTER"); err != nil {
				return err
			}
			q.Filters = append(q.Filters, e)
		case p.keyword("optional"):
			p.next()
			if _, err := p.expect(tokLBrace, "'{' after OPTIONAL"); err != nil {
				return err
			}
			block, err := p.bareGroup()
			if err != nil {
				return err
			}
			if len(block) == 0 {
				return p.errf("empty OPTIONAL block")
			}
			q.Optionals = append(q.Optionals, block)
		case p.cur().kind == tokLBrace:
			// { ... } UNION { ... } [UNION { ... }]*
			if len(q.UnionGroups) > 0 || len(q.Where) > 0 {
				return p.errf("nested group patterns are only supported as UNION branches at the start of WHERE")
			}
			for {
				p.next() // '{'
				g, err := p.bareGroup()
				if err != nil {
					return err
				}
				if len(g) == 0 {
					return p.errf("empty UNION branch")
				}
				q.UnionGroups = append(q.UnionGroups, g)
				if p.acceptKeyword("union") {
					if p.cur().kind != tokLBrace {
						return p.errf("expected '{' after UNION")
					}
					continue
				}
				break
			}
			if len(q.UnionGroups) < 2 {
				return p.errf("a braced group must be part of a UNION")
			}
		case p.cur().kind == tokEOF:
			return p.errf("unterminated group graph pattern")
		default:
			if err := p.triplesBlock(q); err != nil {
				return err
			}
		}
	}
}

// bareGroup parses the triples of a nested { ... } block (no FILTER or
// further nesting inside) and consumes the closing brace.
func (p *parser) bareGroup() ([]Pattern, error) {
	sub := &Query{Limit: -1, Prefixes: p.q.Prefixes}
	saved := p.q
	p.q = sub
	defer func() { p.q = saved }()
	for {
		switch {
		case p.cur().kind == tokRBrace:
			p.next()
			return sub.Where, nil
		case p.cur().kind == tokEOF:
			return nil, p.errf("unterminated nested group")
		default:
			if err := p.triplesBlock(sub); err != nil {
				return nil, err
			}
		}
	}
}

// triplesBlock parses one triple with optional ';' predicate-object list
// continuation and the trailing '.'.
func (p *parser) triplesBlock(q *Query) error {
	s, err := p.node(posSubject)
	if err != nil {
		return err
	}
	for {
		pr, err := p.node(posPredicate)
		if err != nil {
			return err
		}
		o, err := p.node(posObject)
		if err != nil {
			return err
		}
		q.Where = append(q.Where, Pattern{S: s, P: pr, O: o})
		if p.cur().kind == tokSemicolon {
			p.next()
			// Allow a dangling ';' before '.' or '}'.
			if p.cur().kind == tokDot || p.cur().kind == tokRBrace {
				break
			}
			continue
		}
		break
	}
	if p.cur().kind == tokDot {
		p.next()
	} else if p.cur().kind != tokRBrace {
		return p.errf("expected '.' or '}' after triple, got %q", p.cur().text)
	}
	return nil
}

type position uint8

const (
	posSubject position = iota
	posPredicate
	posObject
)

func (p *parser) node(pos position) (Node, error) {
	t := p.cur()
	switch t.kind {
	case tokVar:
		p.next()
		return NewVar(t.text), nil
	case tokIRI:
		p.next()
		return NewTermNode(rdf.NewIRI(t.text)), nil
	case tokPName:
		p.next()
		iri, err := p.expandPName(t.text)
		if err != nil {
			return Node{}, err
		}
		return NewTermNode(rdf.NewIRI(iri)), nil
	case tokIdent:
		if t.text == "a" && pos == posPredicate {
			p.next()
			return NewTermNode(rdf.NewIRI(rdf.RDFType)), nil
		}
		return Node{}, p.errf("unexpected identifier %q in triple", t.text)
	case tokString:
		if pos != posObject {
			return Node{}, p.errf("literal allowed only in object position")
		}
		p.next()
		lex := t.text
		switch p.cur().kind {
		case tokLangTag:
			lang := p.next().text
			return NewTermNode(rdf.NewLangLiteral(lex, lang)), nil
		case tokDTSep:
			p.next()
			dt := p.cur()
			switch dt.kind {
			case tokIRI:
				p.next()
				return NewTermNode(rdf.NewTypedLiteral(lex, dt.text)), nil
			case tokPName:
				p.next()
				iri, err := p.expandPName(dt.text)
				if err != nil {
					return Node{}, err
				}
				return NewTermNode(rdf.NewTypedLiteral(lex, iri)), nil
			default:
				return Node{}, p.errf("expected datatype IRI after ^^")
			}
		default:
			return NewTermNode(rdf.NewLiteral(lex)), nil
		}
	case tokNumber:
		if pos != posObject {
			return Node{}, p.errf("numeric literal allowed only in object position")
		}
		p.next()
		if strings.Contains(t.text, ".") {
			return NewTermNode(rdf.NewTypedLiteral(t.text, rdf.XSDDouble)), nil
		}
		return NewTermNode(rdf.NewTypedLiteral(t.text, rdf.XSDInteger)), nil
	default:
		return Node{}, p.errf("unexpected token %q in triple pattern", t.text)
	}
}

func (p *parser) expandPName(pname string) (string, error) {
	parts := strings.SplitN(pname, ":", 2)
	ns, ok := p.q.Prefixes[parts[0]]
	if !ok {
		return "", p.errf("undefined prefix %q", parts[0])
	}
	return ns + parts[1], nil
}

func (p *parser) solutionModifiers(q *Query) error {
	for {
		switch {
		case p.acceptKeyword("group"):
			if !p.acceptKeyword("by") {
				return p.errf("expected BY after GROUP")
			}
			for p.cur().kind == tokVar {
				q.GroupBy = append(q.GroupBy, p.next().text)
			}
			if len(q.GroupBy) == 0 {
				return p.errf("GROUP BY requires at least one variable")
			}
		case p.acceptKeyword("order"):
			if !p.acceptKeyword("by") {
				return p.errf("expected BY after ORDER")
			}
			n := 0
			for parsing := true; parsing; {
				switch {
				case p.cur().kind == tokVar:
					q.OrderBy = append(q.OrderBy, OrderKey{Var: p.next().text})
					n++
				case p.keyword("desc") || p.keyword("asc"):
					desc := strings.EqualFold(p.next().text, "desc")
					if _, err := p.expect(tokLParen, "'('"); err != nil {
						return err
					}
					v, err := p.expect(tokVar, "order variable")
					if err != nil {
						return err
					}
					if _, err := p.expect(tokRParen, "')'"); err != nil {
						return err
					}
					q.OrderBy = append(q.OrderBy, OrderKey{Var: v.text, Desc: desc})
					n++
				default:
					if n == 0 {
						return p.errf("ORDER BY requires at least one key")
					}
					parsing = false
				}
			}
		case p.acceptKeyword("limit"):
			t, err := p.expect(tokNumber, "LIMIT count")
			if err != nil {
				return err
			}
			v, err := strconv.Atoi(t.text)
			if err != nil || v < 0 {
				return p.errf("invalid LIMIT %q", t.text)
			}
			q.Limit = v
		case p.acceptKeyword("offset"):
			t, err := p.expect(tokNumber, "OFFSET count")
			if err != nil {
				return err
			}
			v, err := strconv.Atoi(t.text)
			if err != nil || v < 0 {
				return p.errf("invalid OFFSET %q", t.text)
			}
			q.Offset = v
		default:
			return nil
		}
	}
}

// validate performs post-parse checks: aggregates may not mix with plain
// projections unless grouped, and projected variables must appear in the
// pattern.
func validate(q *Query) error {
	inWhere := make(map[string]bool)
	for _, v := range q.Vars() {
		inWhere[v] = true
	}
	grouped := make(map[string]bool)
	for _, v := range q.GroupBy {
		grouped[v] = true
		if !inWhere[v] {
			return fmt.Errorf("sparql: GROUP BY variable ?%s not in WHERE clause", v)
		}
	}
	hasAgg := q.HasAggregates()
	for _, pr := range q.Projections {
		if pr.Agg == AggNone {
			if !inWhere[pr.Var] {
				return fmt.Errorf("sparql: projected variable ?%s not in WHERE clause", pr.Var)
			}
			if hasAgg && !grouped[pr.Var] {
				return fmt.Errorf("sparql: plain projection ?%s alongside aggregates requires GROUP BY ?%s", pr.Var, pr.Var)
			}
		} else if pr.Var != "" && !inWhere[pr.Var] {
			return fmt.Errorf("sparql: aggregated variable ?%s not in WHERE clause", pr.Var)
		}
	}
	return nil
}

// expr parses a filter expression with precedence || < && < comparison <
// additive < multiplicative < unary.
func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokOp && p.cur().text == "||" {
		p.next()
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = BinExpr{Op: OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.cmpExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokOp && p.cur().text == "&&" {
		p.next()
		r, err := p.cmpExpr()
		if err != nil {
			return nil, err
		}
		l = BinExpr{Op: OpAnd, L: l, R: r}
	}
	return l, nil
}

var cmpOps = map[string]BinOp{
	"=": OpEq, "!=": OpNeq, "<": OpLt, ">": OpGt, "<=": OpLeq, ">=": OpGeq,
}

func (p *parser) cmpExpr() (Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	if p.cur().kind == tokOp {
		if op, ok := cmpOps[p.cur().text]; ok {
			p.next()
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			return BinExpr{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) addExpr() (Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokOp && (p.cur().text == "+" || p.cur().text == "-") {
		op := OpAdd
		if p.next().text == "-" {
			op = OpSub
		}
		r, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		l = BinExpr{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) mulExpr() (Expr, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for (p.cur().kind == tokOp && p.cur().text == "/") || p.cur().kind == tokStar {
		op := OpDiv
		if p.cur().kind == tokStar {
			op = OpMul
		}
		p.next()
		r, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		l = BinExpr{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) unaryExpr() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokOp && t.text == "!":
		p.next()
		e, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return NotExpr{E: e}, nil
	case t.kind == tokOp && t.text == "-":
		p.next()
		e, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return BinExpr{Op: OpSub, L: NumExpr{V: 0}, R: e}, nil
	case t.kind == tokLParen:
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokVar:
		p.next()
		return VarExpr{Name: t.text}, nil
	case t.kind == tokNumber:
		p.next()
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errf("invalid number %q", t.text)
		}
		return NumExpr{V: v}, nil
	case t.kind == tokString:
		p.next()
		// A string followed by a language tag or datatype is a literal
		// constant.
		switch p.cur().kind {
		case tokLangTag:
			lang := p.next().text
			return ConstExpr{Term: rdf.NewLangLiteral(t.text, lang)}, nil
		case tokDTSep:
			p.next()
			dt, err := p.expect(tokIRI, "datatype IRI")
			if err != nil {
				return nil, err
			}
			return ConstExpr{Term: rdf.NewTypedLiteral(t.text, dt.text)}, nil
		}
		return StrExpr{V: t.text}, nil
	case t.kind == tokIRI:
		p.next()
		return ConstExpr{Term: rdf.NewIRI(t.text)}, nil
	case t.kind == tokPName:
		p.next()
		iri, err := p.expandPName(t.text)
		if err != nil {
			return nil, err
		}
		return ConstExpr{Term: rdf.NewIRI(iri)}, nil
	case t.kind == tokIdent:
		name := strings.ToLower(t.text)
		p.next()
		if _, err := p.expect(tokLParen, "'(' after function name"); err != nil {
			return nil, err
		}
		var args []Expr
		if p.cur().kind != tokRParen {
			for {
				a, err := p.expr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if p.cur().kind == tokComma {
					p.next()
					continue
				}
				break
			}
		}
		if _, err := p.expect(tokRParen, "')' closing function call"); err != nil {
			return nil, err
		}
		return FuncExpr{Name: name, Args: args}, nil
	default:
		return nil, p.errf("unexpected token %q in expression", t.text)
	}
}
