package bootstrap

import (
	"sort"

	"sapphire/internal/bins"
	"sapphire/internal/rdf"
	"sapphire/internal/suffixtree"
)

// MergeCaches combines per-endpoint caches into one cache spanning all
// registered endpoints, so a single PUM can complete and suggest across
// the whole federation. The suffix tree and bins are rebuilt over the
// union of indexed strings; stats are summed.
func MergeCaches(caches ...*Cache) *Cache {
	if len(caches) == 1 {
		return caches[0]
	}
	merged := &Cache{
		Endpoint:      "federation",
		displayToPred: make(map[string][]rdf.Term),
		literalTerm:   make(map[string]rdf.Term),
		inTree:        make(map[string]bool),
	}
	seenPred := make(map[rdf.Term]bool)
	var treeStrings []string
	for _, c := range caches {
		if c == nil {
			continue
		}
		for _, p := range c.Predicates {
			if !seenPred[p] {
				seenPred[p] = true
				merged.Predicates = append(merged.Predicates, p)
			}
		}
		for lex, t := range c.literalTerm {
			if _, dup := merged.literalTerm[lex]; !dup {
				merged.literalTerm[lex] = t
			}
		}
		for s := range c.inTree {
			merged.inTree[s] = true
		}
		merged.Stats.QueriesIssued += c.Stats.QueriesIssued
		merged.Stats.Timeouts += c.Stats.Timeouts
		merged.Stats.LiteralQueries += c.Stats.LiteralQueries
		merged.Stats.SignificanceQueries += c.Stats.SignificanceQueries
		merged.Stats.UsedHierarchy = merged.Stats.UsedHierarchy || c.Stats.UsedHierarchy
		merged.Stats.Duration += c.Stats.Duration
	}
	for _, p := range merged.Predicates {
		d := DisplayName(p)
		if len(merged.displayToPred[d]) == 0 {
			merged.inTree[d] = true
		}
		merged.displayToPred[d] = append(merged.displayToPred[d], p)
	}
	for s := range merged.inTree {
		treeStrings = append(treeStrings, s)
	}
	sort.Strings(treeStrings)
	merged.Tree = suffixtree.New(treeStrings)
	var residual []string
	for lex := range merged.literalTerm {
		if !merged.inTree[lex] {
			residual = append(residual, lex)
		}
	}
	sort.Strings(residual)
	merged.Bins = bins.New(residual)

	merged.Stats.PredicateCount = len(merged.Predicates)
	merged.Stats.LiteralCount = len(merged.literalTerm)
	merged.Stats.SignificantCount = 0
	for lex := range merged.inTree {
		if _, isLit := merged.literalTerm[lex]; isLit {
			merged.Stats.SignificantCount++
		}
	}
	merged.Stats.ResidualCount = merged.Bins.Len()
	merged.Stats.BinCount = merged.Bins.BinCount()
	merged.Stats.TreeNodes = merged.Tree.NodeCount()
	merged.Stats.TreeBytes = merged.Tree.ApproxBytes()
	return merged
}
