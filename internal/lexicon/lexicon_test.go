package lexicon

import (
	"testing"
)

func TestLexicaSymmetric(t *testing.T) {
	lx := New([][]string{{"spouse", "wife", "husband"}})
	got := lx.Lexica("wife")
	want := map[string]bool{"spouse": true, "wife": true, "husband": true}
	if len(got) != 3 {
		t.Fatalf("Lexica(wife) = %v", got)
	}
	for _, w := range got {
		if !want[w] {
			t.Errorf("unexpected verbalization %q", w)
		}
	}
	// Symmetry: husband reaches the same group.
	if len(lx.Lexica("husband")) != 3 {
		t.Error("husband not symmetric")
	}
}

func TestLexicaFallback(t *testing.T) {
	lx := New(nil)
	got := lx.Lexica("unknownterm")
	if len(got) != 1 || got[0] != "unknownterm" {
		t.Errorf("fallback = %v, want just the term", got)
	}
	if lx.Contains("unknownterm") {
		t.Error("Contains should be false for unknown term")
	}
}

func TestLexicaEmpty(t *testing.T) {
	lx := Default()
	if got := lx.Lexica(""); got != nil {
		t.Errorf("empty term = %v", got)
	}
	if got := lx.Lexica("   "); got != nil {
		t.Errorf("blank term = %v", got)
	}
}

func TestLexicaCaseInsensitive(t *testing.T) {
	lx := Default()
	a := lx.Lexica("Spouse")
	b := lx.Lexica("spouse")
	if len(a) != len(b) {
		t.Errorf("case sensitivity: %v vs %v", a, b)
	}
}

func TestLexicaMultipleGroups(t *testing.T) {
	lx := New([][]string{
		{"state", "country"},
		{"state", "province"},
	})
	got := lx.Lexica("state")
	if len(got) != 3 {
		t.Errorf("Lexica(state) = %v, want country, province, state", got)
	}
}

func TestNewSkipsDegenerateGroups(t *testing.T) {
	lx := New([][]string{
		{"solo"},
		{"", "  "},
		{"dup", "dup"},
		{"a", "b"},
	})
	if lx.Len() != 1 {
		t.Errorf("Len = %d, want 1 (only the a/b group)", lx.Len())
	}
}

func TestDefaultCoversPaperExamples(t *testing.T) {
	lx := Default()
	// Paper's example: wife/husband verbalize spouse.
	spouse := lx.Lexica("wife")
	found := false
	for _, w := range spouse {
		if w == "spouse" {
			found = true
		}
	}
	if !found {
		t.Errorf("wife does not verbalize spouse: %v", spouse)
	}
	// User-study relations must be present.
	for _, term := range []string{"alma mater", "population", "capital", "starring", "budget"} {
		if !lx.Contains(term) {
			t.Errorf("default lexicon missing %q", term)
		}
	}
}
