package analysis

import (
	"go/ast"
	"go/types"
)

// PinnedBudget enforces the PR 8 serialization rule
// (internal/sparql/eval.go Options.Budget, internal/sparql/parallel.go
// serializedBudget, docs/ARCHITECTURE.md "Parallel evaluation"): with
// Options.Workers > 1 the Budget callback is charged from several
// worker goroutines, so the documented contract — "the evaluator
// serializes the calls, so the callback itself needs no locking" —
// only holds if every evaluation path obtains the budget through the
// Options accessor that wraps it in the serializing mutex. A direct
// read of the raw Budget field anywhere else hands workers the
// unserialized callback.
//
// Mechanically: a selector expression reading the Budget field of an
// evaluation-options struct (a named struct type `Options` with a
// func-typed `Budget` field and a `Workers` field) is flagged unless
// it appears inside a method declared on Options itself — the
// mutex-guarded accessor and any future siblings. Constructing an
// Options value (composite literals, which set rather than read the
// field) is fine from anywhere.
var PinnedBudget = &Analyzer{
	Name: "pinnedbudget",
	Doc:  "Options.Budget may only be read through the serializing Options accessor",
	Run:  runPinnedBudget,
}

// isEvalOptions recognizes the evaluator's Options struct by shape, so
// the check works on both sapphire/internal/sparql and the golden-test
// fixtures without hard-coding an import path: named "Options", with a
// func-typed field "Budget" and a field "Workers".
func isEvalOptions(n *types.Named) bool {
	if n == nil || n.Obj().Name() != "Options" {
		return false
	}
	st, ok := n.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	var budget, workers bool
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		switch f.Name() {
		case "Budget":
			_, isFunc := f.Type().Underlying().(*types.Signature)
			budget = isFunc
		case "Workers":
			workers = true
		}
	}
	return budget && workers
}

func runPinnedBudget(pass *Pass) error {
	info := pass.TypesInfo

	// enclosingOptionsMethod positions: compute per file the ranges of
	// methods declared on an Options type.
	type span struct{ lo, hi int }
	var optionsMethods []span
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			obj, _ := info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			if isEvalOptions(recvNamed(obj)) {
				optionsMethods = append(optionsMethods, span{int(fd.Pos()), int(fd.End())})
			}
		}
	}
	inOptionsMethod := func(pos int) bool {
		for _, s := range optionsMethods {
			if pos >= s.lo && pos < s.hi {
				return true
			}
		}
		return false
	}

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Budget" {
				return true
			}
			f := fieldOf(info, sel)
			if f == nil {
				return true
			}
			owner, _ := named(info.TypeOf(sel.X))
			if !isEvalOptions(owner) {
				return true
			}
			if inOptionsMethod(int(sel.Pos())) {
				return true
			}
			pass.Reportf(sel.Sel.Pos(),
				"direct Options.Budget read outside an Options method: with Workers > 1 the budget must be serialized first — go through the budgetFor accessor (internal/sparql/parallel.go, ARCHITECTURE.md \"Parallel evaluation\")")
			return true
		})
	}
	return nil
}
