package endpoint

import (
	"context"
	"fmt"
	"math/rand"
	"sync"

	"sapphire/internal/sparql"
)

// Flaky wraps an endpoint with injected failures, for testing the
// resilience that Sapphire's initialization and relaxation require of
// themselves: public SPARQL endpoints drop queries, rate-limit, and time
// out unpredictably, and the paper's design (pagination, hierarchy
// descent, expansion budgets) exists precisely to survive that.
//
// Failures are deterministic given the seed, so tests reproduce.
type Flaky struct {
	Inner Endpoint
	// TimeoutEvery injects ErrTimeout on every Nth query (0 disables).
	TimeoutEvery int
	// RejectEvery injects ErrRejected on every Nth query (0 disables).
	RejectEvery int
	// FailProb injects timeouts at random with this probability, driven
	// by Seed.
	FailProb float64
	Seed     int64

	mu    sync.Mutex
	n     int
	rng   *rand.Rand
	fails int
}

// NewFlaky wraps inner with deterministic failure injection.
func NewFlaky(inner Endpoint, timeoutEvery int, failProb float64, seed int64) *Flaky {
	return &Flaky{Inner: inner, TimeoutEvery: timeoutEvery, FailProb: failProb, Seed: seed}
}

// Name implements Endpoint.
func (f *Flaky) Name() string { return f.Inner.Name() + " (flaky)" }

// Failures returns how many queries were failed by injection.
func (f *Flaky) Failures() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fails
}

// Query implements Endpoint.
func (f *Flaky) Query(ctx context.Context, query string) (*sparql.Results, error) {
	f.mu.Lock()
	f.n++
	n := f.n
	if f.rng == nil {
		f.rng = rand.New(rand.NewSource(f.Seed))
	}
	roll := f.rng.Float64()
	f.mu.Unlock()

	if f.TimeoutEvery > 0 && n%f.TimeoutEvery == 0 {
		f.countFail()
		return nil, fmt.Errorf("flaky %s: injected: %w", f.Inner.Name(), ErrTimeout)
	}
	if f.RejectEvery > 0 && n%f.RejectEvery == 0 {
		f.countFail()
		return nil, fmt.Errorf("flaky %s: injected: %w", f.Inner.Name(), ErrRejected)
	}
	if f.FailProb > 0 && roll < f.FailProb {
		f.countFail()
		return nil, fmt.Errorf("flaky %s: injected: %w", f.Inner.Name(), ErrTimeout)
	}
	return f.Inner.Query(ctx, query)
}

func (f *Flaky) countFail() {
	f.mu.Lock()
	f.fails++
	f.mu.Unlock()
}
