// Package store implements the in-memory triple store that backs Sapphire's
// simulated SPARQL endpoints. It maintains SPO, POS, and OSP hash indexes
// so that every triple-pattern shape resolves through an index rather than
// a full scan, and exposes the dataset statistics (predicate frequencies,
// literal counts, incoming-edge counts) that the paper's initialization
// queries (Appendix A, Q1–Q10) aggregate over.
//
// # Dictionary encoding
//
// Terms are interned into a two-way dictionary (see dict.go): each
// distinct rdf.Term maps to a dense uint32 ID, and all three indexes are
// nested map[uint32]map[uint32][]uint32 over IDs rather than maps keyed by
// the 4-field Term struct. The dedup set is map[[3]uint32]struct{}. This
// shrinks the per-triple footprint, turns every index probe into an
// integer hash, and makes triple materialization a slice lookup.
//
// Deterministic wildcard iteration used to re-sort the key set of a map on
// every Match/Count call; the ID indexes instead maintain their key slices
// incrementally sorted (insertion-sorted on Add, the cold path), so a
// wildcard walk is an amortized O(1)-per-result sweep with no per-call
// sort.
//
// # ID-level API contract
//
// Hot consumers (the SPARQL evaluator's join loop, the endpoint cost
// model) can stay in ID space and skip Term hashing and materialization
// entirely:
//
//	id, ok := st.Lookup(term)          // term → ID, no interning
//	term := st.ResolveID(id)           // ID → term, O(1), lock-free
//	st.MatchIDs(s, p, o, fn)           // pattern match over IDs
//	st.CountIDs(s, p, o)               // exact count, O(1) for all shapes
//	st.CardinalityEstimateIDs(s, p, o) // same, for cost models
//
// The contract every consumer (and every future index) must respect:
//
//   - Wildcard == 0. The zero ID is never assigned to a term; MatchIDs
//     and CountIDs treat it the way Match treats a zero rdf.Term. A
//     lookup that fails must not be conflated with a wildcard.
//   - IDs are dense and append-only: assigned from 1 upward in
//     first-seen order, never reused, never remapped. An ID observed
//     once remains valid for the life of the store, so IDs can be
//     cached across queries. The converse does not hold: an ID (and a
//     successful Lookup) may exist for a term whose triples are still
//     staged in a BulkLoader, or were never committed at all — pattern
//     matches and counts for such a term are simply empty.
//   - Match/MatchIDs callbacks run under the store's read lock. They
//     must not mutate the store and must not call locking accessors
//     (Lookup, Count, ...); once a writer queues on the RWMutex, a
//     nested RLock deadlocks. ResolveID is the exception: it reads an
//     atomic snapshot of the append-only ID→term slice and never takes
//     the lock, precisely so callbacks can resolve terms mid-iteration.
//
// # Bulk loading
//
// Add keeps the sorted-key invariant with a binary-search insertion —
// an O(n) memmove per new key, fine online, quadratic-ish for loading
// datasets. BulkLoader (bulk.go) is the staged path: Add/AddAll intern
// and buffer packed ID triples, Commit builds all three indexes for the
// batch grouped by key and sorts each touched key slice exactly once.
// Commit holds the write lock for the whole build, so concurrent
// readers never observe a partially built index; Store.AddAll routes
// through it automatically.
package store
