package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PinLock enforces the deadlock rule of internal/store/doc.go
// ("ID-level API contract") and docs/ARCHITECTURE.md ("PinRead"):
// Match/MatchIDs callbacks run under shard read locks, and code holding
// a PinRead pin already owns every shard's read lock — neither may call
// a store or dictionary method that acquires locks again, because the
// moment a writer queues on the RWMutex a nested RLock deadlocks.
// ResolveID is the designed exception (lock-free by construction), so
// it is not in the banned set.
//
// The check is intraprocedural plus one package-local closure: a banned
// call is flagged when it appears (a) lexically inside a function
// literal passed as the callback of a Match/MatchIDs/MatchIDsPinned/
// ScanMorselsPinned call on a store-like receiver, (b) in a function
// after a PinRead call whose release has not yet run (a deferred
// release pins the rest of the function), or (c) behind a call to a
// same-package function that transitively commits (a) or (b)'s sin.
// Cross-package reachability is out of scope — the store's exported
// surface is the boundary the rule is written against.
var PinLock = &Analyzer{
	Name: "pinlock",
	Doc:  "flag lock-acquiring store/dict calls inside Match callbacks or under a PinRead pin",
	Run:  runPinLock,
}

// bannedLockMethods are the store.Store / dictionary methods that
// acquire shard or dictionary-shard locks (internal/store/doc.go bans
// "locking accessors (Lookup, Count, ...)" — this is the closed list).
// PinRead itself is included: re-pinning under a pin re-acquires every
// shard RLock.
var bannedLockMethods = map[string]bool{
	"Lookup":                 true,
	"Match":                  true,
	"MatchIDs":               true,
	"MatchSlice":             true,
	"Add":                    true,
	"AddAll":                 true,
	"MustAdd":                true,
	"Intern":                 true,
	"Contains":               true,
	"Len":                    true,
	"Count":                  true,
	"CountIDs":               true,
	"CardinalityEstimate":    true,
	"CardinalityEstimateIDs": true,
	"Subjects":               true,
	"Predicates":             true,
	"PinRead":                true,
}

// callbackEntryMethods start a region whose callback argument runs
// under shard read locks. The unpinned names only count on a receiver
// from a package named "store" (remote Graph adapters run their Match
// callbacks lock-free); the pinned names are unambiguous anywhere, as
// is any receiver whose method set includes PinRead.
var callbackEntryMethods = map[string]bool{
	"Match":             true,
	"MatchIDs":          true,
	"MatchIDsPinned":    true,
	"ScanMorselsPinned": true,
}

func isStoreLike(f *types.Func) bool {
	if n := recvNamed(f); n != nil {
		if pkgLastSegment(n.Obj().Pkg()) == "store" {
			return true
		}
		return hasMethod(n, "PinRead")
	}
	// Interface methods resolve through Selections to the interface's
	// *types.Func whose receiver is the interface type itself; fall
	// back to the declaring package.
	return pkgLastSegment(f.Pkg()) == "store"
}

// isBannedCall reports whether call statically invokes a banned locking
// method on a store-like receiver.
func isBannedCall(info *types.Info, call *ast.CallExpr) (*types.Func, bool) {
	f := calleeFunc(info, call)
	if f == nil || !bannedLockMethods[f.Name()] {
		return nil, false
	}
	if recvNamed(f) == nil && f.Type().(*types.Signature).Recv() == nil {
		return nil, false // plain function that happens to share a name
	}
	if !isStoreLike(f) {
		return nil, false
	}
	return f, true
}

// isCallbackEntry reports whether call is a Match-family call whose
// func-literal argument (if any) will run under shard read locks.
func isCallbackEntry(info *types.Info, call *ast.CallExpr) bool {
	f := calleeFunc(info, call)
	if f == nil || !callbackEntryMethods[f.Name()] {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	switch f.Name() {
	case "MatchIDsPinned", "ScanMorselsPinned":
		return true
	default:
		return isStoreLike(f)
	}
}

// fnSummary is the package-local call-graph node used for the
// transitive closure: the banned calls a function makes directly, and
// the same-package functions it calls.
type fnSummary struct {
	banned []*ast.CallExpr
	calls  []*types.Func
}

func runPinLock(pass *Pass) error {
	info := pass.TypesInfo

	// Pass 1: summarize every declared function in the package.
	summaries := map[*types.Func]*fnSummary{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			sum := &fnSummary{}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if _, bad := isBannedCall(info, call); bad {
					sum.banned = append(sum.banned, call)
				} else if f := calleeFunc(info, call); f != nil && f.Pkg() == pass.Pkg {
					sum.calls = append(sum.calls, f)
				}
				return true
			})
			summaries[obj] = sum
		}
	}

	// reach reports a banned call transitively reachable from f, with
	// the function that makes it (for the diagnostic message).
	type reached struct {
		call *ast.CallExpr
		via  *types.Func
	}
	memo := map[*types.Func]*reached{}
	var visiting map[*types.Func]bool
	var reach func(f *types.Func) *reached
	reach = func(f *types.Func) *reached {
		if r, ok := memo[f]; ok {
			return r
		}
		if visiting[f] {
			return nil
		}
		visiting[f] = true
		defer delete(visiting, f)
		sum := summaries[f]
		if sum == nil {
			memo[f] = nil
			return nil
		}
		if len(sum.banned) > 0 {
			r := &reached{call: sum.banned[0], via: f}
			memo[f] = r
			return r
		}
		for _, callee := range sum.calls {
			if r := reach(callee); r != nil {
				memo[f] = r
				return r
			}
		}
		memo[f] = nil
		return nil
	}
	visiting = map[*types.Func]bool{}

	// checkRegion flags banned calls (direct or via a package-local
	// callee) inside one locked region. skipNested avoids doubly
	// reporting calls that sit inside a nested callback literal — the
	// nested literal forms its own region and is checked separately.
	checkRegion := func(body ast.Node, context string, after token.Pos, until token.Pos) {
		ast.Inspect(body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if call.Pos() < after || (until != token.NoPos && call.Pos() >= until) {
				return true
			}
			if f, bad := isBannedCall(info, call); bad {
				pass.Reportf(call.Pos(),
					"(%s).%s acquires store/dict locks %s; a nested lock deadlocks once a writer queues — use ResolveID or hoist the call (internal/store/doc.go \"ID-level API contract\")",
					typeString(f), f.Name(), context)
				return true
			}
			if f := calleeFunc(info, call); f != nil && f.Pkg() == pass.Pkg {
				if r := reach(f); r != nil {
					bf, _ := isBannedCall(info, r.call)
					pass.Reportf(call.Pos(),
						"call to %s %s eventually acquires store/dict locks (via %s calling (%s).%s at %s) — internal/store/doc.go \"ID-level API contract\"",
						f.Name(), context, r.via.Name(), typeString(bf), bf.Name(),
						pass.Fset.Position(r.call.Pos()))
				}
			}
			return true
		})
	}

	for _, file := range pass.Files {
		// Rule (a): callback literals of Match-family calls.
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isCallbackEntry(info, call) {
				return true
			}
			name := calleeFunc(info, call).Name()
			for _, arg := range call.Args {
				if lit, ok := arg.(*ast.FuncLit); ok {
					checkRegion(lit.Body, "inside a "+name+" callback", token.NoPos, token.NoPos)
				}
			}
			return true
		})

		// Rule (b): statements between a PinRead call and its release.
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkPinRegions(pass, fd.Body, checkRegion)
		}
	}
	return nil
}

// checkPinRegions finds `rel := x.PinRead()` inside body and flags
// banned calls between it and a plain (non-deferred) `rel()` call; with
// no release call — or only a deferred one — the region runs to the end
// of the function.
func checkPinRegions(pass *Pass, body *ast.BlockStmt, checkRegion func(ast.Node, string, token.Pos, token.Pos)) {
	info := pass.TypesInfo
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		f := calleeFunc(info, call)
		if f == nil || f.Name() != "PinRead" || !isStoreLike(f) {
			return true
		}
		var relObj types.Object
		if len(as.Lhs) == 1 {
			if id, ok := as.Lhs[0].(*ast.Ident); ok {
				relObj = info.Defs[id]
				if relObj == nil {
					relObj = info.Uses[id]
				}
			}
		}
		until := token.NoPos
		if relObj != nil {
			ast.Inspect(body, func(m ast.Node) bool {
				if until != token.NoPos {
					return false
				}
				if _, isDefer := m.(*ast.DeferStmt); isDefer {
					return false // defer rel() pins the rest of the function
				}
				es, ok := m.(*ast.ExprStmt)
				if !ok {
					return true
				}
				rc, ok := ast.Unparen(es.X).(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := ast.Unparen(rc.Fun).(*ast.Ident); ok && info.Uses[id] == relObj && rc.Pos() > call.End() {
					until = rc.Pos()
				}
				return true
			})
		}
		checkRegion(body, "while holding a PinRead pin", call.End(), until)
		return true
	})
}

// typeString renders a method's receiver type compactly for messages.
func typeString(f *types.Func) string {
	sig := f.Type().(*types.Signature)
	if sig.Recv() == nil {
		return f.Pkg().Name()
	}
	t := sig.Recv().Type()
	if n, ok := named(t); ok {
		return n.Obj().Pkg().Name() + "." + n.Obj().Name()
	}
	return t.String()
}
