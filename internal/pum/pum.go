// Package pum implements the Predictive User Model, the core
// contribution of the paper (Section 6): the Query Completion Module
// (QCM, Section 6.1 / Figure 5) that autocompletes query terms from the
// cached endpoint data, and the Query Suggestion Module (QSM, Section
// 6.2) that proposes alternative query terms (Algorithm 2) and relaxed
// query structures (Algorithm 3) after a query executes, prefetching
// their answers so accepting a suggestion feels instantaneous.
package pum

import (
	"context"

	"sapphire/internal/bootstrap"
	"sapphire/internal/federation"
	"sapphire/internal/lexicon"
	"sapphire/internal/similarity"
	"sapphire/internal/sparql"
	"sapphire/internal/steiner"
)

// Config carries the paper's tunables, with defaults from Sections 5–6.
type Config struct {
	// K is the number of suggestions to return (paper: k = 10).
	K int
	// Gamma bounds completion candidates to length |t|..|t|+Gamma
	// (paper: γ = 10).
	Gamma int
	// Theta is the similarity threshold for alternatives (paper: 0.7).
	Theta float64
	// Alpha and Beta bound the literal-alternative search to lengths
	// [|l|−Alpha, |l|+Beta] (paper: α = 2, β = 3).
	Alpha, Beta int
	// Workers is P, the parallel scan width (paper: number of cores).
	Workers int
	// Measure scores term similarity; nil means Jaro-Winkler, the
	// paper's choice. Swappable for the ablation experiments.
	Measure similarity.Measure
	// Relax configures the Steiner-tree structure relaxation.
	Relax steiner.Config
	// MaxCandidates caps how many alternative queries are executed for
	// prefetching per direction (predicates / literals).
	MaxCandidates int
}

// DefaultConfig returns the parameters used throughout the paper.
func DefaultConfig() Config {
	return Config{
		K:             10,
		Gamma:         10,
		Theta:         0.7,
		Alpha:         2,
		Beta:          3,
		Workers:       8,
		Measure:       similarity.JaroWinkler,
		Relax:         steiner.DefaultConfig(),
		MaxCandidates: 20,
	}
}

// PUM binds the cached endpoint data, the lexicon, and the federated
// query processor into the interactive model.
type PUM struct {
	cache *bootstrap.Cache
	fed   *federation.Federation
	lex   *lexicon.Lexicon
	cfg   Config
}

// New assembles a PUM. A nil lexicon falls back to the built-in one; a
// zero-value config is replaced by DefaultConfig.
func New(cache *bootstrap.Cache, fed *federation.Federation, lex *lexicon.Lexicon, cfg Config) *PUM {
	if lex == nil {
		lex = lexicon.Default()
	}
	if cfg.K == 0 {
		cfg = DefaultConfig()
	}
	if cfg.Measure == nil {
		cfg.Measure = similarity.JaroWinkler
	}
	return &PUM{cache: cache, fed: fed, lex: lex, cfg: cfg}
}

// Cache exposes the underlying endpoint cache (for experiments).
func (p *PUM) Cache() *bootstrap.Cache { return p.cache }

// Execute runs a parsed query through the federated query processor, the
// same path the Sapphire server uses when the user clicks "Run".
func (p *PUM) Execute(ctx context.Context, q *sparql.Query) (*sparql.Results, error) {
	return p.fed.Eval(ctx, q)
}

// Config returns the active configuration.
func (p *PUM) Config() Config { return p.cfg }
