package bootstrap

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"sapphire/internal/bins"
	"sapphire/internal/rdf"
	"sapphire/internal/suffixtree"
)

// The paper's initialization "happens only once for each endpoint" (17
// hours for DBpedia), which only makes sense if the cache outlives the
// server process. Save/Load serialize the cached data — predicates,
// literals, and which strings are tree-resident — as JSON; the suffix
// tree and bins are rebuilt on load (construction is linear and fast
// compared to re-crawling the endpoint).

// cacheFile is the on-disk representation.
type cacheFile struct {
	Version    int         `json:"version"`
	Endpoint   string      `json:"endpoint"`
	Predicates []savedTerm `json:"predicates"`
	Literals   []savedLit  `json:"literals"`
	Stats      Stats       `json:"stats"`
}

type savedTerm struct {
	IRI string `json:"iri"`
}

type savedLit struct {
	Value  string `json:"value"`
	Lang   string `json:"lang,omitempty"`
	Dtype  string `json:"datatype,omitempty"`
	InTree bool   `json:"inTree,omitempty"`
}

const cacheFileVersion = 1

// Save writes the cache to w.
func (c *Cache) Save(w io.Writer) error {
	cf := cacheFile{
		Version:  cacheFileVersion,
		Endpoint: c.Endpoint,
		Stats:    c.Stats,
	}
	for _, p := range c.Predicates {
		cf.Predicates = append(cf.Predicates, savedTerm{IRI: p.Value})
	}
	lexes := make([]string, 0, len(c.literalTerm))
	for lex := range c.literalTerm {
		lexes = append(lexes, lex)
	}
	sort.Strings(lexes)
	for _, lex := range lexes {
		t := c.literalTerm[lex]
		cf.Literals = append(cf.Literals, savedLit{
			Value:  t.Value,
			Lang:   t.Lang,
			Dtype:  t.Datatype,
			InTree: c.inTree[lex],
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(cf)
}

// Load reads a cache previously written by Save and rebuilds the
// indexes.
func Load(r io.Reader) (*Cache, error) {
	var cf cacheFile
	if err := json.NewDecoder(r).Decode(&cf); err != nil {
		return nil, fmt.Errorf("bootstrap: loading cache: %w", err)
	}
	if cf.Version != cacheFileVersion {
		return nil, fmt.Errorf("bootstrap: unsupported cache version %d", cf.Version)
	}
	c := &Cache{
		Endpoint:      cf.Endpoint,
		Stats:         cf.Stats,
		displayToPred: make(map[string][]rdf.Term),
		literalTerm:   make(map[string]rdf.Term),
		inTree:        make(map[string]bool),
	}
	var treeStrings []string
	for _, st := range cf.Predicates {
		p := rdf.NewIRI(st.IRI)
		c.Predicates = append(c.Predicates, p)
		d := DisplayName(p)
		if len(c.displayToPred[d]) == 0 {
			treeStrings = append(treeStrings, d)
		}
		c.displayToPred[d] = append(c.displayToPred[d], p)
		c.inTree[d] = true
	}
	var residual []string
	for _, sl := range cf.Literals {
		t := rdf.Term{Kind: rdf.KindLiteral, Value: sl.Value, Lang: sl.Lang, Datatype: sl.Dtype}
		c.literalTerm[sl.Value] = t
		if sl.InTree {
			c.inTree[sl.Value] = true
			treeStrings = append(treeStrings, sl.Value)
		} else {
			residual = append(residual, sl.Value)
		}
	}
	c.Tree = suffixtree.New(treeStrings)
	sort.Strings(residual)
	c.Bins = bins.New(residual)
	c.Stats.TreeNodes = c.Tree.NodeCount()
	c.Stats.TreeBytes = c.Tree.ApproxBytes()
	c.Stats.ResidualCount = c.Bins.Len()
	c.Stats.BinCount = c.Bins.BinCount()
	return c, nil
}
