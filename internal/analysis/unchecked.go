package analysis

import (
	"go/ast"
	"go/types"
)

// Unchecked is the errcheck-style audit for the durability path
// (internal/store/persist): a Close or Sync whose error result is
// discarded swallows the very failure the WAL/snapshot machinery
// exists to surface — an fsync error that nobody sees is a silent
// durability hole (docs/ARCHITECTURE.md "Durability"). The analyzer
// flags statement-position calls (including defer and go) to methods
// named Close or Sync that return an error nobody reads.
//
// An explicit `_ = f.Close()` is not flagged: it is the visible,
// greppable acknowledgement that the error is being dropped on
// purpose, the same role //sapphire:allow plays for the other
// analyzers. sapphire-vet scopes this analyzer to durability-critical
// packages — applied repo-wide it would drown in the idiomatic
// deferred body.Close() of HTTP clients.
var Unchecked = &Analyzer{
	Name: "unchecked",
	Doc:  "Close/Sync error results on the durability path must be read",
	Run:  runUnchecked,
}

func runUnchecked(pass *Pass) error {
	info := pass.TypesInfo

	check := func(call *ast.CallExpr, how string) {
		f := calleeFunc(info, call)
		if f == nil {
			return
		}
		switch f.Name() {
		case "Close", "Sync", "close", "sync":
			// The unexported spellings matter here too: the WAL's
			// close/sync wrappers are exactly the calls whose errors
			// must not vanish.
		default:
			return
		}
		sig, ok := f.Type().(*types.Signature)
		if !ok || sig.Results().Len() == 0 {
			return
		}
		errType := types.Universe.Lookup("error").Type()
		returnsErr := false
		for i := 0; i < sig.Results().Len(); i++ {
			if types.Identical(sig.Results().At(i).Type(), errType) {
				returnsErr = true
			}
		}
		if !returnsErr {
			return
		}
		pass.Reportf(call.Pos(),
			"%s error %s: a swallowed %s failure is a silent durability hole — check it, fold it into the return, or `_ =` it deliberately (ARCHITECTURE.md \"Durability\")",
			f.Name(), how, f.Name())
	}

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
					check(call, "discarded")
				}
			case *ast.DeferStmt:
				check(n.Call, "discarded by defer")
			case *ast.GoStmt:
				check(n.Call, "discarded by go")
			}
			return true
		})
	}
	return nil
}
