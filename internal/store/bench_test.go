package store

import (
	"fmt"
	"runtime"
	"testing"

	"sapphire/internal/rdf"
)

func benchStore(n int) *Store {
	s := New()
	p := rdf.NewIRI("http://x/p")
	typ := rdf.NewIRI(rdf.RDFType)
	cls := rdf.NewIRI("http://x/C")
	for i := 0; i < n; i++ {
		subj := rdf.NewIRI(fmt.Sprintf("http://x/s%d", i))
		s.MustAdd(rdf.NewTriple(subj, typ, cls))
		s.MustAdd(rdf.NewTriple(subj, p, rdf.NewLiteral(fmt.Sprintf("value %d", i))))
	}
	return s
}

// BenchmarkMatchByPredicate measures the POS index sweep.
func BenchmarkMatchByPredicate(b *testing.B) {
	s := benchStore(5000)
	p := rdf.NewIRI("http://x/p")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		s.Match(rdf.Term{}, p, rdf.Term{}, func(rdf.Triple) bool { n++; return true })
	}
}

// BenchmarkMatchBySubject measures the SPO point lookup.
func BenchmarkMatchBySubject(b *testing.B) {
	s := benchStore(5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		subj := rdf.NewIRI(fmt.Sprintf("http://x/s%d", i%5000))
		s.MatchSlice(subj, rdf.Term{}, rdf.Term{})
	}
}

// BenchmarkMatchWildcardPredicate measures the shape that used to re-sort
// map keys on every call: predicate wildcard with a bound object, i.e.
// (?s ?p <o>), walking the OSP index across all subjects pointing at one
// hub object. With incrementally sorted key slices this is a flat sweep.
func BenchmarkMatchWildcardPredicate(b *testing.B) {
	s := New()
	hub := rdf.NewIRI("http://x/hub")
	p := rdf.NewIRI("http://x/p")
	for i := 0; i < 5000; i++ {
		s.MustAdd(rdf.NewTriple(rdf.NewIRI(fmt.Sprintf("http://x/s%d", i)), p, hub))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		s.Match(rdf.Term{}, rdf.Term{}, hub, func(rdf.Triple) bool { n++; return true })
		if n != 5000 {
			b.Fatalf("matched %d", n)
		}
	}
}

// BenchmarkMatchIDsWildcardPredicate is the same sweep staying in ID
// space, skipping triple materialization entirely.
func BenchmarkMatchIDsWildcardPredicate(b *testing.B) {
	s := New()
	hub := rdf.NewIRI("http://x/hub")
	p := rdf.NewIRI("http://x/p")
	for i := 0; i < 5000; i++ {
		s.MustAdd(rdf.NewTriple(rdf.NewIRI(fmt.Sprintf("http://x/s%d", i)), p, hub))
	}
	hubID, ok := s.Lookup(hub)
	if !ok {
		b.Fatal("hub not interned")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		s.MatchIDs(Wildcard, Wildcard, hubID, func(ID, ID, ID) bool { n++; return true })
		if n != 5000 {
			b.Fatalf("matched %d", n)
		}
	}
}

// BenchmarkStoreMemoryFootprint reports the steady-state heap cost per
// stored triple, tracking the dictionary encoding's memory win.
func BenchmarkStoreMemoryFootprint(b *testing.B) {
	const n = 50000
	var before, after runtime.MemStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runtime.GC()
		runtime.ReadMemStats(&before)
		s := benchStore(n / 2) // two triples per subject
		runtime.GC()
		runtime.ReadMemStats(&after)
		if s.Len() != n {
			b.Fatalf("store has %d triples", s.Len())
		}
		b.ReportMetric(float64(after.HeapAlloc-before.HeapAlloc)/float64(n), "bytes/triple")
		runtime.KeepAlive(s)
	}
}

// benchTriples builds n distinct triples across n/2 subjects, the shape
// that stresses level-one key-slice maintenance hardest.
func benchTriples(n int) []rdf.Triple {
	p := rdf.NewIRI("http://x/p")
	typ := rdf.NewIRI(rdf.RDFType)
	cls := rdf.NewIRI("http://x/C")
	out := make([]rdf.Triple, 0, n)
	for i := 0; i < n/2; i++ {
		subj := rdf.NewIRI(fmt.Sprintf("http://x/s%d", i))
		out = append(out, rdf.NewTriple(subj, typ, cls))
		out = append(out, rdf.NewTriple(subj, p, rdf.NewLiteral(fmt.Sprintf("value %d", i))))
	}
	return out
}

// BenchmarkBulkLoad measures the staged path at 100k triples: intern +
// buffer, then one Commit that sorts each key slice once.
func BenchmarkBulkLoad(b *testing.B) {
	triples := benchTriples(100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New()
		l := NewBulkLoader(s)
		if err := l.AddAll(triples); err != nil {
			b.Fatal(err)
		}
		if l.Commit() != len(triples) {
			b.Fatal("short commit")
		}
	}
}

// BenchmarkAddAll measures Store.AddAll at 100k triples (routed through
// the bulk path).
func BenchmarkAddAll(b *testing.B) {
	triples := benchTriples(100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New()
		if err := s.AddAll(triples); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSequentialAdd is the incremental path at the same scale: one
// Add per triple, each new key insertion-sorted with an O(n) memmove.
// The BulkLoad/SequentialAdd ratio is the ROADMAP bulk-ingestion row.
func BenchmarkSequentialAdd(b *testing.B) {
	triples := benchTriples(100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New()
		for _, tr := range triples {
			if _, err := s.Add(tr); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkAdd measures insert throughput with index maintenance.
func BenchmarkAdd(b *testing.B) {
	s := New()
	p := rdf.NewIRI("http://x/p")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		subj := rdf.NewIRI(fmt.Sprintf("http://x/s%d", i))
		if _, err := s.Add(rdf.NewTriple(subj, p, rdf.NewLiteral(fmt.Sprint(i)))); err != nil {
			b.Fatal(err)
		}
	}
}
