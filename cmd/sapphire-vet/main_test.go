package main

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestInjectedViolationFailsGate is the acceptance check that CI fails
// on an injected violation: testdata/injected is a stand-alone module
// whose only package calls a lock-acquiring accessor from inside a
// MatchIDs callback. Running the same entry point `make lint` uses must
// exit nonzero and name the pinlock contract.
func TestInjectedViolationFailsGate(t *testing.T) {
	t.Chdir(filepath.Join("testdata", "injected"))
	var stdout, stderr strings.Builder
	code := run([]string{"-novet", "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "pinlock") {
		t.Errorf("diagnostic does not name the pinlock analyzer:\n%s", out)
	}
	if !strings.Contains(out, "injected.go") || !strings.Contains(out, "Lookup") {
		t.Errorf("diagnostic does not point at the injected Lookup call:\n%s", out)
	}
}

// TestCleanModulePassesGate is the control: a module with no violations
// exits zero.
func TestCleanModulePassesGate(t *testing.T) {
	t.Chdir(filepath.Join("testdata", "clean"))
	var stdout, stderr strings.Builder
	if code := run([]string{"-novet", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
}

// TestListFlag pins the roster: all five analyzers are wired in.
func TestListFlag(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	for _, name := range []string{"pinlock", "atomicfield", "errcode", "pinnedbudget", "unchecked"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, stdout.String())
		}
	}
}
