package sparql

import (
	"encoding/binary"
	"sort"

	"sapphire/internal/rdf"
)

// ReentrantGraph is an optional IDGraph extension for stores whose
// MatchIDs callbacks run under the store's own read locks and therefore
// must not re-enter the graph. The streaming pipeline's depth-first join
// issues the next level's scan from inside the current level's callback,
// so for such stores it pins the read locks once for the whole
// evaluation and scans through the pinned variant throughout. Lock-free
// methods (ResolveID) and independently locked ones (Lookup, which takes
// dictionary locks, not store shard locks) remain callable while pinned.
type ReentrantGraph interface {
	IDGraph
	// PinRead acquires the graph's read locks until release is called.
	PinRead() (release func())
	// MatchIDsPinned is MatchIDs under a PinRead session: it takes no
	// locks and may be called from inside its own callbacks.
	MatchIDsPinned(s, p, o uint32, fn func(s, p, o uint32) bool)
}

// OrderedGraph is an optional IDGraph extension for stores that maintain
// per-ID order labels (the store's rank table): label order equals term
// order for labeled IDs, 0 means unlabeled. exact reports whether label
// order equals the evaluator's ORDER BY comparator order for every pair
// of terms in the graph — false as soon as any literal parses as a
// number, since SPARQL orders those by numeric value, not term order.
// The top-k ORDER BY operator compares labels instead of terms when
// exact is true, resolving terms only for the k surviving rows.
type OrderedGraph interface {
	IDGraph
	OrderLabels() (label func(id uint32) uint64, exact bool)
}

// sink is one operator of the streaming pipeline. Rows are uint32 ID
// slices indexed by the plan's slot table, with 0 = unbound. A pushed
// row is borrowed: it is only valid for the duration of the call, so
// operators that buffer rows (sort, top-k) copy them. push returns false
// to stop the upstream producer — either downstream has every row it
// needs (LIMIT early-exit) or the budget errored (exec.err is set).
// flush signals end-of-input so buffering operators can drain.
type sink interface {
	push(row []uint32) bool
	flush() bool
}

// exec is the shared state of one pipeline execution.
type exec struct {
	pl       *plan
	g        Graph
	ig       IDGraph                                            // non-nil: ID-level scans
	matchIDs func(s, p, o uint32, fn func(s, p, o uint32) bool) // MatchIDsPinned when pinned, else MatchIDs
	ld       *localDict                                         // non-nil: Term-level scans with query-local interning
	budget   Budget
	err      error

	fb Binding // reusable scratch for filter evaluation
}

// tick charges the budget for one intermediate row.
func (x *exec) tick() bool {
	if x.budget == nil {
		return true
	}
	if err := x.budget(); err != nil {
		x.err = err
		return false
	}
	return true
}

// resolveTerm materializes an ID back into a term.
func (x *exec) resolveTerm(id uint32) rdf.Term {
	if x.ig != nil {
		return x.ig.ResolveID(id)
	}
	return x.ld.terms[id]
}

// localDict gives graphs without an ID API (remote endpoints,
// federations) the same ID-space pipeline the store gets: terms interned
// on first sight per query, IDs dense from 1 (0 stays the unbound
// sentinel). Interning is injective, so ID equality is term equality —
// joins, DISTINCT and projection work unchanged.
type localDict struct {
	ids   map[rdf.Term]uint32
	terms []rdf.Term
}

func newLocalDict() *localDict {
	return &localDict{ids: make(map[rdf.Term]uint32, 64), terms: make([]rdf.Term, 1, 65)}
}

func (ld *localDict) intern(t rdf.Term) uint32 {
	if id, ok := ld.ids[t]; ok {
		return id
	}
	id := uint32(len(ld.terms))
	ld.ids[t] = id
	ld.terms = append(ld.terms, t)
	return id
}

// patPos is one compiled pattern position: a row slot for variables, or
// a constant (dictionary ID on the ID path, term on the Term path).
type patPos struct {
	slot int // variable: row column; -1 for constants
	id   uint32
	term rdf.Term
}

// value returns the ID to probe with: the bound slot value (0 = still
// unbound, i.e. wildcard) or the constant.
func (p patPos) value(row []uint32) uint32 {
	if p.slot >= 0 {
		return row[p.slot]
	}
	return p.id
}

type compiledPattern struct {
	s, p, o patPos
	ok      bool // ID path: every constant resolves in the dictionary
}

// compile prepares patterns for execution: constants are looked up in
// the dictionary once (an absent constant makes the pattern matchless),
// variables become row slots.
func (x *exec) compile(pats []Pattern) []compiledPattern {
	out := make([]compiledPattern, len(pats))
	for i, p := range pats {
		cp := compiledPattern{ok: true}
		cp.s = x.compilePos(p.S, &cp.ok)
		cp.p = x.compilePos(p.P, &cp.ok)
		cp.o = x.compilePos(p.O, &cp.ok)
		out[i] = cp
	}
	return out
}

func (x *exec) compilePos(n Node, ok *bool) patPos {
	if n.IsVar() {
		return patPos{slot: x.pl.slots[n.Var]}
	}
	pp := patPos{slot: -1, term: n.Term}
	if x.ig != nil {
		id, found := x.ig.Lookup(n.Term)
		if !found {
			*ok = false
		}
		pp.id = id
	}
	return pp
}

// scanPattern streams the pattern's matches for the current row as ID
// triples, charging the budget per match. Returns false when production
// stopped early (downstream satisfied, or budget error in x.err).
func (x *exec) scanPattern(cp compiledPattern, row []uint32, yield func(ms, mp, mo uint32) bool) bool {
	stopped := false
	if x.ig != nil {
		if !cp.ok {
			return true
		}
		x.matchIDs(cp.s.value(row), cp.p.value(row), cp.o.value(row), func(ms, mp, mo uint32) bool {
			if !x.tick() || !yield(ms, mp, mo) {
				stopped = true
				return false
			}
			return true
		})
		return !stopped
	}
	termOf := func(p patPos) rdf.Term {
		if p.slot < 0 {
			return p.term
		}
		return x.ld.terms[row[p.slot]]
	}
	x.g.Match(termOf(cp.s), termOf(cp.p), termOf(cp.o), func(tr rdf.Triple) bool {
		if !x.tick() || !yield(x.ld.intern(tr.S), x.ld.intern(tr.P), x.ld.intern(tr.O)) {
			stopped = true
			return false
		}
		return true
	})
	return !stopped
}

// levelBind records which row slots one join level binds: the pattern's
// variable positions that are still unbound when the level starts. It is
// computed once per level entry and shared between the serial DFS
// (runSeq) and the parallel workers, which replay the driving level's
// binding for each morsel triple — a single source of truth for the
// repeated-variable semantics.
type levelBind struct {
	su, pu, ou int // slots this level binds; -1 = constant or already bound
}

// bindSpec computes the level's unbound slots for the current row state.
func bindSpec(cp compiledPattern, row []uint32) levelBind {
	lb := levelBind{su: -1, pu: -1, ou: -1}
	if cp.s.slot >= 0 && row[cp.s.slot] == 0 {
		lb.su = cp.s.slot
	}
	if cp.p.slot >= 0 && row[cp.p.slot] == 0 {
		lb.pu = cp.p.slot
	}
	if cp.o.slot >= 0 && row[cp.o.slot] == 0 {
		lb.ou = cp.o.slot
	}
	return lb
}

// apply writes the match into the row's unbound slots, reporting false
// when a variable repeated within the pattern matched two different
// terms (the row is then untouched).
func (lb levelBind) apply(row []uint32, ms, mp, mo uint32) bool {
	if lb.su >= 0 && ((lb.su == lb.pu && ms != mp) || (lb.su == lb.ou && ms != mo)) {
		return false
	}
	if lb.pu >= 0 && lb.pu == lb.ou && mp != mo {
		return false
	}
	if lb.su >= 0 {
		row[lb.su] = ms
	}
	if lb.pu >= 0 {
		row[lb.pu] = mp
	}
	if lb.ou >= 0 {
		row[lb.ou] = mo
	}
	return true
}

// clear resets the slots apply bound, so sibling matches and later
// pattern groups see a clean row.
func (lb levelBind) clear(row []uint32) {
	if lb.su >= 0 {
		row[lb.su] = 0
	}
	if lb.pu >= 0 {
		row[lb.pu] = 0
	}
	if lb.ou >= 0 {
		row[lb.ou] = 0
	}
}

// runSeq joins pats[lvl:] into row depth-first — an index-nested-loop
// join with no per-level materialization — pushing each completed row to
// out. Level filters (single-group queries only) run the moment their
// level binds, dropping rows before deeper scans ever start. Slots bound
// at a level are reset to 0 on the way out, so sibling matches and later
// pattern groups see a clean row. Returns false when production must
// stop.
func (x *exec) runSeq(pats []compiledPattern, lfilters []*filterStage, lvl int, row []uint32, out sink) bool {
	if lvl == len(pats) {
		return out.push(row)
	}
	cp := pats[lvl]
	lb := bindSpec(cp, row)
	return x.scanPattern(cp, row, func(ms, mp, mo uint32) bool {
		if !lb.apply(row, ms, mp, mo) {
			return true
		}
		keep := true
		if lfilters != nil && lfilters[lvl] != nil {
			keep = x.applyFilterStage(lfilters[lvl], row)
		}
		ok := true
		if keep && x.err == nil {
			ok = x.runSeq(pats, lfilters, lvl+1, row, out)
		}
		lb.clear(row)
		return ok && x.err == nil
	})
}

// filterStage is a compiled batch of FILTER expressions sharing one
// pipeline position, with the variables they read pre-resolved to slots.
type filterStage struct {
	exprs []Expr
	vars  []filterVar
}

type filterVar struct {
	name string
	slot int // -1: the variable has no slot (bound nowhere)
}

func (x *exec) newFilterStage(exprs []Expr) *filterStage {
	if len(exprs) == 0 {
		return nil
	}
	set := make(map[string]bool)
	for _, f := range exprs {
		f.ExprVars(set)
	}
	st := &filterStage{exprs: exprs}
	for v := range set {
		slot, ok := x.pl.slots[v]
		if !ok {
			slot = -1
		}
		st.vars = append(st.vars, filterVar{name: v, slot: slot})
	}
	return st
}

// applyFilterStage reports whether the row survives the stage's filters,
// charging the budget once per row. Evaluation errors fail the filter
// for the row, not the query (SPARQL semantics); a budget error sets
// x.err. The scratch Binding holds only the variables the stage reads.
func (x *exec) applyFilterStage(st *filterStage, row []uint32) bool {
	if !x.tick() {
		return false
	}
	b := x.fb
	if b == nil {
		b = make(Binding, 4)
		x.fb = b
	}
	for k := range b {
		delete(b, k)
	}
	for _, fv := range st.vars {
		if fv.slot >= 0 && row[fv.slot] != 0 {
			b[fv.name] = x.resolveTerm(row[fv.slot])
		}
	}
	for _, f := range st.exprs {
		v, err := f.Eval(b)
		if err != nil {
			return false
		}
		bv, err := v.EffectiveBool()
		if err != nil || !bv {
			return false
		}
	}
	return true
}

// filterOp drops rows that fail its stage.
type filterOp struct {
	x    *exec
	st   *filterStage
	next sink
}

func (op *filterOp) push(row []uint32) bool {
	if !op.x.applyFilterStage(op.st, row) {
		return op.x.err == nil
	}
	return op.next.push(row)
}

func (op *filterOp) flush() bool { return op.next.flush() }

// leftJoinOp implements OPTIONAL: each incoming row is extended with
// every match of the block (bound into the same row buffer — the block's
// free slots are disjoint from the row's bound ones), or forwarded
// unextended when the block has no match.
type leftJoinOp struct {
	x       *exec
	pats    []compiledPattern
	next    sink
	matched bool
}

func (op *leftJoinOp) push(row []uint32) bool {
	op.matched = false
	if !op.x.runSeq(op.pats, nil, 0, row, matchSink{op}) {
		return false
	}
	if !op.matched {
		return op.next.push(row)
	}
	return true
}

func (op *leftJoinOp) flush() bool { return op.next.flush() }

// matchSink marks the enclosing left join matched and forwards.
type matchSink struct{ op *leftJoinOp }

func (m matchSink) push(row []uint32) bool {
	m.op.matched = true
	return m.op.next.push(row)
}

func (m matchSink) flush() bool { return true }

// projectOp narrows full solution rows to the projected columns.
type projectOp struct {
	slots []int // output column -> source slot, -1 = never bound
	buf   []uint32
	next  sink
}

func (op *projectOp) push(row []uint32) bool {
	for i, s := range op.slots {
		if s >= 0 {
			op.buf[i] = row[s]
		} else {
			op.buf[i] = 0
		}
	}
	return op.next.push(op.buf)
}

func (op *projectOp) flush() bool { return op.next.flush() }

// distinctOp deduplicates projected rows by their raw ID bytes — the
// dictionary is injective, so ID-row equality is term-row equality. This
// replaces the old post-hoc N-Triples string keys: 4 bytes per column
// and no term resolution for dropped duplicates.
type distinctOp struct {
	seen map[string]struct{}
	key  []byte
	next sink
}

func (op *distinctOp) push(row []uint32) bool {
	op.key = op.key[:0]
	for _, id := range row {
		op.key = binary.LittleEndian.AppendUint32(op.key, id)
	}
	if _, dup := op.seen[string(op.key)]; dup {
		return true
	}
	op.seen[string(op.key)] = struct{}{}
	return op.next.push(row)
}

func (op *distinctOp) flush() bool { return op.next.flush() }

// sliceOp implements OFFSET/LIMIT with early exit: once the limit is
// satisfied it returns false, stopping every upstream producer — for any
// query shape whose tail reaches this operator streamingly (everything
// except ORDER BY and aggregates, which must see all rows first).
type sliceOp struct {
	skip   int
	remain int // -1 = no limit
	next   sink
}

func (op *sliceOp) push(row []uint32) bool {
	if op.skip > 0 {
		op.skip--
		return true
	}
	if op.remain == 0 {
		return false
	}
	if !op.next.push(row) {
		return false
	}
	if op.remain > 0 {
		op.remain--
		if op.remain == 0 {
			return false
		}
	}
	return true
}

func (op *sliceOp) flush() bool { return op.next.flush() }

// collectOp materializes projected rows into Bindings — the only point
// where the ID path resolves terms for ordinary queries.
type collectOp struct {
	x    *exec
	vars []string
	rows []Binding
}

func (op *collectOp) push(row []uint32) bool {
	nb := make(Binding, len(op.vars))
	for i, v := range op.vars {
		if row[i] != 0 {
			nb[v] = op.x.resolveTerm(row[i])
		}
	}
	op.rows = append(op.rows, nb)
	return true
}

func (op *collectOp) flush() bool { return true }

// sortAllOp is the generic ORDER BY: buffer every full row with its
// resolved key terms, stable-sort at flush, then stream downstream
// (project → distinct → slice). Used for multi-key ORDER BY, DISTINCT +
// ORDER BY, and unlimited ORDER BY — the shapes the top-k heap cannot
// serve.
type sortAllOp struct {
	x        *exec
	keys     []OrderKey
	keySlots []int
	rows     []sortRow
	next     sink
}

type sortRow struct {
	row   []uint32
	terms []rdf.Term
}

func (op *sortAllOp) push(row []uint32) bool {
	cp := append([]uint32(nil), row...)
	kt := make([]rdf.Term, len(op.keySlots))
	for i, s := range op.keySlots {
		if s >= 0 && row[s] != 0 {
			kt[i] = op.x.resolveTerm(row[s])
		}
	}
	op.rows = append(op.rows, sortRow{row: cp, terms: kt})
	return true
}

func (op *sortAllOp) flush() bool {
	sort.SliceStable(op.rows, func(i, j int) bool {
		a, b := &op.rows[i], &op.rows[j]
		for k, key := range op.keys {
			c := compareTermsForOrder(a.terms[k], b.terms[k])
			if c != 0 {
				if key.Desc {
					return c > 0
				}
				return c < 0
			}
		}
		return false
	})
	for i := range op.rows {
		if !op.next.push(op.rows[i].row) {
			break
		}
	}
	return op.next.flush()
}

// topKOp is the bounded ORDER BY ?x LIMIT k path: a max-heap of the
// Offset+Limit best rows seen so far, ordered by the store's uint64 rank
// labels when they are exact for ORDER BY (integer compares, no term
// resolution), falling back to memoized term compares per item when a
// label is missing or numeric literals make label order inexact. Ties
// break by arrival order (seq), reproducing the stable sort the generic
// path uses, so the emitted page is byte-identical to sort-then-page.
// Memory is O(k · row width) regardless of how many rows stream through.
type topKOp struct {
	x       *exec
	k       int
	desc    bool
	keySlot int // -1: the key variable is bound nowhere (all keys tie)
	label   func(uint32) uint64
	heap    []topkItem // max-heap: root = last of the kept rows in output order
	seq     int
	next    sink
}

type topkItem struct {
	lab      uint64
	id       uint32
	resolved bool
	t        rdf.Term
	seq      int
	row      []uint32
}

func (op *topKOp) push(row []uint32) bool {
	if op.k == 0 {
		return false
	}
	it := topkItem{seq: op.seq}
	op.seq++
	if op.keySlot >= 0 {
		it.id = row[op.keySlot]
	}
	if op.label != nil && it.id != 0 {
		it.lab = op.label(it.id)
	}
	if len(op.heap) == op.k {
		if !op.before(&it, &op.heap[0]) {
			return true // at or after the current worst: not in the top k
		}
		it.row = append(op.heap[0].row[:0], row...)
		op.heap[0] = it
		op.siftDown(0)
		return true
	}
	it.row = append([]uint32(nil), row...)
	op.heap = append(op.heap, it)
	op.siftUp(len(op.heap) - 1)
	return true
}

// before reports whether a strictly precedes b in final output order.
// Nonzero labels compare directly (label order == term order, and exact
// ORDER BY order when the label path is enabled at all); any unlabeled
// side falls back to the memoized terms. Equal keys order by arrival.
func (op *topKOp) before(a, b *topkItem) bool {
	c := 0
	if a.lab != 0 && b.lab != 0 {
		switch {
		case a.lab < b.lab:
			c = -1
		case a.lab > b.lab:
			c = 1
		}
	} else {
		c = compareTermsForOrder(op.term(a), op.term(b))
	}
	if op.desc {
		c = -c
	}
	if c != 0 {
		return c < 0
	}
	return a.seq < b.seq
}

func (op *topKOp) term(it *topkItem) rdf.Term {
	if !it.resolved {
		if it.id != 0 {
			it.t = op.x.resolveTerm(it.id)
		}
		it.resolved = true
	}
	return it.t
}

func (op *topKOp) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !op.before(&op.heap[p], &op.heap[i]) {
			return
		}
		op.heap[p], op.heap[i] = op.heap[i], op.heap[p]
		i = p
	}
}

func (op *topKOp) siftDown(i int) {
	n := len(op.heap)
	for {
		big := i
		if l := 2*i + 1; l < n && op.before(&op.heap[big], &op.heap[l]) {
			big = l
		}
		if r := 2*i + 2; r < n && op.before(&op.heap[big], &op.heap[r]) {
			big = r
		}
		if big == i {
			return
		}
		op.heap[i], op.heap[big] = op.heap[big], op.heap[i]
		i = big
	}
}

func (op *topKOp) flush() bool {
	sort.Slice(op.heap, func(i, j int) bool { return op.before(&op.heap[i], &op.heap[j]) })
	for i := range op.heap {
		if !op.next.push(op.heap[i].row) {
			break
		}
	}
	return op.next.flush()
}

// tailSpec describes the buffering head of the modifier tail to the
// parallel runner, so each worker can run the equivalent bounded
// operator per morsel: a top-k pruner when the tail is the bounded
// ORDER BY heap, a row cap of skip+limit when every produced row
// reaches the slice unconditionally (no ORDER BY, no DISTINCT, no
// aggregation — projection never drops rows), unbounded otherwise.
type tailSpec struct {
	topK    bool
	k       int
	desc    bool
	keySlot int
	label   func(uint32) uint64
	rowCap  int // -1 = unbounded
}

// buildTail assembles the modifier tail of the pipeline — ORDER BY
// (top-k heap | stable sort) → project → DISTINCT → OFFSET/LIMIT slice
// → collect — and returns its entry sink, the terminal collector, and
// the tailSpec the parallel runner mirrors per morsel. Aggregate
// queries collect full rows directly (their modifiers apply after
// grouping).
func buildTail(x *exec, projVars []string, aggregates bool) (sink, *collectOp, tailSpec) {
	q, pl, g := x.pl.q, x.pl, x.g
	projSlots := make([]int, len(projVars))
	identity := len(projVars) == pl.width()
	for i, v := range projVars {
		if s, ok := pl.slots[v]; ok {
			projSlots[i] = s
		} else {
			projSlots[i] = -1
		}
		if projSlots[i] != i {
			identity = false
		}
	}

	spec := tailSpec{rowCap: -1}
	collect := &collectOp{x: x, vars: projVars}
	var tail sink = collect
	if aggregates {
		return tail, collect, spec
	}
	if q.Offset > 0 || q.Limit >= 0 {
		remain := q.Limit
		if remain < 0 {
			remain = -1
		}
		tail = &sliceOp{skip: q.Offset, remain: remain, next: tail}
		if q.Limit >= 0 && len(q.OrderBy) == 0 && !q.Distinct {
			spec.rowCap = q.Offset + q.Limit
		}
	}
	if q.Distinct {
		tail = &distinctOp{seen: make(map[string]struct{}), next: tail}
	}
	if !identity {
		tail = &projectOp{slots: projSlots, buf: make([]uint32, len(projSlots)), next: tail}
	}
	if len(q.OrderBy) > 0 {
		if len(q.OrderBy) == 1 && q.Limit >= 0 && !q.Distinct {
			op := &topKOp{x: x, k: q.Offset + q.Limit, desc: q.OrderBy[0].Desc, keySlot: -1, next: tail}
			if s, ok := pl.slots[q.OrderBy[0].Var]; ok {
				op.keySlot = s
			}
			if og, ok := g.(OrderedGraph); ok {
				if label, exact := og.OrderLabels(); exact {
					op.label = label // may be nil: term fallback per item
				}
			}
			tail = op
			spec.topK, spec.k, spec.desc, spec.keySlot, spec.label =
				true, op.k, op.desc, op.keySlot, op.label
		} else {
			op := &sortAllOp{x: x, keys: q.OrderBy, keySlots: make([]int, len(q.OrderBy)), next: tail}
			for i, k := range q.OrderBy {
				if s, ok := pl.slots[k.Var]; ok {
					op.keySlots[i] = s
				} else {
					op.keySlots[i] = -1
				}
			}
			tail = op
		}
	}
	return tail, collect, spec
}

// buildRowStages wraps tail with the per-row stages that run between
// the base join and the modifier tail: base-stage filters, one left
// join per OPTIONAL block (each followed by its stage filters), and the
// end-stage filters. The serial path builds this once; the parallel
// path builds one per worker (leftJoinOp carries per-row state), all
// sharing x's compiled filter stages via the exec passed in.
func (x *exec) buildRowStages(tail sink) sink {
	pl := x.pl
	chain := tail
	if st := x.newFilterStage(pl.endFilters); st != nil {
		chain = &filterOp{x: x, st: st, next: chain}
	}
	for j := len(pl.optionals) - 1; j >= 0; j-- {
		if st := x.newFilterStage(pl.optFilters[j]); st != nil {
			chain = &filterOp{x: x, st: st, next: chain}
		}
		chain = &leftJoinOp{x: x, pats: x.compile(pl.optionals[j]), next: chain}
	}
	if st := x.newFilterStage(pl.baseFilters); st != nil {
		chain = &filterOp{x: x, st: st, next: chain}
	}
	return chain
}

// levelFilterStages compiles the plan's join-level filters (nil when no
// level has any). The stages are read-only once built, so the parallel
// workers share one set.
func (x *exec) levelFilterStages() []*filterStage {
	if len(x.pl.levelFilters) == 0 {
		return nil
	}
	any := false
	lf := make([]*filterStage, len(x.pl.levelFilters))
	for i, exprs := range x.pl.levelFilters {
		lf[i] = x.newFilterStage(exprs)
		any = any || lf[i] != nil
	}
	if !any {
		return nil
	}
	return lf
}

// runPlan assembles the operator chain for the plan and drives it:
//
//	scan/join (DFS, level filters inline)
//	  → [left join per OPTIONAL block, its stage filters after it]
//	  → [end-stage filters]
//	  → ORDER BY (top-k heap | stable sort) — buffering, pre-projection
//	  → project → DISTINCT (ID hash set) → OFFSET/LIMIT slice → collect
//
// Aggregate queries collect full rows instead of the modifier tail and
// reuse the grouped-aggregation code path unchanged.
//
// With opts.Workers > 1 and a ReentrantGraph, the scan/join stage runs
// morsel-parallel (see parallel.go): workers execute the per-row stages
// over morsels of the driving scan and the coordinator feeds the
// modifier tail in morsel order, so the output is byte-identical to the
// serial pipeline.
func runPlan(g Graph, pl *plan, opts Options) (*Results, error) {
	q := pl.q
	aggregates := q.HasAggregates()
	var projVars []string
	switch {
	case aggregates:
		projVars = pl.varNames
	case q.SelectAll:
		projVars = pl.varNames
	default:
		projVars = make([]string, len(q.Projections))
		for i, p := range q.Projections {
			projVars[i] = p.Var
		}
	}

	// LIMIT 0 can only ever produce the empty result set; answer it at
	// plan time with zero scans, zero budget ticks, and zero locking.
	// (Without this, an ORDER BY tail would build an Offset-sized top-k
	// heap and a plain tail would scan Offset+1 rows, only to emit
	// nothing.) Aggregates keep the full path: their projection names
	// are computed by the aggregation tail.
	if !aggregates && q.Limit == 0 {
		return &Results{Vars: projVars}, nil
	}

	workers := resolveWorkers(opts.Workers)
	rg, reentrant := g.(ReentrantGraph)
	parallel := workers > 1 && reentrant
	budget := opts.budgetFor(parallel)

	x := &exec{pl: pl, g: g, budget: budget}
	if ig, ok := g.(IDGraph); ok {
		x.ig = ig
		if reentrant {
			release := rg.PinRead()
			defer release()
			x.matchIDs = rg.MatchIDsPinned
		} else {
			// Plain IDGraphs must tolerate nested MatchIDs calls.
			x.matchIDs = ig.MatchIDs
		}
	} else {
		x.ld = newLocalDict()
	}

	tail, collect, spec := buildTail(x, projVars, aggregates)

	var pr *parallelRun
	if parallel {
		pr = newParallelRun(x, workers, spec) // nil: shape needs the serial path
	}
	if pr != nil {
		pr.run(tail)
	} else {
		chain := x.buildRowStages(tail)
		lf := x.levelFilterStages()
		row := make([]uint32, pl.width())
		for _, grp := range pl.groups {
			if !x.runSeq(x.compile(grp), lf, 0, row, chain) {
				break
			}
		}
	}
	if x.err != nil {
		return nil, x.err
	}
	tail.flush()
	if x.err != nil {
		return nil, x.err
	}

	if aggregates {
		res, err := aggregateResults(q, collect.rows)
		if err != nil {
			return nil, err
		}
		orderResults(q, res)
		pageResults(q, res)
		return res, nil
	}
	return &Results{Vars: projVars, Rows: collect.rows}, nil
}
