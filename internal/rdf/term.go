// Package rdf implements the RDF data model used throughout Sapphire:
// terms (IRIs, literals, blank nodes), triples, vocabulary constants, and
// an N-Triples reader/writer.
//
// The representation is deliberately compact: a Term is a small value type
// so that triples can be stored and compared cheaply in the in-memory
// store and streamed through the SPARQL evaluator without allocation-heavy
// boxing.
package rdf

import (
	"fmt"
	"strings"
)

// TermKind discriminates the three kinds of RDF terms plus the zero value.
type TermKind uint8

const (
	// KindInvalid is the zero TermKind; it marks an unset Term.
	KindInvalid TermKind = iota
	// KindIRI is an IRI reference such as <http://dbpedia.org/resource/Berlin>.
	KindIRI
	// KindLiteral is an RDF literal, optionally tagged with a language or
	// a datatype IRI.
	KindLiteral
	// KindBlank is a blank node with a document-scoped label.
	KindBlank
)

// String returns a human-readable name for the kind.
func (k TermKind) String() string {
	switch k {
	case KindIRI:
		return "iri"
	case KindLiteral:
		return "literal"
	case KindBlank:
		return "blank"
	default:
		return "invalid"
	}
}

// Term is a single RDF term. The zero value is invalid and can be used as
// a sentinel. Terms are comparable with ==; two terms are equal iff their
// kind and all lexical components are equal.
type Term struct {
	// Value holds the IRI string, the literal lexical form, or the blank
	// node label depending on Kind.
	Value string
	// Lang is the language tag for language-tagged literals ("en", "de").
	// Empty for plain and datatyped literals and for non-literals.
	Lang string
	// Datatype is the datatype IRI for typed literals. Empty implies
	// xsd:string semantics for literals.
	Datatype string
	// Kind discriminates the term.
	Kind TermKind
}

// NewIRI returns an IRI term.
func NewIRI(iri string) Term { return Term{Kind: KindIRI, Value: iri} }

// NewLiteral returns a plain literal with no language tag or datatype.
func NewLiteral(lex string) Term { return Term{Kind: KindLiteral, Value: lex} }

// NewLangLiteral returns a language-tagged literal such as "Berlin"@en.
func NewLangLiteral(lex, lang string) Term {
	return Term{Kind: KindLiteral, Value: lex, Lang: lang}
}

// NewTypedLiteral returns a literal tagged with a datatype IRI such as
// "42"^^xsd:integer.
func NewTypedLiteral(lex, datatype string) Term {
	return Term{Kind: KindLiteral, Value: lex, Datatype: datatype}
}

// NewBlank returns a blank node with the given label (without the "_:"
// prefix).
func NewBlank(label string) Term { return Term{Kind: KindBlank, Value: label} }

// IsIRI reports whether the term is an IRI.
func (t Term) IsIRI() bool { return t.Kind == KindIRI }

// IsLiteral reports whether the term is a literal of any flavor.
func (t Term) IsLiteral() bool { return t.Kind == KindLiteral }

// IsBlank reports whether the term is a blank node.
func (t Term) IsBlank() bool { return t.Kind == KindBlank }

// IsZero reports whether the term is the invalid zero value.
func (t Term) IsZero() bool { return t.Kind == KindInvalid }

// String renders the term in N-Triples syntax. Invalid terms render as
// "<invalid>".
func (t Term) String() string {
	var b strings.Builder
	t.StringTo(&b)
	return b.String()
}

// StringTo appends the N-Triples rendering of the term to b, producing
// exactly the bytes of String without the intermediate allocations. Hot
// paths that build composite keys from several terms use it.
func (t Term) StringTo(b *strings.Builder) {
	switch t.Kind {
	case KindIRI:
		b.WriteByte('<')
		b.WriteString(t.Value)
		b.WriteByte('>')
	case KindLiteral:
		quoteLiteralTo(b, t.Value)
		if t.Lang != "" {
			b.WriteByte('@')
			b.WriteString(t.Lang)
		} else if t.Datatype != "" {
			b.WriteString("^^<")
			b.WriteString(t.Datatype)
			b.WriteByte('>')
		}
	case KindBlank:
		b.WriteString("_:")
		b.WriteString(t.Value)
	default:
		b.WriteString("<invalid>")
	}
}

// Compare orders terms lexicographically by (kind, value, lang, datatype).
// The order is total and stable, used for deterministic result ordering.
// It returns -1, 0, or +1.
func (t Term) Compare(u Term) int {
	return t.CompareTo(&u)
}

// CompareTo is Compare without copying either operand — the k-way merge
// in the store compares cached terms on every step, where the two
// 56-byte value copies of the value-receiver form dominate the compare
// itself. Neither operand is modified.
func (t *Term) CompareTo(u *Term) int {
	if t.Kind != u.Kind {
		if t.Kind < u.Kind {
			return -1
		}
		return 1
	}
	if c := strings.Compare(t.Value, u.Value); c != 0 {
		return c
	}
	if c := strings.Compare(t.Lang, u.Lang); c != 0 {
		return c
	}
	return strings.Compare(t.Datatype, u.Datatype)
}

// quoteLiteralTo escapes a literal lexical form per N-Triples rules,
// appending to b.
func quoteLiteralTo(b *strings.Builder, s string) {
	b.Grow(len(s) + 2)
	b.WriteByte('"')
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteByte('"')
}

// Triple is a single RDF statement. Subjects are IRIs or blank nodes,
// predicates are IRIs, and objects may be any term. The store enforces
// these positional constraints on insert.
type Triple struct {
	S, P, O Term
}

// NewTriple is a convenience constructor.
func NewTriple(s, p, o Term) Triple { return Triple{S: s, P: p, O: o} }

// String renders the triple in N-Triples syntax (without the trailing
// newline).
func (tr Triple) String() string {
	return fmt.Sprintf("%s %s %s .", tr.S, tr.P, tr.O)
}

// Valid reports whether the triple satisfies RDF positional constraints.
func (tr Triple) Valid() bool {
	if !(tr.S.IsIRI() || tr.S.IsBlank()) {
		return false
	}
	if !tr.P.IsIRI() {
		return false
	}
	return !tr.O.IsZero()
}
