package suffixtree

import (
	"fmt"
	"testing"
)

func benchStrings(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("literal number %d in the benchmark set %d", i, i*7%113)
	}
	return out
}

// BenchmarkBuild measures Ukkonen construction over 10k strings.
func BenchmarkBuild(b *testing.B) {
	strs := benchStrings(10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		New(strs)
	}
}

// BenchmarkSearch measures the O(|t|+z) substring lookup the QCM relies
// on (paper: ~0.25 ms regardless of indexed size).
func BenchmarkSearch(b *testing.B) {
	tr := New(benchStrings(10000))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Search(fmt.Sprintf("number %d in", i%1000), 10)
	}
}

// BenchmarkSearchMissing measures the fast-fail path.
func BenchmarkSearchMissing(b *testing.B) {
	tr := New(benchStrings(10000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Search("zzz-not-there", 10)
	}
}
