// Package injected carries a deliberate pinlock violation. The
// sapphire-vet test chdirs into this module and asserts the gate exits
// nonzero — the proof that a contract violation cannot slip through
// `make lint` or the CI lint job.
package injected

import "injected/store"

// ScanAndProbe calls a lock-acquiring accessor from inside a MatchIDs
// callback: exactly the nested-lock deadlock internal/store/doc.go
// forbids.
func ScanAndProbe(s *store.Store) int {
	hits := 0
	s.MatchIDs(0, 0, 0, func(sub, pred, obj uint32) bool {
		if _, ok := s.Lookup("probe"); ok {
			hits++
		}
		return true
	})
	return hits
}
