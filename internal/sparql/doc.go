// Package sparql implements the subset of SPARQL 1.1 that Sapphire needs:
// SELECT queries with triple patterns, FILTER expressions, DISTINCT,
// aggregates (COUNT), GROUP BY, ORDER BY, LIMIT and OFFSET, and PREFIX
// declarations. This covers every query in the paper: the Ivy League
// example in Section 1, the initialization queries Q1–Q10 in Appendix A,
// and the user-study queries in Appendix B.
//
// The pipeline is lexer → parser → AST → evaluator. The evaluator runs
// against any Graph (the in-memory store, or a federation of endpoints)
// and supports a per-row budget hook so simulated endpoints can enforce
// timeouts the way real SPARQL endpoints do.
//
// # The ID-level fast path
//
// When the Graph also implements IDGraph (the in-memory store does),
// the evaluator joins basic graph patterns over dense uint32 term IDs
// instead of rdf.Term structs and resolves IDs back to terms only when
// the pattern group is fully joined. Implementations and callers of
// IDGraph must follow the store's ID contract:
//
//   - The zero ID is the wildcard, mirroring the zero-Term convention
//     of Match; no term ever has ID 0.
//   - IDs are dense and append-only for the life of the graph, so
//     bindings can carry raw IDs between join steps.
//   - MatchIDs callbacks run under the graph's read lock: they must not
//     issue locking calls back into the graph (Lookup, CountIDs, a
//     nested MatchIDs) — once a writer queues, a nested read-lock
//     acquisition deadlocks. ResolveID is documented lock-free exactly
//     so join loops can materialize terms from inside a callback.
//
// Remote and federated graphs implement only Graph and take the
// Term-level path; the evaluator falls back transparently.
package sparql
