package federation

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"sapphire/internal/endpoint"
	"sapphire/internal/rdf"
	"sapphire/internal/store"
)

// twoEndpoints builds a federation whose data is split: people live on
// endpoint A, cities on endpoint B, with cross-links (the LOD-cloud
// shape Sapphire federates over).
func twoEndpoints(t testing.TB) (*Federation, *endpoint.Local, *endpoint.Local) {
	t.Helper()
	iri := func(x string) rdf.Term { return rdf.NewIRI("http://x/" + x) }
	en := func(x string) rdf.Term { return rdf.NewLangLiteral(x, "en") }
	typ := rdf.NewIRI(rdf.RDFType)

	people := store.New()
	for i, name := range []string{"Alice", "Bob", "Carol"} {
		s := iri(fmt.Sprintf("person%d", i))
		people.MustAdd(rdf.NewTriple(s, typ, iri("Person")))
		people.MustAdd(rdf.NewTriple(s, iri("name"), en(name)))
		people.MustAdd(rdf.NewTriple(s, iri("livesIn"), iri("city"+fmt.Sprint(i%2))))
	}
	cities := store.New()
	for i, name := range []string{"Springfield", "Shelbyville"} {
		c := iri(fmt.Sprintf("city%d", i))
		cities.MustAdd(rdf.NewTriple(c, typ, iri("City")))
		cities.MustAdd(rdf.NewTriple(c, iri("cityName"), en(name)))
	}
	a := endpoint.NewLocal("people", people, endpoint.Limits{})
	b := endpoint.NewLocal("cities", cities, endpoint.Limits{})
	return New(a, b), a, b
}

func TestFederatedSingleEndpointQuery(t *testing.T) {
	fed, _, _ := twoEndpoints(t)
	res, err := fed.Query(context.Background(),
		`SELECT ?n WHERE { ?s <http://x/name> ?n . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Errorf("rows = %d, want 3", len(res.Rows))
	}
}

func TestFederatedCrossEndpointJoin(t *testing.T) {
	fed, _, _ := twoEndpoints(t)
	// Join spans both endpoints: livesIn on A, cityName on B.
	res, err := fed.Query(context.Background(), `SELECT ?n ?cn WHERE {
		?s <http://x/name> ?n .
		?s <http://x/livesIn> ?c .
		?c <http://x/cityName> ?cn .
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v, want 3", res.Sorted())
	}
	// Alice (person0) lives in city0 Springfield.
	found := false
	for _, row := range res.Rows {
		if row["n"].Value == "Alice" && row["cn"].Value == "Springfield" {
			found = true
		}
	}
	if !found {
		t.Errorf("Alice/Springfield missing: %v", res.Sorted())
	}
}

func TestSourceSelectionSkipsIrrelevantMembers(t *testing.T) {
	fed, a, b := twoEndpoints(t)
	_, err := fed.Query(context.Background(),
		`SELECT ?cn WHERE { ?c <http://x/cityName> ?cn . }`)
	if err != nil {
		t.Fatal(err)
	}
	aq, bq := a.Stats().Queries, b.Stats().Queries
	// Both get one probe; only B gets the pattern fetch.
	if aq != 1 {
		t.Errorf("people endpoint served %d queries, want 1 (probe only)", aq)
	}
	if bq != 2 {
		t.Errorf("cities endpoint served %d queries, want 2 (probe + fetch)", bq)
	}
	// Second query against the same predicate reuses the source cache;
	// pattern cache makes it free entirely.
	_, err = fed.Query(context.Background(),
		`SELECT ?cn WHERE { ?c <http://x/cityName> ?cn . }`)
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats().Queries != aq {
		t.Errorf("probe repeated on irrelevant member")
	}
	if b.Stats().Queries != bq {
		t.Errorf("pattern not memoized: %d", b.Stats().Queries)
	}
}

func TestResetCachesForcesRefetch(t *testing.T) {
	fed, _, b := twoEndpoints(t)
	ctx := context.Background()
	q := `SELECT ?cn WHERE { ?c <http://x/cityName> ?cn . }`
	if _, err := fed.Query(ctx, q); err != nil {
		t.Fatal(err)
	}
	before := b.Stats().Queries
	fed.ResetCaches()
	if _, err := fed.Query(ctx, q); err != nil {
		t.Fatal(err)
	}
	if b.Stats().Queries != before+1 {
		t.Errorf("refetch count = %d, want %d", b.Stats().Queries, before+1)
	}
}

func TestFederatedDuplicateElimination(t *testing.T) {
	// The same triple on two members must not double results.
	s1, s2 := store.New(), store.New()
	tr := rdf.NewTriple(rdf.NewIRI("http://x/a"), rdf.NewIRI("http://x/p"), rdf.NewLiteral("v"))
	s1.MustAdd(tr)
	s2.MustAdd(tr)
	fed := New(endpoint.NewLocal("m1", s1, endpoint.Limits{}),
		endpoint.NewLocal("m2", s2, endpoint.Limits{}))
	res, err := fed.Query(context.Background(), `SELECT ?o WHERE { ?s <http://x/p> ?o . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Errorf("rows = %d, want 1 after dedup", len(res.Rows))
	}
}

func TestFederatedErrorPropagation(t *testing.T) {
	st := store.New()
	for i := 0; i < 200; i++ {
		st.MustAdd(rdf.NewTriple(rdf.NewIRI(fmt.Sprintf("http://x/s%d", i)),
			rdf.NewIRI("http://x/p"), rdf.NewLiteral(fmt.Sprint(i))))
	}
	fed := New(endpoint.NewLocal("m", st, endpoint.Limits{MaxIntermediateRows: 3}))
	_, err := fed.Query(context.Background(), `SELECT ?o WHERE { ?s <http://x/p> ?o . }`)
	if !errors.Is(err, endpoint.ErrTimeout) {
		t.Errorf("err = %v, want wrapped ErrTimeout", err)
	}
}

func TestQueriesIssuedCounter(t *testing.T) {
	fed, _, _ := twoEndpoints(t)
	if fed.QueriesIssued() != 0 {
		t.Fatal("counter should start at 0")
	}
	_, err := fed.Query(context.Background(),
		`SELECT ?n WHERE { ?s <http://x/name> ?n . }`)
	if err != nil {
		t.Fatal(err)
	}
	if fed.QueriesIssued() < 2 {
		t.Errorf("QueriesIssued = %d, want probes + fetch", fed.QueriesIssued())
	}
}

func TestFederatedVariablePredicate(t *testing.T) {
	fed, _, _ := twoEndpoints(t)
	res, err := fed.Query(context.Background(),
		`SELECT DISTINCT ?p WHERE { <http://x/person0> ?p ?o . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Errorf("predicates = %v, want 3", res.Sorted())
	}
}

func TestFederatedAggregateAcrossMembers(t *testing.T) {
	fed, _, _ := twoEndpoints(t)
	res, err := fed.Query(context.Background(),
		`SELECT (COUNT(?s) AS ?n) WHERE { ?s a <http://x/Person> . }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0]["n"].Value != "3" {
		t.Errorf("count = %s, want 3", res.Rows[0]["n"].Value)
	}
}
