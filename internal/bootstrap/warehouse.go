package bootstrap

import (
	"context"
	"io"
	"time"

	"sapphire/internal/endpoint"
	"sapphire/internal/rdf"
	"sapphire/internal/store"
)

// NewWarehouse builds an unlimited local endpoint over the triples — the
// warehousing architecture of Appendix A, where the dataset lives with
// Sapphire instead of behind a public endpoint. Loading goes through the
// store's staged bulk-load path: terms are interned and triples buffered
// as ID tuples, then the indexes are built and sorted in one commit, so
// warehouse construction stays linear at millions of triples.
func NewWarehouse(name string, triples []rdf.Triple) (*endpoint.Local, error) {
	st := store.New()
	if err := st.AddAll(triples); err != nil {
		return nil, err
	}
	return endpoint.NewLocal(name, st, endpoint.Limits{}), nil
}

// NewWarehouseFromNTriples streams an N-Triples document into a local
// warehouse endpoint via store.LoadNTriples, never materializing the
// whole document as a []rdf.Triple.
func NewWarehouseFromNTriples(name string, r io.Reader) (*endpoint.Local, error) {
	st := store.New()
	if err := store.LoadNTriples(st, r); err != nil {
		return nil, err
	}
	return endpoint.NewLocal(name, st, endpoint.Limits{}), nil
}

// InitializeWarehouse runs the warehousing-architecture variant of
// initialization described at the end of Appendix A: when the datasets
// are stored locally with Sapphire — no timeouts, no admission control —
// literal retrieval needs none of the class-hierarchy gymnastics, just
// the two straight-line queries Q9 (all filtered literals) and Q10 (all
// significant literals), paginated only to bound result-set size.
func InitializeWarehouse(ctx context.Context, ep endpoint.Endpoint, cfg Config) (*Cache, error) {
	start := time.Now()
	init := &initializer{
		ctx:      ctx,
		ep:       ep,
		cfg:      cfg,
		literals: make(map[string]rdf.Term),
		sig:      make(map[string]int),
	}
	preds, err := init.fetchPredicates()
	if err != nil {
		return nil, err
	}
	// Q9: literals, paginated.
	for offset := 0; ; offset += cfg.PageSize {
		res, err := init.query(QueryWarehouseLiterals(cfg.Language, cfg.MaxLiteralLength, cfg.PageSize, offset))
		if err != nil {
			return nil, err
		}
		if res == nil {
			break // budget exhausted
		}
		init.stats.LiteralQueries++
		for _, row := range res.Rows {
			if o := row["o"]; o.IsLiteral() {
				init.literals[o.Value] = o
			}
		}
		if len(res.Rows) < cfg.PageSize {
			break
		}
	}
	// Q10: significance, paginated.
	for offset := 0; ; offset += cfg.PageSize {
		res, err := init.query(QueryWarehouseSignificant(cfg.Language, cfg.MaxLiteralLength, cfg.PageSize, offset))
		if err != nil {
			return nil, err
		}
		if res == nil {
			break
		}
		init.stats.SignificanceQueries++
		for _, row := range res.Rows {
			o := row["o"]
			n := 0
			if f, ok := row["frequency"]; ok {
				n = atoiSafe(f.Value)
			}
			if o.IsLiteral() && n > init.sig[o.Value] {
				init.sig[o.Value] = n
			}
		}
		if len(res.Rows) < cfg.PageSize {
			break
		}
	}
	c := init.buildCache(ep.Name(), preds)
	c.Stats.Duration = time.Since(start)
	return c, nil
}
