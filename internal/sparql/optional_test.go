package sparql

import (
	"testing"

	"sapphire/internal/rdf"
	"sapphire/internal/store"
)

// optStore builds a graph where some books have publishers and some do
// not — the canonical OPTIONAL scenario.
func optStore(t testing.TB) *store.Store {
	t.Helper()
	s := store.New()
	iri := func(x string) rdf.Term { return rdf.NewIRI("http://x/" + x) }
	lit := func(x string) rdf.Term { return rdf.NewLiteral(x) }
	add := func(a, p, b rdf.Term) { s.MustAdd(rdf.NewTriple(a, p, b)) }
	add(iri("b1"), iri("title"), lit("With Publisher"))
	add(iri("b1"), iri("publisher"), iri("pub1"))
	add(iri("b2"), iri("title"), lit("Without Publisher"))
	add(iri("b3"), iri("title"), lit("Also Without"))
	add(iri("pub1"), iri("name"), lit("Pub One"))
	// Films for the UNION tests.
	add(iri("f1"), iri("filmTitle"), lit("A Film"))
	add(iri("f2"), iri("filmTitle"), lit("B Film"))
	return s
}

func TestOptionalKeepsUnmatchedRows(t *testing.T) {
	s := optStore(t)
	res := eval(t, s, `SELECT ?t ?p WHERE {
		?b <http://x/title> ?t .
		OPTIONAL { ?b <http://x/publisher> ?p . }
	}`)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 (left join keeps all books)", len(res.Rows))
	}
	bound, unbound := 0, 0
	for _, row := range res.Rows {
		if _, ok := row["p"]; ok && !row["p"].IsZero() {
			bound++
		} else {
			unbound++
		}
	}
	if bound != 1 || unbound != 2 {
		t.Errorf("bound = %d, unbound = %d", bound, unbound)
	}
}

func TestOptionalChained(t *testing.T) {
	s := optStore(t)
	res := eval(t, s, `SELECT ?t ?n WHERE {
		?b <http://x/title> ?t .
		OPTIONAL { ?b <http://x/publisher> ?p . ?p <http://x/name> ?n . }
	}`)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	named := 0
	for _, row := range res.Rows {
		if v, ok := row["n"]; ok && v.Value == "Pub One" {
			named++
		}
	}
	if named != 1 {
		t.Errorf("publisher names resolved = %d, want 1", named)
	}
}

func TestOptionalWithBoundFilter(t *testing.T) {
	s := optStore(t)
	// bound(?p) after OPTIONAL isolates rows that did match.
	res := eval(t, s, `SELECT ?t WHERE {
		?b <http://x/title> ?t .
		OPTIONAL { ?b <http://x/publisher> ?p . }
		FILTER (bound(?p))
	}`)
	if len(res.Rows) != 1 || res.Rows[0]["t"].Value != "With Publisher" {
		t.Errorf("rows = %+v", res.Rows)
	}
	// And !bound for the negation-as-failure idiom.
	res = eval(t, s, `SELECT ?t WHERE {
		?b <http://x/title> ?t .
		OPTIONAL { ?b <http://x/publisher> ?p . }
		FILTER (!bound(?p))
	}`)
	if len(res.Rows) != 2 {
		t.Errorf("unpublished books = %d, want 2", len(res.Rows))
	}
}

func TestUnionCombinesBranches(t *testing.T) {
	s := optStore(t)
	res := eval(t, s, `SELECT ?t WHERE {
		{ ?x <http://x/title> ?t . }
		UNION
		{ ?x <http://x/filmTitle> ?t . }
	}`)
	if len(res.Rows) != 5 {
		t.Fatalf("union rows = %d, want 5 (3 books + 2 films)", len(res.Rows))
	}
}

func TestUnionThreeBranches(t *testing.T) {
	s := optStore(t)
	res := eval(t, s, `SELECT ?v WHERE {
		{ ?x <http://x/title> ?v . }
		UNION
		{ ?x <http://x/filmTitle> ?v . }
		UNION
		{ ?x <http://x/name> ?v . }
	}`)
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(res.Rows))
	}
}

func TestUnionWithAggregate(t *testing.T) {
	s := optStore(t)
	res := eval(t, s, `SELECT (COUNT(?t) AS ?n) WHERE {
		{ ?x <http://x/title> ?t . }
		UNION
		{ ?x <http://x/filmTitle> ?t . }
	}`)
	if res.Rows[0]["n"].Value != "5" {
		t.Errorf("count = %s", res.Rows[0]["n"].Value)
	}
}

func TestUnionParseErrors(t *testing.T) {
	bad := []string{
		`SELECT ?t WHERE { { ?x <http://x/a> ?t . } }`,                                                     // lone group, no UNION
		`SELECT ?t WHERE { { ?x <http://x/a> ?t . } UNION }`,                                               // missing branch
		`SELECT ?t WHERE { ?y <http://x/b> ?t . { ?x <http://x/a> ?t . } UNION { ?x <http://x/c> ?t . } }`, // group after triples
		`SELECT ?t WHERE { OPTIONAL { } }`,                                                                 // empty OPTIONAL
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestOptionalUnionStringRoundTrip(t *testing.T) {
	srcs := []string{
		`SELECT ?t WHERE { ?b <http://x/title> ?t . OPTIONAL { ?b <http://x/publisher> ?p . } }`,
		`SELECT ?t WHERE { { ?x <http://x/a> ?t . } UNION { ?x <http://x/b> ?t . } }`,
	}
	for _, src := range srcs {
		q1 := MustParse(src)
		q2 := MustParse(q1.String())
		if q1.String() != q2.String() {
			t.Errorf("round trip changed:\n%s\nvs\n%s", q1, q2)
		}
	}
}

func TestCloneCopiesOptionalsAndUnions(t *testing.T) {
	q := MustParse(`SELECT ?t WHERE { ?b <http://x/title> ?t . OPTIONAL { ?b <http://x/p> ?x . } }`)
	c := q.Clone()
	c.Optionals[0][0].P = NewTermNode(rdf.NewIRI("http://x/changed"))
	if q.Optionals[0][0].P.Term.Value != "http://x/p" {
		t.Error("clone shares Optionals")
	}
	u := MustParse(`SELECT ?t WHERE { { ?x <http://x/a> ?t . } UNION { ?x <http://x/b> ?t . } }`)
	cu := u.Clone()
	cu.UnionGroups[0][0].P = NewTermNode(rdf.NewIRI("http://x/changed"))
	if u.UnionGroups[0][0].P.Term.Value != "http://x/a" {
		t.Error("clone shares UnionGroups")
	}
}

func TestOptionalProjectionValidation(t *testing.T) {
	// Projecting a variable bound only in an OPTIONAL block is legal.
	if _, err := Parse(`SELECT ?p WHERE { ?b <http://x/title> ?t . OPTIONAL { ?b <http://x/pub> ?p . } }`); err != nil {
		t.Errorf("optional-only projection rejected: %v", err)
	}
	// Projecting a variable bound only in a UNION branch is legal.
	if _, err := Parse(`SELECT ?t WHERE { { ?x <http://x/a> ?t . } UNION { ?x <http://x/b> ?t . } }`); err != nil {
		t.Errorf("union projection rejected: %v", err)
	}
}
