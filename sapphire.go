// Package sapphire is the public API of the Sapphire reproduction: an
// interactive assistant that helps users write syntactically and
// semantically correct SPARQL queries over RDF endpoints they have no
// prior knowledge of (El-Roby, Ammar, Aboulnaga, Lin: "Sapphire:
// Querying RDF Data Made Simple", VLDB 2016 / arXiv:1805.11728).
//
// A Client registers one or more SPARQL endpoints. Registration runs the
// paper's initialization (Section 5): predicates and filtered literals
// are cached, the most significant literals go into a suffix tree, the
// rest into length bins. The Predictive User Model then serves:
//
//   - Complete: QCM auto-completions while the user types (Section 6.1);
//   - Query: federated execution across the registered endpoints;
//   - Suggest: QSM alternatives — similar predicates/literals and
//     Steiner-tree structure relaxation — with prefetched answers
//     (Section 6.2).
//
// Basic use:
//
//	client := sapphire.New(sapphire.Defaults())
//	ep := sapphire.NewMemoryEndpoint("books", triples)
//	if err := client.RegisterEndpoint(ctx, ep); err != nil { ... }
//	comps := client.Complete("Kerou")
//	res, sugs, err := client.Run(ctx, `SELECT ?b WHERE { ... }`)
package sapphire

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"sapphire/internal/bootstrap"
	"sapphire/internal/endpoint"
	"sapphire/internal/federation"
	"sapphire/internal/lexicon"
	"sapphire/internal/pum"
	"sapphire/internal/rdf"
	"sapphire/internal/sparql"
	"sapphire/internal/store"
)

// Re-exported types so downstream users work with one import.
type (
	// Completion is a QCM auto-complete suggestion.
	Completion = pum.Completion
	// Suggestion is a QSM query suggestion with prefetched answers.
	Suggestion = pum.Suggestion
	// Results is a SPARQL result set.
	Results = sparql.Results
	// Endpoint is a SPARQL query service.
	Endpoint = endpoint.Endpoint
	// Limits configures a simulated endpoint's resource constraints.
	Limits = endpoint.Limits
	// InitStats reports what endpoint initialization did.
	InitStats = bootstrap.Stats
	// Triple is an RDF statement.
	Triple = rdf.Triple
	// Term is an RDF term.
	Term = rdf.Term
)

// Suggestion kinds, re-exported.
const (
	AltPredicate = pum.AltPredicate
	AltLiteral   = pum.AltLiteral
	Relaxation   = pum.Relaxation
)

// Config tunes the client. Zero values take the paper's defaults.
type Config struct {
	// PUM holds the predictive-model parameters (k, γ, θ, α, β, P, ...).
	PUM pum.Config
	// Bootstrap holds the initialization parameters (length cap,
	// language, page size, budgets).
	Bootstrap bootstrap.Config
	// Lexicon overrides the built-in verbalization lexicon.
	Lexicon *lexicon.Lexicon
	// FedEpochPoll throttles the federation's epoch-driven cache
	// invalidation: 0 checks member epochs on every query (the
	// default), > 0 checks at most once per interval, < 0 disables
	// automatic invalidation entirely.
	FedEpochPoll time.Duration
}

// Defaults returns the configuration used throughout the paper.
func Defaults() Config {
	return Config{PUM: pum.DefaultConfig(), Bootstrap: bootstrap.DefaultConfig()}
}

// Client is the Sapphire server core: registered endpoints, their merged
// cache, and the PUM.
type Client struct {
	cfg Config

	mu        sync.RWMutex
	endpoints []endpoint.Endpoint
	caches    []*bootstrap.Cache
	fed       *federation.Federation
	model     *pum.PUM
}

// New returns a client with no registered endpoints.
func New(cfg Config) *Client {
	if cfg.PUM.K == 0 {
		cfg.PUM = pum.DefaultConfig()
	}
	if cfg.Bootstrap.MaxLiteralLength == 0 {
		cfg.Bootstrap = bootstrap.DefaultConfig()
	}
	return &Client{cfg: cfg}
}

// RegisterEndpoint initializes the endpoint (Section 5) and adds it to
// the federation. Initialization may take a while for large endpoints;
// the paper reports 17 hours for DBpedia.
func (c *Client) RegisterEndpoint(ctx context.Context, ep endpoint.Endpoint) error {
	cache, err := bootstrap.Initialize(ctx, ep, c.cfg.Bootstrap)
	if err != nil {
		return fmt.Errorf("sapphire: initializing %s: %w", ep.Name(), err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.endpoints = append(c.endpoints, ep)
	c.caches = append(c.caches, cache)
	c.rebuildLocked()
	return nil
}

// RegisterHTTP registers a remote SPARQL endpoint by URL.
func (c *Client) RegisterHTTP(ctx context.Context, url string) error {
	return c.RegisterEndpoint(ctx, endpoint.NewClient(url))
}

// RegisterEndpointWithCache registers an endpoint using a previously
// saved initialization cache (see SaveEndpointCache), skipping the
// crawl. The paper's 17-hour DBpedia initialization happens once; this
// is how the result is reused across server restarts.
func (c *Client) RegisterEndpointWithCache(ep endpoint.Endpoint, cached io.Reader) error {
	cache, err := bootstrap.Load(cached)
	if err != nil {
		return fmt.Errorf("sapphire: loading cache for %s: %w", ep.Name(), err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.endpoints = append(c.endpoints, ep)
	c.caches = append(c.caches, cache)
	c.rebuildLocked()
	return nil
}

// SaveEndpointCache writes the named endpoint's initialization cache so
// a later RegisterEndpointWithCache can skip re-crawling.
func (c *Client) SaveEndpointCache(name string, w io.Writer) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for i, ep := range c.endpoints {
		if ep.Name() == name {
			return c.caches[i].Save(w)
		}
	}
	return fmt.Errorf("sapphire: no endpoint named %q", name)
}

func (c *Client) rebuildLocked() {
	c.fed = federation.New(c.endpoints...)
	c.fed.SetEpochPoll(c.cfg.FedEpochPoll)
	merged := bootstrap.MergeCaches(c.caches...)
	c.model = pum.New(merged, c.fed, c.cfg.Lexicon, c.cfg.PUM)
}

// pumOrNil returns the current model.
func (c *Client) pumOrNil() *pum.PUM {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.model
}

// Endpoints returns the names of the registered endpoints.
func (c *Client) Endpoints() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, len(c.endpoints))
	for i, ep := range c.endpoints {
		out[i] = ep.Name()
	}
	return out
}

// Stats returns the merged initialization statistics.
func (c *Client) Stats() InitStats {
	if m := c.pumOrNil(); m != nil {
		return m.Cache().Stats
	}
	return InitStats{}
}

// ServingStats reports live query-serving counters: the federation's
// request count plus, per registered endpoint, its mutation epoch and
// serving stats (including result-cache hit/miss/evict/coalesced
// counters) where the endpoint exposes them.
type ServingStats struct {
	// FederationQueries is the number of requests the federation has
	// shipped to members (probes and pattern fetches).
	FederationQueries int `json:"federationQueries"`
	// Endpoints lists per-member serving state in registration order.
	Endpoints []EndpointServingStats `json:"endpoints"`
}

// EndpointServingStats is one endpoint's entry in ServingStats.
type EndpointServingStats struct {
	Name string `json:"name"`
	// Epoch is the endpoint's mutation epoch; EpochKnown is false when
	// the endpoint cannot report one (then Epoch is meaningless).
	Epoch      uint64 `json:"epoch"`
	EpochKnown bool   `json:"epochKnown"`
	// Stats carries the endpoint's counters when it exposes them
	// (local/simulated endpoints do; plain HTTP clients do not).
	Stats *endpoint.Stats `json:"stats,omitempty"`
}

// ServingStats collects live serving counters across the federation and
// every registered endpoint. Epoch probes for remote endpoints use ctx
// and run concurrently, so one hung member delays the stats surface by
// one probe timeout, not the sum over members.
func (c *Client) ServingStats(ctx context.Context) ServingStats {
	c.mu.RLock()
	fed := c.fed
	eps := append([]endpoint.Endpoint(nil), c.endpoints...)
	c.mu.RUnlock()
	var out ServingStats
	if fed != nil {
		out.FederationQueries = fed.QueriesIssued()
	}
	out.Endpoints = make([]EndpointServingStats, len(eps))
	var wg sync.WaitGroup
	for i, ep := range eps {
		wg.Add(1)
		go func(i int, ep endpoint.Endpoint) {
			defer wg.Done()
			es := EndpointServingStats{Name: ep.Name()}
			if e, ok := ep.(endpoint.Epoched); ok {
				es.Epoch, es.EpochKnown = e.Epoch(ctx)
			}
			if s, ok := ep.(endpoint.StatsReporter); ok {
				st := s.Stats()
				es.Stats = &st
			}
			out.Endpoints[i] = es
		}(i, ep)
	}
	wg.Wait()
	return out
}

// Complete returns up to k auto-complete suggestions for the term being
// typed (QCM, Figure 5). It returns nil before any endpoint registers.
func (c *Client) Complete(term string) []Completion {
	m := c.pumOrNil()
	if m == nil {
		return nil
	}
	return m.Complete(term)
}

// Query executes a SPARQL query across the registered endpoints.
func (c *Client) Query(ctx context.Context, query string) (*Results, error) {
	c.mu.RLock()
	fed := c.fed
	c.mu.RUnlock()
	if fed == nil {
		return nil, fmt.Errorf("sapphire: no endpoints registered")
	}
	return fed.Query(ctx, query)
}

// Suggest returns QSM suggestions for a query: alternative terms and
// relaxed structures, each with prefetched answers (Section 6.2).
func (c *Client) Suggest(ctx context.Context, query string) ([]Suggestion, error) {
	m := c.pumOrNil()
	if m == nil {
		return nil, fmt.Errorf("sapphire: no endpoints registered")
	}
	q, err := sparql.Parse(query)
	if err != nil {
		return nil, err
	}
	return m.Suggest(ctx, q)
}

// Run executes the query and computes suggestions in one step, the way
// the Sapphire UI does when the user clicks "Run": answers come back
// together with ways to improve the query.
func (c *Client) Run(ctx context.Context, query string) (*Results, []Suggestion, error) {
	m := c.pumOrNil()
	if m == nil {
		return nil, nil, fmt.Errorf("sapphire: no endpoints registered")
	}
	q, err := sparql.Parse(query)
	if err != nil {
		return nil, nil, err
	}
	res, err := m.Execute(ctx, q)
	if err != nil {
		return nil, nil, err
	}
	sugs, err := m.Suggest(ctx, q)
	if err != nil {
		return res, nil, err
	}
	return res, sugs, nil
}

// NewMemoryEndpoint builds an in-process endpoint over the given triples
// with no resource limits — the "warehousing architecture" of the paper.
// Loading goes through the store's staged bulk-load path, so building
// endpoints over large datasets stays linear in the number of triples.
func NewMemoryEndpoint(name string, triples []Triple) (*endpoint.Local, error) {
	return bootstrap.NewWarehouse(name, triples)
}

// NewEndpointFromNTriples builds an in-process endpoint from an
// N-Triples document, applying the given limits (use zero Limits for
// none). The document is streamed through the store's bulk loader, so
// it is never materialized as a whole.
func NewEndpointFromNTriples(name string, r io.Reader, limits Limits) (*endpoint.Local, error) {
	st := store.New()
	if err := store.LoadNTriples(st, r); err != nil {
		return nil, err
	}
	return endpoint.NewLocal(name, st, limits), nil
}

// NewEndpointFromTurtle builds an in-process endpoint from a Turtle
// document (the serialization most public RDF dumps use).
func NewEndpointFromTurtle(name string, r io.Reader, limits Limits) (*endpoint.Local, error) {
	triples, err := rdf.ParseTurtle(r)
	if err != nil {
		return nil, err
	}
	st := store.New()
	if err := st.AddAll(triples); err != nil {
		return nil, err
	}
	return endpoint.NewLocal(name, st, limits), nil
}
