package store

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"sapphire/internal/rdf"
)

// snapshotSample builds a store with mixed term kinds across both the
// bulk and online paths, so snapshots cover every encoding case.
func snapshotSample(t testing.TB, shards int) *Store {
	t.Helper()
	s := NewSharded(shards)
	l := NewBulkLoader(s)
	if err := l.AddAll(benchTriples(2000)); err != nil {
		t.Fatal(err)
	}
	if l.Commit() != 2000 {
		t.Fatal("short commit")
	}
	extra := []rdf.Triple{
		tri(iri("s0"), iri("label"), rdf.NewLangLiteral("zero", "en")),
		tri(iri("s0"), iri("age"), rdf.NewTypedLiteral("42", rdf.XSDInteger)),
		tri(rdf.NewBlank("b1"), iri("p"), rdf.NewBlank("b2")),
		tri(iri("s1"), iri("note"), lit("a \"quoted\"\nvalue")),
	}
	for _, tr := range extra {
		if _, err := s.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func dump(t testing.TB, s *Store) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := s.DumpNTriples(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

func TestSnapshotRoundTrip(t *testing.T) {
	for _, shards := range []int{1, 8} {
		t.Run(fmt.Sprintf("shards%d", shards), func(t *testing.T) {
			s := snapshotSample(t, shards)
			var buf bytes.Buffer
			info, err := s.WriteSnapshot(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if info.Epoch != s.Epoch() {
				t.Errorf("info.Epoch = %d, store epoch %d", info.Epoch, s.Epoch())
			}
			if info.Triples != uint64(s.Len()) {
				t.Errorf("info.Triples = %d, store holds %d", info.Triples, s.Len())
			}
			if info.Bytes != int64(buf.Len()) {
				t.Errorf("info.Bytes = %d, wrote %d", info.Bytes, buf.Len())
			}

			r, rinfo, err := RestoreSnapshot(&buf, 0, 0)
			if err != nil {
				t.Fatal(err)
			}
			if rinfo != info {
				t.Errorf("restore info %+v != write info %+v", rinfo, info)
			}
			if r.Epoch() != s.Epoch() {
				t.Errorf("restored epoch %d, want %d", r.Epoch(), s.Epoch())
			}
			if got, want := dump(t, r), dump(t, s); !bytes.Equal(got, want) {
				t.Fatalf("restored dump differs (%d vs %d bytes)", len(got), len(want))
			}

			// The restored store must stay fully usable: new terms get
			// fresh IDs past the restored watermark, duplicates are
			// still detected.
			if added, err := r.Add(tri(iri("brand-new"), iri("p"), lit("new"))); err != nil || !added {
				t.Fatalf("Add after restore = (%v, %v)", added, err)
			}
			if added, _ := r.Add(tri(iri("s0"), iri("age"), rdf.NewTypedLiteral("42", rdf.XSDInteger))); added {
				t.Error("duplicate Add after restore reported added")
			}
		})
	}
}

// TestSnapshotReshard restores into a different shard count: the slow
// re-partitioning path must produce the same triple set and epoch.
func TestSnapshotReshard(t *testing.T) {
	s := snapshotSample(t, 8)
	var buf bytes.Buffer
	if _, err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	r, _, err := RestoreSnapshot(bytes.NewReader(buf.Bytes()), 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.Epoch() != s.Epoch() {
		t.Errorf("resharded epoch %d, want %d", r.Epoch(), s.Epoch())
	}
	if !bytes.Equal(dump(t, r), dump(t, s)) {
		t.Fatal("resharded dump differs")
	}
	if added, err := r.Add(tri(iri("post-reshard"), iri("p"), lit("v"))); err != nil || !added {
		t.Fatalf("Add after resharded restore = (%v, %v)", added, err)
	}
}

// TestSnapshotDictCompaction: terms interned by staged-but-uncommitted
// bulk triples must not survive a snapshot/restore cycle.
func TestSnapshotDictCompaction(t *testing.T) {
	s := snapshotSample(t, 4)
	l := NewBulkLoader(s)
	var staged []rdf.Triple
	for i := 0; i < 500; i++ {
		staged = append(staged, tri(iri(fmt.Sprintf("ghost%d", i)), iri("haunts"), lit(fmt.Sprintf("g%d", i))))
	}
	if err := l.AddAll(staged); err != nil {
		t.Fatal(err)
	}
	// No Commit: the ghost terms are interned but referenced by nothing.
	before := int(s.dict.terms.Load())

	var buf bytes.Buffer
	info, err := s.WriteSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if info.Terms >= before {
		t.Fatalf("snapshot kept %d terms, dictionary holds %d — no compaction", info.Terms, before)
	}
	r, _, err := RestoreSnapshot(&buf, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := int(r.dict.terms.Load()); got != info.Terms {
		t.Errorf("restored dictionary holds %d terms, snapshot wrote %d", got, info.Terms)
	}
	if !bytes.Equal(dump(t, r), dump(t, s)) {
		t.Fatal("compacted restore changed the triple set")
	}
}

// TestSnapshotCorruption flips every bit position across a sample of
// byte offsets and truncates at every prefix length: decoding must
// return an error (or, at worst, an identical store) and never panic.
func TestSnapshotCorruption(t *testing.T) {
	s := NewSharded(2)
	for i := 0; i < 40; i++ {
		s.MustAdd(tri(iri(fmt.Sprintf("s%d", i)), iri("p"), lit(fmt.Sprintf("v%d", i))))
	}
	var buf bytes.Buffer
	if _, err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	want := dump(t, s)

	for off := 0; off < len(data); off++ {
		for bit := 0; bit < 8; bit++ {
			mut := bytes.Clone(data)
			mut[off] ^= 1 << bit
			r, _, err := RestoreSnapshot(bytes.NewReader(mut), 0, 0)
			if err == nil {
				// A flip that still decodes must decode to the truth
				// (e.g. it landed in a CRC that then matched by
				// construction — impossible for CRC32C, but the
				// property we care about is "never a wrong store").
				if !bytes.Equal(dump(t, r), want) {
					t.Fatalf("bit flip at offset %d bit %d produced a different store with no error", off, bit)
				}
			}
		}
	}
	for n := 0; n < len(data); n++ {
		if _, _, err := RestoreSnapshot(bytes.NewReader(data[:n]), 0, 0); err == nil {
			t.Fatalf("truncation to %d bytes decoded without error", n)
		}
	}
}

func TestSnapshotEmptyStore(t *testing.T) {
	s := NewSharded(4)
	var buf bytes.Buffer
	info, err := s.WriteSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if info.Triples != 0 || info.Terms != 0 {
		t.Fatalf("empty snapshot info = %+v", info)
	}
	r, _, err := RestoreSnapshot(&buf, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 0 {
		t.Fatalf("restored empty store holds %d triples", r.Len())
	}
	if added, err := r.Add(tri(iri("s"), iri("p"), lit("o"))); err != nil || !added {
		t.Fatalf("Add to restored empty store = (%v, %v)", added, err)
	}
}

// TestSnapshotConcurrentAdds races online writers against snapshot
// writes. Every snapshot must be internally consistent: it decodes
// cleanly, its stamped epoch matches the restored store's epoch, and
// its triple count matches its own header — no torn shard state.
func TestSnapshotConcurrentAdds(t *testing.T) {
	s := NewSharded(8)
	const writers = 4
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				s.MustAdd(tri(
					iri(fmt.Sprintf("w%d-s%d", w, i)),
					iri(fmt.Sprintf("p%d", i%7)),
					lit(fmt.Sprintf("v%d", i)),
				))
			}
		}(w)
	}

	for round := 0; round < 20; round++ {
		var buf bytes.Buffer
		info, err := s.WriteSnapshot(&buf)
		if err != nil {
			t.Fatal(err)
		}
		r, rinfo, err := RestoreSnapshot(&buf, 0, 0)
		if err != nil {
			t.Fatalf("round %d: snapshot under concurrent Adds does not decode: %v", round, err)
		}
		if rinfo.Triples != info.Triples || uint64(r.Len()) != info.Triples {
			t.Fatalf("round %d: torn triple count: wrote %d, restored %d", round, info.Triples, r.Len())
		}
		if r.Epoch() != info.Epoch {
			t.Fatalf("round %d: restored epoch %d != stamped %d", round, r.Epoch(), info.Epoch)
		}
	}
	stop.Store(true)
	wg.Wait()

	// Quiesced store round-trips exactly.
	var buf bytes.Buffer
	if _, err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	r, _, err := RestoreSnapshot(&buf, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dump(t, r), dump(t, s)) {
		t.Fatal("final dump differs")
	}
}

func TestDumpNTriplesDeterministic(t *testing.T) {
	a := snapshotSample(t, 8)
	b := NewSharded(3)
	// Same triples, inserted in a different order through a different
	// path and shard count.
	var all []rdf.Triple
	a.Match(rdf.Term{}, rdf.Term{}, rdf.Term{}, func(tr rdf.Triple) bool {
		all = append(all, tr)
		return true
	})
	for i := len(all) - 1; i >= 0; i-- {
		b.MustAdd(all[i])
	}
	da, db := dump(t, a), dump(t, b)
	if !bytes.Equal(da, db) {
		t.Fatal("dumps differ across construction order and shard count")
	}
	if !strings.HasSuffix(string(da), " .\n") {
		t.Error("dump does not end with an N-Triples terminator")
	}
}
