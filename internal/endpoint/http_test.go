package endpoint

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"sapphire/internal/rdf"
	"sapphire/internal/sparql"
	"sapphire/internal/store"
)

// TestHTTPPostContentTypes pins SPARQL-protocol conformance of the POST
// route: the form encoding, the direct application/sparql-query body,
// and unknown content types (read as raw query text) must all answer
// the same query identically.
func TestHTTPPostContentTypes(t *testing.T) {
	srv := httptest.NewServer(Handler(NewLocal("local", testStore(t, 5), Limits{})))
	defer srv.Close()
	const query = `SELECT ?s WHERE { ?s a <http://x/Person> . }`

	cases := []struct {
		name, contentType, body string
	}{
		{"form", "application/x-www-form-urlencoded", url.Values{"query": {query}}.Encode()},
		{"sparql-query", "application/sparql-query", query},
		{"sparql-query-charset", "application/sparql-query; charset=utf-8", query},
		{"unknown-raw", "text/plain", query},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(srv.URL, tc.contentType, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != 200 {
				b, _ := io.ReadAll(resp.Body)
				t.Fatalf("status = %d, body %s", resp.StatusCode, b)
			}
			var jr jsonResults
			if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
				t.Fatal(err)
			}
			if len(jr.Results.Bindings) != 5 {
				t.Errorf("rows = %d, want 5", len(jr.Results.Bindings))
			}
		})
	}
}

// TestHTTPBodyTooLarge pins the 413 path: a body over MaxQueryBytes is
// refused with code "too_large", never silently truncated into a
// different query. Both the raw and the form encoding are covered.
func TestHTTPBodyTooLarge(t *testing.T) {
	srv := httptest.NewServer(Handler(NewLocal("local", testStore(t, 1), Limits{})))
	defer srv.Close()

	// A valid query padded with comment bytes beyond the limit: if the
	// old LimitReader truncation were still in place, the prefix would
	// still parse and the server would answer 200.
	big := `SELECT ?s WHERE { ?s a <http://x/Person> . } #` + strings.Repeat("x", MaxQueryBytes)
	for _, tc := range []struct {
		name, contentType, body string
	}{
		{"raw", "application/sparql-query", big},
		{"form", "application/x-www-form-urlencoded", url.Values{"query": {big}}.Encode()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(http.MethodPost, srv.URL, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			req.Header.Set("Content-Type", tc.contentType)
			req.Header.Set("Accept", "application/json")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusRequestEntityTooLarge {
				t.Fatalf("status = %d, want 413", resp.StatusCode)
			}
			var env errorEnvelope
			if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
				t.Fatal(err)
			}
			if env.Error.Code != CodeTooLarge {
				t.Errorf("code = %q, want %q", env.Error.Code, CodeTooLarge)
			}
		})
	}

	// At the limit exactly: accepted.
	fits := `SELECT ?s WHERE { ?s a <http://x/Person> . } #`
	fits += strings.Repeat("x", MaxQueryBytes-len(fits))
	resp, err := http.Post(srv.URL, "application/sparql-query", strings.NewReader(fits))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("at-limit body status = %d, want 200", resp.StatusCode)
	}
}

// TestEmptyBindingRoundTrip pins that rows with no bound variables
// (OPTIONAL misses projecting only the optional var) survive the JSON
// round trip in both directions: toJSONResults emits {} rows and the
// client decode yields empty, non-dropped bindings.
func TestEmptyBindingRoundTrip(t *testing.T) {
	// Unit level: empty rows survive encode→decode.
	res := &sparql.Results{Vars: []string{"x"}, Rows: []sparql.Binding{{}, {"x": rdf.NewLiteral("v")}, {}}}
	raw, err := json.Marshal(toJSONResults(res))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"bindings":[{},`) {
		t.Fatalf("empty row not encoded as {}: %s", raw)
	}
	var jr jsonResults
	if err := json.Unmarshal(raw, &jr); err != nil {
		t.Fatal(err)
	}
	if len(jr.Results.Bindings) != 3 {
		t.Fatalf("bindings = %d, want 3", len(jr.Results.Bindings))
	}
	for v, jt := range jr.Results.Bindings[1] {
		term, err := fromJSONTerm(jt)
		if err != nil {
			t.Fatal(err)
		}
		if v != "x" || term.Value != "v" {
			t.Errorf("bound row decoded as %s=%+v", v, term)
		}
	}

	// End to end: a store where only some subjects have the OPTIONAL
	// property, projecting only the optional variable.
	s := store.New()
	typ := rdf.NewIRI(rdf.RDFType)
	cls := rdf.NewIRI("http://x/T")
	for i := 0; i < 3; i++ {
		s.MustAdd(rdf.NewTriple(rdf.NewIRI(fmt.Sprintf("http://x/t%d", i)), typ, cls))
	}
	s.MustAdd(rdf.NewTriple(rdf.NewIRI("http://x/t1"), rdf.NewIRI("http://x/name"), rdf.NewLiteral("v")))
	srv := httptest.NewServer(Handler(NewLocal("local", s, Limits{})))
	defer srv.Close()
	got, err := NewClient(srv.URL).Query(context.Background(),
		`SELECT ?n WHERE { ?s a <http://x/T> . OPTIONAL { ?s <http://x/name> ?n . } }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(got.Rows))
	}
	bound := 0
	for _, row := range got.Rows {
		if _, ok := row["n"]; ok {
			bound++
		} else if len(row) != 0 {
			t.Errorf("unbound row carries bindings: %+v", row)
		}
	}
	if bound != 1 {
		t.Errorf("bound rows = %d, want 1", bound)
	}
}

// TestHTTPErrorEnvelope pins the envelope on every HTTP error path: the
// code, the status, and the Accept-gating (non-JSON callers keep the
// plain-text bodies).
func TestHTTPErrorEnvelope(t *testing.T) {
	local := NewLocal("local", testStore(t, 100), Limits{
		MaxIntermediateRows: 10,
		RejectEstimateAbove: 150,
	})
	srv := httptest.NewServer(Handler(local))
	defer srv.Close()

	cases := []struct {
		name       string
		method     string
		query      string
		wantCode   string
		wantStatus int
	}{
		{"parse", http.MethodPost, "not sparql", CodeParse, 400},
		{"missing", http.MethodPost, "   ", CodeParse, 400},
		{"timeout", http.MethodPost,
			`SELECT ?s ?n WHERE { ?s a <http://x/Person> . ?s <http://x/name> ?n . }`,
			CodeTimeout, 503},
		{"rejected", http.MethodPost, `SELECT ?s ?p ?o WHERE { ?s ?p ?o . }`, CodeRejected, 429},
		{"method", http.MethodDelete, `SELECT ?s WHERE { ?s ?p ?o . }`, CodeMethod, 405},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, srv.URL, strings.NewReader(url.Values{"query": {tc.query}}.Encode()))
			if err != nil {
				t.Fatal(err)
			}
			req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
			req.Header.Set("Accept", "application/sparql-results+json")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d, want %d (body %s)", resp.StatusCode, tc.wantStatus, body)
			}
			if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
				t.Fatalf("Content-Type = %q, want application/json", ct)
			}
			var env errorEnvelope
			if err := json.Unmarshal(body, &env); err != nil {
				t.Fatalf("not an envelope: %s", body)
			}
			if env.Error.Code != tc.wantCode {
				t.Errorf("code = %q, want %q", env.Error.Code, tc.wantCode)
			}
			if env.Error.Message == "" {
				t.Error("empty message")
			}

			// The same request without a JSON Accept gets plain text
			// under the same status.
			req2, _ := http.NewRequest(tc.method, srv.URL, strings.NewReader(url.Values{"query": {tc.query}}.Encode()))
			req2.Header.Set("Content-Type", "application/x-www-form-urlencoded")
			resp2, err := http.DefaultClient.Do(req2)
			if err != nil {
				t.Fatal(err)
			}
			body2, _ := io.ReadAll(resp2.Body)
			resp2.Body.Close()
			if resp2.StatusCode != tc.wantStatus {
				t.Errorf("plain status = %d, want %d", resp2.StatusCode, tc.wantStatus)
			}
			if strings.HasPrefix(resp2.Header.Get("Content-Type"), "application/json") {
				t.Errorf("plain-text caller got JSON: %s", body2)
			}
		})
	}
}

// TestClientMapsEnvelopeCodes pins that Client turns every wire code
// back into its typed error — errors.Is for the sentinels, errors.As
// for the exact code — with no string matching on bodies.
func TestClientMapsEnvelopeCodes(t *testing.T) {
	local := NewLocal("local", testStore(t, 100), Limits{
		MaxIntermediateRows: 10,
		RejectEstimateAbove: 150,
	})
	srv := httptest.NewServer(Handler(local))
	defer srv.Close()
	// MaxAttempts 1: the timeout case must classify, not slow-retry.
	client := NewClient(srv.URL, WithRetryPolicy(RetryPolicy{MaxAttempts: 1}))

	cases := []struct {
		name     string
		query    string
		sentinel error
		wantCode string
	}{
		{"timeout", `SELECT ?s ?n WHERE { ?s a <http://x/Person> . ?s <http://x/name> ?n . }`, ErrTimeout, CodeTimeout},
		{"rejected", `SELECT ?s ?p ?o WHERE { ?s ?p ?o . }`, ErrRejected, CodeRejected},
		{"parse", `not sparql`, ErrParse, CodeParse},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := client.Query(context.Background(), tc.query)
			if !errors.Is(err, tc.sentinel) {
				t.Fatalf("errors.Is(%v, %v) = false", err, tc.sentinel)
			}
			var ae *APIError
			if !errors.As(err, &ae) {
				t.Fatalf("no *APIError in %v", err)
			}
			if ae.Code != tc.wantCode {
				t.Errorf("code = %q, want %q", ae.Code, tc.wantCode)
			}
		})
	}
}

// TestMuxRoutes pins the routed serving surface: /sparql serves
// queries, /epoch the decimal epoch, /healthz liveness — and the legacy
// GET /sparql?epoch probe still answers.
func TestMuxRoutes(t *testing.T) {
	st := testStore(t, 4)
	local := NewLocal("muxed", st, Limits{})
	srv := httptest.NewServer(NewMux(local))
	defer srv.Close()

	// /sparql
	resp, err := http.Get(srv.URL + "/sparql?query=" + url.QueryEscape(`SELECT ?s WHERE { ?s a <http://x/Person> . }`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/sparql status = %d", resp.StatusCode)
	}

	// /epoch and the legacy probe agree.
	wantEpoch, _ := local.Epoch(context.Background())
	for _, path := range []string{"/epoch", "/sparql?epoch"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s status = %d", path, resp.StatusCode)
		}
		if got := strings.TrimSpace(string(body)); got != fmt.Sprint(wantEpoch) {
			t.Errorf("%s = %q, want %d", path, got, wantEpoch)
		}
	}

	// /healthz
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status   string  `json:"status"`
		Endpoint string  `json:"endpoint"`
		Epoch    *uint64 `json:"epoch"`
	}
	err = json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Endpoint != "muxed" {
		t.Errorf("healthz = %+v", health)
	}
	if health.Epoch == nil || *health.Epoch != wantEpoch {
		t.Errorf("healthz epoch = %v, want %d", health.Epoch, wantEpoch)
	}

	// POST to /epoch is a method error.
	resp, err = http.Post(srv.URL+"/epoch", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Errorf("POST /epoch status = %d, want 405", resp.StatusCode)
	}
}

// countingHandler wraps a handler counting requests per path prefix.
type countingHandler struct {
	inner  http.Handler
	epochs int
	legacy int
}

func (h *countingHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/epoch" {
		h.epochs++
	}
	if r.URL.Query().Has("epoch") {
		h.legacy++
	}
	h.inner.ServeHTTP(w, r)
}

// TestClientEpochPrefersRoute pins Client.Epoch's probe order: against
// a muxed server it uses /epoch (and remembers that), against a bare
// Handler it falls back to the legacy ?epoch form — and remembers that
// too, so steady-state probing pays one request either way.
func TestClientEpochPrefersRoute(t *testing.T) {
	st := testStore(t, 2)
	local := NewLocal("local", st, Limits{})

	t.Run("routed", func(t *testing.T) {
		counter := &countingHandler{inner: NewMux(local)}
		srv := httptest.NewServer(counter)
		defer srv.Close()
		client := NewClient(srv.URL + "/sparql")
		for i := 0; i < 3; i++ {
			if _, ok := client.Epoch(context.Background()); !ok {
				t.Fatal("Epoch failed against muxed server")
			}
		}
		if counter.epochs != 3 || counter.legacy != 0 {
			t.Errorf("probes: routed=%d legacy=%d, want 3/0", counter.epochs, counter.legacy)
		}
	})

	t.Run("legacy-fallback", func(t *testing.T) {
		// Handler only (no mux): /epoch is 404, ?epoch works.
		mux := http.NewServeMux()
		mux.Handle("/sparql", Handler(local))
		counter := &countingHandler{inner: mux}
		srv := httptest.NewServer(counter)
		defer srv.Close()
		client := NewClient(srv.URL + "/sparql")
		for i := 0; i < 3; i++ {
			if _, ok := client.Epoch(context.Background()); !ok {
				t.Fatal("Epoch failed against legacy server")
			}
		}
		// First call probes /epoch once, fails, falls back; later calls
		// go straight to the legacy form.
		if counter.epochs != 1 || counter.legacy != 3 {
			t.Errorf("probes: routed=%d legacy=%d, want 1/3", counter.epochs, counter.legacy)
		}
	})
}

// TestClientOptions pins the functional options: the deprecated
// constructor still works, WithHTTPClient routes traffic through the
// injected client, and WithUserAgent tags requests.
func TestClientOptions(t *testing.T) {
	var gotUA string
	local := NewLocal("local", testStore(t, 1), Limits{})
	mux := NewMux(local)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotUA = r.Header.Get("User-Agent")
		mux.ServeHTTP(w, r)
	}))
	defer srv.Close()

	rt := &countingTransport{inner: http.DefaultTransport}
	client := NewClient(srv.URL+"/sparql",
		WithHTTPClient(&http.Client{Transport: rt}),
		WithUserAgent("sapphire-test/1"),
		WithRetryPolicy(RetryPolicy{MaxAttempts: 2}))
	if _, err := client.Query(context.Background(), `SELECT ?s WHERE { ?s a <http://x/Person> . }`); err != nil {
		t.Fatal(err)
	}
	if gotUA != "sapphire-test/1" {
		t.Errorf("User-Agent = %q", gotUA)
	}
	if rt.calls == 0 {
		t.Error("injected http.Client not used")
	}
	if client.retrier.policy.attempts() != 2 {
		t.Errorf("attempts = %d, want 2", client.retrier.policy.attempts())
	}

	// Deprecated wrapper still selects the policy.
	old := NewClientWithPolicy(srv.URL+"/sparql", RetryPolicy{MaxAttempts: 7})
	if old.retrier.policy.attempts() != 7 {
		t.Errorf("NewClientWithPolicy attempts = %d, want 7", old.retrier.policy.attempts())
	}
}

type countingTransport struct {
	inner http.RoundTripper
	calls int
}

func (t *countingTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	t.calls++
	return t.inner.RoundTrip(r)
}
