// Package sparql implements the subset of SPARQL 1.1 that Sapphire needs:
// SELECT queries with triple patterns, FILTER expressions, DISTINCT,
// aggregates (COUNT), GROUP BY, ORDER BY, LIMIT and OFFSET, and PREFIX
// declarations. This covers every query in the paper: the Ivy League
// example in Section 1, the initialization queries Q1–Q10 in Appendix A,
// and the user-study queries in Appendix B.
//
// The pipeline is lexer → parser → AST → planner → streaming operator
// pipeline. The evaluator runs against any Graph (the in-memory store,
// or a federation of endpoints) and supports a per-row budget hook so
// simulated endpoints can enforce timeouts the way real SPARQL
// endpoints do.
//
// # The streaming pipeline
//
// Eval compiles a query into a plan (plan.go): a slot layout mapping
// every pattern variable to a column of a uint32 solution row, each
// pattern group greedily reordered most-selective-first by the graph's
// exact cardinalities, and every FILTER assigned to the earliest
// pipeline stage at which its variables can no longer change. The plan
// executes as a chain of push-based operators (iter.go) — depth-first
// index-nested-loop join with inline level filters, left joins for
// OPTIONAL, ORDER BY as a bounded top-k heap or a full stable sort,
// projection, ID-keyed DISTINCT, and an OFFSET/LIMIT slice whose
// early-exit propagates back up the whole chain, for every query class.
// Rows stay dictionary IDs end to end; terms materialize only when rows
// leave the pipeline (or inside filter and order-key evaluation).
//
// All graphs run the same pipeline. An IDGraph (the in-memory store)
// scans in ID space directly; a plain Graph's term-level matches are
// interned into a query-local dictionary, so joins and DISTINCT still
// compare integers. Implementations of IDGraph must follow the store's
// ID contract:
//
//   - The zero ID is the wildcard, mirroring the zero-Term convention
//     of Match; no term ever has ID 0.
//   - IDs are dense and append-only for the life of the graph, so
//     solution rows can carry raw IDs between operators.
//   - The depth-first join issues the next level's scan from inside the
//     current level's MatchIDs callback. A ReentrantGraph (the store)
//     declares this safe by exposing PinRead/MatchIDsPinned: the
//     pipeline pins the read locks once per evaluation and scans
//     lock-free. A plain IDGraph must tolerate nested MatchIDs calls
//     outright. ResolveID is documented lock-free either way, so terms
//     can materialize mid-iteration.
//
// Remote endpoints and federations implement only Graph and take the
// localDict path transparently.
package sparql
