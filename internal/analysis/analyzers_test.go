package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

// The four contract analyzers against their golden fixtures. Each
// fixture package contains both violating lines (tagged `// want`) and
// compliant ones that must stay silent; runWant enforces the 1:1 match
// in both directions.

func TestPinLockGolden(t *testing.T)      { runWant(t, "pinlock", PinLock) }
func TestAtomicFieldGolden(t *testing.T)  { runWant(t, "atomicfield", AtomicField) }
func TestErrCodeGolden(t *testing.T)      { runWant(t, "errcode", ErrCode) }
func TestPinnedBudgetGolden(t *testing.T) { runWant(t, "pinnedbudget", PinnedBudget) }
func TestUncheckedGolden(t *testing.T)    { runWant(t, "unchecked", Unchecked) }

// TestSuppression pins the //sapphire:allow machinery on a fixture
// with three pinlock violations: one suppressed by a line-above
// comment, one by a trailing comment, and one under a reason-less
// suppression that must both fail to suppress and be reported itself.
func TestSuppression(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "src"), "suppressed")
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	diags, err := Run(pkg, []*Analyzer{PinLock})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	got := diagStrings(pkg.Fset, diags)
	if len(got) != 2 {
		t.Fatalf("want exactly 2 surviving diagnostics (unsuppressed AddAll + malformed suppression), got %d:\n%s",
			len(got), strings.Join(got, "\n"))
	}
	var sawMalformed, sawAddAll bool
	for _, s := range got {
		if strings.Contains(s, "malformed //sapphire:allow") && strings.Contains(s, "non-empty reason") {
			sawMalformed = true
		}
		if strings.Contains(s, "pinlock") && strings.Contains(s, "AddAll") {
			sawAddAll = true
		}
	}
	if !sawMalformed {
		t.Errorf("empty-reason suppression was not reported as malformed:\n%s", strings.Join(got, "\n"))
	}
	if !sawAddAll {
		t.Errorf("empty-reason suppression silently suppressed the AddAll violation:\n%s", strings.Join(got, "\n"))
	}
	for _, s := range got {
		if strings.Contains(s, "Lookup") || strings.Contains(s, "Count") {
			t.Errorf("well-formed suppression did not suppress: %s", s)
		}
	}
}
