package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// TestBenchRowsInSync pins the three places the headline benchmark set
// lives — this binary's defaultRequired, the Makefile's
// BENCH_CI_PATTERN (what bench-ci actually runs), and the checked-in
// bench_baseline.json (what the gate compares against) — to one
// another. Drift between them un-gates benchmarks silently: a family in
// defaultRequired that bench-ci never runs fails every PR, and a family
// bench-ci runs but the gate does not require can regress unnoticed.
func TestBenchRowsInSync(t *testing.T) {
	required := splitList(defaultRequired)
	sort.Strings(required)

	makefile := makefileFamilies(t)
	sort.Strings(makefile)

	if strings.Join(required, ",") != strings.Join(makefile, ",") {
		t.Errorf("defaultRequired and Makefile BENCH_CI_PATTERN disagree:\n gate: %v\n make: %v",
			required, makefile)
	}

	rows := baselineRows(t)
	// Every baseline row must belong to a required family (the baseline
	// is produced by the bench-ci pattern, so a stray row means the
	// baseline was refreshed against a different benchmark set)...
	for _, row := range rows {
		if familyOf(row, required) == "" {
			t.Errorf("bench_baseline.json row %q matches no required family", row)
		}
	}
	// ...and every required family must be backed by at least one
	// baseline row, or its gate entry is vacuous: compare mode only
	// insists on rows present in the baseline, so an empty family would
	// let the benchmark vanish without failing CI.
	for _, fam := range required {
		backed := false
		for _, row := range rows {
			if familyOf(row, []string{fam}) != "" {
				backed = true
				break
			}
		}
		if !backed {
			t.Errorf("required family %q has no row in bench_baseline.json — its gate is vacuous", fam)
		}
	}
}

// makefileFamilies extracts the alternation out of the Makefile's
// BENCH_CI_PATTERN := ^(A|B|...)$$ line.
func makefileFamilies(t *testing.T) []string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "Makefile"))
	if err != nil {
		t.Fatalf("reading Makefile: %v", err)
	}
	re := regexp.MustCompile(`(?m)^BENCH_CI_PATTERN\s*:=\s*\^\(([^)]*)\)\$\$\s*$`)
	m := re.FindSubmatch(data)
	if m == nil {
		t.Fatal("Makefile has no `BENCH_CI_PATTERN := ^(...)$$` line — the bench-ci target moved, update this test")
	}
	return strings.Split(string(m[1]), "|")
}

// baselineRows returns the benchmark names recorded in the checked-in
// baseline.
func baselineRows(t *testing.T) []string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "bench_baseline.json"))
	if err != nil {
		t.Fatalf("reading bench_baseline.json: %v", err)
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatalf("decoding bench_baseline.json: %v", err)
	}
	rows := make([]string, 0, len(f.Benchmarks))
	for name := range f.Benchmarks {
		rows = append(rows, name)
	}
	sort.Strings(rows)
	return rows
}

// familyOf returns the family a row belongs to: the row names the
// family itself or a sub-benchmark under it.
func familyOf(row string, families []string) string {
	for _, fam := range families {
		if row == fam || strings.HasPrefix(row, fam+"/") {
			return fam
		}
	}
	return ""
}
