package persist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"sapphire/internal/rdf"
	"sapphire/internal/store"
)

// Write-ahead log. One WAL file exists per snapshot generation and logs
// every mutation applied after that snapshot. Layout:
//
//	magic "SPHRWAL1"
//	records: u32 payloadLen | u32 crc32c(payload) | payload
//	payload: u8 op | body
//	  opAdd    (1): one binary triple — applied immediately on replay.
//	  opBatch  (2): u32 count | count binary triples — buffered on
//	                replay, applied only when a commit marker follows.
//	  opCommit (3): empty — applies all buffered batches atomically
//	                through the bulk loader.
//
// Replay stops at the first record that fails its length or checksum
// check and truncates the file there: a torn tail disappears, and every
// record before it is honored. Batch records without a trailing commit
// marker are discarded too — a bulk load is durable only once its
// commit marker is on disk, mirroring the in-memory staging contract.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

const (
	walMagic = "SPHRWAL1"

	opAdd    = 1
	opBatch  = 2
	opCommit = 3

	// walBatchChunk bounds triples per opBatch record so a torn batch
	// loses one record, not the whole load, and record sizes stay
	// cache-friendly.
	walBatchChunk = 4096

	// walMaxRecord rejects absurd record lengths before allocating.
	walMaxRecord = 64 << 20

	// walFlushBytes caps the user-space pending buffer of a buffered
	// WAL; appends past it flush inline so memory stays bounded even
	// if the sync timer stalls.
	walFlushBytes = 256 << 10
)

// wal is an open write-ahead log file.
type wal struct {
	f    File
	name string
	buf  []byte
	// buffered group-commits records in pending instead of issuing one
	// Write syscall per record. Only legal under FsyncInterval/FsyncOff:
	// those policies already tolerate losing the un-synced tail, and
	// the sync timer (or an explicit sync/close) flushes the buffer, so
	// the loss window is unchanged — at most the last interval. A
	// FsyncAlways WAL writes through: its records must be on disk
	// before the sync that follows each mutation.
	buffered bool
	pending  []byte
	// size tracks bytes logged (including pending), so the DB can
	// expose WAL growth.
	size int64
}

// createWAL creates (truncates) a WAL file and writes its magic.
func createWAL(fs FS, name string) (*wal, error) {
	f, err := fs.Create(name)
	if err != nil {
		return nil, fmt.Errorf("persist: creating WAL %s: %w", name, err)
	}
	w := &wal{f: f, name: name}
	if _, err := f.Write([]byte(walMagic)); err != nil {
		_ = f.Close() // error path: the write failure is the one to report
		return nil, fmt.Errorf("persist: writing WAL magic: %w", err)
	}
	w.size = int64(len(walMagic))
	return w, nil
}

// openWALAppend opens an existing WAL (already truncated to its last
// intact record) for appending.
func openWALAppend(fs FS, name string, size int64) (*wal, error) {
	f, err := fs.Append(name)
	if err != nil {
		return nil, fmt.Errorf("persist: opening WAL %s: %w", name, err)
	}
	return &wal{f: f, name: name, size: size}, nil
}

// appendRecord frames and writes one payload in a single Write call, so
// a torn write maps to exactly one incomplete record. A buffered WAL
// stages the frame in pending instead; a torn flush then spans several
// records, which replay handles the same way — truncate at the first
// bad frame.
func (w *wal) appendRecord(payload []byte) error {
	w.buf = w.buf[:0]
	w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(len(payload)))
	w.buf = binary.LittleEndian.AppendUint32(w.buf, crc32.Checksum(payload, castagnoli))
	w.buf = append(w.buf, payload...)
	if w.buffered {
		w.pending = append(w.pending, w.buf...)
		w.size += int64(len(w.buf))
		if len(w.pending) >= walFlushBytes {
			return w.flush()
		}
		return nil
	}
	n, err := w.f.Write(w.buf)
	w.size += int64(n)
	if err != nil {
		return fmt.Errorf("persist: appending WAL record: %w", err)
	}
	return nil
}

// flush hands the pending buffer to the OS. On a write error the buffer
// is dropped, not retried: a partial write already put unknown bytes in
// the file, and re-writing the whole buffer would corrupt the record
// stream where replay's truncate-at-first-bad-frame recovery handles a
// lost tail cleanly.
func (w *wal) flush() error {
	if len(w.pending) == 0 {
		return nil
	}
	_, err := w.f.Write(w.pending)
	w.pending = w.pending[:0]
	if err != nil {
		return fmt.Errorf("persist: flushing WAL buffer: %w", err)
	}
	return nil
}

func (w *wal) appendAdd(tr rdf.Triple) error {
	p := make([]byte, 0, 128)
	p = append(p, opAdd)
	p = rdf.AppendTriple(p, tr)
	return w.appendRecord(p)
}

// appendBatch logs triples as chunked opBatch records followed by one
// opCommit marker.
func (w *wal) appendBatch(triples []rdf.Triple) error {
	for len(triples) > 0 {
		n := len(triples)
		if n > walBatchChunk {
			n = walBatchChunk
		}
		p := make([]byte, 0, n*64)
		p = append(p, opBatch)
		p = binary.LittleEndian.AppendUint32(p, uint32(n))
		for _, tr := range triples[:n] {
			p = rdf.AppendTriple(p, tr)
		}
		if err := w.appendRecord(p); err != nil {
			return err
		}
		triples = triples[n:]
	}
	return w.appendRecord([]byte{opCommit})
}

func (w *wal) sync() error {
	if err := w.flush(); err != nil {
		return err
	}
	return w.f.Sync()
}

func (w *wal) close() error {
	ferr := w.flush()
	if cerr := w.f.Close(); ferr == nil {
		ferr = cerr
	}
	return ferr
}

// walReplay reports what replayWAL recovered.
type walReplay struct {
	// records is the number of applied records.
	records int
	// triples is the number of triples offered to the store (including
	// duplicates the store deduplicated).
	triples int
	// goodBytes is the file offset after the last applied record; the
	// caller truncates the file here.
	goodBytes int64
	// truncated reports whether a torn or corrupt tail was dropped.
	truncated bool
}

// replayWAL reads a WAL file and applies its committed prefix to s.
// It stops at the first torn or corrupt record. A missing or
// magic-corrupt file replays as empty (goodBytes 0 tells the caller to
// recreate it). Decoding never panics regardless of file contents.
func replayWAL(fs FS, name string, s *store.Store) (walReplay, error) {
	var rep walReplay
	data, err := readAll(fs, name)
	if err != nil {
		return rep, fmt.Errorf("persist: reading WAL %s: %w", name, err)
	}
	if len(data) < len(walMagic) || string(data[:len(walMagic)]) != walMagic {
		rep.truncated = len(data) > 0
		return rep, nil
	}
	off := int64(len(walMagic))
	rep.goodBytes = off

	// Batches buffer through a dedicated loader and only reach the
	// store when their commit marker proves they were fully logged.
	bl := store.NewBulkLoader(s)
	bl.SetAutoCommitThreshold(0)
	pendingBytes := off // start of the oldest unapplied batch record

	for int64(len(data))-off >= 8 {
		plen := int64(binary.LittleEndian.Uint32(data[off:]))
		wantCRC := binary.LittleEndian.Uint32(data[off+4:])
		if plen == 0 || plen > walMaxRecord || plen > int64(len(data))-off-8 {
			break
		}
		payload := data[off+8 : off+8+plen]
		if crc32.Checksum(payload, castagnoli) != wantCRC {
			break
		}
		ok := true
		switch payload[0] {
		case opAdd:
			tr, n, err := rdf.DecodeTriple(payload[1:])
			if err != nil || int64(n) != plen-1 {
				ok = false
				break
			}
			if _, err := s.Add(tr); err != nil {
				ok = false
				break
			}
			rep.triples++
		case opBatch:
			if plen < 5 {
				ok = false
				break
			}
			count := int(binary.LittleEndian.Uint32(payload[1:]))
			body := payload[5:]
			if count > walBatchChunk {
				ok = false
				break
			}
			for i := 0; i < count && ok; i++ {
				tr, n, err := rdf.DecodeTriple(body)
				if err != nil || bl.Add(tr) != nil {
					ok = false
					break
				}
				body = body[n:]
			}
			if len(body) != 0 {
				ok = false
			}
		case opCommit:
			if plen != 1 {
				ok = false
				break
			}
			rep.triples += bl.Commit()
			pendingBytes = off + 8 + plen
		default:
			ok = false
		}
		if !ok {
			break
		}
		rep.records++
		off += 8 + plen
		if payload[0] != opBatch {
			pendingBytes = off
		}
	}

	// goodBytes excludes both the corrupt tail and any batch records
	// whose commit marker never made it to disk.
	rep.goodBytes = pendingBytes
	rep.truncated = rep.goodBytes != int64(len(data))
	return rep, nil
}
