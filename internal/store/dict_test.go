package store

import (
	"testing"

	"sapphire/internal/rdf"
)

func TestLookupResolveRoundTrip(t *testing.T) {
	s := buildSample(t)
	for _, term := range []rdf.Term{
		iri("alice"), iri("knows"), iri("bob"), lit("Alice"),
		rdf.NewTypedLiteral("30", rdf.XSDInteger),
	} {
		id, ok := s.Lookup(term)
		if !ok {
			t.Fatalf("Lookup(%v) not found", term)
		}
		if id == Wildcard {
			t.Fatalf("Lookup(%v) returned the Wildcard ID", term)
		}
		if got := s.ResolveID(id); got != term {
			t.Errorf("ResolveID(Lookup(%v)) = %v", term, got)
		}
	}
}

func TestLookupMissing(t *testing.T) {
	s := buildSample(t)
	if id, ok := s.Lookup(iri("nobody")); ok {
		t.Errorf("Lookup of absent term = (%d, true)", id)
	}
	if got := s.ResolveID(Wildcard); !got.IsZero() {
		t.Errorf("ResolveID(Wildcard) = %v, want zero", got)
	}
	if got := s.ResolveID(1 << 30); !got.IsZero() {
		t.Errorf("ResolveID(out of range) = %v, want zero", got)
	}
}

func TestLookupDoesNotIntern(t *testing.T) {
	s := buildSample(t)
	if _, ok := s.Lookup(iri("ghost")); ok {
		t.Fatal("ghost present before lookup")
	}
	if _, ok := s.Lookup(iri("ghost")); ok {
		t.Error("Lookup interned the term")
	}
}

// TestMatchIDsAgainstMatch cross-checks the ID-level match against the
// Term-level one for every pattern shape.
func TestMatchIDsAgainstMatch(t *testing.T) {
	s := buildSample(t)
	var z rdf.Term
	patterns := [][3]rdf.Term{
		{z, z, z},
		{iri("alice"), z, z},
		{z, iri("knows"), z},
		{z, z, iri("carol")},
		{iri("alice"), iri("knows"), z},
		{iri("alice"), z, iri("bob")},
		{z, iri("knows"), iri("carol")},
		{iri("alice"), iri("knows"), iri("bob")},
	}
	for _, pat := range patterns {
		want := s.MatchSlice(pat[0], pat[1], pat[2])
		si, pi, oi, ok := s.patternIDs(pat[0], pat[1], pat[2])
		if !ok {
			t.Fatalf("patternIDs(%v) not resolvable", pat)
		}
		var got []rdf.Triple
		s.MatchIDs(si, pi, oi, func(a, b, c ID) bool {
			got = append(got, rdf.Triple{S: s.ResolveID(a), P: s.ResolveID(b), O: s.ResolveID(c)})
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("pattern %v: MatchIDs %d results, Match %d", pat, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("pattern %v: result %d = %v, want %v (order must agree)", pat, i, got[i], want[i])
			}
		}
	}
}

func TestCountIDs(t *testing.T) {
	s := buildSample(t)
	knows, _ := s.Lookup(iri("knows"))
	alice, _ := s.Lookup(iri("alice"))
	bob, _ := s.Lookup(iri("bob"))
	cases := []struct {
		s, p, o ID
		want    int
	}{
		{alice, knows, bob, 1},
		{alice, knows, Wildcard, 2},
		{alice, Wildcard, Wildcard, 3},
		{alice, Wildcard, bob, 1},
		{Wildcard, knows, Wildcard, 3},
		{Wildcard, Wildcard, bob, 1},
		{Wildcard, Wildcard, Wildcard, 7},
		{bob, knows, bob, 0},
	}
	for _, tc := range cases {
		if got := s.CountIDs(tc.s, tc.p, tc.o); got != tc.want {
			t.Errorf("CountIDs(%d,%d,%d) = %d, want %d", tc.s, tc.p, tc.o, got, tc.want)
		}
		if got := s.CardinalityEstimateIDs(tc.s, tc.p, tc.o); got != tc.want {
			t.Errorf("CardinalityEstimateIDs(%d,%d,%d) = %d, want %d", tc.s, tc.p, tc.o, got, tc.want)
		}
	}
}

// TestCountMatchesMatchExactly pins the Count/CardinalityEstimate shared
// implementation to the Match semantics on a randomized graph.
func TestCountMatchesMatchExactly(t *testing.T) {
	s := buildSample(t)
	var z rdf.Term
	patterns := [][3]rdf.Term{
		{z, z, z},
		{iri("alice"), z, z},
		{z, iri("name"), z},
		{z, z, lit("Carol")},
		{iri("bob"), iri("name"), z},
		{iri("carol"), z, lit("Carol")},
		{z, iri("name"), lit("Bob")},
		{iri("alice"), iri("knows"), iri("carol")},
		{iri("nobody"), z, z},
	}
	for _, pat := range patterns {
		want := len(s.MatchSlice(pat[0], pat[1], pat[2]))
		if got := s.Count(pat[0], pat[1], pat[2]); got != want {
			t.Errorf("Count(%v) = %d, want %d", pat, got, want)
		}
		if got := s.CardinalityEstimate(pat[0], pat[1], pat[2]); got != want {
			t.Errorf("CardinalityEstimate(%v) = %d, want %d", pat, got, want)
		}
	}
}

// TestSortedKeyInvariant checks that the incrementally maintained key
// slices stay term-sorted under adversarial insertion orders.
func TestSortedKeyInvariant(t *testing.T) {
	s := New()
	// Insert in reverse lexical order to stress the insertion sort.
	for i := 25; i >= 0; i-- {
		c := string(rune('a' + i))
		s.MustAdd(tri(iri("s"+c), iri("p"+c), lit("o"+c)))
	}
	checkSorted := func(name string, terms []rdf.Term) {
		for i := 1; i < len(terms); i++ {
			if terms[i-1].Compare(terms[i]) >= 0 {
				t.Fatalf("%s not sorted at %d: %v >= %v", name, i, terms[i-1], terms[i])
			}
		}
	}
	checkSorted("Subjects", s.Subjects())
	checkSorted("Predicates", s.Predicates())
	s.rlockAll()
	defer s.runlockAll()
	for _, sh := range s.shards {
		for _, x := range []struct {
			name string
			idx  index
		}{{"spo", sh.spo}, {"pos", sh.pos}, {"osp", sh.osp}} {
			checkSorted(x.name+" level-1", s.resolveAll(x.idx.keys))
			if len(x.idx.keys) != len(x.idx.m) {
				t.Fatalf("%s level-1: %d keys vs %d map slots",
					x.name, len(x.idx.keys), len(x.idx.m))
			}
			for id, e := range x.idx.m {
				checkSorted(x.name+" level-2", s.resolveAll(e.keys))
				if len(e.keys) != len(e.lists) || len(e.keys) != len(e.m) {
					t.Fatalf("%s entry %d: %d keys vs %d lists vs %d map slots",
						x.name, id, len(e.keys), len(e.lists), len(e.m))
				}
				for i, b := range e.keys {
					if e.lists[i] != e.m[b] {
						t.Fatalf("%s entry %d: lists[%d] does not back keys[%d]", x.name, id, i, i)
					}
				}
				if x.idx.sortedInner {
					for b, lst := range e.m {
						checkSorted(x.name+" innermost", s.resolveAll(*lst))
						_ = b
					}
				}
			}
		}
	}
}
