package rdf

import (
	"fmt"
	"io"
	"strings"
	"unicode"
)

// ParseTurtle reads a Turtle document: @prefix declarations, prefixed
// names, the 'a' shorthand for rdf:type, predicate lists (';'), object
// lists (','), and the literal forms of N-Triples plus bare integers,
// decimals, and booleans. This is the subset real-world dataset dumps
// use; blank-node property lists and collections are not supported.
func ParseTurtle(r io.Reader) ([]Triple, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	p := &turtleParser{src: string(data), prefixes: map[string]string{}}
	return p.parse()
}

type turtleParser struct {
	src      string
	i        int
	prefixes map[string]string
	out      []Triple
}

func (p *turtleParser) errf(format string, args ...any) error {
	line := 1 + strings.Count(p.src[:min(p.i, len(p.src))], "\n")
	return fmt.Errorf("turtle: line %d: %s", line, fmt.Sprintf(format, args...))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func (p *turtleParser) parse() ([]Triple, error) {
	for {
		p.skipWS()
		if p.done() {
			return p.out, nil
		}
		if p.peekWord("@prefix") || p.peekWord("PREFIX") {
			if err := p.prefixDecl(); err != nil {
				return nil, err
			}
			continue
		}
		if p.peekWord("@base") || p.peekWord("BASE") {
			return nil, p.errf("@base is not supported; use absolute IRIs")
		}
		if err := p.triples(); err != nil {
			return nil, err
		}
	}
}

func (p *turtleParser) done() bool { return p.i >= len(p.src) }

func (p *turtleParser) skipWS() {
	for !p.done() {
		c := p.src[p.i]
		if c == '#' {
			for !p.done() && p.src[p.i] != '\n' {
				p.i++
			}
			continue
		}
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			p.i++
			continue
		}
		return
	}
}

func (p *turtleParser) peekWord(w string) bool {
	return strings.HasPrefix(p.src[p.i:], w)
}

func (p *turtleParser) prefixDecl() error {
	if p.peekWord("@prefix") {
		p.i += len("@prefix")
	} else {
		p.i += len("PREFIX")
	}
	p.skipWS()
	// label:
	start := p.i
	for !p.done() && p.src[p.i] != ':' {
		p.i++
	}
	if p.done() {
		return p.errf("malformed prefix declaration")
	}
	label := strings.TrimSpace(p.src[start:p.i])
	p.i++ // ':'
	p.skipWS()
	iri, err := p.iriRef()
	if err != nil {
		return err
	}
	p.prefixes[label] = iri.Value
	p.skipWS()
	if !p.done() && p.src[p.i] == '.' {
		p.i++
	}
	return nil
}

// triples parses: subject predicateObjectList '.'
func (p *turtleParser) triples() error {
	subj, err := p.term(false)
	if err != nil {
		return err
	}
	for {
		p.skipWS()
		var pred Term
		if !p.done() && p.src[p.i] == 'a' && p.i+1 < len(p.src) && isTurtleWS(p.src[p.i+1]) {
			p.i++
			pred = NewIRI(RDFType)
		} else {
			pred, err = p.term(false)
			if err != nil {
				return err
			}
			if !pred.IsIRI() {
				return p.errf("predicate must be an IRI, got %s", pred)
			}
		}
		// objectList
		for {
			p.skipWS()
			obj, err := p.term(true)
			if err != nil {
				return err
			}
			tr := Triple{S: subj, P: pred, O: obj}
			if !tr.Valid() {
				return p.errf("invalid triple %s", tr)
			}
			p.out = append(p.out, tr)
			p.skipWS()
			if !p.done() && p.src[p.i] == ',' {
				p.i++
				continue
			}
			break
		}
		p.skipWS()
		if !p.done() && p.src[p.i] == ';' {
			p.i++
			p.skipWS()
			// Tolerate dangling ';' before '.'.
			if !p.done() && p.src[p.i] == '.' {
				p.i++
				return nil
			}
			continue
		}
		if !p.done() && p.src[p.i] == '.' {
			p.i++
			return nil
		}
		return p.errf("expected ';', ',' or '.' after object")
	}
}

func isTurtleWS(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r'
}

// term parses an IRI, prefixed name, blank node, or (when allowLiteral)
// a literal.
func (p *turtleParser) term(allowLiteral bool) (Term, error) {
	p.skipWS()
	if p.done() {
		return Term{}, p.errf("unexpected end of input")
	}
	c := p.src[p.i]
	switch {
	case c == '<':
		return p.iriRef()
	case c == '_':
		return p.blankNode()
	case c == '"' || c == '\'':
		if !allowLiteral {
			return Term{}, p.errf("literal not allowed here")
		}
		return p.literal()
	case allowLiteral && (c == '+' || c == '-' || c >= '0' && c <= '9'):
		return p.numericLiteral()
	case allowLiteral && (p.peekWord("true") || p.peekWord("false")):
		return p.booleanLiteral()
	default:
		return p.prefixedName()
	}
}

func (p *turtleParser) iriRef() (Term, error) {
	if p.src[p.i] != '<' {
		return Term{}, p.errf("expected '<'")
	}
	p.i++
	j := strings.IndexByte(p.src[p.i:], '>')
	if j < 0 {
		return Term{}, p.errf("unterminated IRI")
	}
	iri := p.src[p.i : p.i+j]
	p.i += j + 1
	if iri == "" {
		return Term{}, p.errf("empty IRI")
	}
	return NewIRI(iri), nil
}

func (p *turtleParser) blankNode() (Term, error) {
	if !strings.HasPrefix(p.src[p.i:], "_:") {
		return Term{}, p.errf("malformed blank node")
	}
	p.i += 2
	start := p.i
	for !p.done() && (isNameChar(rune(p.src[p.i]))) {
		p.i++
	}
	label := p.src[start:p.i]
	if label == "" {
		return Term{}, p.errf("empty blank node label")
	}
	return NewBlank(label), nil
}

func isNameChar(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-'
}

func (p *turtleParser) prefixedName() (Term, error) {
	start := p.i
	for !p.done() && p.src[p.i] != ':' && !isTurtleWS(p.src[p.i]) {
		p.i++
	}
	if p.done() || p.src[p.i] != ':' {
		return Term{}, p.errf("expected prefixed name near %q", p.src[start:min(start+12, len(p.src))])
	}
	label := p.src[start:p.i]
	p.i++ // ':'
	localStart := p.i
	for !p.done() {
		r := rune(p.src[p.i])
		if isNameChar(r) {
			p.i++
			continue
		}
		// Dots are allowed inside local names, not at the end.
		if r == '.' && p.i+1 < len(p.src) && isNameChar(rune(p.src[p.i+1])) {
			p.i++
			continue
		}
		break
	}
	local := p.src[localStart:p.i]
	ns, ok := p.prefixes[label]
	if !ok {
		return Term{}, p.errf("undefined prefix %q", label)
	}
	return NewIRI(ns + local), nil
}

func (p *turtleParser) literal() (Term, error) {
	quote := p.src[p.i]
	p.i++
	var b strings.Builder
	for {
		if p.done() {
			return Term{}, p.errf("unterminated literal")
		}
		c := p.src[p.i]
		if c == quote {
			p.i++
			break
		}
		if c == '\\' {
			p.i++
			if p.done() {
				return Term{}, p.errf("dangling escape")
			}
			switch p.src[p.i] {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case '"':
				b.WriteByte('"')
			case '\'':
				b.WriteByte('\'')
			case '\\':
				b.WriteByte('\\')
			default:
				return Term{}, p.errf("unsupported escape \\%c", p.src[p.i])
			}
			p.i++
			continue
		}
		b.WriteByte(c)
		p.i++
	}
	lex := b.String()
	if !p.done() && p.src[p.i] == '@' {
		p.i++
		start := p.i
		for !p.done() && (isNameChar(rune(p.src[p.i]))) {
			p.i++
		}
		lang := p.src[start:p.i]
		if lang == "" {
			return Term{}, p.errf("empty language tag")
		}
		return NewLangLiteral(lex, lang), nil
	}
	if strings.HasPrefix(p.src[p.i:], "^^") {
		p.i += 2
		p.skipWS()
		var dt Term
		var err error
		if !p.done() && p.src[p.i] == '<' {
			dt, err = p.iriRef()
		} else {
			dt, err = p.prefixedName()
		}
		if err != nil {
			return Term{}, err
		}
		return NewTypedLiteral(lex, dt.Value), nil
	}
	return NewLiteral(lex), nil
}

func (p *turtleParser) numericLiteral() (Term, error) {
	start := p.i
	if p.src[p.i] == '+' || p.src[p.i] == '-' {
		p.i++
	}
	seenDot := false
	for !p.done() {
		c := p.src[p.i]
		if c >= '0' && c <= '9' {
			p.i++
			continue
		}
		if c == '.' && !seenDot && p.i+1 < len(p.src) && p.src[p.i+1] >= '0' && p.src[p.i+1] <= '9' {
			seenDot = true
			p.i++
			continue
		}
		break
	}
	lex := p.src[start:p.i]
	if lex == "" || lex == "+" || lex == "-" {
		return Term{}, p.errf("malformed number")
	}
	if seenDot {
		return NewTypedLiteral(lex, XSDDouble), nil
	}
	return NewTypedLiteral(lex, XSDInteger), nil
}

func (p *turtleParser) booleanLiteral() (Term, error) {
	if p.peekWord("true") {
		p.i += 4
		return NewTypedLiteral("true", XSDBoolean), nil
	}
	p.i += 5
	return NewTypedLiteral("false", XSDBoolean), nil
}
