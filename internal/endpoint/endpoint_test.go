package endpoint

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"sapphire/internal/rdf"
	"sapphire/internal/store"
)

func testStore(t testing.TB, n int) *store.Store {
	t.Helper()
	s := store.New()
	typ := rdf.NewIRI(rdf.RDFType)
	person := rdf.NewIRI("http://x/Person")
	for i := 0; i < n; i++ {
		subj := rdf.NewIRI(fmt.Sprintf("http://x/p%d", i))
		s.MustAdd(rdf.NewTriple(subj, typ, person))
		s.MustAdd(rdf.NewTriple(subj, rdf.NewIRI("http://x/name"),
			rdf.NewLangLiteral(fmt.Sprintf("Person %d", i), "en")))
	}
	return s
}

func TestLocalQueryBasic(t *testing.T) {
	ep := NewLocal("test", testStore(t, 10), Limits{})
	res, err := ep.Query(context.Background(), `SELECT ?s WHERE { ?s a <http://x/Person> . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Errorf("rows = %d, want 10", len(res.Rows))
	}
	st := ep.Stats()
	if st.Queries != 1 || st.Rows != 10 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLocalParseError(t *testing.T) {
	ep := NewLocal("test", testStore(t, 1), Limits{})
	if _, err := ep.Query(context.Background(), "garbage"); err == nil {
		t.Error("expected parse error")
	}
}

func TestLocalTimeoutBudget(t *testing.T) {
	ep := NewLocal("test", testStore(t, 100), Limits{MaxIntermediateRows: 20})
	// A join query pays full price per intermediate row and exceeds the
	// budget on this store (100 + 100 rows).
	_, err := ep.Query(context.Background(),
		`SELECT ?s ?n WHERE { ?s a <http://x/Person> . ?s <http://x/name> ?n . }`)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if ep.Stats().Timeouts != 1 {
		t.Errorf("timeouts = %d", ep.Stats().Timeouts)
	}
	// A narrow query stays under the budget.
	if _, err := ep.Query(context.Background(),
		`SELECT ?n WHERE { <http://x/p5> <http://x/name> ?n . }`); err != nil {
		t.Errorf("narrow query failed: %v", err)
	}
}

func TestLocalPaginationAvoidsTimeout(t *testing.T) {
	// The Section 5 scenario: the full scan times out, but OFFSET/LIMIT
	// pages fit the budget. Pagination applies after evaluation in our
	// engine, so the budget must be on final rows for this test; the
	// narrow per-class queries below model the hierarchy descent instead.
	ep := NewLocal("test", testStore(t, 50), Limits{MaxIntermediateRows: 2})
	// Even discounted, the full sweep (100 triples → 4 effective rows)
	// exceeds a budget of 2.
	_, err := ep.Query(context.Background(), `SELECT ?s ?p ?o WHERE { ?s ?p ?o . }`)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("full scan should time out, got %v", err)
	}
	res, err := ep.Query(context.Background(),
		`SELECT ?n WHERE { ?s <http://x/name> ?n . } LIMIT 10`)
	if err != nil {
		t.Fatalf("typed page query failed: %v", err)
	}
	if len(res.Rows) != 10 {
		t.Errorf("page rows = %d", len(res.Rows))
	}
}

func TestLocalRejection(t *testing.T) {
	ep := NewLocal("test", testStore(t, 100), Limits{RejectEstimateAbove: 50})
	_, err := ep.Query(context.Background(), `SELECT ?s ?p ?o WHERE { ?s ?p ?o . }`)
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v, want ErrRejected", err)
	}
	if ep.Stats().Rejected != 1 {
		t.Errorf("rejected = %d", ep.Stats().Rejected)
	}
}

func TestLocalContextCancel(t *testing.T) {
	ep := NewLocal("test", testStore(t, 5), Limits{Latency: 50 * time.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ep.Query(ctx, `SELECT ?s WHERE { ?s a <http://x/Person> . }`)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestLocalLatency(t *testing.T) {
	ep := NewLocal("test", testStore(t, 1), Limits{Latency: 30 * time.Millisecond})
	start := time.Now()
	if _, err := ep.Query(context.Background(), `SELECT ?s WHERE { ?s a <http://x/Person> . }`); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Errorf("latency not applied: %v", d)
	}
}

func TestResetStats(t *testing.T) {
	ep := NewLocal("test", testStore(t, 1), Limits{})
	_, _ = ep.Query(context.Background(), `SELECT ?s WHERE { ?s a <http://x/Person> . }`)
	ep.ResetStats()
	if st := ep.Stats(); st.Queries != 0 || st.Rows != 0 {
		t.Errorf("stats after reset = %+v", st)
	}
}

func TestHTTPRoundTrip(t *testing.T) {
	local := NewLocal("local", testStore(t, 7), Limits{})
	srv := httptest.NewServer(Handler(local))
	defer srv.Close()

	client := NewClient(srv.URL)
	if client.Name() != srv.URL {
		t.Errorf("Name = %q", client.Name())
	}
	res, err := client.Query(context.Background(),
		`SELECT ?s ?n WHERE { ?s <http://x/name> ?n . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(res.Rows))
	}
	// Terms must survive the JSON round trip with kind and lang intact.
	for _, row := range res.Rows {
		if !row["s"].IsIRI() {
			t.Errorf("s = %+v, want IRI", row["s"])
		}
		if row["n"].Lang != "en" {
			t.Errorf("n = %+v, want lang en", row["n"])
		}
	}
}

func TestHTTPErrorMapping(t *testing.T) {
	local := NewLocal("local", testStore(t, 100), Limits{MaxIntermediateRows: 10})
	srv := httptest.NewServer(Handler(local))
	defer srv.Close()
	client := NewClient(srv.URL)

	_, err := client.Query(context.Background(),
		`SELECT ?s ?n WHERE { ?s a <http://x/Person> . ?s <http://x/name> ?n . }`)
	if !errors.Is(err, ErrTimeout) {
		t.Errorf("timeout not propagated over HTTP: %v", err)
	}
	_, err = client.Query(context.Background(), `not sparql`)
	if err == nil || errors.Is(err, ErrTimeout) {
		t.Errorf("parse error mapping wrong: %v", err)
	}
}

func TestHTTPRejectionMapping(t *testing.T) {
	local := NewLocal("local", testStore(t, 100), Limits{RejectEstimateAbove: 5})
	srv := httptest.NewServer(Handler(local))
	defer srv.Close()
	client := NewClient(srv.URL)
	_, err := client.Query(context.Background(), `SELECT ?s ?p ?o WHERE { ?s ?p ?o . }`)
	if !errors.Is(err, ErrRejected) {
		t.Errorf("rejection not propagated: %v", err)
	}
}

func TestHTTPGetAndMissingQuery(t *testing.T) {
	local := NewLocal("local", testStore(t, 3), Limits{})
	srv := httptest.NewServer(Handler(local))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "?query=" + "SELECT%20%3Fs%20WHERE%20%7B%20%3Fs%20a%20%3Chttp%3A%2F%2Fx%2FPerson%3E%20.%20%7D")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("GET status = %d", resp.StatusCode)
	}
	resp, err = srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("missing query status = %d", resp.StatusCode)
	}
}

func TestHTTPTypedLiteralRoundTrip(t *testing.T) {
	s := store.New()
	s.MustAdd(rdf.NewTriple(rdf.NewIRI("http://x/a"), rdf.NewIRI("http://x/age"),
		rdf.NewTypedLiteral("42", rdf.XSDInteger)))
	srv := httptest.NewServer(Handler(NewLocal("l", s, Limits{})))
	defer srv.Close()
	res, err := NewClient(srv.URL).Query(context.Background(),
		`SELECT ?v WHERE { <http://x/a> <http://x/age> ?v . }`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0]["v"]; got.Datatype != rdf.XSDInteger || got.Value != "42" {
		t.Errorf("typed literal = %+v", got)
	}
}
