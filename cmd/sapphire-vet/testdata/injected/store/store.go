// Package store is the same miniature stand-in for
// sapphire/internal/store the analyzer golden tests use, here so the
// injected-violation module compiles on its own.
package store

// Triple mirrors rdf.Triple just enough for signatures.
type Triple struct{ S, P, O string }

// Store mirrors the locking surface of the real store.Store.
type Store struct{}

func (s *Store) Lookup(t string) (uint32, bool) { return 0, false }

func (s *Store) Match(sub, pred, obj string, fn func(Triple) bool) {}

func (s *Store) MatchIDs(sub, pred, obj uint32, fn func(s, p, o uint32) bool) {}

func (s *Store) ResolveID(id uint32) string { return "" }

func (s *Store) PinRead() (release func()) { return func() {} }
