// Package store implements the in-memory triple store that backs Sapphire's
// simulated SPARQL endpoints. It maintains SPO, POS, and OSP hash indexes
// so that every triple-pattern shape resolves through an index rather than
// a full scan, and exposes the dataset statistics (predicate frequencies,
// literal counts, incoming-edge counts) that the paper's initialization
// queries (Appendix A, Q1–Q10) aggregate over.
//
// # Dictionary encoding
//
// Terms are interned into a two-way dictionary (see dict.go): each
// distinct rdf.Term maps to a uint32 ID, and all three indexes are
// nested ID maps rather than maps keyed by the 4-field Term struct. The
// dedup set is map[[3]uint32]struct{}. This shrinks the per-triple
// footprint, turns every index probe into an integer hash, and makes
// triple materialization a chunk probe.
//
// The dictionary itself is partitioned by term hash into independent
// shards (NewShardedDict picks the count; DefaultDictShards otherwise),
// so interning distinct terms contends per shard, not globally. IDs are
// still allocated from one global space — each dictionary shard claims
// ranges of idRangeSize consecutive IDs from a shared counter — and the
// ID→term direction is a chunked spine published through an atomic
// pointer, so ResolveID stays a lock-free probe. The dictionary also
// maintains a background-built per-ID order statistic (rank.go): labels
// whose numeric order equals term order, letting the cross-shard merge
// compare most keys with one integer compare.
//
// # Sharding
//
// The store is horizontally partitioned into N shards (New defaults N to
// GOMAXPROCS via DefaultShards; NewSharded pins it; the serving commands
// expose -shards). A triple lives in exactly one shard, chosen by a
// multiplicative hash of its subject ID; each shard owns its own three
// index permutations, RWMutex, dedup set, and mutation epoch, while the
// dictionary stays global (append-only, own lock, lock-free resolution).
// There is no store-wide lock of any kind:
//
//   - Subject-bound reads and single-triple writes touch one shard.
//   - Wildcard-subject reads take every shard's read lock (fixed order)
//     and merge the per-shard streams in term-sorted order. Subjects are
//     partitioned, so subject-level streams are disjoint sorted runs; the
//     POS permutation additionally keeps its innermost (subject) lists
//     term-sorted so (?s P O) and (?s P ?o) merge the same way. The
//     result: iteration order is byte-identical for every shard count
//     (pinned by TestShardEquivalence).
//   - BulkLoader.Commit partitions the batch by subject shard and
//     commits shard by shard, so a large load stalls readers of any one
//     shard for ~1/N of the build and readers of untouched shards not at
//     all (BenchmarkCommitReadStall measures it). The cost: on a
//     multi-shard store a commit is atomic per shard, not per batch — a
//     concurrent wildcard reader can observe a batch prefix. Callers
//     needing strict whole-batch visibility use NewSharded(1), which
//     behaves exactly like the pre-sharding store.
//
// Store.Epoch is the sum of per-shard epochs: it still moves iff the
// triple set changed, so the endpoint result cache and federation
// invalidation work unchanged (a multi-shard commit may advance it once
// per touched shard rather than once per batch).
//
// # ID-level API contract
//
// Hot consumers (the SPARQL evaluator's join loop, the endpoint cost
// model) can stay in ID space and skip Term hashing and materialization
// entirely:
//
//	id, ok := st.Lookup(term)          // term → ID, no interning
//	term := st.ResolveID(id)           // ID → term, O(1), lock-free
//	st.MatchIDs(s, p, o, fn)           // pattern match over IDs
//	st.CountIDs(s, p, o)               // exact count, O(shards) for all shapes
//	st.CardinalityEstimateIDs(s, p, o) // same, for cost models
//
// The contract every consumer (and every future index) must respect:
//
//   - Wildcard == 0. The zero ID is never assigned to a term; MatchIDs
//     and CountIDs treat it the way Match treats a zero rdf.Term. A
//     lookup that fails must not be conflated with a wildcard.
//   - IDs are append-only: assigned from 1 upward, never reused, never
//     remapped. An ID observed once remains valid for the life of the
//     store, so IDs can be cached across queries. Since the dictionary
//     was sharded IDs are no longer strictly first-seen dense — each
//     dictionary shard assigns from its claimed range, leaving at most
//     one partially used range of holes per shard — and nothing may
//     assume ID order relates to term or arrival order. The converse
//     does not hold either: an ID (and a successful Lookup) may exist
//     for a term whose triples are still staged in a BulkLoader, or
//     were never committed at all — pattern matches and counts for
//     such a term are simply empty.
//   - Match/MatchIDs callbacks run under shard read locks (one shard
//     for subject-bound patterns, all shards for wildcard-subject
//     ones). They must not mutate the store and must not call locking
//     accessors (Lookup, Count, ...); once a writer queues on a shard's
//     RWMutex, a nested RLock deadlocks. ResolveID is the exception: it
//     reads the atomically published ID→term chunk spine and never
//     takes a lock, precisely so callbacks can resolve terms
//     mid-iteration.
//
// # Bulk loading
//
// Add keeps the sorted-key invariant with a binary-search insertion —
// an O(n) memmove per new key, fine online, quadratic-ish for loading
// datasets. BulkLoader (bulk.go) is the staged path: Add/AddAll intern
// and buffer packed ID triples without taking any store-shard lock
// (AddAll interns in chunks, acquiring each dictionary shard at most
// once per chunk), Commit builds each shard's indexes for the batch
// grouped by key and sorts each touched key slice exactly once, under
// that shard's write lock. Store.AddAll routes through it
// automatically.
package store
