package suffixtree

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSearchBasic(t *testing.T) {
	tr := New([]string{"New York", "New Jersey", "York Minster", "Boston"})
	got := tr.Search("York", 0)
	want := []string{"New York", "York Minster"}
	if !matchValuesEqual(got, want) {
		t.Errorf("Search(York) = %v, want %v", got, want)
	}
	if tr.Contains("Boston") != true {
		t.Error("Contains(Boston) = false")
	}
	if tr.Contains("Chicago") {
		t.Error("Contains(Chicago) = true")
	}
}

func matchValuesEqual(got []Match, want []string) bool {
	vals := make([]string, len(got))
	for i, m := range got {
		vals[i] = m.Value
	}
	sort.Strings(vals)
	w := append([]string(nil), want...)
	sort.Strings(w)
	if len(vals) != len(w) {
		return false
	}
	for i := range vals {
		if vals[i] != w[i] {
			return false
		}
	}
	return true
}

func TestSearchSubstringAnywhere(t *testing.T) {
	tr := New([]string{"abcdef", "xxabyy", "zzzab"})
	got := tr.Search("ab", 0)
	if !matchValuesEqual(got, []string{"abcdef", "xxabyy", "zzzab"}) {
		t.Errorf("Search(ab) = %v", got)
	}
}

func TestSearchSuffixOverlapAcrossStrings(t *testing.T) {
	// The regression the unique final mark fixes: a later string that is
	// a substring/suffix of an earlier one must still be found.
	tr := New([]string{"ab", "b"})
	got := tr.Search("b", 0)
	if !matchValuesEqual(got, []string{"ab", "b"}) {
		t.Errorf("Search(b) = %v, want both strings", got)
	}
}

func TestSearchLimit(t *testing.T) {
	strs := make([]string, 50)
	for i := range strs {
		strs[i] = fmt.Sprintf("common-%02d", i)
	}
	tr := New(strs)
	got := tr.Search("common", 10)
	if len(got) != 10 {
		t.Errorf("limit 10 returned %d", len(got))
	}
	all := tr.Search("common", 0)
	if len(all) != 50 {
		t.Errorf("unlimited returned %d, want 50", len(all))
	}
}

func TestSearchEmptyAndMissing(t *testing.T) {
	tr := New([]string{"abc"})
	if got := tr.Search("", 0); got != nil {
		t.Errorf("empty pattern = %v", got)
	}
	if got := tr.Search("zzz", 0); got != nil {
		t.Errorf("missing pattern = %v", got)
	}
	if got := tr.Search("abcd", 0); got != nil {
		t.Errorf("overlong pattern = %v", got)
	}
	empty := New(nil)
	if got := empty.Search("a", 0); got != nil {
		t.Errorf("empty tree = %v", got)
	}
}

func TestDuplicatesAndSkips(t *testing.T) {
	tr := New([]string{"dup", "dup", "", "ok", "bad\x00sep"})
	if tr.Strings() != 2 {
		t.Errorf("Strings = %d, want 2 (dup, ok)", tr.Strings())
	}
	if got := tr.Search("dup", 0); len(got) != 1 {
		t.Errorf("Search(dup) = %v", got)
	}
}

func TestUnicode(t *testing.T) {
	tr := New([]string{"Zürich", "München", "ZüZü"})
	if got := tr.Search("ü", 0); len(got) != 3 {
		t.Errorf("Search(ü) = %v", got)
	}
	if got := tr.Search("üri", 0); len(got) != 1 || got[0].Value != "Zürich" {
		t.Errorf("Search(üri) = %v", got)
	}
}

// naiveSearch is the brute-force reference.
func naiveSearch(strs []string, pattern string) []string {
	var out []string
	seen := make(map[string]bool)
	for _, s := range strs {
		if !seen[s] && s != "" && strings.Contains(s, pattern) {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

func TestSearchAgainstNaiveRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	alphabet := "abcde"
	randStr := func(n int) string {
		b := make([]byte, n)
		for i := range b {
			b[i] = alphabet[rng.Intn(len(alphabet))]
		}
		return string(b)
	}
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(40)
		strs := make([]string, n)
		for i := range strs {
			strs[i] = randStr(1 + rng.Intn(12))
		}
		tr := New(strs)
		for p := 0; p < 20; p++ {
			pat := randStr(1 + rng.Intn(4))
			got := tr.Search(pat, 0)
			want := naiveSearch(strs, pat)
			if !matchValuesEqual(got, want) {
				t.Fatalf("trial %d: Search(%q) over %v = %v, want %v", trial, pat, strs, got, want)
			}
		}
	}
}

func TestSearchPropertyQuick(t *testing.T) {
	f := func(strs []string, pat string) bool {
		// Constrain to the supported input space.
		clean := make([]string, 0, len(strs))
		for _, s := range strs {
			if !strings.ContainsAny(s, "\x00\x01") && len(s) < 30 {
				clean = append(clean, s)
			}
		}
		if strings.ContainsAny(pat, "\x00\x01") || pat == "" || len(pat) > 10 {
			return true
		}
		tr := New(clean)
		got := tr.Search(pat, 0)
		want := naiveSearch(clean, pat)
		return matchValuesEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestMatchIndexStable(t *testing.T) {
	tr := New([]string{"alpha", "beta", "alphabet"})
	for _, m := range tr.Search("alpha", 0) {
		switch m.Value {
		case "alpha":
			if m.Index != 0 {
				t.Errorf("alpha index = %d", m.Index)
			}
		case "alphabet":
			if m.Index != 2 {
				t.Errorf("alphabet index = %d", m.Index)
			}
		}
	}
}

func TestNodeCountAndSize(t *testing.T) {
	tr := New([]string{"banana", "bandana"})
	if tr.NodeCount() <= 2 {
		t.Errorf("NodeCount = %d, suspiciously small", tr.NodeCount())
	}
	if tr.ApproxBytes() <= 0 {
		t.Error("ApproxBytes <= 0")
	}
}

func TestDeterministicResults(t *testing.T) {
	strs := []string{"car", "cart", "scar", "carbon", "oscar"}
	tr := New(strs)
	a := tr.Search("car", 0)
	for i := 0; i < 5; i++ {
		b := tr.Search("car", 0)
		if len(a) != len(b) {
			t.Fatal("nondeterministic result size")
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatal("nondeterministic result order")
			}
		}
	}
}

func TestLargeScaleSanity(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	strs := make([]string, 5000)
	for i := range strs {
		strs[i] = fmt.Sprintf("entity %d of the set %d", i, i*7%101)
	}
	tr := New(strs)
	if tr.Strings() != 5000 {
		t.Fatalf("Strings = %d", tr.Strings())
	}
	got := tr.Search("entity 4999", 0)
	if len(got) != 1 {
		t.Errorf("Search(entity 4999) = %v", got)
	}
	all := tr.Search("of the set", 0)
	if len(all) != 5000 {
		t.Errorf("Search(of the set) = %d, want 5000", len(all))
	}
}
