// Command sapphire-init runs Sapphire's endpoint initialization (Section
// 5) against a SPARQL endpoint URL and reports what was cached:
//
//	sapphire-init -endpoint http://localhost:8890/sparql
//
// With -data it instead bulk-loads a local N-Triples dump into an
// in-process warehouse endpoint (staged bulk load, one index build for
// the whole dump) and initializes that with the warehouse queries:
//
//	sapphire-init -data dump.nt -save dump.cache
//
// Adding -data-dir makes the warehouse durable: the first run ingests
// the dump and snapshots it there, and later runs (with or without
// -data) recover from the snapshot instead of re-parsing N-Triples —
// the restart is several times faster:
//
//	sapphire-init -data dump.nt -data-dir ./wh -save dump.cache
//	sapphire-init -data-dir ./wh -save dump.cache   # later, no re-parse
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"sapphire/internal/bootstrap"
	"sapphire/internal/endpoint"
	"sapphire/internal/store"
	"sapphire/internal/store/persist"
)

func main() {
	var (
		url       = flag.String("endpoint", "", "SPARQL endpoint URL (this or -data required)")
		data      = flag.String("data", "", "local N-Triples file to bulk-load as a warehouse endpoint instead of querying a URL")
		lang      = flag.String("lang", "en", "literal language to cache")
		maxLen    = flag.Int("max-literal-length", 80, "literal length cap")
		pageSize  = flag.Int("page-size", 500, "LIMIT for paginated retrieval")
		budget    = flag.Int("query-budget", 0, "max queries to issue (0 = unlimited)")
		treeCap   = flag.Int("tree-capacity", 2000, "significant literals to index in the suffix tree")
		timeout   = flag.Duration("timeout", 10*time.Minute, "overall initialization deadline")
		warehouse = flag.Bool("warehouse", false, "use the warehousing-architecture queries Q9/Q10 (no timeout gymnastics)")
		saveTo    = flag.String("save", "", "write the cache to this file for later reuse")
		dataDir   = flag.String("data-dir", "", "durable warehouse directory: ingest -data into it once, recover from it on later runs")
		fsync     = flag.String("fsync", "always", "WAL fsync policy for -data-dir: always | interval | off")
	)
	flag.Parse()
	if *url == "" && *data == "" && *dataDir == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *url != "" && (*data != "" || *dataDir != "") {
		log.Fatal("-endpoint and -data/-data-dir are mutually exclusive: initialize a URL or a local dump, not both")
	}
	cfg := bootstrap.Config{
		MaxLiteralLength:   *maxLen,
		Language:           *lang,
		PageSize:           *pageSize,
		QueryBudget:        *budget,
		SuffixTreeCapacity: *treeCap,
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	var ep endpoint.Endpoint
	initFn := bootstrap.Initialize
	if *warehouse {
		initFn = bootstrap.InitializeWarehouse
	}
	switch {
	case *dataDir != "":
		policy, err := persist.ParseFsyncPolicy(*fsync)
		if err != nil {
			log.Fatal(err)
		}
		loadStart := time.Now()
		db, info, err := persist.Open(*dataDir, persist.Options{Fsync: policy})
		if err != nil {
			log.Fatalf("open %s: %v", *dataDir, err)
		}
		defer db.Close()
		st := db.Store()
		switch {
		case st.Len() > 0:
			log.Printf("recovered %d triples from %s (generation %d) in %v",
				st.Len(), *dataDir, info.Generation, time.Since(loadStart).Round(time.Millisecond))
		case *data != "":
			f, err := os.Open(*data)
			if err != nil {
				log.Fatalf("open data: %v", err)
			}
			err = db.Ingest(func(s *store.Store) error { return store.LoadNTriples(s, f) })
			f.Close()
			if err != nil {
				log.Fatalf("bulk load failed: %v", err)
			}
			log.Printf("bulk-loaded and snapshotted %d triples in %v", st.Len(),
				time.Since(loadStart).Round(time.Millisecond))
		default:
			log.Fatalf("data dir %s is empty and no -data dump was given", *dataDir)
		}
		ep = endpoint.NewLocal(*dataDir, st, endpoint.Limits{})
		initFn = bootstrap.InitializeWarehouse
	case *data != "":
		f, err := os.Open(*data)
		if err != nil {
			log.Fatalf("open data: %v", err)
		}
		loadStart := time.Now()
		local, err := bootstrap.NewWarehouseFromNTriples(*data, f)
		f.Close()
		if err != nil {
			log.Fatalf("bulk load failed: %v", err)
		}
		log.Printf("bulk-loaded %d triples in %v", local.Store().Len(),
			time.Since(loadStart).Round(time.Millisecond))
		// A local warehouse has no timeouts to dodge; use the
		// straight-line warehouse queries Q9/Q10.
		ep = local
		initFn = bootstrap.InitializeWarehouse
	default:
		ep = endpoint.NewClient(*url)
	}
	log.Printf("initializing %s ...", ep.Name())
	cache, err := initFn(ctx, ep, cfg)
	if err != nil {
		log.Fatalf("initialization failed: %v", err)
	}
	if *saveTo != "" {
		if err := cache.SaveFile(*saveTo); err != nil {
			log.Fatalf("save: %v", err)
		}
		log.Printf("cache written to %s", *saveTo)
	}
	s := cache.Stats
	fmt.Printf("endpoint:            %s\n", cache.Endpoint)
	fmt.Printf("queries issued:      %d (literal %d, significance %d)\n",
		s.QueriesIssued, s.LiteralQueries, s.SignificanceQueries)
	fmt.Printf("timeouts survived:   %d\n", s.Timeouts)
	fmt.Printf("predicates cached:   %d\n", s.PredicateCount)
	fmt.Printf("literals cached:     %d (significant %d, residual %d in %d bins)\n",
		s.LiteralCount, s.SignificantCount, s.ResidualCount, s.BinCount)
	fmt.Printf("suffix tree:         %d nodes, ~%d KiB\n", s.TreeNodes, s.TreeBytes/1024)
	fmt.Printf("used RDFS hierarchy: %v\n", s.UsedHierarchy)
	fmt.Printf("budget exhausted:    %v\n", s.BudgetExhausted)
	fmt.Printf("duration:            %v\n", s.Duration.Round(time.Millisecond))
}
