package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// suppressPrefix is the marker a source line uses to acknowledge a
// diagnostic: //sapphire:allow <analyzer> <reason>. The comment applies
// to findings of that analyzer on its own line (trailing comment) or on
// the line directly below (a comment line above the flagged statement).
const suppressPrefix = "//sapphire:allow"

type suppression struct {
	analyzer string
	reason   string
	pos      token.Pos
	line     int
	used     bool
}

// collectSuppressions scans every comment in the files for
// //sapphire:allow markers.
func collectSuppressions(fset *token.FileSet, files []*ast.File) []*suppression {
	var out []*suppression
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, suppressPrefix) {
					continue
				}
				rest := strings.TrimPrefix(text, suppressPrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //sapphire:allowance — not ours
				}
				fields := strings.Fields(rest)
				s := &suppression{pos: c.Pos(), line: fset.Position(c.Pos()).Line}
				if len(fields) > 0 {
					s.analyzer = fields[0]
					s.reason = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), fields[0]))
				}
				out = append(out, s)
			}
		}
	}
	return out
}

// applySuppressions drops findings acknowledged by a well-formed
// //sapphire:allow comment and reports the malformed ones: a
// suppression without a non-empty reason does not suppress anything —
// it becomes a diagnostic itself, so the reason requirement is
// machine-enforced too.
func applySuppressions(fset *token.FileSet, files []*ast.File, diags []Diagnostic) []Diagnostic {
	sups := collectSuppressions(fset, files)
	if len(sups) == 0 {
		return diags
	}
	// Index by (file, line) the suppression covers. A comment on line L
	// covers L (trailing form) and L+1 (line-above form).
	type key struct {
		file string
		line int
	}
	covered := map[key][]*suppression{}
	for _, s := range sups {
		file := fset.Position(s.pos).Filename
		covered[key{file, s.line}] = append(covered[key{file, s.line}], s)
		covered[key{file, s.line + 1}] = append(covered[key{file, s.line + 1}], s)
	}

	var kept []Diagnostic
	for _, d := range diags {
		p := fset.Position(d.Pos)
		match := false
		for _, s := range covered[key{p.Filename, p.Line}] {
			if s.analyzer != d.Analyzer || s.reason == "" {
				continue
			}
			s.used = true
			match = true
			break
		}
		if !match {
			kept = append(kept, d)
		}
	}
	for _, s := range sups {
		if s.analyzer == "" || s.reason == "" {
			kept = append(kept, Diagnostic{
				Pos:      s.pos,
				Analyzer: "suppression",
				Message:  "malformed //sapphire:allow: need \"//sapphire:allow <analyzer> <reason>\" with a non-empty reason",
			})
		}
	}
	return kept
}
