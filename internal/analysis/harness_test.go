package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// runWant is the golden-fixture driver (the analysistest pattern): it
// loads testdata/src/<pkgPath>, runs the analyzers, and matches the
// diagnostics 1:1 against `// want` comments. Each want comment holds
// one or more backquoted regexps that must each match exactly one
// diagnostic on the comment's line; diagnostics on lines without a
// matching want, and wants no diagnostic matched, both fail the test.
func runWant(t *testing.T, pkgPath string, analyzers ...*Analyzer) {
	t.Helper()
	pkg, err := LoadDir(filepath.Join("testdata", "src"), pkgPath)
	if err != nil {
		t.Fatalf("load fixture %s: %v", pkgPath, err)
	}
	diags, err := Run(pkg, analyzers)
	if err != nil {
		t.Fatalf("run: %v", err)
	}

	type key struct {
		file string
		line int
	}
	wants := map[key][]*regexp.Regexp{}
	for _, f := range pkg.Files {
		for k, res := range collectWants(t, pkg.Fset, f) {
			wants[key(k)] = append(wants[key(k)], res...)
		}
	}

	for _, d := range diags {
		p := pkg.Fset.Position(d.Pos)
		k := key{p.Filename, p.Line}
		matched := -1
		for i, re := range wants[k] {
			if re.MatchString(d.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("unexpected diagnostic at %s: %s: %s", p, d.Analyzer, d.Message)
			continue
		}
		wants[k] = append(wants[k][:matched], wants[k][matched+1:]...)
	}
	for k, res := range wants {
		for _, re := range res {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, re)
		}
	}
}

type wantKey struct {
	file string
	line int
}

// collectWants parses `// want` comments: everything after the marker
// is a sequence of backquoted regexps.
func collectWants(t *testing.T, fset *token.FileSet, f *ast.File) map[wantKey][]*regexp.Regexp {
	t.Helper()
	out := map[wantKey][]*regexp.Regexp{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, "want ") {
				continue
			}
			rest := strings.TrimPrefix(text, "want ")
			p := fset.Position(c.Pos())
			k := wantKey{p.Filename, p.Line}
			for {
				rest = strings.TrimSpace(rest)
				if rest == "" {
					break
				}
				if rest[0] != '`' {
					t.Fatalf("%s: malformed want comment (expected backquoted regexp): %s", p, c.Text)
				}
				end := strings.IndexByte(rest[1:], '`')
				if end < 0 {
					t.Fatalf("%s: unterminated regexp in want comment: %s", p, c.Text)
				}
				pat := rest[1 : 1+end]
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s: bad want regexp %q: %v", p, pat, err)
				}
				out[k] = append(out[k], re)
				rest = rest[end+2:]
			}
			if len(out[k]) == 0 {
				t.Fatalf("%s: want comment with no regexps: %s", p, c.Text)
			}
		}
	}
	return out
}

// diagStrings renders diagnostics for failure messages and the
// suppression tests.
func diagStrings(fset *token.FileSet, diags []Diagnostic) []string {
	var out []string
	for _, d := range diags {
		out = append(out, fmt.Sprintf("%s: %s: %s", fset.Position(d.Pos), d.Analyzer, d.Message))
	}
	return out
}
