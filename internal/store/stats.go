package store

import (
	"sort"

	"sapphire/internal/rdf"
)

// PredicateFrequency is one row of the Q1/Q4 aggregates: a predicate and
// how many triples (or literal-valued triples) use it.
type PredicateFrequency struct {
	Predicate rdf.Term
	Count     int
}

// PredicateFrequencies returns all predicates ordered by descending triple
// count (ties broken by term order), mirroring initialization query Q1.
func (s *Store) PredicateFrequencies() []PredicateFrequency {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]PredicateFrequency, 0, len(s.pos))
	for p, byO := range s.pos {
		n := 0
		for _, subs := range byO {
			n += len(subs)
		}
		out = append(out, PredicateFrequency{Predicate: p, Count: n})
	}
	sortFreq(out)
	return out
}

// LiteralPredicateFrequencies returns predicates that have at least one
// literal object, ordered by descending count of literal objects. This is
// initialization query Q4 (FILTER isliteral(?o)).
func (s *Store) LiteralPredicateFrequencies() []PredicateFrequency {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]PredicateFrequency, 0, len(s.pos))
	for p, byO := range s.pos {
		n := 0
		for o, subs := range byO {
			if o.IsLiteral() {
				n += len(subs)
			}
		}
		if n > 0 {
			out = append(out, PredicateFrequency{Predicate: p, Count: n})
		}
	}
	sortFreq(out)
	return out
}

// TypeFrequencies returns the rdf:type objects ordered by how many
// subjects carry them — initialization query Q3 for datasets without an
// RDFS hierarchy.
func (s *Store) TypeFrequencies() []PredicateFrequency {
	s.mu.RLock()
	defer s.mu.RUnlock()
	byO := s.pos[rdf.NewIRI(rdf.RDFType)]
	out := make([]PredicateFrequency, 0, len(byO))
	for o, subs := range byO {
		out = append(out, PredicateFrequency{Predicate: o, Count: len(subs)})
	}
	sortFreq(out)
	return out
}

func sortFreq(fs []PredicateFrequency) {
	sort.Slice(fs, func(i, j int) bool {
		if fs[i].Count != fs[j].Count {
			return fs[i].Count > fs[j].Count
		}
		return fs[i].Predicate.Compare(fs[j].Predicate) < 0
	})
}

// DistinctLiterals returns the number of distinct literal terms, one of
// the dataset-scale statistics the paper reports (DBpedia: ~70M literals
// vs ~3K predicates).
func (s *Store) DistinctLiterals() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for o := range s.osp {
		if o.IsLiteral() {
			n++
		}
	}
	return n
}

// IncomingEdgeCount returns the number of triples whose object is the
// given term — the inner quantity of Definition 1 (literal significance).
func (s *Store) IncomingEdgeCount(o rdf.Term) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, ps := range s.osp[o] {
		n += len(ps)
	}
	return n
}

// LiteralSignificance computes S(l) from Definition 1 for every literal:
// the number of triples (s, p1, o) such that (o, p2, l) is in the store.
// That is, a literal inherits the incoming-edge count of the entities it
// describes. The result maps literal terms to their significance score.
func (s *Store) LiteralSignificance() map[rdf.Term]int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sig := make(map[rdf.Term]int)
	// For each entity o with incoming edges, add its in-degree to every
	// literal l attached to o.
	for o, bySubj := range s.osp {
		if o.IsLiteral() {
			continue
		}
		indeg := 0
		for _, ps := range bySubj {
			indeg += len(ps)
		}
		if indeg == 0 {
			continue
		}
		for _, objs := range s.spo[o] {
			for _, l := range objs {
				if l.IsLiteral() {
					sig[l] += indeg
				}
			}
		}
	}
	return sig
}
