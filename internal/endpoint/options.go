package endpoint

import "net/http"

// Option configures a Client at construction (see NewClient). Options
// apply in order, so a later option overrides an earlier one.
type Option func(*Client)

// WithRetryPolicy sets the client's retry behavior. Zero fields of the
// policy select the package defaults; MaxAttempts 1 disables retries.
func WithRetryPolicy(p RetryPolicy) Option {
	return func(c *Client) { c.retrier = newRetrier(p) }
}

// WithHTTPClient substitutes the underlying *http.Client — for custom
// transports, connection pools, proxies, or test instrumentation. The
// client should have no Timeout of its own: the retry policy's
// per-attempt timeout bounds each try, and the caller's context bounds
// the whole exchange.
func WithHTTPClient(h *http.Client) Option {
	return func(c *Client) {
		if h != nil {
			c.client = h
		}
	}
}

// WithUserAgent sets the User-Agent header on every request the client
// issues, so server-side logs can attribute traffic (the load harness
// tags its requests this way).
func WithUserAgent(ua string) Option {
	return func(c *Client) { c.userAgent = ua }
}
