package store

import (
	"fmt"
	"sync"
	"testing"

	"sapphire/internal/rdf"
)

// TestConcurrentAddMatchSubjects hammers Add, Match, MatchIDs, Count, and
// Subjects from parallel goroutines. Run with -race; it guards the
// incremental sorted-key invariant (readers walking a key slice while a
// writer insertion-sorts into a reallocated one must never observe a torn
// state) and the dictionary's append-under-lock discipline.
func TestConcurrentAddMatchSubjects(t *testing.T) {
	s := buildSample(t)
	const (
		writers   = 4
		readers   = 4
		perWriter = 300
	)
	knows := iri("knows")
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				s.MustAdd(tri(
					iri(fmt.Sprintf("w%d-%d", w, i)),
					knows,
					iri(fmt.Sprintf("w%d-%d", (w+1)%writers, i)),
				))
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				// Term-level wildcard match walks the sorted key slices.
				prev := rdf.Term{}
				s.Match(rdf.Term{}, knows, rdf.Term{}, func(tr rdf.Triple) bool {
					if !prev.IsZero() && prev.Compare(tr.O) > 0 {
						t.Errorf("POS iteration out of order: %v after %v", tr.O, prev)
						return false
					}
					prev = tr.O
					return true
				})
				// ID-level match and counts.
				if id, ok := s.Lookup(knows); ok {
					n := 0
					s.MatchIDs(Wildcard, id, Wildcard, func(a, b, c ID) bool {
						n++
						return true
					})
					// Writers may land between the two calls; the store
					// only grows, so the later count can never be lower.
					if c := s.CountIDs(Wildcard, id, Wildcard); c < n {
						t.Errorf("CountIDs = %d below MatchIDs visit count %d", c, n)
					}
				}
				// Sorted snapshot of level-one keys.
				subs := s.Subjects()
				for j := 1; j < len(subs); j++ {
					if subs[j-1].Compare(subs[j]) >= 0 {
						t.Errorf("Subjects not sorted at %d", j)
						break
					}
				}
				s.Count(rdf.Term{}, rdf.Term{}, rdf.Term{})
				s.CardinalityEstimate(rdf.Term{}, knows, rdf.Term{})
			}
		}(r)
	}
	wg.Wait()
	want := 7 + writers*perWriter
	if got := s.Len(); got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
}

// TestDictPublicationRace pins the sharded dictionary's publication
// contract under -race: a term's spine slot is fully written before its
// ID can be learned through any synchronizing edge, so no reader ever
// observes a torn or stale term at a just-allocated ID. Writers intern
// brand-new terms through both the online path (Add, one range-allocating
// dictionary shard at a time) and the batched bulk path (AddAll →
// internAll); readers resolve IDs the three ways they can legitimately
// learn them — inside MatchIDs callbacks (store-shard lock edge), via
// Lookup round-trips on terms handed over a channel (dict-shard lock +
// channel edge), and through rank-table builds scanning the spine while
// ranges are still being filled.
func TestDictPublicationRace(t *testing.T) {
	s := NewShardedDict(4, 8)
	knows := iri("knows")
	s.MustAdd(tri(iri("seed"), knows, iri("seed2")))
	knowsID, ok := s.Lookup(knows)
	if !ok {
		t.Fatal("seed predicate not interned")
	}

	const (
		writers   = 3
		perWriter = 300
	)
	terms := make(chan rdf.Term, 256)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			l := NewBulkLoader(s)
			for i := 0; i < perWriter; i++ {
				subj := iri(fmt.Sprintf("rw%d-%d", w, i))
				s.MustAdd(tri(subj, knows, lit(fmt.Sprintf("val %d-%d", w, i))))
				select {
				case terms <- subj:
				default:
				}
				if err := l.AddAll([]rdf.Triple{
					tri(iri(fmt.Sprintf("bw%d-%d", w, i)), knows, lit(fmt.Sprintf("bv %d-%d", w, i))),
				}); err != nil {
					t.Error(err)
					return
				}
				if i%64 == 0 {
					l.Commit()
				}
			}
			l.Commit()
		}(w)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	var rg sync.WaitGroup
	// Reader A: every ID seen inside a MatchIDs callback must resolve to
	// a real term — a zero Kind would mean ResolveID saw a slot before
	// its write was published.
	rg.Add(1)
	go func() {
		defer rg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			s.MatchIDs(Wildcard, knowsID, Wildcard, func(a, b, c ID) bool {
				for _, id := range []ID{a, b, c} {
					if s.ResolveID(id).IsZero() {
						t.Errorf("ResolveID(%d) returned the zero term for an ID visible in an index", id)
						return false
					}
				}
				return true
			})
		}
	}()
	// Reader B: a term received over the channel was interned before the
	// send, so Lookup must find it and ResolveID must round-trip to the
	// exact term — stale-slice publication would break either half.
	rg.Add(1)
	go func() {
		defer rg.Done()
		for {
			select {
			case <-done:
				return
			case term := <-terms:
				id, ok := s.Lookup(term)
				if !ok {
					t.Errorf("Lookup(%v) missed a term published before the channel send", term)
					return
				}
				if got := s.ResolveID(id); got != term {
					t.Errorf("ResolveID(Lookup(%v)) = %v (torn or stale publication)", term, got)
					return
				}
			}
		}
	}()
	// Reader C: rank builds scan the spine for unlabeled terms while
	// writers are still filling ranges; the build must skip in-flight
	// slots without racing them.
	rg.Add(1)
	go func() {
		defer rg.Done()
		for {
			select {
			case <-done:
				return
			default:
				s.dict.buildRanks()
			}
		}
	}()
	<-done
	rg.Wait()

	want := 1 + writers*perWriter*2
	if got := s.Len(); got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
}
