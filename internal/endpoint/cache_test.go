package endpoint

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"sapphire/internal/rdf"
	"sapphire/internal/sparql"
	"sapphire/internal/store"
)

// dump renders a result set byte-exactly, rows in evaluation order, so
// two dumps compare equal iff the results are identical to the byte —
// same vars, same rows, same order.
func dump(res *sparql.Results) string {
	var b strings.Builder
	b.WriteString(strings.Join(res.Vars, ","))
	for _, row := range res.Rows {
		b.WriteByte('\n')
		for i, v := range res.Vars {
			if i > 0 {
				b.WriteByte('|')
			}
			t := row[v]
			b.WriteString(t.String())
		}
	}
	return b.String()
}

func mustQuery(t testing.TB, ep Endpoint, q string) *sparql.Results {
	t.Helper()
	res, err := ep.Query(context.Background(), q)
	if err != nil {
		t.Fatalf("query %q: %v", q, err)
	}
	return res
}

// TestCacheHitServesIdenticalResult pins the basic contract: the second
// identical query is a hit, returns the same rows, and textual variants
// of the same query share one entry via canonicalization.
func TestCacheHitServesIdenticalResult(t *testing.T) {
	ep := NewLocal("c", testStore(t, 20), Limits{CacheBytes: 1 << 20})
	q := `SELECT ?s ?n WHERE { ?s a <http://x/Person> . ?s <http://x/name> ?n . }`
	first := dump(mustQuery(t, ep, q))
	second := dump(mustQuery(t, ep, q))
	if first != second {
		t.Fatalf("hit differs from miss:\n%s\nvs\n%s", first, second)
	}
	// Same query, different whitespace/formatting: one cache entry.
	variant := "SELECT ?s ?n\nWHERE {\n  ?s a <http://x/Person> .\n  ?s <http://x/name> ?n .\n}"
	if d := dump(mustQuery(t, ep, variant)); d != first {
		t.Fatalf("canonicalized variant differs:\n%s", d)
	}
	st := ep.Stats()
	if st.CacheMisses != 1 || st.CacheHits != 2 {
		t.Errorf("stats = hits %d misses %d, want 2/1", st.CacheHits, st.CacheMisses)
	}
	if st.CacheEntries != 1 || st.CacheBytes <= 0 {
		t.Errorf("gauges = entries %d bytes %d", st.CacheEntries, st.CacheBytes)
	}
}

// TestCacheEpochInvalidation pins that a mutation makes every cached
// answer unreachable: after Add and after BulkLoader.Commit the same
// query re-evaluates and sees the new data.
func TestCacheEpochInvalidation(t *testing.T) {
	s := testStore(t, 3)
	ep := NewLocal("c", s, Limits{CacheBytes: 1 << 20})
	q := `SELECT ?s WHERE { ?s a <http://x/Person> . }`
	if got := len(mustQuery(t, ep, q).Rows); got != 3 {
		t.Fatalf("rows = %d, want 3", got)
	}
	s.MustAdd(rdf.NewTriple(rdf.NewIRI("http://x/new1"), rdf.NewIRI(rdf.RDFType), rdf.NewIRI("http://x/Person")))
	if got := len(mustQuery(t, ep, q).Rows); got != 4 {
		t.Fatalf("after Add: rows = %d, want 4 (stale cache served?)", got)
	}
	l := store.NewBulkLoader(s)
	l.MustAdd(rdf.NewTriple(rdf.NewIRI("http://x/new2"), rdf.NewIRI(rdf.RDFType), rdf.NewIRI("http://x/Person")))
	if got := len(mustQuery(t, ep, q).Rows); got != 4 {
		t.Fatalf("staged-but-uncommitted rows visible: %d, want 4", got)
	}
	l.Commit()
	if got := len(mustQuery(t, ep, q).Rows); got != 5 {
		t.Fatalf("after Commit: rows = %d, want 5 (stale cache served?)", got)
	}
	st := ep.Stats()
	// Four queries spanned three epochs: the staged-but-uncommitted
	// query shares the post-Add epoch and scores the only hit.
	if st.CacheMisses != 3 {
		t.Errorf("misses = %d, want 3 (epochs must key the cache)", st.CacheMisses)
	}
	if st.CacheHits != 1 {
		t.Errorf("hits = %d, want 1", st.CacheHits)
	}
}

// TestCacheEvictionHoldsByteBudget fills a tiny cache with distinct
// query results and checks the LRU keeps the byte gauge under budget,
// counts evictions, and still serves correct answers.
func TestCacheEvictionHoldsByteBudget(t *testing.T) {
	const budget = 4 << 10
	ep := NewLocal("c", testStore(t, 50), Limits{CacheBytes: budget})
	for i := 0; i < 50; i++ {
		q := fmt.Sprintf(`SELECT ?n WHERE { <http://x/p%d> <http://x/name> ?n . }`, i)
		res := mustQuery(t, ep, q)
		if len(res.Rows) != 1 || res.Rows[0]["n"].Value != fmt.Sprintf("Person %d", i) {
			t.Fatalf("query %d wrong result: %v", i, res.Sorted())
		}
		if st := ep.Stats(); st.CacheBytes > budget {
			t.Fatalf("cache bytes %d exceed budget %d", st.CacheBytes, budget)
		}
	}
	st := ep.Stats()
	if st.CacheEvicted == 0 {
		t.Fatalf("no evictions after 50 distinct queries in a %dB cache: %+v", budget, st)
	}
	if st.CacheEntries == 0 {
		t.Errorf("cache emptied itself: %+v", st)
	}
	// Results larger than the whole budget must not wipe the cache.
	big := NewLocal("b", testStore(t, 400), Limits{CacheBytes: 2 << 10})
	mustQuery(t, big, `SELECT ?s ?n WHERE { ?s <http://x/name> ?n . }`)
	if st := big.Stats(); st.CacheBytes != 0 || st.CacheEvicted != 0 {
		t.Errorf("oversized result was cached or evicted others: %+v", st)
	}
}

// TestCacheSingleflightCoalesces drives the coalescing path
// deterministically at the cache level: one leader evaluates while N
// followers wait, every caller gets the same result, and exactly one
// miss is counted.
func TestCacheSingleflightCoalesces(t *testing.T) {
	c := newResultCache(1 << 20)
	key := cacheKey{query: "q", epoch: 7}
	want := &sparql.Results{Vars: []string{"x"}}
	started := make(chan struct{})
	release := make(chan struct{})

	var wg sync.WaitGroup
	results := make([]*sparql.Results, 9)
	wg.Add(1)
	go func() {
		defer wg.Done()
		res, err := c.getOrCompute(context.Background(), key, func() (*sparql.Results, bool, error) {
			close(started)
			<-release
			return want, true, nil
		})
		if err != nil {
			t.Errorf("leader: %v", err)
		}
		results[0] = res
	}()
	<-started

	const followers = 8
	for i := 1; i <= followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := c.getOrCompute(context.Background(), key, func() (*sparql.Results, bool, error) {
				t.Errorf("follower %d evaluated instead of coalescing", i)
				return nil, false, nil
			})
			if err != nil {
				t.Errorf("follower %d: %v", i, err)
			}
			results[i] = res
		}(i)
	}
	// Wait until every follower is parked on the flight, then release
	// the leader.
	for deadline := time.Now().Add(5 * time.Second); ; {
		_, _, _, _, coalesced, _, _ := c.counters()
		if coalesced == followers {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("followers never coalesced: %d/%d", coalesced, followers)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	for i, res := range results {
		if res != want {
			t.Fatalf("caller %d got %p, want shared %p", i, res, want)
		}
	}
	hits, _, misses, _, coalesced, _, _ := c.counters()
	if misses != 1 || coalesced != followers || hits != 0 {
		t.Errorf("counters = hits %d misses %d coalesced %d, want 0/1/%d", hits, misses, coalesced, followers)
	}
	// The flight's outcome is now cached: the next call is a plain hit.
	res, err := c.getOrCompute(context.Background(), key, func() (*sparql.Results, bool, error) {
		t.Error("hit path evaluated")
		return nil, false, nil
	})
	if err != nil || res != want {
		t.Fatalf("post-flight hit = (%p, %v)", res, err)
	}
}

// TestCacheFlightLeaderCanceled pins the retry rule: when the leader
// dies of its own context, a waiting follower with a live context
// re-evaluates instead of inheriting the cancellation.
func TestCacheFlightLeaderCanceled(t *testing.T) {
	c := newResultCache(1 << 20)
	key := cacheKey{query: "q", epoch: 1}
	started := make(chan struct{})
	release := make(chan struct{})

	leaderErr := make(chan error, 1)
	go func() {
		_, err := c.getOrCompute(context.Background(), key, func() (*sparql.Results, bool, error) {
			close(started)
			<-release
			return nil, false, context.Canceled // leader's ctx died mid-eval
		})
		leaderErr <- err
	}()
	<-started

	want := &sparql.Results{Vars: []string{"y"}}
	followerDone := make(chan *sparql.Results, 1)
	go func() {
		res, err := c.getOrCompute(context.Background(), key, func() (*sparql.Results, bool, error) {
			return want, true, nil // follower retries as the new leader
		})
		if err != nil {
			t.Errorf("follower: %v", err)
		}
		followerDone <- res
	}()
	for deadline := time.Now().Add(5 * time.Second); ; {
		_, _, _, _, coalesced, _, _ := c.counters()
		if coalesced == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("follower never joined the flight")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	if err := <-leaderErr; !errors.Is(err, context.Canceled) {
		t.Errorf("leader err = %v", err)
	}
	if res := <-followerDone; res != want {
		t.Errorf("follower res = %p, want retry result", res)
	}
	// Deterministic errors (not cancellation) propagate to waiters
	// without a retry storm.
	sentinel := errors.New("boom")
	key2 := cacheKey{query: "q2", epoch: 1}
	if _, err := c.getOrCompute(context.Background(), key2, func() (*sparql.Results, bool, error) {
		return nil, false, sentinel
	}); !errors.Is(err, sentinel) {
		t.Errorf("err = %v, want sentinel", err)
	}
}

// TestCacheFlightLeaderPanics pins panic-safety: a leader whose eval
// panics must still tear its flight down — waiters get an error (not a
// hang), the panic propagates to the leader's caller, and the key is
// usable again afterwards.
func TestCacheFlightLeaderPanics(t *testing.T) {
	c := newResultCache(1 << 20)
	key := cacheKey{query: "q", epoch: 1}
	started := make(chan struct{})
	release := make(chan struct{})

	panicked := make(chan any, 1)
	go func() {
		defer func() { panicked <- recover() }()
		_, _ = c.getOrCompute(context.Background(), key, func() (*sparql.Results, bool, error) {
			close(started)
			<-release
			panic("eval exploded")
		})
	}()
	<-started

	waiterErr := make(chan error, 1)
	go func() {
		_, err := c.getOrCompute(context.Background(), key, func() (*sparql.Results, bool, error) {
			return &sparql.Results{}, false, nil
		})
		waiterErr <- err
	}()
	for deadline := time.Now().Add(5 * time.Second); ; {
		_, _, _, _, coalesced, _, _ := c.counters()
		if coalesced == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("waiter never joined the flight")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	if p := <-panicked; p == nil {
		t.Fatal("leader panic was swallowed")
	}
	if err := <-waiterErr; err == nil {
		t.Fatal("waiter of a panicked flight must get an error, not success")
	}
	// The flight is gone: a fresh call evaluates normally.
	want := &sparql.Results{Vars: []string{"ok"}}
	res, err := c.getOrCompute(context.Background(), key, func() (*sparql.Results, bool, error) {
		return want, true, nil
	})
	if err != nil || res != want {
		t.Fatalf("post-panic call = (%p, %v), want fresh eval", res, err)
	}
}

// TestCacheUncacheableNotStored pins that an eval reporting
// cacheable=false (the endpoint does this when the epoch moved
// mid-eval) is returned but not filed.
func TestCacheUncacheableNotStored(t *testing.T) {
	c := newResultCache(1 << 20)
	key := cacheKey{query: "q", epoch: 1}
	res := &sparql.Results{}
	evals := 0
	for i := 0; i < 3; i++ {
		got, err := c.getOrCompute(context.Background(), key, func() (*sparql.Results, bool, error) {
			evals++
			return res, false, nil
		})
		if err != nil || got != res {
			t.Fatalf("call %d = (%p, %v)", i, got, err)
		}
	}
	if evals != 3 {
		t.Errorf("evals = %d, want 3 (uncacheable result was stored)", evals)
	}
	if _, _, _, _, _, bytes, entries := c.counters(); bytes != 0 || entries != 0 {
		t.Errorf("cache not empty: %d bytes, %d entries", bytes, entries)
	}
}

// cacheWorkloadQueries is the randomized query pool TestCacheEquivalence
// draws from: point lookups, class sweeps, two-hop joins, aggregates,
// and modifier variations, parameterized by subject index.
func cacheWorkloadQueries(rng *rand.Rand, n int) string {
	i := rng.Intn(n * 2) // half the lookups miss existing subjects
	switch rng.Intn(6) {
	case 0:
		return fmt.Sprintf(`SELECT ?n WHERE { <http://x/p%d> <http://x/name> ?n . }`, i)
	case 1:
		return `SELECT ?s WHERE { ?s a <http://x/Person> . }`
	case 2:
		return `SELECT ?s ?n WHERE { ?s a <http://x/Person> . ?s <http://x/name> ?n . }`
	case 3:
		return `SELECT (COUNT(?s) AS ?c) WHERE { ?s a <http://x/Person> . }`
	case 4:
		return fmt.Sprintf(`SELECT ?s ?n WHERE { ?s <http://x/name> ?n . } ORDER BY ?n LIMIT %d`, 1+rng.Intn(10))
	default:
		return fmt.Sprintf(`SELECT ?p ?o WHERE { <http://x/p%d> ?p ?o . }`, i)
	}
}

// TestCacheEquivalence is the property test pinning the cache's whole
// correctness story: under a deterministic randomized workload of
// queries interleaved with single Adds and staged bulk commits, every
// answer served through the cache is byte-identical — same rows, same
// order — to a fresh uncached evaluation performed at the same moment.
func TestCacheEquivalence(t *testing.T) {
	const seed = 42
	rng := rand.New(rand.NewSource(seed))
	const base = 30
	s := testStore(t, base)
	cached := NewLocal("cached", s, Limits{CacheBytes: 1 << 20})
	uncached := NewLocal("fresh", s, Limits{})

	typ := rdf.NewIRI(rdf.RDFType)
	person := rdf.NewIRI("http://x/Person")
	name := rdf.NewIRI("http://x/name")
	next := base
	loader := store.NewBulkLoader(s)

	mutate := func() {
		switch rng.Intn(3) {
		case 0: // online single Add
			subj := rdf.NewIRI(fmt.Sprintf("http://x/p%d", next))
			s.MustAdd(rdf.NewTriple(subj, typ, person))
			next++
		case 1: // staged bulk batch, committed at once
			batch := 1 + rng.Intn(5)
			for j := 0; j < batch; j++ {
				subj := rdf.NewIRI(fmt.Sprintf("http://x/p%d", next))
				loader.MustAdd(rdf.NewTriple(subj, typ, person))
				loader.MustAdd(rdf.NewTriple(subj, name,
					rdf.NewLangLiteral(fmt.Sprintf("Person %d", next), "en")))
				next++
			}
			loader.Commit()
		default: // duplicate Add: must NOT invalidate anything
			s.MustAdd(rdf.NewTriple(rdf.NewIRI("http://x/p0"), typ, person))
		}
	}

	for round := 0; round < 60; round++ {
		for k := 0; k < 8; k++ {
			q := cacheWorkloadQueries(rng, next)
			got := dump(mustQuery(t, cached, q))
			want := dump(mustQuery(t, uncached, q))
			if got != want {
				t.Fatalf("round %d query %q:\ncached:\n%s\nfresh:\n%s", round, q, got, want)
			}
		}
		mutate()
	}
	st := cached.Stats()
	if st.CacheHits == 0 || st.CacheMisses == 0 {
		t.Fatalf("workload exercised no cache transitions: %+v", st)
	}
	t.Logf("equivalence held over %d queries: hits=%d misses=%d evicted=%d",
		st.Queries, st.CacheHits, st.CacheMisses, st.CacheEvicted)
}

// TestCachedQueryConcurrentWithWrites is the -race pin for the cache
// vs. writer story. A writer alternates online Adds (predicate
// "online") with staged bulk commits (predicate "batch", always in
// all-or-nothing batches of batchSize rows); readers hammer the cached
// endpoint with a fixed query mix. The invariant: a batch-predicate
// result always contains a multiple of batchSize rows — a cached (or
// fresh) result reflecting a half-committed bulk load would break the
// multiple. Run with -race this also proves the cache's internal
// bookkeeping is data-race free against the store's epoch publication.
func TestCachedQueryConcurrentWithWrites(t *testing.T) {
	// Whole-batch commit atomicity is the 1-shard store contract; a
	// multi-shard store commits shard by shard and a reader may observe
	// a prefix of a batch, which would (correctly) break the
	// batch-multiple invariant this test pins.
	s := store.NewSharded(1)
	online := rdf.NewIRI("http://x/online")
	batchP := rdf.NewIRI("http://x/batch")
	// Seed one batch so the query never starts empty.
	const batchSize = 8
	const batches = 40
	l := store.NewBulkLoader(s)
	addBatch := func(k int) {
		for i := 0; i < batchSize; i++ {
			l.MustAdd(rdf.NewTriple(
				rdf.NewIRI(fmt.Sprintf("http://x/b%d_%d", k, i)),
				batchP, rdf.NewLiteral(fmt.Sprintf("v%d", k))))
		}
		if n := l.Commit(); n != batchSize {
			t.Errorf("batch %d committed %d rows, want %d", k, n, batchSize)
		}
	}
	addBatch(0)

	ep := NewLocal("c", s, Limits{CacheBytes: 1 << 20})
	qBatch := `SELECT ?s ?o WHERE { ?s <http://x/batch> ?o . }`
	qOnline := `SELECT ?s WHERE { ?s <http://x/online> ?o . }`
	qJoin := `SELECT (COUNT(?s) AS ?c) WHERE { ?s <http://x/batch> ?o . }`

	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				switch i % 3 {
				case 0:
					res, err := ep.Query(ctx, qBatch)
					if err != nil {
						t.Errorf("reader %d: %v", g, err)
						return
					}
					if len(res.Rows)%batchSize != 0 {
						t.Errorf("reader %d observed torn bulk commit: %d rows, not a multiple of %d",
							g, len(res.Rows), batchSize)
						return
					}
				case 1:
					if _, err := ep.Query(ctx, qOnline); err != nil {
						t.Errorf("reader %d: %v", g, err)
						return
					}
				default:
					res, err := ep.Query(ctx, qJoin)
					if err != nil {
						t.Errorf("reader %d: %v", g, err)
						return
					}
					// COUNT over the batch predicate obeys the same
					// all-or-nothing invariant.
					var c int
					fmt.Sscan(res.Rows[0]["c"].Value, &c)
					if c%batchSize != 0 {
						t.Errorf("reader %d count %d not a multiple of %d", g, c, batchSize)
						return
					}
				}
			}
		}(g)
	}

	// Pace the writer so readers interleave with every commit instead of
	// racing a writer that finishes before they start.
	for k := 1; k < batches; k++ {
		addBatch(k)
		s.MustAdd(rdf.NewTriple(
			rdf.NewIRI(fmt.Sprintf("http://x/o%d", k)), online, rdf.NewLiteral("x")))
		time.Sleep(500 * time.Microsecond)
	}
	close(done)
	wg.Wait()

	if got := s.Count(rdf.Term{}, batchP, rdf.Term{}); got != batches*batchSize {
		t.Fatalf("final batch rows = %d, want %d", got, batches*batchSize)
	}
	st := ep.Stats()
	if st.Queries == 0 || st.CacheMisses == 0 {
		t.Fatalf("readers never ran against the writer: %+v", st)
	}
	t.Logf("concurrent run: queries=%d hits=%d misses=%d coalesced=%d",
		st.Queries, st.CacheHits, st.CacheMisses, st.CacheCoalesced)
}

// TestRawPreKey pins the raw-string fast path: an exact repeat of a
// query string is served without parsing (CacheRawHits), a textual
// variant pays one parse and shares the canonical entry, a repeat of
// that variant rides its own alias, and a store mutation makes every
// alias unreachable (no stale serves).
func TestRawPreKey(t *testing.T) {
	s := testStore(t, 10)
	ep := NewLocal("c", s, Limits{CacheBytes: 1 << 20})
	q := `SELECT ?s WHERE { ?s a <http://x/Person> . }`
	variant := "SELECT ?s\nWHERE { ?s a <http://x/Person> . }"

	first := dump(mustQuery(t, ep, q))
	if st := ep.Stats(); st.CacheRawHits != 0 || st.CacheMisses != 1 {
		t.Fatalf("after miss: %+v", st)
	}
	if d := dump(mustQuery(t, ep, q)); d != first {
		t.Fatal("raw hit served different result")
	}
	if st := ep.Stats(); st.CacheRawHits != 1 || st.CacheHits != 1 {
		t.Fatalf("exact repeat should be a raw hit: %+v", st)
	}
	// Variant: canonical hit (parse paid), not a raw hit — then its own
	// repeat becomes a raw hit through the newly filed alias.
	if d := dump(mustQuery(t, ep, variant)); d != first {
		t.Fatal("variant served different result")
	}
	if st := ep.Stats(); st.CacheRawHits != 1 || st.CacheHits != 2 {
		t.Fatalf("variant first use must be a canonical (non-raw) hit: %+v", st)
	}
	if d := dump(mustQuery(t, ep, variant)); d != first {
		t.Fatal("variant raw hit served different result")
	}
	if st := ep.Stats(); st.CacheRawHits != 2 {
		t.Fatalf("variant repeat should ride its alias: %+v", st)
	}

	// A mutation orphans every alias: the same strings re-evaluate and
	// see the new row.
	s.MustAdd(rdf.NewTriple(rdf.NewIRI("http://x/fresh"), rdf.NewIRI(rdf.RDFType), rdf.NewIRI("http://x/Person")))
	if got := len(mustQuery(t, ep, q).Rows); got != 11 {
		t.Fatalf("stale raw serve after mutation: %d rows, want 11", got)
	}
	if got := len(mustQuery(t, ep, variant).Rows); got != 11 {
		t.Fatalf("stale variant serve after mutation: %d rows, want 11", got)
	}
}

// TestRawAliasEvictionCleanup fills a tiny cache until eviction churn
// and then checks the alias map holds no orphans: every surviving alias
// must point at an element the canonical map still owns — an evicted
// entry must take its aliases with it.
func TestRawAliasEvictionCleanup(t *testing.T) {
	ep := NewLocal("c", testStore(t, 50), Limits{CacheBytes: 4 << 10})
	for i := 0; i < 50; i++ {
		q := fmt.Sprintf(`SELECT ?n WHERE { <http://x/p%d> <http://x/name> ?n . }`, i)
		mustQuery(t, ep, q)
		mustQuery(t, ep, q) // file + exercise the alias
	}
	st := ep.Stats()
	if st.CacheEvicted == 0 {
		t.Fatalf("no eviction churn: %+v", st)
	}
	c := ep.cache
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.raws) == 0 {
		t.Fatal("no aliases survived at all")
	}
	for raw, el := range c.raws {
		e := el.Value.(*cacheEntry)
		if got, ok := c.entries[e.key]; !ok || got != el {
			t.Fatalf("alias %q points at an evicted entry %q", raw.query, e.key.query)
		}
	}
}

// TestRawPreKeyCanonicalSpelling pins the fallback for clients that
// send query text already in canonical form (sparql.Query.String()
// output, e.g. machine-generated queries): there is no alias to file —
// the raw key IS the canonical key — and the repeat must still ride
// the no-parse path.
func TestRawPreKeyCanonicalSpelling(t *testing.T) {
	ep := NewLocal("c", testStore(t, 10), Limits{CacheBytes: 1 << 20})
	q, err := sparql.Parse(`SELECT ?s WHERE { ?s a <http://x/Person> . }`)
	if err != nil {
		t.Fatal(err)
	}
	canonical := q.String()
	first := dump(mustQuery(t, ep, canonical))
	if d := dump(mustQuery(t, ep, canonical)); d != first {
		t.Fatal("canonical repeat served different result")
	}
	st := ep.Stats()
	if st.CacheRawHits != 1 || st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Fatalf("canonical repeat should skip the parse: %+v", st)
	}
}
