package sparql

import (
	"fmt"
	"sync"
	"testing"

	"sapphire/internal/rdf"
	"sapphire/internal/store"
)

// parallelShapes covers every tail the morsel merge has to reproduce:
// plain scans, joins, LIMIT early-exit, OFFSET, both ORDER BY modes,
// DISTINCT, UNION, OPTIONAL (matched and unmatched), filters at every
// stage, and aggregates.
var parallelShapes = []string{
	`SELECT ?s ?n WHERE { ?s <http://x/name> ?n . }`,
	`SELECT ?s ?n WHERE { ?s a <http://x/Person> . ?s <http://x/name> ?n . ?s <http://x/knows> ?o . }`,
	`SELECT ?s WHERE { ?s a <http://x/Person> . } LIMIT 9 OFFSET 4`,
	`SELECT ?s ?n WHERE { ?s <http://x/name> ?n . } ORDER BY ?n LIMIT 10 OFFSET 3`,
	`SELECT ?s ?n WHERE { ?s <http://x/name> ?n . } ORDER BY DESC(?n) ?s LIMIT 10`,
	`SELECT DISTINCT ?o WHERE { ?s a ?o . }`,
	`SELECT ?s WHERE { { ?s a <http://x/Person> . } UNION { ?s <http://x/knows> <http://x/p1> . } } LIMIT 20`,
	`SELECT ?s ?n WHERE { ?s a <http://x/Person> . OPTIONAL { ?s <http://x/name> ?n . } FILTER (bound(?n)) }`,
	`SELECT ?s ?n WHERE { ?s <http://x/name> ?n . FILTER (contains(str(?n), "7")) } LIMIT 12`,
	`SELECT (COUNT(?s) AS ?c) WHERE { ?s a <http://x/Person> . ?s <http://x/name> ?n . }`,
}

// TestParallelMatchesSerial is the direct tentpole contract on a store
// large enough for real multi-morsel schedules: for every shape and
// every worker count, the parallel rows equal the serial rows
// row-for-row, at both the default morsel size (few big morsels) and a
// tiny one (hundreds of morsels racing through the reorder window).
func TestParallelMatchesSerial(t *testing.T) {
	s := buildWide(t, 3000)
	s.BuildOrderLabels()
	defer func(n int) { parallelMorselSize = n }(parallelMorselSize)
	for _, morsel := range []int{store.DefaultMorselSize, 17} {
		parallelMorselSize = morsel
		for _, src := range parallelShapes {
			q := MustParse(src)
			serial, err := Eval(s, q, Options{Workers: 1})
			if err != nil {
				t.Fatalf("serial %q: %v", src, err)
			}
			want := rowStrings(serial)
			for _, w := range []int{2, 4, 8} {
				par, err := Eval(s, q, Options{Workers: w})
				if err != nil {
					t.Fatalf("workers=%d %q: %v", w, src, err)
				}
				got := rowStrings(par)
				if len(got) != len(want) {
					t.Fatalf("morsel=%d workers=%d %q: %d rows, want %d", morsel, w, src, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("morsel=%d workers=%d %q: row %d = %q, want %q",
							morsel, w, src, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// termOnlyGraph strips the store down to the plain Graph interface, so
// the evaluator takes the query-local-dictionary path with no ID API
// and no pinning.
type termOnlyGraph struct{ s *store.Store }

func (g termOnlyGraph) Match(s, p, o rdf.Term, fn func(rdf.Triple) bool) { g.s.Match(s, p, o, fn) }
func (g termOnlyGraph) CardinalityEstimate(s, p, o rdf.Term) int {
	return g.s.CardinalityEstimate(s, p, o)
}

// TestParallelFallsBackToSerial: Workers > 1 on a graph without the
// ReentrantGraph pin API must quietly evaluate serially and still be
// correct — parallelism is an optimization, never a requirement the
// graph has to meet.
func TestParallelFallsBackToSerial(t *testing.T) {
	s := buildWide(t, 200)
	for _, src := range parallelShapes {
		q := MustParse(src)
		want := rowStrings(eval(t, s, src))
		res, err := Eval(termOnlyGraph{s}, q, Options{Workers: 8})
		if err != nil {
			t.Fatalf("term-only workers=8 %q: %v", src, err)
		}
		got := rowStrings(res)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("term-only graph with workers=8 diverged on %q:\n%v\nwant:\n%v", src, got, want)
		}
	}
}

// TestParallelBudgetAborts: a budget error raised inside a worker must
// abort the whole evaluation and surface the error, without hanging the
// coordinator or leaking goroutines past Eval's return (the deferred
// pin release would fail loudly if workers were still scanning).
func TestParallelBudgetAborts(t *testing.T) {
	s := buildWide(t, 2000)
	defer func(n int) { parallelMorselSize = n }(parallelMorselSize)
	parallelMorselSize = 16
	q := MustParse(`SELECT ?s ?n WHERE { ?s a <http://x/Person> . ?s <http://x/name> ?n . }`)
	ticks := 0
	wantErr := fmt.Errorf("budget blown")
	_, err := Eval(s, q, Options{Workers: 4, Budget: func() error {
		ticks++
		if ticks > 500 {
			return wantErr
		}
		return nil
	}})
	if err != wantErr {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
}

// TestDefaultWorkersWiring pins the -parallel flag plumbing:
// Options.Workers == 0 defers to the process default, explicit values
// win over it, and sub-1 values clamp to serial.
func TestDefaultWorkersWiring(t *testing.T) {
	defer SetDefaultWorkers(DefaultWorkers())
	SetDefaultWorkers(1)
	if got := resolveWorkers(0); got != 1 {
		t.Fatalf("resolveWorkers(0) with default 1 = %d, want 1", got)
	}
	SetDefaultWorkers(6)
	if got := resolveWorkers(0); got != 6 {
		t.Fatalf("resolveWorkers(0) with default 6 = %d, want 6", got)
	}
	if got := resolveWorkers(3); got != 3 {
		t.Fatalf("resolveWorkers(3) = %d, want 3 (explicit beats default)", got)
	}
	if got := resolveWorkers(-2); got != 1 {
		t.Fatalf("resolveWorkers(-2) = %d, want 1", got)
	}
	SetDefaultWorkers(0)
	if got := DefaultWorkers(); got != 1 {
		t.Fatalf("SetDefaultWorkers(0) left default at %d, want clamp to 1", got)
	}

	// And the default actually routes a zero-Options eval through the
	// parallel path with identical output.
	s := buildWide(t, 300)
	src := `SELECT ?s ?n WHERE { ?s <http://x/name> ?n . } ORDER BY ?n LIMIT 10`
	want := rowStrings(eval(t, s, src))
	SetDefaultWorkers(4)
	got := rowStrings(eval(t, s, src))
	SetDefaultWorkers(1)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("default-workers eval diverged:\n%v\nwant:\n%v", got, want)
	}
}

// TestParallelConcurrentCommits is the -race stressor: parallel queries
// hammer the store while a writer interleaves online Adds and staged
// bulk commits. Every evaluation pins a consistent epoch, so queries
// must never error and every ORDER BY page must be internally
// consistent; the race detector checks the rest (worker scans vs
// publication, shared budget, rank table swaps).
func TestParallelConcurrentCommits(t *testing.T) {
	defer func(n int) { parallelMorselSize = n }(parallelMorselSize)
	parallelMorselSize = 8
	s := store.NewSharded(8)
	typ := rdf.NewIRI(rdf.RDFType)
	person := rdf.NewIRI("http://x/Person")
	name := rdf.NewIRI("http://x/name")
	knows := rdf.NewIRI("http://x/knows")
	addSubject := func(add func(rdf.Triple), i int) {
		subj := rdf.NewIRI(fmt.Sprintf("http://x/p%d", i))
		add(rdf.NewTriple(subj, typ, person))
		add(rdf.NewTriple(subj, name, rdf.NewLangLiteral(fmt.Sprintf("Person %d", i), "en")))
		add(rdf.NewTriple(subj, knows, rdf.NewIRI(fmt.Sprintf("http://x/p%d", i/2))))
	}
	for i := 0; i < 400; i++ {
		addSubject(s.MustAdd, i)
	}
	s.BuildOrderLabels()

	stop := make(chan struct{})
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		loader := store.NewBulkLoader(s)
		next := 400
		for round := 0; ; round++ {
			select {
			case <-stop:
				return
			default:
			}
			if round%3 == 0 {
				for b := 0; b < 5; b++ {
					addSubject(loader.MustAdd, next)
					next++
				}
				loader.Commit()
			} else {
				addSubject(s.MustAdd, next)
				next++
			}
			if round%10 == 0 {
				s.BuildOrderLabels()
			}
		}
	}()

	queries := []string{
		`SELECT ?s ?n WHERE { ?s a <http://x/Person> . ?s <http://x/name> ?n . } LIMIT 50`,
		`SELECT ?s ?n WHERE { ?s <http://x/name> ?n . } ORDER BY DESC(?n) LIMIT 12`,
		`SELECT DISTINCT ?t WHERE { ?s <http://x/knows> ?t . ?t <http://x/name> ?n . }`,
		`SELECT (COUNT(?s) AS ?c) WHERE { ?s a <http://x/Person> . }`,
	}
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			for i := 0; i < 25; i++ {
				src := queries[(r+i)%len(queries)]
				res, err := Eval(s, MustParse(src), Options{Workers: 4, Budget: func() error { return nil }})
				if err != nil {
					t.Errorf("reader %d: %q: %v", r, src, err)
					return
				}
				if res == nil {
					t.Errorf("reader %d: %q: nil results", r, src)
					return
				}
			}
		}(r)
	}
	readers.Wait()
	close(stop)
	writer.Wait()
}
