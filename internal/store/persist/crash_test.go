package persist

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"sapphire/internal/rdf"
)

// Crash-recovery property test. A deterministic script of mutations
// (bulk batches, online adds, explicit snapshots) runs against a
// fault-injecting filesystem that kills the process at a chosen byte
// offset of the cumulative write stream — failing cleanly, tearing the
// write, or silently flipping a bit. After every injected crash the
// store is recovered from what reached "disk" and must dump
// byte-identical to the state after some completed prefix of the script
// — never a torn hybrid, never a panic.
//
// The sweep covers evenly-strided offsets over the whole write stream
// plus SAPPHIRE_CRASH_SEEDS extra random offsets (the Makefile
// crashtest target raises this well beyond the CI smoke setting).

// crashOp is one scripted mutation.
type crashOp struct {
	kind    byte // 'B' batch, 'A' add, 'S' snapshot
	triples []rdf.Triple
}

// crashScript builds the deterministic op sequence.
func crashScript() []crashOp {
	var ops []crashOp
	rng := rand.New(rand.NewSource(7))
	add := func(i int) crashOp {
		return crashOp{kind: 'A', triples: []rdf.Triple{tr(
			fmt.Sprintf("online-s%d", i),
			fmt.Sprintf("p%d", rng.Intn(5)),
			fmt.Sprintf("value %d", rng.Int63()),
		)}}
	}
	ops = append(ops, crashOp{kind: 'B', triples: batch("alpha", 180)})
	for i := 0; i < 6; i++ {
		ops = append(ops, add(i))
	}
	ops = append(ops, crashOp{kind: 'S'})
	ops = append(ops, crashOp{kind: 'B', triples: batch("beta", 120)})
	for i := 6; i < 12; i++ {
		ops = append(ops, add(i))
	}
	ops = append(ops, crashOp{kind: 'S'})
	ops = append(ops, crashOp{kind: 'B', triples: batch("gamma", 60)})
	for i := 12; i < 16; i++ {
		ops = append(ops, add(i))
	}
	return ops
}

// runScript applies ops until one fails (the injected crash) and
// reports how many completed. The DB is abandoned on failure — a
// crashed process does not get to run Close.
func runScript(db *DB, ops []crashOp) (completed int, failed error) {
	for _, op := range ops {
		var err error
		switch op.kind {
		case 'B':
			err = db.AddAll(op.triples)
		case 'A':
			_, err = db.Add(op.triples[0])
		case 'S':
			_, err = db.Snapshot()
		}
		if err != nil {
			return completed, err
		}
		completed++
	}
	return completed, nil
}

func crashSeeds(t *testing.T) int {
	if v := os.Getenv("SAPPHIRE_CRASH_SEEDS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			t.Fatalf("bad SAPPHIRE_CRASH_SEEDS %q", v)
		}
		return n
	}
	return 32 // CI smoke setting
}

func TestCrashRecoveryProperty(t *testing.T) {
	ops := crashScript()

	// Dry run on a clean MemFS: record the dump after every completed
	// op (the legal recovery states) and the total bytes written (the
	// fault-offset space).
	dry := NewFaultFS(NewMemFS(), FaultNone, 0, 0)
	db, _ := mustOpen(t, dry, Options{Fsync: FsyncAlways})
	dumps := []string{dumpStore(t, db.Store())} // dumps[i] = state after i ops
	for i := range ops {
		if n, err := runScript(db, ops[i:i+1]); n != 1 {
			t.Fatalf("dry run op %d failed: %v", i, err)
		}
		dumps = append(dumps, dumpStore(t, db.Store()))
	}
	db.Close()
	total := dry.Written()
	if total < 1024 {
		t.Fatalf("dry run wrote only %d bytes", total)
	}

	// Offsets: an even stride across the stream plus seeded extras.
	rng := rand.New(rand.NewSource(11))
	var offsets []int64
	const stride = 64
	for i := 0; i < stride; i++ {
		offsets = append(offsets, total*int64(i)/stride)
	}
	for i := 0; i < crashSeeds(t); i++ {
		offsets = append(offsets, rng.Int63n(total))
	}

	for _, mode := range []FaultMode{FaultError, FaultTorn, FaultBitFlip} {
		for _, off := range offsets {
			name := fmt.Sprintf("%s@%d", mode, off)
			mem := NewMemFS()
			faulty := NewFaultFS(mem, mode, off, uint(off%8))
			// The fault can fire as early as Open's first WAL write; a
			// failed Open is a crash with zero completed ops.
			completed := 0
			db, _, failErr := Open("", Options{FS: faulty, Fsync: FsyncAlways})
			if failErr == nil {
				completed, failErr = runScript(db, ops)
			}
			if mode == FaultBitFlip {
				// Silent corruption: the process runs to completion and
				// even shuts down cleanly, never noticing.
				if failErr != nil {
					t.Fatalf("%s: bit flip surfaced as a write error: %v", name, failErr)
				}
				db.Close()
			}
			// Kill the process here; recover from what reached disk.
			rec, info, err := Open("", Options{FS: mem, Fsync: FsyncOff})
			if err != nil {
				t.Fatalf("%s: recovery failed: %v (info %+v)", name, err, info)
			}
			got := dumpStore(t, rec.Store())

			switch mode {
			case FaultError, FaultTorn:
				// FsyncAlways: every op before the failing one is fully
				// durable. The failing op itself may or may not have
				// reached disk intact (it can fail after its bytes were
				// written — e.g. during a snapshot's cleanup).
				want := []string{dumps[completed]}
				if completed+1 < len(dumps) {
					want = append(want, dumps[completed+1])
				}
				if !contains(want, got) {
					t.Fatalf("%s: recovered state is not op-%d or op-%d state (%d completed ops, recovery %+v)",
						name, completed, completed+1, completed, info)
				}
			case FaultBitFlip:
				// One flipped bit somewhere in snapshots, WALs, or
				// manifests: recovery may lose a suffix (checksums
				// truncate at the flip) or nothing (the redundant
				// generation covers it), but must land exactly on some
				// committed prefix.
				idx := -1
				for i, d := range dumps {
					if d == got {
						idx = i
						break
					}
				}
				if idx < 0 {
					t.Fatalf("%s: recovered state matches no committed prefix (recovery %+v)", name, info)
				}
			}

			// The recovered store must be fully usable.
			if _, err := rec.Add(tr("post-recovery", "p", "v")); err != nil {
				t.Fatalf("%s: Add after recovery: %v", name, err)
			}
			rec.Close()
		}
	}
}

func contains(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}

// TestCrashDuringRecovery injects faults into the *recovery* write path
// (tail truncation, WAL recreation): a crash while recovering must
// still leave a recoverable directory.
func TestCrashDuringRecovery(t *testing.T) {
	ops := crashScript()
	mem := NewMemFS()
	db, _ := mustOpen(t, mem, Options{Fsync: FsyncAlways})
	if n, err := runScript(db, ops); err != nil {
		t.Fatalf("setup failed after %d ops: %v", n, err)
	}
	want := dumpStore(t, db.Store())
	db.Close()
	// Corrupt the live WAL tail so recovery has truncation work to do.
	mem.mu.Lock()
	cur := walName(2)
	mem.files[cur] = append(mem.files[cur], 0x01, 0x02, 0x03, 0x04)
	mem.mu.Unlock()

	for off := int64(0); off < 64; off += 7 {
		faulty := NewFaultFS(mem, FaultError, off, 0)
		if rec, _, err := Open("", Options{FS: faulty, Fsync: FsyncOff}); err == nil {
			rec.Close()
		}
		// Whatever the outcome, a clean second recovery must succeed.
		rec, _, err := Open("", Options{FS: mem, Fsync: FsyncOff})
		if err != nil {
			t.Fatalf("offset %d: directory unrecoverable after crashed recovery: %v", off, err)
		}
		if got := dumpStore(t, rec.Store()); got != want {
			t.Fatalf("offset %d: crashed recovery changed state", off)
		}
		rec.Close()
	}
}
