package persist

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"sapphire/internal/rdf"
	"sapphire/internal/store"
)

// genTriples mirrors the store package's bench shape: n triples over
// n/2 subjects.
func genTriples(n int) []rdf.Triple {
	p := rdf.NewIRI("http://x/p")
	typ := rdf.NewIRI(rdf.RDFType)
	cls := rdf.NewIRI("http://x/C")
	out := make([]rdf.Triple, 0, n)
	for i := 0; i < n/2; i++ {
		subj := rdf.NewIRI(fmt.Sprintf("http://x/s%d", i))
		out = append(out, rdf.NewTriple(subj, typ, cls))
		out = append(out, rdf.NewTriple(subj, p, rdf.NewLiteral(fmt.Sprintf("value %d", i))))
	}
	return out
}

var recovery1M struct {
	once    sync.Once
	triples []rdf.Triple
	snap    []byte // snapshot image of the 1M store
	nt      []byte // N-Triples dump of the same store
}

func recovery1MSetup(b *testing.B) {
	recovery1M.once.Do(func() {
		recovery1M.triples = genTriples(1_000_000)
		s := store.NewSharded(8)
		l := store.NewBulkLoader(s)
		if err := l.AddAll(recovery1M.triples); err != nil {
			b.Fatal(err)
		}
		l.Commit()
		var snap bytes.Buffer
		if _, err := s.WriteSnapshot(&snap); err != nil {
			b.Fatal(err)
		}
		recovery1M.snap = snap.Bytes()
		var nt bytes.Buffer
		if err := s.DumpNTriples(&nt); err != nil {
			b.Fatal(err)
		}
		recovery1M.nt = nt.Bytes()
	})
}

// BenchmarkRecovery1M compares the two ways a 1M-triple store can come
// back after a restart: structural snapshot restore versus re-ingesting
// the equivalent N-Triples dump. The snapshot path skips parsing,
// interning, and index sorting entirely — the ratio between these two
// rows is the payoff the durable layer exists for.
func BenchmarkRecovery1M(b *testing.B) {
	recovery1MSetup(b)
	b.Run("snapshot", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s, _, err := store.RestoreSnapshotBytes(recovery1M.snap, 0, 0)
			if err != nil {
				b.Fatal(err)
			}
			if s.Len() != len(recovery1M.triples) {
				b.Fatal("short restore")
			}
		}
	})
	b.Run("reingest", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := store.NewSharded(8)
			if err := store.LoadNTriples(s, bytes.NewReader(recovery1M.nt)); err != nil {
				b.Fatal(err)
			}
			if s.Len() != len(recovery1M.triples) {
				b.Fatal("short ingest")
			}
		}
	})
}

// BenchmarkSnapshotSave measures encoding a 100k-triple store to an
// in-memory snapshot (the disk write is the OS's problem; the encode is
// the stall writers can observe).
func BenchmarkSnapshotSave(b *testing.B) {
	s := store.NewSharded(8)
	l := store.NewBulkLoader(s)
	if err := l.AddAll(genTriples(100_000)); err != nil {
		b.Fatal(err)
	}
	l.Commit()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.WriteSnapshot(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWALAppend measures logging one online Add record (encode +
// frame + append, no fsync).
func BenchmarkWALAppend(b *testing.B) {
	triples := genTriples(1 << 16)
	w, err := createWAL(NewMemFS(), walName(0))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.appendAdd(triples[i&(len(triples)-1)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDurableAdd compares one online Add through the bare
// in-memory store against the same Add through a durable DB with
// -fsync=interval on a real directory: the durability tax when the
// fsync is amortized off the write path.
func BenchmarkDurableAdd(b *testing.B) {
	triples := genTriples(1 << 20)
	b.Run("memory", func(b *testing.B) {
		s := store.NewSharded(8)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Add(triples[i&(len(triples)-1)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("interval", func(b *testing.B) {
		db, _, err := Open(b.TempDir(), Options{
			Fsync:         FsyncInterval,
			FsyncInterval: 100 * time.Millisecond,
			Shards:        8,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer db.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := db.Add(triples[i&(len(triples)-1)]); err != nil {
				b.Fatal(err)
			}
		}
	})
}
