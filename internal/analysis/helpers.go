package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// named unwraps pointers and aliases down to the named type, if any.
func named(t types.Type) (*types.Named, bool) {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Alias:
			t = types.Unalias(tt)
		case *types.Named:
			return tt, true
		default:
			return nil, false
		}
	}
}

// pkgLastSegment returns the final path segment of the package a type
// or object was declared in ("" for universe/builtin objects).
func pkgLastSegment(p *types.Package) string {
	if p == nil {
		return ""
	}
	path := p.Path()
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// calleeFunc resolves the static callee of a call expression to a
// *types.Func (method or function), or nil for indirect calls through
// function values, conversions, and builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			f, _ := sel.Obj().(*types.Func)
			return f
		}
		// Package-qualified call: pkg.Fn.
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// recvNamed returns the named type of a method's receiver (nil for
// plain functions), pointer indirection removed.
func recvNamed(f *types.Func) *types.Named {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	n, _ := named(sig.Recv().Type())
	return n
}

// hasMethod reports whether the method set of t (or *t) includes a
// method with the given name — used to recognize pin-capable graphs by
// shape (interfaces declaring PinRead) rather than by import path.
func hasMethod(t types.Type, name string) bool {
	if t == nil {
		return false
	}
	for _, typ := range []types.Type{t, types.NewPointer(t)} {
		ms := types.NewMethodSet(typ)
		for i := 0; i < ms.Len(); i++ {
			if ms.At(i).Obj().Name() == name {
				return true
			}
		}
	}
	return false
}
