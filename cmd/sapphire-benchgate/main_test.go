package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func writeBench(t *testing.T, dir, name string, rows map[string]float64) string {
	t.Helper()
	doc := File{Benchmarks: make(map[string]Result, len(rows))}
	for k, v := range rows {
		doc.Benchmarks[k] = Result{NsPerOp: v, Runs: 1}
	}
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// servingBaseline is a plausible serving-SLO baseline: one latency
// ladder and a throughput row per phase.
func servingBaseline() map[string]float64 {
	return map[string]float64{
		"Serving/hot-cache/p50":        200_000,
		"Serving/hot-cache/p99":        900_000,
		"Serving/hot-cache/p999":       2_000_000,
		"Serving/hot-cache/throughput": 5_000,
		"Serving/qald/p50":             400_000,
		"Serving/qald/p99":             1_500_000,
		"Serving/qald/p999":            3_000_000,
		"Serving/qald/throughput":      2_000,
	}
}

// TestSLOGateFailsOnP99Regression is the acceptance-criteria check: a
// synthetic 2x p99 regression must fail the gate.
func TestSLOGateFailsOnP99Regression(t *testing.T) {
	dir := t.TempDir()
	base := writeBench(t, dir, "base.json", servingBaseline())
	regressed := servingBaseline()
	regressed["Serving/hot-cache/p99"] *= 2
	cur := writeBench(t, dir, "cur.json", regressed)
	ok, err := compareMode(base, cur, 0.50, 0, splitList(defaultRequiredSLO))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("2x p99 regression passed the SLO gate")
	}
}

// TestSLOGateFailsOnThroughputDrop pins the inverted comparison: a
// halved throughput is a regression even though the number went DOWN.
func TestSLOGateFailsOnThroughputDrop(t *testing.T) {
	dir := t.TempDir()
	base := writeBench(t, dir, "base.json", servingBaseline())
	dropped := servingBaseline()
	dropped["Serving/qald/throughput"] /= 2
	cur := writeBench(t, dir, "cur.json", dropped)
	ok, err := compareMode(base, cur, 0.40, 0, splitList(defaultRequiredSLO))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("halved throughput passed the SLO gate")
	}
}

// TestSLOGatePassesWithinThreshold: noise-scale movement in either
// direction — latency up a bit, throughput down a bit, and an
// *improvement* in both — stays green.
func TestSLOGatePassesWithinThreshold(t *testing.T) {
	dir := t.TempDir()
	base := writeBench(t, dir, "base.json", servingBaseline())
	wiggled := servingBaseline()
	wiggled["Serving/hot-cache/p99"] *= 1.3      // +30% latency, under 50%
	wiggled["Serving/qald/throughput"] *= 0.8    // -20% throughput, under 50%
	wiggled["Serving/qald/p50"] *= 0.5           // improvement
	wiggled["Serving/hot-cache/throughput"] *= 3 // improvement
	cur := writeBench(t, dir, "cur.json", wiggled)
	ok, err := compareMode(base, cur, 0.50, 0, splitList(defaultRequiredSLO))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("within-threshold run failed the SLO gate")
	}
}

// TestSLOGateFailsOnMissingRow: a phase disappearing from the current
// run (say, a renamed phase) must fail, not silently un-gate.
func TestSLOGateFailsOnMissingRow(t *testing.T) {
	dir := t.TempDir()
	base := writeBench(t, dir, "base.json", servingBaseline())
	partial := servingBaseline()
	delete(partial, "Serving/qald/p999")
	cur := writeBench(t, dir, "cur.json", partial)
	ok, err := compareMode(base, cur, 0.50, 0, splitList(defaultRequiredSLO))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("missing required row passed the SLO gate")
	}
}

// TestSLOGateVacuityCheck: a baseline with no Serving rows at all makes
// the gate vacuous and must fail loudly.
func TestSLOGateVacuityCheck(t *testing.T) {
	dir := t.TempDir()
	base := writeBench(t, dir, "base.json", map[string]float64{"BenchmarkSomething": 100})
	cur := writeBench(t, dir, "cur.json", map[string]float64{"BenchmarkSomething": 100})
	ok, err := compareMode(base, cur, 0.50, 0, splitList(defaultRequiredSLO))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("vacuous SLO gate passed")
	}
}

// TestSLOGateAbsoluteSlack: a microsecond-scale row doubling stays
// green under the slack floor (relative noise on tiny absolutes), while
// a millisecond-scale doubling still fails — and the slack never
// excuses throughput drops.
func TestSLOGateAbsoluteSlack(t *testing.T) {
	dir := t.TempDir()
	rows := servingBaseline()
	rows["Serving/federation-flap/p99"] = 40_000 // 40µs
	base := writeBench(t, dir, "base.json", rows)

	small := servingBaseline()
	small["Serving/federation-flap/p99"] = 80_000 // +100%, but only +40µs
	cur := writeBench(t, dir, "cur.json", small)
	ok, err := compareMode(base, cur, 0.50, 250_000, splitList(defaultRequiredSLO))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("sub-slack microsecond regression tripped the gate")
	}

	big := servingBaseline()
	big["Serving/federation-flap/p99"] = 40_000
	big["Serving/hot-cache/p99"] *= 2 // +900µs, past the slack
	cur = writeBench(t, dir, "cur2.json", big)
	ok, err = compareMode(base, cur, 0.50, 250_000, splitList(defaultRequiredSLO))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("2x millisecond-scale p99 passed under slack")
	}

	slow := servingBaseline()
	slow["Serving/federation-flap/p99"] = 40_000
	slow["Serving/qald/throughput"] /= 4
	cur = writeBench(t, dir, "cur3.json", slow)
	ok, err = compareMode(base, cur, 0.50, 250_000, splitList(defaultRequiredSLO))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("throughput collapse passed — slack must not apply to throughput rows")
	}
}

// TestClassicGateStillWorks: the pre-existing ns/op direction for
// ordinary benchmark rows is unchanged by the throughput special case.
func TestClassicGateStillWorks(t *testing.T) {
	dir := t.TempDir()
	base := writeBench(t, dir, "base.json", map[string]float64{"BenchmarkEvalTwoHopJoin": 1000})
	cur := writeBench(t, dir, "cur.json", map[string]float64{"BenchmarkEvalTwoHopJoin": 1500})
	ok, err := compareMode(base, cur, 0.30, 0, splitList("BenchmarkEvalTwoHopJoin"))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("+50% ns/op regression passed a 30% gate")
	}
	ok, err = compareMode(base, cur, 0.60, 0, splitList("BenchmarkEvalTwoHopJoin"))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("+50% ns/op failed a 60% gate")
	}
}
