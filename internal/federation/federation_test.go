package federation

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"testing"

	"sapphire/internal/endpoint"
	"sapphire/internal/rdf"
	"sapphire/internal/store"
)

// twoEndpoints builds a federation whose data is split: people live on
// endpoint A, cities on endpoint B, with cross-links (the LOD-cloud
// shape Sapphire federates over).
func twoEndpoints(t testing.TB) (*Federation, *endpoint.Local, *endpoint.Local) {
	t.Helper()
	iri := func(x string) rdf.Term { return rdf.NewIRI("http://x/" + x) }
	en := func(x string) rdf.Term { return rdf.NewLangLiteral(x, "en") }
	typ := rdf.NewIRI(rdf.RDFType)

	people := store.New()
	for i, name := range []string{"Alice", "Bob", "Carol"} {
		s := iri(fmt.Sprintf("person%d", i))
		people.MustAdd(rdf.NewTriple(s, typ, iri("Person")))
		people.MustAdd(rdf.NewTriple(s, iri("name"), en(name)))
		people.MustAdd(rdf.NewTriple(s, iri("livesIn"), iri("city"+fmt.Sprint(i%2))))
	}
	cities := store.New()
	for i, name := range []string{"Springfield", "Shelbyville"} {
		c := iri(fmt.Sprintf("city%d", i))
		cities.MustAdd(rdf.NewTriple(c, typ, iri("City")))
		cities.MustAdd(rdf.NewTriple(c, iri("cityName"), en(name)))
	}
	a := endpoint.NewLocal("people", people, endpoint.Limits{})
	b := endpoint.NewLocal("cities", cities, endpoint.Limits{})
	return New(a, b), a, b
}

func TestFederatedSingleEndpointQuery(t *testing.T) {
	fed, _, _ := twoEndpoints(t)
	res, err := fed.Query(context.Background(),
		`SELECT ?n WHERE { ?s <http://x/name> ?n . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Errorf("rows = %d, want 3", len(res.Rows))
	}
}

func TestFederatedCrossEndpointJoin(t *testing.T) {
	fed, _, _ := twoEndpoints(t)
	// Join spans both endpoints: livesIn on A, cityName on B.
	res, err := fed.Query(context.Background(), `SELECT ?n ?cn WHERE {
		?s <http://x/name> ?n .
		?s <http://x/livesIn> ?c .
		?c <http://x/cityName> ?cn .
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v, want 3", res.Sorted())
	}
	// Alice (person0) lives in city0 Springfield.
	found := false
	for _, row := range res.Rows {
		if row["n"].Value == "Alice" && row["cn"].Value == "Springfield" {
			found = true
		}
	}
	if !found {
		t.Errorf("Alice/Springfield missing: %v", res.Sorted())
	}
}

func TestSourceSelectionSkipsIrrelevantMembers(t *testing.T) {
	fed, a, b := twoEndpoints(t)
	_, err := fed.Query(context.Background(),
		`SELECT ?cn WHERE { ?c <http://x/cityName> ?cn . }`)
	if err != nil {
		t.Fatal(err)
	}
	aq, bq := a.Stats().Queries, b.Stats().Queries
	// Both get one probe; only B gets the pattern fetch.
	if aq != 1 {
		t.Errorf("people endpoint served %d queries, want 1 (probe only)", aq)
	}
	if bq != 2 {
		t.Errorf("cities endpoint served %d queries, want 2 (probe + fetch)", bq)
	}
	// Second query against the same predicate reuses the source cache;
	// pattern cache makes it free entirely.
	_, err = fed.Query(context.Background(),
		`SELECT ?cn WHERE { ?c <http://x/cityName> ?cn . }`)
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats().Queries != aq {
		t.Errorf("probe repeated on irrelevant member")
	}
	if b.Stats().Queries != bq {
		t.Errorf("pattern not memoized: %d", b.Stats().Queries)
	}
}

func TestResetCachesForcesRefetch(t *testing.T) {
	fed, _, b := twoEndpoints(t)
	ctx := context.Background()
	q := `SELECT ?cn WHERE { ?c <http://x/cityName> ?cn . }`
	if _, err := fed.Query(ctx, q); err != nil {
		t.Fatal(err)
	}
	before := b.Stats().Queries
	fed.ResetCaches()
	if _, err := fed.Query(ctx, q); err != nil {
		t.Fatal(err)
	}
	if b.Stats().Queries != before+1 {
		t.Errorf("refetch count = %d, want %d", b.Stats().Queries, before+1)
	}
}

// TestEpochDrivenInvalidation pins the tentpole story at the federation
// layer: when a member's store mutates, the next federated query sees
// the new data with no ResetCaches call — the member epoch moved, so
// the pattern cache and source selection rebuild themselves.
func TestEpochDrivenInvalidation(t *testing.T) {
	fed, a, b := twoEndpoints(t)
	ctx := context.Background()
	q := `SELECT ?cn WHERE { ?c <http://x/cityName> ?cn . }`
	res, err := fed.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}

	// Mutate member B directly; no manual cache reset anywhere.
	b.Store().MustAdd(rdf.NewTriple(rdf.NewIRI("http://x/city2"),
		rdf.NewIRI("http://x/cityName"), rdf.NewLangLiteral("Ogdenville", "en")))
	res, err = fed.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("after mutation rows = %d, want 3 (stale pattern cache?)", len(res.Rows))
	}

	// Source selection must also rebuild: member A never had cityName,
	// so the cached FedX source list for that predicate excludes it. A
	// gains its first cityName triple; the epoch check must re-probe
	// and route the pattern to A too.
	a.Store().MustAdd(rdf.NewTriple(rdf.NewIRI("http://x/cityA"),
		rdf.NewIRI("http://x/cityName"), rdf.NewLangLiteral("Springfield A", "en")))
	res, err = fed.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("after source change rows = %d, want 4 (stale source cache?)", len(res.Rows))
	}
}

// TestEpochInvalidationOverHTTP runs the same story with the member
// behind a real HTTP server: the federation's freshness check rides the
// `GET ?epoch` probe and the member's mutation is observed remotely.
func TestEpochInvalidationOverHTTP(t *testing.T) {
	st := store.New()
	st.MustAdd(rdf.NewTriple(rdf.NewIRI("http://x/c1"),
		rdf.NewIRI("http://x/cityName"), rdf.NewLangLiteral("Springfield", "en")))
	srv := httptest.NewServer(endpoint.Handler(endpoint.NewLocal("remote", st, endpoint.Limits{})))
	defer srv.Close()

	fed := New(endpoint.NewClient(srv.URL))
	ctx := context.Background()
	q := `SELECT ?cn WHERE { ?c <http://x/cityName> ?cn . }`
	res, err := fed.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(res.Rows))
	}
	st.MustAdd(rdf.NewTriple(rdf.NewIRI("http://x/c2"),
		rdf.NewIRI("http://x/cityName"), rdf.NewLangLiteral("Shelbyville", "en")))
	res, err = fed.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("after remote mutation rows = %d, want 2", len(res.Rows))
	}
}

// TestEpochPollDisabled pins SetEpochPoll(-1): freshness checks stop,
// the pattern cache keeps serving stale data (the documented trade),
// and manual ResetCaches remains the escape hatch.
func TestEpochPollDisabled(t *testing.T) {
	fed, _, b := twoEndpoints(t)
	fed.SetEpochPoll(-1)
	ctx := context.Background()
	q := `SELECT ?cn WHERE { ?c <http://x/cityName> ?cn . }`
	if _, err := fed.Query(ctx, q); err != nil {
		t.Fatal(err)
	}
	b.Store().MustAdd(rdf.NewTriple(rdf.NewIRI("http://x/city2"),
		rdf.NewIRI("http://x/cityName"), rdf.NewLangLiteral("Ogdenville", "en")))
	res, err := fed.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("polling disabled but cache refreshed itself: %d rows", len(res.Rows))
	}
	fed.ResetCaches()
	res, err = fed.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("after manual reset rows = %d, want 3", len(res.Rows))
	}
}

// flakyEpoch wraps an endpoint and makes its epoch probe fail on
// demand, simulating a member whose data is fine but whose `GET
// ?epoch` times out.
type flakyEpoch struct {
	*endpoint.Local
	fail bool
}

func (f *flakyEpoch) Epoch(ctx context.Context) (uint64, bool) {
	if f.fail {
		return 0, false
	}
	return f.Local.Epoch(ctx)
}

// TestEpochProbeFailureDoesNotFlap pins that a transient probe failure
// keeps the member's last-known epoch in the fingerprint: the caches
// survive both the failure and the recovery instead of being dropped
// twice for a member whose data never changed.
func TestEpochProbeFailureDoesNotFlap(t *testing.T) {
	st := store.New()
	st.MustAdd(rdf.NewTriple(rdf.NewIRI("http://x/c1"),
		rdf.NewIRI("http://x/cityName"), rdf.NewLangLiteral("Springfield", "en")))
	member := &flakyEpoch{Local: endpoint.NewLocal("m", st, endpoint.Limits{})}
	fed := New(member)
	ctx := context.Background()
	q := `SELECT ?cn WHERE { ?c <http://x/cityName> ?cn . }`
	if _, err := fed.Query(ctx, q); err != nil {
		t.Fatal(err)
	}
	baseline := member.Stats().Queries

	member.fail = true // probe blips; data unchanged
	if _, err := fed.Query(ctx, q); err != nil {
		t.Fatal(err)
	}
	member.fail = false // probe recovers
	if _, err := fed.Query(ctx, q); err != nil {
		t.Fatal(err)
	}
	if got := member.Stats().Queries; got != baseline {
		t.Fatalf("probe flap caused refetches: member served %d queries, want %d", got, baseline)
	}

	// A real mutation after recovery still invalidates.
	st.MustAdd(rdf.NewTriple(rdf.NewIRI("http://x/c2"),
		rdf.NewIRI("http://x/cityName"), rdf.NewLangLiteral("Shelbyville", "en")))
	res, err := fed.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("post-recovery mutation not observed: %d rows", len(res.Rows))
	}
}

// TestStaleFingerprintFetchNotCached pins the guard on the cache fill
// path: a fetch that began under an older member-epoch fingerprint
// (i.e. raced a mutation plus a concurrent invalidation) returns its
// result but must not re-plant it into the pattern or source caches —
// epoch comparison would never evict it.
func TestStaleFingerprintFetchNotCached(t *testing.T) {
	fed, _, b := twoEndpoints(t)
	ctx := context.Background()
	fp := fed.checkEpochs(ctx)

	// Simulate the race: the fetch below carries the pre-mutation
	// fingerprint while the federation has already observed the new one.
	b.Store().MustAdd(rdf.NewTriple(rdf.NewIRI("http://x/city9"),
		rdf.NewIRI("http://x/cityName"), rdf.NewLangLiteral("North Haverbrook", "en")))
	if cur := fed.checkEpochs(ctx); cur == fp {
		t.Fatal("fingerprint did not move on mutation")
	}

	cn := rdf.NewIRI("http://x/cityName")
	triples, err := fed.fetchPattern(ctx, fp, rdf.Term{}, cn, rdf.Term{})
	if err != nil {
		t.Fatal(err)
	}
	if len(triples) != 3 {
		t.Fatalf("fetch rows = %d, want 3", len(triples))
	}
	fed.mu.Lock()
	_, patCached := fed.patternCache[patternKey(rdf.Term{}, cn, rdf.Term{})]
	_, srcCached := fed.sourceCache[cn.Value]
	fed.mu.Unlock()
	if patCached || srcCached {
		t.Fatalf("stale-fingerprint fetch was cached (pattern=%v source=%v)", patCached, srcCached)
	}

	// The same fetch under the current fingerprint does cache.
	cur := fed.checkEpochs(ctx)
	if _, err := fed.fetchPattern(ctx, cur, rdf.Term{}, cn, rdf.Term{}); err != nil {
		t.Fatal(err)
	}
	fed.mu.Lock()
	_, patCached = fed.patternCache[patternKey(rdf.Term{}, cn, rdf.Term{})]
	fed.mu.Unlock()
	if !patCached {
		t.Fatal("current-fingerprint fetch was not cached")
	}
}

func TestFederatedDuplicateElimination(t *testing.T) {
	// The same triple on two members must not double results.
	s1, s2 := store.New(), store.New()
	tr := rdf.NewTriple(rdf.NewIRI("http://x/a"), rdf.NewIRI("http://x/p"), rdf.NewLiteral("v"))
	s1.MustAdd(tr)
	s2.MustAdd(tr)
	fed := New(endpoint.NewLocal("m1", s1, endpoint.Limits{}),
		endpoint.NewLocal("m2", s2, endpoint.Limits{}))
	res, err := fed.Query(context.Background(), `SELECT ?o WHERE { ?s <http://x/p> ?o . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Errorf("rows = %d, want 1 after dedup", len(res.Rows))
	}
}

func TestFederatedErrorPropagation(t *testing.T) {
	st := store.New()
	for i := 0; i < 200; i++ {
		st.MustAdd(rdf.NewTriple(rdf.NewIRI(fmt.Sprintf("http://x/s%d", i)),
			rdf.NewIRI("http://x/p"), rdf.NewLiteral(fmt.Sprint(i))))
	}
	fed := New(endpoint.NewLocal("m", st, endpoint.Limits{MaxIntermediateRows: 3}))
	_, err := fed.Query(context.Background(), `SELECT ?o WHERE { ?s <http://x/p> ?o . }`)
	if !errors.Is(err, endpoint.ErrTimeout) {
		t.Errorf("err = %v, want wrapped ErrTimeout", err)
	}
}

func TestQueriesIssuedCounter(t *testing.T) {
	fed, _, _ := twoEndpoints(t)
	if fed.QueriesIssued() != 0 {
		t.Fatal("counter should start at 0")
	}
	_, err := fed.Query(context.Background(),
		`SELECT ?n WHERE { ?s <http://x/name> ?n . }`)
	if err != nil {
		t.Fatal(err)
	}
	if fed.QueriesIssued() < 2 {
		t.Errorf("QueriesIssued = %d, want probes + fetch", fed.QueriesIssued())
	}
}

func TestFederatedVariablePredicate(t *testing.T) {
	fed, _, _ := twoEndpoints(t)
	res, err := fed.Query(context.Background(),
		`SELECT DISTINCT ?p WHERE { <http://x/person0> ?p ?o . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Errorf("predicates = %v, want 3", res.Sorted())
	}
}

func TestFederatedAggregateAcrossMembers(t *testing.T) {
	fed, _, _ := twoEndpoints(t)
	res, err := fed.Query(context.Background(),
		`SELECT (COUNT(?s) AS ?n) WHERE { ?s a <http://x/Person> . }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0]["n"].Value != "3" {
		t.Errorf("count = %s, want 3", res.Rows[0]["n"].Value)
	}
}
