package sapphire

// Integration tests exercising the full stack the way a deployment wires
// it: HTTP SPARQL endpoints (with simulated limits and injected
// failures), the Sapphire client over them, and concurrent interactive
// sessions.

import (
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"sapphire/internal/datagen"
	"sapphire/internal/endpoint"
	"sapphire/internal/qald"
)

// TestFullStackOverHTTP drives the complete loop — initialization,
// completion, execution, suggestion, acceptance — across a real HTTP
// boundary with endpoint limits enabled.
func TestFullStackOverHTTP(t *testing.T) {
	d := datagen.Generate(datagen.SmallConfig())
	local := endpoint.NewLocal("synthetic-dbpedia", d.Store, endpoint.Limits{
		MaxIntermediateRows: 100000, // generous but present
	})
	srv := httptest.NewServer(endpoint.Handler(local))
	defer srv.Close()

	client := New(Defaults())
	if err := client.RegisterHTTP(context.Background(), srv.URL); err != nil {
		t.Fatal(err)
	}
	if st := client.Stats(); st.LiteralCount == 0 {
		t.Fatalf("nothing cached over HTTP: %+v", st)
	}

	// Type, complete, run, accept a suggestion.
	comps := client.Complete("Kennedy")
	if len(comps) == 0 {
		t.Fatal("no completions over HTTP")
	}
	res, sugs, err := client.Run(context.Background(), `SELECT ?p WHERE {
		?p <http://dbpedia.org/ontology/name> "Ted Kennedys"@en . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 || len(sugs) == 0 {
		t.Fatalf("rows = %d, suggestions = %d", len(res.Rows), len(sugs))
	}
	accepted := sugs[0]
	if accepted.Prefetched == nil || len(accepted.Prefetched.Rows) == 0 {
		t.Fatal("accepted suggestion lacks prefetched answers")
	}
}

// TestConcurrentSessions runs many interactive sessions against one
// client simultaneously — the Sapphire server serves multiple users.
func TestConcurrentSessions(t *testing.T) {
	c := newClient(t)
	terms := []string{"Kerouac", "Kennedy", "alma", "Austral", "press", "Sydney", "name", "Viking"}
	queries := []string{
		`SELECT ?b WHERE { ?b <http://dbpedia.org/ontology/author> ?a . ?a <http://dbpedia.org/ontology/name> "Jack Kerouac"@en . }`,
		`SELECT ?w WHERE { <http://dbpedia.org/resource/Tom_Hanks> <http://dbpedia.org/ontology/spouse> ?w . }`,
		`SELECT (COUNT(?s) AS ?n) WHERE { ?s a <http://dbpedia.org/ontology/City> . }`,
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				if got := c.Complete(terms[(i+j)%len(terms)]); len(got) == 0 && terms[(i+j)%len(terms)] == "Kerouac" {
					errs <- fmt.Errorf("no completions for Kerouac")
					return
				}
				if _, err := c.Query(context.Background(), queries[(i+j)%len(queries)]); err != nil {
					errs <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestFederationWithFlakyMember registers a healthy and a failing
// endpoint: registration of the flaky one may cache less, but queries
// against the healthy one keep working.
func TestFederationWithFlakyMember(t *testing.T) {
	d := datagen.Generate(datagen.SmallConfig())
	healthy := endpoint.NewLocal("healthy", d.Store, endpoint.Limits{})

	tiny := strings.NewReader(`<http://other.org/e1> <http://other.org/p> "flaky data"@en .
<http://other.org/e1> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://other.org/T> .
`)
	otherInner, err := NewEndpointFromNTriples("other", tiny, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	flaky := endpoint.NewFlaky(otherInner, 2, 0, 3) // every 2nd query fails

	c := New(Defaults())
	ctx := context.Background()
	if err := c.RegisterEndpoint(ctx, healthy); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterEndpoint(ctx, flaky); err != nil {
		t.Fatalf("flaky registration should degrade, not fail: %v", err)
	}
	// Queries on the healthy member still answer.
	res, err := c.Query(ctx, `SELECT ?w WHERE { <http://dbpedia.org/resource/Tom_Hanks> <http://dbpedia.org/ontology/spouse> ?w . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Errorf("rows = %d", len(res.Rows))
	}
}

// TestTurtleEndpointEndToEnd loads a Turtle dataset through the facade
// and runs the interactive loop on it.
func TestTurtleEndpointEndToEnd(t *testing.T) {
	ttl := `
@prefix x: <http://x/> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
x:kerouac x:name "Jack Kerouac"@en ; a x:Writer .
x:ontheroad x:author x:kerouac ; x:name "On the Road"@en ; a x:Book .
x:doorwide x:author x:kerouac ; x:name "Door Wide Open"@en ; a x:Book .
`
	ep, err := NewEndpointFromTurtle("ttl", strings.NewReader(ttl), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	c := New(Defaults())
	if err := c.RegisterEndpoint(context.Background(), ep); err != nil {
		t.Fatal(err)
	}
	if got := c.Complete("Kerouac"); len(got) == 0 {
		t.Error("no completions from Turtle data")
	}
	res, err := c.Query(context.Background(),
		`SELECT ?b WHERE { ?b <http://x/author> ?a . ?a <http://x/name> "Jack Kerouac"@en . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Errorf("rows = %d, want 2", len(res.Rows))
	}
}

// TestOptionalQueryThroughFederation exercises OPTIONAL and UNION across
// the federated path (endpoints see only single-pattern queries; the
// federator assembles the algebra).
func TestOptionalQueryThroughFederation(t *testing.T) {
	c := newClient(t)
	res, err := c.Query(context.Background(), `SELECT ?b ?p WHERE {
		?b <http://dbpedia.org/ontology/author> <http://dbpedia.org/resource/Jack_Kerouac> .
		OPTIONAL { ?b <http://dbpedia.org/ontology/publisher> ?p . }
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 (all Kerouac books)", len(res.Rows))
	}
	res, err = c.Query(context.Background(), `SELECT ?n WHERE {
		{ ?x <http://dbpedia.org/ontology/name> ?n . ?x a <http://dbpedia.org/ontology/ChessPlayer> . }
		UNION
		{ ?x <http://dbpedia.org/ontology/name> ?n . ?x a <http://dbpedia.org/ontology/Royalty> . }
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 5 {
		t.Errorf("union rows = %d", len(res.Rows))
	}
}

// TestEndToEndStudyQuestionOverHTTP picks one benchmark question and
// walks it through the HTTP endpoint path.
func TestEndToEndStudyQuestionOverHTTP(t *testing.T) {
	d := datagen.Generate(datagen.SmallConfig())
	srv := httptest.NewServer(endpoint.Handler(endpoint.NewLocal("remote", d.Store, endpoint.Limits{})))
	defer srv.Close()
	c := New(Defaults())
	if err := c.RegisterHTTP(context.Background(), srv.URL); err != nil {
		t.Fatal(err)
	}
	var m8 qald.Question
	for _, q := range qald.Questions() {
		if q.ID == "M8" {
			m8 = q
		}
	}
	gold, err := qald.GoldAnswers(d.Store, m8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Query(context.Background(), m8.Gold)
	if err != nil {
		t.Fatal(err)
	}
	got := qald.FromResults(res)
	if !got.Equal(gold) {
		t.Errorf("M8 over HTTP = %v, want %v", got.Values(), gold.Values())
	}
}
