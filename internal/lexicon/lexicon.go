// Package lexicon provides the verbalization lexicon the QSM consults to
// expand query predicates into natural-language synonyms before the
// similarity search (Algorithm 2, line 4: S = Lemon.getLexica(e)).
//
// The paper uses the DBpedia Lemon lexicon; this package substitutes a
// built-in table with the same lookup semantics: given a term, return the
// ways it can be verbalized, so "wife" and "husband" both reach "spouse".
package lexicon

import (
	"sort"
	"strings"
)

// Lexicon maps terms to their verbalization groups. Lookup is symmetric:
// every member of a group verbalizes every other member.
type Lexicon struct {
	groups [][]string
	index  map[string][]int
}

// New builds a lexicon from synonym groups. Entries are lowercased.
func New(groups [][]string) *Lexicon {
	lx := &Lexicon{index: make(map[string][]int)}
	for _, g := range groups {
		norm := make([]string, 0, len(g))
		seen := make(map[string]bool)
		for _, w := range g {
			w = strings.ToLower(strings.TrimSpace(w))
			if w != "" && !seen[w] {
				seen[w] = true
				norm = append(norm, w)
			}
		}
		if len(norm) < 2 {
			continue
		}
		gi := len(lx.groups)
		lx.groups = append(lx.groups, norm)
		for _, w := range norm {
			lx.index[w] = append(lx.index[w], gi)
		}
	}
	return lx
}

// Lexica returns the verbalizations of term: the term itself plus every
// other member of each synonym group containing it, sorted. A term not in
// the lexicon returns just itself, matching the paper's behaviour of
// falling back to the raw term.
func (lx *Lexicon) Lexica(term string) []string {
	t := strings.ToLower(strings.TrimSpace(term))
	if t == "" {
		return nil
	}
	out := map[string]bool{t: true}
	for _, gi := range lx.index[t] {
		for _, w := range lx.groups[gi] {
			out[w] = true
		}
	}
	res := make([]string, 0, len(out))
	for w := range out {
		res = append(res, w)
	}
	sort.Strings(res)
	return res
}

// Contains reports whether the term has lexicon entries beyond itself.
func (lx *Lexicon) Contains(term string) bool {
	t := strings.ToLower(strings.TrimSpace(term))
	return len(lx.index[t]) > 0
}

// Len returns the number of synonym groups.
func (lx *Lexicon) Len() int { return len(lx.groups) }

// Default returns the built-in lexicon substituting the DBpedia Lemon
// lexicon. It covers the relations exercised by the paper's user-study
// questions (Appendix B) plus common DBpedia predicate verbalizations.
func Default() *Lexicon {
	return New([][]string{
		{"spouse", "wife", "husband", "married", "marriage partner"},
		{"birth place", "birthplace", "born in", "place of birth", "born"},
		{"death place", "deathplace", "died in", "place of death", "died"},
		{"birth date", "birthday", "birthdays", "born on", "date of birth"},
		{"alma mater", "graduated from", "studied at", "educated at", "university attended"},
		{"author", "writer", "written by", "wrote"},
		{"publisher", "published by", "publishing house"},
		{"director", "directed by", "film director"},
		{"starring", "stars", "actors", "actor in", "acted in", "cast member"},
		{"population", "inhabitants", "people living", "number of people", "populace"},
		{"capital", "capital city", "seat of government"},
		{"country", "nation", "state"},
		{"located in", "location", "situated in", "lies in"},
		{"time zone", "timezone", "time offset"},
		{"currency", "money", "legal tender"},
		{"designer", "designed by", "architect"},
		{"creator", "created by", "founder", "founded by", "maker"},
		{"child", "children", "son", "daughter", "offspring"},
		{"parent", "parents", "father", "mother"},
		{"instrument", "instruments", "plays", "played instrument"},
		{"budget", "cost", "production budget"},
		{"revenue", "income", "earnings", "turnover"},
		{"industry", "sector", "business", "works in"},
		{"affiliation", "affiliated with", "member of", "belongs to"},
		{"depth", "deepness", "how deep", "maximum depth"},
		{"height", "tall", "how tall", "elevation"},
		{"pages", "page count", "number of pages", "length in pages"},
		{"nickname", "called", "known as", "alias", "surname"},
		{"vice president", "vicepresident", "deputy", "second in command"},
		{"river mouth", "mouth", "ends in", "flows into"},
		{"source", "starts in", "origin", "rises in"},
	})
}
