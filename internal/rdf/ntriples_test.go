package rdf

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestReaderBasic(t *testing.T) {
	doc := `
# a comment
<http://s> <http://p> <http://o> .
<http://s> <http://p> "literal" .

<http://s> <http://p> "tagged"@en .
<http://s> <http://p> "42"^^<http://www.w3.org/2001/XMLSchema#integer> .
_:b0 <http://p> "from blank" .
`
	r := NewReader(strings.NewReader(doc))
	triples, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(triples) != 5 {
		t.Fatalf("got %d triples, want 5", len(triples))
	}
	if triples[2].O.Lang != "en" {
		t.Errorf("lang = %q, want en", triples[2].O.Lang)
	}
	if triples[3].O.Datatype != XSDInteger {
		t.Errorf("datatype = %q", triples[3].O.Datatype)
	}
	if !triples[4].S.IsBlank() || triples[4].S.Value != "b0" {
		t.Errorf("blank subject = %+v", triples[4].S)
	}
}

func TestReaderErrors(t *testing.T) {
	bad := []string{
		`<http://s> <http://p> .`,                     // missing object
		`<http://s> <http://p> <http://o>`,            // missing dot
		`<http://s> <http://p> <http://o> . trailing`, // garbage
		`"lit" <http://p> <http://o> .`,               // literal subject
		`<http://s> "lit" <http://o> .`,               // literal predicate
		`<http://s> <http://p> "unterminated .`,       // unterminated literal
		`<http://s> <http://p> "bad\qescape" .`,       // bad escape
		`<http://s> <http://p> "x"@ .`,                // empty lang
		`<> <http://p> <http://o> .`,                  // empty IRI
		`<http://s <http://p> <http://o> .`,           // unterminated IRI
		`_: <http://p> <http://o> .`,                  // empty blank label
		`<http://s> <http://p> "x"^^bad .`,            // datatype not IRI
	}
	for _, doc := range bad {
		if _, err := ParseTriple(doc); err == nil {
			t.Errorf("ParseTriple(%q) succeeded, want error", doc)
		}
	}
}

func TestParseErrorMessage(t *testing.T) {
	_, err := ParseTriple(`<http://s> <http://p>`)
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T, want *ParseError", err)
	}
	if pe.Line != 1 || pe.Error() == "" {
		t.Errorf("unexpected ParseError: %+v", pe)
	}
}

func TestReaderLineNumbersInErrors(t *testing.T) {
	doc := "<http://s> <http://p> <http://o> .\nnot a triple\n"
	r := NewReader(strings.NewReader(doc))
	if _, err := r.Read(); err != nil {
		t.Fatal(err)
	}
	_, err := r.Read()
	pe, ok := err.(*ParseError)
	if !ok || pe.Line != 2 {
		t.Errorf("error = %v, want ParseError at line 2", err)
	}
}

func TestWriterRoundTrip(t *testing.T) {
	triples := []Triple{
		NewTriple(NewIRI("http://s"), NewIRI("http://p"), NewIRI("http://o")),
		NewTriple(NewIRI("http://s"), NewIRI("http://p"), NewLangLiteral("hello world", "en")),
		NewTriple(NewBlank("x"), NewIRI("http://p"), NewTypedLiteral("3.14", XSDDouble)),
		NewTriple(NewIRI("http://s"), NewIRI("http://p"), NewLiteral("esc \" \\ \n \t")),
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, tr := range triples {
		if err := w.Write(tr); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(triples) {
		t.Fatalf("round trip count %d, want %d", len(got), len(triples))
	}
	for i := range triples {
		if got[i] != triples[i] {
			t.Errorf("triple %d: got %v, want %v", i, got[i], triples[i])
		}
	}
}

func TestReaderEOF(t *testing.T) {
	r := NewReader(strings.NewReader("# only comments\n\n"))
	if _, err := r.Read(); err != io.EOF {
		t.Errorf("Read on comment-only doc = %v, want io.EOF", err)
	}
}

type failingWriter struct{ n int }

func (f *failingWriter) Write(p []byte) (int, error) {
	return 0, io.ErrClosedPipe
}

func TestWriterStickyError(t *testing.T) {
	w := NewWriter(&failingWriter{})
	tr := NewTriple(NewIRI("http://s"), NewIRI("http://p"), NewIRI("http://o"))
	// Fill the buffer to force a flush error.
	big := NewTriple(NewIRI("http://s/"+strings.Repeat("x", 100000)), NewIRI("http://p"), NewIRI("http://o"))
	_ = w.Write(big)
	err := w.Flush()
	if err == nil {
		t.Fatal("expected flush error")
	}
	if werr := w.Write(tr); werr == nil {
		t.Error("expected sticky error on Write after failure")
	}
}
