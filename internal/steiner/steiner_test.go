package steiner

import (
	"context"
	"fmt"
	"testing"

	"sapphire/internal/endpoint"
	"sapphire/internal/rdf"
	"sapphire/internal/store"
)

func iri(s string) rdf.Term { return rdf.NewIRI("http://x/" + s) }
func en(s string) rdf.Term  { return rdf.NewLangLiteral(s, "en") }

// figure6Graph reproduces the dataset fragment of Figure 6: books by
// Jack Kerouac published by Viking Press, where the user's query
// structure (?book writer/publisher literals) does not match the data
// (author/publisher via intermediate entities).
func figure6Graph(t testing.TB) *store.Store {
	t.Helper()
	s := store.New()
	add := func(a, p, b rdf.Term) { s.MustAdd(rdf.NewTriple(a, p, b)) }
	kerouac := iri("kerouac")
	viking := iri("viking")
	grove := iri("grove")
	add(kerouac, iri("name"), en("Jack Kerouac"))
	add(viking, iri("label"), en("Viking Press"))
	add(grove, iri("label"), en("Grove Press"))
	for _, b := range []struct {
		id, name string
		pub      rdf.Term
	}{
		{"ontheroad", "On The Road", viking},
		{"doorwideopen", "Door Wide Open", viking},
		{"doctorsax", "Doctor Sax", grove},
	} {
		bk := iri(b.id)
		add(bk, iri("author"), kerouac)
		add(bk, iri("publisher"), b.pub)
		add(bk, iri("name"), en(b.name))
	}
	// The Big Sur movie: connected to Kerouac via writer.
	add(iri("bigsur"), iri("writer"), kerouac)
	add(iri("bigsur"), iri("name"), en("Big Sur"))
	return s
}

func TestConnectFigure6(t *testing.T) {
	s := figure6Graph(t)
	groups := [][]rdf.Term{
		{en("Jack Kerouac")},
		{en("Viking Press")},
	}
	res, err := Connect(context.Background(), StoreSource{s}, groups, nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Connected {
		t.Fatal("groups not connected")
	}
	if res.GroupsConnected != 2 {
		t.Errorf("GroupsConnected = %d", res.GroupsConnected)
	}
	// The tree must contain a path literal→kerouac→book→viking→literal.
	if len(res.Tree) < 4 {
		t.Errorf("tree too small: %v", res.Tree)
	}
	// Terminals are the two literals.
	if len(res.Terminals) != 2 {
		t.Errorf("terminals = %v", res.Terminals)
	}
	// The path must pass through a book (author + publisher edges).
	hasAuthor, hasPublisher := false, false
	for _, tr := range res.Tree {
		if tr.P == iri("author") {
			hasAuthor = true
		}
		if tr.P == iri("publisher") {
			hasPublisher = true
		}
	}
	if !hasAuthor || !hasPublisher {
		t.Errorf("tree misses author/publisher edges: %v", res.Tree)
	}
}

func TestConnectPrefersQueryPredicates(t *testing.T) {
	// Two parallel paths of equal length; the one through "writer" is
	// preferred when the query mentioned it.
	s := store.New()
	add := func(a, p, b rdf.Term) { s.MustAdd(rdf.NewTriple(a, p, b)) }
	add(iri("e1"), iri("writer"), iri("shared"))
	add(iri("e1"), iri("nameA"), en("Left"))
	add(iri("e2"), iri("unrelated"), iri("shared"))
	add(iri("e2"), iri("nameB"), en("Left")) // same literal, two hosts
	add(iri("shared"), iri("nameC"), en("Right"))

	groups := [][]rdf.Term{{en("Left")}, {en("Right")}}
	preferred := map[string]bool{"http://x/writer": true}
	res, err := Connect(context.Background(), StoreSource{s}, groups, preferred, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Connected {
		t.Fatal("not connected")
	}
	usedWriter := false
	for _, tr := range res.Tree {
		if tr.P == iri("writer") {
			usedWriter = true
		}
		if tr.P == iri("unrelated") {
			t.Errorf("took the unpreferred path: %v", res.Tree)
		}
	}
	if !usedWriter {
		t.Errorf("preferred writer edge not used: %v", res.Tree)
	}
}

func TestConnectThreeGroups(t *testing.T) {
	// Star shape: three literals around a hub entity.
	s := store.New()
	add := func(a, p, b rdf.Term) { s.MustAdd(rdf.NewTriple(a, p, b)) }
	hub := iri("hub")
	add(hub, iri("p1"), en("A"))
	add(hub, iri("p2"), en("B"))
	add(hub, iri("p3"), en("C"))
	groups := [][]rdf.Term{{en("A")}, {en("B")}, {en("C")}}
	res, err := Connect(context.Background(), StoreSource{s}, groups, nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Connected || res.GroupsConnected != 3 {
		t.Fatalf("res = %+v", res)
	}
	if len(res.Tree) != 3 {
		t.Errorf("star tree edges = %v, want 3", res.Tree)
	}
}

func TestConnectUsesAlternativeSeeds(t *testing.T) {
	// The query literal "The Viking" does not exist; its alternative
	// "Viking Press" does, and must be chosen as the terminal.
	s := figure6Graph(t)
	groups := [][]rdf.Term{
		{en("Jack Kerouac")},
		{en("The Viking"), en("Viking Press")},
	}
	res, err := Connect(context.Background(), StoreSource{s}, groups, nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Connected {
		t.Fatal("not connected")
	}
	foundViking := false
	for _, term := range res.Terminals {
		if term == en("Viking Press") {
			foundViking = true
		}
	}
	if !foundViking {
		t.Errorf("terminals = %v, want Viking Press chosen", res.Terminals)
	}
}

func TestConnectDisconnected(t *testing.T) {
	s := store.New()
	s.MustAdd(rdf.NewTriple(iri("a"), iri("p"), en("island one")))
	s.MustAdd(rdf.NewTriple(iri("b"), iri("p"), en("island two")))
	groups := [][]rdf.Term{{en("island one")}, {en("island two")}}
	res, err := Connect(context.Background(), StoreSource{s}, groups, nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Connected {
		t.Error("disconnected islands reported connected")
	}
	if len(res.Tree) != 0 {
		t.Errorf("tree = %v, want empty", res.Tree)
	}
}

func TestConnectSingleGroup(t *testing.T) {
	s := figure6Graph(t)
	res, err := Connect(context.Background(), StoreSource{s},
		[][]rdf.Term{{en("Jack Kerouac")}}, nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Connected {
		t.Error("single group should be trivially connected")
	}
}

func TestConnectBudgetExhaustion(t *testing.T) {
	s := figure6Graph(t)
	cfg := DefaultConfig()
	cfg.QueryBudget = 2 // not enough to reach across
	res, err := Connect(context.Background(), StoreSource{s},
		[][]rdf.Term{{en("Jack Kerouac")}, {en("Viking Press")}}, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Connected {
		t.Error("budget of 2 cannot connect the groups")
	}
	if res.QueriesUsed > 2 {
		t.Errorf("used %d queries, budget 2", res.QueriesUsed)
	}
}

func TestConnectViaEndpointSourceCountsQueries(t *testing.T) {
	s := figure6Graph(t)
	ep := endpoint.NewLocal("test", s, endpoint.Limits{})
	src := EndpointSource{Endpoint: ep}
	res, err := Connect(context.Background(), src,
		[][]rdf.Term{{en("Jack Kerouac")}, {en("Viking Press")}}, nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Connected {
		t.Fatal("not connected via endpoint source")
	}
	if got := int(ep.Stats().Queries); got != res.QueriesUsed {
		t.Errorf("endpoint served %d queries, explorer counted %d", got, res.QueriesUsed)
	}
	if res.QueriesUsed > DefaultConfig().QueryBudget {
		t.Errorf("budget exceeded: %d", res.QueriesUsed)
	}
}

func TestConnectMemoization(t *testing.T) {
	// A graph where two groups expand through the same hub: the hub must
	// be fetched once.
	s := store.New()
	add := func(a, p, b rdf.Term) { s.MustAdd(rdf.NewTriple(a, p, b)) }
	hub := iri("hub")
	add(hub, iri("p1"), en("A"))
	add(hub, iri("p2"), en("B"))
	for i := 0; i < 5; i++ {
		add(hub, iri("p3"), iri("spoke"+string(rune('a'+i))))
	}
	ep := endpoint.NewLocal("test", s, endpoint.Limits{})
	res, err := Connect(context.Background(), EndpointSource{ep},
		[][]rdf.Term{{en("A")}, {en("B")}}, nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Connected {
		t.Fatal("not connected")
	}
	// Expansions: A (1 query, literal), B (1), hub (2: object+subject
	// sides). Memoization means hub is not expanded twice even though
	// both searches reach it.
	if res.QueriesUsed > 6 {
		t.Errorf("queries = %d; memoization broken", res.QueriesUsed)
	}
}

func TestPruneLeaves(t *testing.T) {
	a, b, c, d := iri("a"), iri("b"), iri("c"), iri("d")
	p := iri("p")
	edges := []rdf.Triple{
		{S: a, P: p, O: b},
		{S: b, P: p, O: c},
		{S: c, P: p, O: d}, // d dangles, not a terminal
	}
	terminals := map[rdf.Term]bool{a: true, c: true}
	got := pruneLeaves(edges, terminals)
	if len(got) != 2 {
		t.Errorf("pruned tree = %v, want 2 edges", got)
	}
	for _, tr := range got {
		if tr.O == d || tr.S == d {
			t.Error("dangling vertex survived pruning")
		}
	}
}

func TestUnionFind(t *testing.T) {
	uf := newUnionFind(4)
	if uf.components != 4 {
		t.Fatal("initial components")
	}
	uf.union(0, 1)
	uf.union(2, 3)
	if uf.components != 2 {
		t.Errorf("components = %d", uf.components)
	}
	uf.union(0, 1) // no-op
	if uf.components != 2 {
		t.Error("repeated union changed count")
	}
	uf.union(1, 2)
	if uf.components != 1 || uf.find(0) != uf.find(3) {
		t.Error("final union broken")
	}
}

// TestConnectFindsShortestMeeting is the regression for the bidirectional
// meeting bug: a high-cost meeting (shared rdf:type-style hub) is found
// first, but a cheaper connection through preferred predicates exists and
// must win.
func TestConnectFindsShortestMeeting(t *testing.T) {
	s := store.New()
	add := func(a, p, b rdf.Term) { s.MustAdd(rdf.NewTriple(a, p, b)) }
	typ := iri("type")
	hub := iri("SharedClass")
	kerouac, viking, book := iri("kerouac"), iri("viking"), iri("book")
	add(kerouac, iri("name"), en("Left Literal"))
	add(viking, iri("name"), en("Right Literal"))
	// Expensive symmetric path: both endpoints typed by the same hub.
	add(kerouac, typ, hub)
	add(viking, typ, hub)
	// Cheaper asymmetric path through the book, using preferred edges.
	add(book, iri("author"), kerouac)
	add(book, iri("publisher"), viking)

	preferred := map[string]bool{
		"http://x/name":      true,
		"http://x/publisher": true,
	}
	res, err := Connect(context.Background(), StoreSource{s},
		[][]rdf.Term{{en("Left Literal")}, {en("Right Literal")}}, preferred, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Connected {
		t.Fatal("not connected")
	}
	usedBook, usedHub := false, false
	for _, tr := range res.Tree {
		if tr.S == book {
			usedBook = true
		}
		if tr.O == hub {
			usedHub = true
		}
	}
	if !usedBook || usedHub {
		t.Errorf("tree took the expensive hub path: %v", res.Tree)
	}
}

// TestConnectMaxDegreeGuard verifies the paper's high-branching guard:
// a vertex whose fan-out exceeds the limit is not expanded, so the
// search must route around it (or fail).
func TestConnectMaxDegreeGuard(t *testing.T) {
	s := store.New()
	add := func(a, p, b rdf.Term) { s.MustAdd(rdf.NewTriple(a, p, b)) }
	// The only path runs through a celebrity vertex with huge fan-out.
	celeb := iri("celebrity")
	add(celeb, iri("p"), en("Group A"))
	add(celeb, iri("q"), en("Group B"))
	for i := 0; i < 50; i++ {
		add(celeb, iri("spam"), iri(fmt.Sprintf("follower%d", i)))
	}
	cfg := DefaultConfig()
	cfg.MaxDegree = 10
	res, err := Connect(context.Background(), StoreSource{s},
		[][]rdf.Term{{en("Group A")}, {en("Group B")}}, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The literals themselves expand fine (low degree) and meet AT the
	// celebrity without expanding it, so the connection still succeeds —
	// the guard prevents the 50-follower expansion, not the meeting.
	if !res.Connected {
		t.Fatalf("guard should not block meeting at the hub: %+v", res)
	}
	// With the guard so tight even the literals cannot expand, the
	// search fails gracefully.
	cfg.MaxDegree = 0
	cfg.QueryBudget = 1
	res, err = Connect(context.Background(), StoreSource{s},
		[][]rdf.Term{{en("Group A")}, {en("Group B")}}, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Connected {
		t.Error("budget 1 cannot connect anything")
	}
}
