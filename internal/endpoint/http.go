package endpoint

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"

	"sapphire/internal/rdf"
	"sapphire/internal/sparql"
)

// jsonResults is the SPARQL 1.1 Query Results JSON format, the wire
// representation between the HTTP endpoint and client.
type jsonResults struct {
	Head struct {
		Vars []string `json:"vars"`
	} `json:"head"`
	Results struct {
		Bindings []map[string]jsonTerm `json:"bindings"`
	} `json:"results"`
}

type jsonTerm struct {
	Type     string `json:"type"` // "uri", "literal", "bnode"
	Value    string `json:"value"`
	Lang     string `json:"xml:lang,omitempty"`
	Datatype string `json:"datatype,omitempty"`
}

func toJSONResults(res *sparql.Results) *jsonResults {
	out := &jsonResults{}
	out.Head.Vars = res.Vars
	out.Results.Bindings = make([]map[string]jsonTerm, 0, len(res.Rows))
	for _, row := range res.Rows {
		b := make(map[string]jsonTerm, len(row))
		for v, t := range row {
			b[v] = toJSONTerm(t)
		}
		out.Results.Bindings = append(out.Results.Bindings, b)
	}
	return out
}

func toJSONTerm(t rdf.Term) jsonTerm {
	switch t.Kind {
	case rdf.KindIRI:
		return jsonTerm{Type: "uri", Value: t.Value}
	case rdf.KindBlank:
		return jsonTerm{Type: "bnode", Value: t.Value}
	default:
		return jsonTerm{Type: "literal", Value: t.Value, Lang: t.Lang, Datatype: t.Datatype}
	}
}

func fromJSONTerm(jt jsonTerm) (rdf.Term, error) {
	switch jt.Type {
	case "uri":
		return rdf.NewIRI(jt.Value), nil
	case "bnode":
		return rdf.NewBlank(jt.Value), nil
	case "literal", "typed-literal":
		switch {
		case jt.Lang != "":
			return rdf.NewLangLiteral(jt.Value, jt.Lang), nil
		case jt.Datatype != "":
			return rdf.NewTypedLiteral(jt.Value, jt.Datatype), nil
		default:
			return rdf.NewLiteral(jt.Value), nil
		}
	default:
		return rdf.Term{}, fmt.Errorf("endpoint: unknown term type %q", jt.Type)
	}
}

// EpochHeader carries the endpoint's mutation epoch on every query
// response from an Epoched endpoint; the /epoch route (and the legacy
// GET ?epoch probe) reads it without running a query. Federated callers
// use the epoch to invalidate their caches only when a member's data
// actually changed.
const EpochHeader = "X-Sapphire-Epoch"

// MaxQueryBytes bounds the request body Handler accepts for a query.
// Bodies over the limit are refused with 413 / code "too_large" — never
// silently truncated into a different (possibly valid!) query.
const MaxQueryBytes = 1 << 20

// Handler exposes an Endpoint over HTTP with the SPARQL-protocol query
// semantics of the /sparql route: GET with ?query=, POST with an
// application/x-www-form-urlencoded form, POST with a raw
// application/sparql-query body (other content types are read as raw
// query text too, for compatibility). Bodies over MaxQueryBytes are
// refused with 413.
//
// Errors map to HTTP statuses — parse 400, timeout 503, rejection 429 —
// and requests that accept JSON get the structured error envelope (see
// the code set in errors.go) instead of a plain-text body.
//
// Two extensions carry the mutation epoch of Epoched endpoints across
// the wire: every query response bears the EpochHeader (the epoch read
// before evaluation, so a cached downstream entry keyed by it can never
// claim data newer than it serves), and `GET ?epoch` with no query
// returns the current epoch as a decimal body — the legacy form of the
// probe that NewMux's /epoch route serves; both stay answered.
// Non-Epoched endpoints answer the probe with 404.
func Handler(ep Endpoint) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var query string
		switch r.Method {
		case http.MethodGet:
			query = r.URL.Query().Get("query")
			if query == "" && r.URL.Query().Has("epoch") {
				serveEpoch(w, r, ep)
				return
			}
		case http.MethodPost:
			// MaxBytesReader rather than a silent LimitReader: a query
			// cut at a byte boundary can still parse — as a different
			// query. Over-limit bodies must fail loudly.
			r.Body = http.MaxBytesReader(w, r.Body, MaxQueryBytes)
			ct := r.Header.Get("Content-Type")
			if strings.HasPrefix(ct, "application/x-www-form-urlencoded") {
				if err := r.ParseForm(); err != nil {
					writeError(w, r, bodyErrCode(err), err.Error())
					return
				}
				query = r.PostForm.Get("query")
			} else {
				// application/sparql-query is the SPARQL-protocol direct
				// POST; unknown content types read the same way.
				body, err := io.ReadAll(r.Body)
				if err != nil {
					writeError(w, r, bodyErrCode(err), err.Error())
					return
				}
				query = string(body)
			}
		default:
			writeError(w, r, CodeMethod, "method not allowed; GET ?query= or POST a query")
			return
		}
		if strings.TrimSpace(query) == "" {
			writeError(w, r, CodeParse, "missing query")
			return
		}
		// The per-query header probe is skipped for endpoints whose
		// Epoch is itself a network round trip (a Handler proxying a
		// Client would otherwise double upstream traffic); the explicit
		// /epoch and GET ?epoch probes still forward for them.
		var epoch uint64
		epochKnown := false
		if _, remote := ep.(remoteEpoched); !remote {
			epoch, epochKnown = epochOf(r.Context(), ep)
		}
		res, err := ep.Query(r.Context(), query)
		if err != nil {
			writeError(w, r, codeForError(err), err.Error())
			return
		}
		w.Header().Set("Content-Type", "application/sparql-results+json")
		if epochKnown {
			w.Header().Set(EpochHeader, strconv.FormatUint(epoch, 10))
		}
		_ = json.NewEncoder(w).Encode(toJSONResults(res))
	})
}

// bodyErrCode classifies a request-body read/parse failure: over-limit
// bodies are too_large, everything else is a parse-level caller error.
func bodyErrCode(err error) string {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return CodeTooLarge
	}
	return CodeParse
}

// serveEpoch answers an epoch probe (the /epoch route and the legacy
// GET ?epoch form): the decimal epoch as text/plain, or 404 when the
// endpoint does not report epochs.
func serveEpoch(w http.ResponseWriter, r *http.Request, ep Endpoint) {
	if e, ok := epochOf(r.Context(), ep); ok {
		w.Header().Set("Content-Type", "text/plain")
		fmt.Fprintf(w, "%d", e)
		return
	}
	writeError(w, r, CodeUnsupported, "endpoint does not report epochs")
}

// epochOf reads an endpoint's epoch when it reports one.
func epochOf(ctx context.Context, ep Endpoint) (uint64, bool) {
	if e, ok := ep.(Epoched); ok {
		return e.Epoch(ctx)
	}
	return 0, false
}

// remoteEpoched marks Epoched implementations whose Epoch call costs a
// network round trip rather than an atomic load.
type remoteEpoched interface{ epochViaNetwork() }

func (c *Client) epochViaNetwork() {}

// Client is an Endpoint talking to a remote SPARQL HTTP endpoint.
// Queries are retried per the client's RetryPolicy — see NewClient.
type Client struct {
	url       string
	client    *http.Client
	retrier   *retrier
	userAgent string
	// epochMode remembers which epoch probe form the server answered
	// last (see Client.Epoch): 0 unknown, 1 the routed /epoch sibling,
	// 2 the legacy GET ?epoch query parameter.
	epochMode atomic.Int32
}

const (
	epochModeUnknown = iota
	epochModeRouted
	epochModeLegacy
)

// NewClient returns a client for the endpoint at rawURL, configured by
// functional options. With no options it uses the default RetryPolicy:
// transient failures (connection errors, 5xx) retry a bounded number of
// times with jittered exponential backoff, each attempt under its own
// timeout.
//
//	c := endpoint.NewClient(url,
//	        endpoint.WithRetryPolicy(endpoint.RetryPolicy{MaxAttempts: 2}),
//	        endpoint.WithUserAgent("sapphire-loadgen/1"))
func NewClient(rawURL string, opts ...Option) *Client {
	// No whole-query http.Client timeout: the per-attempt context bounds
	// each try, and the caller's context bounds the whole exchange.
	c := &Client{url: rawURL, client: &http.Client{}, retrier: newRetrier(RetryPolicy{})}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// NewClientWithPolicy returns a client with an explicit RetryPolicy.
//
// Deprecated: use NewClient(rawURL, WithRetryPolicy(p)).
func NewClientWithPolicy(rawURL string, p RetryPolicy) *Client {
	return NewClient(rawURL, WithRetryPolicy(p))
}

// Name implements Endpoint.
func (c *Client) Name() string { return c.url }

// Epoch implements Epoched by probing the server: first the routed
// /epoch sibling of the query URL (see NewMux), then the legacy
// `GET ?epoch` query-parameter form that plain Handler servers answer.
// Whichever form succeeds is remembered and tried first on subsequent
// probes, so steady-state traffic pays one request per probe against
// both new and old servers. ok is false when the server is unreachable,
// predates the epoch protocol entirely, or wraps a non-Epoched endpoint
// — callers then fall back to manual cache invalidation.
func (c *Client) Epoch(ctx context.Context) (uint64, bool) {
	probes := [2]struct {
		mode int32
		url  string
	}{
		{epochModeRouted, c.routedEpochURL()},
		{epochModeLegacy, c.legacyEpochURL()},
	}
	if c.epochMode.Load() == epochModeLegacy {
		probes[0], probes[1] = probes[1], probes[0]
	}
	for _, p := range probes {
		if e, ok := c.probeEpochURL(ctx, p.url); ok {
			c.epochMode.Store(p.mode)
			return e, true
		}
	}
	return 0, false
}

// routedEpochURL derives the /epoch sibling of the query URL: the last
// path segment (conventionally "sparql") is replaced by "epoch", so
// http://host:8890/sparql probes http://host:8890/epoch.
func (c *Client) routedEpochURL() string {
	u, err := url.Parse(c.url)
	if err != nil {
		return ""
	}
	path := u.Path
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		path = path[:i]
	}
	u.Path = path + "/epoch"
	u.RawQuery = ""
	return u.String()
}

// legacyEpochURL is the pre-mux probe form: the query URL itself with
// an `epoch` query parameter.
func (c *Client) legacyEpochURL() string {
	if strings.Contains(c.url, "?") {
		return c.url + "&epoch"
	}
	return c.url + "?epoch"
}

// probeEpochURL runs one epoch probe under the per-attempt timeout. The
// probe's failure mode (ok=false) already has a graceful fallback, so
// it never retries.
func (c *Client) probeEpochURL(ctx context.Context, u string) (uint64, bool) {
	if u == "" {
		return 0, false
	}
	ctx, cancel := context.WithTimeout(ctx, c.retrier.policy.perAttempt())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return 0, false
	}
	c.setCommonHeaders(req)
	resp, err := c.client.Do(req)
	if err != nil {
		return 0, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, false
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64))
	if err != nil {
		return 0, false
	}
	e, err := strconv.ParseUint(strings.TrimSpace(string(body)), 10, 64)
	if err != nil {
		return 0, false
	}
	return e, true
}

func (c *Client) setCommonHeaders(req *http.Request) {
	if c.userAgent != "" {
		req.Header.Set("User-Agent", c.userAgent)
	}
}

// Query implements Endpoint by POSTing the query as a form and decoding
// the SPARQL JSON results. Server failures map back to typed errors —
// via the structured JSON error envelope when the server emits one
// (errors.go), by HTTP status otherwise — so callers can react
// uniformly to local and remote endpoints: errors.Is(err, ErrTimeout),
// ErrRejected, and ErrParse all work across the wire, and errors.As
// surfaces the *APIError with the exact wire code.
//
// Transient failures — connection errors, 5xx statuses, and the
// "timeout" envelope code — are retried per the client's RetryPolicy
// with jittered exponential backoff, each attempt under its own
// timeout. 429/"rejected" and other 4xx fail immediately: the server
// rejected the query itself, and re-sending it unchanged cannot
// succeed. A done parent context stops the loop mid-backoff or
// mid-attempt.
func (c *Client) Query(ctx context.Context, query string) (*sparql.Results, error) {
	attempts := c.retrier.policy.attempts()
	var lastErr error
	for attempt := 1; attempt <= attempts; attempt++ {
		if attempt > 1 {
			if err := sleep(ctx, c.retrier.backoff(attempt-1)); err != nil {
				return nil, fmt.Errorf("endpoint %s: %w (last attempt: %v)", c.url, err, lastErr)
			}
		}
		res, retryable, err := c.queryOnce(ctx, query)
		if err == nil {
			return res, nil
		}
		lastErr = err
		if !retryable {
			return nil, err
		}
	}
	return nil, fmt.Errorf("endpoint %s: after %d attempts: %w", c.url, attempts, lastErr)
}

// queryOnce runs one attempt under the per-attempt timeout. retryable
// classifies the failure: true for transport errors, 5xx, and timeout
// envelopes (transient, worth another attempt), false for everything
// the server decided about the query itself.
func (c *Client) queryOnce(ctx context.Context, query string) (_ *sparql.Results, retryable bool, _ error) {
	actx, cancel := context.WithTimeout(ctx, c.retrier.policy.perAttempt())
	defer cancel()
	form := url.Values{"query": {query}}
	req, err := http.NewRequestWithContext(actx, http.MethodPost, c.url, strings.NewReader(form.Encode()))
	if err != nil {
		return nil, false, err
	}
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	// Asking for sparql-results+json doubles as the JSON error envelope
	// opt-in (see acceptsJSON).
	req.Header.Set("Accept", "application/sparql-results+json, application/json")
	c.setCommonHeaders(req)
	resp, err := c.client.Do(req)
	if err != nil {
		// Transport-level failure (or per-attempt timeout): retryable
		// unless the caller's own context is what ended it.
		return nil, ctx.Err() == nil, fmt.Errorf("endpoint %s: %w", c.url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		// Structured servers put the failure's meaning in the envelope;
		// decode it into the typed error instead of string-matching.
		if ae := decodeEnvelope(resp.Header.Get("Content-Type"), msg); ae != nil {
			err := fmt.Errorf("endpoint %s: %w", c.url, ae)
			switch ae.Code {
			case CodeTimeout:
				return nil, true, err
			case CodeInternal:
				return nil, resp.StatusCode >= 500, err
			default:
				// parse, rejected, too_large, method, unsupported: the
				// server judged the request itself; a verbatim retry
				// cannot succeed.
				return nil, false, err
			}
		}
		// Legacy plain-text servers: classify by status.
		switch {
		case resp.StatusCode == http.StatusServiceUnavailable:
			return nil, true, fmt.Errorf("%s: %w", strings.TrimSpace(string(msg)), ErrTimeout)
		case resp.StatusCode == http.StatusTooManyRequests:
			return nil, false, fmt.Errorf("%s: %w", strings.TrimSpace(string(msg)), ErrRejected)
		case resp.StatusCode >= 500:
			return nil, true, fmt.Errorf("endpoint %s: HTTP %d: %s", c.url, resp.StatusCode, strings.TrimSpace(string(msg)))
		default:
			return nil, false, fmt.Errorf("endpoint %s: HTTP %d: %s", c.url, resp.StatusCode, strings.TrimSpace(string(msg)))
		}
	}
	var jr jsonResults
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		return nil, false, fmt.Errorf("endpoint %s: bad JSON: %w", c.url, err)
	}
	res := &sparql.Results{Vars: jr.Head.Vars}
	for _, b := range jr.Results.Bindings {
		row := make(sparql.Binding, len(b))
		for v, jt := range b {
			t, err := fromJSONTerm(jt)
			if err != nil {
				return nil, false, err
			}
			row[v] = t
		}
		res.Rows = append(res.Rows, row)
	}
	return res, false, nil
}
