package store

import (
	"fmt"
	"testing"

	"sapphire/internal/rdf"
)

func benchStore(n int) *Store {
	s := New()
	p := rdf.NewIRI("http://x/p")
	typ := rdf.NewIRI(rdf.RDFType)
	cls := rdf.NewIRI("http://x/C")
	for i := 0; i < n; i++ {
		subj := rdf.NewIRI(fmt.Sprintf("http://x/s%d", i))
		s.MustAdd(rdf.NewTriple(subj, typ, cls))
		s.MustAdd(rdf.NewTriple(subj, p, rdf.NewLiteral(fmt.Sprintf("value %d", i))))
	}
	return s
}

// BenchmarkMatchByPredicate measures the POS index sweep.
func BenchmarkMatchByPredicate(b *testing.B) {
	s := benchStore(5000)
	p := rdf.NewIRI("http://x/p")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		s.Match(rdf.Term{}, p, rdf.Term{}, func(rdf.Triple) bool { n++; return true })
	}
}

// BenchmarkMatchBySubject measures the SPO point lookup.
func BenchmarkMatchBySubject(b *testing.B) {
	s := benchStore(5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		subj := rdf.NewIRI(fmt.Sprintf("http://x/s%d", i%5000))
		s.MatchSlice(subj, rdf.Term{}, rdf.Term{})
	}
}

// BenchmarkAdd measures insert throughput with index maintenance.
func BenchmarkAdd(b *testing.B) {
	s := New()
	p := rdf.NewIRI("http://x/p")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		subj := rdf.NewIRI(fmt.Sprintf("http://x/s%d", i))
		if _, err := s.Add(rdf.NewTriple(subj, p, rdf.NewLiteral(fmt.Sprint(i)))); err != nil {
			b.Fatal(err)
		}
	}
}
