package sparql

import (
	"fmt"

	"sapphire/internal/rdf"
)

// plan is the compiled, reordered form of a query: the slot layout of
// the solution rows, every pattern group in greedy execution order, and
// each FILTER assigned to the earliest pipeline stage at which its
// variables can no longer change. The plan is a pure function of the
// query and the graph's cardinality statistics — both the streaming
// pipeline (iter.go) and the materializing reference evaluator used by
// the differential battery execute the same plan, which is what makes
// their outputs byte-identical.
type plan struct {
	q *Query

	// slots maps every pattern variable to a column of the uint32
	// solution row; varNames is the inverse. Variables that appear only
	// in FILTER expressions have no slot.
	slots    map[string]int
	varNames []string

	// groups is the base BGP (one entry) or the UNION branches (one
	// entry each), with patterns in greedy most-selective-first order.
	groups [][]Pattern

	// optionals are the OPTIONAL blocks in declaration order, each with
	// its patterns greedily ordered given everything bound upstream.
	optionals [][]Pattern

	// FILTER placement. A filter runs at the earliest stage where every
	// variable it reads has been bound by all of its potential binders
	// (a later OPTIONAL block may still bind a variable a row is
	// missing, so such filters must wait for it):
	//
	//	levelFilters[l] — after join level l of the single base group
	//	baseFilters     — after the whole BGP / union stage
	//	optFilters[j]   — after OPTIONAL block j
	//	endFilters      — variables bound nowhere; always fail per row
	levelFilters [][]Expr
	baseFilters  []Expr
	optFilters   [][]Expr
	endFilters   []Expr
}

// width returns the solution-row width in slots.
func (pl *plan) width() int { return len(pl.varNames) }

// newPlan validates the query shape, lays out row slots, greedily orders
// every pattern group, and places the filters. reorder=false keeps the
// textual pattern order (used to measure what greedy ordering buys).
func newPlan(g Graph, q *Query, reorder bool) (*plan, error) {
	if len(q.Where) == 0 && len(q.UnionGroups) == 0 {
		return nil, fmt.Errorf("sparql: empty WHERE clause")
	}
	if len(q.UnionGroups) > 0 && len(q.Where) > 0 {
		return nil, fmt.Errorf("sparql: mixing UNION with top-level patterns is not supported")
	}
	pl := &plan{q: q, slots: make(map[string]int)}
	for _, v := range q.Vars() {
		pl.slots[v] = len(pl.varNames)
		pl.varNames = append(pl.varNames, v)
	}

	baseBound := make(map[string]bool)
	for _, grp := range patternGroups(q) {
		pl.groups = append(pl.groups, orderGreedy(g, grp, nil, reorder))
		for _, p := range grp {
			p.eachVar(func(v string) { baseBound[v] = true })
		}
	}
	if len(q.Optionals) > 0 {
		upstream := make(map[string]bool, len(baseBound))
		for v := range baseBound {
			upstream[v] = true
		}
		for _, opt := range q.Optionals {
			pl.optionals = append(pl.optionals, orderGreedy(g, opt, upstream, reorder))
			for _, p := range opt {
				p.eachVar(func(v string) { upstream[v] = true })
			}
		}
	}
	pl.placeFilters(baseBound)
	return pl, nil
}

// patternGroups returns the query's top-level pattern groups: the union
// branches, or the single base BGP.
func patternGroups(q *Query) [][]Pattern {
	if len(q.UnionGroups) > 0 {
		return q.UnionGroups
	}
	return [][]Pattern{q.Where}
}

// Filter stages, ordered: join level < base < optional j < end.
const (
	stageLevel = iota
	stageBase
	stageOpt
	stageEnd
)

type stageRef struct{ kind, idx int }

func (a stageRef) after(b stageRef) bool {
	if a.kind != b.kind {
		return a.kind > b.kind
	}
	return a.idx > b.idx
}

// placeFilters assigns each FILTER to its earliest sound stage: the
// latest stage among its variables' last potential binders. A variable
// guaranteed bound by the base stage (it appears in the single BGP, or
// in every union branch) is frozen there — OPTIONAL patterns mentioning
// it only constrain it. A variable not so guaranteed can still be bound
// by any OPTIONAL block that mentions it, so filters reading it wait for
// the last such block. Evaluating a filter at its placed stage then
// yields the same verdict the old evaluate-at-the-end semantics did for
// every row: none of the values it reads can change downstream.
func (pl *plan) placeFilters(baseBound map[string]bool) {
	q := pl.q
	pl.optFilters = make([][]Expr, len(pl.optionals))
	if len(q.Filters) == 0 {
		return
	}
	single := len(q.UnionGroups) == 0
	if single {
		pl.levelFilters = make([][]Expr, len(pl.groups[0]))
	}

	// guaranteed: bound after the base stage for every row.
	guaranteed := make(map[string]bool)
	if single {
		for v := range baseBound {
			guaranteed[v] = true
		}
	} else {
		for v := range baseBound {
			inAll := true
			for _, grp := range q.UnionGroups {
				if !groupBinds(grp, v) {
					inAll = false
					break
				}
			}
			if inAll {
				guaranteed[v] = true
			}
		}
	}
	firstLevel := make(map[string]int)
	if single {
		for l, p := range pl.groups[0] {
			p.eachVar(func(v string) {
				if _, ok := firstLevel[v]; !ok {
					firstLevel[v] = l
				}
			})
		}
	}
	lastOpt := make(map[string]int)
	for j, opt := range q.Optionals {
		for _, p := range opt {
			p.eachVar(func(v string) { lastOpt[v] = j })
		}
	}

	varStage := func(v string) stageRef {
		if guaranteed[v] {
			if single {
				return stageRef{stageLevel, firstLevel[v]}
			}
			return stageRef{stageBase, 0}
		}
		if j, ok := lastOpt[v]; ok {
			return stageRef{stageOpt, j}
		}
		if baseBound[v] { // in some union branches only, no optional binder
			return stageRef{stageBase, 0}
		}
		return stageRef{stageEnd, 0}
	}

	for _, f := range q.Filters {
		vars := make(map[string]bool)
		f.ExprVars(vars)
		st := stageRef{stageLevel, 0}
		if !single {
			st = stageRef{stageBase, 0}
		}
		for v := range vars {
			if s := varStage(v); s.after(st) {
				st = s
			}
		}
		switch st.kind {
		case stageLevel:
			pl.levelFilters[st.idx] = append(pl.levelFilters[st.idx], f)
		case stageBase:
			pl.baseFilters = append(pl.baseFilters, f)
		case stageOpt:
			pl.optFilters[st.idx] = append(pl.optFilters[st.idx], f)
		default:
			pl.endFilters = append(pl.endFilters, f)
		}
	}
}

func groupBinds(grp []Pattern, v string) bool {
	for _, p := range grp {
		found := false
		p.eachVar(func(pv string) { found = found || pv == v })
		if found {
			return true
		}
	}
	return false
}

// orderGreedy orders one pattern group most-selective-first: repeatedly
// pick the cheapest unexecuted pattern given the variables bound so far,
// preferring patterns that share a bound variable over cartesian
// products, then mark its variables bound and recost the rest. Ties keep
// textual order. The cost model is the graph's exact per-constant
// cardinalities (the store maintains them O(1) per entry), which is what
// lets greedy ordering beat estimate-driven planners here. Each
// pattern's base cardinality is looked up exactly once; only the
// bound-variable discount is recomputed per round.
func orderGreedy(g Graph, group []Pattern, bound map[string]bool, reorder bool) []Pattern {
	out := make([]Pattern, 0, len(group))
	if !reorder || len(group) == 1 {
		return append(out, group...)
	}
	b := make(map[string]bool, len(bound)+4)
	for v := range bound {
		b[v] = true
	}
	base := make([]int, len(group))
	for i, pat := range group {
		base[i] = patternBaseCost(g, pat)
	}
	used := make([]bool, len(group))
	for range group {
		idx := pickNextGreedy(group, base, used, b)
		used[idx] = true
		out = append(out, group[idx])
		group[idx].eachVar(func(v string) { b[v] = true })
	}
	return out
}

func pickNextGreedy(group []Pattern, base []int, used []bool, bound map[string]bool) int {
	best, bestCost := -1, 0
	for i, pat := range group {
		if used[i] {
			continue
		}
		cost, shares := base[i], false
		pat.eachVar(func(v string) {
			if bound[v] {
				cost /= 4
				shares = true
			}
		})
		// Penalize patterns with no join variable: cartesian product.
		if len(bound) > 0 && !shares {
			cost = cost*16 + 1<<20
		}
		if best < 0 || cost < bestCost {
			best, bestCost = i, cost
		}
	}
	return best
}

// patternBaseCost is the graph's cardinality for the pattern's constant
// positions — the rows an unseeded scan of pat would touch. The greedy
// loop discounts it by /4 per already-bound variable (a bound variable
// turns a sweep into a probe; the exact per-binding count is unknowable
// before the rows exist).
func patternBaseCost(g Graph, pat Pattern) int {
	term := func(n Node) rdf.Term {
		if !n.IsVar() {
			return n.Term
		}
		return rdf.Term{}
	}
	return g.CardinalityEstimate(term(pat.S), term(pat.P), term(pat.O))
}

// AdmissionEstimate returns the planner's cost of admitting the query:
// for each top-level pattern group (the base BGP, or each UNION branch)
// the cardinality of the group's first pattern after greedy reordering —
// the scan that actually drives the join — summed across groups.
// OPTIONAL blocks are excluded: they execute per surviving row, seeded
// with bound values, so their work is governed by the driving scans, not
// by their own standalone cardinalities. Endpoints use this for
// admission control (-reject-above): unlike summing the textual
// patterns' cardinalities, it admits cheap-but-badly-written queries
// whose first written pattern is a huge sweep the planner never runs
// first, while still rejecting queries whose cheapest driving scan is
// itself too large.
func AdmissionEstimate(g Graph, q *Query) int {
	total := 0
	for _, grp := range patternGroups(q) {
		if len(grp) == 0 {
			continue
		}
		ordered := orderGreedy(g, grp, nil, true)
		total += patternBaseCost(g, ordered[0])
	}
	return total
}
