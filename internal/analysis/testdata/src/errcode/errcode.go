// Package errcode is the golden fixture for the errcode analyzer: a
// miniature of internal/endpoint's closed error-code protocol.
package errcode

// The closed set. CodeGhost is declared but mapped nowhere — the
// analyzer reports it at the declaration.
const (
	CodeParse   = "parse"
	CodeTimeout = "timeout"
	CodeGhost   = "ghost" // want `declared error code CodeGhost appears in no code-mapping switch`
)

// APIError mirrors the endpoint's wire error.
type APIError struct {
	Code    string
	Message string
}

// statusForCode is a server-side mapping switch: its tag is the
// parameter named code.
func statusForCode(code string) int {
	switch code {
	case CodeParse:
		return 400
	case CodeTimeout:
		return 503
	case "im_a_teapot": // want `"im_a_teapot" as a case in a code switch is not in the closed error-code set`
		return 418
	}
	return 500
}

// classify is a client-side mapping switch over APIError.Code.
func classify(e *APIError) bool {
	switch e.Code {
	case CodeTimeout:
		return true
	}
	return false
}

func writeError(code, message string) {
	_ = statusForCode(code)
}

func emitters() {
	writeError(CodeParse, "bad query")
	writeError("parse", "literal, but in the set: allowed")
	writeError("parse_error", "x") // want `"parse_error" passed as the .code. argument of writeError`
	_ = &APIError{Code: CodeTimeout, Message: "ok"}
	_ = &APIError{Code: "whoops", Message: "y"} // want `"whoops" assigned to APIError.Code is not in the closed error-code set`
}
