package sparql

import (
	"strings"
	"testing"

	"sapphire/internal/rdf"
)

func TestParsePaperIntroQuery(t *testing.T) {
	// The Ivy League query from Section 1 of the paper.
	src := `PREFIX res: <http://dbpedia.org/resource/>
PREFIX dbo: <http://dbpedia.org/ontology/>
SELECT DISTINCT count (?uri) WHERE {
  ?uri rdf:type dbo:Scientist.
  ?uri dbo:almaMater ?university.
  ?university dbo:affiliation res:Ivy_League.
}`
	q, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Distinct {
		t.Error("DISTINCT not parsed")
	}
	if len(q.Projections) != 1 || q.Projections[0].Agg != AggCount || q.Projections[0].Var != "uri" {
		t.Errorf("projections = %+v", q.Projections)
	}
	if len(q.Where) != 3 {
		t.Fatalf("patterns = %d, want 3", len(q.Where))
	}
	if q.Where[0].P.Term.Value != rdf.RDFType {
		t.Errorf("rdf:type not expanded: %v", q.Where[0].P)
	}
	if q.Where[2].O.Term.Value != "http://dbpedia.org/resource/Ivy_League" {
		t.Errorf("res: prefix not expanded: %v", q.Where[2].O)
	}
}

func TestParseInitializationQ1(t *testing.T) {
	// Appendix A Q1: predicates by frequency.
	src := `SELECT DISTINCT ?p (COUNT(*) AS ?frequency)
WHERE { ?s ?p ?o }
GROUP BY ?p
ORDER BY DESC(?frequency)`
	q, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Projections) != 2 {
		t.Fatalf("projections = %+v", q.Projections)
	}
	if q.Projections[1].Agg != AggCount || q.Projections[1].Var != "" || q.Projections[1].As != "frequency" {
		t.Errorf("aggregate = %+v", q.Projections[1])
	}
	if len(q.GroupBy) != 1 || q.GroupBy[0] != "p" {
		t.Errorf("group by = %v", q.GroupBy)
	}
	if len(q.OrderBy) != 1 || !q.OrderBy[0].Desc || q.OrderBy[0].Var != "frequency" {
		t.Errorf("order by = %+v", q.OrderBy)
	}
}

func TestParseInitializationQ5(t *testing.T) {
	// Appendix A Q5 with filters, LIMIT.
	src := `SELECT DISTINCT ?o
WHERE {
  ?s <http://dbpedia.org/ontology/name> ?o.
  FILTER (isliteral(?o) && lang(?o) = 'en' && strlen(str(?o)) < 80)
}
LIMIT 1`
	q, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Filters) != 1 {
		t.Fatalf("filters = %d, want 1", len(q.Filters))
	}
	if q.Limit != 1 {
		t.Errorf("limit = %d", q.Limit)
	}
}

func TestParsePaginationAndOffset(t *testing.T) {
	q, err := Parse(`SELECT ?o WHERE { ?s ?p ?o } LIMIT 100 OFFSET 200`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Limit != 100 || q.Offset != 200 {
		t.Errorf("limit/offset = %d/%d", q.Limit, q.Offset)
	}
}

func TestParseATypeShorthand(t *testing.T) {
	q, err := Parse(`SELECT ?s WHERE { ?s a <http://x/Person> . }`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Where[0].P.Term.Value != rdf.RDFType {
		t.Errorf("'a' not expanded to rdf:type: %v", q.Where[0].P)
	}
}

func TestParseSemicolonContinuation(t *testing.T) {
	q, err := Parse(`SELECT ?n ?b WHERE { ?s <http://x/name> ?n ; <http://x/born> ?b . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Where) != 2 {
		t.Fatalf("patterns = %d, want 2", len(q.Where))
	}
	if q.Where[0].S != q.Where[1].S {
		t.Error("semicolon did not share the subject")
	}
}

func TestParseLiteralForms(t *testing.T) {
	q, err := Parse(`SELECT ?s WHERE {
		?s <http://x/name> "Kennedy"@en .
		?s <http://x/age> 42 .
		?s <http://x/height> 1.85 .
		?s <http://x/code> "X"^^<http://www.w3.org/2001/XMLSchema#string> .
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Where[0].O.Term.Lang != "en" {
		t.Errorf("lang literal: %v", q.Where[0].O)
	}
	if q.Where[1].O.Term.Datatype != rdf.XSDInteger {
		t.Errorf("int literal: %v", q.Where[1].O)
	}
	if q.Where[2].O.Term.Datatype != rdf.XSDDouble {
		t.Errorf("double literal: %v", q.Where[2].O)
	}
	if q.Where[3].O.Term.Datatype != rdf.XSDString {
		t.Errorf("typed literal: %v", q.Where[3].O)
	}
}

func TestParseSelectStar(t *testing.T) {
	q, err := Parse(`SELECT * WHERE { ?s ?p ?o }`)
	if err != nil {
		t.Fatal(err)
	}
	if !q.SelectAll {
		t.Error("SELECT * not recognized")
	}
}

func TestParseComments(t *testing.T) {
	q, err := Parse("# leading comment\nSELECT ?s # trailing\nWHERE { ?s ?p ?o }")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Where) != 1 {
		t.Error("comment handling broke parse")
	}
}

func TestParseErrors(t *testing.T) {
	bad := map[string]string{
		"no select":             `WHERE { ?s ?p ?o }`,
		"unterminated group":    `SELECT ?s WHERE { ?s ?p ?o`,
		"unknown prefix":        `SELECT ?s WHERE { ?s dbx:name ?o }`,
		"projected not bound":   `SELECT ?x WHERE { ?s ?p ?o }`,
		"agg mix without group": `SELECT ?s (COUNT(?o) AS ?c) WHERE { ?s ?p ?o }`,
		"group by unbound":      `SELECT (COUNT(?o) AS ?c) WHERE { ?s ?p ?o } GROUP BY ?x`,
		"bad limit":             `SELECT ?s WHERE { ?s ?p ?o } LIMIT abc`,
		"literal subject":       `SELECT ?p WHERE { "x" ?p ?o }`,
		"empty where":           `SELECT ?s WHERE { }`,
		"trailing garbage":      `SELECT ?s WHERE { ?s ?p ?o } nonsense ?x`,
		"star in max":           `SELECT (MAX(*) AS ?m) WHERE { ?s ?p ?o }`,
		"order by nothing":      `SELECT ?s WHERE { ?s ?p ?o } ORDER BY`,
		"group by nothing":      `SELECT ?s WHERE { ?s ?p ?o } GROUP BY`,
	}
	for name, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: Parse(%q) succeeded, want error", name, src)
		}
	}
}

func TestParseEmptyWhereEvalError(t *testing.T) {
	// `SELECT ?s WHERE { }` fails validation because ?s is unbound;
	// SELECT * over empty pattern parses but evaluation rejects it.
	q, err := Parse(`SELECT * WHERE { }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Eval(emptyGraph{}, q, Options{}); err == nil {
		t.Error("empty WHERE evaluated without error")
	}
}

type emptyGraph struct{}

func (emptyGraph) Match(s, p, o rdf.Term, fn func(rdf.Triple) bool) {}
func (emptyGraph) CardinalityEstimate(s, p, o rdf.Term) int         { return 0 }

func TestQueryStringRoundTrip(t *testing.T) {
	srcs := []string{
		`SELECT DISTINCT ?s WHERE { ?s <http://x/p> "v"@en . } LIMIT 5`,
		`SELECT (COUNT(DISTINCT ?s) AS ?n) WHERE { ?s <http://x/p> ?o . FILTER (strlen(str(?o)) < 80) }`,
		`SELECT ?s ?o WHERE { ?s <http://x/p> ?o . } ORDER BY DESC(?o) OFFSET 2`,
		`SELECT ?p (COUNT(*) AS ?frequency) WHERE { ?s ?p ?o . } GROUP BY ?p ORDER BY DESC(?frequency)`,
	}
	for _, src := range srcs {
		q1, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		q2, err := Parse(q1.String())
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", q1.String(), err)
		}
		if q1.String() != q2.String() {
			t.Errorf("round trip changed query:\n%s\nvs\n%s", q1.String(), q2.String())
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	q := MustParse(`SELECT ?s WHERE { ?s <http://x/p> "orig" . }`)
	c := q.Clone()
	c.Where[0].O = NewTermNode(rdf.NewLiteral("changed"))
	c.Prefixes["new"] = "http://new/"
	if q.Where[0].O.Term.Value != "orig" {
		t.Error("clone shares Where slice")
	}
	if _, ok := q.Prefixes["new"]; ok {
		t.Error("clone shares Prefixes map")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse did not panic")
		}
	}()
	MustParse("not sparql at all")
}

func TestNodeAndPatternString(t *testing.T) {
	p := Pattern{S: NewVar("s"), P: NewTermNode(rdf.NewIRI("http://x/p")), O: NewTermNode(rdf.NewLiteral("v"))}
	want := `?s <http://x/p> "v" .`
	if p.String() != want {
		t.Errorf("Pattern.String() = %q, want %q", p.String(), want)
	}
	if got := p.Vars(); len(got) != 1 || got[0] != "s" {
		t.Errorf("Vars = %v", got)
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	if _, err := Parse(`select distinct ?s where { ?s ?p ?o } order by ?s limit 1 offset 0`); err != nil {
		t.Fatal(err)
	}
}

func TestParseFilterComparisonAmbiguity(t *testing.T) {
	// '<' as comparison right before a number, variable, and negative.
	for _, src := range []string{
		`SELECT ?s WHERE { ?s <http://x/age> ?a . FILTER (?a < 10) }`,
		`SELECT ?s WHERE { ?s <http://x/age> ?a . FILTER (?a < ?a) }`,
		`SELECT ?s WHERE { ?s <http://x/age> ?a . FILTER (?a < -5) }`,
		`SELECT ?s WHERE { ?s <http://x/age> ?a . FILTER (?a <= 10) }`,
		`SELECT ?s WHERE { ?s <http://x/age> ?a . FILTER (?a > 10 || ?a < 100) }`,
	} {
		if _, err := Parse(src); err != nil {
			t.Errorf("Parse(%q): %v", src, err)
		}
	}
}

func TestProjectionName(t *testing.T) {
	cases := []struct {
		p    Projection
		want string
	}{
		{Projection{Var: "x"}, "x"},
		{Projection{Var: "x", As: "y"}, "y"},
		{Projection{Agg: AggCount}, "count"},
		{Projection{Agg: AggMax, Var: "v"}, "max"},
	}
	for _, tc := range cases {
		if got := tc.p.Name(); got != tc.want {
			t.Errorf("Name(%+v) = %q, want %q", tc.p, got, tc.want)
		}
	}
}

func TestQueryVarsOrder(t *testing.T) {
	q := MustParse(`SELECT ?b WHERE { ?a <http://x/p> ?b . ?b <http://x/q> ?c . }`)
	got := q.Vars()
	want := []string{"a", "b", "c"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("Vars = %v, want %v", got, want)
	}
}
