package operator

import (
	"context"
	"strings"
	"testing"

	"sapphire/internal/qald"
	"sapphire/internal/rdf"
	"sapphire/internal/sparql"
)

func findQuestion(t testing.TB, id string) qald.Question {
	t.Helper()
	for _, q := range qald.Questions() {
		if q.ID == id {
			return q
		}
	}
	t.Fatalf("question %s not found", id)
	return qald.Question{}
}

func TestBuildQueryCountPlan(t *testing.T) {
	op, _ := testOperator(t)
	q, err := op.BuildQuery(findQuestion(t, "X17").Plan)
	if err != nil {
		t.Fatal(err)
	}
	if !q.HasAggregates() {
		t.Errorf("count plan produced no aggregate:\n%s", q)
	}
	if !strings.Contains(q.String(), "COUNT(DISTINCT ?b)") {
		t.Errorf("query = %s", q)
	}
}

func TestBuildQuerySuperlativePlan(t *testing.T) {
	op, _ := testOperator(t)
	q, err := op.BuildQuery(findQuestion(t, "D5").Plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.OrderBy) != 1 || !q.OrderBy[0].Desc || q.Limit != 1 {
		t.Errorf("superlative modifiers missing:\n%s", q)
	}
}

func TestBuildQueryFilterPlan(t *testing.T) {
	op, _ := testOperator(t)
	q, err := op.BuildQuery(findQuestion(t, "D2").Plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Filters) != 1 {
		t.Errorf("filter not carried over:\n%s", q)
	}
}

func TestAnswerCountQuestion(t *testing.T) {
	op, d := testOperator(t)
	q := findQuestion(t, "X17")
	answers, ok := op.Answer(context.Background(), q)
	if !ok {
		t.Fatal("X17 unprocessed")
	}
	gold, _ := qald.GoldAnswers(d.Store, q)
	if qald.Judge(answers, gold) != qald.Right {
		t.Errorf("X17 = %v, gold %v", answers.Values(), gold.Values())
	}
}

func TestAnswerSuperlativeQuestion(t *testing.T) {
	op, d := testOperator(t)
	for _, id := range []string{"D5", "D9", "X16"} {
		q := findQuestion(t, id)
		answers, ok := op.Answer(context.Background(), q)
		if !ok {
			t.Errorf("%s unprocessed", id)
			continue
		}
		gold, _ := qald.GoldAnswers(d.Store, q)
		if qald.Judge(answers, gold) != qald.Right {
			t.Errorf("%s = %v, gold %v", id, answers.Values(), gold.Values())
		}
	}
}

func TestReapplyModifiersOnRelaxedQuery(t *testing.T) {
	op, _ := testOperator(t)
	plan := findQuestion(t, "D5").Plan // ORDER BY DESC(?p) LIMIT 1 on population
	// A relaxed-looking query containing the population predicate.
	relaxed := sparql.MustParse(`SELECT * WHERE {
		?v0 <http://dbpedia.org/ontology/country> ?v1 .
		?v0 <http://dbpedia.org/ontology/populationTotal> ?v2 .
	}`)
	amended := op.reapplyModifiers(relaxed, plan)
	if amended == nil {
		t.Fatal("reapplyModifiers returned nil")
	}
	if len(amended.OrderBy) != 1 || amended.OrderBy[0].Var != "v2" || !amended.OrderBy[0].Desc {
		t.Errorf("order not reapplied: %+v", amended.OrderBy)
	}
	if amended.Limit != 1 {
		t.Errorf("limit = %d", amended.Limit)
	}
}

func TestReapplyModifiersAddsMissingTriple(t *testing.T) {
	op, _ := testOperator(t)
	plan := findQuestion(t, "D5").Plan
	// Relaxed query lost the population edge entirely.
	relaxed := sparql.MustParse(`SELECT * WHERE {
		?v0 <http://dbpedia.org/ontology/country> ?v1 .
	}`)
	amended := op.reapplyModifiers(relaxed, plan)
	if amended == nil {
		t.Fatal("reapplyModifiers returned nil")
	}
	if len(amended.Where) != 2 {
		t.Errorf("missing quantity triple not re-added:\n%s", amended)
	}
	if len(amended.OrderBy) != 1 {
		t.Errorf("order not applied: %+v", amended.OrderBy)
	}
}

func TestMatchesIntent(t *testing.T) {
	intended := []string{"Jack Kerouac", "Viking Press"}
	cases := []struct {
		suggested string
		want      bool
	}{
		{"Jack Kerouac", true},
		{"jack kerouac", true},
		{"Jack Kerouacs", true}, // plural typo fix
		{"Jack Torres", false},  // different person
		{"Viking Press", true},
		{"Penguin Books", false},
	}
	for _, tc := range cases {
		if got := matchesIntent(tc.suggested, intended); got != tc.want {
			t.Errorf("matchesIntent(%q) = %v, want %v", tc.suggested, got, tc.want)
		}
	}
}

func TestPickSuggestionEmpty(t *testing.T) {
	if _, ok := pickSuggestion(nil, nil); ok {
		t.Error("empty suggestion list accepted")
	}
}

func TestExtractSingleColumn(t *testing.T) {
	op, _ := testOperator(t)
	res := &sparql.Results{Vars: []string{"x"}}
	res.Rows = []sparql.Binding{{"x": rdf.NewIRI("http://a")}}
	got := op.extract(res, qald.Plan{Project: "x"})
	if len(got) != 1 || !got["http://a"] {
		t.Errorf("extract = %v", got.Values())
	}
	// Empty results extract to empty set.
	if got := op.extract(&sparql.Results{}, qald.Plan{}); len(got) != 0 {
		t.Errorf("empty extract = %v", got.Values())
	}
}
