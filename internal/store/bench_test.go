package store

import (
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"sapphire/internal/rdf"
)

func benchStoreSharded(n, shards int) *Store {
	s := NewSharded(shards)
	p := rdf.NewIRI("http://x/p")
	typ := rdf.NewIRI(rdf.RDFType)
	cls := rdf.NewIRI("http://x/C")
	for i := 0; i < n; i++ {
		subj := rdf.NewIRI(fmt.Sprintf("http://x/s%d", i))
		s.MustAdd(rdf.NewTriple(subj, typ, cls))
		s.MustAdd(rdf.NewTriple(subj, p, rdf.NewLiteral(fmt.Sprintf("value %d", i))))
	}
	return s
}

func benchStore(n int) *Store { return benchStoreSharded(n, DefaultShards()) }

// warmRanks drives the dictionary's background rank build to completion
// so steady-state merge benchmarks measure label compares, not the
// string-compare fallback of the warmup window. No-op below the build
// floor (small stores never build a table).
func warmRanks(b *testing.B, s *Store) {
	b.Helper()
	if s.dict.terms.Load() < rankMinTerms {
		return
	}
	s.dict.maybeBuildRanks()
	for i := 0; s.dict.ranksBuilding.Load() || s.dict.ranks.Load() == nil; i++ {
		if i > 10000 {
			b.Fatal("rank build did not finish")
		}
		time.Sleep(time.Millisecond)
	}
}

// shardModes are the two configurations the shard-sensitive benchmarks
// pin: single (the pre-sharding behavior, no merge overhead) and a
// fixed 8 shards (pays the cross-shard term-ordered merge; fixed, not
// GOMAXPROCS, so benchmark names and numbers compare across machines —
// the acceptance measurement in the ROADMAP is also at 8).
var shardModes = []struct {
	name   string
	shards int
}{
	{"single", 1},
	{"sharded8", 8},
}

// BenchmarkMatchByPredicate measures the POS index sweep — a wildcard-
// subject shape, so the sharded variant exercises the cross-shard merge.
func BenchmarkMatchByPredicate(b *testing.B) {
	for _, mode := range shardModes {
		b.Run(mode.name, func(b *testing.B) {
			s := benchStoreSharded(5000, mode.shards)
			p := rdf.NewIRI("http://x/p")
			warmRanks(b, s)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n := 0
				s.Match(rdf.Term{}, p, rdf.Term{}, func(rdf.Triple) bool { n++; return true })
				if n != 5000 {
					b.Fatalf("matched %d", n)
				}
			}
		})
	}
}

// BenchmarkMatchBySubject measures the SPO point lookup.
func BenchmarkMatchBySubject(b *testing.B) {
	s := benchStore(5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		subj := rdf.NewIRI(fmt.Sprintf("http://x/s%d", i%5000))
		s.MatchSlice(subj, rdf.Term{}, rdf.Term{})
	}
}

// BenchmarkMatchWildcardPredicate measures the shape that used to re-sort
// map keys on every call: predicate wildcard with a bound object, i.e.
// (?s ?p <o>), walking the OSP index across all subjects pointing at one
// hub object. With incrementally sorted key slices this is a flat sweep.
func BenchmarkMatchWildcardPredicate(b *testing.B) {
	s := New()
	hub := rdf.NewIRI("http://x/hub")
	p := rdf.NewIRI("http://x/p")
	for i := 0; i < 5000; i++ {
		s.MustAdd(rdf.NewTriple(rdf.NewIRI(fmt.Sprintf("http://x/s%d", i)), p, hub))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		s.Match(rdf.Term{}, rdf.Term{}, hub, func(rdf.Triple) bool { n++; return true })
		if n != 5000 {
			b.Fatalf("matched %d", n)
		}
	}
}

// BenchmarkMatchIDsWildcardPredicate is the same sweep staying in ID
// space, skipping triple materialization entirely.
func BenchmarkMatchIDsWildcardPredicate(b *testing.B) {
	s := New()
	hub := rdf.NewIRI("http://x/hub")
	p := rdf.NewIRI("http://x/p")
	for i := 0; i < 5000; i++ {
		s.MustAdd(rdf.NewTriple(rdf.NewIRI(fmt.Sprintf("http://x/s%d", i)), p, hub))
	}
	hubID, ok := s.Lookup(hub)
	if !ok {
		b.Fatal("hub not interned")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		s.MatchIDs(Wildcard, Wildcard, hubID, func(ID, ID, ID) bool { n++; return true })
		if n != 5000 {
			b.Fatalf("matched %d", n)
		}
	}
}

// BenchmarkStoreMemoryFootprint reports the steady-state heap cost per
// stored triple, tracking the dictionary encoding's memory win.
func BenchmarkStoreMemoryFootprint(b *testing.B) {
	const n = 50000
	var before, after runtime.MemStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runtime.GC()
		runtime.ReadMemStats(&before)
		s := benchStore(n / 2) // two triples per subject
		runtime.GC()
		runtime.ReadMemStats(&after)
		if s.Len() != n {
			b.Fatalf("store has %d triples", s.Len())
		}
		b.ReportMetric(float64(after.HeapAlloc-before.HeapAlloc)/float64(n), "bytes/triple")
		runtime.KeepAlive(s)
	}
}

// benchTriples builds n distinct triples across n/2 subjects, the shape
// that stresses level-one key-slice maintenance hardest.
func benchTriples(n int) []rdf.Triple {
	p := rdf.NewIRI("http://x/p")
	typ := rdf.NewIRI(rdf.RDFType)
	cls := rdf.NewIRI("http://x/C")
	out := make([]rdf.Triple, 0, n)
	for i := 0; i < n/2; i++ {
		subj := rdf.NewIRI(fmt.Sprintf("http://x/s%d", i))
		out = append(out, rdf.NewTriple(subj, typ, cls))
		out = append(out, rdf.NewTriple(subj, p, rdf.NewLiteral(fmt.Sprintf("value %d", i))))
	}
	return out
}

// BenchmarkBulkLoad measures the staged path at 100k triples: intern +
// buffer, then one Commit that sorts each key slice once.
func BenchmarkBulkLoad(b *testing.B) {
	triples := benchTriples(100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New()
		l := NewBulkLoader(s)
		if err := l.AddAll(triples); err != nil {
			b.Fatal(err)
		}
		if l.Commit() != len(triples) {
			b.Fatal("short commit")
		}
	}
}

// BenchmarkAddAll measures Store.AddAll at 100k triples (routed through
// the bulk path).
func BenchmarkAddAll(b *testing.B) {
	triples := benchTriples(100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New()
		if err := s.AddAll(triples); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSequentialAdd is the incremental path at the same scale: one
// Add per triple, each new key insertion-sorted with an O(n) memmove.
// The BulkLoad/SequentialAdd ratio is the ROADMAP bulk-ingestion row.
func BenchmarkSequentialAdd(b *testing.B) {
	triples := benchTriples(100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New()
		for _, tr := range triples {
			if _, err := s.Add(tr); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkAdd measures insert throughput with index maintenance.
func BenchmarkAdd(b *testing.B) {
	s := New()
	p := rdf.NewIRI("http://x/p")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		subj := rdf.NewIRI(fmt.Sprintf("http://x/s%d", i))
		if _, err := s.Add(rdf.NewTriple(subj, p, rdf.NewLiteral(fmt.Sprint(i)))); err != nil {
			b.Fatal(err)
		}
	}
}

// stallTriples is the staged-batch size BenchmarkCommitReadStall
// commits while sampling reader latency. The CI/bench-suite default
// keeps the run short; set SAPPHIRE_STALL_TRIPLES=1000000 to reproduce
// the ROADMAP acceptance measurement at full scale.
func stallTriples() int {
	if v := os.Getenv("SAPPHIRE_STALL_TRIPLES"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return 200_000
}

// BenchmarkCommitReadStall measures what sharding exists to fix: the
// stall a subject-bound reader sees while a large BulkLoader.Commit
// builds indexes. The single variant holds one store-wide write lock
// for the whole build, so a reader's worst case is the full commit
// duration; the sharded variant commits shard by shard, bounding any
// one stall to roughly one shard's slice of the batch. Reported
// metrics: p99 and max observed read latency (µs) and the commit wall
// time (ms). The ROADMAP acceptance bar: with 8 shards at 1M staged
// triples (SAPPHIRE_STALL_TRIPLES=1000000), sharded p99 < 1/4 single.
func BenchmarkCommitReadStall(b *testing.B) {
	for _, mode := range shardModes {
		b.Run(mode.name, func(b *testing.B) {
			nTriples := stallTriples()
			base := benchTriples(20_000)
			batch := make([]rdf.Triple, 0, nTriples)
			p := rdf.NewIRI("http://x/bulk")
			typ := rdf.NewIRI(rdf.RDFType)
			cls := rdf.NewIRI("http://x/B")
			for i := 0; i < nTriples/2; i++ {
				subj := rdf.NewIRI(fmt.Sprintf("http://x/bulk%d", i))
				batch = append(batch,
					rdf.NewTriple(subj, p, rdf.NewLiteral(fmt.Sprintf("v%d", i))),
					rdf.NewTriple(subj, typ, cls))
			}
			var p99s, maxes, walls []float64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				s := NewSharded(mode.shards)
				if err := s.AddAll(base); err != nil {
					b.Fatal(err)
				}
				l := NewBulkLoader(s)
				l.SetAutoCommitThreshold(0)
				if err := l.AddAll(batch); err != nil {
					b.Fatal(err)
				}
				probes := make([]rdf.Term, 256)
				for j := range probes {
					probes[j] = base[(j*97)%len(base)].S
				}
				var stop atomic.Bool
				lat := make([]time.Duration, 0, 1<<16)
				done := make(chan struct{})
				go func() {
					defer close(done)
					for j := 0; !stop.Load(); j++ {
						t0 := time.Now()
						if s.Count(probes[j%len(probes)], rdf.Term{}, rdf.Term{}) == 0 {
							b.Error("probe subject missing")
							return
						}
						lat = append(lat, time.Since(t0))
					}
				}()
				b.StartTimer()
				t0 := time.Now()
				if l.Commit() != nTriples {
					b.Fatal("short commit")
				}
				wall := time.Since(t0)
				b.StopTimer()
				stop.Store(true)
				<-done
				if len(lat) == 0 {
					b.Fatal("sampler took no measurements")
				}
				sort.Slice(lat, func(a, c int) bool { return lat[a] < lat[c] })
				p99 := lat[len(lat)*99/100]
				p99s = append(p99s, float64(p99.Microseconds()))
				maxes = append(maxes, float64(lat[len(lat)-1].Microseconds()))
				walls = append(walls, float64(wall.Milliseconds()))
				b.StartTimer()
			}
			b.ReportMetric(mean(p99s), "p99-stall-us")
			b.ReportMetric(mean(maxes), "max-stall-us")
			b.ReportMetric(mean(walls), "commit-ms")
		})
	}
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	t := 0.0
	for _, x := range xs {
		t += x
	}
	return t / float64(len(xs))
}

// BenchmarkMatchSubjectsMerge measures the (?s P O) fan-out: 5000
// subjects all pointing at one hub object through one predicate, so the
// sharded variant merges disjoint term-sorted per-shard subject runs
// (POS innermost lists) through the loser tree — the second
// wildcard-merge shape the benchgate pins alongside the (?s P ?o)
// sweep of BenchmarkMatchByPredicate.
func BenchmarkMatchSubjectsMerge(b *testing.B) {
	for _, mode := range shardModes {
		b.Run(mode.name, func(b *testing.B) {
			s := NewSharded(mode.shards)
			hub := rdf.NewIRI("http://x/hub")
			p := rdf.NewIRI("http://x/p")
			for i := 0; i < 5000; i++ {
				s.MustAdd(rdf.NewTriple(rdf.NewIRI(fmt.Sprintf("http://x/s%d", i)), p, hub))
			}
			warmRanks(b, s)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n := 0
				s.Match(rdf.Term{}, p, hub, func(rdf.Triple) bool { n++; return true })
				if n != 5000 {
					b.Fatalf("matched %d", n)
				}
			}
		})
	}
}

// BenchmarkDictInternParallel measures dictionary interning throughput
// across dictionary shard counts: every goroutine interns its own
// stream of terms, cycling through a bounded window so the stream mixes
// fresh interning (shard write lock, range allocation, spine writes)
// with hit-path lookups (shard read lock) at steady state. With one
// dictionary shard every goroutine serializes on one mutex; with more,
// contention drops proportionally — run with -cpu=8 to see the scaling,
// while the pinned -cpu=1 CI row tracks the single-thread cost of the
// intern path itself.
func BenchmarkDictInternParallel(b *testing.B) {
	const window = 1 << 17
	for _, shards := range []int{1, 2, 8} {
		b.Run(fmt.Sprintf("dict%d", shards), func(b *testing.B) {
			d := newDict(shards)
			var gid atomic.Uint32
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				prefix := fmt.Sprintf("http://x/g%d/", gid.Add(1))
				i := 0
				for pb.Next() {
					d.intern(rdf.NewIRI(prefix + strconv.Itoa(i&(window-1))))
					i++
				}
			})
		})
	}
}
