package sparql

import (
	"fmt"
	"testing"

	"sapphire/internal/rdf"
	"sapphire/internal/store"
)

// buildWide builds a store with n subjects, each typed and named, plus a
// knows-chain, so single patterns, joins, and unions all have hundreds
// of solutions.
func buildWide(t testing.TB, n int) *store.Store {
	t.Helper()
	s := store.New()
	typ := rdf.NewIRI(rdf.RDFType)
	person := rdf.NewIRI("http://x/Person")
	name := rdf.NewIRI("http://x/name")
	knows := rdf.NewIRI("http://x/knows")
	l := store.NewBulkLoader(s)
	for i := 0; i < n; i++ {
		subj := rdf.NewIRI(fmt.Sprintf("http://x/p%d", i))
		l.MustAdd(rdf.NewTriple(subj, typ, person))
		l.MustAdd(rdf.NewTriple(subj, name, rdf.NewLangLiteral(fmt.Sprintf("Person %d", i), "en")))
		l.MustAdd(rdf.NewTriple(subj, knows, rdf.NewIRI(fmt.Sprintf("http://x/p%d", (i+1)%n))))
	}
	l.Commit()
	return s
}

// rowStrings renders result rows in order, one string per row, so two
// evaluations can be compared row-for-row (not as sets).
func rowStrings(res *Results) []string {
	out := make([]string, len(res.Rows))
	for i, row := range res.Rows {
		s := ""
		for j, v := range res.Vars {
			if j > 0 {
				s += " | "
			}
			s += row[v].String()
		}
		out[i] = s
	}
	return out
}

// TestLimitPushdownEquivalence pins the LIMIT/OFFSET pushdown against
// the slow path: for every query shape — pushdown-eligible ones (plain
// BGPs, unions) and ineligible ones (ORDER BY, DISTINCT, FILTER,
// OPTIONAL, aggregates) — evaluating with LIMIT k OFFSET m must produce
// row-for-row the slice [m, m+k) of the same query evaluated without
// paging.
func TestLimitPushdownEquivalence(t *testing.T) {
	s := buildWide(t, 120)
	bases := []string{
		`SELECT ?s ?n WHERE { ?s <http://x/name> ?n . }`,
		`SELECT ?s WHERE { ?s a <http://x/Person> . ?s <http://x/knows> ?o . }`,
		`SELECT ?s ?n WHERE { ?s a <http://x/Person> . ?s <http://x/name> ?n . ?s <http://x/knows> ?o . }`,
		`SELECT ?s WHERE { { ?s a <http://x/Person> . } UNION { ?s <http://x/knows> <http://x/p1> . } }`,
		// Ineligible shapes: paging must still agree with the slow path
		// (these take the materialize-then-page route).
		`SELECT ?s ?n WHERE { ?s <http://x/name> ?n . } ORDER BY ?n`,
		`SELECT DISTINCT ?o WHERE { ?s a ?o . }`,
		`SELECT ?s ?n WHERE { ?s <http://x/name> ?n . FILTER (?n != "Person 3"@en) }`,
		`SELECT ?s ?n WHERE { ?s a <http://x/Person> . OPTIONAL { ?s <http://x/name> ?n . } }`,
		`SELECT (COUNT(?s) AS ?c) WHERE { ?s a <http://x/Person> . }`,
	}
	pages := []struct{ limit, offset int }{
		{0, 0}, {1, 0}, {7, 0}, {7, 5}, {10, 115}, {10, 500}, {1000, 0},
	}
	for _, base := range bases {
		full := eval(t, s, base)
		want := rowStrings(full)
		for _, pg := range pages {
			q := fmt.Sprintf("%s LIMIT %d OFFSET %d", base, pg.limit, pg.offset)
			got := rowStrings(eval(t, s, q))
			lo := pg.offset
			if lo > len(want) {
				lo = len(want)
			}
			hi := lo + pg.limit
			if hi > len(want) {
				hi = len(want)
			}
			slice := want[lo:hi]
			if len(got) != len(slice) {
				t.Fatalf("%s: got %d rows, want %d", q, len(got), len(slice))
			}
			for i := range got {
				if got[i] != slice[i] {
					t.Fatalf("%s: row %d = %q, want %q (row-for-row with slow path)", q, i, got[i], slice[i])
				}
			}
		}
	}
}

// TestLimitPushdownStopsEarly pins the point of the pushdown: with no
// ORDER BY/aggregate/DISTINCT/FILTER/OPTIONAL, LIMIT k evaluates work
// proportional to k, not to the full solution set. The Budget callback
// ticks once per intermediate row, so it measures exactly how much the
// join produced.
func TestLimitPushdownStopsEarly(t *testing.T) {
	const n = 3000
	s := buildWide(t, n)
	count := func(src string) int {
		t.Helper()
		q, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		ticks := 0
		if _, err := Eval(s, q, Options{Budget: func() error { ticks++; return nil }}); err != nil {
			t.Fatalf("eval %q: %v", src, err)
		}
		return ticks
	}

	// Single pattern: the scan must stop after offset+limit rows.
	if ticks := count(`SELECT ?s ?n WHERE { ?s <http://x/name> ?n . } LIMIT 7 OFFSET 3`); ticks > 10 {
		t.Errorf("single pattern LIMIT 7 OFFSET 3 ticked %d times, want <= 10", ticks)
	}
	// Join: the depth-first pipeline stops every level the moment the
	// slice is satisfied — no per-level materialization — so LIMIT 5 on a
	// two-pattern join costs ~5 driving-scan rows plus ~5 probe rows,
	// independent of n.
	joinQ := `SELECT ?s ?n WHERE { ?s a <http://x/Person> . ?s <http://x/name> ?n . } LIMIT 5`
	full := count(`SELECT ?s ?n WHERE { ?s a <http://x/Person> . ?s <http://x/name> ?n . }`)
	if ticks := count(joinQ); ticks > 20 || ticks >= full {
		t.Errorf("join LIMIT 5 ticked %d times, want <= 20 (full join ticks %d)", ticks, full)
	}
	// Union: later branches must not run once the cap is reached.
	unionQ := `SELECT ?s WHERE { { ?s a <http://x/Person> . } UNION { ?s <http://x/name> ?o . } } LIMIT 4`
	if ticks := count(unionQ); ticks > 4 {
		t.Errorf("union LIMIT 4 ticked %d times, want <= 4", ticks)
	}
	// LIMIT 0 does no more than O(1) work.
	if ticks := count(`SELECT ?s WHERE { ?s a <http://x/Person> . } LIMIT 0`); ticks > 1 {
		t.Errorf("LIMIT 0 ticked %d times, want <= 1", ticks)
	}
	// An ORDER BY query cannot push down: it must see every row.
	if ticks := count(`SELECT ?s ?n WHERE { ?s <http://x/name> ?n . } ORDER BY ?n LIMIT 7`); ticks < n {
		t.Errorf("ORDER BY LIMIT ticked %d times, want full materialization (>= %d)", ticks, n)
	}
}

// TestFilterLimitStopsEarly pins that FILTER no longer blocks the
// LIMIT early-exit: filters run inside the streaming pipeline, so a
// filtered scan stops the moment the cap is satisfied instead of
// materializing the full solution set first.
func TestFilterLimitStopsEarly(t *testing.T) {
	const n = 3000
	s := buildWide(t, n)
	count := func(src string) int {
		t.Helper()
		q, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		ticks := 0
		if _, err := Eval(s, q, Options{Budget: func() error { ticks++; return nil }}); err != nil {
			t.Fatalf("eval %q: %v", src, err)
		}
		return ticks
	}
	// Every name passes: one scan tick + one filter tick per emitted row.
	q := `SELECT ?s ?n WHERE { ?s <http://x/name> ?n . FILTER (strlen(str(?n)) > 3) } LIMIT 5`
	if ticks := count(q); ticks > 30 {
		t.Errorf("all-pass FILTER LIMIT 5 ticked %d times, want <= 30 (not ~%d)", ticks, 2*n)
	}
	// A selective filter scans only until enough rows pass (~1 in 10
	// names contains "7" early on), still far below the full sweep.
	q = `SELECT ?s ?n WHERE { ?s <http://x/name> ?n . FILTER (contains(str(?n), "7")) } LIMIT 3`
	if ticks := count(q); ticks > 200 {
		t.Errorf("selective FILTER LIMIT 3 ticked %d times, want <= 200 (not ~%d)", ticks, 2*n)
	}
	// FILTER on a join: the level filter drops rows before the deeper
	// probe, so non-matching driving rows cost one tick, not two.
	q = `SELECT ?s ?n WHERE { ?s a <http://x/Person> . ?s <http://x/name> ?n . FILTER (contains(str(?s), "9")) } LIMIT 2`
	if ticks := count(q); ticks > 100 {
		t.Errorf("join FILTER LIMIT 2 ticked %d times, want <= 100", ticks)
	}
}

// TestLimitZeroShortCircuit pins the LIMIT 0 plan-time answer: a
// non-aggregate query with LIMIT 0 — with or without OFFSET, ORDER BY,
// DISTINCT, UNION, OPTIONAL — returns the empty result set without a
// single budget tick or term resolution. Before the short-circuit,
// `ORDER BY ?n LIMIT 0 OFFSET 5` built a 5-item top-k heap and scanned
// every row just to emit nothing.
func TestLimitZeroShortCircuit(t *testing.T) {
	s := buildWide(t, 500)
	s.BuildOrderLabels()
	shapes := []string{
		`SELECT ?s WHERE { ?s a <http://x/Person> . } LIMIT 0`,
		`SELECT ?s WHERE { ?s a <http://x/Person> . } LIMIT 0 OFFSET 5`,
		`SELECT ?s ?n WHERE { ?s <http://x/name> ?n . } ORDER BY ?n LIMIT 0 OFFSET 7`,
		`SELECT DISTINCT ?o WHERE { ?s ?p ?o . } LIMIT 0`,
		`SELECT ?s WHERE { { ?s a <http://x/Person> . } UNION { ?s ?p ?o . } } LIMIT 0`,
		`SELECT ?s ?n WHERE { ?s a <http://x/Person> . OPTIONAL { ?s <http://x/name> ?n . } } LIMIT 0 OFFSET 3`,
	}
	for _, src := range shapes {
		q := MustParse(src)
		cg := &countingGraph{Store: s}
		ticks := 0
		res, err := Eval(cg, q, Options{Budget: func() error { ticks++; return nil }})
		if err != nil {
			t.Fatalf("eval %q: %v", src, err)
		}
		if len(res.Rows) != 0 {
			t.Errorf("%s: got %d rows, want 0", src, len(res.Rows))
		}
		if len(res.Vars) == 0 {
			t.Errorf("%s: projection vars missing from empty result", src)
		}
		if ticks != 0 || cg.resolves != 0 {
			t.Errorf("%s: ticked %d times and resolved %d terms, want 0 and 0", src, ticks, cg.resolves)
		}
	}

	// Aggregates are excluded: COUNT over an empty page is still computed
	// by the aggregation tail (and legitimately scans), then paged to
	// zero rows.
	res := eval(t, s, `SELECT (COUNT(?s) AS ?c) WHERE { ?s a <http://x/Person> . } LIMIT 0`)
	if len(res.Rows) != 0 {
		t.Errorf("aggregate LIMIT 0: got %d rows, want 0", len(res.Rows))
	}
}

// TestUnionLimitStopsSiblingBranches pins that sliceOp's push→false
// verdict propagates across UNION branches, not just up the current
// branch's DFS: with `{A} UNION {B} LIMIT k` where A alone satisfies k,
// branch B — a full-store sweep here — must never start, so the tick
// count stays at k. (runSeq returns false out of the branch loop the
// moment the sink is satisfied; this test keeps it that way.)
func TestUnionLimitStopsSiblingBranches(t *testing.T) {
	const n = 2000
	s := buildWide(t, n) // branch B sweeps 3n triples if it runs
	q := MustParse(`SELECT ?s WHERE { { ?s a <http://x/Person> . } UNION { ?s ?p ?o . } } LIMIT 3`)
	ticks := 0
	res, err := Eval(s, q, Options{Budget: func() error { ticks++; return nil }})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(res.Rows))
	}
	if ticks > 3 {
		t.Errorf("ticked %d times, want <= 3 — sibling UNION branch ran after LIMIT was satisfied", ticks)
	}
}

// countingGraph wraps the store and counts ResolveID calls — the
// ID-to-term materializations an evaluation performs. All the optional
// interfaces the pipeline probes for (ReentrantGraph, OrderedGraph) are
// promoted from the embedded store, so the wrapped graph takes exactly
// the same execution path.
type countingGraph struct {
	*store.Store
	noLabels bool // report no rank table, forcing the term-compare path
	resolves int
}

func (c *countingGraph) ResolveID(id uint32) rdf.Term {
	c.resolves++
	return c.Store.ResolveID(id)
}

func (c *countingGraph) OrderLabels() (func(uint32) uint64, bool) {
	if c.noLabels {
		return nil, true
	}
	return c.Store.OrderLabels()
}

// TestOrderByLimitResolvesOnlyK pins the rank-label top-k contract:
// with order labels built, `ORDER BY ?n LIMIT 10` over 10k rows
// compares uint64 labels inside the heap and resolves terms only for
// the k surviving rows — tens of ResolveID calls, not 10 000. Without
// labels the same query resolves a term per buffered row, which is the
// regression this test would catch.
func TestOrderByLimitResolvesOnlyK(t *testing.T) {
	const n = 10_000
	s := buildWide(t, n)
	s.BuildOrderLabels()
	q := MustParse(`SELECT ?s ?n WHERE { ?s <http://x/name> ?n . } ORDER BY ?n LIMIT 10`)

	cg := &countingGraph{Store: s}
	res, err := Eval(cg, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("rows = %d, want 10", len(res.Rows))
	}
	// 2 columns × 10 rows resolved at collect; allow slack for any
	// stray fallback compares, but stay orders of magnitude below n.
	if cg.resolves > 100 {
		t.Errorf("ORDER BY LIMIT 10 with labels resolved %d terms, want <= 100", cg.resolves)
	}

	// Contrast: with no rank table the heap must fall back to term
	// compares, resolving at least one term per distinct buffered row.
	cg2 := &countingGraph{Store: s, noLabels: true}
	if _, err := Eval(cg2, q, Options{}); err != nil {
		t.Fatal(err)
	}
	if cg2.resolves < n/2 {
		t.Errorf("unlabeled ORDER BY resolved %d terms; expected >= %d — did the label path activate without a rank table?",
			cg2.resolves, n/2)
	}
	if cg.resolves*10 > cg2.resolves {
		t.Errorf("labels saved too little: %d resolves with labels vs %d without", cg.resolves, cg2.resolves)
	}
}

// TestOrderByOptionalUnboundKey pins the top-k heap's handling of rows
// whose ORDER BY key is unbound (the var is bound only in an OPTIONAL
// block, and some rows have no match): slot 0 means it.id stays 0, the
// label shortcut must not fire (label(0) would be whatever the rank
// table says about "no term"), and the term fallback compares the zero
// Term — exactly what the full-sort path does with a missing key. The
// heap page must therefore equal the sort-everything page row-for-row,
// ascending and descending, with and without rank labels.
func TestOrderByOptionalUnboundKey(t *testing.T) {
	const n = 60
	s := store.New()
	typ := rdf.NewIRI(rdf.RDFType)
	person := rdf.NewIRI("http://x/Person")
	name := rdf.NewIRI("http://x/name")
	for i := 0; i < n; i++ {
		subj := rdf.NewIRI(fmt.Sprintf("http://x/p%02d", i))
		s.MustAdd(rdf.NewTriple(subj, typ, person))
		if i%3 != 0 { // every third subject has no name: unbound key rows
			s.MustAdd(rdf.NewTriple(subj, name, rdf.NewLangLiteral(fmt.Sprintf("Person %02d", i), "en")))
		}
	}
	s.BuildOrderLabels()

	for _, dir := range []string{"?n", "DESC(?n)"} {
		base := fmt.Sprintf(
			`SELECT ?s ?n WHERE { ?s a <http://x/Person> . OPTIONAL { ?s <http://x/name> ?n . } } ORDER BY %s`, dir)
		for _, noLabels := range []bool{false, true} {
			cg := &countingGraph{Store: s, noLabels: noLabels}
			fullRes, err := Eval(cg, MustParse(base), Options{})
			if err != nil {
				t.Fatal(err)
			}
			full := rowStrings(fullRes) // no LIMIT: sortAllOp path
			for _, k := range []int{1, 5, n / 2, n + 10} {
				topRes, err := Eval(cg, MustParse(fmt.Sprintf("%s LIMIT %d", base, k)), Options{})
				if err != nil {
					t.Fatal(err)
				}
				got := rowStrings(topRes) // LIMIT: topKOp path
				want := full
				if k < len(want) {
					want = want[:k]
				}
				if len(got) != len(want) {
					t.Fatalf("ORDER BY %s LIMIT %d (noLabels=%v): %d rows, want %d", dir, k, noLabels, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("ORDER BY %s LIMIT %d (noLabels=%v): row %d = %q, want %q (top-k diverged from full sort on unbound keys)",
							dir, k, noLabels, i, got[i], want[i])
					}
				}
			}
		}
	}
}
