// Package persist adds durability to the in-memory triple store:
// epoch-stamped checksummed snapshots, a write-ahead log for online
// mutations between snapshots, and crash recovery that restores the
// newest valid snapshot and replays the WAL to its last intact record.
//
// The package talks to disk exclusively through the FS interface so the
// crash tests can interpose FaultFS, a fault-injecting filesystem that
// fails, tears, or bit-flips writes at a seeded byte offset — the
// durable layer is validated by actually crashing it at every write
// boundary, not by reasoning about fsync ordering on faith.
package persist

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// File is the writable-file surface the durable layer needs.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// FS abstracts a single flat directory holding the store's durable
// state. All names are relative to that directory; implementations
// never interpret them as paths.
type FS interface {
	// Create opens name truncated to zero length.
	Create(name string) (File, error)
	// Append opens an existing name for appending.
	Append(name string) (File, error)
	// Open opens name for reading.
	Open(name string) (io.ReadCloser, error)
	Rename(oldName, newName string) error
	Remove(name string) error
	// Truncate shortens name to size bytes (torn-tail removal).
	Truncate(name string, size int64) error
	// List returns the names in the directory, sorted.
	List() ([]string, error)
	// SyncDir flushes directory entries (creates and renames) so they
	// survive a crash.
	SyncDir() error
}

// osFS is the production FS: a real directory on the local filesystem.
type osFS struct {
	dir string
}

// NewOSFS returns an FS rooted at dir, creating it if needed.
func NewOSFS(dir string) (FS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: creating %s: %w", dir, err)
	}
	return &osFS{dir: dir}, nil
}

func (fs *osFS) path(name string) string { return filepath.Join(fs.dir, name) }

func (fs *osFS) Create(name string) (File, error) {
	return os.OpenFile(fs.path(name), os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
}

func (fs *osFS) Append(name string) (File, error) {
	return os.OpenFile(fs.path(name), os.O_WRONLY|os.O_APPEND, 0o644)
}

func (fs *osFS) Open(name string) (io.ReadCloser, error) {
	return os.Open(fs.path(name))
}

func (fs *osFS) Rename(oldName, newName string) error {
	return os.Rename(fs.path(oldName), fs.path(newName))
}

func (fs *osFS) Remove(name string) error { return os.Remove(fs.path(name)) }

func (fs *osFS) Truncate(name string, size int64) error {
	return os.Truncate(fs.path(name), size)
}

func (fs *osFS) List() ([]string, error) {
	entries, err := os.ReadDir(fs.dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (fs *osFS) SyncDir() error {
	d, err := os.Open(fs.dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// readAll opens and fully reads name, folding the read-side Close
// error into the result: even on a read handle a failing close can be
// the first sign of an I/O problem, and recovery decisions should see
// it rather than act on silently suspect bytes.
func readAll(fs FS, name string) ([]byte, error) {
	rc, err := fs.Open(name)
	if err != nil {
		return nil, err
	}
	data, err := io.ReadAll(rc)
	if cerr := rc.Close(); err == nil {
		err = cerr
	}
	return data, err
}

// MemFS is an in-memory FS for tests: deterministic, fast, and the
// substrate FaultFS wraps to inject failures at exact byte offsets.
type MemFS struct {
	mu    sync.Mutex
	files map[string][]byte
}

func NewMemFS() *MemFS {
	return &MemFS{files: make(map[string][]byte)}
}

type memFile struct {
	fs   *MemFS
	name string
}

func (f *memFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	b, ok := f.fs.files[f.name]
	if !ok {
		return 0, fmt.Errorf("persist: memfs: write to removed file %s", f.name)
	}
	f.fs.files[f.name] = append(b, p...)
	return len(p), nil
}

func (f *memFile) Sync() error  { return nil }
func (f *memFile) Close() error { return nil }

func (fs *MemFS) Create(name string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.files[name] = []byte{}
	return &memFile{fs: fs, name: name}, nil
}

func (fs *MemFS) Append(name string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[name]; !ok {
		return nil, fmt.Errorf("persist: memfs: append to missing file %s", name)
	}
	return &memFile{fs: fs, name: name}, nil
}

func (fs *MemFS) Open(name string) (io.ReadCloser, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	b, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("persist: memfs: open missing file %s", name)
	}
	return io.NopCloser(newByteReader(append([]byte(nil), b...))), nil
}

func (fs *MemFS) Rename(oldName, newName string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	b, ok := fs.files[oldName]
	if !ok {
		return fmt.Errorf("persist: memfs: rename missing file %s", oldName)
	}
	fs.files[newName] = b
	delete(fs.files, oldName)
	return nil
}

func (fs *MemFS) Remove(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[name]; !ok {
		return fmt.Errorf("persist: memfs: remove missing file %s", name)
	}
	delete(fs.files, name)
	return nil
}

func (fs *MemFS) Truncate(name string, size int64) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	b, ok := fs.files[name]
	if !ok {
		return fmt.Errorf("persist: memfs: truncate missing file %s", name)
	}
	if int64(len(b)) < size {
		return fmt.Errorf("persist: memfs: truncate %s beyond length", name)
	}
	fs.files[name] = b[:size]
	return nil
}

func (fs *MemFS) List() ([]string, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	names := make([]string, 0, len(fs.files))
	for name := range fs.files {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

func (fs *MemFS) SyncDir() error { return nil }

type byteReader struct {
	b   []byte
	off int
}

func newByteReader(b []byte) *byteReader { return &byteReader{b: b} }

func (r *byteReader) Read(p []byte) (int, error) {
	if r.off >= len(r.b) {
		return 0, io.EOF
	}
	n := copy(p, r.b[r.off:])
	r.off += n
	return n, nil
}

// FaultMode selects how FaultFS misbehaves once the fault offset is
// reached.
type FaultMode int

const (
	// FaultNone injects nothing; the wrapper is transparent.
	FaultNone FaultMode = iota
	// FaultError fails the write that reaches the offset without
	// persisting any of its bytes, and every subsequent operation —
	// a clean I/O failure (ENOSPC, pulled disk) followed by a crash.
	FaultError
	// FaultTorn persists the bytes of the triggering write up to the
	// offset, then fails it and every subsequent operation — a torn
	// page: the record made it partway to the platter.
	FaultTorn
	// FaultBitFlip flips one bit of the byte at the offset and
	// otherwise continues normally — silent media corruption that only
	// checksums can catch.
	FaultBitFlip
)

func (m FaultMode) String() string {
	switch m {
	case FaultNone:
		return "none"
	case FaultError:
		return "error"
	case FaultTorn:
		return "torn"
	case FaultBitFlip:
		return "bitflip"
	}
	return fmt.Sprintf("FaultMode(%d)", int(m))
}

// errFaultInjected marks the injected failure so tests can tell it from
// genuine bugs.
var errFaultInjected = fmt.Errorf("persist: injected fault")

// FaultFS wraps an FS and injects one fault when the cumulative number
// of bytes written through it (across all files, in operation order)
// reaches Offset. After an Error or Torn fault trips, every subsequent
// mutating operation fails too — the process is considered dead from
// that byte onward, which is exactly the crash model the recovery
// property test replays.
type FaultFS struct {
	inner FS
	mode  FaultMode
	// offset is the global written-byte index at which the fault fires.
	offset int64
	// bit selects which bit FaultBitFlip flips.
	bit uint

	mu      sync.Mutex
	written int64
	tripped bool
}

// NewFaultFS wraps inner with a fault of the given mode at the given
// cumulative write offset. bit selects the flipped bit for
// FaultBitFlip (taken modulo 8).
func NewFaultFS(inner FS, mode FaultMode, offset int64, bit uint) *FaultFS {
	return &FaultFS{inner: inner, mode: mode, offset: offset, bit: bit % 8}
}

// Written reports the cumulative bytes written through the wrapper so
// far; a dry run uses it to size the fault-offset sweep.
func (fs *FaultFS) Written() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.written
}

// Tripped reports whether the fault has fired.
func (fs *FaultFS) Tripped() bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.tripped
}

// dead reports whether mutating operations should fail outright.
func (fs *FaultFS) dead() bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.tripped && (fs.mode == FaultError || fs.mode == FaultTorn)
}

type faultFile struct {
	fs    *FaultFS
	inner File
}

func (f *faultFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	if f.fs.tripped && (f.fs.mode == FaultError || f.fs.mode == FaultTorn) {
		f.fs.mu.Unlock()
		return 0, errFaultInjected
	}
	start := f.fs.written
	end := start + int64(len(p))
	fires := f.fs.mode != FaultNone && !f.fs.tripped && f.fs.offset >= start && f.fs.offset < end
	if !fires {
		f.fs.written = end
		f.fs.mu.Unlock()
		return f.inner.Write(p)
	}
	f.fs.tripped = true
	k := int(f.fs.offset - start)
	switch f.fs.mode {
	case FaultError:
		// The op fails cleanly: none of its bytes reach the platter.
		f.fs.mu.Unlock()
		return 0, errFaultInjected
	case FaultTorn:
		f.fs.written = f.fs.offset
		f.fs.mu.Unlock()
		if k > 0 {
			f.inner.Write(p[:k]) //nolint:errcheck — already failing
		}
		return k, errFaultInjected
	default: // FaultBitFlip
		f.fs.written = end
		bit := f.fs.bit
		f.fs.mu.Unlock()
		q := append([]byte(nil), p...)
		q[k] ^= 1 << bit
		return f.inner.Write(q)
	}
}

func (f *faultFile) Sync() error {
	if f.fs.dead() {
		return errFaultInjected
	}
	return f.inner.Sync()
}

func (f *faultFile) Close() error {
	if f.fs.dead() {
		return errFaultInjected
	}
	return f.inner.Close()
}

func (fs *FaultFS) Create(name string) (File, error) {
	if fs.dead() {
		return nil, errFaultInjected
	}
	f, err := fs.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: fs, inner: f}, nil
}

func (fs *FaultFS) Append(name string) (File, error) {
	if fs.dead() {
		return nil, errFaultInjected
	}
	f, err := fs.inner.Append(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: fs, inner: f}, nil
}

func (fs *FaultFS) Open(name string) (io.ReadCloser, error) {
	// Reads stay live: recovery reads the post-crash state.
	return fs.inner.Open(name)
}

func (fs *FaultFS) Rename(oldName, newName string) error {
	if fs.dead() {
		return errFaultInjected
	}
	return fs.inner.Rename(oldName, newName)
}

func (fs *FaultFS) Remove(name string) error {
	if fs.dead() {
		return errFaultInjected
	}
	return fs.inner.Remove(name)
}

func (fs *FaultFS) Truncate(name string, size int64) error {
	if fs.dead() {
		return errFaultInjected
	}
	return fs.inner.Truncate(name, size)
}

func (fs *FaultFS) List() ([]string, error) { return fs.inner.List() }

func (fs *FaultFS) SyncDir() error {
	if fs.dead() {
		return errFaultInjected
	}
	return fs.inner.SyncDir()
}
