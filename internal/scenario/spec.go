package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// SpecVersion is the scenario format this package reads and writes.
// Parsing rejects other versions: a spec is a replayable artifact, and
// silently reinterpreting an old file under new semantics would change
// the traffic it describes.
const SpecVersion = 1

// Phase kinds. Each generates a different deterministic op stream; see
// GenOps for exactly what each kind sends.
const (
	KindHot        = "hot"        // zipf-skewed repeats over a small query pool
	KindOrderBy    = "orderby"    // paginated ORDER BY ?n walks per class
	KindQALD       = "qald"       // the QALD-style gold queries, round-robin
	KindMixed      = "mixed"      // reads + periodic writes + one bulk reload
	KindFederation = "federation" // federated queries with a flapping member
)

// Spec is a versioned, declarative traffic scenario. All randomness in
// the generated traffic derives from Seed, so the same spec produces
// the identical op sequence on every run.
type Spec struct {
	Name    string  `json:"name"`
	Version int     `json:"version"`
	Seed    int64   `json:"seed"`
	Dataset string  `json:"dataset"` // "small" | "default"
	Clients int     `json:"clients"` // concurrent workers per phase (phase can override)
	Phases  []Phase `json:"phases"`
}

// Phase is one segment of the scenario: Ops requests of one Kind.
type Phase struct {
	Name    string `json:"name"`
	Kind    string `json:"kind"`
	Ops     int    `json:"ops"`
	Clients int    `json:"clients,omitempty"` // 0 = inherit Spec.Clients

	// KindHot knobs: the hot pool size and the zipf skew exponent
	// (s > 1; larger = hotter head). Zero values select 20 and 1.2.
	HotPool int     `json:"hot_pool,omitempty"`
	ZipfS   float64 `json:"zipf_s,omitempty"`

	// KindOrderBy knob: rows per page (zero selects 10).
	PageSize int `json:"page_size,omitempty"`

	// KindMixed knobs: every WriteEvery-th op is a write of WriteBatch
	// fresh triples (zeros select 10 and 5); at op index ReloadAt the
	// stream carries one bulk reload of ReloadSize triples (zeros
	// select Ops/2 and 200).
	WriteEvery int `json:"write_every,omitempty"`
	WriteBatch int `json:"write_batch,omitempty"`
	ReloadAt   int `json:"reload_at,omitempty"`
	ReloadSize int `json:"reload_size,omitempty"`
}

// Validate checks the spec is well-formed and of the supported version.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: missing name")
	}
	if s.Version != SpecVersion {
		return fmt.Errorf("scenario %s: version %d, this binary speaks %d", s.Name, s.Version, SpecVersion)
	}
	if s.Dataset != "small" && s.Dataset != "default" {
		return fmt.Errorf("scenario %s: dataset %q (want small or default)", s.Name, s.Dataset)
	}
	if s.Clients < 1 {
		return fmt.Errorf("scenario %s: clients %d", s.Name, s.Clients)
	}
	if len(s.Phases) == 0 {
		return fmt.Errorf("scenario %s: no phases", s.Name)
	}
	seen := map[string]bool{}
	for i, p := range s.Phases {
		if p.Name == "" {
			return fmt.Errorf("scenario %s: phase %d has no name", s.Name, i)
		}
		if seen[p.Name] {
			return fmt.Errorf("scenario %s: duplicate phase %q", s.Name, p.Name)
		}
		seen[p.Name] = true
		switch p.Kind {
		case KindHot, KindOrderBy, KindQALD, KindMixed, KindFederation:
		default:
			return fmt.Errorf("scenario %s: phase %q has unknown kind %q", s.Name, p.Name, p.Kind)
		}
		if p.Ops < 1 {
			return fmt.Errorf("scenario %s: phase %q: ops %d", s.Name, p.Name, p.Ops)
		}
		if p.Kind == KindMixed && p.ReloadAt >= p.Ops {
			return fmt.Errorf("scenario %s: phase %q: reload_at %d beyond ops %d", s.Name, p.Name, p.ReloadAt, p.Ops)
		}
	}
	return nil
}

// clients resolves the worker count for a phase.
func (s *Spec) clients(p Phase) int {
	if p.Clients > 0 {
		return p.Clients
	}
	return s.Clients
}

// ParseSpec decodes and validates a JSON scenario.
func ParseSpec(data []byte) (*Spec, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Load reads a scenario spec from a JSON file.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseSpec(data)
}

// servingPhases is the canonical five-phase shape both builtins share —
// same phase names, so one SLO baseline covers smoke and full runs —
// scaled by per-phase op counts.
func servingPhases(hot, orderby, qaldOps, mixed, fed int) []Phase {
	return []Phase{
		{Name: "hot-cache", Kind: KindHot, Ops: hot, HotPool: 20, ZipfS: 1.2},
		{Name: "orderby-walk", Kind: KindOrderBy, Ops: orderby, PageSize: 10},
		{Name: "qald", Kind: KindQALD, Ops: qaldOps},
		{Name: "mixed-reload", Kind: KindMixed, Ops: mixed,
			WriteEvery: 10, WriteBatch: 5, ReloadAt: mixed / 2, ReloadSize: 200},
		{Name: "federation-flap", Kind: KindFederation, Ops: fed},
	}
}

// Smoke is the CI scenario: every phase kind, small op counts, the
// small dataset. Fast enough to run on every push; the SLO baseline is
// recorded against exactly this spec.
func Smoke() *Spec {
	return &Spec{
		Name: "smoke", Version: SpecVersion, Seed: 42,
		Dataset: "small", Clients: 4,
		Phases: servingPhases(120, 60, 50, 80, 30),
	}
}

// Serving is the full serving scenario: the same five phases at
// measurement scale on the default dataset.
func Serving() *Spec {
	return &Spec{
		Name: "serving", Version: SpecVersion, Seed: 42,
		Dataset: "default", Clients: 8,
		Phases: servingPhases(800, 400, 250, 400, 120),
	}
}

// builtins maps scenario names to their constructors.
var builtins = map[string]func() *Spec{
	"smoke":   Smoke,
	"serving": Serving,
}

// Builtin returns a named built-in scenario, or nil.
func Builtin(name string) *Spec {
	if f, ok := builtins[name]; ok {
		return f()
	}
	return nil
}

// Names lists the built-in scenario names, sorted.
func Names() []string {
	var names []string
	for n := range builtins {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
