package bootstrap

import (
	"context"
	"time"

	"sapphire/internal/endpoint"
	"sapphire/internal/rdf"
)

// InitializeWarehouse runs the warehousing-architecture variant of
// initialization described at the end of Appendix A: when the datasets
// are stored locally with Sapphire — no timeouts, no admission control —
// literal retrieval needs none of the class-hierarchy gymnastics, just
// the two straight-line queries Q9 (all filtered literals) and Q10 (all
// significant literals), paginated only to bound result-set size.
func InitializeWarehouse(ctx context.Context, ep endpoint.Endpoint, cfg Config) (*Cache, error) {
	start := time.Now()
	init := &initializer{
		ctx:      ctx,
		ep:       ep,
		cfg:      cfg,
		literals: make(map[string]rdf.Term),
		sig:      make(map[string]int),
	}
	preds, err := init.fetchPredicates()
	if err != nil {
		return nil, err
	}
	// Q9: literals, paginated.
	for offset := 0; ; offset += cfg.PageSize {
		res, err := init.query(QueryWarehouseLiterals(cfg.Language, cfg.MaxLiteralLength, cfg.PageSize, offset))
		if err != nil {
			return nil, err
		}
		if res == nil {
			break // budget exhausted
		}
		init.stats.LiteralQueries++
		for _, row := range res.Rows {
			if o := row["o"]; o.IsLiteral() {
				init.literals[o.Value] = o
			}
		}
		if len(res.Rows) < cfg.PageSize {
			break
		}
	}
	// Q10: significance, paginated.
	for offset := 0; ; offset += cfg.PageSize {
		res, err := init.query(QueryWarehouseSignificant(cfg.Language, cfg.MaxLiteralLength, cfg.PageSize, offset))
		if err != nil {
			return nil, err
		}
		if res == nil {
			break
		}
		init.stats.SignificanceQueries++
		for _, row := range res.Rows {
			o := row["o"]
			n := 0
			if f, ok := row["frequency"]; ok {
				n = atoiSafe(f.Value)
			}
			if o.IsLiteral() && n > init.sig[o.Value] {
				init.sig[o.Value] = n
			}
		}
		if len(res.Rows) < cfg.PageSize {
			break
		}
	}
	c := init.buildCache(ep.Name(), preds)
	c.Stats.Duration = time.Since(start)
	return c, nil
}
