// Quickstart: register an endpoint, auto-complete a term, run a query,
// and apply a QSM suggestion — the full Sapphire loop in thirty lines.
package main

import (
	"context"
	"fmt"
	"log"

	"sapphire"
	"sapphire/internal/datagen"
	"sapphire/internal/endpoint"
)

func main() {
	ctx := context.Background()

	// A synthetic DBpedia-like endpoint (in production this would be
	// sapphire.New(...).RegisterHTTP(ctx, "http://dbpedia.org/sparql")).
	data := datagen.Generate(datagen.SmallConfig())
	ep := endpoint.NewLocal("synthetic-dbpedia", data.Store, endpoint.Limits{})

	client := sapphire.New(sapphire.Defaults())
	if err := client.RegisterEndpoint(ctx, ep); err != nil {
		log.Fatal(err)
	}
	st := client.Stats()
	fmt.Printf("initialized: %d predicates, %d literals cached (%d queries, %d timeouts)\n\n",
		st.PredicateCount, st.LiteralCount, st.QueriesIssued, st.Timeouts)

	// 1. Auto-complete while typing (QCM).
	fmt.Println("Complete(\"Kerou\"):")
	for _, c := range client.Complete("Kerou") {
		kind := "literal"
		if c.IsPredicate {
			kind = "predicate"
		}
		fmt.Printf("  %-30s (%s, fromTree=%v)\n", c.Text, kind, c.FromTree)
	}

	// 2. Run a query with a misspelled literal: zero answers, but the
	// QSM knows what you meant.
	query := `SELECT ?w WHERE {
		?p <http://dbpedia.org/ontology/name> "Tom Hankss"@en .
		?p <http://dbpedia.org/ontology/spouse> ?w .
	}`
	res, sugs, err := client.Run(ctx, query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nquery returned %d answers; %d suggestions:\n", len(res.Rows), len(sugs))
	for _, s := range sugs {
		fmt.Printf("  [%s] %s\n", s.Kind, s.Message())
	}

	// 3. Accept the first suggestion: its answers were prefetched.
	if len(sugs) > 0 && sugs[0].Prefetched != nil {
		fmt.Println("\naccepted first suggestion; prefetched answers:")
		for _, row := range sugs[0].Prefetched.Rows {
			for v, t := range row {
				fmt.Printf("  ?%s = %s\n", v, t)
			}
		}
	}
}
