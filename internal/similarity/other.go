package similarity

import "strings"

// Levenshtein returns the edit distance between a and b.
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	la, lb := len(ra), len(rb)
	if la == 0 {
		return lb
	}
	if lb == 0 {
		return la
	}
	prev := make([]int, lb+1)
	cur := make([]int, lb+1)
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		for j := 1; j <= lb; j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = minInt(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[lb]
}

// LevenshteinSimilarity normalizes edit distance to a similarity in
// [0, 1]: 1 - dist/maxLen.
func LevenshteinSimilarity(a, b string) float64 {
	if a == "" && b == "" {
		return 1
	}
	la, lb := len([]rune(a)), len([]rune(b))
	d := Levenshtein(a, b)
	return 1 - float64(d)/float64(max(la, lb))
}

// JaccardTokens returns the Jaccard similarity of the whitespace token
// sets of a and b, case-insensitively.
func JaccardTokens(a, b string) float64 {
	ta := tokenSet(a)
	tb := tokenSet(b)
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	inter := 0
	for tok := range ta {
		if tb[tok] {
			inter++
		}
	}
	union := len(ta) + len(tb) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

func tokenSet(s string) map[string]bool {
	out := make(map[string]bool)
	for _, tok := range strings.Fields(strings.ToLower(s)) {
		out[tok] = true
	}
	return out
}

func minInt(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// Measure is a pluggable similarity function, used by the ablation
// benchmarks to swap Jaro-Winkler for alternatives.
type Measure func(a, b string) float64

// ByName returns a named measure: "jarowinkler" (default), "levenshtein",
// or "jaccard". Unknown names return JaroWinkler.
func ByName(name string) Measure {
	switch strings.ToLower(name) {
	case "levenshtein":
		return LevenshteinSimilarity
	case "jaccard":
		return JaccardTokens
	default:
		return JaroWinkler
	}
}
