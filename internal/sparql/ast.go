package sparql

import (
	"fmt"
	"strings"

	"sapphire/internal/rdf"
)

// Node is one position of a triple pattern: either a variable (Var != "")
// or a concrete RDF term. The zero Node is invalid.
type Node struct {
	// Var is the variable name without the leading '?'.
	Var string
	// Term is the concrete term when Var is empty.
	Term rdf.Term
}

// NewVar returns a variable node.
func NewVar(name string) Node { return Node{Var: name} }

// NewTermNode returns a concrete-term node.
func NewTermNode(t rdf.Term) Node { return Node{Term: t} }

// IsVar reports whether the node is a variable.
func (n Node) IsVar() bool { return n.Var != "" }

// String renders the node in SPARQL syntax.
func (n Node) String() string {
	if n.IsVar() {
		return "?" + n.Var
	}
	return n.Term.String()
}

// Pattern is a single triple pattern in a basic graph pattern.
type Pattern struct {
	S, P, O Node
}

// String renders the pattern in SPARQL syntax.
func (p Pattern) String() string {
	return fmt.Sprintf("%s %s %s .", p.S, p.P, p.O)
}

// Vars returns the distinct variable names used in the pattern.
func (p Pattern) Vars() []string {
	var out []string
	p.eachVar(func(v string) { out = append(out, v) })
	return out
}

// eachVar calls fn once per distinct variable of the pattern, in
// position order, without allocating — the planner costs patterns in a
// tight loop, so this is the hot form of Vars.
func (p Pattern) eachVar(fn func(string)) {
	s, pv := p.S.IsVar(), p.P.IsVar()
	if s {
		fn(p.S.Var)
	}
	if pv && !(s && p.P.Var == p.S.Var) {
		fn(p.P.Var)
	}
	if p.O.IsVar() && !(s && p.O.Var == p.S.Var) && !(pv && p.O.Var == p.P.Var) {
		fn(p.O.Var)
	}
}

// AggregateKind enumerates the supported aggregate functions.
type AggregateKind uint8

const (
	// AggNone marks a plain variable projection.
	AggNone AggregateKind = iota
	// AggCount is COUNT(?v), COUNT(*), or COUNT(DISTINCT ?v).
	AggCount
	// AggMax is MAX(?v).
	AggMax
	// AggMin is MIN(?v).
	AggMin
	// AggSum is SUM(?v).
	AggSum
	// AggAvg is AVG(?v).
	AggAvg
)

func (k AggregateKind) String() string {
	switch k {
	case AggCount:
		return "COUNT"
	case AggMax:
		return "MAX"
	case AggMin:
		return "MIN"
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	default:
		return ""
	}
}

// Projection is one item of the SELECT clause: either a plain variable or
// an aggregate over a variable (or * for COUNT(*)).
type Projection struct {
	// Var is the projected variable. For COUNT(*) it is empty.
	Var string
	// Agg is the aggregate applied, AggNone for plain projection.
	Agg AggregateKind
	// AggDistinct is true for COUNT(DISTINCT ?v).
	AggDistinct bool
	// As is the output name. Defaults to Var, or e.g. "count" for
	// aggregates without an AS alias.
	As string
}

// Name returns the output binding name of this projection.
func (pr Projection) Name() string {
	if pr.As != "" {
		return pr.As
	}
	if pr.Agg != AggNone {
		return strings.ToLower(pr.Agg.String())
	}
	return pr.Var
}

// OrderKey is one ORDER BY key.
type OrderKey struct {
	Var  string
	Desc bool
}

// Query is a parsed SPARQL SELECT query.
type Query struct {
	// Prefixes maps prefix labels to namespace IRIs, including defaults.
	Prefixes map[string]string
	// Distinct applies to the projected solutions.
	Distinct bool
	// SelectAll is true for SELECT *.
	SelectAll bool
	// Projections lists SELECT items in order (empty when SelectAll).
	Projections []Projection
	// Where is the basic graph pattern.
	Where []Pattern
	// Optionals are OPTIONAL { ... } blocks left-joined against Where.
	Optionals [][]Pattern
	// UnionGroups, when non-empty, replaces Where with the union of the
	// solutions of each group ({ ... } UNION { ... }).
	UnionGroups [][]Pattern
	// Filters are the FILTER constraints, conjunctively applied.
	Filters []Expr
	// GroupBy lists grouping variables (empty for implicit grouping when
	// aggregates are present).
	GroupBy []string
	// OrderBy lists ordering keys applied after projection.
	OrderBy []OrderKey
	// Limit is the maximum number of rows, or <0 for no limit.
	Limit int
	// Offset skips rows before returning results.
	Offset int
}

// HasAggregates reports whether any projection aggregates.
func (q *Query) HasAggregates() bool {
	for _, p := range q.Projections {
		if p.Agg != AggNone {
			return true
		}
	}
	return false
}

// Vars returns all variables mentioned in the WHERE clause (including
// OPTIONAL blocks and UNION groups) in first-use order.
func (q *Query) Vars() []string {
	var out []string
	seen := make(map[string]bool)
	add := func(ps []Pattern) {
		for _, p := range ps {
			for _, v := range p.Vars() {
				if !seen[v] {
					seen[v] = true
					out = append(out, v)
				}
			}
		}
	}
	add(q.Where)
	for _, g := range q.UnionGroups {
		add(g)
	}
	for _, o := range q.Optionals {
		add(o)
	}
	return out
}

// String reserializes the query in canonical SPARQL syntax. Prefixes are
// expanded, so the output contains only absolute IRIs.
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if q.Distinct {
		b.WriteString("DISTINCT ")
	}
	if q.SelectAll {
		b.WriteString("*")
	} else {
		for i, p := range q.Projections {
			if i > 0 {
				b.WriteByte(' ')
			}
			switch {
			case p.Agg == AggNone:
				b.WriteString("?" + p.Var)
			case p.Var == "":
				fmt.Fprintf(&b, "(%s(*) AS ?%s)", p.Agg, p.Name())
			case p.AggDistinct:
				fmt.Fprintf(&b, "(%s(DISTINCT ?%s) AS ?%s)", p.Agg, p.Var, p.Name())
			default:
				fmt.Fprintf(&b, "(%s(?%s) AS ?%s)", p.Agg, p.Var, p.Name())
			}
		}
	}
	b.WriteString(" WHERE {\n")
	if len(q.UnionGroups) > 0 {
		for i, g := range q.UnionGroups {
			if i > 0 {
				b.WriteString("  UNION\n")
			}
			b.WriteString("  {\n")
			for _, p := range g {
				b.WriteString("    " + p.String() + "\n")
			}
			b.WriteString("  }\n")
		}
	}
	for _, p := range q.Where {
		b.WriteString("  " + p.String() + "\n")
	}
	for _, opt := range q.Optionals {
		b.WriteString("  OPTIONAL {\n")
		for _, p := range opt {
			b.WriteString("    " + p.String() + "\n")
		}
		b.WriteString("  }\n")
	}
	for _, f := range q.Filters {
		b.WriteString("  FILTER (" + f.String() + ")\n")
	}
	b.WriteString("}")
	if len(q.GroupBy) > 0 {
		b.WriteString("\nGROUP BY")
		for _, v := range q.GroupBy {
			b.WriteString(" ?" + v)
		}
	}
	if len(q.OrderBy) > 0 {
		b.WriteString("\nORDER BY")
		for _, k := range q.OrderBy {
			if k.Desc {
				b.WriteString(" DESC(?" + k.Var + ")")
			} else {
				b.WriteString(" ?" + k.Var)
			}
		}
	}
	if q.Limit >= 0 {
		fmt.Fprintf(&b, "\nLIMIT %d", q.Limit)
	}
	if q.Offset > 0 {
		fmt.Fprintf(&b, "\nOFFSET %d", q.Offset)
	}
	return b.String()
}

// Clone returns a deep copy of the query. The PUM mutates clones when
// constructing alternative queries (Algorithm 2 line 16).
func (q *Query) Clone() *Query {
	cp := *q
	cp.Prefixes = make(map[string]string, len(q.Prefixes))
	for k, v := range q.Prefixes {
		cp.Prefixes[k] = v
	}
	cp.Projections = append([]Projection(nil), q.Projections...)
	cp.Where = append([]Pattern(nil), q.Where...)
	cp.Optionals = make([][]Pattern, len(q.Optionals))
	for i, o := range q.Optionals {
		cp.Optionals[i] = append([]Pattern(nil), o...)
	}
	cp.UnionGroups = make([][]Pattern, len(q.UnionGroups))
	for i, g := range q.UnionGroups {
		cp.UnionGroups[i] = append([]Pattern(nil), g...)
	}
	cp.Filters = append([]Expr(nil), q.Filters...)
	cp.GroupBy = append([]string(nil), q.GroupBy...)
	cp.OrderBy = append([]OrderKey(nil), q.OrderBy...)
	return &cp
}
