package store

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"sapphire/internal/rdf"
)

// defaultShards is the process-wide shard count Store.New uses, settable
// once at startup via SetDefaultShards (the serving commands wire their
// -shards flag to it before any store is built).
var defaultShards atomic.Int32

func init() {
	defaultShards.Store(int32(runtime.GOMAXPROCS(0)))
}

// DefaultShards returns the shard count New uses: runtime.GOMAXPROCS at
// process start unless overridden with SetDefaultShards.
func DefaultShards() int {
	return int(defaultShards.Load())
}

// SetDefaultShards overrides the shard count New uses for stores created
// afterwards. n < 1 is clamped to 1. Intended for startup flag wiring;
// existing stores are unaffected.
func SetDefaultShards(n int) {
	if n < 1 {
		n = 1
	}
	defaultShards.Store(int32(n))
}

// Store is a concurrency-safe in-memory triple store, horizontally
// partitioned into shards keyed by a hash of the subject's dictionary
// ID. Each shard owns its own SPO/POS/OSP indexes, RWMutex, and
// mutation epoch; the two-way term dictionary is shared (it is
// append-only, with lock-free resolution). Subject-bound operations
// touch exactly one shard; wildcard-subject operations fan out across
// shards and merge in term-sorted order, preserving the deterministic
// iteration contract of the unsharded store. The zero value is not
// usable; call New or NewSharded.
type Store struct {
	// dict interns terms to dense IDs; all shard indexes are over IDs.
	dict   *dict
	shards []*shard

	// mergeScratches recycles the slices and loser trees the
	// cross-shard wildcard fan-outs use, so a wildcard Match allocates
	// nothing in steady state.
	mergeScratches sync.Pool
}

// scratch checks a mergeScratch out of the pool, reset for tv/rt.
func (s *Store) scratch(tv termView, rt *rankTable) *mergeScratch {
	sc, _ := s.mergeScratches.Get().(*mergeScratch)
	if sc == nil {
		sc = &mergeScratch{}
	}
	sc.reset(tv, rt)
	return sc
}

// New returns an empty store with DefaultShards shards.
func New() *Store {
	return NewSharded(DefaultShards())
}

// NewSharded returns an empty store with exactly n shards (n < 1 is
// clamped to 1) and DefaultDictShards dictionary shards. A 1-shard
// store behaves observationally like the pre-sharding single-store
// implementation, including strict all-or-nothing visibility of
// BulkLoader commits; with more shards a commit publishes shard by
// shard, so a concurrent reader may observe a prefix of a batch (each
// individual shard is still all-or-nothing).
func NewSharded(n int) *Store {
	return NewShardedDict(n, DefaultDictShards)
}

// NewShardedDict is NewSharded with an explicit term-dictionary shard
// count (rounded up to a power of two, clamped to [1, 256]; values < 1
// select DefaultDictShards). Dictionary sharding bounds interning lock
// contention only — observable behavior is identical across any
// (shards, dictShards) combination.
func NewShardedDict(n, dictShards int) *Store {
	if n < 1 {
		n = 1
	}
	s := &Store{dict: newDict(dictShards), shards: make([]*shard, n)}
	for i := range s.shards {
		s.shards[i] = newShard()
	}
	return s
}

// Shards returns the number of shards the store was built with.
func (s *Store) Shards() int { return len(s.shards) }

// shardFor routes a subject ID to its owning shard. The multiplicative
// hash decorrelates shard choice from the dense first-seen ID sequence,
// so subjects interned in bursts (a sorted bulk load) still spread.
func (s *Store) shardFor(si ID) *shard {
	return s.shards[s.shardIndex(si)]
}

func (s *Store) shardIndex(si ID) int {
	if len(s.shards) == 1 {
		return 0
	}
	h := (uint64(si) * 0x9E3779B97F4A7C15) >> 32
	return int(h % uint64(len(s.shards)))
}

// rlockAll acquires every shard's read lock in shard order; runlockAll
// releases them. Multi-shard readers hold all shard locks for the
// duration of the fan-out so a scan observes each shard at a single
// point in time. Writers only ever hold one shard lock at a time, so
// the fixed acquisition order cannot deadlock.
func (s *Store) rlockAll() {
	for _, sh := range s.shards {
		sh.mu.RLock()
	}
}

func (s *Store) runlockAll() {
	for _, sh := range s.shards {
		sh.mu.RUnlock()
	}
}

// Add inserts a triple. It returns an error if the triple violates RDF
// positional rules, and reports whether the triple was newly added.
func (s *Store) Add(tr rdf.Triple) (bool, error) {
	if !tr.Valid() {
		return false, fmt.Errorf("store: invalid triple %s", tr)
	}
	si, pi, oi := s.dict.internTriple(tr)
	sh := s.shardFor(si)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, dup := sh.present[[3]ID{si, pi, oi}]; dup {
		return false, nil
	}
	sh.addLocked(s.dict.view(), si, pi, oi)
	return true, nil
}

// Epoch returns the store's mutation epoch: a monotonic counter that
// advances whenever the triple set changes (Add of a new triple,
// BulkLoader.Commit with fresh triples). It is the sum of the per-shard
// epochs, so it moves if and only if some shard's triple set changed.
// Two Epoch reads returning the same value bracket a window in which
// every query answer was computed against the same triple set, which is
// exactly the guarantee a result cache needs: keying cached entries by
// (query, epoch) makes invalidation free — a mutation moves the epoch
// and every stale entry simply stops being addressable.
//
// Epoch never takes a shard lock. It may be observed to advance
// slightly before a writer releases its shard's write lock; a reader
// that then evaluates a query blocks on that shard's read lock until
// the writer is done, so the answer it computes is consistent with (or
// newer than) the epoch it read — never older.
//
// The sum is read shard by shard, not atomically, so under concurrent
// writes two distinct triple-set states can yield the same sum (bump A
// then bump B passes through sums E and E+1, while a torn reader mixing
// old-A with new-B also lands on E+... a colliding value). This does
// not weaken the cache contract: every per-shard counter is monotone
// and the shards are read at increasing times, so if a cached entry's
// state S sums to the value a reader computed, S must have been the
// current state at some instant inside that reader's read window —
// were S already superseded before the window, every later per-shard
// read would be ≥ S's vector with at least one strictly greater (sum
// too large); were S not yet reached, at least one strictly smaller
// (sum too small). Serving S is therefore exactly as linearizable as
// the old store-global counter, which also named one instant within
// the reader's window.
func (s *Store) Epoch() uint64 {
	var e uint64
	for _, sh := range s.shards {
		e += sh.epoch.Load()
	}
	return e
}

// AddAll inserts all triples, stopping at the first invalid one (valid
// triples before it are still inserted). It routes through the staged
// bulk-load path, so each index key slice is sorted once per batch
// instead of insertion-sorted per new key — use it (or a BulkLoader
// directly) for anything bigger than a handful of triples.
func (s *Store) AddAll(triples []rdf.Triple) error {
	l := NewBulkLoader(s)
	err := l.AddAll(triples)
	l.Commit()
	return err
}

// MustAdd inserts a triple and panics on invalid input. Intended for
// dataset construction in tests and generators where inputs are static.
func (s *Store) MustAdd(tr rdf.Triple) {
	if _, err := s.Add(tr); err != nil {
		panic(err)
	}
}

// Len returns the number of distinct triples.
func (s *Store) Len() int {
	s.rlockAll()
	defer s.runlockAll()
	n := 0
	for _, sh := range s.shards {
		n += sh.size
	}
	return n
}

// Contains reports whether the exact triple is present.
func (s *Store) Contains(tr rdf.Triple) bool {
	si, pi, oi, ok := s.patternIDs(tr.S, tr.P, tr.O)
	if !ok || si == Wildcard || pi == Wildcard || oi == Wildcard {
		return false
	}
	sh := s.shardFor(si)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	_, ok = sh.present[[3]ID{si, pi, oi}]
	return ok
}

// Lookup returns the dictionary ID for a term without interning it. The
// second result is false when the term has never been interned. Note a
// term can be interned ahead of its triples: a BulkLoader stages terms
// before Commit, so Lookup may succeed for a term that matches nothing
// (MatchIDs/CountIDs correctly return empty/0 for it).
func (s *Store) Lookup(t rdf.Term) (ID, bool) {
	return s.dict.lookup(t)
}

// ResolveID returns the term for a dictionary ID. Unknown IDs (including
// Wildcard) resolve to the zero Term. It is lock-free (the ID→term
// chunks are published through an atomic spine pointer), so it is safe
// to call from inside Match/MatchIDs callbacks — a nested mutex
// acquisition there would deadlock against a queued writer.
func (s *Store) ResolveID(id ID) rdf.Term {
	return s.dict.termAt(id)
}

// Match streams every triple matching the pattern to fn. A zero Term in
// any position is a wildcard. Iteration stops early if fn returns false.
// The callback must not mutate the store.
func (s *Store) Match(sub, pred, obj rdf.Term, fn func(rdf.Triple) bool) {
	si, pi, oi, ok := s.patternIDs(sub, pred, obj)
	if !ok {
		return
	}
	// The view is captured inside the first callback, i.e. after
	// MatchIDs acquired the shard lock(s): every triple visible under
	// those locks had its terms published before its insert completed,
	// so one view covers the whole iteration (terms are interned
	// strictly before their triples become visible). Bound positions
	// match only their own ID, so their term comes straight from the
	// pattern — only wildcard positions resolve per row. The two
	// hottest wildcard-subject shapes get branch-free callbacks; the
	// generic form selects per-field source pointers.
	var tv termView
	switch {
	case si == Wildcard && pi != Wildcard && oi == Wildcard:
		// (?s P ?o): the POS sweep, the cross-shard merge workload.
		s.MatchIDs(si, pi, oi, func(a, _, c ID) bool {
			if tv.chunks == nil {
				tv = s.dict.view()
			}
			return fn(rdf.Triple{S: *tv.atPtr(a), P: pred, O: *tv.atPtr(c)})
		})
	case si == Wildcard && pi != Wildcard && oi != Wildcard:
		// (?s P O): subject runs for one predicate/object pair.
		s.MatchIDs(si, pi, oi, func(a, _, _ ID) bool {
			if tv.chunks == nil {
				tv = s.dict.view()
			}
			return fn(rdf.Triple{S: *tv.atPtr(a), P: pred, O: obj})
		})
	default:
		sp, pp, op := &sub, &pred, &obj
		s.MatchIDs(si, pi, oi, func(a, b, c ID) bool {
			if tv.chunks == nil {
				tv = s.dict.view()
			}
			if si == Wildcard {
				sp = tv.atPtr(a)
			}
			if pi == Wildcard {
				pp = tv.atPtr(b)
			}
			if oi == Wildcard {
				op = tv.atPtr(c)
			}
			return fn(rdf.Triple{S: *sp, P: *pp, O: *op})
		})
	}
}

// MatchIDs streams every matching triple as a dictionary-ID tuple. A
// Wildcard (zero) ID in any position matches every term. Iteration stops
// early if fn returns false. The callback must not mutate the store.
//
// Subject-bound patterns lock and walk exactly one shard. Wildcard-
// subject patterns take every shard's read lock and merge the per-shard
// streams in term-sorted order, so iteration order is identical to a
// single-shard store's regardless of shard count.
func (s *Store) MatchIDs(sub, pred, obj ID, fn func(s, p, o ID) bool) {
	if sub != Wildcard {
		sh := s.shardFor(sub)
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		sh.matchLocked(sub, pred, obj, fn)
		return
	}
	if len(s.shards) == 1 {
		sh := s.shards[0]
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		sh.matchLocked(sub, pred, obj, fn)
		return
	}
	s.dict.maybeBuildRanks()
	s.rlockAll()
	defer s.runlockAll()
	s.matchIDsLocked(sub, pred, obj, fn)
}

// matchIDsLocked is MatchIDs with every shard read lock already held.
func (s *Store) matchIDsLocked(sub, pred, obj ID, fn func(s, p, o ID) bool) {
	if sub != Wildcard {
		s.shardFor(sub).matchLocked(sub, pred, obj, fn)
		return
	}
	if len(s.shards) == 1 {
		s.shards[0].matchLocked(sub, pred, obj, fn)
		return
	}
	switch {
	case pred != Wildcard:
		s.matchPredBoundLocked(pred, obj, fn)
	case obj != Wildcard:
		s.matchObjBoundLocked(obj, fn)
	default:
		s.matchScanLocked(fn)
	}
}

// PinRead acquires every shard's read lock until the returned release is
// called, letting the holder scan reentrantly via MatchIDsPinned: the
// evaluator's streaming join issues the next pattern's scan from inside
// the current scan's callback, which must not re-acquire locks (a queued
// writer would deadlock a nested read-lock acquisition). A pinned reader
// sees one consistent store state for its whole evaluation; writers wait
// for release, exactly as they wait out a single long wildcard scan.
func (s *Store) PinRead() (release func()) {
	s.dict.maybeBuildRanks()
	s.rlockAll()
	return s.runlockAll
}

// MatchIDsPinned is MatchIDs under a PinRead session: no locking, safe
// to call from inside its own callbacks.
func (s *Store) MatchIDsPinned(sub, pred, obj ID, fn func(s, p, o ID) bool) {
	s.matchIDsLocked(sub, pred, obj, fn)
}

// matchPredBoundLocked handles (?s P O) and (?s P ?o) across shards.
// All shard read locks must be held.
func (s *Store) matchPredBoundLocked(pred, obj ID, fn func(a, b, c ID) bool) {
	sc := s.scratch(s.dict.view(), s.dict.ranks.Load())
	defer s.mergeScratches.Put(sc)
	for _, sh := range s.shards {
		if e := sh.pos.m[pred]; e != nil {
			sc.entries = append(sc.entries, e)
		}
	}
	if len(sc.entries) == 0 {
		return
	}
	if obj != Wildcard {
		// Subjects for one (P, O) pair: disjoint term-sorted runs, one
		// per shard (POS keeps innermost lists term-sorted).
		for _, e := range sc.entries {
			if subs := e.get(obj); len(subs) > 0 {
				sc.inner = append(sc.inner, subs)
			}
		}
		sc.outer.merge(sc.inner, func(sb ID, _ []int) bool {
			return fn(sb, pred, obj)
		})
		return
	}
	// Objects merge across shards in term order; the same object can
	// appear in several shards (its subjects are spread), so each
	// distinct object merges the contributing shards' subject runs. The
	// subject lists come from the merge cursors (posAt) against the
	// key-parallel list slices — no per-object map probe — and the inner
	// merger is reused across objects, its loser tree spinning up only
	// when an object really spans shards.
	for _, e := range sc.entries {
		sc.keyLists = append(sc.keyLists, e.keys)
		sc.lists = append(sc.lists, e.lists)
	}
	outer, lists := &sc.outer, sc.lists
	outer.merge(sc.keyLists, func(o ID, which []int) bool {
		if len(which) == 1 {
			w := which[0]
			for _, sb := range *lists[w][outer.posAt(w)] {
				if !fn(sb, pred, o) {
					return false
				}
			}
			return true
		}
		sc.inner = sc.inner[:0]
		for _, w := range which {
			sc.inner = append(sc.inner, *lists[w][outer.posAt(w)])
		}
		return sc.innerM.merge(sc.inner, func(sb ID, _ []int) bool {
			return fn(sb, pred, o)
		})
	})
}

// matchObjBoundLocked handles (?s ?p O) across shards: per-shard OSP
// subject streams are disjoint (a subject lives in one shard) and term-
// sorted, so they merge directly; each subject's predicate list comes
// whole from its shard. All shard read locks must be held.
func (s *Store) matchObjBoundLocked(obj ID, fn func(a, b, c ID) bool) {
	sc := s.scratch(s.dict.view(), s.dict.ranks.Load())
	defer s.mergeScratches.Put(sc)
	for _, sh := range s.shards {
		if e := sh.osp.m[obj]; e != nil {
			sc.entries = append(sc.entries, e)
		}
	}
	if len(sc.entries) == 0 {
		return
	}
	for _, e := range sc.entries {
		sc.keyLists = append(sc.keyLists, e.keys)
		sc.lists = append(sc.lists, e.lists)
	}
	outer, lists := &sc.outer, sc.lists
	outer.merge(sc.keyLists, func(sb ID, which []int) bool {
		w := which[0]
		for _, p := range *lists[w][outer.posAt(w)] {
			if !fn(sb, p, obj) {
				return false
			}
		}
		return true
	})
}

// matchScanLocked handles the full (?s ?p ?o) scan across shards:
// subjects are disjoint term-sorted streams, and each subject's whole
// out-edge set lives in its shard. All shard read locks must be held.
func (s *Store) matchScanLocked(fn func(a, b, c ID) bool) {
	sc := s.scratch(s.dict.view(), s.dict.ranks.Load())
	defer s.mergeScratches.Put(sc)
	for _, sh := range s.shards {
		sc.keyLists = append(sc.keyLists, sh.spo.keys)
	}
	sc.outer.merge(sc.keyLists, func(sb ID, which []int) bool {
		return s.shards[which[0]].scanSubjectLocked(sb, fn)
	})
}

// patternIDs maps a Term pattern to an ID pattern. ok is false when a
// non-wildcard term is absent from the dictionary, i.e. nothing matches.
func (s *Store) patternIDs(sub, pred, obj rdf.Term) (si, pi, oi ID, ok bool) {
	if !sub.IsZero() {
		if si, ok = s.dict.lookup(sub); !ok {
			return 0, 0, 0, false
		}
	}
	if !pred.IsZero() {
		if pi, ok = s.dict.lookup(pred); !ok {
			return 0, 0, 0, false
		}
	}
	if !obj.IsZero() {
		if oi, ok = s.dict.lookup(obj); !ok {
			return 0, 0, 0, false
		}
	}
	return si, pi, oi, true
}

// MatchSlice collects all triples matching the pattern.
func (s *Store) MatchSlice(sub, pred, obj rdf.Term) []rdf.Triple {
	var out []rdf.Triple
	s.Match(sub, pred, obj, func(tr rdf.Triple) bool {
		out = append(out, tr)
		return true
	})
	return out
}

// Count returns the number of triples matching the pattern without
// materializing them. Every pattern shape has full index coverage, so
// the answer is a constant number of map probes per shard — no
// iteration.
func (s *Store) Count(sub, pred, obj rdf.Term) int {
	si, pi, oi, ok := s.patternIDs(sub, pred, obj)
	if !ok {
		return 0
	}
	return s.CountIDs(si, pi, oi)
}

// CountIDs is Count over dictionary IDs (Wildcard matches every term).
func (s *Store) CountIDs(sub, pred, obj ID) int {
	if sub != Wildcard {
		sh := s.shardFor(sub)
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		return sh.countLocked(sub, pred, obj)
	}
	s.rlockAll()
	defer s.runlockAll()
	n := 0
	for _, sh := range s.shards {
		n += sh.countLocked(sub, pred, obj)
	}
	return n
}

// CardinalityEstimate returns the number of results for a pattern, used
// by the endpoint cost model and by the federated source selection. With
// the per-entry totals maintained on insert it is exact for every shape
// and O(shards); it shares the implementation with Count.
func (s *Store) CardinalityEstimate(sub, pred, obj rdf.Term) int {
	return s.Count(sub, pred, obj)
}

// CardinalityEstimateIDs is CardinalityEstimate over dictionary IDs.
func (s *Store) CardinalityEstimateIDs(sub, pred, obj ID) int {
	return s.CountIDs(sub, pred, obj)
}

// Subjects returns the distinct subjects, sorted. Per-shard subject key
// slices are disjoint and term-sorted, so this is a k-way merge.
func (s *Store) Subjects() []rdf.Term {
	s.dict.maybeBuildRanks()
	s.rlockAll()
	defer s.runlockAll()
	tv := s.dict.view()
	rt := s.dict.ranks.Load()
	keyLists := make([][]ID, len(s.shards))
	n := 0
	for i, sh := range s.shards {
		keyLists[i] = sh.spo.keys
		n += len(sh.spo.keys)
	}
	out := make([]rdf.Term, 0, n)
	mergeSorted(tv, rt, keyLists, func(id ID, _ []int) bool {
		out = append(out, tv.at(id))
		return true
	})
	return out
}

// Predicates returns the distinct predicates, sorted. The same
// predicate typically occurs in every shard; the merge visits each
// distinct ID once.
func (s *Store) Predicates() []rdf.Term {
	s.dict.maybeBuildRanks()
	s.rlockAll()
	defer s.runlockAll()
	tv := s.dict.view()
	rt := s.dict.ranks.Load()
	keyLists := make([][]ID, len(s.shards))
	for i, sh := range s.shards {
		keyLists[i] = sh.pos.keys
	}
	var out []rdf.Term
	mergeSorted(tv, rt, keyLists, func(id ID, _ []int) bool {
		out = append(out, tv.at(id))
		return true
	})
	return out
}

// resolveAll maps a (term-sorted) ID slice to its terms.
func (s *Store) resolveAll(ids []ID) []rdf.Term {
	tv := s.dict.view()
	out := make([]rdf.Term, len(ids))
	for i, id := range ids {
		out[i] = tv.at(id)
	}
	return out
}
