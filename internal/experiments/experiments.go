// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 7) on the synthetic substrate. It is shared by the
// cmd/sapphire-bench binary and the root-level testing.B benchmarks; see
// DESIGN.md's experiment index for the mapping.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"time"

	"sapphire/internal/baselines"
	"sapphire/internal/bins"
	"sapphire/internal/bootstrap"
	"sapphire/internal/datagen"
	"sapphire/internal/endpoint"
	"sapphire/internal/federation"
	"sapphire/internal/operator"
	"sapphire/internal/pum"
	"sapphire/internal/qald"
	"sapphire/internal/rdf"
	"sapphire/internal/similarity"
	"sapphire/internal/sparql"
	"sapphire/internal/steiner"
	"sapphire/internal/userstudy"
)

// Env bundles everything an experiment needs.
type Env struct {
	Dataset  *datagen.Dataset
	Endpoint *endpoint.Local
	Cache    *bootstrap.Cache
	Fed      *federation.Federation
	PUM      *pum.PUM
	Operator *operator.Operator
}

// Scale selects the dataset size.
type Scale int

const (
	// Small is the unit-test scale (fast).
	Small Scale = iota
	// Full is the benchmark scale (~25k triples).
	Full
)

// Setup generates the dataset, runs initialization, and wires the stack.
func Setup(ctx context.Context, scale Scale) (*Env, error) {
	cfg := datagen.SmallConfig()
	if scale == Full {
		cfg = datagen.DefaultConfig()
	}
	d := datagen.Generate(cfg)
	ep := endpoint.NewLocal("synthetic-dbpedia", d.Store, endpoint.Limits{})
	cache, err := bootstrap.Initialize(ctx, ep, bootstrap.DefaultConfig())
	if err != nil {
		return nil, err
	}
	fed := federation.New(ep)
	p := pum.New(cache, fed, nil, pum.DefaultConfig())
	return &Env{
		Dataset:  d,
		Endpoint: ep,
		Cache:    cache,
		Fed:      fed,
		PUM:      p,
		Operator: operator.New(p),
	}, nil
}

// --- Table 1 -----------------------------------------------------------

// PaperRow is a Table 1 row copied from the paper, printed alongside our
// measurements for comparison (systems we could not run are reference
// rows only, exactly as the paper copied QALD-5 participants' numbers).
type PaperRow struct {
	System                         string
	Pro                            int
	Right, Partial                 int
	R, RStar, P, PStar, F1, F1Star float64
	Reproduced                     bool
}

// PaperTable1 is the published Table 1.
func PaperTable1() []PaperRow {
	return []PaperRow{
		{"Xser", 42, 26, 7, 0.52, 0.66, 0.62, 0.79, 0.57, 0.72, false},
		{"APEQ", 26, 8, 5, 0.16, 0.26, 0.31, 0.50, 0.21, 0.34, false},
		{"QAnswer", 37, 9, 4, 0.18, 0.26, 0.24, 0.35, 0.21, 0.30, false},
		{"SemGraphQA", 31, 7, 3, 0.14, 0.20, 0.23, 0.32, 0.17, 0.25, false},
		{"YodaQA", 33, 8, 2, 0.16, 0.20, 0.24, 0.30, 0.19, 0.24, false},
		{"QAKiS", 40, 14, 9, 0.28, 0.46, 0.35, 0.58, 0.31, 0.51, true},
		{"KBQA", 8, 8, 0, 0.16, 0.16, 1.0, 1.0, 0.28, 0.28, true},
		{"S4", 26, 16, 5, 0.32, 0.42, 0.62, 0.81, 0.42, 0.55, true},
		{"SPARQLByE", 7, 4, 0, 0.08, 0.08, 0.57, 0.57, 0.14, 0.14, true},
		{"Sapphire", 43, 43, 0, 0.86, 0.86, 1.0, 1.0, 0.92, 0.92, true},
	}
}

// Table1 runs the Sapphire operator and the four reimplemented baselines
// over the 50-question suite.
func Table1(ctx context.Context, env *Env) ([]qald.Row, error) {
	questions := qald.Questions()
	systems := []qald.System{
		baselines.NewQAKiS(env.Dataset.Store),
		baselines.NewKBQA(env.Dataset.Store),
		baselines.NewS4(env.Dataset.Store),
		baselines.NewSPARQLByE(env.Dataset.Store),
		env.Operator,
	}
	var rows []qald.Row
	for _, sys := range systems {
		row, err := qald.Evaluate(ctx, sys, questions, env.Dataset.Store)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintTable1 renders measured rows next to the paper's.
func PrintTable1(w io.Writer, rows []qald.Row) {
	fmt.Fprintln(w, "Table 1: QALD-5-style comparison (measured on synthetic DBpedia)")
	fmt.Fprintf(w, "%-11s %5s %5s %4s %5s %6s %6s %6s %6s %6s %6s\n",
		"system", "#pro", "%", "#ri", "#par", "R", "R*", "P", "P*", "F1", "F1*")
	for _, r := range rows {
		fmt.Fprintf(w, "%-11s %5d %4.0f%% %4d %5d %6.2f %6.2f %6.2f %6.2f %6.2f %6.2f\n",
			r.System, r.Processed, r.ProcessedPct(), r.Right, r.Partial,
			r.Recall(), r.PartialRecall(), r.Precision(), r.PartialPrecision(), r.F1(), r.F1Star())
	}
	fmt.Fprintln(w, "\nPaper-reported Table 1 (reference):")
	for _, r := range PaperTable1() {
		tag := " "
		if !r.Reproduced {
			tag = "†" // not runnable: closed-source / QALD-5 participant
		}
		fmt.Fprintf(w, "%-11s%s %4d %9d %5d %6.2f %6.2f %6.2f %6.2f %6.2f %6.2f\n",
			r.System, tag, r.Pro, r.Right, r.Partial, r.R, r.RStar, r.P, r.PStar, r.F1, r.F1Star)
	}
	fmt.Fprintln(w, "† reference-only row (system not publicly runnable; numbers from the paper)")
}

// --- Figures 8–11 ------------------------------------------------------

// Study runs the simulated user study.
func Study(ctx context.Context, env *Env) (*userstudy.Result, error) {
	return userstudy.Run(ctx, env.PUM, env.Dataset.Store, userstudy.DefaultConfig())
}

// PrintFigure renders one of the four study figures.
func PrintFigure(w io.Writer, res *userstudy.Result, fig string) {
	type cell func(*userstudy.CategoryStats) float64
	var title, unit string
	var f cell
	switch fig {
	case "fig8":
		title, unit, f = "Figure 8: success rate of answering questions", "%", (*userstudy.CategoryStats).SuccessRate
	case "fig9":
		title, unit, f = "Figure 9: questions answered by at least one participant", "%", (*userstudy.CategoryStats).CoveragePct
	case "fig10":
		title, unit, f = "Figure 10: average attempts before finding an answer", "", (*userstudy.CategoryStats).AvgAttempts
	case "fig11":
		title, unit, f = "Figure 11: average time spent on answered questions", "min", (*userstudy.CategoryStats).AvgMinutes
	default:
		fmt.Fprintf(w, "unknown figure %q\n", fig)
		return
	}
	fmt.Fprintln(w, title)
	fmt.Fprintf(w, "%-10s %12s %12s\n", "difficulty", "QAKiS", "Sapphire")
	for _, d := range []qald.Difficulty{qald.Easy, qald.Medium, qald.Difficult} {
		q := f(res.Stats["QAKiS"][d])
		s := f(res.Stats["Sapphire"][d])
		fmt.Fprintf(w, "%-10s %10.1f%-2s %10.1f%-2s\n", d, q, unit, s, unit)
	}
	if fig == "fig8" {
		fmt.Fprintln(w, "(95% CI half-widths:)")
		for _, d := range []qald.Difficulty{qald.Easy, qald.Medium, qald.Difficult} {
			fmt.Fprintf(w, "%-10s %10.1f%%  %10.1f%%\n", d,
				res.Stats["QAKiS"][d].ConfidenceInterval95(),
				res.Stats["Sapphire"][d].ConfidenceInterval95())
		}
	}
}

// PrintUsage renders the Section 7.3.2 QSM usage statistics.
func PrintUsage(w io.Writer, res *userstudy.Result) {
	u := res.Usage
	fmt.Fprintln(w, "QSM usage during the user study (paper: >90% any, 28% predicates, 17% literals, 67% relaxation):")
	fmt.Fprintf(w, "  any suggestion:        %5.1f%%\n", userstudy.Pct(u.UsedSuggestion, u.Questions))
	fmt.Fprintf(w, "  alternative predicate: %5.1f%%\n", userstudy.Pct(u.AltPredicate, u.Questions))
	fmt.Fprintf(w, "  alternative literal:   %5.1f%%\n", userstudy.Pct(u.AltLiteral, u.Questions))
	fmt.Fprintf(w, "  relaxed structure:     %5.1f%%\n", userstudy.Pct(u.Relaxation, u.Questions))
}

// --- Section 5: initialization ----------------------------------------

// InitReport holds the end-of-Section-5 statistics for one
// initialization run.
type InitReport struct {
	Stats         bootstrap.Stats
	EndpointStats endpoint.Stats
}

// InitWithTimeouts reruns initialization against a constrained endpoint
// so the timeout/descent machinery is visible in the stats, like the
// DBpedia run the paper describes (3800 queries, ~200 timeouts).
func InitWithTimeouts(ctx context.Context, scale Scale) (*InitReport, error) {
	cfg := datagen.SmallConfig()
	maxRows := 220
	if scale == Full {
		cfg = datagen.DefaultConfig()
		maxRows = 4000
	}
	d := datagen.Generate(cfg)
	ep := endpoint.NewLocal("constrained-dbpedia", d.Store, endpoint.Limits{MaxIntermediateRows: maxRows})
	cache, err := bootstrap.Initialize(ctx, ep, bootstrap.DefaultConfig())
	if err != nil {
		return nil, err
	}
	return &InitReport{Stats: cache.Stats, EndpointStats: ep.Stats()}, nil
}

// PrintInit renders the initialization report.
func PrintInit(w io.Writer, r *InitReport) {
	s := r.Stats
	fmt.Fprintln(w, "Initialization statistics (Section 5; paper DBpedia run: ~800 literal queries,")
	fmt.Fprintln(w, "~3000 significance queries, ~200 timeouts, 43K tree strings, 21M residual literals, 80 bins):")
	fmt.Fprintf(w, "  queries issued:        %d (literal %d, significance %d)\n",
		s.QueriesIssued, s.LiteralQueries, s.SignificanceQueries)
	fmt.Fprintf(w, "  timeouts survived:     %d\n", s.Timeouts)
	fmt.Fprintf(w, "  predicates cached:     %d\n", s.PredicateCount)
	fmt.Fprintf(w, "  literals cached:       %d (significant %d, residual %d in %d bins)\n",
		s.LiteralCount, s.SignificantCount, s.ResidualCount, s.BinCount)
	fmt.Fprintf(w, "  suffix tree:           %d nodes, ~%d KiB\n", s.TreeNodes, s.TreeBytes/1024)
	fmt.Fprintf(w, "  used RDFS hierarchy:   %v\n", s.UsedHierarchy)
	fmt.Fprintf(w, "  wall time:             %v\n", s.Duration.Round(time.Millisecond))
}

// --- Section 7.3.1: QCM response time ----------------------------------

// QCMReport measures the two components of completion latency.
type QCMReport struct {
	// TreeLookupNs is the mean suffix-tree lookup latency.
	TreeLookupNs float64
	// BinScanNsByWorkers maps worker count → mean residual-scan latency.
	BinScanNsByWorkers map[int]float64
	// TotalNs is the mean end-to-end Complete latency at the default
	// worker count.
	TotalNs float64
	// HitRatio is the fraction of lookup terms with a suffix-tree match.
	HitRatio float64
	// FilterEliminated is the mean fraction of residual literals
	// excluded by the γ length window (paper: ~46%).
	FilterEliminated float64
	// Terms is the number of lookup terms measured.
	Terms int
}

// qcmTerms derives lookup strings from the study questions: prefixes of
// the keywords users type, as the QCM sees them keystroke by keystroke.
func qcmTerms() []string {
	var out []string
	for _, q := range qald.Questions() {
		for _, tr := range q.Plan.Triples {
			for _, n := range []qald.Node{tr.P, tr.O} {
				if n.Keyword == "" {
					continue
				}
				kw := n.Keyword
				for _, cut := range []int{4, 7, len(kw)} {
					if cut <= len(kw) {
						out = append(out, kw[:cut])
					}
				}
			}
		}
	}
	sort.Strings(out)
	return dedupe(out)
}

func dedupe(ss []string) []string {
	out := ss[:0]
	for i, s := range ss {
		if i == 0 || s != ss[i-1] {
			out = append(out, s)
		}
	}
	return out
}

// QCM measures completion latency components.
func QCM(env *Env, workerCounts []int) *QCMReport {
	terms := qcmTerms()
	rep := &QCMReport{BinScanNsByWorkers: make(map[int]float64), Terms: len(terms)}

	start := time.Now()
	hits := 0
	for _, t := range terms {
		if len(env.PUM.CompleteTreeOnly(t)) > 0 {
			hits++
		}
	}
	rep.TreeLookupNs = float64(time.Since(start).Nanoseconds()) / float64(len(terms))
	rep.HitRatio = float64(hits) / float64(len(terms))

	for _, wc := range workerCounts {
		start = time.Now()
		for _, t := range terms {
			env.PUM.CompleteBinsOnly(t, wc)
		}
		rep.BinScanNsByWorkers[wc] = float64(time.Since(start).Nanoseconds()) / float64(len(terms))
	}

	start = time.Now()
	for _, t := range terms {
		env.PUM.Complete(t)
	}
	rep.TotalNs = float64(time.Since(start).Nanoseconds()) / float64(len(terms))

	// Mean fraction of residual literals the γ window eliminates.
	total := env.Cache.Bins.Len()
	if total > 0 {
		sum := 0.0
		gamma := env.PUM.Config().Gamma
		for _, t := range terms {
			sel := env.Cache.Bins.SelectedCount(len([]rune(t)), len([]rune(t))+gamma)
			sum += 1 - float64(sel)/float64(total)
		}
		rep.FilterEliminated = sum / float64(len(terms))
	}
	return rep
}

// PrintQCM renders the QCM latency report.
func PrintQCM(w io.Writer, r *QCMReport) {
	fmt.Fprintln(w, "QCM response time (Section 7.3.1; paper: 0.25 ms tree lookup, 0.6 s → 0.16 s")
	fmt.Fprintln(w, "bin scan from 1 to 8 cores, 50% hit ratio, 46% of literals filtered by length):")
	fmt.Fprintf(w, "  lookup terms:            %d\n", r.Terms)
	fmt.Fprintf(w, "  suffix-tree lookup:      %.3f ms (hit ratio %.0f%%)\n", r.TreeLookupNs/1e6, 100*r.HitRatio)
	var workers []int
	for wc := range r.BinScanNsByWorkers {
		workers = append(workers, wc)
	}
	sort.Ints(workers)
	for _, wc := range workers {
		fmt.Fprintf(w, "  residual scan, %d worker(s): %.3f ms\n", wc, r.BinScanNsByWorkers[wc]/1e6)
	}
	fmt.Fprintf(w, "  total Complete():        %.3f ms\n", r.TotalNs/1e6)
	fmt.Fprintf(w, "  length filter eliminates %.0f%% of residual literals on average\n", 100*r.FilterEliminated)
}

// ParallelScan measures the residual-bin scan speedup across worker
// counts on an enlarged bin set. The paper demonstrates the effect at 21M
// DBpedia literals (0.6 s at 1 core → 0.16 s at 8); our cache holds a few
// thousand, so the literals are replicated with distinct suffixes until
// the scan is compute-bound and the Algorithm 1 load balancing is
// visible. Returned map: workers → mean scan latency (ns) for the QSM's
// Jaro-Winkler similarity search, the heavier of the two bin scans.
func ParallelScan(env *Env, workerCounts []int, replicas int) map[int]float64 {
	var lits []string
	for _, lex := range env.Cache.Literals() {
		for i := 0; i < replicas; i++ {
			lits = append(lits, fmt.Sprintf("%s (%d)", lex, i))
		}
	}
	big := bins.New(lits)
	targets := []string{"Ted Kennedys", "Jack Kerouak", "Viking Pres", "Australa"}
	out := make(map[int]float64, len(workerCounts))
	for _, wc := range workerCounts {
		start := time.Now()
		for _, t := range targets {
			n := len([]rune(t))
			big.SearchSimilar(t, n-2, n+8, wc, 0.7, nil)
		}
		out[wc] = float64(time.Since(start).Nanoseconds()) / float64(len(targets))
	}
	return out
}

// PrintParallelScan renders the sweep.
func PrintParallelScan(w io.Writer, sweep map[int]float64, nLiterals int) {
	fmt.Fprintf(w, "Residual-bin similarity scan vs workers (%d literals; paper shape: monotone speedup):\n", nLiterals)
	var workers []int
	for wc := range sweep {
		workers = append(workers, wc)
	}
	sort.Ints(workers)
	base := sweep[workers[0]]
	for _, wc := range workers {
		fmt.Fprintf(w, "  %2d worker(s): %8.2f ms  (%.1fx)\n", wc, sweep[wc]/1e6, base/sweep[wc])
	}
}

// HitRatioPoint is one sweep point of the hit-ratio experiment.
type HitRatioPoint struct {
	TreeCapacity int
	HitRatio     float64
}

// HitRatioSweep rebuilds the cache at increasing suffix-tree capacities
// and measures the hit ratio, reproducing the "even 40K literals give
// 50%" observation.
func HitRatioSweep(ctx context.Context, env *Env, capacities []int) ([]HitRatioPoint, error) {
	terms := qcmTerms()
	var out []HitRatioPoint
	for _, capacity := range capacities {
		cfg := bootstrap.DefaultConfig()
		cfg.SuffixTreeCapacity = capacity
		cache, err := bootstrap.Initialize(ctx, env.Endpoint, cfg)
		if err != nil {
			return nil, err
		}
		p := pum.New(cache, env.Fed, nil, pum.DefaultConfig())
		hits := 0
		for _, t := range terms {
			if len(p.CompleteTreeOnly(t)) > 0 {
				hits++
			}
		}
		out = append(out, HitRatioPoint{capacity, float64(hits) / float64(len(terms))})
	}
	return out, nil
}

// PrintHitRatio renders the sweep.
func PrintHitRatio(w io.Writer, pts []HitRatioPoint) {
	fmt.Fprintln(w, "QCM hit ratio vs suffix-tree capacity (Section 7.3.1):")
	for _, p := range pts {
		fmt.Fprintf(w, "  capacity %6d → hit ratio %.0f%%\n", p.TreeCapacity, 100*p.HitRatio)
	}
}

// --- Section 7.3.2: QSM latency ----------------------------------------

// QSMReport measures suggestion latency over the study queries.
type QSMReport struct {
	Queries      int
	MeanMs       float64
	MaxMs        float64
	MeanRelaxMs  float64
	RelaxQueries int
}

// QSM measures Suggest latency over the misspelled variants of the study
// queries (the realistic QSM workload: zero-answer queries).
func QSM(ctx context.Context, env *Env) (*QSMReport, error) {
	rep := &QSMReport{}
	for _, q := range qald.UserStudyQuestions() {
		query, err := env.Operator.BuildQuery(q.Plan)
		if err != nil {
			continue
		}
		start := time.Now()
		if _, err := env.PUM.Suggest(ctx, query); err != nil {
			return nil, err
		}
		ms := float64(time.Since(start).Microseconds()) / 1000
		rep.Queries++
		rep.MeanMs += ms
		if ms > rep.MaxMs {
			rep.MaxMs = ms
		}
	}
	if rep.Queries > 0 {
		rep.MeanMs /= float64(rep.Queries)
	}
	// Relaxation-only latency on the Figure 6 query shape.
	relaxQ := sparql.MustParse(`SELECT ?book WHERE {
		?book <http://dbpedia.org/ontology/writer> "Jack Kerouac"@en .
		?book <http://dbpedia.org/ontology/publisher> "Viking Press"@en .
	}`)
	start := time.Now()
	if _, err := env.PUM.Suggest(ctx, relaxQ); err != nil {
		return nil, err
	}
	rep.MeanRelaxMs = float64(time.Since(start).Microseconds()) / 1000
	rep.RelaxQueries = 1
	return rep, nil
}

// PrintQSM renders the QSM latency report.
func PrintQSM(w io.Writer, r *QSMReport) {
	fmt.Fprintln(w, "QSM latency (Section 7.3.2; paper: ~10 s mean at DBpedia scale —")
	fmt.Fprintln(w, "our substrate is in-process, so absolute numbers are smaller; shape: QSM ≫ QCM):")
	fmt.Fprintf(w, "  queries measured:   %d\n", r.Queries)
	fmt.Fprintf(w, "  mean Suggest():     %.1f ms\n", r.MeanMs)
	fmt.Fprintf(w, "  max Suggest():      %.1f ms\n", r.MaxMs)
	fmt.Fprintf(w, "  relaxation (Fig 6): %.1f ms\n", r.MeanRelaxMs)
}

// --- Ablations ----------------------------------------------------------

// AblationRow scores one design alternative.
type AblationRow struct {
	Name  string
	Value float64
	// Extra carries a secondary metric (e.g. the fraction of tree edges
	// reusing query predicates in the Steiner ablation).
	Extra float64
	Note  string
}

// SimilarityAblation compares Jaro-Winkler against Levenshtein and
// Jaccard on the QSM's literal-repair task: the fraction of misspelled
// study literals whose correct form ranks first among alternatives.
func SimilarityAblation(env *Env) []AblationRow {
	type miss struct{ typed, want string }
	var cases []miss
	for _, q := range qald.UserStudyQuestions() {
		for _, tr := range q.Plan.Triples {
			if tr.O.IsLiteral && tr.O.Keyword != "" {
				cases = append(cases, miss{tr.O.Keyword + "s", tr.O.Keyword}) // plural typo
			}
		}
	}
	var out []AblationRow
	for _, name := range []string{"jarowinkler", "levenshtein", "jaccard"} {
		m := similarity.ByName(name)
		recovered := 0
		for _, c := range cases {
			lo := len([]rune(c.typed)) - 2
			hi := len([]rune(c.typed)) + 3
			matches := env.Cache.Bins.SearchSimilar(c.typed, lo, hi, 4, 0.7, m)
			// Tree-resident literals too, as the QSM does.
			bestLit, bestScore := "", -1.0
			for _, match := range matches {
				if match.Score > bestScore {
					bestScore, bestLit = match.Score, match.Literal
				}
			}
			for _, lex := range env.Cache.Literals() {
				if !env.Cache.InSuffixTree(lex) {
					continue
				}
				n := len([]rune(lex))
				if n < lo || n > hi {
					continue
				}
				if s := m(c.typed, lex); s >= 0.7 && s > bestScore {
					bestScore, bestLit = s, lex
				}
			}
			if bestLit == c.want {
				recovered++
			}
		}
		out = append(out, AblationRow{
			Name:  name,
			Value: 100 * float64(recovered) / float64(max(1, len(cases))),
			Note:  fmt.Sprintf("%d/%d misspelled literals repaired at rank 1", recovered, len(cases)),
		})
	}
	return out
}

// SteinerWeightAblation compares weighted (w_q < w_default) against
// unweighted expansion on the Figure 6 relaxation: queries used and
// whether the tree reuses the query's predicates.
func SteinerWeightAblation(ctx context.Context, env *Env) []AblationRow {
	groups := [][]rdf.Term{
		{rdf.NewLangLiteral("Jack Kerouac", "en")},
		{rdf.NewLangLiteral("Viking Press", "en")},
	}
	preferred := map[string]bool{
		rdf.NSDBO + "author":    true,
		rdf.NSDBO + "publisher": true,
	}
	mk := func(weighted bool) AblationRow {
		cfg := steiner.DefaultConfig()
		name := "weighted (w_q < w_default)"
		if !weighted {
			cfg.WQuery = cfg.WDefault
			name = "unweighted (w_q = w_default)"
		}
		res, err := steiner.Connect(ctx, steiner.StoreSource{Store: env.Dataset.Store},
			groups, preferred, cfg)
		if err != nil || !res.Connected {
			return AblationRow{Name: name, Value: 0, Note: "failed to connect"}
		}
		matched := 0
		for _, tr := range res.Tree {
			if preferred[tr.P.Value] {
				matched++
			}
		}
		frac := 0.0
		if len(res.Tree) > 0 {
			frac = float64(matched) / float64(len(res.Tree))
		}
		return AblationRow{
			Name:  name,
			Value: float64(res.QueriesUsed),
			Extra: frac,
			Note: fmt.Sprintf("expansion queries; %d/%d tree edges use query predicates",
				matched, len(res.Tree)),
		}
	}
	return []AblationRow{mk(true), mk(false)}
}

// PrintAblation renders ablation rows.
func PrintAblation(w io.Writer, title string, rows []AblationRow) {
	fmt.Fprintln(w, title)
	for _, r := range rows {
		fmt.Fprintf(w, "  %-28s %8.1f  (%s)\n", r.Name, r.Value, r.Note)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
