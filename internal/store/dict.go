package store

import (
	"hash/maphash"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"sapphire/internal/rdf"
)

// ID is a dense dictionary identifier for an interned rdf.Term. IDs are
// allocated from one global 32-bit space; the zero ID is reserved as the
// Wildcard sentinel so that ID-level pattern matching mirrors the
// zero-Term wildcard convention of the Term-level API. Since the
// dictionary was sharded, IDs are no longer strictly first-seen dense:
// each dictionary shard assigns from its own claimed range of the global
// space (see idRangeSize), so the live ID set can contain small holes —
// at most one partially used range per dictionary shard. Nothing in the
// store depends on density; iteration order everywhere is term order,
// never ID order.
//
// ID is an alias (not a defined type) so callers outside this package can
// use plain uint32 values without conversions — the sparql evaluator's
// IDGraph fast path relies on that.
type ID = uint32

// Wildcard is the ID-level wildcard: MatchIDs and CountIDs treat it the
// way Match treats a zero rdf.Term.
const Wildcard ID = 0

const (
	// chunkShift/chunkSize/chunkMask describe the ID→term spine geometry:
	// terms live in fixed-size chunks so the mapping can grow without ever
	// moving an element — concurrent interners on different dictionary
	// shards write into disjoint slots of stable chunks, and lock-free
	// readers index whatever spine snapshot they hold.
	chunkShift = 12
	chunkSize  = 1 << chunkShift
	chunkMask  = chunkSize - 1

	// idRangeSize is how many consecutive IDs a dictionary shard claims
	// from the global allocator at a time. Larger ranges mean fewer trips
	// to the shared counter but bigger potential holes in the ID space
	// (at most idRangeSize-1 unused slots per dictionary shard).
	idRangeSize = 256

	// DefaultDictShards is the term-dictionary shard count NewSharded
	// uses. Interning distinct terms contends only within a shard, so
	// this bounds dictionary lock contention for write-heavy loads; 16
	// covers typical core counts while keeping the per-store footprint
	// (16 small maps) negligible.
	DefaultDictShards = 16

	// maxDictShards caps the dictionary shard count (and keeps the
	// power-of-two mask cheap to compute).
	maxDictShards = 256
)

// termChunk is one fixed-size block of the ID→term mapping. Chunks are
// allocated zeroed and their slots written exactly once, under the owning
// dictionary shard's lock, before the ID becomes discoverable.
type termChunk [chunkSize]rdf.Term

// dict is the two-way term dictionary, partitioned by term hash into
// independent shards: interning or looking up a term locks only the one
// shard the term hashes to, so concurrent writers interning distinct
// terms (several BulkLoaders staging in parallel, online Adds across
// store shards) no longer serialize on a single dictionary mutex.
//
// The ID→term direction is global: shards allocate IDs in ranges from
// one shared counter and write the terms into a chunked spine published
// through an atomic pointer, so resolution never takes a lock (see
// termView). That lets evaluator callbacks running inside a MatchIDs
// read-lock resolve IDs without re-acquiring any mutex, and lets
// per-shard index maintenance compare terms without racing concurrent
// interning.
//
// Publication contract: a term's chunk slot is fully written, under its
// dictionary shard's lock, before the ID is stored in the shard's intern
// map — i.e. before any caller can learn the ID. Every path that hands
// an ID to a reader does so through some synchronizing edge (the dict
// shard's own mutex for Lookup, a store shard's mutex for IDs read out
// of an index), so by the time a reader resolves an ID, the spine
// coverage and the slot contents it needs are visible. Chunk slots are
// never rewritten, and spine growth copies only the chunk pointers
// (never element data), so no concurrent write can be lost to a grow.
type dict struct {
	shards []dictShard
	mask   uint32 // len(shards)-1; len is a power of two

	// next is the global ID allocator watermark: the lowest ID no shard
	// has claimed yet. Starts at 1; ID 0 backs Wildcard.
	next atomic.Uint32

	// terms counts assigned IDs — the watermark minus the holes of
	// claimed-but-unassigned ranges. The rank-build trigger compares
	// against this, not the watermark: on a default 16-shard dictionary
	// the watermark jumps to 4096 after a handful of interns, and
	// triggering on it would spawn futile rebuilds for small stores
	// forever (every build would relabel the same few terms and never
	// converge on the watermark).
	terms atomic.Uint32

	// spine is the published chunk-pointer table. Grown (copied) under
	// spineMu; readers load it atomically and index it without locks.
	spineMu sync.Mutex
	spine   atomic.Pointer[[]*termChunk]

	// ranks is the published per-ID order statistic (see rankTable):
	// rebuilt in the background when the labeled share of the ID space
	// halves, consumed lock-free by the cross-shard merge. rankMu
	// serializes builds; rankOrder is the previous build's term-sorted
	// ID list (builder-owned, guarded by rankMu); labeled counts it.
	rankMu        sync.Mutex
	ranks         atomic.Pointer[rankTable]
	ranksBuilding atomic.Bool
	labeled       atomic.Uint32
	rankOrder     []ID

	// base is the term-sorted ID list a snapshot restore installs
	// instead of populating the per-shard intern maps (see
	// dict.restore). Immutable once set, and set only before the store
	// is published, so it is read without locks. Empty for stores that
	// were never restored.
	base []ID

	// numericLits is set (and never cleared) the first time a literal
	// whose lexical form parses as a float is interned. The evaluator's
	// ORDER BY comparator ranks such literals numerically, which can
	// disagree with plain term order — so the rank-label top-k fast path
	// is only exact while this stays false. See Store.OrderLabels.
	numericLits atomic.Bool

	seed maphash.Seed
}

// dictShard is one hash partition of the intern direction. The padding
// keeps hot shard headers on separate cache lines.
type dictShard struct {
	mu  sync.RWMutex
	ids map[rdf.Term]ID
	// [next, end) is the shard's currently claimed, still unassigned
	// slice of the global ID space.
	next, end ID

	_ [64]byte
}

// clampDictShards rounds n to the nearest power of two in
// [1, maxDictShards] (values < 1 become DefaultDictShards).
func clampDictShards(n int) int {
	if n < 1 {
		n = DefaultDictShards
	}
	if n > maxDictShards {
		n = maxDictShards
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

func newDict(shards int) *dict {
	shards = clampDictShards(shards)
	d := &dict{
		shards: make([]dictShard, shards),
		mask:   uint32(shards - 1),
		seed:   maphash.MakeSeed(),
	}
	for i := range d.shards {
		d.shards[i].ids = make(map[rdf.Term]ID)
	}
	d.next.Store(1) // ID 0 is the Wildcard sentinel
	spine := []*termChunk{new(termChunk)}
	d.spine.Store(&spine)
	return d
}

// shardIndexFor routes a term to its dictionary shard by hashing the
// lexical value (plus the kind, so an IRI and a literal with the same
// spelling decorrelate).
func (d *dict) shardIndexFor(t rdf.Term) int {
	if d.mask == 0 {
		return 0
	}
	h := maphash.String(d.seed, t.Value) + uint64(t.Kind)
	return int(uint32(h) & d.mask)
}

func (d *dict) shardFor(t rdf.Term) *dictShard {
	return &d.shards[d.shardIndexFor(t)]
}

// intern returns the ID for t, assigning a fresh ID from the shard's
// claimed range on first sight. The hit path (predicates and types
// repeat on every triple) probes under the shard's read lock first, so
// interning already-known terms never serializes concurrent writers.
func (d *dict) intern(t rdf.Term) ID {
	ds := d.shardFor(t)
	ds.mu.RLock()
	id, ok := ds.ids[t]
	ds.mu.RUnlock()
	if ok {
		return id
	}
	ds.mu.Lock()
	id = d.internLocked(ds, t)
	ds.mu.Unlock()
	return id
}

// internTriple interns all three positions. The positions usually hash
// to different dictionary shards, so each is interned independently.
func (d *dict) internTriple(tr rdf.Triple) (si, pi, oi ID) {
	return d.intern(tr.S), d.intern(tr.P), d.intern(tr.O)
}

// internLocked assigns (or returns) t's ID. Caller must hold ds.mu. The
// term is written into its spine slot before the intern-map store that
// makes the ID discoverable — see the dict type comment for why that
// ordering makes lock-free resolution safe.
func (d *dict) internLocked(ds *dictShard, t rdf.Term) ID {
	if id, ok := ds.ids[t]; ok {
		return id
	}
	if id, ok := d.baseLookup(&t); ok {
		// A restored term seen for the first time since the restore:
		// memoize it so subsequent interns hit the shard map's read-lock
		// fast path. Already counted in terms at restore time.
		ds.ids[t] = id
		return id
	}
	if ds.next == ds.end {
		d.claimRange(ds)
	}
	id := ds.next
	ds.next++
	spine := *d.spine.Load()
	spine[id>>chunkShift][id&chunkMask] = t
	ds.ids[t] = id
	d.terms.Add(1)
	if !d.numericLits.Load() && isNumericLiteral(&t) {
		d.numericLits.Store(true)
	}
	return id
}

// isNumericLiteral reports whether t is a literal whose lexical value
// parses as a float — exactly the values the evaluator's ORDER BY
// comparator ranks numerically instead of by term order. The first-byte
// gate keeps ParseFloat off the intern hot path for ordinary strings
// ('i'/'I'/'n'/'N' are included because ParseFloat accepts "Inf",
// "infinity" and "NaN" spellings).
func isNumericLiteral(t *rdf.Term) bool {
	if t.Kind != rdf.KindLiteral || len(t.Value) == 0 {
		return false
	}
	switch c := t.Value[0]; {
	case c >= '0' && c <= '9', c == '+', c == '-', c == '.',
		c == 'i', c == 'I', c == 'n', c == 'N':
	default:
		return false
	}
	_, err := strconv.ParseFloat(t.Value, 64)
	return err == nil
}

// claimRange grabs the next idRangeSize IDs from the global allocator
// for ds and guarantees the spine covers them before any of them can be
// assigned. Caller must hold ds.mu; the global counter is atomic and the
// spine grow takes only spineMu, so two shards claiming concurrently
// never block each other beyond the short spine copy.
func (d *dict) claimRange(ds *dictShard) {
	end := d.next.Add(idRangeSize)
	d.ensureCovers(end - 1)
	ds.next, ds.end = end-idRangeSize, end
}

// ensureCovers grows the published spine until the chunk holding id
// exists. Only chunk pointers are copied; chunk contents stay in place,
// so writers mid-flight into existing chunks lose nothing.
func (d *dict) ensureCovers(id ID) {
	want := int(id>>chunkShift) + 1
	if len(*d.spine.Load()) >= want {
		return
	}
	d.spineMu.Lock()
	if cur := *d.spine.Load(); len(cur) < want {
		next := make([]*termChunk, want)
		copy(next, cur)
		for i := len(cur); i < want; i++ {
			next[i] = new(termChunk)
		}
		d.spine.Store(&next)
	}
	d.spineMu.Unlock()
}

// internAll interns ts[i] into ids[i] for every i, acquiring each
// dictionary shard's lock at most once per call instead of once per
// term — the batched path BulkLoader stages through. buckets is reusable
// scratch (position lists per dictionary shard); the possibly regrown
// scratch is returned for the caller to keep.
func (d *dict) internAll(ts []rdf.Term, ids []ID, buckets [][]int32) [][]int32 {
	if d.mask == 0 {
		ds := &d.shards[0]
		ds.mu.Lock()
		for i, t := range ts {
			ids[i] = d.internLocked(ds, t)
		}
		ds.mu.Unlock()
		return buckets
	}
	if cap(buckets) < len(d.shards) {
		buckets = make([][]int32, len(d.shards))
	} else {
		buckets = buckets[:len(d.shards)]
		for i := range buckets {
			buckets[i] = buckets[i][:0]
		}
	}
	for i, t := range ts {
		si := d.shardIndexFor(t)
		buckets[si] = append(buckets[si], int32(i))
	}
	for si := range buckets {
		if len(buckets[si]) == 0 {
			continue
		}
		ds := &d.shards[si]
		ds.mu.Lock()
		for _, i := range buckets[si] {
			ids[i] = d.internLocked(ds, ts[i])
		}
		ds.mu.Unlock()
	}
	return buckets
}

// lookup returns the ID for t without interning, locking only t's
// dictionary shard. Terms carried over by a snapshot restore that have
// not been re-interned since live only in the base list; the map miss
// falls through to the binary search.
func (d *dict) lookup(t rdf.Term) (ID, bool) {
	ds := d.shardFor(t)
	ds.mu.RLock()
	id, ok := ds.ids[t]
	ds.mu.RUnlock()
	if !ok {
		return d.baseLookup(&t)
	}
	return id, ok
}

// baseLookup binary-searches the restored term-sorted base for t,
// resolving candidate IDs through the spine. Lock-free: the base is
// immutable and every ID in it was published (spine slot written)
// before the store existed for callers. ~20 term compares on a restored
// million-term dictionary, and only for terms not yet re-interned —
// intern memoizes hits into the shard maps.
func (d *dict) baseLookup(t *rdf.Term) (ID, bool) {
	if len(d.base) == 0 {
		return 0, false
	}
	tv := d.view()
	i := sort.Search(len(d.base), func(i int) bool {
		return tv.atPtr(d.base[i]).CompareTo(t) >= 0
	})
	if i < len(d.base) {
		if id := d.base[i]; tv.atPtr(id).CompareTo(t) == 0 {
			return id, true
		}
	}
	return 0, false
}

// view returns the current lock-free ID→term mapping. Any ID published
// before the view was taken (through any synchronizing edge) resolves
// correctly against it; unpublished or out-of-range IDs resolve to the
// zero Term.
func (d *dict) view() termView {
	return termView{chunks: *d.spine.Load()}
}

// termAt resolves one ID against the current spine without locking. Safe
// to call concurrently with interning and from within Match/MatchIDs
// callbacks.
func (d *dict) termAt(id ID) rdf.Term {
	return d.view().at(id)
}

// termView is a point-in-time handle on the ID→term mapping: an
// immutable snapshot of the chunk-pointer spine. It replaces the flat
// []rdf.Term snapshot the pre-sharding dictionary published — chunked
// because concurrent interners must be able to write new terms without
// ever relocating slots a published view still points at.
type termView struct {
	chunks []*termChunk
}

// at resolves an ID. IDs beyond the view's coverage (never-published, or
// published after the view was taken without a synchronizing edge) and
// the Wildcard resolve to the zero Term.
func (v termView) at(id ID) rdf.Term {
	if ci := int(id >> chunkShift); ci < len(v.chunks) {
		return v.chunks[ci][id&chunkMask]
	}
	return rdf.Term{}
}

// zeroTerm backs atPtr's out-of-range result.
var zeroTerm rdf.Term

// atPtr resolves an ID to a pointer into its chunk slot, avoiding the
// 56-byte copy of at. Slots are written exactly once before their ID is
// published and never rewritten, so the pointee is immutable for any ID
// the caller legitimately holds. Callers must not write through it.
func (v termView) atPtr(id ID) *rdf.Term {
	if ci := int(id >> chunkShift); ci < len(v.chunks) {
		return &v.chunks[ci][id&chunkMask]
	}
	return &zeroTerm
}

// index is one permutation of a shard's triple indexes (SPO, POS, or
// OSP): a level-one key → entry map plus the level-one keys maintained
// in term order, so wildcard iteration never sorts. Level one keeps the
// map probe per key (a level-one insert memmoves the keys slice, and a
// parallel pointer slice would triple the bytes every online Add
// shifts); level two instead pairs its keys with a parallel inner-list
// pointer slice, because that is the level the cross-shard merge and
// the wildcard loops walk key-by-key.
//
// sortedInner additionally keeps the innermost ID lists term-sorted
// (the POS permutation sets it). That is what makes the cross-shard
// wildcard-subject fan-out a pure k-way merge: subjects are partitioned
// across shards, so per-shard subject lists for a (predicate, object)
// pair are disjoint sorted runs that merge deterministically in term
// order — no global arrival clock required. SPO and OSP leave their
// innermost lists in insertion order; their inner levels never span
// shards (the level that varies is the subject, which picks the shard).
type index struct {
	m           map[ID]*entry
	keys        []ID // level-one keys, term-sorted
	sortedInner bool
}

// entry is one level-one slot of an index: level-two key → level-three
// ID list (boxed, so the map and the key-parallel lists slice share one
// stable location), the level-two keys in term order with the parallel
// list pointers, and the total number of triples underneath (giving
// O(1) per-key cardinalities).
type entry struct {
	m     map[ID]*[]ID
	keys  []ID    // level-two keys, term-sorted
	lists []*[]ID // lists[i] backs keys[i]
	total int
}

// get returns the inner ID list for level-two key b (nil when absent).
func (e *entry) get(b ID) []ID {
	if l := e.m[b]; l != nil {
		return *l
	}
	return nil
}

func newIndex(sortedInner bool) index {
	return index{m: make(map[ID]*entry), sortedInner: sortedInner}
}

// add records the (a, b, c) path in the index. The caller guarantees the
// triple is new (the shard dedups via its present set), so c is appended
// (or, with sortedInner, insertion-sorted) unconditionally. Key slices
// and their parallel value slices are maintained sorted by term order
// with a binary-search insertion: Add is the cold path, Match the hot
// one. tv is a dictionary view covering every ID involved.
func (x *index) add(tv termView, a, b, c ID) {
	e := x.m[a]
	if e == nil {
		e = &entry{m: make(map[ID]*[]ID)}
		x.m[a] = e
		x.keys = insertSorted(tv, x.keys, a)
	}
	lst := e.m[b]
	if lst == nil {
		lst = new([]ID)
		e.m[b] = lst
		i := searchTerm(tv, e.keys, b)
		e.keys = insertAt(e.keys, i, b)
		e.lists = insertAt(e.lists, i, lst)
	}
	if x.sortedInner {
		*lst = insertSorted(tv, *lst, c)
	} else {
		*lst = append(*lst, c)
	}
	e.total++
}

// searchTerm returns the term-order insertion position for id in keys.
func searchTerm(tv termView, keys []ID, id ID) int {
	t := tv.atPtr(id)
	return sort.Search(len(keys), func(i int) bool {
		return tv.atPtr(keys[i]).CompareTo(t) >= 0
	})
}

// insertAt inserts v at position i, shifting the tail.
func insertAt[T any](s []T, i int, v T) []T {
	var zero T
	s = append(s, zero)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// insertSorted inserts id into keys keeping term order.
func insertSorted(tv termView, keys []ID, id ID) []ID {
	return insertAt(keys, searchTerm(tv, keys, id), id)
}
