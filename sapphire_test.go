package sapphire

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"

	"sapphire/internal/datagen"
	"sapphire/internal/endpoint"
)

func newClient(t testing.TB) *Client {
	t.Helper()
	d := datagen.Generate(datagen.SmallConfig())
	ep := endpoint.NewLocal("synthetic-dbpedia", d.Store, endpoint.Limits{})
	c := New(Defaults())
	if err := c.RegisterEndpoint(context.Background(), ep); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestClientLifecycle(t *testing.T) {
	c := New(Defaults())
	if got := c.Complete("x"); got != nil {
		t.Error("Complete before registration should return nil")
	}
	if _, err := c.Query(context.Background(), "SELECT ?s WHERE { ?s ?p ?o }"); err == nil {
		t.Error("Query before registration should fail")
	}
	if _, err := c.Suggest(context.Background(), "SELECT ?s WHERE { ?s ?p ?o }"); err == nil {
		t.Error("Suggest before registration should fail")
	}
}

func TestClientEndToEnd(t *testing.T) {
	c := newClient(t)
	if got := c.Endpoints(); len(got) != 1 || got[0] != "synthetic-dbpedia" {
		t.Errorf("Endpoints = %v", got)
	}
	if st := c.Stats(); st.PredicateCount == 0 || st.LiteralCount == 0 {
		t.Errorf("Stats = %+v", st)
	}
	comps := c.Complete("Kerouac")
	if len(comps) == 0 {
		t.Fatal("no completions")
	}
	res, err := c.Query(context.Background(),
		`SELECT ?b WHERE { ?b <http://dbpedia.org/ontology/author> ?a .
			?a <http://dbpedia.org/ontology/name> "Jack Kerouac"@en . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Errorf("Kerouac books = %d, want 3", len(res.Rows))
	}
}

func TestClientRunWithSuggestions(t *testing.T) {
	c := newClient(t)
	// Misspelled literal: zero answers, suggestions must repair it.
	res, sugs, err := c.Run(context.Background(),
		`SELECT ?p WHERE { ?p <http://dbpedia.org/ontology/name> "Ted Kennedys"@en . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Errorf("misspelled query returned %d rows", len(res.Rows))
	}
	if len(sugs) == 0 {
		t.Fatal("no suggestions for a zero-answer query")
	}
	found := false
	for _, s := range sugs {
		if s.Kind == AltLiteral && s.New == "Ted Kennedy" && s.Answers > 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("no Ted Kennedy literal fix among %d suggestions", len(sugs))
	}
}

func TestClientBadQuery(t *testing.T) {
	c := newClient(t)
	if _, err := c.Query(context.Background(), "not sparql"); err == nil {
		t.Error("bad query accepted")
	}
	if _, _, err := c.Run(context.Background(), "not sparql"); err == nil {
		t.Error("bad Run query accepted")
	}
}

func TestClientMultipleEndpointsMergedCache(t *testing.T) {
	d := datagen.Generate(datagen.SmallConfig())
	ep1 := endpoint.NewLocal("main", d.Store, endpoint.Limits{})
	// Second endpoint with a disjoint mini-dataset.
	nt := strings.NewReader(`<http://other.org/e1> <http://other.org/hasCuriosity> "A distinct curio"@en .
<http://other.org/e1> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://other.org/Curio> .
`)
	ep2, err := NewEndpointFromNTriples("other", nt, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	c := New(Defaults())
	ctx := context.Background()
	if err := c.RegisterEndpoint(ctx, ep1); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterEndpoint(ctx, ep2); err != nil {
		t.Fatal(err)
	}
	if len(c.Endpoints()) != 2 {
		t.Fatalf("endpoints = %v", c.Endpoints())
	}
	// Completions must span both endpoints' caches.
	if got := c.Complete("Kerouac"); len(got) == 0 {
		t.Error("first endpoint's literals lost after merge")
	}
	if got := c.Complete("distinct"); len(got) == 0 {
		t.Error("second endpoint's literals not merged")
	}
	// Federated query across both.
	res, err := c.Query(ctx, `SELECT ?o WHERE { <http://other.org/e1> <http://other.org/hasCuriosity> ?o . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Errorf("federated rows = %d", len(res.Rows))
	}
}

func TestClientOverHTTP(t *testing.T) {
	d := datagen.Generate(datagen.SmallConfig())
	srv := httptest.NewServer(endpoint.Handler(endpoint.NewLocal("remote", d.Store, endpoint.Limits{})))
	defer srv.Close()
	c := New(Defaults())
	if err := c.RegisterHTTP(context.Background(), srv.URL); err != nil {
		t.Fatal(err)
	}
	res, err := c.Query(context.Background(),
		`SELECT ?w WHERE { <http://dbpedia.org/resource/Tom_Hanks> <http://dbpedia.org/ontology/spouse> ?w . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Errorf("rows = %d", len(res.Rows))
	}
}

func TestNewMemoryEndpoint(t *testing.T) {
	triples, err := NewMemoryEndpoint("t", nil)
	if err != nil || triples == nil {
		t.Fatalf("empty endpoint: %v", err)
	}
	bad := []Triple{{}}
	if _, err := NewMemoryEndpoint("t", bad); err == nil {
		t.Error("invalid triple accepted")
	}
}

func TestCachePersistenceRoundTrip(t *testing.T) {
	d := datagen.Generate(datagen.SmallConfig())
	ep := endpoint.NewLocal("persisted", d.Store, endpoint.Limits{})
	c1 := New(Defaults())
	ctx := context.Background()
	if err := c1.RegisterEndpoint(ctx, ep); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := c1.SaveEndpointCache("persisted", &buf); err != nil {
		t.Fatal(err)
	}
	if err := c1.SaveEndpointCache("nonexistent", &strings.Builder{}); err == nil {
		t.Error("saving unknown endpoint succeeded")
	}

	// A fresh client loads the cache without crawling.
	ep2 := endpoint.NewLocal("persisted", d.Store, endpoint.Limits{})
	c2 := New(Defaults())
	if err := c2.RegisterEndpointWithCache(ep2, strings.NewReader(buf.String())); err != nil {
		t.Fatal(err)
	}
	if got := ep2.Stats().Queries; got != 0 {
		t.Errorf("cached registration issued %d queries, want 0", got)
	}
	// Identical completion behaviour.
	a := c1.Complete("Kerouac")
	b := c2.Complete("Kerouac")
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("completions differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Text != b[i].Text {
			t.Errorf("completion %d: %q vs %q", i, a[i].Text, b[i].Text)
		}
	}
	// Queries still work (the endpoint itself is live).
	res, err := c2.Query(ctx, `SELECT ?w WHERE { <http://dbpedia.org/resource/Tom_Hanks> <http://dbpedia.org/ontology/spouse> ?w . }`)
	if err != nil || len(res.Rows) != 1 {
		t.Errorf("query after cached registration: %v, %d rows", err, len(res.Rows))
	}
}
