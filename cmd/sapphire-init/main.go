// Command sapphire-init runs Sapphire's endpoint initialization (Section
// 5) against a SPARQL endpoint URL and reports what was cached:
//
//	sapphire-init -endpoint http://localhost:8890/sparql
//
// With -data it instead bulk-loads a local N-Triples dump into an
// in-process warehouse endpoint (staged bulk load, one index build for
// the whole dump) and initializes that with the warehouse queries:
//
//	sapphire-init -data dump.nt -save dump.cache
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"sapphire/internal/bootstrap"
	"sapphire/internal/endpoint"
)

func main() {
	var (
		url       = flag.String("endpoint", "", "SPARQL endpoint URL (this or -data required)")
		data      = flag.String("data", "", "local N-Triples file to bulk-load as a warehouse endpoint instead of querying a URL")
		lang      = flag.String("lang", "en", "literal language to cache")
		maxLen    = flag.Int("max-literal-length", 80, "literal length cap")
		pageSize  = flag.Int("page-size", 500, "LIMIT for paginated retrieval")
		budget    = flag.Int("query-budget", 0, "max queries to issue (0 = unlimited)")
		treeCap   = flag.Int("tree-capacity", 2000, "significant literals to index in the suffix tree")
		timeout   = flag.Duration("timeout", 10*time.Minute, "overall initialization deadline")
		warehouse = flag.Bool("warehouse", false, "use the warehousing-architecture queries Q9/Q10 (no timeout gymnastics)")
		saveTo    = flag.String("save", "", "write the cache to this file for later reuse")
	)
	flag.Parse()
	if *url == "" && *data == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *url != "" && *data != "" {
		log.Fatal("-endpoint and -data are mutually exclusive: initialize a URL or a local dump, not both")
	}
	cfg := bootstrap.Config{
		MaxLiteralLength:   *maxLen,
		Language:           *lang,
		PageSize:           *pageSize,
		QueryBudget:        *budget,
		SuffixTreeCapacity: *treeCap,
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	var ep endpoint.Endpoint
	initFn := bootstrap.Initialize
	if *warehouse {
		initFn = bootstrap.InitializeWarehouse
	}
	if *data != "" {
		f, err := os.Open(*data)
		if err != nil {
			log.Fatalf("open data: %v", err)
		}
		loadStart := time.Now()
		local, err := bootstrap.NewWarehouseFromNTriples(*data, f)
		f.Close()
		if err != nil {
			log.Fatalf("bulk load failed: %v", err)
		}
		log.Printf("bulk-loaded %d triples in %v", local.Store().Len(),
			time.Since(loadStart).Round(time.Millisecond))
		// A local warehouse has no timeouts to dodge; use the
		// straight-line warehouse queries Q9/Q10.
		ep = local
		initFn = bootstrap.InitializeWarehouse
	} else {
		ep = endpoint.NewClient(*url)
	}
	log.Printf("initializing %s ...", ep.Name())
	cache, err := initFn(ctx, ep, cfg)
	if err != nil {
		log.Fatalf("initialization failed: %v", err)
	}
	if *saveTo != "" {
		f, err := os.Create(*saveTo)
		if err != nil {
			log.Fatalf("save: %v", err)
		}
		if err := cache.Save(f); err != nil {
			log.Fatalf("save: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("save: %v", err)
		}
		log.Printf("cache written to %s", *saveTo)
	}
	s := cache.Stats
	fmt.Printf("endpoint:            %s\n", cache.Endpoint)
	fmt.Printf("queries issued:      %d (literal %d, significance %d)\n",
		s.QueriesIssued, s.LiteralQueries, s.SignificanceQueries)
	fmt.Printf("timeouts survived:   %d\n", s.Timeouts)
	fmt.Printf("predicates cached:   %d\n", s.PredicateCount)
	fmt.Printf("literals cached:     %d (significant %d, residual %d in %d bins)\n",
		s.LiteralCount, s.SignificantCount, s.ResidualCount, s.BinCount)
	fmt.Printf("suffix tree:         %d nodes, ~%d KiB\n", s.TreeNodes, s.TreeBytes/1024)
	fmt.Printf("used RDFS hierarchy: %v\n", s.UsedHierarchy)
	fmt.Printf("budget exhausted:    %v\n", s.BudgetExhausted)
	fmt.Printf("duration:            %v\n", s.Duration.Round(time.Millisecond))
}
