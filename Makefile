# Sapphire build/test/bench entry points.
#
#   make test           - vet gate + full test suite
#   make race           - race-detector pass over the concurrency-sensitive packages
#   make fuzz           - short parser fuzz smoke (same job CI runs)
#   make fmt            - fail if any file is not gofmt-clean (same check CI runs)
#   make bench          - full benchmark sweep (3 runs, alloc stats) saved to
#                         BENCH_<yyyy-mm-dd>.txt for before/after comparisons
#   make bench-endpoint - cached-vs-uncached endpoint serving benchmarks saved
#                         to BENCH_ENDPOINT_<yyyy-mm-dd>.txt
#   make bench-ci       - pinned short benchmark config (the headline store /
#                         eval / endpoint benchmarks, 4 repeats) parsed into
#                         BENCH_pr.json — what the CI bench job runs
#   make bench-parallel - BenchmarkEvalParallel family at -cpu=1,8: the
#                         morsel-parallel evaluator against serial on the same
#                         query shapes (the -cpu=8 rows are the speedup claim;
#                         on a 1-core box they only measure coordination
#                         overhead), saved to BENCH_PARALLEL_<yyyy-mm-dd>.txt
#   make bench-gate     - compare BENCH_pr.json against bench_baseline.json,
#                         failing on >30% ns/op regression of any headline
#                         benchmark (sapphire-benchgate)
#   make bench-baseline - regenerate bench_baseline.json from a fresh pinned
#                         run (do this when the reference hardware changes)
#   make bench-serving  - full serving-load scenario (sapphire-loadgen,
#                         in-process world, default dataset): per-phase
#                         p50/p99/p999 + throughput, informational
#   make bench-serving-ci       - smoke scenario into BENCH_serving.json —
#                                 what the CI bench job runs
#   make bench-serving-gate     - SLO gate: BENCH_serving.json against
#                                 bench_serving_baseline.json (sapphire-benchgate
#                                 -slo; latency rows fail on increase, throughput
#                                 rows on decrease)
#   make bench-serving-baseline - regenerate bench_serving_baseline.json from a
#                                 fresh smoke run
#   make crashtest      - long crash-recovery fault-injection sweep (512 random
#                         offsets per fault mode on top of the strided sweep;
#                         CI runs a 64-seed smoke setting)
#   make vet            - stock go vet only
#   make lint           - sapphire-vet: stock go vet plus the repo's own
#                         contract analyzers (pinlock, atomicfield, errcode,
#                         pinnedbudget, unchecked — see docs/STATIC_ANALYSIS.md)

GO ?= go
BENCH_OUT := BENCH_$(shell date +%Y-%m-%d).txt
BENCH_ENDPOINT_OUT := BENCH_ENDPOINT_$(shell date +%Y-%m-%d).txt
BENCH_PARALLEL_OUT := BENCH_PARALLEL_$(shell date +%Y-%m-%d).txt

# The pinned CI benchmark config: headline benchmarks only, fixed
# benchtime and repeat count, fixed 1-CPU setting so runner core counts
# don't change what the numbers mean. BenchmarkMatchByPredicate and
# BenchmarkMatchSubjectsMerge expand to their single/sharded8
# sub-benchmarks (the sharded8 rows gate the cross-shard wildcard-merge
# regression surface); BenchmarkDictInternParallel expands to its
# dict1/dict2/dict8 shard counts. The persist rows gate the durability
# path: snapshot encode, WAL append under each fsync policy, and the
# snapshot-vs-reingest recovery ratio (BenchmarkRecovery1M). The
# streaming-evaluator rows gate the rank-label top-k ORDER BY
# (EvalOrderByLimit), in-pipeline FILTER early exit
# (EvalFilterPushdown), and greedy join ordering (EvalJoinOrder) against
# their materializing/naive counterpart sub-benchmarks. The
# EvalParallel rows run at the pinned -cpu=1, so they gate serial-path
# and coordination-overhead regressions of the morsel-parallel
# evaluator; the multicore speedup itself is measured by
# bench-parallel's -cpu=8 rows, which stay informational until the
# reference box grows cores.
BENCH_CI_PATTERN := ^(BenchmarkMatchByPredicate|BenchmarkMatchSubjectsMerge|BenchmarkDictInternParallel|BenchmarkEvalTwoHopJoin|BenchmarkEvalOrderByLimit|BenchmarkEvalFilterPushdown|BenchmarkEvalJoinOrder|BenchmarkEvalParallel|BenchmarkCachedQuery|BenchmarkBulkLoad|BenchmarkSnapshotSave|BenchmarkWALAppend|BenchmarkRecovery1M|BenchmarkDurableAdd)$$
BENCH_CI_PKGS := ./internal/store/ ./internal/sparql/ ./internal/endpoint/ ./internal/store/persist/
BENCH_CI_FLAGS := -run '^$$' -bench '$(BENCH_CI_PATTERN)' -benchtime=200ms -count=4 -cpu=1 -timeout=20m

# The serving-SLO threshold is looser than the ns/op gate: one-shot
# percentile measurements over a few hundred ops carry more run-to-run
# noise than best-of-4 microbenchmarks, and the gate only needs to catch
# step-change regressions (a 2x p99 is +100%, well past 75%).
SERVING_SLO_THRESHOLD := 0.75
# Latency rows also need an absolute regression beyond this many ns to
# fail: sub-millisecond phases (federation answers memoized from the
# pattern cache; qald's 50-op p99 is effectively a sample max) would
# otherwise trip the gate on hundreds-of-µs noise. Millisecond-scale
# step changes (a doubled p99) clear this floor comfortably.
SERVING_SLO_SLACK_NS := 500000

.PHONY: all test vet lint fmt race fuzz crashtest bench bench-endpoint bench-ci bench-gate bench-baseline build bench-serving bench-serving-ci bench-serving-gate bench-serving-baseline

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

lint:
	$(GO) run ./cmd/sapphire-vet ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

test: vet
	$(GO) test ./...

race:
	$(GO) test -race ./internal/store/ ./internal/store/persist/ ./internal/sparql/ ./internal/endpoint/ ./internal/federation/

fuzz:
	$(GO) test ./internal/sparql/ -run '^$$' -fuzz 'FuzzParse' -fuzztime=30s

crashtest:
	SAPPHIRE_CRASH_SEEDS=512 $(GO) test ./internal/store/persist/ -run 'TestCrashRecoveryProperty' -v -timeout=30m

bench:
	$(GO) test -run '^$$' -bench=. -benchmem -count=3 ./... | tee $(BENCH_OUT)

bench-endpoint:
	$(GO) test -run '^$$' -bench 'Query|Churn' -benchmem -count=3 ./internal/endpoint/ | tee $(BENCH_ENDPOINT_OUT)

bench-parallel:
	$(GO) test -run '^$$' -bench '^BenchmarkEvalParallel$$' -benchmem -count=3 -cpu=1,8 -timeout=30m ./internal/sparql/ | tee $(BENCH_PARALLEL_OUT)

bench-ci:
	$(GO) test $(BENCH_CI_FLAGS) $(BENCH_CI_PKGS) | tee BENCH_pr.txt
	$(GO) run ./cmd/sapphire-benchgate -parse BENCH_pr.txt -out BENCH_pr.json

bench-gate:
	$(GO) run ./cmd/sapphire-benchgate -baseline bench_baseline.json -current BENCH_pr.json -threshold 0.30

bench-baseline:
	$(GO) test $(BENCH_CI_FLAGS) $(BENCH_CI_PKGS) | tee BENCH_baseline.txt
	$(GO) run ./cmd/sapphire-benchgate -parse BENCH_baseline.txt -out bench_baseline.json

bench-serving:
	$(GO) run ./cmd/sapphire-loadgen -scenario serving -out BENCH_serving_full.json

bench-serving-ci:
	$(GO) run ./cmd/sapphire-loadgen -scenario smoke -repeat 3 -out BENCH_serving.json

bench-serving-gate:
	$(GO) run ./cmd/sapphire-benchgate -slo -baseline bench_serving_baseline.json -current BENCH_serving.json -threshold $(SERVING_SLO_THRESHOLD) -slack-ns $(SERVING_SLO_SLACK_NS)

bench-serving-baseline:
	$(GO) run ./cmd/sapphire-loadgen -scenario smoke -repeat 3 -out bench_serving_baseline.json
