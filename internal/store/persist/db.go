package persist

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"strings"
	"sync"
	"time"

	"sapphire/internal/rdf"
	"sapphire/internal/store"
)

// Generations. Durable state advances in numbered generations: taking
// snapshot g writes snap-g, opens wal-g, and publishes manifest-g via
// tmp-file + fsync + atomic rename — the manifest rename is the commit
// point of the whole snapshot. Recovery walks manifests newest-first,
// restores the first generation whose snapshot validates (older
// generations are the fallback when the newest is corrupt), then
// replays every WAL from that generation forward, truncating torn
// tails. The generation number is parsed from the manifest *filename*,
// never its contents: filenames travel through rename calls as strings
// and cannot be bit-flipped by a torn write the way file bytes can.

const (
	snapSuffix     = ".snap"
	walSuffix      = ".wal"
	manifestPrefix = "manifest-"
	manifestSuffix = ".json"
	tmpSuffix      = ".tmp"
)

func snapName(gen uint64) string { return fmt.Sprintf("snap-%016x%s", gen, snapSuffix) }
func walName(gen uint64) string  { return fmt.Sprintf("wal-%016x%s", gen, walSuffix) }
func manifestName(gen uint64) string {
	return fmt.Sprintf("%s%016x%s", manifestPrefix, gen, manifestSuffix)
}

// parseGen extracts the generation from a filename of the form
// prefix-%016x+suffix.
func parseGen(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	hex := name[len(prefix) : len(name)-len(suffix)]
	if len(hex) != 16 {
		return 0, false
	}
	var gen uint64
	for i := 0; i < 16; i++ {
		c := hex[i]
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		default:
			return 0, false
		}
		gen = gen<<4 | d
	}
	return gen, true
}

// manifest is the generation commit record. It is advisory metadata for
// picking and validating a snapshot; all load-bearing integrity lives
// in the snapshot's own section checksums.
type manifest struct {
	Version   int    `json:"version"`
	Snapshot  string `json:"snapshot"`
	Bytes     int64  `json:"bytes"`
	CRC32C    uint32 `json:"crc32c"`
	Epoch     uint64 `json:"epoch"`
	Triples   uint64 `json:"triples"`
	CreatedAt string `json:"createdAt"`
}

// FsyncPolicy selects when WAL appends reach the platter.
type FsyncPolicy int

const (
	// FsyncAlways syncs after every logged mutation: no committed
	// mutation is ever lost, at the price of a disk round-trip per Add.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval syncs on a timer (Options.FsyncInterval): a crash
	// loses at most the last interval's mutations.
	FsyncInterval
	// FsyncOff never syncs explicitly: fastest, loses whatever the OS
	// hadn't flushed. Snapshots still sync regardless of policy.
	FsyncOff
)

func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncOff:
		return "off"
	}
	return fmt.Sprintf("FsyncPolicy(%d)", int(p))
}

// ParseFsyncPolicy parses the -fsync flag values.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "off":
		return FsyncOff, nil
	}
	return 0, fmt.Errorf("persist: unknown fsync policy %q (want always, interval, or off)", s)
}

// Options configures a DB.
type Options struct {
	// FS overrides the filesystem (tests inject MemFS/FaultFS here).
	// Nil uses the real directory passed to Open.
	FS FS
	// Fsync is the WAL sync policy. Default FsyncAlways.
	Fsync FsyncPolicy
	// FsyncInterval is the FsyncInterval timer period. Default 100ms.
	FsyncInterval time.Duration
	// SnapshotEvery triggers an automatic snapshot once this many
	// triples have been logged to the current WAL. 0 disables automatic
	// snapshots (explicit Snapshot calls still work).
	SnapshotEvery int
	// Shards / DictShards configure a store built by recovery.
	// Zero values take the store package defaults.
	Shards     int
	DictShards int
	// KeepGenerations is how many trailing generations survive snapshot
	// cleanup. Minimum (and default) 2: the newest plus one fallback.
	KeepGenerations int
}

// RecoveryInfo reports what Open reconstructed.
type RecoveryInfo struct {
	// Generation is the restored snapshot generation; Snapshot is its
	// stamp. Both are zero when no valid snapshot existed.
	Generation uint64
	Snapshot   store.SnapshotInfo
	// Fallback reports that a newer manifest existed but its snapshot
	// failed validation, so an older generation was restored.
	Fallback bool
	// WALRecords / WALTriples count replayed WAL state.
	WALRecords int
	WALTriples int
	// TruncatedWALs is how many WAL files had torn or uncommitted
	// tails dropped.
	TruncatedWALs int
	// Triples / Epoch describe the recovered store.
	Triples int
	Epoch   uint64
}

// DB is a triple store with durable state under a directory. All
// mutations go through the WAL before touching the store; Snapshot
// compacts the WAL into a new checkpoint generation.
type DB struct {
	fs   FS
	opts Options

	mu    sync.Mutex
	store *store.Store
	wal   *wal
	gen   uint64
	// walTriples counts triples logged to the current WAL, driving
	// SnapshotEvery.
	walTriples int
	closed     bool

	stopSync chan struct{}
	syncDone chan struct{}
}

// Open recovers (or initializes) durable state in dir and returns a
// ready DB. Recovery never panics on corrupt files: the newest valid
// generation wins, WAL tails beyond the last intact record are
// truncated, and a completely empty or hopeless directory yields an
// empty store.
func Open(dir string, opts Options) (*DB, RecoveryInfo, error) {
	if opts.FsyncInterval <= 0 {
		opts.FsyncInterval = 100 * time.Millisecond
	}
	if opts.KeepGenerations < 2 {
		opts.KeepGenerations = 2
	}
	fs := opts.FS
	if fs == nil {
		var err error
		if fs, err = NewOSFS(dir); err != nil {
			return nil, RecoveryInfo{}, err
		}
	}
	db := &DB{fs: fs, opts: opts}
	info, err := db.recover()
	if err != nil {
		return nil, info, err
	}
	if opts.Fsync == FsyncInterval {
		db.stopSync = make(chan struct{})
		db.syncDone = make(chan struct{})
		go db.syncLoop()
	}
	return db, info, nil
}

func (db *DB) recover() (RecoveryInfo, error) {
	var info RecoveryInfo
	names, err := db.fs.List()
	if err != nil {
		return info, fmt.Errorf("persist: listing data dir: %w", err)
	}

	var manifestGens, walGens []uint64
	for _, name := range names {
		if strings.HasSuffix(name, tmpSuffix) {
			db.fs.Remove(name) //nolint:errcheck — hygiene only
			continue
		}
		if g, ok := parseGen(name, manifestPrefix, manifestSuffix); ok {
			manifestGens = append(manifestGens, g)
		}
		if g, ok := parseGen(name, "wal-", walSuffix); ok {
			walGens = append(walGens, g)
		}
	}

	// Newest-first: the first generation whose snapshot validates wins.
	var (
		baseGen  uint64
		haveBase bool
	)
	for i := len(manifestGens) - 1; i >= 0; i-- {
		g := manifestGens[i]
		snap, sinfo, err := db.loadGeneration(g)
		if err != nil {
			info.Fallback = true
			continue
		}
		db.store = snap
		info.Generation = g
		info.Snapshot = sinfo
		baseGen, haveBase = g, true
		break
	}
	if db.store == nil {
		shards := db.opts.Shards
		if shards <= 0 {
			shards = store.DefaultShards()
		}
		db.store = store.NewShardedDict(shards, db.opts.DictShards)
		info.Fallback = info.Fallback || len(manifestGens) > 0
	}

	// Replay every WAL from the restored generation forward, oldest
	// first. WALs beyond a crashed snapshot attempt hold no records and
	// replay as no-ops.
	maxGen := baseGen
	if n := len(manifestGens); n > 0 && manifestGens[n-1] > maxGen {
		maxGen = manifestGens[n-1]
	}
	var lastWAL uint64
	haveWAL := false
	for _, g := range walGens {
		if haveBase && g < baseGen {
			continue
		}
		rep, err := replayWAL(db.fs, walName(g), db.store)
		if err != nil {
			return info, err
		}
		info.WALRecords += rep.records
		info.WALTriples += rep.triples
		if rep.truncated {
			info.TruncatedWALs++
			if err := db.fs.Truncate(walName(g), rep.goodBytes); err != nil {
				return info, fmt.Errorf("persist: truncating torn WAL tail: %w", err)
			}
		}
		if g > maxGen {
			maxGen = g
		}
		if !haveWAL || g > lastWAL {
			lastWAL, haveWAL = g, true
		}
	}

	// Resume appending to the newest WAL (recreating it when absent or
	// reduced to nothing by magic corruption).
	db.gen = maxGen
	cur := walName(db.gen)
	switch {
	case haveWAL && lastWAL == db.gen:
		data, err := readAll(db.fs, cur)
		if err != nil {
			return info, err
		}
		if len(data) >= len(walMagic) && string(data[:len(walMagic)]) == walMagic {
			db.wal, err = openWALAppend(db.fs, cur, int64(len(data)))
		} else {
			db.wal, err = createWAL(db.fs, cur)
		}
		if err != nil {
			return info, err
		}
		db.wal.buffered = db.opts.Fsync != FsyncAlways
	default:
		var err error
		if db.wal, err = createWAL(db.fs, cur); err != nil {
			return info, err
		}
		db.wal.buffered = db.opts.Fsync != FsyncAlways
		if err := db.wal.sync(); err != nil {
			return info, err
		}
		if err := db.fs.SyncDir(); err != nil {
			return info, err
		}
	}

	info.Triples = db.store.Len()
	info.Epoch = db.store.Epoch()
	return info, nil
}

// loadGeneration validates and restores one snapshot generation.
func (db *DB) loadGeneration(gen uint64) (*store.Store, store.SnapshotInfo, error) {
	var sinfo store.SnapshotInfo
	mdata, err := readAll(db.fs, manifestName(gen))
	if err != nil {
		return nil, sinfo, err
	}
	var m manifest
	if err := json.Unmarshal(mdata, &m); err != nil {
		return nil, sinfo, fmt.Errorf("persist: manifest %d: %w", gen, err)
	}
	sdata, err := readAll(db.fs, snapName(gen))
	if err != nil {
		return nil, sinfo, err
	}
	if int64(len(sdata)) != m.Bytes || crc32.Checksum(sdata, castagnoli) != m.CRC32C {
		return nil, sinfo, fmt.Errorf("persist: snapshot %d fails manifest checksum", gen)
	}
	s, sinfo, err := store.RestoreSnapshotBytes(sdata, db.opts.Shards, db.opts.DictShards)
	if err != nil {
		return nil, sinfo, err
	}
	return s, sinfo, nil
}

// Store exposes the underlying triple store for reads. Mutations must
// go through the DB or they will not survive a restart.
func (db *DB) Store() *store.Store {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.store
}

// Add durably logs one triple, then applies it. The triple is in the
// WAL before the store ever sees it.
func (db *DB) Add(tr rdf.Triple) (bool, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return false, fmt.Errorf("persist: DB is closed")
	}
	if !tr.Valid() {
		return false, fmt.Errorf("persist: invalid triple")
	}
	if err := db.wal.appendAdd(tr); err != nil {
		return false, err
	}
	if db.opts.Fsync == FsyncAlways {
		if err := db.wal.sync(); err != nil {
			return false, err
		}
	}
	added, err := db.store.Add(tr)
	if err != nil {
		return added, err
	}
	db.walTriples++
	return added, db.maybeSnapshotLocked()
}

// AddAll durably logs a batch (chunked records plus a commit marker),
// then applies it through the bulk loader. On replay the batch is
// all-or-nothing: without its commit marker on disk, none of it
// survives.
func (db *DB) AddAll(triples []rdf.Triple) error {
	if len(triples) == 0 {
		return nil
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return fmt.Errorf("persist: DB is closed")
	}
	for _, tr := range triples {
		if !tr.Valid() {
			return fmt.Errorf("persist: invalid triple in batch")
		}
	}
	if err := db.wal.appendBatch(triples); err != nil {
		return err
	}
	if db.opts.Fsync == FsyncAlways {
		if err := db.wal.sync(); err != nil {
			return err
		}
	}
	bl := store.NewBulkLoader(db.store)
	bl.SetAutoCommitThreshold(0)
	if err := bl.AddAll(triples); err != nil {
		return err
	}
	bl.Commit()
	db.walTriples += len(triples)
	return db.maybeSnapshotLocked()
}

// Ingest runs fn against the store without WAL logging, then takes a
// snapshot so the result is durable anyway. It exists for initial bulk
// loads (N-Triples ingest, synthetic datagen) where logging every
// triple would double the write volume for data that is about to be
// checkpointed wholesale.
func (db *DB) Ingest(fn func(*store.Store) error) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return fmt.Errorf("persist: DB is closed")
	}
	if err := fn(db.store); err != nil {
		return err
	}
	_, err := db.snapshotLocked()
	return err
}

func (db *DB) maybeSnapshotLocked() error {
	if db.opts.SnapshotEvery <= 0 || db.walTriples < db.opts.SnapshotEvery {
		return nil
	}
	_, err := db.snapshotLocked()
	return err
}

// Snapshot checkpoints the current store state into a new generation
// and rotates the WAL.
func (db *DB) Snapshot() (store.SnapshotInfo, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return store.SnapshotInfo{}, fmt.Errorf("persist: DB is closed")
	}
	return db.snapshotLocked()
}

func (db *DB) snapshotLocked() (store.SnapshotInfo, error) {
	var sinfo store.SnapshotInfo
	gen := db.gen + 1

	// 1. Snapshot file: encode, write, sync.
	f, err := db.fs.Create(snapName(gen))
	if err != nil {
		return sinfo, fmt.Errorf("persist: creating snapshot: %w", err)
	}
	var buf bytes.Buffer
	if sinfo, err = db.store.WriteSnapshot(&buf); err != nil {
		_ = f.Close() // error path: the write/sync failure is the one to report
		return sinfo, err
	}
	sdata := buf.Bytes()
	if _, err := f.Write(sdata); err != nil {
		_ = f.Close()
		return sinfo, fmt.Errorf("persist: writing snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return sinfo, fmt.Errorf("persist: syncing snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return sinfo, err
	}

	// 2. Fresh WAL for the new generation, durable before the manifest
	// commits to it.
	nw, err := createWAL(db.fs, walName(gen))
	if err != nil {
		return sinfo, err
	}
	nw.buffered = db.opts.Fsync != FsyncAlways
	if err := nw.sync(); err != nil {
		_ = nw.close() // error path: the sync failure is the one to report
		return sinfo, err
	}

	// 3. Manifest via tmp + fsync + atomic rename: the commit point.
	m := manifest{
		Version:   1,
		Snapshot:  snapName(gen),
		Bytes:     int64(len(sdata)),
		CRC32C:    crc32.Checksum(sdata, castagnoli),
		Epoch:     db.store.Epoch(),
		Triples:   uint64(db.store.Len()),
		CreatedAt: time.Now().UTC().Format(time.RFC3339),
	}
	mdata, err := json.Marshal(m)
	if err != nil {
		_ = nw.close() // error path: the marshal failure is the one to report
		return sinfo, err
	}
	tmp := manifestName(gen) + tmpSuffix
	mf, err := db.fs.Create(tmp)
	if err != nil {
		_ = nw.close()
		return sinfo, err
	}
	if _, err := mf.Write(mdata); err != nil {
		_ = mf.Close()
		_ = nw.close()
		return sinfo, fmt.Errorf("persist: writing manifest: %w", err)
	}
	if err := mf.Sync(); err != nil {
		_ = mf.Close()
		_ = nw.close()
		return sinfo, err
	}
	if err := mf.Close(); err != nil {
		_ = nw.close()
		return sinfo, err
	}
	if err := db.fs.Rename(tmp, manifestName(gen)); err != nil {
		_ = nw.close()
		return sinfo, err
	}
	if err := db.fs.SyncDir(); err != nil {
		_ = nw.close()
		return sinfo, err
	}

	// 4. Committed: swap in the new WAL and retire old generations. The
	// old WAL's contents are captured by the snapshot, so a failing
	// close of the superseded handle cannot lose data.
	_ = db.wal.close()
	db.wal = nw
	db.gen = gen
	db.walTriples = 0
	db.cleanupLocked()
	return sinfo, nil
}

// cleanupLocked removes generations older than KeepGenerations, plus
// snapshot files orphaned by crashed snapshot attempts. Best-effort:
// cleanup failures never fail the snapshot that triggered them.
func (db *DB) cleanupLocked() {
	names, err := db.fs.List()
	if err != nil {
		return
	}
	var cutoff uint64
	if db.gen >= uint64(db.opts.KeepGenerations) {
		cutoff = db.gen - uint64(db.opts.KeepGenerations) + 1
	}
	for _, name := range names {
		if g, ok := parseGen(name, "snap-", snapSuffix); ok && g < cutoff {
			db.fs.Remove(name) //nolint:errcheck
		}
		if g, ok := parseGen(name, "wal-", walSuffix); ok && g < cutoff {
			db.fs.Remove(name) //nolint:errcheck
		}
		if g, ok := parseGen(name, manifestPrefix, manifestSuffix); ok && g < cutoff {
			db.fs.Remove(name) //nolint:errcheck
		}
	}
}

// syncLoop flushes the WAL on a timer under FsyncInterval.
func (db *DB) syncLoop() {
	defer close(db.syncDone)
	t := time.NewTicker(db.opts.FsyncInterval)
	defer t.Stop()
	for {
		select {
		case <-db.stopSync:
			return
		case <-t.C:
			db.mu.Lock()
			if !db.closed && db.wal != nil {
				// Background flush: a failure here is surfaced by the
				// next Append's sync rather than crashing the loop.
				_ = db.wal.sync()
			}
			db.mu.Unlock()
		}
	}
}

// Close flushes and closes the WAL. It does not snapshot; callers
// wanting a checkpoint on shutdown call Snapshot first (the binaries
// do, on SIGTERM).
func (db *DB) Close() error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil
	}
	db.closed = true
	db.mu.Unlock()
	if db.stopSync != nil {
		close(db.stopSync)
		<-db.syncDone
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	var err error
	if db.wal != nil {
		if serr := db.wal.sync(); serr != nil {
			err = serr
		}
		if cerr := db.wal.close(); cerr != nil && err == nil {
			err = cerr
		}
		db.wal = nil
	}
	return err
}

// Generation reports the current snapshot generation.
func (db *DB) Generation() uint64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.gen
}

// WALSize reports the current WAL's byte length.
func (db *DB) WALSize() int64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.wal == nil {
		return 0
	}
	return db.wal.size
}
