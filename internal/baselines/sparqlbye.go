package baselines

import (
	"context"
	"strings"

	"sapphire/internal/qald"
	"sapphire/internal/rdf"
	"sapphire/internal/store"
)

// SPARQLByE reverse-engineers a query from example answers: the user
// supplies a couple of correct answers, the system finds the property
// constraints they share, and a feedback loop refines the induced query.
// It can only be used when the user already knows several answers —
// entity answers, since shared properties of a literal mean nothing —
// which is why it processes so few questions in Table 1.
type SPARQLByE struct {
	Store *store.Store
	// MinGold is the minimum number of known answers needed to spare
	// two as examples and one for feedback (paper: three or more).
	MinGold int
	// Rounds bounds the feedback refinements.
	Rounds int
}

// NewSPARQLByE returns the baseline.
func NewSPARQLByE(st *store.Store) *SPARQLByE {
	return &SPARQLByE{Store: st, MinGold: 3, Rounds: 2}
}

// Name implements qald.System.
func (s *SPARQLByE) Name() string { return "SPARQLByE" }

// constraint is one induced (predicate, object) requirement.
type constraint struct {
	p, o rdf.Term
}

// Answer implements qald.System. The examples come from the question's
// gold answers, exactly as the paper evaluated the system ("we present
// two answers from the gold standard result as inputs").
func (s *SPARQLByE) Answer(_ context.Context, q qald.Question) (qald.AnswerSet, bool) {
	gold, err := qald.GoldAnswers(s.Store, q)
	if err != nil || len(gold) < s.MinGold {
		return nil, false
	}
	vals := gold.Values()
	var entities []rdf.Term
	for _, v := range vals {
		if strings.HasPrefix(v, "http://") || strings.HasPrefix(v, "https://") {
			entities = append(entities, rdf.NewIRI(v))
		}
	}
	if len(entities) < s.MinGold {
		return nil, false // literal answers carry no shared structure
	}
	ex1, ex2 := entities[0], entities[1]
	feedback := entities[2]

	cons := s.sharedConstraints(ex1, ex2)
	if len(cons) == 0 {
		return nil, false
	}
	answers := s.query(cons)
	for round := 0; round < s.Rounds; round++ {
		if answers[feedback.Value] {
			break
		}
		// The user marks a known answer that the induced query misses;
		// the system drops the constraints that answer violates.
		var kept []constraint
		for _, c := range cons {
			if s.Store.Contains(rdf.Triple{S: feedback, P: c.p, O: c.o}) {
				kept = append(kept, c)
			}
		}
		if len(kept) == 0 || len(kept) == len(cons) {
			break
		}
		cons = kept
		answers = s.query(cons)
	}
	if len(answers) == 0 {
		return nil, false
	}
	return answers, true
}

// sharedConstraints returns the (p, o) pairs both examples satisfy.
// The Contains probes run after the Match scan completes: calling a
// locking accessor from inside the callback would re-enter the shard
// read locks the scan already holds and deadlock once a writer queues
// (internal/store/doc.go "ID-level API contract").
func (s *SPARQLByE) sharedConstraints(a, b rdf.Term) []constraint {
	var cand []constraint
	s.Store.Match(a, rdf.Term{}, rdf.Term{}, func(tr rdf.Triple) bool {
		if !tr.O.IsLiteral() { // literals (names, dates) are instance-specific
			cand = append(cand, constraint{tr.P, tr.O})
		}
		return true
	})
	var out []constraint
	for _, c := range cand {
		if s.Store.Contains(rdf.Triple{S: b, P: c.p, O: c.o}) {
			out = append(out, c)
		}
	}
	return out
}

// query evaluates the induced conjunctive query directly on the store.
func (s *SPARQLByE) query(cons []constraint) qald.AnswerSet {
	if len(cons) == 0 {
		return nil
	}
	// Start from the most selective constraint.
	best := 0
	bestCard := int(^uint(0) >> 1)
	for i, c := range cons {
		if card := s.Store.CardinalityEstimate(rdf.Term{}, c.p, c.o); card < bestCard {
			bestCard = card
			best = i
		}
	}
	// Scan first, probe after: the residual Contains checks must not
	// run inside the Match callback, which holds the scanned shard's
	// read lock (internal/store/doc.go "ID-level API contract").
	var subjects []rdf.Term
	s.Store.Match(rdf.Term{}, cons[best].p, cons[best].o, func(tr rdf.Triple) bool {
		subjects = append(subjects, tr.S)
		return true
	})
	answers := make(qald.AnswerSet)
	for _, subj := range subjects {
		ok := true
		for i, c := range cons {
			if i == best {
				continue
			}
			if !s.Store.Contains(rdf.Triple{S: subj, P: c.p, O: c.o}) {
				ok = false
				break
			}
		}
		if ok {
			answers[subj.Value] = true
		}
	}
	return answers
}
