package datagen

import (
	"testing"

	"sapphire/internal/rdf"
)

func TestSplitPartitionsData(t *testing.T) {
	d := Generate(SmallConfig())
	agents, places, works := d.Split()

	// People live on the agents partition.
	hanks := Res("Tom_Hanks")
	if agents.Count(hanks, rdf.Term{}, rdf.Term{}) == 0 {
		t.Error("Tom Hanks not on the agents partition")
	}
	if places.Count(hanks, rdf.Term{}, rdf.Term{}) != 0 {
		t.Error("Tom Hanks leaked to the places partition")
	}
	// Cities live on places.
	sydney := Res("Sydney")
	if places.Count(sydney, rdf.Term{}, rdf.Term{}) == 0 {
		t.Error("Sydney not on the places partition")
	}
	// Books live on works.
	road := Res("On_the_Road")
	if works.Count(road, rdf.Term{}, rdf.Term{}) == 0 {
		t.Error("On the Road not on the works partition")
	}
	// Cross-partition links survive: the book's author IRI points at the
	// agents partition.
	author := rdf.NewIRI(rdf.NSDBO + "author")
	found := false
	works.Match(road, author, rdf.Term{}, func(tr rdf.Triple) bool {
		if agents.Count(tr.O, rdf.Term{}, rdf.Term{}) > 0 {
			found = true
		}
		return true
	})
	if !found {
		t.Error("cross-partition author link broken")
	}
}

func TestSplitReplicatesSchema(t *testing.T) {
	d := Generate(SmallConfig())
	agents, places, works := d.Split()
	sub := rdf.NewIRI(rdf.RDFSSubClassOf)
	for name, st := range map[string]interface {
		Count(s, p, o rdf.Term) int
	}{"agents": agents, "places": places, "works": works} {
		if st.Count(rdf.Term{}, sub, rdf.Term{}) == 0 {
			t.Errorf("%s partition lacks the class hierarchy", name)
		}
		if st.Count(Onto("City"), rdf.NewIRI(rdf.RDFSLabel), rdf.Term{}) == 0 {
			t.Errorf("%s partition lacks class labels", name)
		}
	}
}

func TestSplitCoversEverything(t *testing.T) {
	d := Generate(SmallConfig())
	agents, places, works := d.Split()
	// Every non-schema triple appears in exactly one partition; schema
	// triples in all three. So total >= original.
	total := agents.Len() + places.Len() + works.Len()
	if total < d.Store.Len() {
		t.Errorf("split lost triples: %d < %d", total, d.Store.Len())
	}
	// Nothing invented.
	missing := 0
	d.Store.Match(rdf.Term{}, rdf.Term{}, rdf.Term{}, func(tr rdf.Triple) bool {
		if !agents.Contains(tr) && !places.Contains(tr) && !works.Contains(tr) {
			missing++
		}
		return true
	})
	if missing > 0 {
		t.Errorf("%d triples missing from all partitions", missing)
	}
}
