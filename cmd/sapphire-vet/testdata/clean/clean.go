// Package clean is the control fixture: code that honors every
// contract, over which sapphire-vet must exit zero.
package clean

import "fmt"

// Greet does nothing contract-relevant.
func Greet(name string) string {
	return fmt.Sprintf("hello, %s", name)
}
